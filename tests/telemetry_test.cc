#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "federated/telemetry.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(TelemetryTest, FamilyNames) {
  EXPECT_EQ(MetricFamilyName(MetricFamily::kLatencyMs), "latency_ms");
  EXPECT_EQ(MetricFamilyName(MetricFamily::kAppVersion), "app_version");
}

TEST(TelemetryTest, LatencyIsPositiveAndHeavyTailed) {
  Rng rng(1);
  const GroundTruth truth =
      ComputeGroundTruth(GenerateMetric(MetricFamily::kLatencyMs, 50000,
                                        rng));
  EXPECT_GT(truth.min, 0.0);
  // Lognormal(4, 0.9): mean ~ e^{4.405} ~ 82; max far above.
  EXPECT_GT(truth.mean, 40.0);
  EXPECT_GT(truth.max, 10.0 * truth.mean);
}

TEST(TelemetryTest, CrashCountIsMostlyBinaryWithRareHugeOutliers) {
  Rng rng(2);
  const std::vector<double> values =
      GenerateMetric(MetricFamily::kCrashCount, 200000, rng);
  int64_t binary = 0;
  double max_seen = 0.0;
  for (const double v : values) {
    if (v == 0.0 || v == 1.0) ++binary;
    if (v > max_seen) max_seen = v;
  }
  EXPECT_GT(binary, 180000);    // > 90% at 0/1
  EXPECT_GT(max_seen, 1000.0);  // "orders of magnitude higher"
}

TEST(TelemetryTest, BatteryDrainIsBounded) {
  Rng rng(3);
  const GroundTruth truth = ComputeGroundTruth(
      GenerateMetric(MetricFamily::kBatteryDrainPct, 20000, rng));
  EXPECT_GE(truth.min, 0.0);
  EXPECT_LE(truth.max, 100.0);
  EXPECT_NEAR(truth.mean, 22.0, 1.0);
}

TEST(TelemetryTest, AppVersionIsConstant) {
  Rng rng(4);
  const GroundTruth truth =
      ComputeGroundTruth(GenerateMetric(MetricFamily::kAppVersion, 1000,
                                        rng));
  EXPECT_DOUBLE_EQ(truth.variance, 0.0);
  EXPECT_DOUBLE_EQ(truth.mean, 42.0);
}

TEST(TelemetryTest, SeriesHasRequestedShape) {
  Rng rng(5);
  const std::vector<std::vector<double>> series =
      GenerateMetricSeries(MetricFamily::kQueueDepth, 10, 24, rng);
  ASSERT_EQ(series.size(), 10u);
  for (const std::vector<double>& device : series) {
    EXPECT_EQ(device.size(), 24u);
  }
}

TEST(EstimateHighestUsedBitTest, FindsTopInformativeBit) {
  EXPECT_EQ(EstimateHighestUsedBit({0.5, 0.2, 0.0, 0.0}, 0.05), 1);
  EXPECT_EQ(EstimateHighestUsedBit({0.5, 0.2, 0.04, 0.6}, 0.05), 3);
  EXPECT_EQ(EstimateHighestUsedBit({0.0, 0.0}, 0.05), -1);
}

TEST(EstimateHighestUsedBitTest, ThresholdFiltersNoise) {
  // Noisy small means above the top real bit must not fool the estimate.
  EXPECT_EQ(EstimateHighestUsedBit({0.5, 0.3, 0.02, -0.01, 0.03}, 0.1), 1);
}

TEST(UpperBoundMonitorTest, FirstWindowNeverFlags) {
  UpperBoundMonitor monitor(2);
  EXPECT_FALSE(monitor.ObserveWindow(10));
  EXPECT_EQ(monitor.last_bound(), 10);
}

TEST(UpperBoundMonitorTest, FlagsLargeShifts) {
  UpperBoundMonitor monitor(2);
  monitor.ObserveWindow(10);
  EXPECT_FALSE(monitor.ObserveWindow(11));  // shift 1 < 2
  EXPECT_TRUE(monitor.ObserveWindow(13));   // shift 2 >= 2
  EXPECT_TRUE(monitor.ObserveWindow(8));    // downward shift flags too
  EXPECT_EQ(monitor.flags_raised(), 2);
}

TEST(UpperBoundMonitorTest, DetectsHeavyTailArrival) {
  // A stable 8-bit metric suddenly grows a heavy tail: the upper bound
  // jumps and the monitor flags it.
  UpperBoundMonitor monitor(2);
  for (int window = 0; window < 5; ++window) {
    EXPECT_FALSE(monitor.ObserveWindow(8));
  }
  EXPECT_TRUE(monitor.ObserveWindow(15));
}

TEST(UpperBoundMonitorDeathTest, InvalidThresholdAborts) {
  EXPECT_DEATH(UpperBoundMonitor(0), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
