// Cross-module integration tests: end-to-end pipelines combining the
// protocol core, the LDP/DP substrates, and the federated machinery the
// way the benchmarks and a real deployment would.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/bit_probabilities.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "dp/bernoulli_noise.h"
#include "dp/sample_threshold.h"
#include "federated/dropout_secure_agg.h"
#include "federated/round.h"
#include "federated/telemetry.h"
#include "ldp/dithering.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(IntegrationTest, FunctionalCoreAndFederatedPipelineAgree) {
  // The flat-vector core and the client/server pipeline implement the same
  // protocol; with no dropout or noise their accuracy must match closely.
  Rng data_rng(1);
  const Dataset ages = CensusAges(10000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});

  AdaptiveConfig adaptive;
  adaptive.bits = 7;
  const ErrorStats core_stats =
      RunRepetitions(60, 2, ages.truth().mean, [&](Rng& rng) {
        return codec.Decode(
            RunAdaptiveBitPushing(codewords, adaptive, rng)
                .estimate_codeword);
      });
  FederatedQueryConfig query;
  query.adaptive = adaptive;
  const ErrorStats fed_stats =
      RunRepetitions(60, 2, ages.truth().mean, [&](Rng& rng) {
        return RunFederatedMeanQuery(clients, codec, query, nullptr, rng)
            .estimate;
      });
  EXPECT_LT(core_stats.nrmse, 0.05);
  EXPECT_LT(fed_stats.nrmse, 0.05);
  EXPECT_NEAR(fed_stats.nrmse / core_stats.nrmse, 1.0, 0.75);
}

TEST(IntegrationTest, CentralDpByThresholdingBitCounts) {
  // Deployment recipe of Section 4.3: enclave-side sample-and-threshold on
  // the reported bit counts gives central DP with negligible accuracy
  // loss at healthy cohort sizes.
  Rng data_rng(3);
  const Dataset ages = CensusAges(50000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());

  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(7, 0.5);
  const auto st_config = SampleThresholdForBudget(1.0, 1e-6, 0.5);

  const ErrorStats stats =
      RunRepetitions(40, 4, ages.truth().mean, [&](Rng& rng) {
        const BitPushingResult raw =
            RunBasicBitPushing(codewords, config, rng);
        // Apply sample-and-threshold to both ones and totals.
        const std::vector<double> ones = UnbiasSampledCounts(
            SampleAndThreshold(raw.histogram.one_counts(), st_config, rng),
            st_config.sampling_rate);
        const std::vector<double> totals = UnbiasSampledCounts(
            SampleAndThreshold(raw.histogram.totals(), st_config, rng),
            st_config.sampling_rate);
        std::vector<double> means(ones.size(), 0.0);
        for (size_t j = 0; j < means.size(); ++j) {
          if (totals[j] > 0) means[j] = ones[j] / totals[j];
        }
        return codec.Decode(RecombineBitMeans(means));
      });
  // "a negligible amount of noise compared to the non-thresholded sample".
  EXPECT_LT(stats.nrmse, 0.05);
}

TEST(IntegrationTest, DistributedBernoulliNoiseOnBitHistograms) {
  // Section 3.3's distributed-DP route: binomial noise on the per-bit
  // count histograms, debiased server-side.
  Rng data_rng(5);
  const Dataset ages = CensusAges(50000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());

  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(7, 0.5);
  const int64_t noise_bits = NoiseBitsForBudget(1.0, 1e-6);

  const ErrorStats stats =
      RunRepetitions(40, 6, ages.truth().mean, [&](Rng& rng) {
        const BitPushingResult raw =
            RunBasicBitPushing(codewords, config, rng);
        const std::vector<double> noisy_ones = AddBinomialNoise(
            raw.histogram.one_counts(), noise_bits, rng);
        std::vector<double> means(noisy_ones.size(), 0.0);
        for (size_t j = 0; j < means.size(); ++j) {
          const int64_t total = raw.histogram.totals()[j];
          if (total > 0) {
            means[j] = noisy_ones[j] / static_cast<double>(total);
          }
        }
        return codec.Decode(RecombineBitMeans(means));
      });
  // Distributed noise costs far less than per-report LDP noise would.
  EXPECT_LT(stats.nrmse, 0.10);
}

TEST(IntegrationTest, DoubleMaskedBitPushingWithDropouts) {
  // The full §3.3 stack on one bit group: clients RR-perturb their bit,
  // submit through dropout-tolerant double masking, some drop mid-round,
  // and the server still recovers the exact masked sum of the survivors'
  // noisy bits — never seeing an individual report.
  Rng rng(20);
  const int n = 60;
  const double epsilon = 1.0;
  const RandomizedResponse rr(epsilon);
  DoubleMaskingSession session(n, /*threshold=*/30, rng);

  const uint64_t codeword = 0b101101;
  const int bit_index = 3;
  int64_t expected_noisy_ones = 0;
  int64_t survivors = 0;
  for (int client = 0; client < n; ++client) {
    if (client % 5 == 1) {
      session.MarkDropped(client);
      continue;
    }
    const int noisy_bit =
        MakeBitReport(codeword, bit_index, rr, rng);
    session.Submit(client, static_cast<uint64_t>(noisy_bit));
    expected_noisy_ones += noisy_bit;
    ++survivors;
  }
  const std::optional<uint64_t> ones = session.RecoverSum();
  ASSERT_TRUE(ones.has_value());
  EXPECT_EQ(static_cast<int64_t>(*ones), expected_noisy_ones);

  // The server-side pipeline continues exactly as with plain tallies.
  const double mean = rr.Unbias(static_cast<double>(*ones) /
                                static_cast<double>(survivors));
  // True bit 3 of the codeword is 1; with only 48 survivors the unbiased
  // mean is noisy but must be nearer 1 than 0.
  EXPECT_GT(mean, 0.5);
}

TEST(IntegrationTest, PoisoningBiasLocalVsCentral) {
  // Section 5: 5% adversaries aiming at the top bit bias the local-
  // randomness estimate upward dramatically; central randomness contains
  // the damage.
  Rng data_rng(7);
  const Dataset ages = CensusAges(10000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  ClientConfig adversarial;
  adversarial.adversary = AdversaryMode::kTopBitOne;
  std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  for (size_t i = 0; i < clients.size() / 20; ++i) {
    clients[i] = Client(static_cast<int64_t>(i),
                        {ages.values()[i]}, adversarial);
  }

  const AggregationServer server(codec);
  std::vector<int64_t> cohort;
  for (size_t i = 0; i < clients.size(); ++i) {
    cohort.push_back(static_cast<int64_t>(i));
  }
  // Uniform allocation makes the leverage gap explicit: under central
  // randomness one poisoned report is worth E[2^j] = (2^b - 1)/b per
  // group slot, while under local randomness the adversary parks all its
  // weight on the 2^{b-1} bit. (Geometric allocations shrink the gap
  // because they already overweight high bits for everyone.)
  auto bias_with_mode = [&](bool central) {
    RoundConfig config;
    config.probabilities = UniformProbabilities(16);
    config.central_randomness = central;
    Welford acc;
    Rng rng(8);
    for (int rep = 0; rep < 20; ++rep) {
      const RoundOutcome outcome =
          server.RunRound(clients, cohort, config, nullptr, rng);
      acc.Add(server.EstimateMean(outcome.histogram, 0.0) -
              ages.truth().mean);
    }
    return acc.mean();
  };
  const double local_bias = bias_with_mode(false);
  const double central_bias = bias_with_mode(true);
  EXPECT_GT(local_bias, 3.0 * std::max(1.0, std::abs(central_bias)));
}

TEST(IntegrationTest, TelemetryClippingRecoversUsableMean) {
  // Section 4.3 end to end: crash counters with extreme outliers are
  // useless un-clipped; clipping to 8 bits gives a stable, meaningful
  // estimate of the typical behaviour.
  Rng data_rng(9);
  const Dataset raw("crashes",
                    GenerateMetric(MetricFamily::kCrashCount, 30000,
                                   data_rng));
  const Dataset clipped = raw.Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords = codec.EncodeAll(clipped.values());
  AdaptiveConfig config;
  config.bits = 8;
  const ErrorStats stats =
      RunRepetitions(40, 10, clipped.truth().mean, [&](Rng& rng) {
        return codec.Decode(
            RunAdaptiveBitPushing(codewords, config, rng)
                .estimate_codeword);
      });
  EXPECT_LT(stats.nrmse, 0.15);
  // And the clipped mean is a sane "typical" value, unlike the raw mean.
  EXPECT_LT(clipped.truth().mean, 5.0);
}

TEST(IntegrationTest, UpperBoundMonitorFlagsDistributionShift) {
  // Two telemetry windows: stable latency, then a regression inflating
  // the tail. The b_max estimated from bit-pushing means shifts and the
  // monitor flags it.
  Rng rng(11);
  const FixedPointCodec codec = FixedPointCodec::Integer(20);
  AdaptiveConfig config;
  config.bits = 20;
  UpperBoundMonitor monitor(2);

  const Dataset before("latency",
                       GenerateMetric(MetricFamily::kLatencyMs, 20000, rng));
  const AdaptiveResult before_result = RunAdaptiveBitPushing(
      codec.EncodeAll(before.values()), config, rng);
  EXPECT_FALSE(monitor.ObserveWindow(
      EstimateHighestUsedBit(before_result.final_means, 0.01)));

  // Regression: latencies grow 30x.
  std::vector<double> degraded = before.values();
  for (double& v : degraded) v *= 30.0;
  const AdaptiveResult after_result = RunAdaptiveBitPushing(
      codec.EncodeAll(degraded), config, rng);
  EXPECT_TRUE(monitor.ObserveWindow(
      EstimateHighestUsedBit(after_result.final_means, 0.01)));
}

TEST(IntegrationTest, BitPushingBeatsDitheringWhenBoundIsLoose) {
  // The headline claim (Section 5): with a loose bound (16 bits for 7-bit
  // data), adaptive bit-pushing beats subtractive dithering by a large
  // factor.
  Rng data_rng(12);
  const Dataset ages = CensusAges(10000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());

  AdaptiveConfig adaptive;
  adaptive.bits = 16;
  const double adaptive_nrmse =
      RunRepetitions(60, 13, ages.truth().mean, [&](Rng& rng) {
        return codec.Decode(
            RunAdaptiveBitPushing(codewords, adaptive, rng)
                .estimate_codeword);
      }).nrmse;

  const SubtractiveDithering dithering(0.0, 0.0, 65535.0);
  const double dithering_nrmse =
      RunRepetitions(60, 13, ages.truth().mean, [&](Rng& rng) {
        return dithering.EstimateMean(ages.values(), rng);
      }).nrmse;

  EXPECT_LT(adaptive_nrmse, 0.2 * dithering_nrmse);
}

}  // namespace
}  // namespace bitpush
