// Shape-regression tests: the qualitative claims of the paper's evaluation
// (who wins, by roughly what factor, where crossovers fall), pinned with
// reduced repetition counts so regressions in the protocol code surface in
// CI rather than only in the bench output. EXPERIMENTS.md holds the full
// figures; these are the load-bearing inequalities.

#include <cmath>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

using bench::AdaptiveMethod;
using bench::DitheringMethod;
using bench::EvaluateMethod;
using bench::WeightedMethod;

double Nrmse(const bench::MethodSpec& method, const Dataset& data,
             int bits, int reps = 40) {
  return EvaluateMethod(method, data, FixedPointCodec::Integer(bits), reps,
                        12345)
      .nrmse;
}

TEST(ShapeRegressionTest, Figure1a_AdaptiveWinsAtSmallMu) {
  Rng rng(1);
  const Dataset data = NormalData(10000, 200.0, 100.0, rng);
  const double adaptive = Nrmse(AdaptiveMethod(0.0), data, 16);
  const double weighted = Nrmse(WeightedMethod(0.5, 0.0), data, 16);
  const double dithering = Nrmse(DitheringMethod(0.0), data, 16);
  EXPECT_LT(adaptive, weighted);
  EXPECT_LT(weighted, dithering);
  EXPECT_GT(dithering, 10.0 * adaptive);
}

TEST(ShapeRegressionTest, Figure1c_AdaptiveObliviousToBitDepth) {
  Rng rng(2);
  const Dataset data = NormalData(10000, 1000.0, 100.0, rng);
  const double at_11 = Nrmse(AdaptiveMethod(0.0), data, 11);
  const double at_20 = Nrmse(AdaptiveMethod(0.0), data, 20);
  // Adaptive degrades by at most ~2x over 9 extra vacuous bits...
  EXPECT_LT(at_20, 2.5 * at_11);
  // ...while dithering degrades by orders of magnitude.
  const double dithering_11 = Nrmse(DitheringMethod(0.0), data, 11);
  const double dithering_20 = Nrmse(DitheringMethod(0.0), data, 20);
  EXPECT_GT(dithering_20, 50.0 * dithering_11);
}

TEST(ShapeRegressionTest, Figure2a_ErrorScalesAsInverseSqrtN) {
  Rng rng(3);
  const Dataset small = CensusAges(2000, rng);
  const Dataset large = CensusAges(50000, rng);
  const double at_small = Nrmse(AdaptiveMethod(0.0), small, 8);
  const double at_large = Nrmse(AdaptiveMethod(0.0), large, 8);
  // 25x more clients: expect ~5x less error (allow 3x-8x).
  const double ratio = at_small / at_large;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 9.0);
  // The paper's "a few thousand users ~ 3%" anchor.
  EXPECT_LT(at_small, 0.06);
}

TEST(ShapeRegressionTest, Figure3_DpCostsAnOrderOfMagnitude) {
  Rng rng(4);
  const Dataset data = CensusAges(10000, rng);
  const double noise_free = Nrmse(WeightedMethod(1.0, 0.0), data, 8);
  const double at_eps1 = Nrmse(WeightedMethod(1.0, 1.0), data, 8);
  EXPECT_GT(at_eps1, 3.0 * noise_free);
  EXPECT_LT(at_eps1, 30.0 * noise_free);
}

TEST(ShapeRegressionTest, Figure3_AdaptivityHoldsNoAdvantageUnderDp) {
  // "the adaptive approach (focusing on bits with higher variance) holds
  // no advantage here" — at eps = 1 the single-round a=1.0 method is at
  // least as good as adaptive.
  Rng rng(5);
  const Dataset data = CensusAges(10000, rng);
  const double weighted = Nrmse(WeightedMethod(1.0, 1.0), data, 8, 60);
  const double adaptive = Nrmse(AdaptiveMethod(1.0), data, 8, 60);
  EXPECT_LE(weighted, 1.1 * adaptive);
}

TEST(ShapeRegressionTest, Figure4c_SquashingRescuesDeepCodewordsUnderDp) {
  Rng rng(6);
  const Dataset data = NormalData(10000, 500.0, 100.0, rng);
  const double with_squash =
      Nrmse(AdaptiveMethod(2.0, SquashPolicy::Absolute(0.05)), data, 18);
  const double without = Nrmse(AdaptiveMethod(2.0), data, 18);
  EXPECT_LT(with_squash, 0.05 * without);
  EXPECT_LT(with_squash, 0.1);  // absolute sanity: ~2% in practice
}

TEST(ShapeRegressionTest, Conclusion_TightBoundsMakeMethodsComparable) {
  // "when a tight bound on the values is known in advance, bit-pushing
  // and prior methods attain similar accuracy."
  Rng rng(7);
  const Dataset data = CensusAges(10000, rng);
  const double adaptive = Nrmse(AdaptiveMethod(0.0), data, 7, 60);
  const double dithering = Nrmse(DitheringMethod(0.0), data, 7, 60);
  EXPECT_LT(adaptive, 3.0 * dithering);
  EXPECT_LT(dithering, 3.0 * adaptive);
}

}  // namespace
}  // namespace bitpush
