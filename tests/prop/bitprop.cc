#include "prop/bitprop.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace bitpush::prop {
namespace {

// SplitMix64 finalizer — the same mixing the Rng seeds itself with, reused
// here so a case seed is a well-scrambled pure function of (base, i).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::optional<uint64_t> EnvUint64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 0);
  if (errno != 0 || end == raw || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(value);
}

RunConfig ParseRunConfig() {
  RunConfig config;
  config.pinned_seed = EnvUint64("BITPROP_SEED");
  if (const std::optional<uint64_t> base = EnvUint64("BITPROP_BASE_SEED");
      base.has_value()) {
    config.base_seed = *base;
  }
  if (const std::optional<uint64_t> iters = EnvUint64("BITPROP_ITERS");
      iters.has_value() && *iters > 0) {
    config.iterations_override = static_cast<int64_t>(
        std::min<uint64_t>(*iters, std::numeric_limits<int64_t>::max()));
  }
  return config;
}

}  // namespace

const RunConfig& GlobalRunConfig() {
  static const RunConfig config = ParseRunConfig();
  return config;
}

uint64_t CaseSeed(uint64_t base_seed, uint64_t iteration) {
  return Mix64(base_seed + Mix64(iteration));
}

std::string FormatFailureReport(const std::string& name,
                                const CheckOutcome& outcome) {
  std::ostringstream out;
  out << "property '" << name << "' failed";
  if (outcome.failing_iteration >= 0) {
    out << " at iteration " << outcome.failing_iteration;
  } else {
    out << " (BITPROP_SEED reproduction)";
  }
  out << "\n  reproduce: BITPROP_SEED=" << outcome.failing_seed
      << "\n  original:  " << outcome.original << "\n  minimal ("
      << outcome.shrink_steps << " shrink steps): " << outcome.minimal
      << "\n  failure:   " << outcome.message;
  return out.str();
}

Domain<int64_t> InRange(int64_t lo, int64_t hi) {
  Domain<int64_t> domain;
  domain.generate = [lo, hi](Rng& rng) {
    return lo + static_cast<int64_t>(
                    rng.NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  };
  domain.shrink = [lo](const int64_t& value) {
    std::vector<int64_t> candidates;
    if (value == lo) return candidates;
    candidates.push_back(lo);
    // Binary steps toward lo, finishing with value - 1 so a threshold
    // property lands exactly on its boundary.
    for (int64_t delta = (value - lo) / 2; delta > 1; delta /= 2) {
      candidates.push_back(lo + delta);
    }
    candidates.push_back(value - 1);
    return candidates;
  };
  domain.describe = [](const int64_t& value) { return std::to_string(value); };
  return domain;
}

Domain<double> InReal(double lo, double hi) {
  Domain<double> domain;
  domain.generate = [lo, hi](Rng& rng) {
    return lo + (hi - lo) * rng.NextDouble();
  };
  domain.shrink = [lo](const double& value) {
    std::vector<double> candidates;
    if (!(value > lo)) return candidates;
    candidates.push_back(lo);
    double step = (value - lo) / 2.0;
    for (int i = 0; i < 8 && step > 0.0; ++i, step /= 2.0) {
      candidates.push_back(lo + step);
    }
    return candidates;
  };
  domain.describe = [](const double& value) {
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
  };
  return domain;
}

Domain<uint64_t> Below(uint64_t bound) {
  Domain<uint64_t> domain;
  domain.generate = [bound](Rng& rng) { return rng.NextBelow(bound); };
  domain.shrink = [](const uint64_t& value) {
    std::vector<uint64_t> candidates;
    if (value == 0) return candidates;
    candidates.push_back(0);
    for (uint64_t half = value / 2; half > 1; half /= 2) {
      candidates.push_back(half);
    }
    candidates.push_back(value - 1);
    return candidates;
  };
  domain.describe = [](const uint64_t& value) { return std::to_string(value); };
  return domain;
}

}  // namespace bitpush::prop
