// Paper-level invariants stated as bitprop properties (ROADMAP item 2).
//
// Each TEST below is one universal statement from the paper — estimator
// unbiasedness under randomized response, variance-bound monotonicity in n
// and bit depth, exact fixed-point round-trips, secure-agg mask
// cancellation, privacy-meter budget conservation — checked over a seeded
// random domain instead of a hand-picked grid. Cases embed every seed they
// need (e.g. the Monte-Carlo trial seed for the RR confidence interval), so
// properties stay pure functions of the generated value and a printed
// BITPROP_SEED replays generation, failure, and shrink exactly.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/dropout_secure_agg.h"
#include "federated/secure_agg.h"
#include "federated/shamir.h"
#include "ldp/randomized_response.h"
#include "prop/bitprop.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

using ::bitpush::prop::CheckOptions;
using ::bitpush::prop::CheckProperty;
using ::bitpush::prop::Domain;

// ---------------------------------------------------------------------------
// Fixed-point encode/decode round-trip and quantization-error bound
// (Section 3.1 / 4.3: clipping plus rounding to the nearest of 2^b levels).

struct RangeCodecCase {
  int64_t bits = 1;
  double low = 0.0;
  double span = 1.0;
  // Position of x relative to [low, high], deliberately overshooting both
  // ends ([-0.25, 1.25] of the span) so clipping is part of the property.
  double frac = 0.0;

  double x() const { return low + (frac * 1.5 - 0.25) * span; }
};

Domain<RangeCodecCase> RangeCodecDomain() {
  Domain<RangeCodecCase> domain;
  domain.generate = [](Rng& rng) {
    RangeCodecCase c;
    c.bits = 1 + static_cast<int64_t>(rng.NextBelow(kMaxBits));
    c.low = -100.0 + 200.0 * rng.NextDouble();
    c.span = 1e-3 + 200.0 * rng.NextDouble();
    c.frac = rng.NextDouble();
    return c;
  };
  domain.shrink = [](const RangeCodecCase& c) {
    std::vector<RangeCodecCase> out;
    for (int64_t bits : {int64_t{1}, c.bits / 2, c.bits - 1}) {
      if (bits >= 1 && bits < c.bits) {
        RangeCodecCase smaller = c;
        smaller.bits = bits;
        out.push_back(smaller);
      }
    }
    if (c.low != 0.0) {
      RangeCodecCase smaller = c;
      smaller.low = 0.0;
      out.push_back(smaller);
    }
    for (double frac : {0.5, c.frac / 2.0}) {
      if (frac < c.frac) {
        RangeCodecCase smaller = c;
        smaller.frac = frac;
        out.push_back(smaller);
      }
    }
    return out;
  };
  domain.describe = [](const RangeCodecCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{bits=" << c.bits << " low=" << c.low << " span=" << c.span
        << " x=" << c.x() << "}";
    return out.str();
  };
  return domain;
}

TEST(PropInvariantsTest, FixedPointRoundTripWithinHalfResolution) {
  CheckProperty<RangeCodecCase>(
      "fixed-point round-trip stays within resolution/2 of the clipped input",
      RangeCodecDomain(),
      [](const RangeCodecCase& c) -> std::optional<std::string> {
        const FixedPointCodec codec(static_cast<int>(c.bits), c.low,
                                    c.low + c.span);
        const double x = c.x();
        const uint64_t code = codec.Encode(x);
        if (code > codec.max_codeword()) {
          return "Encode produced a codeword above max_codeword";
        }
        const double clipped = std::clamp(x, codec.low(), codec.high());
        const double decoded = codec.Decode(static_cast<double>(code));
        const double tolerance = codec.resolution() / 2.0 + 1e-7;
        if (std::abs(decoded - clipped) > tolerance) {
          std::ostringstream out;
          out.precision(17);
          out << "quantization error " << std::abs(decoded - clipped)
              << " exceeds resolution/2 = " << codec.resolution() / 2.0;
          return out.str();
        }
        return std::nullopt;
      });
}

struct IntegerCodecCase {
  int64_t bits = 1;
  uint64_t raw = 0;  // reduced mod (max_codeword + 1) by the property

  uint64_t value() const {
    const FixedPointCodec codec = FixedPointCodec::Integer(
        static_cast<int>(bits));
    return raw % (codec.max_codeword() + 1);
  }
};

Domain<IntegerCodecCase> IntegerCodecDomain() {
  Domain<IntegerCodecCase> domain;
  domain.generate = [](Rng& rng) {
    IntegerCodecCase c;
    c.bits = 1 + static_cast<int64_t>(rng.NextBelow(kMaxBits));
    c.raw = rng.NextUint64();
    return c;
  };
  domain.shrink = [](const IntegerCodecCase& c) {
    std::vector<IntegerCodecCase> out;
    for (int64_t bits : {int64_t{1}, c.bits / 2, c.bits - 1}) {
      if (bits >= 1 && bits < c.bits) {
        IntegerCodecCase smaller = c;
        smaller.bits = bits;
        out.push_back(smaller);
      }
    }
    for (uint64_t raw : {uint64_t{0}, c.raw / 2}) {
      if (raw < c.raw) {
        IntegerCodecCase smaller = c;
        smaller.raw = raw;
        out.push_back(smaller);
      }
    }
    return out;
  };
  domain.describe = [](const IntegerCodecCase& c) {
    std::ostringstream out;
    out << "{bits=" << c.bits << " value=" << c.value() << "}";
    return out.str();
  };
  return domain;
}

TEST(PropInvariantsTest, FixedPointIntegerRoundTripAndBitRecombineExact) {
  CheckProperty<IntegerCodecCase>(
      "integer codewords round-trip exactly and recombine from their bits",
      IntegerCodecDomain(),
      [](const IntegerCodecCase& c) -> std::optional<std::string> {
        const FixedPointCodec codec =
            FixedPointCodec::Integer(static_cast<int>(c.bits));
        const uint64_t v = c.value();
        if (codec.Encode(static_cast<double>(v)) != v) {
          return "Encode(v) != v for an in-domain integer";
        }
        const double decoded = codec.Decode(static_cast<double>(v));
        if (decoded != static_cast<double>(v)) {
          return "Decode(v) != v for an in-domain integer";
        }
        double recombined = 0.0;
        for (int j = 0; j < codec.bits(); ++j) {
          recombined += std::exp2(j) * FixedPointCodec::Bit(v, j);
        }
        if (recombined != static_cast<double>(v)) {
          return "sum_j 2^j * Bit(v, j) != v";
        }
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Randomized response: the unbiasing identity, exactly and empirically
// within a confidence interval (Section 3.3).

struct RrCase {
  double epsilon = 1.0;
  int64_t bit = 0;
  uint64_t trial_seed = 0;  // seed of the Monte-Carlo trials, part of the case
};

Domain<RrCase> RrDomain() {
  Domain<RrCase> domain;
  domain.generate = [](Rng& rng) {
    RrCase c;
    c.epsilon = 0.05 + 7.95 * rng.NextDouble();
    c.bit = static_cast<int64_t>(rng.NextBit());
    c.trial_seed = rng.NextUint64();
    return c;
  };
  domain.shrink = [](const RrCase& c) {
    std::vector<RrCase> out;
    if (c.bit == 1) {
      RrCase smaller = c;
      smaller.bit = 0;
      out.push_back(smaller);
    }
    for (double epsilon : {1.0, c.epsilon / 2.0}) {
      if (epsilon >= 0.05 && epsilon < c.epsilon) {
        RrCase smaller = c;
        smaller.epsilon = epsilon;
        out.push_back(smaller);
      }
    }
    return out;
  };
  domain.describe = [](const RrCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{epsilon=" << c.epsilon << " bit=" << c.bit
        << " trial_seed=" << c.trial_seed << "}";
    return out.str();
  };
  return domain;
}

TEST(PropInvariantsTest, RrUnbiasingIdentityIsExactOnExpectations) {
  CheckProperty<RrCase>(
      "Unbias maps the exact report expectation back to the true bit",
      RrDomain(), [](const RrCase& c) -> std::optional<std::string> {
        const RandomizedResponse rr(c.epsilon);
        const double p = rr.truth_probability();
        // E[report | bit] = bit ? p : 1 - p; Unbias must invert it.
        const double expectation =
            c.bit == 1 ? p : 1.0 - p;
        const double unbiased = rr.Unbias(expectation);
        if (std::abs(unbiased - static_cast<double>(c.bit)) > 1e-9) {
          std::ostringstream out;
          out.precision(17);
          out << "Unbias(E[report]) = " << unbiased << ", want " << c.bit;
          return out.str();
        }
        return std::nullopt;
      });
}

TEST(PropInvariantsTest, RrUnbiasedEstimatorWithinConfidenceInterval) {
  CheckOptions options;
  options.iterations = 100;        // 100 cases x 20k trials: still fast
  options.max_iterations = 20000;  // bound the long mode for this MC suite
  CheckProperty<RrCase>(
      "the unbiased RR mean lands within 6 standard errors of the true bit",
      RrDomain(),
      [](const RrCase& c) -> std::optional<std::string> {
        const RandomizedResponse rr(c.epsilon);
        Rng trials(c.trial_seed);
        const int kTrials = 20000;
        double sum = 0.0;
        for (int i = 0; i < kTrials; ++i) {
          sum += rr.Unbias(static_cast<double>(
              rr.Apply(static_cast<int>(c.bit), trials)));
        }
        const double mean = sum / kTrials;
        const double se = std::sqrt(rr.ReportVariance() / kTrials);
        const double slack = 6.0 * se + 1e-9;
        if (std::abs(mean - static_cast<double>(c.bit)) > slack) {
          std::ostringstream out;
          out.precision(17);
          out << "unbiased mean " << mean << " misses bit " << c.bit
              << " by more than 6 SE (" << slack << ")";
          return out.str();
        }
        return std::nullopt;
      },
      options);
}

// ---------------------------------------------------------------------------
// Variance-bound monotonicity (Lemma 3.1 plug-in): decreasing in n,
// non-decreasing in bit depth for the geometric allocation family.

struct VarianceCase {
  std::vector<double> means;  // length = bits + 1; last entry is the extra bit
  double gamma = 1.0;
  int64_t n = 1;
  int64_t extra_n = 1;
};

Domain<VarianceCase> VarianceDomain() {
  Domain<VarianceCase> domain;
  domain.generate = [](Rng& rng) {
    VarianceCase c;
    const size_t bits = 1 + static_cast<size_t>(rng.NextBelow(30));
    c.means.resize(bits + 1);
    for (double& m : c.means) m = rng.NextDouble();
    c.gamma = 2.0 * rng.NextDouble();
    c.n = 1 + static_cast<int64_t>(rng.NextBelow(1000000));
    c.extra_n = 1 + static_cast<int64_t>(rng.NextBelow(1000000));
    return c;
  };
  domain.shrink = [](const VarianceCase& c) {
    std::vector<VarianceCase> out;
    if (c.means.size() > 2) {
      VarianceCase smaller = c;
      smaller.means.resize(std::max<size_t>(2, c.means.size() / 2));
      out.push_back(smaller);
    }
    for (size_t i = 0; i < c.means.size(); ++i) {
      if (c.means[i] != 0.0) {
        VarianceCase smaller = c;
        smaller.means[i] = 0.0;
        out.push_back(smaller);
      }
    }
    if (c.n > 1) {
      VarianceCase smaller = c;
      smaller.n = std::max<int64_t>(1, c.n / 2);
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const VarianceCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{bits=" << c.means.size() - 1 << " gamma=" << c.gamma
        << " n=" << c.n << " extra_n=" << c.extra_n << " means=[";
    for (size_t i = 0; i < c.means.size(); ++i) {
      if (i > 0) out << ", ";
      out << c.means[i];
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

TEST(PropInvariantsTest, VarianceBoundScalesInverselyWithN) {
  CheckProperty<VarianceCase>(
      "the Lemma 3.1 bound decreases in n and scales exactly as 1/n",
      VarianceDomain(),
      [](const VarianceCase& c) -> std::optional<std::string> {
        const int bits = static_cast<int>(c.means.size()) - 1;
        const std::vector<double> prefix(c.means.begin(),
                                         c.means.end() - 1);
        const std::vector<double> p = GeometricProbabilities(bits, c.gamma);
        const double at_n = VarianceBound(prefix, p, static_cast<double>(c.n));
        const double at_more = VarianceBound(
            prefix, p, static_cast<double>(c.n + c.extra_n));
        if (at_more > at_n * (1.0 + 1e-12) + 1e-12) {
          return "bound increased when n grew";
        }
        // Exact 1/n scaling: n * bound(n) is constant in n.
        const double lhs = static_cast<double>(c.n) * at_n;
        const double rhs = static_cast<double>(c.n + c.extra_n) * at_more;
        if (std::abs(lhs - rhs) > 1e-9 * std::max(1.0, std::abs(lhs))) {
          return "n * bound(n) is not constant in n";
        }
        return std::nullopt;
      });
}

TEST(PropInvariantsTest, VarianceBoundMonotoneInBitDepth) {
  CheckProperty<VarianceCase>(
      "adding a bit never lowers the geometric-allocation variance bound",
      VarianceDomain(),
      [](const VarianceCase& c) -> std::optional<std::string> {
        const int bits = static_cast<int>(c.means.size()) - 1;
        const std::vector<double> prefix(c.means.begin(),
                                         c.means.end() - 1);
        const double shallow = VarianceBound(
            prefix, GeometricProbabilities(bits, c.gamma),
            static_cast<double>(c.n));
        const double deep = VarianceBound(
            c.means, GeometricProbabilities(bits + 1, c.gamma),
            static_cast<double>(c.n));
        // Every term grows (the normalizer gains the new bit's weight, so
        // every p_j shrinks) and the new term is non-negative.
        if (deep < shallow * (1.0 - 1e-12) - 1e-9) {
          std::ostringstream out;
          out.precision(17);
          out << "bound fell from " << shallow << " to " << deep
              << " when bit depth grew";
          return out.str();
        }
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Secure aggregation: pairwise masks cancel exactly (Section 3.3).

struct SecureAggCase {
  uint64_t session_seed = 0;
  std::vector<uint64_t> values;
};

Domain<SecureAggCase> SecureAggDomain() {
  Domain<SecureAggCase> domain;
  domain.generate = [](Rng& rng) {
    SecureAggCase c;
    c.session_seed = rng.NextUint64();
    const size_t n = 1 + static_cast<size_t>(rng.NextBelow(64));
    c.values.resize(n);
    for (uint64_t& v : c.values) v = rng.NextUint64();
    return c;
  };
  domain.shrink = [](const SecureAggCase& c) {
    std::vector<SecureAggCase> out;
    if (c.values.size() > 1) {
      SecureAggCase smaller = c;
      smaller.values.resize(std::max<size_t>(1, c.values.size() / 2));
      out.push_back(smaller);
    }
    for (size_t i = 0; i < c.values.size(); ++i) {
      if (c.values[i] != 0) {
        SecureAggCase smaller = c;
        smaller.values[i] = 0;
        out.push_back(smaller);
      }
    }
    return out;
  };
  domain.describe = [](const SecureAggCase& c) {
    std::ostringstream out;
    out << "{seed=" << c.session_seed << " n=" << c.values.size() << "}";
    return out.str();
  };
  return domain;
}

TEST(PropInvariantsTest, SecureAggMasksCancelToExactSum) {
  CheckProperty<SecureAggCase>(
      "masked submissions sum to the exact plaintext sum mod 2^64",
      SecureAggDomain(),
      [](const SecureAggCase& c) -> std::optional<std::string> {
        Rng rng(c.session_seed);
        SecureAggregator agg(static_cast<int64_t>(c.values.size()), rng);
        uint64_t expected = 0;
        for (size_t i = 0; i < c.values.size(); ++i) {
          agg.Submit(agg.Mask(static_cast<int64_t>(i), c.values[i]));
          expected += c.values[i];  // Z_{2^64} wraparound is the protocol's ring
        }
        if (!agg.complete()) return "aggregator not complete after all submits";
        if (agg.Sum() != expected) {
          std::ostringstream out;
          out << "recovered sum " << agg.Sum() << " != plaintext sum "
              << expected;
          return out.str();
        }
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Dropout-tolerant secure aggregation: survivors' sum recovers iff the
// Shamir threshold is met, and equals the plaintext survivor sum.

struct DropoutAggCase {
  uint64_t session_seed = 0;
  int64_t threshold = 2;
  std::vector<uint64_t> values;  // < kShamirPrime
  uint64_t drop_mask = 0;        // bit i set => client i drops

  int survivors() const {
    int alive = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if ((drop_mask & (uint64_t{1} << i)) == 0) ++alive;
    }
    return alive;
  }
};

Domain<DropoutAggCase> DropoutAggDomain() {
  Domain<DropoutAggCase> domain;
  domain.generate = [](Rng& rng) {
    DropoutAggCase c;
    c.session_seed = rng.NextUint64();
    const size_t n = 2 + static_cast<size_t>(rng.NextBelow(9));  // 2..10
    c.threshold = 2 + static_cast<int64_t>(rng.NextBelow(
                          static_cast<uint64_t>(n) - 1));
    c.values.resize(n);
    for (uint64_t& v : c.values) v = rng.NextBelow(kShamirPrime);
    c.drop_mask = rng.NextUint64() & ((uint64_t{1} << n) - 1);
    return c;
  };
  domain.shrink = [](const DropoutAggCase& c) {
    std::vector<DropoutAggCase> out;
    if (c.drop_mask != 0) {
      DropoutAggCase smaller = c;
      smaller.drop_mask = 0;
      out.push_back(smaller);
    }
    for (size_t i = 0; i < c.values.size(); ++i) {
      if (c.values[i] != 0) {
        DropoutAggCase smaller = c;
        smaller.values[i] = 0;
        out.push_back(smaller);
      }
    }
    return out;
  };
  domain.describe = [](const DropoutAggCase& c) {
    std::ostringstream out;
    out << "{seed=" << c.session_seed << " n=" << c.values.size()
        << " threshold=" << c.threshold << " drop_mask=0x" << std::hex
        << c.drop_mask << std::dec << " survivors=" << c.survivors() << "}";
    return out.str();
  };
  return domain;
}

TEST(PropInvariantsTest, DropoutSecureAggRecoversSurvivorSumIffThresholdMet) {
  CheckOptions options;
  options.iterations = 100;        // Shamir reconstruction is the cost here
  options.max_iterations = 20000;
  CheckProperty<DropoutAggCase>(
      "double-masking recovers the survivors' sum exactly when survivors >= "
      "threshold, and refuses below it",
      DropoutAggDomain(),
      [](const DropoutAggCase& c) -> std::optional<std::string> {
        Rng rng(c.session_seed);
        DoubleMaskingSession session(static_cast<int>(c.values.size()),
                                     static_cast<int>(c.threshold), rng);
        uint64_t expected = 0;
        for (size_t i = 0; i < c.values.size(); ++i) {
          if ((c.drop_mask & (uint64_t{1} << i)) != 0) {
            session.MarkDropped(static_cast<int>(i));
          } else {
            session.Submit(static_cast<int>(i), c.values[i]);
            expected = (expected + c.values[i]) % kShamirPrime;
          }
        }
        const std::optional<uint64_t> sum = session.RecoverSum();
        const bool recoverable = c.survivors() >= c.threshold;
        if (sum.has_value() != recoverable) {
          return sum.has_value()
                     ? std::optional<std::string>(
                           "sum recovered below the Shamir threshold")
                     : std::optional<std::string>(
                           "sum unrecoverable with enough survivors");
        }
        if (sum.has_value() && *sum != expected) {
          std::ostringstream out;
          out << "recovered " << *sum << " != survivor sum " << expected;
          return out.str();
        }
        return std::nullopt;
      },
      options);
}

// ---------------------------------------------------------------------------
// Privacy meter: budget conservation under random charge/deny sequences,
// checked against an independent reference model of the §1.1 caps, plus
// canonical serialization round-trip.

struct ChargeOp {
  int64_t client = 0;
  int64_t value = 0;
  int64_t epsilon_selector = 0;  // index into kEpsilonChoices

  double epsilon() const {
    static constexpr double kInf = std::numeric_limits<double>::infinity();
    const double choices[] = {0.0, 0.25, 0.5, 1.0,
                              2.0, -1.0, kInf, std::nan("")};
    return choices[epsilon_selector];
  }
};

struct MeterCase {
  int64_t max_bits_per_value = 1;
  int64_t max_bits_per_client = 1;
  double max_epsilon_per_client = 1.0;
  std::vector<ChargeOp> ops;
};

Domain<MeterCase> MeterDomain() {
  Domain<MeterCase> domain;
  domain.generate = [](Rng& rng) {
    MeterCase c;
    c.max_bits_per_value = 1 + static_cast<int64_t>(rng.NextBelow(3));
    c.max_bits_per_client = 1 + static_cast<int64_t>(rng.NextBelow(16));
    const double epsilon_caps[] = {0.5, 1.0, 4.0,
                                   std::numeric_limits<double>::infinity()};
    c.max_epsilon_per_client = epsilon_caps[rng.NextBelow(4)];
    const size_t n = 1 + static_cast<size_t>(rng.NextBelow(64));
    c.ops.resize(n);
    for (ChargeOp& op : c.ops) {
      op.client = static_cast<int64_t>(rng.NextBelow(4));
      op.value = static_cast<int64_t>(rng.NextBelow(6));
      op.epsilon_selector = static_cast<int64_t>(rng.NextBelow(8));
    }
    return c;
  };
  domain.shrink = [](const MeterCase& c) {
    std::vector<MeterCase> out;
    if (c.ops.size() > 1) {
      MeterCase smaller = c;
      smaller.ops.resize(c.ops.size() / 2);
      out.push_back(smaller);
    }
    for (size_t i = 0; i < c.ops.size(); ++i) {
      MeterCase smaller = c;
      smaller.ops.erase(smaller.ops.begin() + static_cast<ptrdiff_t>(i));
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const MeterCase& c) {
    std::ostringstream out;
    out << "{caps: value=" << c.max_bits_per_value
        << " client=" << c.max_bits_per_client
        << " epsilon=" << c.max_epsilon_per_client << "; ops=[";
    for (size_t i = 0; i < c.ops.size(); ++i) {
      if (i > 0) out << " ";
      out << "(" << c.ops[i].client << "," << c.ops[i].value << ","
          << c.ops[i].epsilon() << ")";
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

// Reference model of TryChargeBit: the documented cap semantics, written
// independently of core/privacy_meter.cc so the two can disagree.
struct MeterModel {
  explicit MeterModel(const MeterPolicy& policy) : policy(policy) {}

  bool Charge(int64_t client, int64_t value, double epsilon) {
    if (!std::isfinite(epsilon) || epsilon < 0.0) {
      ++denied;
      return false;
    }
    const int64_t value_bits = bits_per_value[{client, value}];
    const int64_t client_bits = bits_per_client[client];
    const double client_epsilon = epsilon_per_client[client];
    if (value_bits + 1 > policy.max_bits_per_value ||
        client_bits + 1 > policy.max_bits_per_client ||
        client_epsilon + epsilon > policy.max_epsilon_per_client) {
      ++denied;
      return false;
    }
    bits_per_value[{client, value}] = value_bits + 1;
    bits_per_client[client] = client_bits + 1;
    epsilon_per_client[client] = client_epsilon + epsilon;
    total_bits += 1;
    total_epsilon += epsilon;
    return true;
  }

  MeterPolicy policy;
  std::map<std::pair<int64_t, int64_t>, int64_t> bits_per_value;
  std::map<int64_t, int64_t> bits_per_client;
  std::map<int64_t, double> epsilon_per_client;
  int64_t total_bits = 0;
  double total_epsilon = 0.0;
  int64_t denied = 0;
};

TEST(PropInvariantsTest, PrivacyMeterConservesBudgetAgainstReferenceModel) {
  CheckProperty<MeterCase>(
      "every charge decision, ledger total, and denial count matches the "
      "documented cap model, and no cap is ever exceeded",
      MeterDomain(),
      [](const MeterCase& c) -> std::optional<std::string> {
        MeterPolicy policy;
        policy.max_bits_per_value = c.max_bits_per_value;
        policy.max_bits_per_client = c.max_bits_per_client;
        policy.max_epsilon_per_client = c.max_epsilon_per_client;
        PrivacyMeter meter(policy);
        MeterModel model(policy);
        for (size_t i = 0; i < c.ops.size(); ++i) {
          const ChargeOp& op = c.ops[i];
          const bool granted =
              meter.TryChargeBit(op.client, op.value, op.epsilon());
          const bool expected = model.Charge(op.client, op.value,
                                             op.epsilon());
          if (granted != expected) {
            std::ostringstream out;
            out << "op " << i << ": meter " << (granted ? "granted" : "denied")
                << " but the model " << (expected ? "granted" : "denied");
            return out.str();
          }
        }
        if (meter.total_bits() != model.total_bits) {
          return "total_bits diverged from the model";
        }
        if (meter.denied_charges() != model.denied) {
          return "denied_charges diverged from the model";
        }
        // Conservation: the global total is exactly the sum of per-client
        // ledgers, and no ledger exceeds its cap.
        int64_t client_sum = 0;
        for (const auto& [client, bits] : model.bits_per_client) {
          if (meter.ClientBits(client) != bits) {
            return "a per-client bit ledger diverged from the model";
          }
          if (meter.ClientEpsilon(client) !=
              model.epsilon_per_client[client]) {
            return "a per-client epsilon ledger diverged from the model";
          }
          if (bits > c.max_bits_per_client) {
            return "a client exceeded max_bits_per_client";
          }
          client_sum += bits;
        }
        if (client_sum != meter.total_bits()) {
          return "per-client bits do not sum to total_bits";
        }
        for (const auto& [key, bits] : model.bits_per_value) {
          if (meter.ValueBits(key.first, key.second) != bits) {
            return "a per-value bit ledger diverged from the model";
          }
          if (bits > c.max_bits_per_value) {
            return "a (client, value) pair exceeded max_bits_per_value";
          }
        }
        return std::nullopt;
      });
}

TEST(PropInvariantsTest, PrivacyMeterSerializationRoundTripIsCanonical) {
  CheckProperty<MeterCase>(
      "EncodeTo -> DecodeFrom -> EncodeTo reproduces identical bytes and an "
      "identical ledger",
      MeterDomain(),
      [](const MeterCase& c) -> std::optional<std::string> {
        MeterPolicy policy;
        policy.max_bits_per_value = c.max_bits_per_value;
        policy.max_bits_per_client = c.max_bits_per_client;
        policy.max_epsilon_per_client = c.max_epsilon_per_client;
        PrivacyMeter meter(policy);
        for (const ChargeOp& op : c.ops) {
          meter.TryChargeBit(op.client, op.value, op.epsilon());
        }
        std::vector<uint8_t> encoded;
        meter.EncodeTo(&encoded);
        PrivacyMeter decoded((MeterPolicy()));
        size_t offset = 0;
        if (!PrivacyMeter::DecodeFrom(encoded, &offset, &decoded)) {
          return "DecodeFrom rejected a meter's own encoding";
        }
        if (offset != encoded.size()) {
          return "DecodeFrom left trailing bytes unconsumed";
        }
        if (decoded.total_bits() != meter.total_bits() ||
            decoded.total_epsilon() != meter.total_epsilon()) {
          return "decoded ledger totals differ from the original";
        }
        std::vector<uint8_t> re_encoded;
        decoded.EncodeTo(&re_encoded);
        if (re_encoded != encoded) {
          return "re-encoding the decoded meter produced different bytes";
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace bitpush
