// bitprop: a small property-based testing framework for the bitpush tree.
//
// The paper's guarantees are universal statements — RR-unbiased estimators,
// variance bounds monotone in n and bit depth, exact fixed-point
// round-trips, secure-agg mask cancellation — and the SIMD/shard roadmap
// items will rewrite the code that upholds them. This framework states such
// invariants once over a *domain* of random inputs instead of a hand-picked
// grid, so a refactor that breaks a corner case is caught by generation,
// not by reviewer imagination.
//
// Design, in the spirit of proptest but seeded like everything else here:
//
//   * A Domain<T> bundles a seeded generator, an optional shrinker
//     (candidate simplifications, tried in order), and a printer.
//   * A Property<T> maps a value to std::nullopt (pass) or a failure
//     message. Properties never throw; they are plain deterministic
//     functions so shrinking can re-evaluate them freely.
//   * CheckProperty runs `iterations` cases, each from its own 64-bit case
//     seed derived from the fixed base seed. On the first failure it
//     greedily shrinks to a local minimum and reports the case seed as
//     `BITPROP_SEED=<seed>`; re-running with that environment variable
//     replays exactly the failing case (generation, failure, and shrink are
//     all pure functions of the seed).
//   * `BITPROP_ITERS=<n>` raises the per-property iteration count for the
//     long mode (scripts/check.sh --long, the CI property-long job), and
//     `BITPROP_BASE_SEED=<s>` reroots the whole case stream so scheduled
//     runs explore different cases while each individual run stays fully
//     reproducible. There is deliberately no wall-clock time budget: the
//     determinism lint bans clocks outside src/obs/, and a time-budgeted
//     run would not reproduce.
//
// Everything is deterministic by default: without BITPROP_* overrides, two
// `ctest -R Prop` runs execute byte-identical case streams.

#ifndef BITPUSH_TESTS_PROP_BITPROP_H_
#define BITPUSH_TESTS_PROP_BITPROP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace bitpush::prop {

// ---------------------------------------------------------------------------
// Run configuration (environment overrides).

struct RunConfig {
  // Base seed of the deterministic case stream. Fixed so plain ctest runs
  // are reproducible without any environment; BITPROP_BASE_SEED reroots it
  // (the nightly property-long job iterates a fixed list of such bases).
  uint64_t base_seed = 0xB17C0DE5EEDull;
  // BITPROP_SEED: replay exactly this one case seed (reproduction mode).
  std::optional<uint64_t> pinned_seed;
  // BITPROP_ITERS: per-property iteration count for long runs. Applied as
  // an override, clamped to each property's max_iterations.
  std::optional<int64_t> iterations_override;
};

// Parsed once from the environment (BITPROP_SEED, BITPROP_ITERS,
// BITPROP_BASE_SEED).
const RunConfig& GlobalRunConfig();

// The seed of case `iteration` in the stream rooted at `base_seed`
// (SplitMix64 of the pair, so case seeds are decorrelated and a printed
// seed is self-contained: replaying it needs no iteration index).
uint64_t CaseSeed(uint64_t base_seed, uint64_t iteration);

// ---------------------------------------------------------------------------
// Domains.

// A domain of generated values: seeded generator + optional shrinker +
// printer. `shrink` returns candidate simplifications of a failing value in
// decreasing preference (most aggressive first); the runner greedily takes
// the first candidate that still fails and repeats until no candidate
// fails, which is what makes the minimal counterexample deterministic.
template <typename T>
struct Domain {
  std::function<T(Rng&)> generate;
  std::function<std::vector<T>(const T&)> shrink;      // may be null
  std::function<std::string(const T&)> describe;       // may be null

  std::string Describe(const T& value) const {
    if (describe) return describe(value);
    return "<no printer>";
  }
};

// Integers uniform in [lo, hi], shrinking toward lo (boundary first, then
// binary steps, then -1): a failing threshold property shrinks to the exact
// smallest failing value.
Domain<int64_t> InRange(int64_t lo, int64_t hi);

// Doubles uniform in [lo, hi), shrinking toward lo by halving the distance.
Domain<double> InReal(double lo, double hi);

// Uniform uint64_t below `bound`, shrinking toward 0.
Domain<uint64_t> Below(uint64_t bound);

// A fixed choice list; generation picks uniformly, shrinking moves toward
// earlier (simpler-by-convention) entries.
template <typename T>
Domain<T> OneOf(std::vector<T> choices);

// Vectors of `element` with size uniform in [min_size, max_size].
// Shrinking first drops elements (suffix halves, then single elements),
// then shrinks individual elements — so a failing vector minimizes to the
// shortest witness with the smallest entries.
template <typename T>
Domain<std::vector<T>> VectorOf(Domain<T> element, size_t min_size,
                                size_t max_size);

// ---------------------------------------------------------------------------
// Properties and the runner.

// std::nullopt = pass; a string = failure description. Must be a pure
// function of the value (shrinking re-evaluates it many times).
template <typename T>
using Property = std::function<std::optional<std::string>(const T&)>;

struct CheckOptions {
  // Fixed-case mode iteration count (the default ctest mode).
  int64_t iterations = 200;
  // Cap applied to a BITPROP_ITERS override, so expensive suites (the
  // differential campaigns) bound their long-mode cost explicitly.
  int64_t max_iterations = 1'000'000;
  // Shrink-step budget; a greedy chain longer than this stops and reports
  // the best-so-far counterexample.
  int64_t max_shrink_steps = 1000;
};

struct CheckOutcome {
  bool ok = true;
  // Valid when !ok:
  uint64_t failing_seed = 0;
  int64_t failing_iteration = -1;  // -1 in BITPROP_SEED reproduction mode
  int64_t shrink_steps = 0;
  std::string original;  // describe() of the originally generated case
  std::string minimal;   // describe() of the shrunk counterexample
  std::string message;   // the property's failure message on the minimal case
  std::string report;    // the full human-readable report
  // Iterations actually executed (for self-tests of the long mode).
  int64_t iterations_run = 0;
};

// Formats the failure block, including the `BITPROP_SEED=<seed>` line that
// the reproduction contract promises.
std::string FormatFailureReport(const std::string& name,
                                const CheckOutcome& outcome);

// Core engine, gtest-free and pure: exposed so the framework's own
// regression tests (prop_shrink_test.cc) can assert on shrinking and
// reproduction without spawning processes.
template <typename T>
CheckOutcome RunProperty(const std::string& name, const Domain<T>& domain,
                         const Property<T>& property,
                         const CheckOptions& options, const RunConfig& config) {
  CheckOutcome outcome;
  const auto run_case = [&](uint64_t seed, int64_t iteration) -> bool {
    Rng rng(seed);
    const T value = domain.generate(rng);
    std::optional<std::string> failure = property(value);
    if (!failure.has_value()) return true;

    // Greedy deterministic shrink: take the first still-failing candidate,
    // repeat until a full candidate pass succeeds everywhere (local
    // minimum) or the step budget runs out.
    T minimal = value;
    std::string minimal_message = *failure;
    int64_t steps = 0;
    bool progressed = domain.shrink != nullptr;
    while (progressed && steps < options.max_shrink_steps) {
      progressed = false;
      for (const T& candidate : domain.shrink(minimal)) {
        std::optional<std::string> candidate_failure = property(candidate);
        if (candidate_failure.has_value()) {
          minimal = candidate;
          minimal_message = std::move(*candidate_failure);
          ++steps;
          progressed = true;
          break;
        }
      }
    }

    outcome.ok = false;
    outcome.failing_seed = seed;
    outcome.failing_iteration = iteration;
    outcome.shrink_steps = steps;
    outcome.original = domain.Describe(value);
    outcome.minimal = domain.Describe(minimal);
    outcome.message = minimal_message;
    outcome.report = FormatFailureReport(name, outcome);
    return false;
  };

  if (config.pinned_seed.has_value()) {
    // Reproduction mode: exactly the one printed case.
    outcome.iterations_run = 1;
    run_case(*config.pinned_seed, -1);
    return outcome;
  }
  const int64_t iterations =
      std::min(config.iterations_override.value_or(options.iterations),
               options.max_iterations);
  for (int64_t i = 0; i < iterations; ++i) {
    ++outcome.iterations_run;
    if (!run_case(CaseSeed(config.base_seed, static_cast<uint64_t>(i)), i)) {
      return outcome;
    }
  }
  return outcome;
}

// gtest glue: runs the property under the global (environment-derived)
// configuration and reports a non-fatal failure with the formatted report.
template <typename T>
void CheckProperty(const std::string& name, const Domain<T>& domain,
                   const Property<T>& property, CheckOptions options = {}) {
  const CheckOutcome outcome =
      RunProperty(name, domain, property, options, GlobalRunConfig());
  if (!outcome.ok) ADD_FAILURE() << outcome.report;
}

// ---------------------------------------------------------------------------
// Template definitions.

template <typename T>
Domain<T> OneOf(std::vector<T> choices) {
  Domain<T> domain;
  auto shared = std::make_shared<std::vector<T>>(std::move(choices));
  domain.generate = [shared](Rng& rng) {
    return (*shared)[static_cast<size_t>(rng.NextBelow(shared->size()))];
  };
  domain.shrink = [shared](const T& value) {
    std::vector<T> candidates;
    for (const T& choice : *shared) {
      if (choice == value) break;  // only strictly earlier entries
      candidates.push_back(choice);
    }
    return candidates;
  };
  domain.describe = [](const T& value) {
    std::ostringstream out;
    out << value;
    return out.str();
  };
  return domain;
}

template <typename T>
Domain<std::vector<T>> VectorOf(Domain<T> element, size_t min_size,
                                size_t max_size) {
  Domain<std::vector<T>> domain;
  auto shared = std::make_shared<Domain<T>>(std::move(element));
  domain.generate = [shared, min_size, max_size](Rng& rng) {
    const size_t size =
        min_size + static_cast<size_t>(rng.NextBelow(max_size - min_size + 1));
    std::vector<T> values;
    values.reserve(size);
    for (size_t i = 0; i < size; ++i) values.push_back(shared->generate(rng));
    return values;
  };
  domain.shrink = [shared, min_size](const std::vector<T>& value) {
    std::vector<std::vector<T>> candidates;
    // Structural shrinks first: drop the tail half, then single elements.
    if (value.size() > min_size) {
      const size_t half = std::max(min_size, value.size() / 2);
      if (half < value.size()) {
        candidates.emplace_back(value.begin(),
                                value.begin() + static_cast<ptrdiff_t>(half));
      }
      for (size_t i = 0; i < value.size(); ++i) {
        std::vector<T> dropped;
        dropped.reserve(value.size() - 1);
        for (size_t j = 0; j < value.size(); ++j) {
          if (j != i) dropped.push_back(value[j]);
        }
        candidates.push_back(std::move(dropped));
      }
    }
    // Then element-wise shrinks, one position at a time.
    if (shared->shrink != nullptr) {
      for (size_t i = 0; i < value.size(); ++i) {
        for (const T& smaller : shared->shrink(value[i])) {
          std::vector<T> replaced = value;
          replaced[i] = smaller;
          candidates.push_back(std::move(replaced));
        }
      }
    }
    return candidates;
  };
  domain.describe = [shared](const std::vector<T>& value) {
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < value.size(); ++i) {
      if (i > 0) out << ", ";
      out << (shared->describe ? shared->describe(value[i]) : "?");
    }
    out << "]";
    return out.str();
  };
  return domain;
}

}  // namespace bitpush::prop

#endif  // BITPUSH_TESTS_PROP_BITPROP_H_
