// Differential oracles over random campaigns (ROADMAP item 2): the same
// seeded workload executed through two code paths that must agree
// bit-for-bit. These are the equivalence harnesses the SIMD rewrite
// (scalar-vs-SIMD) and the shard-out (sharded-vs-single) will plug into:
//
//   * live vs crash-recovered replay (durable runner + journal truncation),
//   * resilience machinery armed vs disabled on fault-free plans,
//   * secure aggregation vs plaintext aggregation,
//   * scalar kernel forced vs dispatched SIMD kernel (src/kernels/),
//   * wire encode -> decode -> re-encode byte stability.
//
// Each case embeds every seed it uses, so a printed BITPROP_SEED replays
// the whole differential run, including the crash point.
//
// bitpush-lint: allow(privacy-metering): differential oracles replay synthetic campaigns through the library's own metered paths; no real client value is behind the generated reports

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/campaign.h"
#include "kernels/kernels.h"
#include "federated/client.h"
#include "federated/report.h"
#include "federated/round.h"
#include "federated/shard/merge.h"
#include "federated/shard/runner.h"
#include "federated/wire.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "prop/bitprop.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

using ::bitpush::prop::CheckOptions;
using ::bitpush::prop::CheckProperty;
using ::bitpush::prop::Domain;

// ---------------------------------------------------------------------------
// Random federated campaigns.

struct CampaignCase {
  uint64_t data_seed = 0;
  uint64_t protocol_seed = 0;
  uint64_t resilience_seed = 0;
  int64_t clients = 60;
  int64_t bits = 4;
  int64_t max_cohort = 40;
  double epsilon = 0.0;   // 0 = no DP noise
  double dropout = 0.0;
};

Domain<CampaignCase> CampaignDomain() {
  Domain<CampaignCase> domain;
  domain.generate = [](Rng& rng) {
    CampaignCase c;
    c.data_seed = rng.NextUint64();
    c.protocol_seed = rng.NextUint64();
    c.resilience_seed = rng.NextUint64();
    c.clients = 60 + static_cast<int64_t>(rng.NextBelow(200));
    c.bits = 3 + static_cast<int64_t>(rng.NextBelow(6));
    c.max_cohort = 40 + static_cast<int64_t>(rng.NextBelow(
                            static_cast<uint64_t>(c.clients) - 39));
    c.epsilon = rng.NextBernoulli(0.5) ? 0.0 : 0.5 + 1.5 * rng.NextDouble();
    c.dropout = rng.NextBernoulli(0.5) ? 0.0 : 0.25 * rng.NextDouble();
    return c;
  };
  domain.shrink = [](const CampaignCase& c) {
    std::vector<CampaignCase> out;
    if (c.dropout != 0.0) {
      CampaignCase smaller = c;
      smaller.dropout = 0.0;
      out.push_back(smaller);
    }
    if (c.epsilon != 0.0) {
      CampaignCase smaller = c;
      smaller.epsilon = 0.0;
      out.push_back(smaller);
    }
    if (c.bits > 3) {
      CampaignCase smaller = c;
      smaller.bits = 3;
      out.push_back(smaller);
    }
    if (c.clients > 60) {
      CampaignCase smaller = c;
      smaller.clients = std::max<int64_t>(60, c.clients / 2);
      smaller.max_cohort = std::min(smaller.max_cohort, smaller.clients);
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const CampaignCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{data_seed=" << c.data_seed
        << " protocol_seed=" << c.protocol_seed
        << " resilience_seed=" << c.resilience_seed
        << " clients=" << c.clients << " bits=" << c.bits
        << " max_cohort=" << c.max_cohort << " epsilon=" << c.epsilon
        << " dropout=" << c.dropout << "}";
    return out.str();
  };
  return domain;
}

std::vector<Client> MakeCampaignPopulation(const CampaignCase& c) {
  Rng rng(c.data_seed);
  const double top = std::exp2(static_cast<double>(c.bits)) - 1.0;
  std::vector<double> values(static_cast<size_t>(c.clients));
  for (double& v : values) v = top * rng.NextDouble();
  ClientConfig config;
  config.dropout_probability = c.dropout;
  return MakePopulation(values, config);
}

FederatedQueryConfig MakeQueryConfig(const CampaignCase& c) {
  FederatedQueryConfig config;
  config.adaptive.bits = static_cast<int>(c.bits);
  config.adaptive.epsilon = c.epsilon;
  config.cohort.max_cohort_size = c.max_cohort;
  return config;
}

// The bit-for-bit comparison shared by the query-level oracles.
std::optional<std::string> CompareQueryResults(
    const FederatedQueryResult& a, const FederatedQueryResult& b,
    const std::string& label) {
  if (a.aborted != b.aborted) return label + ": aborted flags differ";
  if (a.estimate != b.estimate) {
    std::ostringstream out;
    out.precision(17);
    out << label << ": estimates differ (" << a.estimate << " vs "
        << b.estimate << ")";
    return out.str();
  }
  if (a.final_bit_means != b.final_bit_means) {
    return label + ": final bit means differ";
  }
  if (a.round2_probabilities != b.round2_probabilities) {
    return label + ": round-2 probabilities differ";
  }
  if (a.kept != b.kept) return label + ": squash masks differ";
  if (a.round1.responded != b.round1.responded ||
      a.round2.responded != b.round2.responded) {
    return label + ": responder counts differ";
  }
  if (a.used_static_fallback != b.used_static_fallback) {
    return label + ": static-fallback flags differ";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Oracle: secure aggregation vs plaintext aggregation.

TEST(PropDifferentialTest, SecureAggAndPlaintextAgreeBitForBit) {
  CheckOptions options;
  options.iterations = 120;
  CheckProperty<CampaignCase>(
      "a query aggregated under secure-agg masks equals the plaintext run",
      CampaignDomain(),
      [](const CampaignCase& c) -> std::optional<std::string> {
        const std::vector<Client> clients = MakeCampaignPopulation(c);
        const FixedPointCodec codec =
            FixedPointCodec::Integer(static_cast<int>(c.bits));
        FederatedQueryConfig config = MakeQueryConfig(c);
        Rng plain_rng(c.protocol_seed);
        const FederatedQueryResult plain =
            RunFederatedMeanQuery(clients, codec, config, nullptr, plain_rng);
        config.use_secure_aggregation = true;
        Rng secure_rng(c.protocol_seed);
        const FederatedQueryResult secure =
            RunFederatedMeanQuery(clients, codec, config, nullptr, secure_rng);
        return CompareQueryResults(plain, secure, "secure-agg vs plaintext");
      },
      options);
}

// ---------------------------------------------------------------------------
// Oracle: scalar kernel forced vs dispatched SIMD kernel.

TEST(PropDifferentialTest, ScalarAndDispatchedKernelsAgreeBitForBit) {
  CheckOptions options;
  options.iterations = 100;
  CheckProperty<CampaignCase>(
      "a query run with the scalar kernel forced equals the dispatched run "
      "down to meter bytes and wire frames, plaintext and secure-agg alike",
      CampaignDomain(),
      [](const CampaignCase& c) -> std::optional<std::string> {
        const std::vector<Client> clients = MakeCampaignPopulation(c);
        const FixedPointCodec codec =
            FixedPointCodec::Integer(static_cast<int>(c.bits));

        struct KernelRun {
          FederatedQueryResult result;
          std::vector<uint8_t> meter_bytes;
          std::vector<uint8_t> histogram_frames;
        };
        const auto run = [&](bool secure, bool force_scalar) {
          std::optional<kernels::ScopedForceScalar> force;
          if (force_scalar) force.emplace();
          KernelRun out;
          FederatedQueryConfig config = MakeQueryConfig(c);
          config.use_secure_aggregation = secure;
          MeterPolicy policy;
          policy.max_bits_per_value = 2;
          PrivacyMeter meter(policy);
          Rng rng(c.protocol_seed);
          out.result =
              RunFederatedMeanQuery(clients, codec, config, &meter, rng);
          meter.EncodeTo(&out.meter_bytes);
          EncodeBitHistogram(out.result.round1.histogram,
                             &out.histogram_frames);
          EncodeBitHistogram(out.result.round2.histogram,
                             &out.histogram_frames);
          return out;
        };

        for (const bool secure : {false, true}) {
          const std::string label = secure
                                        ? "scalar vs simd (secure-agg)"
                                        : "scalar vs simd (plaintext)";
          const KernelRun dispatched = run(secure, /*force_scalar=*/false);
          const KernelRun scalar = run(secure, /*force_scalar=*/true);
          if (auto diff = CompareQueryResults(dispatched.result,
                                              scalar.result, label)) {
            return diff;
          }
          if (dispatched.meter_bytes != scalar.meter_bytes) {
            return label + ": privacy meter ledgers differ";
          }
          if (dispatched.histogram_frames != scalar.histogram_frames) {
            return label + ": encoded histogram wire frames differ";
          }
        }
        return std::nullopt;
      },
      options);
}

// ---------------------------------------------------------------------------
// Oracle: resilience machinery armed vs disabled, on fault-free plans.

TEST(PropDifferentialTest, ResilienceIsInertWithoutFaults) {
  CheckOptions options;
  options.iterations = 120;
  CheckProperty<CampaignCase>(
      "with no fault plan, arming retries/hedging/breaker changes nothing",
      CampaignDomain(),
      [](const CampaignCase& c) -> std::optional<std::string> {
        const std::vector<Client> clients = MakeCampaignPopulation(c);
        const FixedPointCodec codec =
            FixedPointCodec::Integer(static_cast<int>(c.bits));
        const FederatedQueryConfig baseline = MakeQueryConfig(c);
        Rng baseline_rng(c.protocol_seed);
        const FederatedQueryResult off = RunFederatedMeanQuery(
            clients, codec, baseline, nullptr, baseline_rng);

        FederatedQueryConfig armed = baseline;
        armed.resilience.seed = c.resilience_seed;
        armed.resilience.retry.max_retries_per_client = 3;
        armed.resilience.hedge.enabled = true;
        armed.resilience.breaker.consecutive_failures_to_open = 2;
        Rng armed_rng(c.protocol_seed);
        const FederatedQueryResult on =
            RunFederatedMeanQuery(clients, codec, armed, nullptr, armed_rng);

        if (on.retry.RecoveredTotal() != 0) {
          return std::string(
              "resilience recovered clients on a fault-free plan");
        }
        return CompareQueryResults(off, on, "resilience on vs off");
      },
      options);
}

// ---------------------------------------------------------------------------
// Oracle: live campaign vs crash-recovered replay.

struct DurableCase {
  CampaignCase campaign;
  uint64_t runner_seed = 0;
  int64_t ticks = 1;
  double truncate_frac = 0.5;  // journal prefix kept at the crash point
};

Domain<DurableCase> DurableDomain() {
  Domain<DurableCase> domain;
  Domain<CampaignCase> inner = CampaignDomain();
  domain.generate = [inner](Rng& rng) {
    DurableCase c;
    c.campaign = inner.generate(rng);
    // Durable runs re-run the query every tick; keep populations modest.
    c.campaign.clients = 60 + static_cast<int64_t>(rng.NextBelow(80));
    c.campaign.max_cohort =
        std::min(c.campaign.max_cohort, c.campaign.clients);
    c.runner_seed = rng.NextUint64();
    c.ticks = 1 + static_cast<int64_t>(rng.NextBelow(2));
    c.truncate_frac = rng.NextDouble();
    return c;
  };
  domain.shrink = [inner](const DurableCase& c) {
    std::vector<DurableCase> out;
    if (c.ticks > 1) {
      DurableCase smaller = c;
      smaller.ticks = 1;
      out.push_back(smaller);
    }
    for (const CampaignCase& candidate : inner.shrink(c.campaign)) {
      DurableCase smaller = c;
      smaller.campaign = candidate;
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [inner](const DurableCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{campaign=" << inner.Describe(c.campaign)
        << " runner_seed=" << c.runner_seed << " ticks=" << c.ticks
        << " truncate_frac=" << c.truncate_frac << "}";
    return out.str();
  };
  return domain;
}

TEST(PropDifferentialTest, LiveAndCrashRecoveredCampaignsAgreeBitForBit) {
  CheckOptions options;
  options.iterations = 100;
  options.max_iterations = 2000;  // three durable runs per case: bound long mode
  CheckProperty<DurableCase>(
      "a campaign crashed at a random journal prefix and recovered converges "
      "on the live run's history, meter ledger, and journal",
      DurableDomain(),
      [](const DurableCase& c) -> std::optional<std::string> {
        const std::vector<Client> clients =
            MakeCampaignPopulation(c.campaign);
        const std::vector<const std::vector<Client>*> populations = {
            &clients};
        const std::vector<FixedPointCodec> codecs = {
            FixedPointCodec::Integer(static_cast<int>(c.campaign.bits))};
        CampaignQuery query;
        query.name = "prop";
        query.value_id = 0;
        query.query = MakeQueryConfig(c.campaign);
        MeterPolicy policy;
        policy.max_bits_per_value = c.ticks + 1;

        struct RunResult {
          std::vector<CampaignTickResult> history;
          std::vector<uint8_t> meter;
          std::vector<JournalRecord> journal;
          bool recovered = false;
          std::string error;
        };
        auto run = [&](const std::string& dir) -> RunResult {
          RunResult result;
          DurableCampaignOptions runner_options;
          runner_options.state_dir = dir;
          runner_options.seed = c.runner_seed;
          runner_options.fsync = false;
          DurableCampaignRunner runner({query}, policy, runner_options);
          if (!runner.Open(&result.error)) return result;
          for (int64_t tick = 0; tick < c.ticks; ++tick) {
            runner.RunTick(tick, populations, codecs);
          }
          result.history = runner.campaign().history();
          runner.meter().EncodeTo(&result.meter);
          result.recovered = runner.recovery_info().recovered;
          JournalReadResult journal;
          if (!ReadJournal(dir + "/journal.wal", 0, &journal,
                           &result.error)) {
            return result;
          }
          result.journal = std::move(journal.records);
          return result;
        };

        const std::string base =
            ::testing::TempDir() + "/bitprop_differential";
        std::filesystem::remove_all(base);
        const RunResult live = run(base + "/live");
        if (!live.error.empty()) return "live run failed: " + live.error;

        // Crash the second run by cutting its journal to a random prefix,
        // then recover and finish.
        const RunResult interrupted = run(base + "/crash");
        if (!interrupted.error.empty()) {
          return "pre-crash run failed: " + interrupted.error;
        }
        const size_t keep = static_cast<size_t>(
            c.truncate_frac *
            static_cast<double>(interrupted.journal.size()));
        std::string error;
        if (!TruncateJournalToRecords(base + "/crash/journal.wal", keep,
                                      &error)) {
          return "journal truncation failed: " + error;
        }
        const RunResult recovered = run(base + "/crash");
        std::filesystem::remove_all(base);
        if (!recovered.error.empty()) {
          return "recovered run failed: " + recovered.error;
        }

        if (!(recovered.history == live.history)) {
          return std::string("recovered history differs from the live run");
        }
        if (recovered.meter != live.meter) {
          return std::string(
              "recovered meter ledger differs from the live run");
        }
        if (recovered.journal.size() != live.journal.size()) {
          return std::string("recovered journal length differs");
        }
        for (size_t i = 0; i < live.journal.size(); ++i) {
          if (recovered.journal[i].type != live.journal[i].type ||
              recovered.journal[i].payload != live.journal[i].payload) {
            std::ostringstream out;
            out << "recovered journal diverges at record " << i;
            return out.str();
          }
        }
        return std::nullopt;
      },
      options);
}

// ---------------------------------------------------------------------------
// Oracle: sharded vs single-coordinator execution (ROADMAP item 3). With
// no faults injected, an N-shard run through the full shard machinery
// (partitioning, per-shard campaigns and meters, wire frames, kernel
// merge) must equal the inline single-coordinator reference bit for bit:
// merged results, per-shard meter ledgers, shard metrics, and the
// deterministic observability snapshot.

TEST(PropDifferentialTest, ShardedAndSingleCoordinatorAgreeBitForBit) {
  CheckOptions options;
  options.iterations = 40;
  options.max_iterations = 400;  // 4 shard counts x 2 full runs per case
  CheckProperty<CampaignCase>(
      "a fault-free sharded campaign equals the single-coordinator "
      "reference across shard counts 1, 2, 4, and 8",
      CampaignDomain(),
      [](const CampaignCase& c) -> std::optional<std::string> {
        constexpr int64_t kTicks = 2;
        const std::vector<Client> clients = MakeCampaignPopulation(c);
        const std::vector<const std::vector<Client>*> populations = {
            &clients};
        const std::vector<FixedPointCodec> codecs = {
            FixedPointCodec::Integer(static_cast<int>(c.bits))};
        CampaignQuery query;
        query.name = "prop";
        query.value_id = 0;
        query.query = MakeQueryConfig(c);
        MeterPolicy policy;
        policy.max_bits_per_value = kTicks + 1;

        for (const int64_t shards : {1, 2, 4, 8}) {
          obs::Registry::Default().Reset();
          obs::SetEnabled(true);
          ShardedCampaignOptions sharded_options;
          sharded_options.shards = shards;
          sharded_options.seed = c.protocol_seed;
          ShardedCampaignRunner runner({query}, policy, sharded_options);
          runner.Open(populations, codecs);
          std::vector<MergedTickResult> sharded;
          for (int64_t tick = 0; tick < kTicks; ++tick) {
            MergedTickResult result;
            std::string error;
            if (!runner.RunTick(tick, &result, &error)) {
              obs::SetEnabled(false);
              return "sharded tick failed: " + error;
            }
            sharded.push_back(std::move(result));
          }
          const std::string sharded_obs =
              obs::DeterministicMetricsSnapshot();

          obs::Registry::Default().Reset();
          const ReferenceCampaignResult reference =
              RunSingleCoordinatorReference({query}, policy, shards,
                                            c.protocol_seed, populations,
                                            codecs, kTicks);
          const std::string reference_obs =
              obs::DeterministicMetricsSnapshot();
          obs::SetEnabled(false);
          obs::Registry::Default().Reset();

          const std::string label =
              "shards=" + std::to_string(shards) + ": ";
          if (!(sharded == reference.ticks)) {
            return label + "merged tick results differ from the reference";
          }
          for (int64_t s = 0; s < shards; ++s) {
            if (runner.shard_meter_bytes(s) !=
                reference.shard_meter_bytes[static_cast<size_t>(s)]) {
              return label + "shard " + std::to_string(s) +
                     " meter ledger differs";
            }
          }
          if (runner.merge().merged_metrics().ToSnapshot() !=
              reference.metrics.ToSnapshot()) {
            return label + "merged shard metrics differ";
          }
          if (!(runner.merge().merged_retry_stats() ==
                reference.retry_stats)) {
            return label + "merged retry stats differ";
          }
          if (sharded_obs != reference_obs) {
            return label + "deterministic metric snapshots differ";
          }
        }
        return std::nullopt;
      },
      options);
}

// ---------------------------------------------------------------------------
// Oracle: wire encode -> decode -> re-encode stability.

struct WireCase {
  std::vector<BitReport> reports;
  std::vector<BitRequest> requests;
};

Domain<WireCase> WireDomain() {
  Domain<WireCase> domain;
  domain.generate = [](Rng& rng) {
    WireCase c;
    c.reports.resize(rng.NextBelow(41));
    for (BitReport& report : c.reports) {
      report.client_id = static_cast<int64_t>(rng.NextBelow(1000000));
      report.bit_index = static_cast<int>(rng.NextBelow(53));
      report.bit = rng.NextBit();
    }
    c.requests.resize(rng.NextBelow(41));
    for (BitRequest& request : c.requests) {
      request.round_id = static_cast<int64_t>(rng.NextBelow(1000000));
      request.value_id = static_cast<int64_t>(rng.NextBelow(64));
      request.bit_index = static_cast<int>(rng.NextBelow(53));
      request.rr_epsilon =
          rng.NextBernoulli(0.5) ? 0.0 : 4.0 * rng.NextDouble();
    }
    return c;
  };
  domain.shrink = [](const WireCase& c) {
    std::vector<WireCase> out;
    if (!c.reports.empty()) {
      WireCase smaller = c;
      smaller.reports.resize(c.reports.size() / 2);
      out.push_back(smaller);
    }
    if (!c.requests.empty()) {
      WireCase smaller = c;
      smaller.requests.resize(c.requests.size() / 2);
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const WireCase& c) {
    std::ostringstream out;
    out << "{reports=" << c.reports.size()
        << " requests=" << c.requests.size() << "}";
    return out.str();
  };
  return domain;
}

TEST(PropDifferentialTest, WireReEncodeIsByteStable) {
  CheckProperty<WireCase>(
      "encode -> decode -> re-encode of report and request batches is the "
      "identity on bytes and fields",
      WireDomain(),
      [](const WireCase& c) -> std::optional<std::string> {
        std::vector<uint8_t> report_bytes;
        EncodeReportBatch(c.reports, &report_bytes);
        std::vector<BitReport> decoded_reports;
        if (!DecodeReportBatch(report_bytes, &decoded_reports)) {
          return std::string("a valid report batch failed to decode");
        }
        if (decoded_reports.size() != c.reports.size()) {
          return std::string("report batch changed size across the wire");
        }
        for (size_t i = 0; i < c.reports.size(); ++i) {
          if (decoded_reports[i].client_id != c.reports[i].client_id ||
              decoded_reports[i].bit_index != c.reports[i].bit_index ||
              decoded_reports[i].bit != c.reports[i].bit) {
            std::ostringstream out;
            out << "report " << i << " changed across the wire";
            return out.str();
          }
        }
        std::vector<uint8_t> report_bytes2;
        EncodeReportBatch(decoded_reports, &report_bytes2);
        if (report_bytes2 != report_bytes) {
          return std::string("re-encoded report batch bytes differ");
        }

        std::vector<uint8_t> request_bytes;
        EncodeRequestBatch(c.requests, &request_bytes);
        std::vector<BitRequest> decoded_requests;
        if (!DecodeRequestBatch(request_bytes, &decoded_requests)) {
          return std::string("a valid request batch failed to decode");
        }
        if (decoded_requests.size() != c.requests.size()) {
          return std::string("request batch changed size across the wire");
        }
        for (size_t i = 0; i < c.requests.size(); ++i) {
          if (decoded_requests[i].round_id != c.requests[i].round_id ||
              decoded_requests[i].value_id != c.requests[i].value_id ||
              decoded_requests[i].bit_index != c.requests[i].bit_index ||
              decoded_requests[i].rr_epsilon != c.requests[i].rr_epsilon) {
            std::ostringstream out;
            out << "request " << i << " changed across the wire";
            return out.str();
          }
        }
        std::vector<uint8_t> request_bytes2;
        EncodeRequestBatch(decoded_requests, &request_bytes2);
        if (request_bytes2 != request_bytes) {
          return std::string("re-encoded request batch bytes differ");
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace bitpush
