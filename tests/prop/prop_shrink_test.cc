// Regression tests for bitprop itself: the shrinking and reproduction
// contracts the other Prop suites rely on. A deliberately failing property
// must shrink to its documented minimal counterexample, the printed
// BITPROP_SEED must replay exactly that failure, and the long-mode
// iteration override must respect per-property caps. Everything runs
// through RunProperty with an explicit RunConfig so these tests are
// independent of the real environment (and never print spurious seeds).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "prop/bitprop.h"

namespace bitpush {
namespace {

using ::bitpush::prop::CaseSeed;
using ::bitpush::prop::CheckOptions;
using ::bitpush::prop::CheckOutcome;
using ::bitpush::prop::Domain;
using ::bitpush::prop::InRange;
using ::bitpush::prop::Property;
using ::bitpush::prop::RunConfig;
using ::bitpush::prop::RunProperty;
using ::bitpush::prop::VectorOf;

// A fixed config decoupled from the BITPROP_* environment.
RunConfig TestConfig() {
  RunConfig config;
  config.base_seed = 0x5EEDF00Dull;
  return config;
}

// The canonical injected failure: "fails iff v >= 42" over [0, 1000].
// Documented minimal counterexample: exactly 42.
Property<int64_t> FailsAtOrAbove42() {
  return [](const int64_t& v) -> std::optional<std::string> {
    if (v >= 42) return "value is >= 42";
    return std::nullopt;
  };
}

TEST(PropShrinkTest, ThresholdFailureShrinksToExactBoundary) {
  const CheckOutcome outcome =
      RunProperty<int64_t>("threshold", InRange(0, 1000), FailsAtOrAbove42(),
                           CheckOptions{}, TestConfig());
  ASSERT_FALSE(outcome.ok);
  // Greedy shrinking over InRange lands exactly on the smallest failing
  // value, not merely near it.
  EXPECT_EQ(outcome.minimal, "42");
  EXPECT_EQ(outcome.message, "value is >= 42");
  EXPECT_GE(outcome.failing_iteration, 0);
  // The report carries the reproduction instructions.
  EXPECT_NE(outcome.report.find("BITPROP_SEED="), std::string::npos);
  EXPECT_NE(outcome.report.find("minimal"), std::string::npos);
}

TEST(PropShrinkTest, PrintedSeedReproducesTheSameFailure) {
  const CheckOutcome first =
      RunProperty<int64_t>("threshold", InRange(0, 1000), FailsAtOrAbove42(),
                           CheckOptions{}, TestConfig());
  ASSERT_FALSE(first.ok);

  // Replaying with BITPROP_SEED=<printed> (modeled here as a pinned seed)
  // runs exactly one case and lands on the identical counterexample.
  RunConfig replay = TestConfig();
  replay.pinned_seed = first.failing_seed;
  const CheckOutcome second =
      RunProperty<int64_t>("threshold", InRange(0, 1000), FailsAtOrAbove42(),
                           CheckOptions{}, replay);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.iterations_run, 1);
  EXPECT_EQ(second.failing_iteration, -1);  // reproduction mode marker
  EXPECT_EQ(second.failing_seed, first.failing_seed);
  EXPECT_EQ(second.original, first.original);
  EXPECT_EQ(second.minimal, first.minimal);
  EXPECT_EQ(second.message, first.message);
}

TEST(PropShrinkTest, FailureSearchIsDeterministic) {
  const CheckOutcome a =
      RunProperty<int64_t>("threshold", InRange(0, 1000), FailsAtOrAbove42(),
                           CheckOptions{}, TestConfig());
  const CheckOutcome b =
      RunProperty<int64_t>("threshold", InRange(0, 1000), FailsAtOrAbove42(),
                           CheckOptions{}, TestConfig());
  ASSERT_FALSE(a.ok);
  ASSERT_FALSE(b.ok);
  EXPECT_EQ(a.failing_seed, b.failing_seed);
  EXPECT_EQ(a.failing_iteration, b.failing_iteration);
  EXPECT_EQ(a.shrink_steps, b.shrink_steps);
  EXPECT_EQ(a.report, b.report);
}

TEST(PropShrinkTest, VectorFailureShrinksToSingleMinimalWitness) {
  // Fails iff any element is >= 10; the documented minimum is the
  // one-element vector [10]: structural shrinking drops every innocent
  // element, element shrinking walks the survivor down to the boundary.
  const Property<std::vector<int64_t>> property =
      [](const std::vector<int64_t>& v) -> std::optional<std::string> {
    for (const int64_t x : v) {
      if (x >= 10) return "contains an element >= 10";
    }
    return std::nullopt;
  };
  const CheckOutcome outcome = RunProperty<std::vector<int64_t>>(
      "vector-threshold", VectorOf(InRange(0, 100), 0, 20), property,
      CheckOptions{}, TestConfig());
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.minimal, "[10]");
}

TEST(PropShrinkTest, PassingPropertyRunsTheConfiguredIterations) {
  const Property<int64_t> passes = [](const int64_t&) {
    return std::optional<std::string>();
  };
  CheckOptions options;
  options.iterations = 17;
  const CheckOutcome outcome = RunProperty<int64_t>(
      "always-passes", InRange(0, 10), passes, options, TestConfig());
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.iterations_run, 17);
}

TEST(PropShrinkTest, LongModeOverrideIsClampedByMaxIterations) {
  const Property<int64_t> passes = [](const int64_t&) {
    return std::optional<std::string>();
  };
  CheckOptions options;
  options.iterations = 10;
  options.max_iterations = 25;

  // BITPROP_ITERS raises the count...
  RunConfig long_mode = TestConfig();
  long_mode.iterations_override = 20;
  EXPECT_EQ(RunProperty<int64_t>("long", InRange(0, 10), passes, options,
                                 long_mode)
                .iterations_run,
            20);

  // ...but never past the property's own cap.
  long_mode.iterations_override = 1000;
  EXPECT_EQ(RunProperty<int64_t>("long", InRange(0, 10), passes, options,
                                 long_mode)
                .iterations_run,
            25);
}

TEST(PropShrinkTest, CaseSeedsAreSelfContainedAndDecorrelated) {
  // A printed seed is a pure function of (base, iteration) and changes with
  // both arguments, so replays need no iteration index.
  EXPECT_EQ(CaseSeed(1, 0), CaseSeed(1, 0));
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(1, 1));
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(2, 0));
}

TEST(PropShrinkTest, ShrinkBudgetCapsTheGreedyChain) {
  // With a tiny budget the runner still reports a counterexample, just not
  // the global minimum.
  CheckOptions options;
  options.max_shrink_steps = 1;
  const CheckOutcome outcome =
      RunProperty<int64_t>("budgeted", InRange(0, 1000), FailsAtOrAbove42(),
                           options, TestConfig());
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.shrink_steps, 1);
  EXPECT_FALSE(outcome.minimal.empty());
}

}  // namespace
}  // namespace bitpush
