#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/variance_estimation.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

TEST(VarianceEstimationTest, CenteredEstimatorRecoversCensusVariance) {
  Rng data_rng(1);
  const Dataset ages = CensusAges(100000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.protocol.bits = 7;
  const ErrorStats stats =
      RunRepetitions(25, 2, ages.truth().variance, [&](Rng& rng) {
        return EstimateVariance(ages.values(), codec, config, rng).variance;
      });
  // The paper reports 1-2% normalized error at 100K clients (Figure 1b).
  EXPECT_LT(stats.nrmse, 0.05);
}

TEST(VarianceEstimationTest, MomentsEstimatorAlsoConsistent) {
  Rng data_rng(3);
  const Dataset ages = CensusAges(100000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.method = VarianceMethod::kMoments;
  config.protocol.bits = 7;
  const ErrorStats stats =
      RunRepetitions(25, 4, ages.truth().variance, [&](Rng& rng) {
        return EstimateVariance(ages.values(), codec, config, rng).variance;
      });
  EXPECT_LT(stats.nrmse, 0.30);
}

TEST(VarianceEstimationTest, CenteredBeatsMomentsPerLemma35) {
  // Lemma 3.5: the centered estimator's variance scales with
  // (sigma^2 + mean^2/n)^2/n, the moments estimator with
  // (sigma^2 + mean^2)^2/n — much worse when mean >> sigma, as with a
  // Normal(1000, 100) population.
  Rng data_rng(5);
  const Dataset data = NormalData(40000, 1000.0, 100.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(11);

  auto nrmse_with_method = [&](VarianceMethod method) {
    VarianceConfig config;
    config.method = method;
    config.protocol.bits = 11;
    return RunRepetitions(30, 6, data.truth().variance, [&](Rng& rng) {
             return EstimateVariance(data.values(), codec, config, rng)
                 .variance;
           })
        .nrmse;
  };
  const double centered = nrmse_with_method(VarianceMethod::kCentered);
  const double moments = nrmse_with_method(VarianceMethod::kMoments);
  EXPECT_LT(centered, 0.5 * moments);
}

TEST(VarianceEstimationTest, MeanPhaseEstimateIsReturned) {
  Rng data_rng(7);
  const Dataset ages = CensusAges(50000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.protocol.bits = 7;
  Rng rng(8);
  const VarianceResult result =
      EstimateVariance(ages.values(), codec, config, rng);
  EXPECT_NEAR(result.mean_estimate, ages.truth().mean,
              0.1 * ages.truth().mean);
  EXPECT_GT(result.variance, 0.0);
}

TEST(VarianceEstimationTest, ConstantDataHasNearZeroVariance) {
  const Dataset data = ConstantData(5000, 40.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.protocol.bits = 7;
  Rng rng(9);
  const VarianceResult result =
      EstimateVariance(data.values(), codec, config, rng);
  // mu_hat is exact for constant data, so all deviations are ~0 up to
  // codec resolution.
  EXPECT_NEAR(result.variance, 0.0, 1.0);
}

TEST(VarianceEstimationTest, VarianceIsNeverNegative) {
  Rng data_rng(10);
  // Tiny variance, large mean: the moments method would go negative
  // without the clamp.
  const Dataset data = NormalData(2000, 120.0, 0.5, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  VarianceConfig config;
  config.method = VarianceMethod::kMoments;
  config.protocol.bits = 8;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    EXPECT_GE(EstimateVariance(data.values(), codec, config, rng).variance,
              0.0);
  }
}

TEST(VarianceEstimationTest, MeanFractionControlsSplit) {
  Rng data_rng(11);
  const Dataset ages = CensusAges(10000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.protocol.bits = 7;
  config.mean_fraction = 0.2;
  Rng rng(12);
  // Must run without aborting and produce a sane value.
  const VarianceResult result =
      EstimateVariance(ages.values(), codec, config, rng);
  EXPECT_GT(result.variance, 100.0);
  EXPECT_LT(result.variance, 2000.0);
}

TEST(VarianceEstimationDeathTest, InvalidInputsAbort) {
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.protocol.bits = 7;
  Rng rng(1);
  EXPECT_DEATH(EstimateVariance({1.0, 2.0, 3.0}, codec, config, rng),
               "BITPUSH_CHECK failed");
  config.mean_fraction = 0.0;
  EXPECT_DEATH(
      EstimateVariance({1.0, 2.0, 3.0, 4.0, 5.0}, codec, config, rng),
      "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
