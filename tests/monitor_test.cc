#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "federated/monitor.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

MonitorConfig Config(int bits) {
  MonitorConfig config;
  config.protocol.bits = bits;
  return config;
}

TEST(MetricMonitorTest, StableMetricNeverFlags) {
  Rng rng(1);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));
  for (int window = 0; window < 6; ++window) {
    const Dataset data = NormalData(8000, 300.0, 30.0, rng);
    const WindowSummary summary = monitor.IngestWindow(data.values(), rng);
    EXPECT_FALSE(summary.skipped);
    EXPECT_FALSE(summary.bound_flagged);
    EXPECT_NEAR(summary.estimate, 300.0, 30.0);
  }
  EXPECT_EQ(monitor.windows_flagged(), 0);
  EXPECT_EQ(monitor.history().size(), 6u);
}

TEST(MetricMonitorTest, MagnitudeJumpRaisesBoundFlag) {
  Rng rng(2);
  const FixedPointCodec codec = FixedPointCodec::Integer(14);
  MetricMonitor monitor(codec, Config(14));
  monitor.IngestWindow(NormalData(8000, 200.0, 20.0, rng).values(), rng);
  const WindowSummary shifted = monitor.IngestWindow(
      NormalData(8000, 8000.0, 200.0, rng).values(), rng);
  EXPECT_TRUE(shifted.bound_flagged);
  EXPECT_GT(shifted.b_max, monitor.history().front().b_max);
}

TEST(MetricMonitorTest, SmallWindowSkippedForPrivacy) {
  Rng rng(3);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  MonitorConfig config = Config(8);
  config.min_window_size = 1000;
  MetricMonitor monitor(codec, config);
  const WindowSummary summary =
      monitor.IngestWindow(std::vector<double>(50, 10.0), rng);
  EXPECT_TRUE(summary.skipped);
  EXPECT_EQ(summary.clients, 50);
  // A skipped window leaves the bound monitor untouched.
  const WindowSummary next = monitor.IngestWindow(
      NormalData(5000, 100.0, 10.0, rng).values(), rng);
  EXPECT_FALSE(next.skipped);
  EXPECT_FALSE(next.bound_flagged);  // first real window never flags
}

TEST(MetricMonitorTest, DriftFlagOnEstimateShift) {
  Rng rng(4);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MonitorConfig config = Config(10);
  config.drift_threshold = 0.5;  // 50% relative change
  MetricMonitor monitor(codec, config);
  monitor.IngestWindow(NormalData(8000, 200.0, 20.0, rng).values(), rng);
  monitor.IngestWindow(NormalData(8000, 205.0, 20.0, rng).values(), rng);
  const WindowSummary drifted = monitor.IngestWindow(
      NormalData(8000, 600.0, 20.0, rng).values(), rng);
  EXPECT_TRUE(drifted.drift_flagged);
  EXPECT_GE(monitor.windows_flagged(), 1);
}

TEST(MetricMonitorTest, DriftDisabledByDefault) {
  Rng rng(5);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));
  monitor.IngestWindow(NormalData(8000, 100.0, 10.0, rng).values(), rng);
  const WindowSummary jumped = monitor.IngestWindow(
      NormalData(8000, 900.0, 10.0, rng).values(), rng);
  EXPECT_FALSE(jumped.drift_flagged);
}

TEST(MetricMonitorDeathTest, ConfigValidation) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  MonitorConfig mismatched = Config(10);
  EXPECT_DEATH(MetricMonitor(codec, mismatched), "BITPUSH_CHECK failed");
  MonitorConfig tiny = Config(8);
  tiny.min_window_size = 1;
  EXPECT_DEATH(MetricMonitor(codec, tiny), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
