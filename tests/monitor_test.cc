#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "federated/monitor.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

MonitorConfig Config(int bits) {
  MonitorConfig config;
  config.protocol.bits = bits;
  return config;
}

TEST(MetricMonitorTest, StableMetricNeverFlags) {
  Rng rng(1);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));
  for (int window = 0; window < 6; ++window) {
    const Dataset data = NormalData(8000, 300.0, 30.0, rng);
    const WindowSummary summary = monitor.IngestWindow(data.values(), rng);
    EXPECT_FALSE(summary.skipped);
    EXPECT_FALSE(summary.bound_flagged);
    EXPECT_NEAR(summary.estimate, 300.0, 30.0);
  }
  EXPECT_EQ(monitor.windows_flagged(), 0);
  EXPECT_EQ(monitor.history().size(), 6u);
}

TEST(MetricMonitorTest, MagnitudeJumpRaisesBoundFlag) {
  Rng rng(2);
  const FixedPointCodec codec = FixedPointCodec::Integer(14);
  MetricMonitor monitor(codec, Config(14));
  monitor.IngestWindow(NormalData(8000, 200.0, 20.0, rng).values(), rng);
  const WindowSummary shifted = monitor.IngestWindow(
      NormalData(8000, 8000.0, 200.0, rng).values(), rng);
  EXPECT_TRUE(shifted.bound_flagged);
  EXPECT_GT(shifted.b_max, monitor.history().front().b_max);
}

TEST(MetricMonitorTest, SmallWindowSkippedForPrivacy) {
  Rng rng(3);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  MonitorConfig config = Config(8);
  config.min_window_size = 1000;
  MetricMonitor monitor(codec, config);
  const WindowSummary summary =
      monitor.IngestWindow(std::vector<double>(50, 10.0), rng);
  EXPECT_TRUE(summary.skipped);
  EXPECT_EQ(summary.clients, 50);
  // A skipped window leaves the bound monitor untouched.
  const WindowSummary next = monitor.IngestWindow(
      NormalData(5000, 100.0, 10.0, rng).values(), rng);
  EXPECT_FALSE(next.skipped);
  EXPECT_FALSE(next.bound_flagged);  // first real window never flags
}

TEST(MetricMonitorTest, DriftFlagOnEstimateShift) {
  Rng rng(4);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MonitorConfig config = Config(10);
  config.drift_threshold = 0.5;  // 50% relative change
  MetricMonitor monitor(codec, config);
  monitor.IngestWindow(NormalData(8000, 200.0, 20.0, rng).values(), rng);
  monitor.IngestWindow(NormalData(8000, 205.0, 20.0, rng).values(), rng);
  const WindowSummary drifted = monitor.IngestWindow(
      NormalData(8000, 600.0, 20.0, rng).values(), rng);
  EXPECT_TRUE(drifted.drift_flagged);
  EXPECT_GE(monitor.windows_flagged(), 1);
}

TEST(MetricMonitorTest, DriftDisabledByDefault) {
  Rng rng(5);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));
  monitor.IngestWindow(NormalData(8000, 100.0, 10.0, rng).values(), rng);
  const WindowSummary jumped = monitor.IngestWindow(
      NormalData(8000, 900.0, 10.0, rng).values(), rng);
  EXPECT_FALSE(jumped.drift_flagged);
}

// Constant, noise-free windows (epsilon off, every client holds the same
// integer) make the estimate exact, so the drift arithmetic can be pinned
// to the threshold boundary.
std::vector<double> Constant(int64_t n, double value) {
  return std::vector<double>(static_cast<size_t>(n), value);
}

TEST(MetricMonitorTest, DriftThresholdIsStrict) {
  Rng rng(6);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MonitorConfig config = Config(10);
  config.drift_threshold = 0.5;
  {
    // |150 - 100| / 100 == 0.5: exactly at the threshold must not flag
    // (the comparison is strict).
    MetricMonitor at_boundary(codec, config);
    at_boundary.IngestWindow(Constant(4000, 100.0), rng);
    const WindowSummary summary =
        at_boundary.IngestWindow(Constant(4000, 150.0), rng);
    EXPECT_DOUBLE_EQ(summary.estimate, 150.0);
    EXPECT_FALSE(summary.drift_flagged);
  }
  {
    // |151 - 100| / 100 > 0.5: one codeword past the boundary flags.
    MetricMonitor past_boundary(codec, config);
    past_boundary.IngestWindow(Constant(4000, 100.0), rng);
    const WindowSummary summary =
        past_boundary.IngestWindow(Constant(4000, 151.0), rng);
    EXPECT_DOUBLE_EQ(summary.estimate, 151.0);
    EXPECT_TRUE(summary.drift_flagged);
  }
}

TEST(MetricMonitorTest, SkippedWindowsExcludedFromTrailingAverage) {
  Rng rng(7);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MonitorConfig config = Config(10);
  config.drift_threshold = 0.5;
  config.min_window_size = 1000;
  MetricMonitor monitor(codec, config);
  monitor.IngestWindow(Constant(4000, 100.0), rng);
  // Below the privacy minimum: contributes nothing to the trailing
  // average. Were its zero-valued estimate averaged in, the trailing mean
  // would drop to 50 and the next window (149, a 1.98 relative change)
  // would flag.
  EXPECT_TRUE(monitor.IngestWindow(Constant(10, 100.0), rng).skipped);
  const WindowSummary summary =
      monitor.IngestWindow(Constant(4000, 149.0), rng);
  EXPECT_FALSE(summary.drift_flagged);
}

TEST(MetricMonitorTest, RecoveredReportsAttributedAcrossSkippedWindows) {
  Rng rng(8);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MonitorConfig config = Config(10);
  config.min_window_size = 1000;
  MetricMonitor monitor(codec, config);

  RetryStats cumulative;
  cumulative.retry_reports_recovered = 5;
  EXPECT_EQ(
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng)
          .recovered_reports,
      5);

  // The skipped window still receives its share of the cumulative delta,
  // so recoveries that landed during it are not credited to the next one.
  cumulative.retry_reports_recovered = 6;
  cumulative.hedge_reports = 2;
  const WindowSummary skipped =
      monitor.IngestWindow(Constant(10, 100.0), cumulative, rng);
  EXPECT_TRUE(skipped.skipped);
  EXPECT_EQ(skipped.recovered_reports, 3);

  cumulative.hedge_reports = 3;
  const WindowSummary last =
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);
  EXPECT_EQ(last.recovered_reports, 1);
  EXPECT_EQ(monitor.history()[1].recovered_reports, 3);
  EXPECT_EQ(monitor.retry_stats().RecoveredTotal(), 9);
}

TEST(MetricMonitorTest, NonCumulativeRetryStatsDegradeGracefully) {
  Rng rng(9);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));

  RetryStats cumulative;
  cumulative.retry_reports_recovered = 10;
  EXPECT_EQ(
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng)
          .recovered_reports,
      10);

  // A caller handing per-window (reset) stats makes the cumulative total
  // go backwards. The monitor must not abort: the delta clamps to 0 and
  // the violation is flagged on the summary.
  RetryStats per_window;
  per_window.retry_reports_recovered = 4;
  const WindowSummary regressed =
      monitor.IngestWindow(Constant(4000, 100.0), per_window, rng);
  EXPECT_EQ(regressed.recovered_reports, 0);
  EXPECT_TRUE(regressed.retry_stats_regressed);
  EXPECT_TRUE(monitor.history().back().retry_stats_regressed);

  // The monitor re-baselines on the ingested stats, so subsequent
  // cumulative deltas resume from there.
  per_window.retry_reports_recovered = 7;
  const WindowSummary resumed =
      monitor.IngestWindow(Constant(4000, 100.0), per_window, rng);
  EXPECT_EQ(resumed.recovered_reports, 3);
  EXPECT_FALSE(resumed.retry_stats_regressed);
}

TEST(MetricMonitorTest, RetryStormAlertSurfacesThroughWindowSummaries) {
  Rng rng(11);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MonitorConfig config = Config(10);
  config.alerts.retry_storm_threshold = 5;  // config plumbs to the engine
  MetricMonitor monitor(codec, config);

  RetryStats cumulative;
  cumulative.retries_scheduled = 2;
  const WindowSummary calm =
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);
  EXPECT_EQ(calm.alerts_fired, 0);
  EXPECT_EQ(calm.alerts_firing, 0);

  cumulative.retries_scheduled = 20;  // delta 18 >= threshold 5
  const WindowSummary storm =
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);
  EXPECT_EQ(storm.alerts_fired, 1);
  EXPECT_EQ(storm.alerts_firing, 1);
  EXPECT_TRUE(monitor.alerts().firing(obs::AlertRule::kRetryStorm));

  const WindowSummary after =  // cumulative count unchanged: storm over
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);
  EXPECT_EQ(after.alerts_resolved, 1);
  EXPECT_EQ(after.alerts_firing, 0);
  // history mirrors what the returned summaries reported.
  EXPECT_EQ(monitor.history()[1].alerts_fired, 1);
  EXPECT_EQ(monitor.history()[2].alerts_resolved, 1);
}

TEST(MetricMonitorTest, RetryStatsRegressionRaisesRecoveryDivergenceAlert) {
  Rng rng(12);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));

  RetryStats cumulative;
  cumulative.retry_reports_recovered = 10;
  monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);

  RetryStats per_window;  // non-cumulative: the total goes backwards
  per_window.retry_reports_recovered = 4;
  const WindowSummary regressed =
      monitor.IngestWindow(Constant(4000, 100.0), per_window, rng);
  EXPECT_TRUE(regressed.retry_stats_regressed);
  EXPECT_EQ(regressed.alerts_fired, 1);
  EXPECT_TRUE(monitor.alerts().firing(obs::AlertRule::kRecoveryDivergence));

  // The divergence alert latches for the campaign even after the stats
  // re-baseline and stop regressing.
  per_window.retry_reports_recovered = 7;
  const WindowSummary resumed =
      monitor.IngestWindow(Constant(4000, 100.0), per_window, rng);
  EXPECT_FALSE(resumed.retry_stats_regressed);
  EXPECT_EQ(resumed.alerts_resolved, 0);
  EXPECT_EQ(resumed.alerts_firing, 1);
}

TEST(MetricMonitorTest, ShardSnapshotRecoveryIsNotARegression) {
  Rng rng(10);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));

  // Two coordinator shards, both live: the merged total is 10 + 6.
  std::vector<RetryStats> shards(2);
  shards[0].retry_reports_recovered = 10;
  shards[1].retry_reports_recovered = 6;
  EXPECT_EQ(monitor.IngestWindow(Constant(4000, 100.0), shards, rng)
                .recovered_reports,
            16);
  EXPECT_EQ(monitor.retry_stats().RecoveredTotal(), 16);

  // Shard 0 crashes and recovers from a snapshot: its cumulative counters
  // restart at 2 while shard 1 keeps running (6 -> 9). The merged sum
  // drops from 16 to 11 — the old merged-stats path would flag
  // retry_stats_regressed and clamp the window to 0. Per-shard
  // attribution sees a counter reset on shard 0 (2 new recoveries) plus a
  // live delta on shard 1 (3) and no regression anywhere.
  shards[0].retry_reports_recovered = 2;
  shards[1].retry_reports_recovered = 9;
  const WindowSummary recovered =
      monitor.IngestWindow(Constant(4000, 100.0), shards, rng);
  EXPECT_EQ(recovered.recovered_reports, 5);
  EXPECT_FALSE(recovered.retry_stats_regressed);
  EXPECT_FALSE(monitor.history().back().retry_stats_regressed);
  EXPECT_EQ(monitor.retry_stats().RecoveredTotal(), 11);

  // The reset shard re-baselines: further deltas resume normally.
  shards[0].retry_reports_recovered = 3;
  shards[1].retry_reports_recovered = 9;
  EXPECT_EQ(monitor.IngestWindow(Constant(4000, 100.0), shards, rng)
                .recovered_reports,
            1);
}

TEST(MetricMonitorTest, MergedRetryStatsStillFlagTrueRegressions) {
  // The pre-shard 2-arg overload keeps its contract: a merged total that
  // goes backwards without shard attribution still clamps and flags.
  Rng rng(11);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  MetricMonitor monitor(codec, Config(10));
  RetryStats cumulative;
  cumulative.retry_reports_recovered = 16;
  monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);
  cumulative.retry_reports_recovered = 11;
  const WindowSummary regressed =
      monitor.IngestWindow(Constant(4000, 100.0), cumulative, rng);
  EXPECT_EQ(regressed.recovered_reports, 0);
  EXPECT_TRUE(regressed.retry_stats_regressed);
}

TEST(MetricMonitorDeathTest, ConfigValidation) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  MonitorConfig mismatched = Config(10);
  EXPECT_DEATH(MetricMonitor(codec, mismatched), "BITPUSH_CHECK failed");
  MonitorConfig tiny = Config(8);
  tiny.min_window_size = 1;
  EXPECT_DEATH(MetricMonitor(codec, tiny), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
