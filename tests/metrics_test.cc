#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/metrics.h"

namespace bitpush {
namespace {

TEST(MetricsTest, MeanOfVector) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5.0}), -5.0);
}

TEST(MetricsTest, PopulationVarianceOfVector) {
  EXPECT_DOUBLE_EQ(PopulationVariance({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                       9.0}),
                   4.0);
  EXPECT_DOUBLE_EQ(PopulationVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationVariance({3.0}), 0.0);
}

TEST(MetricsTest, RmseExactValues) {
  // Errors -1 and +1 around truth 5 -> RMSE 1.
  EXPECT_DOUBLE_EQ(Rmse({4.0, 6.0}, 5.0), 1.0);
  // All exact -> 0.
  EXPECT_DOUBLE_EQ(Rmse({5.0, 5.0, 5.0}, 5.0), 0.0);
  // Single estimate.
  EXPECT_DOUBLE_EQ(Rmse({8.0}, 5.0), 3.0);
}

TEST(MetricsTest, ErrorStatsFields) {
  const ErrorStats stats = ComputeErrorStats({9.0, 11.0}, 10.0);
  EXPECT_DOUBLE_EQ(stats.truth, 10.0);
  EXPECT_EQ(stats.repetitions, 2);
  EXPECT_DOUBLE_EQ(stats.mean_estimate, 10.0);
  EXPECT_DOUBLE_EQ(stats.bias, 0.0);
  EXPECT_DOUBLE_EQ(stats.rmse, 1.0);
  EXPECT_DOUBLE_EQ(stats.nrmse, 0.1);
}

TEST(MetricsTest, ErrorStatsBias) {
  const ErrorStats stats = ComputeErrorStats({12.0, 12.0, 12.0}, 10.0);
  EXPECT_DOUBLE_EQ(stats.bias, 2.0);
  EXPECT_DOUBLE_EQ(stats.rmse, 2.0);
  EXPECT_DOUBLE_EQ(stats.nrmse, 0.2);
  // Identical estimates -> zero spread -> zero standard error.
  EXPECT_DOUBLE_EQ(stats.stderr_nrmse, 0.0);
}

TEST(MetricsTest, ZeroTruthGivesZeroNrmse) {
  const ErrorStats stats = ComputeErrorStats({0.5, -0.5}, 0.0);
  EXPECT_DOUBLE_EQ(stats.rmse, 0.5);
  EXPECT_DOUBLE_EQ(stats.nrmse, 0.0);
}

TEST(MetricsTest, NegativeTruthNormalizesByMagnitude) {
  const ErrorStats stats = ComputeErrorStats({-9.0, -11.0}, -10.0);
  EXPECT_DOUBLE_EQ(stats.nrmse, 0.1);
}

TEST(MetricsTest, StderrShrinksWithRepetitions) {
  std::vector<double> few;
  std::vector<double> many;
  for (int i = 0; i < 10; ++i) few.push_back(i % 2 == 0 ? 9.0 : 11.0);
  for (int i = 0; i < 1000; ++i) many.push_back(i % 2 == 0 ? 9.0 : 11.0);
  const ErrorStats few_stats = ComputeErrorStats(few, 10.0);
  const ErrorStats many_stats = ComputeErrorStats(many, 10.0);
  // Same per-repetition error distribution, ~10x more reps -> ~sqrt(100)
  // smaller standard error. (Here the per-rep absolute error is constant,
  // so both are 0; use slightly varied data instead.)
  (void)few_stats;
  (void)many_stats;
  std::vector<double> few_varied = {9.0, 10.5, 11.0, 9.5};
  std::vector<double> many_varied;
  for (int i = 0; i < 100; ++i) {
    many_varied.insert(many_varied.end(), few_varied.begin(),
                       few_varied.end());
  }
  const double se_few = ComputeErrorStats(few_varied, 10.0).stderr_nrmse;
  const double se_many = ComputeErrorStats(many_varied, 10.0).stderr_nrmse;
  EXPECT_LT(se_many, se_few);
  EXPECT_NEAR(se_many, se_few / 10.0, se_few * 0.05);
}

TEST(MetricsDeathTest, EmptyEstimatesAbort) {
  EXPECT_DEATH(Rmse({}, 1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(ComputeErrorStats({}, 1.0), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
