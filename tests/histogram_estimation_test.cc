#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/histogram_estimation.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/quantiles.h"

namespace bitpush {
namespace {

TEST(UniformEdgesTest, EvenSpacing) {
  const std::vector<double> edges = UniformEdges(0.0, 100.0, 4);
  EXPECT_EQ(edges, (std::vector<double>{0.0, 25.0, 50.0, 75.0, 100.0}));
}

TEST(UniformEdgesDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(UniformEdges(5.0, 5.0, 4), "BITPUSH_CHECK failed");
  EXPECT_DEATH(UniformEdges(0.0, 1.0, 0), "BITPUSH_CHECK failed");
}

TEST(HistogramTest, FractionsSumToRoughlyOne) {
  Rng data_rng(1);
  const Dataset data = UniformData(40000, 0.0, 100.0, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 100.0, 10);
  Rng rng(2);
  const HistogramResult result =
      EstimateHistogram(data.values(), config, rng);
  double total = 0.0;
  for (const double f : result.fractions) total += f;
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(HistogramTest, UniformDataGivesUniformBuckets) {
  Rng data_rng(3);
  const Dataset data = UniformData(50000, 0.0, 100.0, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 100.0, 5);
  Rng rng(4);
  const HistogramResult result =
      EstimateHistogram(data.values(), config, rng);
  for (const double f : result.fractions) EXPECT_NEAR(f, 0.2, 0.02);
}

TEST(HistogramTest, EachClientContributesOneBit) {
  Rng data_rng(5);
  const Dataset data = UniformData(999, 0.0, 10.0, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 10.0, 3);
  Rng rng(6);
  const HistogramResult result =
      EstimateHistogram(data.values(), config, rng);
  int64_t total = 0;
  for (const int64_t c : result.counts) total += c;
  EXPECT_EQ(total, 999);
  // QMC assignment: equal probing of every bucket.
  for (const int64_t c : result.counts) EXPECT_EQ(c, 333);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBuckets) {
  const std::vector<double> values = {-100.0, 1000.0, 5.0};
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 10.0, 2);
  Rng rng(7);
  // With only 3 clients the estimate is coarse, but no crash and all
  // reports land in valid buckets.
  const HistogramResult result = EstimateHistogram(values, config, rng);
  EXPECT_EQ(result.fractions.size(), 2u);
}

TEST(HistogramTest, MedianOfCensusAges) {
  Rng data_rng(8);
  const Dataset ages = CensusAges(100000, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 91.0, 91);  // one bucket per year
  Rng rng(9);
  const HistogramResult result =
      EstimateHistogram(ages.values(), config, rng);
  const double estimated_median = result.Quantile(config.edges, 0.5);
  const double exact_median = Quantile(ages.values(), 0.5);
  EXPECT_NEAR(estimated_median, exact_median, 3.0);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Rng data_rng(10);
  const Dataset ages = CensusAges(50000, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 91.0, 30);
  Rng rng(11);
  const HistogramResult result =
      EstimateHistogram(ages.values(), config, rng);
  double previous = -1.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double value = result.Quantile(config.edges, q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(HistogramTest, MedianRobustToOutliersUnlikeMean) {
  // The Section 4.3 motivation: a 0/1 metric with huge rare outliers. The
  // histogram median stays near the typical values; the raw mean does not.
  Rng data_rng(12);
  const Dataset data = BinaryWithOutliersData(50000, 0.002, 1e6, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 10.0, 10);
  Rng rng(13);
  const HistogramResult result =
      EstimateHistogram(data.values(), config, rng);
  const double median = result.Quantile(config.edges, 0.5);
  EXPECT_LT(median, 2.0);
  EXPECT_GT(data.truth().mean, 5.0);  // the mean is wrecked by outliers
}

TEST(HistogramTest, DpNoiseStillGivesUsableMedian) {
  Rng data_rng(14);
  const Dataset ages = CensusAges(200000, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 91.0, 13);
  config.epsilon = 1.0;
  Rng rng(15);
  const HistogramResult result =
      EstimateHistogram(ages.values(), config, rng);
  const double estimated_median = result.Quantile(config.edges, 0.5);
  const double exact_median = Quantile(ages.values(), 0.5);
  EXPECT_NEAR(estimated_median, exact_median, 7.5);
}

TEST(HistogramTest, DpFractionsAreUnbiased) {
  Rng data_rng(16);
  const Dataset data = UniformData(100000, 0.0, 100.0, data_rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 100.0, 4);
  config.epsilon = 2.0;
  // Average the noisy fractions over repetitions: must converge to 0.25.
  std::vector<double> sums(4, 0.0);
  const int reps = 40;
  Rng rng(17);
  for (int rep = 0; rep < reps; ++rep) {
    const HistogramResult result =
        EstimateHistogram(data.values(), config, rng);
    for (size_t b = 0; b < sums.size(); ++b) {
      sums[b] += result.fractions[b];
    }
  }
  for (const double s : sums) EXPECT_NEAR(s / reps, 0.25, 0.02);
}

TEST(HistogramDeathTest, InvalidConfigAborts) {
  Rng rng(1);
  HistogramConfig config;
  config.edges = {1.0};
  EXPECT_DEATH(EstimateHistogram({1.0}, config, rng),
               "BITPUSH_CHECK failed");
  config.edges = {1.0, 1.0};
  EXPECT_DEATH(EstimateHistogram({1.0}, config, rng),
               "edges must be strictly increasing");
  config.edges = {0.0, 1.0};
  EXPECT_DEATH(EstimateHistogram({}, config, rng), "BITPUSH_CHECK failed");
}

TEST(HistogramDeathTest, QuantileValidation) {
  HistogramResult result;
  result.fractions = {0.5, 0.5};
  EXPECT_DEATH(result.Quantile({0.0, 1.0}, 0.5), "BITPUSH_CHECK failed");
  EXPECT_DEATH(result.Quantile({0.0, 1.0, 2.0}, 1.5),
               "BITPUSH_CHECK failed");
  HistogramResult empty;
  empty.fractions = {0.0, 0.0};
  EXPECT_DEATH(empty.Quantile({0.0, 1.0, 2.0}, 0.5),
               "histogram carries no mass");
}

}  // namespace
}  // namespace bitpush
