#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, ZeroSeedIsNotDegenerate) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.NextUint64());
  EXPECT_GT(seen.size(), 60u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngDeathTest, NextBelowZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBelow(0), "BITPUSH_CHECK failed");
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  const int n = 100000;
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.3, 0.01);
}

TEST(RngTest, NextBitIsFair) {
  Rng rng(29);
  const int n = 100000;
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    const int bit = rng.NextBit();
    ASSERT_TRUE(bit == 0 || bit == 1);
    ones += bit;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(31);
  Rng parent2(31);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  // Same parent state -> same child.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
  // Child differs from parent's continued stream.
  Rng parent3(31);
  Rng child3 = parent3.Fork();
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (child3.NextUint64() != parent3.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, CopySnapshotsState) {
  Rng rng(37);
  rng.NextUint64();
  Rng copy = rng;
  EXPECT_EQ(rng.NextUint64(), copy.NextUint64());
}

}  // namespace
}  // namespace bitpush
