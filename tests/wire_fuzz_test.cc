// Deterministic seeded fuzzing of the wire decode paths (federated/wire.h).
//
// The decoder's contract is binary: for ANY byte buffer it either returns a
// clean error (outputs untouched) or decodes a message that re-encodes to
// the exact bytes it consumed. The fuzzer drives 10k+ mutated buffers — bit
// flips, truncations, and length-field lies — through both batch decoders
// and checks that contract; everything is seeded, so a failure reproduces
// from the iteration index. This suite is what caught the non-finite
// rr_epsilon hole now rejected in DecodeBitRequest.

// bitpush-lint: allow(privacy-metering): fuzz corpus builds synthetic reports; no client value is behind them

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "federated/resilience.h"
#include "federated/shard/merge.h"
#include "federated/wire.h"
#include "prop/bitprop.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

std::vector<BitReport> SampleReports(Rng& rng) {
  std::vector<BitReport> reports;
  const size_t count = 1 + rng.NextBelow(8);
  for (size_t i = 0; i < count; ++i) {
    BitReport report;
    report.client_id = static_cast<int64_t>(rng.NextUint64() >> 1);
    report.bit_index = static_cast<int>(rng.NextBelow(256));
    report.bit = rng.NextBit();
    reports.push_back(report);
  }
  return reports;
}

std::vector<BitRequest> SampleRequests(Rng& rng) {
  std::vector<BitRequest> requests;
  const size_t count = 1 + rng.NextBelow(8);
  for (size_t i = 0; i < count; ++i) {
    BitRequest request;
    request.round_id = static_cast<int64_t>(rng.NextBelow(1000));
    request.value_id = static_cast<int64_t>(rng.NextBelow(1000));
    request.bit_index = static_cast<int>(rng.NextBelow(256));
    request.rr_epsilon = rng.NextDouble() * 8.0 - 4.0;
    requests.push_back(request);
  }
  return requests;
}

// Applies one seeded mutation: byte flips, a truncation, a length-field
// lie, or a stacked combination of them.
void Mutate(Rng& rng, std::vector<uint8_t>* buffer) {
  const uint64_t kind = rng.NextBelow(4);
  if (kind == 0 || kind == 3) {  // flip 1..8 bytes
    const uint64_t flips = 1 + rng.NextBelow(8);
    for (uint64_t k = 0; k < flips && !buffer->empty(); ++k) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(buffer->size()));
      (*buffer)[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
  }
  if (kind == 1 || kind == 3) {  // truncate anywhere
    buffer->resize(static_cast<size_t>(rng.NextBelow(buffer->size() + 1)));
  }
  if (kind == 2 && buffer->size() >= 5) {  // lie in the length field
    uint32_t lie;
    if (rng.NextBit() == 0) {
      lie = static_cast<uint32_t>(rng.NextBelow(64));  // plausible count
    } else {
      lie = static_cast<uint32_t>(rng.NextUint64());  // wild count
    }
    // The count sits after the format-version byte.
    for (int i = 0; i < 4; ++i) {
      (*buffer)[static_cast<size_t>(1 + i)] =
          static_cast<uint8_t>(lie >> (8 * i));
    }
  }
}

TEST(WireFuzzTest, ReportBatchDecodeNeverMisbehaves) {
  for (uint64_t iteration = 0; iteration < 10000; ++iteration) {
    Rng rng(0xF00D0000 + iteration);
    std::vector<uint8_t> buffer;
    EncodeReportBatch(SampleReports(rng), &buffer);
    Mutate(rng, &buffer);
    std::vector<BitReport> decoded;
    if (!DecodeReportBatch(buffer, &decoded)) continue;
    // Clean decode: every field is in the protocol domain, and re-encoding
    // reproduces the consumed prefix byte for byte.
    for (const BitReport& report : decoded) {
      ASSERT_TRUE(report.bit == 0 || report.bit == 1) << iteration;
      ASSERT_GE(report.bit_index, 0) << iteration;
      ASSERT_LT(report.bit_index, 256) << iteration;
    }
    std::vector<uint8_t> reencoded;
    EncodeReportBatch(decoded, &reencoded);
    ASSERT_LE(reencoded.size(), buffer.size()) << iteration;
    ASSERT_TRUE(std::equal(reencoded.begin(), reencoded.end(),
                           buffer.begin()))
        << "round-trip mismatch at iteration " << iteration;
  }
}

TEST(WireFuzzTest, RequestBatchDecodeNeverMisbehaves) {
  for (uint64_t iteration = 0; iteration < 10000; ++iteration) {
    Rng rng(0xBEEF0000 + iteration);
    std::vector<uint8_t> buffer;
    EncodeRequestBatch(SampleRequests(rng), &buffer);
    Mutate(rng, &buffer);
    std::vector<BitRequest> decoded;
    if (!DecodeRequestBatch(buffer, &decoded)) continue;
    for (const BitRequest& request : decoded) {
      // A non-finite epsilon must never survive decoding: it would crash
      // RandomizedResponse::FromEpsilon (NaN) or silently yield a NaN
      // probability (infinity) downstream.
      ASSERT_TRUE(std::isfinite(request.rr_epsilon)) << iteration;
      ASSERT_GE(request.bit_index, 0) << iteration;
      ASSERT_LT(request.bit_index, 256) << iteration;
    }
    std::vector<uint8_t> reencoded;
    EncodeRequestBatch(decoded, &reencoded);
    ASSERT_LE(reencoded.size(), buffer.size()) << iteration;
    ASSERT_TRUE(std::equal(reencoded.begin(), reencoded.end(),
                           buffer.begin()))
        << "round-trip mismatch at iteration " << iteration;
  }
}

TEST(WireFuzzTest, SingleMessageDecodeFromRandomGarbage) {
  // Pure-noise buffers decoded at random offsets: never crash, never read
  // out of bounds, and on success the cursor advances exactly one message.
  for (uint64_t iteration = 0; iteration < 5000; ++iteration) {
    Rng rng(0xCAFE0000 + iteration);
    std::vector<uint8_t> buffer(rng.NextBelow(64));
    for (uint8_t& byte : buffer) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    const size_t offset = static_cast<size_t>(
        rng.NextBelow(buffer.size() + 8));  // may start past the end

    size_t report_cursor = offset;
    BitReport report;
    if (DecodeBitReport(buffer, &report_cursor, &report)) {
      ASSERT_EQ(report_cursor, offset + kBitReportWireSize) << iteration;
      ASSERT_TRUE(report.bit == 0 || report.bit == 1) << iteration;
    } else {
      ASSERT_EQ(report_cursor, offset) << iteration;
    }

    size_t request_cursor = offset;
    BitRequest request;
    if (DecodeBitRequest(buffer, &request_cursor, &request)) {
      ASSERT_EQ(request_cursor, offset + kBitRequestWireSize) << iteration;
      ASSERT_TRUE(std::isfinite(request.rr_epsilon)) << iteration;
    } else {
      ASSERT_EQ(request_cursor, offset) << iteration;
    }
  }
}

TEST(WireFuzzTest, NonFiniteEpsilonIsRejected) {
  // Regression for the decode bug the fuzzer found: craft frames whose
  // epsilon field carries NaN or +/-infinity and check they are rejected
  // with the outputs untouched.
  const double bad_values[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::signaling_NaN(),
  };
  for (const double bad : bad_values) {
    BitRequest request;
    request.round_id = 7;
    request.value_id = 9;
    request.bit_index = 3;
    request.rr_epsilon = 1.0;
    std::vector<uint8_t> buffer;
    EncodeBitRequest(request, &buffer);
    // The epsilon occupies the final 8 bytes of the frame.
    const uint64_t bits = std::bit_cast<uint64_t>(bad);
    for (int i = 0; i < 8; ++i) {
      buffer[buffer.size() - 8 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(bits >> (8 * i));
    }
    size_t offset = 0;
    BitRequest out;
    out.rr_epsilon = -123.0;
    EXPECT_FALSE(DecodeBitRequest(buffer, &offset, &out));
    EXPECT_EQ(offset, 0u);
    EXPECT_DOUBLE_EQ(out.rr_epsilon, -123.0);
  }
}

std::vector<uint8_t> SampleResilienceConfigFrame(Rng& rng) {
  ResilienceConfig config;
  config.seed = rng.NextUint64();
  config.retry.max_retries_per_client = static_cast<int64_t>(rng.NextBelow(8));
  config.retry.max_retries_per_round =
      static_cast<int64_t>(rng.NextBelow(10000));
  config.retry.base_backoff_minutes = 0.1 + rng.NextDouble() * 2.0;
  config.retry.cap_backoff_minutes =
      config.retry.base_backoff_minutes + rng.NextDouble() * 16.0;
  config.hedge.enabled = rng.NextBit() == 1;
  config.hedge.trigger_budget_fraction = rng.NextDouble();
  config.hedge.max_hedges_per_round = static_cast<int64_t>(rng.NextBelow(500));
  config.breaker.consecutive_failures_to_open =
      static_cast<int64_t>(rng.NextBelow(6));
  config.breaker.failure_rate_to_open = rng.NextDouble();
  config.breaker.min_samples_for_rate =
      1 + static_cast<int64_t>(rng.NextBelow(16));
  config.breaker.cooldown_rounds = 1 + static_cast<int64_t>(rng.NextBelow(8));
  config.budget.minutes = rng.NextBit() == 0
                              ? std::numeric_limits<double>::infinity()
                              : rng.NextDouble() * 1000.0;
  config.latency.checkins_per_minute = 1.0 + rng.NextDouble() * 2000.0;
  config.latency.eligibility_rate = 0.01 + rng.NextDouble() * 0.99;
  config.latency.fixed_round_minutes = rng.NextDouble() * 10.0;
  std::vector<uint8_t> buffer;
  EncodeResilienceConfigFrame(config, &buffer);
  return buffer;
}

TEST(WireFuzzTest, ResilienceConfigFrameDecodeNeverMisbehaves) {
  // Same binary contract as the batch decoders, with one difference: the
  // frame decoders are whole-buffer (trailing bytes are themselves a decode
  // error), so a clean decode must re-encode to the *entire* buffer.
  for (uint64_t iteration = 0; iteration < 10000; ++iteration) {
    Rng rng(0xAC1D0000 + iteration);
    std::vector<uint8_t> buffer = SampleResilienceConfigFrame(rng);
    Mutate(rng, &buffer);
    ResilienceConfig decoded;
    if (!DecodeResilienceConfigFrame(buffer, &decoded)) continue;
    // Every field a decoder lets through must be safe to run a campaign
    // with: schedule construction and budget math CHECK these domains.
    ASSERT_GE(decoded.retry.max_retries_per_client, 0) << iteration;
    ASSERT_GT(decoded.retry.base_backoff_minutes, 0.0) << iteration;
    ASSERT_GE(decoded.retry.cap_backoff_minutes,
              decoded.retry.base_backoff_minutes)
        << iteration;
    ASSERT_GE(decoded.hedge.trigger_budget_fraction, 0.0) << iteration;
    ASSERT_LE(decoded.hedge.trigger_budget_fraction, 1.0) << iteration;
    ASSERT_GE(decoded.breaker.min_samples_for_rate, 1) << iteration;
    ASSERT_GE(decoded.breaker.cooldown_rounds, 1) << iteration;
    ASSERT_FALSE(std::isnan(decoded.budget.minutes)) << iteration;
    ASSERT_GE(decoded.budget.minutes, 0.0) << iteration;
    ASSERT_GT(decoded.latency.checkins_per_minute, 0.0) << iteration;
    std::vector<uint8_t> reencoded;
    EncodeResilienceConfigFrame(decoded, &reencoded);
    ASSERT_EQ(reencoded, buffer) << "round-trip mismatch at " << iteration;
  }
}

TEST(WireFuzzTest, RetryStatsFrameDecodeNeverMisbehaves) {
  for (uint64_t iteration = 0; iteration < 10000; ++iteration) {
    Rng rng(0x57A70000 + iteration);
    RetryStats stats;
    stats.retries_scheduled = static_cast<int64_t>(rng.NextBelow(1000));
    stats.retransmits_requested = static_cast<int64_t>(rng.NextBelow(1000));
    stats.retry_reports_recovered = static_cast<int64_t>(rng.NextBelow(1000));
    stats.hedges_issued = static_cast<int64_t>(rng.NextBelow(1000));
    stats.hedges_cancelled = static_cast<int64_t>(rng.NextBelow(1000));
    stats.breaker_opens = static_cast<int64_t>(rng.NextBelow(100));
    stats.backoff_minutes = rng.NextDouble() * 500.0;
    stats.elapsed_minutes = rng.NextDouble() * 500.0;
    std::vector<uint8_t> buffer;
    EncodeRetryStatsFrame(stats, &buffer);
    Mutate(rng, &buffer);
    RetryStats decoded;
    if (!DecodeRetryStatsFrame(buffer, &decoded)) continue;
    // Counters are non-negative and the minutes finite — a corrupted stats
    // frame must never smuggle a negative count into an ops dashboard.
    ASSERT_GE(decoded.retries_scheduled, 0) << iteration;
    ASSERT_GE(decoded.hedges_issued, 0) << iteration;
    ASSERT_GE(decoded.breaker_opens, 0) << iteration;
    ASSERT_TRUE(std::isfinite(decoded.backoff_minutes)) << iteration;
    ASSERT_GE(decoded.backoff_minutes, 0.0) << iteration;
    ASSERT_TRUE(std::isfinite(decoded.elapsed_minutes)) << iteration;
    std::vector<uint8_t> reencoded;
    EncodeRetryStatsFrame(decoded, &reencoded);
    ASSERT_EQ(reencoded, buffer) << "round-trip mismatch at " << iteration;
  }
}

// ---------------------------------------------------------------------------
// bitprop-driven structured mutations: instead of the uniform byte noise
// above, start from a valid frame and apply a seeded *plan* of field-level
// mutations (version bump, count-field lie, a corrupted field inside one
// message, truncation, a stray byte flip). This keeps the fuzzer in the
// near-valid region where parser bugs actually live, and a failing plan
// shrinks to the fewest mutations that still break the decode contract.

struct FrameMutation {
  int64_t kind = 0;  // see ApplyFrameMutation
  uint64_t arg = 0;  // seeded argument: position, lie value, flip mask

  friend bool operator==(const FrameMutation&, const FrameMutation&) = default;
};

prop::Domain<FrameMutation> FrameMutationDomain() {
  prop::Domain<FrameMutation> domain;
  domain.generate = [](Rng& rng) {
    FrameMutation m;
    m.kind = static_cast<int64_t>(rng.NextBelow(6));
    m.arg = rng.NextUint64();
    return m;
  };
  domain.shrink = [](const FrameMutation& m) {
    std::vector<FrameMutation> out;
    if (m.kind != 0) out.push_back(FrameMutation{0, m.arg});
    if (m.arg != 0) out.push_back(FrameMutation{m.kind, m.arg / 2});
    return out;
  };
  domain.describe = [](const FrameMutation& m) {
    return "(kind=" + std::to_string(m.kind) +
           " arg=" + std::to_string(m.arg) + ")";
  };
  return domain;
}

struct StructuredMutationCase {
  uint64_t corpus_seed = 0;
  std::vector<FrameMutation> mutations;
};

prop::Domain<StructuredMutationCase> StructuredMutationDomain() {
  prop::Domain<StructuredMutationCase> domain;
  const prop::Domain<std::vector<FrameMutation>> plans =
      prop::VectorOf(FrameMutationDomain(), 1, 6);
  domain.generate = [plans](Rng& rng) {
    StructuredMutationCase c;
    c.corpus_seed = rng.NextUint64();
    c.mutations = plans.generate(rng);
    return c;
  };
  domain.shrink = [plans](const StructuredMutationCase& c) {
    std::vector<StructuredMutationCase> out;
    for (std::vector<FrameMutation>& plan : plans.shrink(c.mutations)) {
      StructuredMutationCase smaller = c;
      smaller.mutations = std::move(plan);
      out.push_back(std::move(smaller));
    }
    return out;
  };
  domain.describe = [plans](const StructuredMutationCase& c) {
    return "{corpus_seed=" + std::to_string(c.corpus_seed) +
           " mutations=" + plans.Describe(c.mutations) + "}";
  };
  return domain;
}

// Batch frame layout: [version:1][count:4][messages...].
void ApplyFrameMutation(const FrameMutation& m, size_t message_size,
                        std::vector<uint8_t>* buffer) {
  if (buffer->empty()) return;
  switch (m.kind) {
    case 0:  // format-version bump: decoders must reject outright
      (*buffer)[0] = static_cast<uint8_t>((*buffer)[0] + 1 + m.arg % 254);
      break;
    case 1:
    case 2: {  // count-field lie: plausible (1) or wild (2)
      if (buffer->size() < 5) return;
      const uint32_t lie = m.kind == 1 ? static_cast<uint32_t>(m.arg % 64)
                                       : static_cast<uint32_t>(m.arg);
      for (int i = 0; i < 4; ++i) {
        (*buffer)[static_cast<size_t>(1 + i)] =
            static_cast<uint8_t>(lie >> (8 * i));
      }
      break;
    }
    case 3: {  // corrupt the last field byte of one message (near-valid)
      if (buffer->size() <= 5) return;
      const size_t messages = (buffer->size() - 5) / message_size;
      if (messages == 0) return;
      const size_t pos =
          5 + (m.arg % messages) * message_size + (message_size - 1);
      (*buffer)[pos] ^= static_cast<uint8_t>(1 + (m.arg >> 8) % 255);
      break;
    }
    case 4:  // truncate the tail
      buffer->resize(m.arg % (buffer->size() + 1));
      break;
    default:  // a single stray byte flip
      (*buffer)[m.arg % buffer->size()] ^=
          static_cast<uint8_t>(1 + (m.arg >> 8) % 255);
  }
}

TEST(WireFuzzPropTest, StructuredReportMutationsKeepTheDecodeContract) {
  prop::CheckOptions options;
  options.iterations = 2000;
  prop::CheckProperty<StructuredMutationCase>(
      "a report batch under field-level mutations either fails to decode or "
      "re-encodes to the consumed prefix with in-domain fields",
      StructuredMutationDomain(),
      [](const StructuredMutationCase& c) -> std::optional<std::string> {
        Rng rng(c.corpus_seed);
        std::vector<uint8_t> buffer;
        EncodeReportBatch(SampleReports(rng), &buffer);
        for (const FrameMutation& m : c.mutations) {
          ApplyFrameMutation(m, kBitReportWireSize, &buffer);
        }
        std::vector<BitReport> decoded;
        if (!DecodeReportBatch(buffer, &decoded)) return std::nullopt;
        for (const BitReport& report : decoded) {
          if (report.bit != 0 && report.bit != 1) {
            return std::string("decoded bit outside {0, 1}");
          }
          if (report.bit_index < 0 || report.bit_index >= 256) {
            return std::string("decoded bit_index outside the domain");
          }
        }
        std::vector<uint8_t> reencoded;
        EncodeReportBatch(decoded, &reencoded);
        if (reencoded.size() > buffer.size() ||
            !std::equal(reencoded.begin(), reencoded.end(), buffer.begin())) {
          return std::string("re-encode does not reproduce the consumed "
                             "prefix");
        }
        return std::nullopt;
      },
      options);
}

TEST(WireFuzzPropTest, StructuredRequestMutationsKeepTheDecodeContract) {
  prop::CheckOptions options;
  options.iterations = 2000;
  prop::CheckProperty<StructuredMutationCase>(
      "a request batch under field-level mutations either fails to decode or "
      "re-encodes to the consumed prefix with finite epsilon",
      StructuredMutationDomain(),
      [](const StructuredMutationCase& c) -> std::optional<std::string> {
        Rng rng(c.corpus_seed);
        std::vector<uint8_t> buffer;
        EncodeRequestBatch(SampleRequests(rng), &buffer);
        for (const FrameMutation& m : c.mutations) {
          ApplyFrameMutation(m, kBitRequestWireSize, &buffer);
        }
        std::vector<BitRequest> decoded;
        if (!DecodeRequestBatch(buffer, &decoded)) return std::nullopt;
        for (const BitRequest& request : decoded) {
          if (!std::isfinite(request.rr_epsilon)) {
            return std::string("a non-finite epsilon survived decoding");
          }
          if (request.bit_index < 0 || request.bit_index >= 256) {
            return std::string("decoded bit_index outside the domain");
          }
        }
        std::vector<uint8_t> reencoded;
        EncodeRequestBatch(decoded, &reencoded);
        if (reencoded.size() > buffer.size() ||
            !std::equal(reencoded.begin(), reencoded.end(), buffer.begin())) {
          return std::string("re-encode does not reproduce the consumed "
                             "prefix");
        }
        return std::nullopt;
      },
      options);
}

// ---------------------------------------------------------------------------
// Shard -> merge hop (federated/shard/merge.h): the ShardTickFrame carries
// tallies, cumulative stats, and the trailing trace-context section, each
// of which must fail closed under the same mutation corpus.

ShardTickFrame SampleShardFrame(Rng& rng) {
  ShardTickFrame frame;
  frame.shard = static_cast<int64_t>(rng.NextBelow(8));
  frame.tick = static_cast<int64_t>(rng.NextBelow(64));
  const size_t queries = rng.NextBelow(3);
  for (size_t q = 0; q < queries; ++q) {
    ShardQueryFrame query;
    query.query_index = static_cast<int64_t>(q);
    query.partition_clients = static_cast<int64_t>(rng.NextBelow(64));
    query.result.tick = frame.tick;
    query.result.query_name = "metric" + std::to_string(q);
    query.result.status = static_cast<CampaignTickResult::Status>(
        rng.NextBelow(3));
    query.result.estimate = rng.NextDouble() * 8.0 - 4.0;
    query.result.reports = static_cast<int64_t>(rng.NextBelow(64));
    const size_t words = rng.NextBelow(4);
    for (size_t w = 0; w < words; ++w) {
      const int64_t total = static_cast<int64_t>(rng.NextBelow(32));
      query.tallies.totals.push_back(total);
      query.tallies.ones.push_back(
          static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(total) + 1)));
    }
    frame.queries.push_back(std::move(query));
  }
  frame.retry.retries_scheduled = static_cast<int64_t>(rng.NextBelow(100));
  frame.retry.hedges_issued = static_cast<int64_t>(rng.NextBelow(100));
  frame.metrics.ticks_completed = static_cast<int64_t>(rng.NextBelow(64));
  frame.metrics.queries_ran = static_cast<int64_t>(rng.NextBelow(64));
  frame.metrics.recoveries = static_cast<int64_t>(rng.NextBelow(8));
  if (rng.NextBit() == 1) {  // tracing on for about half the corpus
    frame.trace_id = static_cast<int64_t>(1 + rng.NextBelow(1000));
    frame.span_id = static_cast<int64_t>(1 + rng.NextBelow(1000));
    frame.parent_span_id = static_cast<int64_t>(rng.NextBelow(1000));
  }
  return frame;
}

TEST(WireFuzzTest, ShardTickFrameDecodeNeverMisbehaves) {
  // Frame decoders are whole-buffer, so a clean decode must re-encode to
  // the exact mutated buffer — any accepted corruption is a finding.
  for (uint64_t iteration = 0; iteration < 5000; ++iteration) {
    Rng rng(0x5AAD0000 + iteration);
    std::vector<uint8_t> buffer;
    EncodeShardTickFrame(SampleShardFrame(rng), &buffer);
    Mutate(rng, &buffer);
    ShardTickFrame decoded;
    if (!DecodeShardTickFrame(buffer, &decoded)) continue;
    for (const ShardQueryFrame& query : decoded.queries) {
      ASSERT_GE(query.query_index, 0) << iteration;
      ASSERT_GE(query.partition_clients, 0) << iteration;
      ASSERT_EQ(query.tallies.totals.size(), query.tallies.ones.size())
          << iteration;
      for (size_t w = 0; w < query.tallies.totals.size(); ++w) {
        ASSERT_GE(query.tallies.ones[w], 0) << iteration;
        ASSERT_LE(query.tallies.ones[w], query.tallies.totals[w])
            << iteration;
      }
    }
    ASSERT_GE(decoded.trace_id, 0) << iteration;
    ASSERT_GE(decoded.span_id, 0) << iteration;
    ASSERT_GE(decoded.parent_span_id, 0) << iteration;
    std::vector<uint8_t> reencoded;
    EncodeShardTickFrame(decoded, &reencoded);
    ASSERT_EQ(reencoded, buffer) << "round-trip mismatch at " << iteration;
  }
}

TEST(WireFuzzTest, ShardMetricsDecodeNeverMisbehaves) {
  for (uint64_t iteration = 0; iteration < 5000; ++iteration) {
    Rng rng(0x3E7A0000 + iteration);
    ShardMetrics metrics;
    metrics.ticks_completed = static_cast<int64_t>(rng.NextBelow(1000));
    metrics.queries_ran = static_cast<int64_t>(rng.NextBelow(1000));
    metrics.queries_skipped = static_cast<int64_t>(rng.NextBelow(1000));
    metrics.reports_total = static_cast<int64_t>(rng.NextBelow(100000));
    metrics.shard_attempts = static_cast<int64_t>(rng.NextBelow(1000));
    metrics.shard_retries = static_cast<int64_t>(rng.NextBelow(1000));
    metrics.shard_stalls = static_cast<int64_t>(rng.NextBelow(100));
    metrics.recoveries = static_cast<int64_t>(rng.NextBelow(100));
    metrics.replayed_records = static_cast<int64_t>(rng.NextBelow(10000));
    metrics.torn_tails = static_cast<int64_t>(rng.NextBelow(100));
    metrics.lost_ticks = static_cast<int64_t>(rng.NextBelow(100));
    std::vector<uint8_t> buffer;
    EncodeShardMetrics(metrics, &buffer);
    Mutate(rng, &buffer);
    size_t offset = 0;
    ShardMetrics decoded;
    if (!DecodeShardMetrics(buffer, &offset, &decoded)) continue;
    // A corrupted metrics block must never smuggle a negative counter
    // into the merged ops rollup, and the consumed prefix re-encodes
    // byte for byte.
    ASSERT_GE(decoded.ticks_completed, 0) << iteration;
    ASSERT_GE(decoded.reports_total, 0) << iteration;
    ASSERT_GE(decoded.lost_ticks, 0) << iteration;
    std::vector<uint8_t> reencoded;
    EncodeShardMetrics(decoded, &reencoded);
    ASSERT_EQ(reencoded.size(), offset) << iteration;
    ASSERT_TRUE(std::equal(reencoded.begin(), reencoded.end(),
                           buffer.begin()))
        << "round-trip mismatch at iteration " << iteration;
  }
}

TEST(WireFuzzTest, ShardFrameVersionBytesFailClosed) {
  // Both version bytes in the shard frame — the leading
  // kWireFormatVersion and the trace-context sub-version
  // kTraceContextVersion — must reject every unknown value, not just the
  // adjacent one. The trace sub-version byte sits 25 bytes from the end
  // (1 version byte + 3 int64 ids).
  Rng rng(0xFEED5EED);
  ShardTickFrame frame = SampleShardFrame(rng);
  std::vector<uint8_t> wire;
  EncodeShardTickFrame(frame, &wire);
  ShardTickFrame out;
  ASSERT_TRUE(DecodeShardTickFrame(wire, &out));
  ASSERT_GE(wire.size(), 25u);
  const size_t trace_version_at = wire.size() - 25;
  for (int bump = 1; bump < 256; ++bump) {
    std::vector<uint8_t> bad_outer = wire;
    bad_outer[0] = static_cast<uint8_t>(kWireFormatVersion + bump);
    EXPECT_FALSE(DecodeShardTickFrame(bad_outer, &out))
        << "outer version " << int{bad_outer[0]} << " decoded";
    std::vector<uint8_t> bad_trace = wire;
    bad_trace.at(trace_version_at) =
        static_cast<uint8_t>(kTraceContextVersion + bump);
    if (bad_trace.at(trace_version_at) == kTraceContextVersion) continue;
    EXPECT_FALSE(DecodeShardTickFrame(bad_trace, &out))
        << "trace sub-version " << int{bad_trace.at(trace_version_at)}
        << " decoded";
  }
}

TEST(WireFuzzTest, ReportBatchVersionByteFailsClosed) {
  // The batch decoders share kWireFormatVersion; every other value must
  // be rejected outright (fail-closed version negotiation).
  Rng rng(0x1CEB00DA);
  std::vector<uint8_t> wire;
  EncodeReportBatch(SampleReports(rng), &wire);
  ASSERT_EQ(wire[0], kWireFormatVersion);
  std::vector<BitReport> out;
  for (int bump = 1; bump < 256; ++bump) {
    std::vector<uint8_t> bad = wire;
    bad[0] = static_cast<uint8_t>(kWireFormatVersion + bump);
    EXPECT_FALSE(DecodeReportBatch(bad, &out))
        << "version " << int{bad[0]} << " decoded";
  }
}

TEST(WireFuzzTest, EncodeRejectsNonFiniteEpsilonAtTheSource) {
  BitRequest request;
  request.rr_epsilon = std::numeric_limits<double>::quiet_NaN();
  std::vector<uint8_t> buffer;
  EXPECT_DEATH(EncodeBitRequest(request, &buffer), "finite");
}

}  // namespace
}  // namespace bitpush
