// Bad: kernels are contractually randomness-free; drawing here breaks
// the SIMD-vs-scalar equivalence proof.
#include <cstdint>

namespace bitpush::kernels {

uint64_t MixEntropy(Rng& rng, uint64_t word) {
  return word ^ rng.NextUint64();
}

}  // namespace bitpush::kernels
