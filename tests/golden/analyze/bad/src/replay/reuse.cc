// Bad: the same RNG stream is drawn before and after the restart
// boundary without reseeding, so a replayed run resumes a diverged
// stream.
#include <cstdint>

namespace bitpush {

void ReplayTick(Coordinator& coord, Rng& rng) {
  const uint64_t before = rng.NextUint64();
  coord.Restart();
  const uint64_t after = rng.NextUint64();
  Consume(before, after);
}

}  // namespace bitpush
