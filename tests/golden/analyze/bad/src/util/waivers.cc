// Bad: one waiver missing its reason string, one naming an unknown
// check.
// bitpush-analyze: allow(determinism-flow):
// bitpush-analyze: allow(bogus-check): exporter is intentionally raw here
namespace bitpush {

constexpr int kUnused = 0;

}  // namespace bitpush
