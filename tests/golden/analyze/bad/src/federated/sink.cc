// Bad: the taint originates in another TU (producer.cc returns a raw
// codeword bit) and reaches the wire here, two files away.
#include "federated/producer.h"

namespace bitpush {

void FlushRaw(uint64_t word, int index, WireWriter& out) {
  const uint8_t bit = BuildRaw(word, index);
  EncodeBitReport(out, bit);
}

}  // namespace bitpush
