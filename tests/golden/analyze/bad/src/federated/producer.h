#ifndef BAD_SRC_FEDERATED_PRODUCER_H_
#define BAD_SRC_FEDERATED_PRODUCER_H_

#include <cstdint>

namespace bitpush {

// Returns one raw (unperturbed) codeword bit.
uint8_t BuildRaw(uint64_t word, int index);

}  // namespace bitpush

#endif  // BAD_SRC_FEDERATED_PRODUCER_H_
