// Bad: an RNG constructed from a literal inside library code; every
// stream must descend from the campaign seed / ShardSeed / Fork roots.
namespace bitpush {

double SampleNoise() {
  Rng rng(1234);
  return rng.NextDouble();
}

}  // namespace bitpush
