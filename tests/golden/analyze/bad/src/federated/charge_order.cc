// Bad: the bit is perturbed (disclosed) before the privacy meter is
// charged; the one-bit contract requires the charge to gate the flip.
namespace bitpush {

bool PerturbThenCharge(PrivacyMeter& meter, RandomizedResponse& rr,
                       bool bit, Rng& rng) {
  const bool noisy = rr.Apply(bit, rng);
  if (!meter.TryChargeBit()) {
    return false;
  }
  return noisy;
}

}  // namespace bitpush
