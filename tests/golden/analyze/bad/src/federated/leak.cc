// Bad: raw codewords reach a wire encoder with no perturbation between
// the encode (source) and the batch serialization (sink).
#include <vector>

namespace bitpush {

void FlushRawBatch(const FixedPointCodec& codec,
                   const std::vector<double>& values, WireWriter& out) {
  ReportBatch batch;
  batch.codewords = codec.EncodeAll(values);
  EncodeReportBatch(out, batch);
}

}  // namespace bitpush
