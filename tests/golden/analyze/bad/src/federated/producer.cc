#include "federated/producer.h"

namespace bitpush {

uint8_t BuildRaw(uint64_t word, int index) {
  return FixedPointCodec::Bit(word, index);
}

}  // namespace bitpush
