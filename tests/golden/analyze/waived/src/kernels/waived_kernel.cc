// Waived: a kernel that draws, with a reasoned waiver on the draw line.
#include <cstdint>

namespace bitpush::kernels {

uint64_t SeedProbe(Rng& rng, uint64_t word) {
  // bitpush-analyze: allow(determinism-flow): self-test probe compiled out of release kernels
  return word ^ rng.NextUint64();
}

}  // namespace bitpush::kernels
