// Waived: this calibration path discloses synthetic codewords only; the
// privacy-taint waiver is file-scoped because the taint and the sink are
// far apart.
// bitpush-analyze: allow(privacy-taint): calibration fixture discloses synthetic codewords, never client values
#include <vector>

namespace bitpush {

void FlushCalibration(const FixedPointCodec& codec,
                      const std::vector<double>& synthetic,
                      WireWriter& out) {
  ReportBatch batch;
  batch.codewords = codec.EncodeAll(synthetic);
  EncodeReportBatch(out, batch);
}

}  // namespace bitpush
