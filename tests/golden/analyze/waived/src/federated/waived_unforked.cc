// Waived: literal-seeded smoke stream, reasoned.
#include <cstdint>

namespace bitpush {

double SmokeSample() {
  // bitpush-analyze: allow(determinism-flow): smoke probe stream never crosses a replay boundary
  Rng rng(7);
  return rng.NextDouble();
}

}  // namespace bitpush
