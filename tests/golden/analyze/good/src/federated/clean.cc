// Good: the raw bit is read, perturbed, and charged in the contractual
// order — charge gates the flip, only the noisy bit reaches the wire.
#include <cstdint>

namespace bitpush {

bool EmitPerturbed(PrivacyMeter& meter, RandomizedResponse& rr,
                   uint64_t word, int index, Rng& rng, WireWriter& out) {
  if (!meter.TryChargeBit()) {
    return false;
  }
  const bool noisy = rr.Apply(FixedPointCodec::Bit(word, index), rng);
  EncodeBitReport(out, noisy);
  return true;
}

}  // namespace bitpush
