// Good: the literal-seeded stream is deliberate and carries a reasoned
// waiver, so it lands in the budget instead of the findings.
#include <cstdint>

namespace bitpush {

uint64_t JitterEntropy() {
  // bitpush-analyze: allow(determinism-flow): warm-up jitter feeds only the bench harness, outside the replay envelope
  Rng rng(12345);
  return rng.NextUint64();
}

}  // namespace bitpush
