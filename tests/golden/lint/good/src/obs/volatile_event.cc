// The sanctioned shape of flight-recorder emission from wall-clock-capable
// code: src/obs/ is on the allowlist, and everything it emits is tagged
// kVolatile, so the deterministic events snapshot never sees it.

#include "obs/events.h"

namespace fixture {

void EmitVolatileInObs() {
  bitpush::obs::EventArgs args;
  args.detail = "fixture";
  bitpush::obs::EmitEvent(bitpush::obs::EventType::kReplayMilestone,
                          bitpush::obs::Determinism::kVolatile,
                          std::move(args));
}

}  // namespace fixture
