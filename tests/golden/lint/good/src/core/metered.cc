// A disclosure site in its sanctioned shape: the meter charge precedes
// the report, so every check stays silent.

#include <vector>

#include "core/privacy_meter.h"
#include "federated/report.h"
#include "federated/wire.h"

namespace fixture {

void Submit(bitpush::PrivacyMeter* meter, std::vector<unsigned char>* out) {
  if (!meter->TryChargeBit(9, 1, 0.25)) return;
  const bitpush::BitReport report{9, 1, 0};
  EncodeBitReport(report, out);
}

}  // namespace fixture
