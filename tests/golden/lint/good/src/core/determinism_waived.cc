// The waiver below is the sanctioned escape hatch: the wall-clock read on
// the following line must not be reported, and the waiver must appear in
// the budget. The file registers no instruments, so the waiver-induced
// wall-clock capability triggers nothing else.

#include <chrono>

namespace fixture {

double WallSeconds() {
  // bitpush-lint: allow(determinism): fixture exercises waiver suppression on the adjacent line
  const auto tick = std::chrono::steady_clock::now();
  return static_cast<double>(tick.time_since_epoch().count());
}

}  // namespace fixture
