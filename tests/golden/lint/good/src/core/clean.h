#ifndef BITPUSH_CORE_CLEAN_H_
#define BITPUSH_CORE_CLEAN_H_

// Fully hygienic header: canonical guard, commented #endif, and direct
// includes for every std vocabulary type it names.

#include <string>
#include <vector>

namespace fixture {

std::vector<std::string> CleanNames();

}  // namespace fixture

#endif  // BITPUSH_CORE_CLEAN_H_
