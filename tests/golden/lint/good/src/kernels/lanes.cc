// A kernel translation unit: src/kernels/ is the one place allowed to
// include SIMD intrinsics headers directly, so every check stays silent.

#include <arm_neon.h>

#include <cstdint>

namespace fixture {

uint64_t AddLanes(uint64_t a, uint64_t b) {
  const uint64x2_t sum = vaddq_u64(vdupq_n_u64(a), vdupq_n_u64(b));
  return vgetq_lane_u64(sum, 0);
}

}  // namespace fixture
