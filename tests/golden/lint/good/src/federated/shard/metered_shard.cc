// Fixture: a compliant shard-layer TU — every fabricated bit report is
// charged against the coordinator's shard-local ledger via local_meter()
// before it is disclosed.

#include <cstdint>
#include <vector>

namespace bitpush {

struct BitReport {
  int64_t client_id = 0;
  int bit_index = 0;
  bool bit = false;
};

class ShardLedger {
 public:
  bool TryChargeBit(int64_t client_id, int64_t value_id, double epsilon);
};

class ShardCollector {
 public:
  ShardLedger* local_meter();

  std::vector<BitReport> Collect(int64_t clients, int64_t value_id) {
    std::vector<BitReport> reports;
    for (int64_t id = 0; id < clients; ++id) {
      if (!local_meter()->TryChargeBit(id, value_id, 0.0)) continue;
      reports.push_back(BitReport{id, 0, (id & 1) != 0});
    }
    return reports;
  }
};

}  // namespace bitpush
