#include "federated/wire.h"

namespace fixture {

int TouchFrame() {
  int out = 0;
  EncodeFrame(1, &out);
  DecodeFrame(1, &out);
  return static_cast<int>(FrameKind::kData);
}

}  // namespace fixture
