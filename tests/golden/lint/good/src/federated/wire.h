#ifndef BITPUSH_FEDERATED_WIRE_H_
#define BITPUSH_FEDERATED_WIRE_H_

// Fixture format header with everything in order: the enumerator is
// referenced by the library and the fuzz fixture, and the Encode/Decode
// declarations pair up.

#include <cstdint>

enum class FrameKind : uint8_t {
  kData = 1,
};

void EncodeFrame(int value, int* out);
bool DecodeFrame(int value, int* out);

#endif  // BITPUSH_FEDERATED_WIRE_H_
