// Coverage fixture for the good tree: every enumerator and message pair
// declared in the format header shows up here.

#include "federated/wire.h"

namespace fixture {

int FuzzFrame() {
  int out = 0;
  EncodeFrame(1, &out);
  DecodeFrame(1, &out);
  return static_cast<int>(FrameKind::kData);
}

}  // namespace fixture
