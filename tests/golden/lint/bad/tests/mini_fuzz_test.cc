// Coverage fixture (the "fuzz" in the filename marks it as corpus): it
// exercises only the Covered record, leaving kGhost untested on purpose.

#include "persist/journal.h"

namespace fixture {

int FuzzOnce() {
  int out = 0;
  EncodeCoveredRecord(1, &out);
  return static_cast<int>(JournalRecordType::kCovered);
}

}  // namespace fixture
