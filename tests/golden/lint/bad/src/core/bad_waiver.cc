// Three malformed annotations, one per failure mode: no colon/reason
// clause at all, an unknown check name, and an empty reason string. Each
// must surface as a waiver-syntax finding; none may enter the budget.

// bitpush-lint: allow(determinism)
static const int kOne = 1;

// bitpush-lint: allow(nonsense): the check name does not exist
static const int kTwo = 2;

// bitpush-lint: allow(determinism):
static const int kThree = 3;
