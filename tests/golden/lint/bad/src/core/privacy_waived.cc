// bitpush-lint: allow(privacy-metering): fixture demonstrates the file-scoped waiver; the reports below are synthetic

#include <vector>

#include "federated/report.h"
#include "federated/wire.h"

namespace fixture {

void Replay(std::vector<unsigned char>* out) {
  const bitpush::BitReport report{7, 3, 1};
  EncodeBitReport(report, out);
}

}  // namespace fixture
