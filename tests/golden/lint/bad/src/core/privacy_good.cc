// The compliant shape of a disclosure site: the translation unit charges
// the meter before the report exists, so privacy-metering stays silent.

#include <vector>

#include "core/privacy_meter.h"
#include "federated/report.h"
#include "federated/wire.h"

namespace fixture {

void Submit(bitpush::PrivacyMeter* meter, std::vector<unsigned char>* out) {
  if (!meter->TryChargeBit(7, 3, 0.5)) return;
  const bitpush::BitReport report{7, 3, 1};
  EncodeBitReport(report, out);
}

}  // namespace fixture
