// Includes a SIMD intrinsics header outside src/kernels/: the
// header-hygiene check must fire once, on the include line. Vector code
// belongs behind the kernels::KernelOps dispatch table.

#include <immintrin.h>

#include <cstdint>

namespace fixture {

uint64_t BroadcastLow(uint64_t word) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(word));
  return static_cast<uint64_t>(_mm256_extract_epi64(v, 0));
}

}  // namespace fixture
