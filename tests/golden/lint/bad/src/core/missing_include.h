#ifndef BITPUSH_CORE_MISSING_INCLUDE_H_
#define BITPUSH_CORE_MISSING_INCLUDE_H_

std::vector<int> FixtureMissingInclude();

#endif  // BITPUSH_CORE_MISSING_INCLUDE_H_
