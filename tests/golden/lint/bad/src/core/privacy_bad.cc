// Serializes a client bit report without ever referencing the
// PrivacyMeter charge path: the privacy-metering check must fire once,
// on the report-construction line.

#include <vector>

#include "federated/report.h"
#include "federated/wire.h"

namespace fixture {

void Leak(std::vector<unsigned char>* out) {
  const auto report = bitpush::BitReport{7, 3, 1};
  EncodeBitReport(report, out);
}

}  // namespace fixture
