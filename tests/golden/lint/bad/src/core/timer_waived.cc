// A waived wall-clock read makes this file wall-clock-capable, so its
// Determinism::kStable registration below must trip obs-stability even
// though the determinism finding itself is suppressed.

#include <chrono>

#include "obs/metrics.h"

namespace fixture {

double Elapsed() {
  // bitpush-lint: allow(determinism): fixture models a waived wall-clock read feeding a metric
  const auto tick = std::chrono::steady_clock::now();
  return static_cast<double>(tick.time_since_epoch().count());
}

void Register() {
  bitpush::obs::Registry::Default().GetCounter(
      "fixture_waived_total", "help", bitpush::obs::Determinism::kStable);
}

}  // namespace fixture
