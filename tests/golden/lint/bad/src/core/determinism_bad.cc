// Deliberately non-deterministic fixture: each banned construct sits on
// its own line, so the determinism check must report exactly five
// findings for this file.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned AmbientEntropy() {
  std::random_device device;
  std::mt19937 engine(device());
  const long stamp = time(nullptr);
  const auto tick = std::chrono::steady_clock::now();
  const int leak = std::rand();
  return engine() + static_cast<unsigned>(stamp) +
         static_cast<unsigned>(tick.time_since_epoch().count()) +
         static_cast<unsigned>(leak);
}

}  // namespace fixture
