#ifndef BITPUSH_CORE_USING_NS_H_
#define BITPUSH_CORE_USING_NS_H_

using namespace fixture;

int FixtureUsingNamespace();

#endif  // BITPUSH_CORE_USING_NS_H_
