// src/obs/ is on the wall-clock allowlist, so a Determinism::kStable
// registration here must trip obs-stability: stable instruments belong
// in deterministic code, not next to wall clocks.

#include "obs/metrics.h"

namespace fixture {

void RegisterStableInObs() {
  bitpush::obs::Registry::Default().GetCounter(
      "fixture_obs_total", "help", bitpush::obs::Determinism::kStable);
}

}  // namespace fixture
