// src/obs/ is on the wall-clock allowlist, so a kStable flight-recorder
// emission here must trip obs-stability: stable events feed the
// deterministic events snapshot and belong in deterministic code, not
// next to wall clocks.

#include "obs/events.h"

namespace fixture {

void EmitStableInObs() {
  bitpush::obs::EventArgs args;
  args.detail = "fixture";
  bitpush::obs::EmitEvent(bitpush::obs::EventType::kRoundOutcome,
                          bitpush::obs::Determinism::kStable,
                          std::move(args));
}

}  // namespace fixture
