// Fixture: a shard wire header that breaks the exhaustiveness contract
// six ways — an encoder with no decoder, a message no fuzz/golden test
// exercises, a single-line enum whose enumerator is neither referenced
// in src/ nor covered, and a wire-section version constant that gates
// nothing and is never fuzzed. The nested Inner enum is a negative
// control: it sits at struct depth and must NOT be harvested.
#ifndef BITPUSH_FEDERATED_SHARD_MERGE_H_
#define BITPUSH_FEDERATED_SHARD_MERGE_H_

#include <cstdint>
#include <vector>

namespace bitpush {

enum class MiniKind : uint8_t { kTick = 1 };

struct Mini {
  enum class Inner : uint8_t { kNope = 1 };
  int64_t tick = 0;
};

inline constexpr uint8_t kMiniSectionVersion = 1;

struct MiniFrame {
  MiniKind kind = MiniKind::kTick;
  int64_t payload = 0;
};

void EncodeMiniFrame(const MiniFrame& frame, std::vector<uint8_t>* out);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SHARD_MERGE_H_
