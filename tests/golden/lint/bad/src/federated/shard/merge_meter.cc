// Fixture: a merge-tier TU that calls the meter charge path. The merge
// tier only combines tallies each shard already charged to its own
// local_meter, so any TryChargeBit here double-meters the same disclosure
// across shards — privacy-metering must fire.

#include <cstdint>

#include "core/privacy_meter.h"

namespace bitpush {

bool ChargeDuringMerge(PrivacyMeter* meter, int64_t client_id,
                       int64_t value_id) {
  return meter->TryChargeBit(client_id, value_id, 0.0);
}

}  // namespace bitpush
