// Fixture: a shard-layer TU that fabricates client bit reports and even
// references the generic PrivacyMeter type, but never touches the
// shard-local ledger (local_meter). Inside src/federated/shard/ that must
// fire privacy-metering: a generic meter reference is not evidence the
// disclosure was charged to this shard's own failure domain.

#include <cstdint>
#include <vector>

namespace bitpush {

struct BitReport {
  int64_t client_id = 0;
  int bit_index = 0;
  bool bit = false;
};

class PrivacyMeter;

std::vector<BitReport> FabricateShardReports(int64_t clients,
                                             PrivacyMeter* /*unused*/) {
  std::vector<BitReport> reports;
  for (int64_t id = 0; id < clients; ++id) {
    reports.push_back(BitReport{id, 0, (id & 1) != 0});
  }
  return reports;
}

}  // namespace bitpush
