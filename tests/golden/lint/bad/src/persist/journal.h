#ifndef BITPUSH_PERSIST_JOURNAL_H_
#define BITPUSH_PERSIST_JOURNAL_H_

// Fixture format header. kCovered is fully wired: referenced by the
// library, paired Encode/Decode, exercised by the fuzz fixture. kGhost is
// broken four ways on purpose: no library reference, no fuzz coverage,
// and an Encode declaration with no matching Decode.

#include <cstdint>

enum class JournalRecordType : uint8_t {
  kCovered = 1,
  kGhost = 2,
};

void EncodeCoveredRecord(int value, int* out);
bool DecodeCoveredRecord(int value, int* out);
void EncodeGhostRecord(int value, int* out);

#endif  // BITPUSH_PERSIST_JOURNAL_H_
