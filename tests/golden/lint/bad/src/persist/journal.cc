// Library reference for kCovered only; kGhost is deliberately absent so
// the "never referenced by an encode/decode path" finding fires.

#include "persist/journal.h"

namespace fixture {

int TouchCovered() {
  int out = 0;
  EncodeCoveredRecord(1, &out);
  DecodeCoveredRecord(1, &out);
  return static_cast<int>(JournalRecordType::kCovered);
}

}  // namespace fixture
