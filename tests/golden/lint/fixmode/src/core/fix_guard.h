#ifndef BITPUSH_CORE_FIXGUARD_H_
#define BITPUSH_CORE_FIXGUARD_H_

int FixtureFixableGuard();

#endif
