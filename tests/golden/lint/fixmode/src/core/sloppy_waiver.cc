// Pre-fix, the sloppy annotation below does not parse (spaces inside the
// parentheses), so it is a waiver-syntax finding and the wall-clock read
// underneath is unsuppressed. --fix normalizes it to the canonical form.

#include <chrono>

namespace fixture {

double SloppyWallSeconds() {
  //bitpush-lint:   allow( determinism ):  fixture exercises waiver normalization
  const auto tick = std::chrono::steady_clock::now();
  return static_cast<double>(tick.time_since_epoch().count());
}

}  // namespace fixture
