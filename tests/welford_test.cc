#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/distributions.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  const Welford acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  Welford acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.population_variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(WelfordTest, KnownSmallSample) {
  Welford acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.population_variance(), 4.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(WelfordTest, NumericallyStableWithLargeOffset) {
  // Classic catastrophic-cancellation case for the naive sum-of-squares
  // formula: values near 1e9 with tiny variance.
  Welford acc;
  for (const double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) {
    acc.Add(x);
  }
  EXPECT_NEAR(acc.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(acc.population_variance(), 22.5, 1e-6);
}

TEST(WelfordTest, MergeMatchesSequential) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(SampleNormal(rng, 3.0, 2.0));
  }
  Welford all;
  Welford left;
  Welford right;
  for (size_t i = 0; i < values.size(); ++i) {
    all.Add(values[i]);
    (i < 400 ? left : right).Add(values[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.population_variance(), all.population_variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(WelfordTest, MergeWithEmptySides) {
  Welford filled;
  filled.Add(1.0);
  filled.Add(3.0);

  Welford empty_into_filled = filled;
  empty_into_filled.Merge(Welford());
  EXPECT_EQ(empty_into_filled.count(), 2);
  EXPECT_DOUBLE_EQ(empty_into_filled.mean(), 2.0);

  Welford filled_into_empty;
  filled_into_empty.Merge(filled);
  EXPECT_EQ(filled_into_empty.count(), 2);
  EXPECT_DOUBLE_EQ(filled_into_empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(filled_into_empty.min(), 1.0);
}

TEST(WelfordTest, StddevIsSqrtOfVariance) {
  Welford acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.population_stddev(),
                   std::sqrt(acc.population_variance()));
}

}  // namespace
}  // namespace bitpush
