#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "federated/cohort.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

std::vector<Client> TestPopulation(int n) {
  std::vector<double> values;
  for (int i = 0; i < n; ++i) values.push_back(static_cast<double>(i));
  return MakePopulation(values, ClientConfig{});
}

TEST(CohortTest, SelectsEveryoneByDefault) {
  const std::vector<Client> clients = TestPopulation(10);
  Rng rng(1);
  bool below = true;
  const std::vector<int64_t> cohort =
      SelectCohort(clients, nullptr, CohortPolicy{}, rng, &below);
  EXPECT_FALSE(below);
  EXPECT_EQ(cohort.size(), 10u);
  const std::set<int64_t> unique(cohort.begin(), cohort.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(CohortTest, EligibilityFilterApplies) {
  const std::vector<Client> clients = TestPopulation(10);
  Rng rng(2);
  bool below = true;
  const std::vector<int64_t> cohort = SelectCohort(
      clients,
      [](const Client& c) { return c.values().front() >= 5.0; },
      CohortPolicy{}, rng, &below);
  EXPECT_FALSE(below);
  EXPECT_EQ(cohort.size(), 5u);
  for (const int64_t i : cohort) EXPECT_GE(i, 5);
}

TEST(CohortTest, MinimumCohortSizeAborts) {
  // Section 4.3: selective queries must "enforce a minimum cohort size for
  // privacy".
  const std::vector<Client> clients = TestPopulation(10);
  Rng rng(3);
  CohortPolicy policy;
  policy.min_cohort_size = 8;
  bool below = false;
  const std::vector<int64_t> cohort = SelectCohort(
      clients, [](const Client& c) { return c.values().front() < 5.0; },
      policy, rng, &below);
  EXPECT_TRUE(below);
  EXPECT_TRUE(cohort.empty());
}

TEST(CohortTest, MaxCohortTruncatesAfterShuffle) {
  const std::vector<Client> clients = TestPopulation(100);
  Rng rng(4);
  CohortPolicy policy;
  policy.max_cohort_size = 10;
  bool below = true;
  const std::vector<int64_t> cohort =
      SelectCohort(clients, nullptr, policy, rng, &below);
  EXPECT_EQ(cohort.size(), 10u);
  // Shuffled: overwhelmingly unlikely to be exactly the first ten ids.
  bool is_prefix = true;
  for (size_t i = 0; i < cohort.size(); ++i) {
    if (cohort[i] != static_cast<int64_t>(i)) is_prefix = false;
  }
  EXPECT_FALSE(is_prefix);
}

TEST(CohortTest, TruncationIsUnbiasedSubsample) {
  const std::vector<Client> clients = TestPopulation(100);
  CohortPolicy policy;
  policy.max_cohort_size = 10;
  std::vector<int64_t> appearances(100, 0);
  Rng rng(5);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    bool below = true;
    for (const int64_t i : SelectCohort(clients, nullptr, policy, rng,
                                        &below)) {
      ++appearances[static_cast<size_t>(i)];
    }
  }
  // Each client appears with probability 0.1.
  for (const int64_t count : appearances) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.03);
  }
}

TEST(CohortDeathTest, InvalidPolicyAborts) {
  const std::vector<Client> clients = TestPopulation(3);
  Rng rng(6);
  CohortPolicy policy;
  policy.min_cohort_size = 0;
  bool below = false;
  EXPECT_DEATH(SelectCohort(clients, nullptr, policy, rng, &below),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(SelectCohort(clients, nullptr, CohortPolicy{}, rng, nullptr),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
