#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "rng/qmc.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

std::vector<int64_t> CountAssignments(const std::vector<int>& assignment,
                                      size_t bits) {
  std::vector<int64_t> counts(bits, 0);
  for (const int bit : assignment) ++counts[static_cast<size_t>(bit)];
  return counts;
}

TEST(ProportionalGroupSizesTest, ExactWhenDivisible) {
  const std::vector<int64_t> sizes =
      ProportionalGroupSizes(100, {0.5, 0.3, 0.2});
  EXPECT_EQ(sizes, (std::vector<int64_t>{50, 30, 20}));
}

TEST(ProportionalGroupSizesTest, SumsToNWithRemainders) {
  const std::vector<double> p = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (int64_t n : {1, 2, 7, 100, 9999}) {
    const std::vector<int64_t> sizes = ProportionalGroupSizes(n, p);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), int64_t{0}), n);
    for (const int64_t s : sizes) {
      EXPECT_GE(s, n / 3);
      EXPECT_LE(s, n / 3 + 1);
    }
  }
}

TEST(ProportionalGroupSizesTest, ZeroProbabilityGetsZero) {
  const std::vector<int64_t> sizes =
      ProportionalGroupSizes(1000, {0.0, 1.0});
  EXPECT_EQ(sizes[0], 0);
  EXPECT_EQ(sizes[1], 1000);
}

TEST(ProportionalGroupSizesTest, NeverDeviatesByMoreThanOne) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> p(8);
    for (double& x : p) x = rng.NextDouble() + 0.01;
    NormalizeProbabilities(p);
    const int64_t n = 1 + static_cast<int64_t>(rng.NextBelow(100000));
    const std::vector<int64_t> sizes = ProportionalGroupSizes(n, p);
    int64_t total = 0;
    for (size_t j = 0; j < p.size(); ++j) {
      const double exact = static_cast<double>(n) * p[j];
      EXPECT_GE(static_cast<double>(sizes[j]), std::floor(exact) - 1e-9);
      EXPECT_LE(static_cast<double>(sizes[j]), std::ceil(exact) + 1e-9);
      total += sizes[j];
    }
    EXPECT_EQ(total, n);
  }
}

TEST(ProportionalGroupSizesDeathTest, RejectsUnnormalizedInput) {
  EXPECT_DEATH(ProportionalGroupSizes(10, {0.5, 0.6}),
               "probabilities must sum to 1");
  EXPECT_DEATH(ProportionalGroupSizes(10, {1.5, -0.5}),
               "BITPUSH_CHECK failed");
}

TEST(AssignBitsCentralTest, CountsAreExactlyProportional) {
  Rng rng(1);
  const std::vector<double> p = {0.5, 0.25, 0.25};
  const std::vector<int> assignment = AssignBitsCentral(1000, p, rng);
  EXPECT_EQ(CountAssignments(assignment, 3),
            (std::vector<int64_t>{500, 250, 250}));
}

TEST(AssignBitsCentralTest, ShuffleDecorrelatesClientIdFromBit) {
  Rng rng(2);
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<int> assignment = AssignBitsCentral(10000, p, rng);
  // Without the shuffle the first half would all be bit 0. With it, the
  // first half should contain roughly half each.
  int64_t first_half_zeros = 0;
  for (size_t i = 0; i < 5000; ++i) first_half_zeros += assignment[i] == 0;
  EXPECT_GT(first_half_zeros, 2250);
  EXPECT_LT(first_half_zeros, 2750);
}

TEST(AssignBitsCentralTest, DeterministicGivenSeed) {
  const std::vector<double> p = {0.7, 0.3};
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(AssignBitsCentral(500, p, a), AssignBitsCentral(500, p, b));
}

TEST(AssignBitsLocalTest, CountsAreBinomial) {
  Rng rng(3);
  const std::vector<double> p = {0.5, 0.5};
  const int trials = 200;
  const int64_t n = 1000;
  // Central assignment has zero variance in group sizes; local must show
  // binomial-scale variance (n/4 = 250 here).
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::vector<int64_t> counts =
        CountAssignments(AssignBitsLocal(n, p, rng), 2);
    EXPECT_EQ(counts[0] + counts[1], n);
    sum += static_cast<double>(counts[0]);
    sum_sq += static_cast<double>(counts[0]) * static_cast<double>(counts[0]);
  }
  const double mean = sum / trials;
  const double variance = sum_sq / trials - mean * mean;
  EXPECT_NEAR(mean, 500.0, 10.0);
  EXPECT_GT(variance, 100.0);  // far from the QMC's exact 0
}

TEST(AssignBitsTest, EmptyPopulation) {
  Rng rng(4);
  EXPECT_TRUE(AssignBitsCentral(0, {1.0}, rng).empty());
  EXPECT_TRUE(AssignBitsLocal(0, {1.0}, rng).empty());
}

}  // namespace
}  // namespace bitpush
