#include <vector>

#include <gtest/gtest.h>

#include "stats/quantiles.h"

namespace bitpush {
namespace {

TEST(QuantilesTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(QuantilesTest, MedianInterpolatesEvenSample) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(QuantilesTest, Extremes) {
  const std::vector<double> v = {7.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 7.0);
}

TEST(QuantilesTest, SingleElement) {
  for (const double q : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(Quantile({42.0}, q), 42.0);
  }
}

TEST(QuantilesTest, InputIsNotMutated) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  std::vector<double> copy = v;
  Quantile(copy, 0.5);
  EXPECT_EQ(copy, v);
}

TEST(QuantilesTest, BatchMatchesSingle) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  const std::vector<double> qs = {0.1, 0.5, 0.9};
  const std::vector<double> batch = Quantiles(v, qs);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], Quantile(v, qs[i]));
  }
}

TEST(QuantilesTest, LinearInterpolationInBetween) {
  // Positions: 0 -> 10, 1 -> 20; q = 0.75 of (n-1)=1 -> position 0.75.
  EXPECT_DOUBLE_EQ(Quantile({10.0, 20.0}, 0.75), 17.5);
}

TEST(WinsorizeTest, ClampsTails) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const std::vector<double> w = Winsorize(v, 0.05, 0.95);
  const double low = Quantile(v, 0.05);
  const double high = Quantile(v, 0.95);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(w[i], low);
    EXPECT_LE(w[i], high);
    if (v[i] >= low && v[i] <= high) {
      EXPECT_DOUBLE_EQ(w[i], v[i]);
    }
  }
}

TEST(WinsorizeTest, FullRangeIsIdentity) {
  const std::vector<double> v = {3.0, -1.0, 9.0};
  EXPECT_EQ(Winsorize(v, 0.0, 1.0), v);
}

TEST(WinsorizeTest, TamesOutliers) {
  std::vector<double> v(99, 1.0);
  v.push_back(1e9);
  const std::vector<double> w = Winsorize(v, 0.0, 0.98);
  for (const double x : w) EXPECT_LE(x, 1.0 + 1e-9);
}

TEST(QuantilesDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(Quantile({}, 0.5), "BITPUSH_CHECK failed");
  EXPECT_DEATH(Quantile({1.0}, -0.1), "BITPUSH_CHECK failed");
  EXPECT_DEATH(Quantile({1.0}, 1.1), "BITPUSH_CHECK failed");
  EXPECT_DEATH(Winsorize({1.0}, 0.9, 0.1), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
