#include <gtest/gtest.h>

#include "federated/poisoning.h"

namespace bitpush {
namespace {

TEST(PoisoningTest, HonestPassesThrough) {
  int index = -1;
  EXPECT_EQ(PoisonedBit(AdversaryMode::kHonest, false, 7, 3, 1, &index), 1);
  EXPECT_EQ(index, 3);
  EXPECT_EQ(PoisonedBit(AdversaryMode::kHonest, true, 7, 2, 0, &index), 0);
  EXPECT_EQ(index, 2);
}

TEST(PoisoningTest, AlwaysOneIgnoresTruth) {
  int index = -1;
  EXPECT_EQ(PoisonedBit(AdversaryMode::kAlwaysOne, false, 7, 3, 0, &index),
            1);
  EXPECT_EQ(index, 3);
  EXPECT_EQ(PoisonedBit(AdversaryMode::kAlwaysOne, true, 7, 3, 0, &index),
            1);
  EXPECT_EQ(index, 3);
}

TEST(PoisoningTest, TopBitHijackOnlyUnderLocalRandomness) {
  int index = -1;
  EXPECT_EQ(PoisonedBit(AdversaryMode::kTopBitOne, true, 7, 2, 0, &index),
            1);
  EXPECT_EQ(index, 7);
  EXPECT_EQ(PoisonedBit(AdversaryMode::kTopBitOne, false, 7, 2, 0, &index),
            1);
  EXPECT_EQ(index, 2);  // central randomness pins the index
}

TEST(PoisoningTest, FlipBitComplements) {
  int index = -1;
  EXPECT_EQ(PoisonedBit(AdversaryMode::kFlipBit, false, 7, 0, 0, &index), 1);
  EXPECT_EQ(PoisonedBit(AdversaryMode::kFlipBit, false, 7, 0, 1, &index), 0);
}

TEST(PoisoningTest, GarbageIndexOnlyUnderLocalRandomness) {
  int index = -1;
  EXPECT_EQ(PoisonedBit(AdversaryMode::kGarbageIndex, true, 7, 2, 0,
                        &index),
            1);
  EXPECT_GT(index, 7);  // out of protocol range
  EXPECT_EQ(PoisonedBit(AdversaryMode::kGarbageIndex, false, 7, 2, 0,
                        &index),
            1);
  EXPECT_EQ(index, 2);  // central randomness pins the index
}

TEST(PoisoningDeathTest, InvalidArgumentsAbort) {
  int index = -1;
  EXPECT_DEATH(PoisonedBit(AdversaryMode::kHonest, false, 7, 0, 2, &index),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(PoisonedBit(AdversaryMode::kHonest, false, 7, 0, 1, nullptr),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
