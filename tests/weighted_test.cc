#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/weighted.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

WeightedMeanConfig Config(int bits) {
  WeightedMeanConfig config;
  config.probabilities = GeometricProbabilities(bits, 0.5);
  return config;
}

double ExactWeightedMean(const std::vector<WeightedValue>& values) {
  double num = 0.0;
  double den = 0.0;
  for (const WeightedValue& wv : values) {
    num += wv.weight * wv.value;
    den += wv.weight;
  }
  return num / den;
}

std::vector<WeightedValue> RandomWeightedPopulation(int64_t n, Rng& rng) {
  std::vector<WeightedValue> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(
        WeightedValue{static_cast<double>(rng.NextBelow(128)),
                      1.0 + static_cast<double>(rng.NextBelow(20))});
  }
  return values;
}

TEST(WeightedMeanTest, EqualWeightsMatchUnweightedTruth) {
  Rng rng(1);
  std::vector<WeightedValue> values;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = static_cast<double>(rng.NextBelow(128));
    values.push_back(WeightedValue{v, 1.0});
    sum += v;
  }
  const double truth = sum / 20000.0;
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const WeightedMeanResult result =
      EstimateWeightedMean(values, codec, Config(7), rng);
  EXPECT_NEAR(result.estimate, truth, 0.1 * truth);
}

TEST(WeightedMeanTest, RecoversExactWeightedMean) {
  Rng rng(2);
  const std::vector<WeightedValue> values =
      RandomWeightedPopulation(30000, rng);
  const double truth = ExactWeightedMean(values);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const WeightedMeanResult result =
      EstimateWeightedMean(values, codec, Config(7), rng);
  EXPECT_NEAR(result.estimate, truth, 0.1 * truth);
}

TEST(WeightedMeanTest, UnbiasedAcrossRepetitions) {
  Rng rng(3);
  const std::vector<WeightedValue> values =
      RandomWeightedPopulation(5000, rng);
  const double truth = ExactWeightedMean(values);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const ErrorStats stats = RunRepetitions(300, 4, truth, [&](Rng& run) {
    return EstimateWeightedMean(values, codec, Config(7), run).estimate;
  });
  const double stderr_mean =
      stats.rmse / std::sqrt(static_cast<double>(stats.repetitions));
  EXPECT_LT(std::abs(stats.bias), 4.0 * stderr_mean + 1e-9);
}

TEST(WeightedMeanTest, HeavyClientDominatesAsItShould) {
  // One client with weight 1000 at value 100; 100 clients with weight 1 at
  // value 0. Weighted mean ~ 90.9.
  std::vector<WeightedValue> values(100, WeightedValue{0.0, 1.0});
  values.push_back(WeightedValue{100.0, 1000.0});
  const double truth = ExactWeightedMean(values);
  EXPECT_NEAR(truth, 100.0 * 1000.0 / 1100.0, 1e-9);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(5);
  // The Horvitz-Thompson estimator is unbiased but high-variance with so
  // few clients; average many runs and compare within ~3 standard errors.
  Welford acc;
  for (int rep = 0; rep < 3000; ++rep) {
    acc.Add(EstimateWeightedMean(values, codec, Config(7), rng).estimate);
  }
  const double standard_error =
      acc.population_stddev() / std::sqrt(3000.0);
  EXPECT_NEAR(acc.mean(), truth, 3.0 * standard_error + 1.0);
}

TEST(WeightedMeanTest, MatchesReplicationSemantics) {
  // Integer weights are equivalent to replicating each client's value
  // weight-many times in an unweighted population (in expectation).
  Rng rng(6);
  std::vector<WeightedValue> weighted;
  std::vector<WeightedValue> replicated;
  for (int i = 0; i < 3000; ++i) {
    const double v = static_cast<double>(rng.NextBelow(64));
    const double w = static_cast<double>(1 + rng.NextBelow(4));
    weighted.push_back(WeightedValue{v, w});
    for (int k = 0; k < static_cast<int>(w); ++k) {
      replicated.push_back(WeightedValue{v, 1.0});
    }
  }
  EXPECT_NEAR(ExactWeightedMean(weighted), ExactWeightedMean(replicated),
              1e-9);
  const FixedPointCodec codec = FixedPointCodec::Integer(6);
  Welford weighted_acc;
  Welford replicated_acc;
  for (int rep = 0; rep < 200; ++rep) {
    weighted_acc.Add(
        EstimateWeightedMean(weighted, codec, Config(6), rng).estimate);
    replicated_acc.Add(
        EstimateWeightedMean(replicated, codec, Config(6), rng).estimate);
  }
  EXPECT_NEAR(weighted_acc.mean(), replicated_acc.mean(), 0.5);
}

TEST(WeightedMeanTest, DpReportsUnbiased) {
  Rng rng(7);
  const std::vector<WeightedValue> values =
      RandomWeightedPopulation(20000, rng);
  const double truth = ExactWeightedMean(values);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  WeightedMeanConfig config = Config(7);
  config.epsilon = 1.0;
  const ErrorStats stats = RunRepetitions(150, 8, truth, [&](Rng& run) {
    return EstimateWeightedMean(values, codec, config, run).estimate;
  });
  const double stderr_mean =
      stats.rmse / std::sqrt(static_cast<double>(stats.repetitions));
  EXPECT_LT(std::abs(stats.bias), 4.0 * stderr_mean + 1e-9);
}

TEST(WeightedMeanDeathTest, InvalidInputsAbort) {
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(9);
  EXPECT_DEATH(EstimateWeightedMean({}, codec, Config(7), rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateWeightedMean({WeightedValue{1.0, 0.0}}, codec,
                                    Config(7), rng),
               "weights must be positive");
  WeightedMeanConfig mismatched = Config(6);
  EXPECT_DEATH(EstimateWeightedMean({WeightedValue{1.0, 1.0}}, codec,
                                    mismatched, rng),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
