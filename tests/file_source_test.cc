#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/file_source.h"

namespace bitpush {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

TEST(FileSourceTest, LoadsValuesSkippingBlanksAndComments) {
  const std::string path = TempPath("values.txt");
  WriteFile(path, "# header comment\n1.5\n\n  \n42\n-3e2\n");
  Dataset data;
  std::string error;
  ASSERT_TRUE(LoadDatasetFromFile(path, &data, &error)) << error;
  EXPECT_EQ(data.values(), (std::vector<double>{1.5, 42.0, -300.0}));
  EXPECT_DOUBLE_EQ(data.truth().mean, (1.5 + 42.0 - 300.0) / 3.0);
}

TEST(FileSourceTest, MissingFileReportsError) {
  Dataset data("untouched", {7.0});
  std::string error;
  EXPECT_FALSE(LoadDatasetFromFile(TempPath("nope.txt"), &data, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
  // Output untouched on failure.
  EXPECT_EQ(data.values(), (std::vector<double>{7.0}));
}

TEST(FileSourceTest, MalformedLineReportsLineNumber) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "1\n2\nnot_a_number\n");
  Dataset data;
  std::string error;
  EXPECT_FALSE(LoadDatasetFromFile(path, &data, &error));
  EXPECT_NE(error.find(":3:"), std::string::npos);
  EXPECT_NE(error.find("not_a_number"), std::string::npos);
}

TEST(FileSourceTest, TrailingWhitespaceTolerated) {
  const std::string path = TempPath("ws.txt");
  WriteFile(path, "3.25  \t\n");
  Dataset data;
  ASSERT_TRUE(LoadDatasetFromFile(path, &data, nullptr));
  EXPECT_EQ(data.values(), (std::vector<double>{3.25}));
}

TEST(FileSourceTest, TrailingGarbageRejected) {
  const std::string path = TempPath("garbage.txt");
  WriteFile(path, "3.25abc\n");
  Dataset data;
  EXPECT_FALSE(LoadDatasetFromFile(path, &data, nullptr));
}

TEST(FileSourceTest, EmptyFileGivesEmptyDataset) {
  const std::string path = TempPath("empty.txt");
  WriteFile(path, "");
  Dataset data("old", {1.0});
  ASSERT_TRUE(LoadDatasetFromFile(path, &data, nullptr));
  EXPECT_TRUE(data.empty());
}

TEST(FileSourceTest, SaveLoadRoundTripIsExact) {
  const std::string path = TempPath("roundtrip.txt");
  const Dataset original("orig",
                         {0.1, -1e300, 12345.6789, 0.0, 3.0e-15});
  std::string error;
  ASSERT_TRUE(SaveDatasetToFile(original, path, &error)) << error;
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetFromFile(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (int64_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.values()[static_cast<size_t>(i)],
                     original.values()[static_cast<size_t>(i)]);
  }
}

TEST(FileSourceTest, SaveToUnwritablePathFails) {
  std::string error;
  EXPECT_FALSE(SaveDatasetToFile(Dataset("d", {1.0}),
                                 "/nonexistent_dir/out.txt", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace bitpush
