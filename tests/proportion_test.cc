#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/proportion.h"
#include "data/census.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(ProportionTest, ExactWithoutNoise) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  Rng rng(1);
  const ProportionResult result = EstimateProportion(
      values, [](double v) { return v >= 3.0; }, 0.0, rng);
  EXPECT_DOUBLE_EQ(result.fraction, 0.5);
  EXPECT_DOUBLE_EQ(result.count, 2.0);
  EXPECT_EQ(result.reports, 4);
}

TEST(ProportionTest, CensusMinorsShare) {
  Rng rng(2);
  const Dataset ages = CensusAges(100000, rng);
  int64_t exact = 0;
  for (const double age : ages.values()) exact += age < 18.0;
  const double exact_fraction =
      static_cast<double>(exact) / static_cast<double>(ages.size());
  const ProportionResult result = EstimateRangeProportion(
      ages.values(), 0.0, 17.0, 0.0, rng);
  EXPECT_DOUBLE_EQ(result.fraction, exact_fraction);  // noise-free: exact
}

TEST(ProportionTest, DpEstimateIsUnbiased) {
  Rng rng(3);
  const Dataset ages = CensusAges(20000, rng);
  int64_t exact = 0;
  for (const double age : ages.values()) exact += age >= 65.0;
  const double truth =
      static_cast<double>(exact) / static_cast<double>(ages.size());
  Welford acc;
  for (int rep = 0; rep < 200; ++rep) {
    acc.Add(EstimateRangeProportion(ages.values(), 65.0, 200.0, 1.0, rng)
                .fraction);
  }
  EXPECT_NEAR(acc.mean(), truth, 0.01);
  // The plug-in standard error should match the empirical spread.
  Rng probe(4);
  const ProportionResult one =
      EstimateRangeProportion(ages.values(), 65.0, 200.0, 1.0, probe);
  EXPECT_NEAR(acc.population_stddev() / one.stderr_fraction, 1.0, 0.3);
}

TEST(ProportionTest, DpCanProduceOutOfRangeFractionButClampsPointEstimate) {
  // Predicate true for nobody + DP noise: the unbiased estimate hovers
  // around 0 and can dip negative; the clamped estimate never does.
  const std::vector<double> values(500, 1.0);
  Rng rng(5);
  bool saw_negative = false;
  for (int rep = 0; rep < 100; ++rep) {
    const ProportionResult result = EstimateProportion(
        values, [](double) { return false; }, 0.5, rng);
    saw_negative |= result.fraction < 0.0;
    EXPECT_GE(result.clamped_fraction, 0.0);
    EXPECT_LE(result.clamped_fraction, 1.0);
  }
  EXPECT_TRUE(saw_negative);
}

TEST(ProportionTest, StdErrorShrinksWithN) {
  Rng rng(6);
  const Dataset small = CensusAges(1000, rng);
  const Dataset large = CensusAges(100000, rng);
  const double se_small =
      EstimateRangeProportion(small.values(), 0.0, 30.0, 0.0, rng)
          .stderr_fraction;
  const double se_large =
      EstimateRangeProportion(large.values(), 0.0, 30.0, 0.0, rng)
          .stderr_fraction;
  EXPECT_NEAR(se_small / se_large, 10.0, 1.5);
}

TEST(ProportionDeathTest, InvalidInputsAbort) {
  Rng rng(7);
  EXPECT_DEATH(EstimateProportion({}, [](double) { return true; }, 0.0,
                                  rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateProportion({1.0}, nullptr, 0.0, rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateRangeProportion({1.0}, 2.0, 1.0, 0.0, rng),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
