// End-to-end reproducibility: the README promises that every experiment is
// reproducible bit-for-bit from a seed. These tests run each major
// protocol twice with identical seeds (expecting identical results) and
// with different seeds (expecting different randomness, i.e. no hidden
// global state or accidental seed reuse).

#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/histogram_estimation.h"
#include "core/range_tree.h"
#include "core/variance_estimation.h"
#include "core/vector_aggregation.h"
#include "data/census.h"
#include "federated/round.h"
#include "federated/shard/runner.h"
#include "obs/alerts.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  DeterminismTest() {
    Rng data_rng(7);
    ages_ = CensusAges(4000, data_rng);
    codewords_ = FixedPointCodec::Integer(7).EncodeAll(ages_.values());
  }

  Dataset ages_;
  std::vector<uint64_t> codewords_;
};

TEST_F(DeterminismTest, BasicBitPushing) {
  BitPushingConfig config;
  config.probabilities = {0.1, 0.1, 0.1, 0.1, 0.2, 0.2, 0.2};
  config.epsilon = 1.0;
  Rng a(42);
  Rng b(42);
  Rng c(43);
  const double first =
      RunBasicBitPushing(codewords_, config, a).estimate_codeword;
  const double second =
      RunBasicBitPushing(codewords_, config, b).estimate_codeword;
  const double other =
      RunBasicBitPushing(codewords_, config, c).estimate_codeword;
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST_F(DeterminismTest, AdaptiveBitPushing) {
  AdaptiveConfig config;
  config.bits = 7;
  config.epsilon = 2.0;
  config.squash = SquashPolicy::Absolute(0.05);
  Rng a(11);
  Rng b(11);
  const AdaptiveResult first = RunAdaptiveBitPushing(codewords_, config, a);
  const AdaptiveResult second =
      RunAdaptiveBitPushing(codewords_, config, b);
  EXPECT_DOUBLE_EQ(first.estimate_codeword, second.estimate_codeword);
  EXPECT_EQ(first.round2_probabilities, second.round2_probabilities);
  EXPECT_EQ(first.kept, second.kept);
}

TEST_F(DeterminismTest, VarianceEstimation) {
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VarianceConfig config;
  config.protocol.bits = 7;
  Rng a(13);
  Rng b(13);
  EXPECT_DOUBLE_EQ(
      EstimateVariance(ages_.values(), codec, config, a).variance,
      EstimateVariance(ages_.values(), codec, config, b).variance);
}

TEST_F(DeterminismTest, HistogramAndRangeTree) {
  HistogramConfig histogram_config;
  histogram_config.edges = UniformEdges(0.0, 91.0, 13);
  histogram_config.epsilon = 1.0;
  Rng a(17);
  Rng b(17);
  EXPECT_EQ(EstimateHistogram(ages_.values(), histogram_config, a)
                .fractions,
            EstimateHistogram(ages_.values(), histogram_config, b)
                .fractions);

  RangeTreeConfig tree_config;
  tree_config.levels = 7;
  Rng c(19);
  Rng d(19);
  EXPECT_DOUBLE_EQ(
      EstimateRangeTree(codewords_, tree_config, c).Quantile(0.5),
      EstimateRangeTree(codewords_, tree_config, d).Quantile(0.5));
}

TEST_F(DeterminismTest, VectorAggregation) {
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < ages_.values().size(); ++i) {
    rows.push_back({ages_.values()[i], 127.0 - ages_.values()[i]});
  }
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VectorAggregationConfig config;
  Rng a(23);
  Rng b(23);
  EXPECT_EQ(EstimateVectorMean(rows, codec, config, a).means,
            EstimateVectorMean(rows, codec, config, b).means);
}

TEST_F(DeterminismTest, FederatedQueryWithFaultPlan) {
  // A seeded FaultPlan plus a fixed protocol seed must reproduce the whole
  // faulted run byte-for-byte: identical estimate AND identical FaultStats
  // (every injection and reaction counter), across both rounds.
  FaultRates rates;
  rates.mid_round_dropout = 0.1;
  rates.straggler = 0.05;
  rates.corrupt_message = 0.05;
  rates.truncate_message = 0.05;
  rates.round_boundary_crash = 0.05;
  const FaultPlan plan(97, rates);
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  FederatedQueryConfig config;
  config.adaptive.bits = 7;
  config.cohort.max_cohort_size = 3000;
  config.fault_plan = &plan;
  config.fault_policy.report_deadline_minutes = 30.0;
  config.fault_policy.max_backfill_rounds = 2;
  Rng a(31);
  Rng b(31);
  Rng c(32);
  const FederatedQueryResult first =
      RunFederatedMeanQuery(clients, codec, config, nullptr, a);
  const FederatedQueryResult second =
      RunFederatedMeanQuery(clients, codec, config, nullptr, b);
  const FederatedQueryResult other =
      RunFederatedMeanQuery(clients, codec, config, nullptr, c);
  EXPECT_DOUBLE_EQ(first.estimate, second.estimate);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.round1.faults, second.round1.faults);
  EXPECT_EQ(first.round2.faults, second.round2.faults);
  EXPECT_EQ(first.round1.responded, second.round1.responded);
  EXPECT_EQ(first.round2.responded, second.round2.responded);
  EXPECT_EQ(first.used_static_fallback, second.used_static_fallback);
  // A different protocol seed shuffles a different cohort: the injected
  // fault set (keyed on client ids) lands differently.
  EXPECT_NE(first.estimate, other.estimate);
}

TEST_F(DeterminismTest, DurableCampaignReproducesAcrossRunsAndCrashes) {
  // The durable runner inherits the seed contract: two state directories
  // driven by the same seed produce identical histories and identical
  // meter ledgers — and so does a run that is cut off mid-campaign and
  // recovered from its journal.
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const std::vector<const std::vector<Client>*> populations = {&clients};
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  CampaignQuery query;
  query.name = "ages";
  query.value_id = 0;
  query.query.adaptive.bits = 7;
  query.query.cohort.max_cohort_size = 500;
  MeterPolicy policy;
  policy.max_bits_per_value = 2;

  struct RunResult {
    std::vector<CampaignTickResult> history;
    std::vector<uint8_t> meter;
    bool recovered = false;
  };
  auto run = [&](const std::string& dir, int64_t ticks) {
    DurableCampaignOptions options;
    options.state_dir = dir;
    options.seed = 321;
    options.fsync = false;
    DurableCampaignRunner runner({query}, policy, options);
    std::string error;
    EXPECT_TRUE(runner.Open(&error)) << error;
    for (int64_t tick = 0; tick < ticks; ++tick) {
      runner.RunTick(tick, populations, codecs);
    }
    RunResult result;
    result.history = runner.campaign().history();
    runner.meter().EncodeTo(&result.meter);
    result.recovered = runner.recovery_info().recovered;
    return result;
  };
  const std::string base = ::testing::TempDir() + "/determinism";
  std::filesystem::remove_all(base);
  const RunResult first = run(base + "/a", 2);
  const RunResult second = run(base + "/b", 2);
  EXPECT_EQ(first.history, second.history);
  EXPECT_EQ(first.meter, second.meter);

  // Crash run c halfway through its journal, then recover and finish.
  run(base + "/c", 2);
  JournalReadResult journal;
  std::string error;
  ASSERT_TRUE(
      ReadJournal(base + "/c/journal.wal", 0, &journal, &error)) << error;
  ASSERT_TRUE(TruncateJournalToRecords(base + "/c/journal.wal",
                                       journal.records.size() / 2, &error))
      << error;

  const RunResult recovered = run(base + "/c", 2);
  EXPECT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.history, first.history);
  EXPECT_EQ(recovered.meter, first.meter);
  std::filesystem::remove_all(base);
}

TEST_F(DeterminismTest, ResilientQueryReproducesTheRecoverySchedule) {
  // With the resilience layer armed (retries, hedging under a finite
  // budget, breaker) the seed contract extends to the recovery schedule:
  // identical seeds reproduce the estimate AND every RetryStats counter,
  // backoff minutes included. The backoff jitter is keyed on the resilience
  // seed alone, so changing just that seed re-times the retries without
  // touching the protocol stream.
  FaultRates rates;
  rates.mid_round_dropout = 0.15;
  rates.straggler = 0.1;
  rates.corrupt_message = 0.05;
  const FaultPlan plan(97, rates);
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  FederatedQueryConfig config;
  config.adaptive.bits = 7;
  config.cohort.max_cohort_size = 3000;
  config.fault_plan = &plan;
  config.fault_policy.report_deadline_minutes = 30.0;
  config.resilience.seed = 55;
  config.resilience.retry.max_retries_per_client = 3;
  config.resilience.hedge.enabled = true;

  Rng a(31);
  Rng b(31);
  Rng c(32);
  const FederatedQueryResult first =
      RunFederatedMeanQuery(clients, codec, config, nullptr, a);
  const FederatedQueryResult second =
      RunFederatedMeanQuery(clients, codec, config, nullptr, b);
  EXPECT_DOUBLE_EQ(first.estimate, second.estimate);
  EXPECT_EQ(first.retry, second.retry);
  EXPECT_EQ(first.round1.retry, second.round1.retry);
  EXPECT_EQ(first.round2.retry, second.round2.retry);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_GT(first.retry.RecoveredTotal(), 0);

  const FederatedQueryResult other =
      RunFederatedMeanQuery(clients, codec, config, nullptr, c);
  EXPECT_NE(first.estimate, other.estimate);

  FederatedQueryConfig retimed = config;
  retimed.resilience.seed = 56;
  Rng d(31);
  const FederatedQueryResult rescheduled =
      RunFederatedMeanQuery(clients, codec, retimed, nullptr, d);
  EXPECT_NE(rescheduled.retry.backoff_minutes, first.retry.backoff_minutes);

  // And the off switch still reproduces the schedule-free baseline.
  FederatedQueryConfig off = config;
  off.resilience = ResilienceConfig{};
  Rng e(31);
  const FederatedQueryResult disabled =
      RunFederatedMeanQuery(clients, codec, off, nullptr, e);
  EXPECT_EQ(disabled.retry, RetryStats{});
}

TEST_F(DeterminismTest, ResilientDurableCampaignReproducesAcrossCrashes) {
  // The crash-recovery determinism contract with every resilience
  // mechanism on: a recovered run converges on the history, ledger, AND
  // the exact journal — the replayed retry/hedge/breaker schedule — of an
  // uninterrupted run.
  FaultRates rates;
  rates.mid_round_dropout = 0.15;
  rates.straggler = 0.1;
  static const FaultPlan plan(59, rates);
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const std::vector<const std::vector<Client>*> populations = {&clients};
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  CampaignQuery query;
  query.name = "ages";
  query.value_id = 0;
  query.query.adaptive.bits = 7;
  query.query.cohort.max_cohort_size = 400;
  query.query.fault_plan = &plan;
  query.query.fault_policy.report_deadline_minutes = 30.0;
  MeterPolicy policy;
  policy.max_bits_per_value = 2;
  ResilienceConfig resilience;
  resilience.seed = 91;
  resilience.retry.max_retries_per_client = 2;
  resilience.hedge.enabled = true;
  resilience.breaker.consecutive_failures_to_open = 2;
  resilience.breaker.cooldown_rounds = 2;

  struct RunResult {
    std::vector<CampaignTickResult> history;
    std::vector<uint8_t> meter;
    std::vector<JournalRecord> journal;
    bool recovered = false;
  };
  auto run = [&](const std::string& dir, int64_t ticks) {
    DurableCampaignOptions options;
    options.state_dir = dir;
    options.seed = 654;
    options.fsync = false;
    DurableCampaignRunner runner({query}, policy, options, resilience);
    std::string error;
    EXPECT_TRUE(runner.Open(&error)) << error;
    for (int64_t tick = 0; tick < ticks; ++tick) {
      runner.RunTick(tick, populations, codecs);
    }
    RunResult result;
    result.history = runner.campaign().history();
    runner.meter().EncodeTo(&result.meter);
    result.recovered = runner.recovery_info().recovered;
    JournalReadResult journal;
    EXPECT_TRUE(ReadJournal(dir + "/journal.wal", 0, &journal, &error))
        << error;
    result.journal = std::move(journal.records);
    return result;
  };
  const std::string base = ::testing::TempDir() + "/determinism_res";
  std::filesystem::remove_all(base);
  const RunResult first = run(base + "/a", 2);
  const RunResult second = run(base + "/b", 2);
  EXPECT_EQ(first.history, second.history);
  EXPECT_EQ(first.meter, second.meter);

  // The run actually journaled resilience decisions.
  int64_t resilience_records = 0;
  for (const JournalRecord& record : first.journal) {
    if (record.type == JournalRecordType::kResilienceEvent) {
      ++resilience_records;
    }
  }
  EXPECT_GT(resilience_records, 0);

  // Crash run c halfway through its journal, recover, and finish.
  run(base + "/c", 2);
  JournalReadResult journal;
  std::string error;
  ASSERT_TRUE(
      ReadJournal(base + "/c/journal.wal", 0, &journal, &error)) << error;
  ASSERT_TRUE(TruncateJournalToRecords(base + "/c/journal.wal",
                                       journal.records.size() / 2, &error))
      << error;

  const RunResult recovered = run(base + "/c", 2);
  EXPECT_TRUE(recovered.recovered);
  EXPECT_EQ(recovered.history, first.history);
  EXPECT_EQ(recovered.meter, first.meter);
  ASSERT_EQ(recovered.journal.size(), first.journal.size());
  for (size_t i = 0; i < first.journal.size(); ++i) {
    EXPECT_EQ(recovered.journal[i].type, first.journal[i].type) << i;
    EXPECT_EQ(recovered.journal[i].payload, first.journal[i].payload) << i;
  }
  std::filesystem::remove_all(base);
}

TEST_F(DeterminismTest, MetricsSnapshotReproducesAcrossRunsAndCrashes) {
  // The deterministic metrics snapshot (kStable instruments only,
  // canonical formatting) is part of the seed contract: two clean runs of
  // the same seeded campaign, and a run crashed mid-journal and recovered,
  // must all export byte-identical snapshots. Journal-only mode: a
  // snapshot would truncate the journal and with it the pre-crash round
  // records the recovered export re-applies.
  FaultRates rates;
  rates.mid_round_dropout = 0.15;
  rates.straggler = 0.1;
  static const FaultPlan plan(59, rates);
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const std::vector<const std::vector<Client>*> populations = {&clients};
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  CampaignQuery query;
  query.name = "ages";
  query.value_id = 0;
  query.query.adaptive.bits = 7;
  query.query.cohort.max_cohort_size = 400;
  query.query.fault_plan = &plan;
  query.query.fault_policy.report_deadline_minutes = 30.0;
  MeterPolicy policy;
  policy.max_bits_per_value = 2;
  ResilienceConfig resilience;
  resilience.seed = 91;
  resilience.retry.max_retries_per_client = 2;
  resilience.hedge.enabled = true;
  resilience.breaker.consecutive_failures_to_open = 2;
  resilience.breaker.cooldown_rounds = 2;

  auto run = [&](const std::string& dir, int64_t ticks) {
    obs::Registry::Default().Reset();
    obs::SetEnabled(true);
    DurableCampaignOptions options;
    options.state_dir = dir;
    options.seed = 654;
    options.fsync = false;
    DurableCampaignRunner runner({query}, policy, options, resilience);
    std::string error;
    EXPECT_TRUE(runner.Open(&error)) << error;
    for (int64_t tick = 0; tick < ticks; ++tick) {
      runner.RunTick(tick, populations, codecs);
    }
    obs::SetEnabled(false);
    return obs::DeterministicMetricsSnapshot();
  };
  const std::string base = ::testing::TempDir() + "/determinism_obs";
  std::filesystem::remove_all(base);
  const std::string first = run(base + "/a", 2);
  const std::string second = run(base + "/b", 2);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("counter bitpush_campaign_ticks_total 2"),
            std::string::npos);
  EXPECT_EQ(first.find("bitpush_campaign_ticks_total 0"),
            std::string::npos);

  // Crash run c halfway through its journal, recover, and re-export.
  run(base + "/c", 2);
  JournalReadResult journal;
  std::string error;
  ASSERT_TRUE(
      ReadJournal(base + "/c/journal.wal", 0, &journal, &error)) << error;
  ASSERT_TRUE(TruncateJournalToRecords(base + "/c/journal.wal",
                                       journal.records.size() / 2, &error))
      << error;

  const std::string recovered = run(base + "/c", 2);
  EXPECT_EQ(recovered, first);
  std::filesystem::remove_all(base);
}

TEST_F(DeterminismTest, StableEventsAndAlertTimelineReproduceAcrossCrashes) {
  // The flight recorder's stable stream and the fired-alert timeline join
  // the seed contract: two clean runs of the same seeded campaign, and a
  // run crashed mid-journal and recovered, must all produce byte-identical
  // DeterministicEventsSnapshot and AlertTimelineText artifacts. The query
  // runs on a two-tick cadence so the burn-rate rule exercises its full
  // lifecycle — fires on a spend tick, resolves on the idle tick after it.
  FaultRates rates;
  rates.mid_round_dropout = 0.15;
  rates.straggler = 0.1;
  static const FaultPlan plan(59, rates);
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const std::vector<const std::vector<Client>*> populations = {&clients};
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  CampaignQuery query;
  query.name = "ages";
  query.value_id = 0;
  query.cadence_ticks = 2;
  query.query.adaptive.bits = 7;
  query.query.cohort.max_cohort_size = 400;
  query.query.fault_plan = &plan;
  query.query.fault_policy.report_deadline_minutes = 30.0;
  MeterPolicy policy;
  policy.max_bits_per_value = 2;
  ResilienceConfig resilience;
  resilience.seed = 91;
  resilience.retry.max_retries_per_client = 2;
  resilience.hedge.enabled = true;
  resilience.breaker.consecutive_failures_to_open = 2;
  resilience.breaker.cooldown_rounds = 2;

  constexpr int64_t kTicks = 4;
  // Returns {stable events snapshot, alert timeline}.
  auto run = [&](const std::string& dir) {
    obs::EventRecorder::Default().Reset();
    obs::SetEnabled(true);
    DurableCampaignOptions options;
    options.state_dir = dir;
    options.seed = 654;
    options.fsync = false;
    DurableCampaignRunner runner({query}, policy, options, resilience);
    std::string error;
    EXPECT_TRUE(runner.Open(&error)) << error;
    for (int64_t tick = 0; tick < kTicks; ++tick) {
      runner.RunTick(tick, populations, codecs);
    }
    // Evaluate the burn-rate rule over the recovery-stable per-tick meter
    // trajectory. The budget is twice the first tick's spend, so the spend
    // ticks (0, 2) project exhaustion inside the horizon and fire, and the
    // idle cadence ticks (1, 3) resolve.
    obs::AlertEngine engine;
    const auto& samples = runner.meter_by_tick();
    EXPECT_EQ(samples.size(), static_cast<size_t>(kTicks));
    EXPECT_GT(samples[0].bits_spent, 0);
    const int64_t budget = samples[0].bits_spent * 2;
    for (int64_t tick = 0; tick < kTicks; ++tick) {
      obs::CampaignAlertInputs inputs;
      inputs.tick = tick;
      inputs.bits_spent = samples[static_cast<size_t>(tick)].bits_spent;
      inputs.denied_charges =
          samples[static_cast<size_t>(tick)].denied_charges;
      inputs.bits_budget = budget;
      engine.EvaluateCampaignTick(inputs);
    }
    obs::SetEnabled(false);
    return std::make_pair(obs::DeterministicEventsSnapshot(),
                          AlertTimelineText(engine));
  };
  const std::string base = ::testing::TempDir() + "/determinism_events";
  std::filesystem::remove_all(base);
  const auto first = run(base + "/a");
  const auto second = run(base + "/b");
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);

  // The artifacts are non-trivial: stable round/meter events were emitted,
  // and the burn-rate alert both fired and resolved.
  EXPECT_NE(first.first.find("round_outcome"), std::string::npos)
      << first.first;
  EXPECT_NE(first.first.find("meter_charge"), std::string::npos)
      << first.first;
  EXPECT_NE(first.second.find("tick=0 fired privacy_burn_rate"),
            std::string::npos)
      << first.second;
  EXPECT_NE(first.second.find("tick=1 resolved privacy_burn_rate"),
            std::string::npos)
      << first.second;

  // Crash run c halfway through its journal, recover, and re-derive both
  // artifacts — byte-identical to the uninterrupted run.
  run(base + "/c");
  JournalReadResult journal;
  std::string error;
  ASSERT_TRUE(ReadJournal(base + "/c/journal.wal", 0, &journal, &error))
      << error;
  ASSERT_TRUE(TruncateJournalToRecords(base + "/c/journal.wal",
                                       journal.records.size() / 2, &error))
      << error;
  const auto recovered = run(base + "/c");
  EXPECT_EQ(recovered.first, first.first);
  EXPECT_EQ(recovered.second, first.second);
  std::filesystem::remove_all(base);
}

TEST_F(DeterminismTest, ShardedTraceStitchesMergeAndShardSpans) {
  // Cross-shard trace propagation: every per-shard collect span must be
  // parented under the merge tier's tick span via the context carried in
  // ShardTickFrame, for shard counts 2, 4, and 8, and the Chrome trace
  // export must render the hierarchy ids.
  constexpr int64_t kTicks = 2;
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const std::vector<const std::vector<Client>*> populations = {&clients};
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  CampaignQuery query;
  query.name = "ages";
  query.query.adaptive.bits = 7;
  query.query.adaptive.epsilon = 1.0;
  MeterPolicy policy;
  policy.max_bits_per_value = kTicks + 1;

  for (const int64_t shards : {int64_t{2}, int64_t{4}, int64_t{8}}) {
    obs::Tracer::Default().Reset();
    obs::SetTracingEnabled(true);
    ShardedCampaignOptions options;
    options.shards = shards;
    options.seed = 97;
    ShardedCampaignRunner runner({query}, policy, options);
    runner.Open(populations, codecs);
    for (int64_t tick = 0; tick < kTicks; ++tick) {
      MergedTickResult out;
      std::string error;
      EXPECT_TRUE(runner.RunTick(tick, &out, &error)) << error;
    }
    obs::SetTracingEnabled(false);

    const std::vector<obs::SpanRecord> spans =
        obs::Tracer::Default().Snapshot();
    std::map<int64_t, int64_t> merge_trace_by_span;
    for (const obs::SpanRecord& span : spans) {
      if (span.name == "merge.tick") {
        EXPECT_EQ(span.parent_span_id, 0) << "merge.tick must be a root";
        merge_trace_by_span[span.span_id] = span.trace_id;
      }
    }
    EXPECT_EQ(merge_trace_by_span.size(), static_cast<size_t>(kTicks))
        << "one merge.tick root per tick at shards=" << shards;
    int64_t collect_spans = 0;
    for (const obs::SpanRecord& span : spans) {
      if (span.name != "shard.collect") continue;
      ++collect_spans;
      const auto parent = merge_trace_by_span.find(span.parent_span_id);
      ASSERT_NE(parent, merge_trace_by_span.end())
          << "shard.collect span not parented under a merge.tick span";
      EXPECT_EQ(span.trace_id, parent->second)
          << "collect span did not adopt the merge tick's trace id";
    }
    EXPECT_EQ(collect_spans, shards * kTicks) << "shards=" << shards;

    const std::string json = obs::ChromeTraceJson();
    std::string error;
    EXPECT_TRUE(obs::JsonIsWellFormed(json, &error)) << error;
    EXPECT_NE(json.find("\"parent\""), std::string::npos)
        << "Chrome export dropped the hierarchy ids";
  }
}

TEST_F(DeterminismTest, ShardedCampaignMatchesSingleCoordinator) {
  // The shard-out determinism contract (docs/SHARDING.md): a fault-free
  // N-shard run — per-shard campaigns, wire frames, kernel tally merge —
  // is bit-identical to the inline single-coordinator reference, and a
  // different root seed actually changes the randomness.
  constexpr int64_t kTicks = 2;
  constexpr int64_t kShards = 4;
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), ClientConfig{});
  const std::vector<const std::vector<Client>*> populations = {&clients};
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  CampaignQuery query;
  query.name = "ages";
  query.query.adaptive.bits = 7;
  query.query.adaptive.epsilon = 1.0;
  MeterPolicy policy;
  policy.max_bits_per_value = kTicks + 1;

  const auto run_sharded = [&](uint64_t seed) {
    ShardedCampaignOptions options;
    options.shards = kShards;
    options.seed = seed;
    ShardedCampaignRunner runner({query}, policy, options);
    runner.Open(populations, codecs);
    for (int64_t tick = 0; tick < kTicks; ++tick) {
      MergedTickResult out;
      std::string error;
      EXPECT_TRUE(runner.RunTick(tick, &out, &error)) << error;
    }
    return runner.history();
  };

  const std::vector<MergedTickResult> sharded = run_sharded(97);
  const ReferenceCampaignResult reference = RunSingleCoordinatorReference(
      {query}, policy, kShards, 97, populations, codecs, kTicks);
  ASSERT_EQ(sharded.size(), reference.ticks.size());
  for (size_t t = 0; t < sharded.size(); ++t) {
    EXPECT_EQ(sharded[t], reference.ticks[t]) << "tick " << t;
  }

  const std::vector<MergedTickResult> reseeded = run_sharded(98);
  EXPECT_NE(reseeded[0].queries[0].estimate,
            sharded[0].queries[0].estimate)
      << "root seed is not reaching the shard campaigns";
}

TEST_F(DeterminismTest, FederatedQueryWithDropout) {
  ClientConfig flaky;
  flaky.dropout_probability = 0.3;
  const std::vector<Client> clients =
      MakePopulation(ages_.values(), flaky);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  FederatedQueryConfig config;
  config.adaptive.bits = 7;
  Rng a(29);
  Rng b(29);
  const FederatedQueryResult first =
      RunFederatedMeanQuery(clients, codec, config, nullptr, a);
  const FederatedQueryResult second =
      RunFederatedMeanQuery(clients, codec, config, nullptr, b);
  EXPECT_DOUBLE_EQ(first.estimate, second.estimate);
  EXPECT_EQ(first.round1.responded, second.round1.responded);
}

}  // namespace
}  // namespace bitpush
