#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/vector_aggregation.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

// n clients, d dimensions, each coordinate Normal(center[d], stddev),
// clamped to the codec range.
std::vector<std::vector<double>> MakeRows(int64_t n,
                                          const std::vector<double>& centers,
                                          double stddev,
                                          const FixedPointCodec& codec,
                                          Rng& rng) {
  std::vector<std::vector<double>> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(centers.size());
    for (const double center : centers) {
      row.push_back(std::clamp(SampleNormal(rng, center, stddev),
                               codec.low(), codec.high()));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<double> ExactMeans(const std::vector<std::vector<double>>& rows) {
  std::vector<double> means(rows.front().size(), 0.0);
  for (const std::vector<double>& row : rows) {
    for (size_t d = 0; d < row.size(); ++d) means[d] += row[d];
  }
  for (double& m : means) m /= static_cast<double>(rows.size());
  return means;
}

TEST(VectorAggregationTest, RecoversPerDimensionMeans) {
  Rng rng(1);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<double> centers = {30.0, 120.0, 200.0};
  const std::vector<std::vector<double>> rows =
      MakeRows(60000, centers, 10.0, codec, rng);
  const std::vector<double> exact = ExactMeans(rows);

  VectorAggregationConfig config;
  const VectorAggregationResult result =
      EstimateVectorMean(rows, codec, config, rng);
  ASSERT_EQ(result.means.size(), 3u);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(result.means[d], exact[d], 0.1 * exact[d]) << "dim " << d;
  }
}

TEST(VectorAggregationTest, OneBitPerClientTotal) {
  Rng rng(2);
  const FixedPointCodec codec = FixedPointCodec::Integer(6);
  const std::vector<std::vector<double>> rows =
      MakeRows(5000, {10.0, 40.0}, 5.0, codec, rng);
  VectorAggregationConfig config;
  const VectorAggregationResult result =
      EstimateVectorMean(rows, codec, config, rng);
  // The whole d-dimensional vector costs each client exactly one bit.
  EXPECT_EQ(result.bits_disclosed, 5000);
}

TEST(VectorAggregationTest, SignedDomainViaOffsetCodec) {
  // Gradient-style data: coordinates in [-1, 1] with different signs.
  Rng rng(3);
  const FixedPointCodec codec(12, -1.0, 1.0);
  std::vector<std::vector<double>> rows;
  for (int64_t i = 0; i < 40000; ++i) {
    rows.push_back({std::clamp(SampleNormal(rng, 0.4, 0.2), -1.0, 1.0),
                    std::clamp(SampleNormal(rng, -0.3, 0.2), -1.0, 1.0)});
  }
  const std::vector<double> exact = ExactMeans(rows);
  VectorAggregationConfig config;
  const VectorAggregationResult result =
      EstimateVectorMean(rows, codec, config, rng);
  EXPECT_NEAR(result.means[0], exact[0], 0.05);
  EXPECT_NEAR(result.means[1], exact[1], 0.05);
  EXPECT_GT(result.means[0], 0.0);
  EXPECT_LT(result.means[1], 0.0);
}

TEST(VectorAggregationTest, UnbiasedAcrossRepetitions) {
  Rng rng(4);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<std::vector<double>> rows =
      MakeRows(4000, {25.0, 90.0}, 8.0, codec, rng);
  const std::vector<double> exact = ExactMeans(rows);
  VectorAggregationConfig config;
  for (size_t d = 0; d < 2; ++d) {
    const ErrorStats stats =
        RunRepetitions(200, 5, exact[d], [&](Rng& run) {
          return EstimateVectorMean(rows, codec, config, run).means[d];
        });
    const double stderr_mean =
        stats.rmse / std::sqrt(static_cast<double>(stats.repetitions));
    EXPECT_LT(std::abs(stats.bias), 4.0 * stderr_mean + 1e-9) << "dim "
                                                              << d;
  }
}

TEST(VectorAggregationTest, AdaptiveBeatsProbeOnlyAtInflatedWidth) {
  // Coordinates use ~6 bits; at 14-bit width the adaptive pass should
  // discard the vacuous cells and win.
  Rng rng(6);
  const FixedPointCodec codec = FixedPointCodec::Integer(14);
  const std::vector<std::vector<double>> rows =
      MakeRows(20000, {20.0, 50.0}, 6.0, codec, rng);
  const std::vector<double> exact = ExactMeans(rows);

  auto nrmse_with = [&](bool adaptive) {
    VectorAggregationConfig config;
    config.adaptive = adaptive;
    double total = 0.0;
    for (size_t d = 0; d < 2; ++d) {
      total += RunRepetitions(60, 7, exact[d], [&](Rng& run) {
                 return EstimateVectorMean(rows, codec, config, run)
                     .means[d];
               })
                   .nrmse;
    }
    return total;
  };
  EXPECT_LT(nrmse_with(true), 0.7 * nrmse_with(false));
}

TEST(VectorAggregationTest, DpNoiseUnbiased) {
  Rng rng(8);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<std::vector<double>> rows =
      MakeRows(30000, {40.0, 70.0}, 5.0, codec, rng);
  const std::vector<double> exact = ExactMeans(rows);
  VectorAggregationConfig config;
  config.epsilon = 1.0;
  const ErrorStats stats = RunRepetitions(100, 9, exact[0], [&](Rng& run) {
    return EstimateVectorMean(rows, codec, config, run).means[0];
  });
  const double stderr_mean =
      stats.rmse / std::sqrt(static_cast<double>(stats.repetitions));
  EXPECT_LT(std::abs(stats.bias), 4.0 * stderr_mean + 1e-9);
}

TEST(VectorAggregationTest, SingleDimensionMatchesScalarProtocolShape) {
  Rng rng(10);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  std::vector<std::vector<double>> rows;
  for (int64_t i = 0; i < 10000; ++i) {
    rows.push_back({static_cast<double>(rng.NextBelow(100))});
  }
  const std::vector<double> exact = ExactMeans(rows);
  VectorAggregationConfig config;
  const VectorAggregationResult result =
      EstimateVectorMean(rows, codec, config, rng);
  EXPECT_NEAR(result.means[0], exact[0], 0.1 * exact[0]);
}

TEST(VectorAggregationDeathTest, InvalidInputsAbort) {
  Rng rng(11);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  VectorAggregationConfig config;
  EXPECT_DEATH(EstimateVectorMean({{1.0}}, codec, config, rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateVectorMean({{1.0, 2.0}, {1.0}}, codec, config, rng),
               "ragged client vectors");
}

}  // namespace
}  // namespace bitpush
