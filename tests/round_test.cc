#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/census.h"
#include "federated/round.h"
#include "rng/rng.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

FederatedQueryConfig AgesQueryConfig() {
  FederatedQueryConfig config;
  config.adaptive.bits = 7;
  return config;
}

TEST(FederatedQueryTest, RecoversCensusMean) {
  Rng data_rng(1);
  const Dataset ages = CensusAges(20000, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(2);
  const FederatedQueryResult result = RunFederatedMeanQuery(
      clients, codec, AgesQueryConfig(), nullptr, rng);
  EXPECT_FALSE(result.aborted);
  EXPECT_NEAR(result.estimate, ages.truth().mean, 0.1 * ages.truth().mean);
}

TEST(FederatedQueryTest, TwoRoundsSplitByDelta) {
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(900, 30.0), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(3);
  const FederatedQueryResult result = RunFederatedMeanQuery(
      clients, codec, AgesQueryConfig(), nullptr, rng);
  EXPECT_EQ(result.round1.contacted, 300);
  EXPECT_EQ(result.round2.contacted, 600);
  EXPECT_EQ(result.comm.requests_sent, 900);
}

TEST(FederatedQueryTest, AbortsBelowMinimumCohort) {
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(50, 1.0), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  FederatedQueryConfig config = AgesQueryConfig();
  config.cohort.min_cohort_size = 100;
  Rng rng(4);
  const FederatedQueryResult result =
      RunFederatedMeanQuery(clients, codec, config, nullptr, rng);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.comm.requests_sent, 0);
}

TEST(FederatedQueryTest, SurvivesHeavyDropout) {
  // Section 4.3: "The algorithm succeeds even with a small subset of
  // devices responding."
  Rng data_rng(5);
  const Dataset ages = CensusAges(30000, data_rng);
  ClientConfig flaky;
  flaky.dropout_probability = 0.6;
  const std::vector<Client> clients = MakePopulation(ages.values(), flaky);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(6);
  const FederatedQueryResult result = RunFederatedMeanQuery(
      clients, codec, AgesQueryConfig(), nullptr, rng);
  EXPECT_FALSE(result.aborted);
  EXPECT_NEAR(result.round1.dropout_rate, 0.6, 0.05);
  EXPECT_NEAR(result.estimate, ages.truth().mean, 0.15 * ages.truth().mean);
}

TEST(FederatedQueryTest, DropoutAutoAdjustmentRebalances) {
  Rng data_rng(7);
  const Dataset ages = CensusAges(20000, data_rng);
  ClientConfig flaky;
  flaky.dropout_probability = 0.5;
  const std::vector<Client> clients = MakePopulation(ages.values(), flaky);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  FederatedQueryConfig config = AgesQueryConfig();
  config.auto_adjust_dropout = true;
  Rng rng(8);
  const FederatedQueryResult result =
      RunFederatedMeanQuery(clients, codec, config, nullptr, rng);
  EXPECT_FALSE(result.aborted);
  EXPECT_NEAR(result.estimate, ages.truth().mean, 0.15 * ages.truth().mean);
  double total = 0.0;
  for (const double p : result.round2_probabilities) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FederatedQueryTest, MeterEnforcesOneBitPerClient) {
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(500, 20.0), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  PrivacyMeter meter{MeterPolicy{}};
  Rng rng(9);
  const FederatedQueryResult result = RunFederatedMeanQuery(
      clients, codec, AgesQueryConfig(), &meter, rng);
  EXPECT_FALSE(result.aborted);
  // Each client is in exactly one round, so exactly one bit each.
  EXPECT_EQ(meter.total_bits(), 500);
  EXPECT_EQ(meter.denied_charges(), 0);
  for (int64_t id = 0; id < 500; ++id) {
    EXPECT_LE(meter.ClientBits(id), 1);
  }
}

TEST(FederatedQueryTest, SecureAggregationPathMatchesAccuracy) {
  Rng data_rng(10);
  const Dataset ages = CensusAges(10000, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  FederatedQueryConfig config = AgesQueryConfig();
  config.use_secure_aggregation = true;
  Rng rng(11);
  const FederatedQueryResult result =
      RunFederatedMeanQuery(clients, codec, config, nullptr, rng);
  EXPECT_FALSE(result.aborted);
  EXPECT_NEAR(result.estimate, ages.truth().mean, 0.1 * ages.truth().mean);
}

TEST(FederatedQueryTest, DpQueryWithSquashing) {
  Rng data_rng(12);
  const Dataset ages = CensusAges(50000, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(16);
  FederatedQueryConfig config;
  config.adaptive.bits = 16;
  config.adaptive.epsilon = 2.0;
  config.adaptive.squash = SquashPolicy::Absolute(0.05);
  Rng rng(13);
  const FederatedQueryResult result =
      RunFederatedMeanQuery(clients, codec, config, nullptr, rng);
  EXPECT_FALSE(result.aborted);
  EXPECT_NEAR(result.estimate, ages.truth().mean, 0.5 * ages.truth().mean);
  // The vacuous bits 8+ should be squashed out of the final estimate.
  int kept_high_bits = 0;
  for (size_t j = 8; j < result.kept.size(); ++j) {
    kept_high_bits += result.kept[j] ? 1 : 0;
  }
  EXPECT_LE(kept_high_bits, 2);
}

TEST(FederatedQueryTest, MultiValueClientsAggregateSampledValue) {
  // Clients hold several readings; kSampleOne draws one per query.
  Rng data_rng(14);
  std::vector<Client> clients;
  ClientConfig config;
  config.value_policy = ValuePolicy::kSampleOne;
  for (int64_t i = 0; i < 5000; ++i) {
    std::vector<double> readings;
    for (int k = 0; k < 5; ++k) {
      readings.push_back(30.0 + static_cast<double>(data_rng.NextBelow(10)));
    }
    clients.emplace_back(i, std::move(readings), config);
  }
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(15);
  const FederatedQueryResult result = RunFederatedMeanQuery(
      clients, codec, AgesQueryConfig(), nullptr, rng);
  EXPECT_NEAR(result.estimate, 34.5, 2.0);
}

TEST(FederatedQueryDeathTest, BitWidthMismatchAborts) {
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(10, 1.0), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  FederatedQueryConfig config;
  config.adaptive.bits = 7;
  Rng rng(16);
  EXPECT_DEATH(RunFederatedMeanQuery(clients, codec, config, nullptr, rng),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
