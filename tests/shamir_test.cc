#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "federated/shamir.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(FieldArithmeticTest, AddSubInverse) {
  EXPECT_EQ(FieldAdd(kShamirPrime - 1, 1), 0u);
  EXPECT_EQ(FieldSub(0, 1), kShamirPrime - 1);
  EXPECT_EQ(FieldAdd(5, 7), 12u);
  EXPECT_EQ(FieldSub(FieldAdd(123, 456), 456), 123u);
}

TEST(FieldArithmeticTest, MulMatchesSmallCases) {
  EXPECT_EQ(FieldMul(3, 4), 12u);
  EXPECT_EQ(FieldMul(kShamirPrime - 1, kShamirPrime - 1), 1u);  // (-1)^2
  EXPECT_EQ(FieldMul(0, 12345), 0u);
}

TEST(FieldArithmeticTest, InverseIsMultiplicativeInverse) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t a = 1 + rng.NextBelow(kShamirPrime - 1);
    EXPECT_EQ(FieldMul(a, FieldInverse(a)), 1u);
  }
}

TEST(ShamirTest, ReconstructFromExactThreshold) {
  Rng rng(2);
  const uint64_t secret = 0xDEADBEEFCAFEULL;
  const std::vector<ShamirShare> shares =
      ShamirShareSecret(secret, 3, 7, rng);
  ASSERT_EQ(shares.size(), 7u);
  EXPECT_EQ(ShamirReconstruct({shares[0], shares[3], shares[6]}, 3),
            secret);
  EXPECT_EQ(ShamirReconstruct({shares[5], shares[1], shares[2]}, 3),
            secret);
}

TEST(ShamirTest, AnySubsetOfThresholdWorks) {
  Rng rng(3);
  const uint64_t secret = 424242;
  const std::vector<ShamirShare> shares =
      ShamirShareSecret(secret, 2, 5, rng);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      EXPECT_EQ(ShamirReconstruct({shares[i], shares[j]}, 2), secret);
    }
  }
}

TEST(ShamirTest, MoreThanThresholdAlsoWorks) {
  Rng rng(4);
  const uint64_t secret = 99;
  const std::vector<ShamirShare> shares =
      ShamirShareSecret(secret, 3, 6, rng);
  EXPECT_EQ(ShamirReconstruct(shares, 3), secret);
}

TEST(ShamirTest, BelowThresholdRevealsNothingDeterministic) {
  // With threshold 3, two shares are consistent with *any* secret: verify
  // that interpolating two shares as if threshold were 2 yields a wrong
  // value (overwhelmingly), i.e. shares don't leak the secret directly.
  Rng rng(5);
  const uint64_t secret = 31337;
  const std::vector<ShamirShare> shares =
      ShamirShareSecret(secret, 3, 5, rng);
  const uint64_t guess = ShamirReconstruct({shares[0], shares[1]}, 2);
  EXPECT_NE(guess, secret);
}

TEST(ShamirTest, ThresholdOneIsReplication) {
  Rng rng(6);
  const std::vector<ShamirShare> shares = ShamirShareSecret(77, 1, 4, rng);
  for (const ShamirShare& share : shares) {
    EXPECT_EQ(share.y, 77u);
    EXPECT_EQ(ShamirReconstruct({share}, 1), 77u);
  }
}

TEST(ShamirTest, SharesLookRandom) {
  Rng rng(7);
  const std::vector<ShamirShare> shares =
      ShamirShareSecret(0, 4, 8, rng);  // secret 0
  std::set<uint64_t> distinct;
  for (const ShamirShare& share : shares) distinct.insert(share.y);
  // Degree-3 polynomial with random coefficients: share values are not 0
  // and (overwhelmingly) all distinct.
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_FALSE(distinct.contains(0));
}

TEST(ShamirDeathTest, InvalidInputsAbort) {
  Rng rng(8);
  EXPECT_DEATH(ShamirShareSecret(kShamirPrime, 2, 3, rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(ShamirShareSecret(1, 0, 3, rng), "BITPUSH_CHECK failed");
  EXPECT_DEATH(ShamirShareSecret(1, 4, 3, rng), "BITPUSH_CHECK failed");
  const std::vector<ShamirShare> shares =
      ShamirShareSecret(5, 3, 5, rng);
  EXPECT_DEATH(ShamirReconstruct({shares[0], shares[1]}, 3),
               "not enough shares");
  EXPECT_DEATH(ShamirReconstruct({shares[0], shares[0], shares[1]}, 3),
               "duplicate evaluation points");
  EXPECT_DEATH(FieldInverse(0), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
