#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(SyntheticTest, NormalDataMomentsAndNonNegativity) {
  Rng rng(1);
  const Dataset data = NormalData(50000, 1000.0, 100.0, rng);
  EXPECT_EQ(data.size(), 50000);
  EXPECT_NEAR(data.truth().mean, 1000.0, 2.0);
  EXPECT_NEAR(data.truth().variance, 10000.0, 500.0);
  EXPECT_GE(data.truth().min, 0.0);
}

TEST(SyntheticTest, NormalDataClampsNegatives) {
  Rng rng(2);
  // Mean 0: half the mass would be negative; it must be clamped to 0.
  const Dataset data = NormalData(10000, 0.0, 50.0, rng);
  EXPECT_GE(data.truth().min, 0.0);
  EXPECT_GT(data.truth().mean, 0.0);
}

TEST(SyntheticTest, UniformDataSupport) {
  Rng rng(3);
  const Dataset data = UniformData(20000, 10.0, 30.0, rng);
  EXPECT_GE(data.truth().min, 10.0);
  EXPECT_LT(data.truth().max, 30.0);
  EXPECT_NEAR(data.truth().mean, 20.0, 0.2);
}

TEST(SyntheticTest, ExponentialDataMean) {
  Rng rng(4);
  const Dataset data = ExponentialData(50000, 25.0, rng);
  EXPECT_NEAR(data.truth().mean, 25.0, 0.5);
  EXPECT_GE(data.truth().min, 0.0);
}

TEST(SyntheticTest, ParetoDataIsHeavyTailed) {
  Rng rng(5);
  const Dataset data = ParetoData(50000, 1.0, 1.2, rng);
  EXPECT_GE(data.truth().min, 1.0);
  // Heavy tail: max dwarfs the mean.
  EXPECT_GT(data.truth().max, 50.0 * data.truth().mean);
}

TEST(SyntheticTest, LognormalDataIsPositive) {
  Rng rng(6);
  const Dataset data = LognormalData(10000, 3.0, 1.0, rng);
  EXPECT_GT(data.truth().min, 0.0);
  EXPECT_GT(data.truth().mean, 0.0);
}

TEST(SyntheticTest, ConstantDataHasZeroVariance) {
  const Dataset data = ConstantData(1000, 42.0);
  EXPECT_DOUBLE_EQ(data.truth().mean, 42.0);
  EXPECT_DOUBLE_EQ(data.truth().variance, 0.0);
  EXPECT_DOUBLE_EQ(data.truth().min, 42.0);
  EXPECT_DOUBLE_EQ(data.truth().max, 42.0);
}

TEST(SyntheticTest, BinaryWithOutliersShape) {
  Rng rng(7);
  const Dataset data = BinaryWithOutliersData(100000, 0.001, 1000.0, rng);
  // Most mass at 0/1.
  int64_t binary = 0;
  for (const double v : data.values()) {
    if (v == 0.0 || v == 1.0) ++binary;
  }
  EXPECT_GT(binary, 99500);
  // But the outliers dominate the max (Section 4.3's pathology).
  EXPECT_GT(data.truth().max, 1000.0);
}

TEST(SyntheticTest, NoOutliersWhenFractionZero) {
  Rng rng(8);
  const Dataset data = BinaryWithOutliersData(10000, 0.0, 1000.0, rng);
  EXPECT_LE(data.truth().max, 1.0);
}

TEST(SyntheticTest, MixtureDataIsBimodal) {
  Rng rng(11);
  const Dataset data = MixtureData(100000, 0.5, 30.0, 5.0, 170.0, 5.0, rng);
  EXPECT_NEAR(data.truth().mean, 100.0, 2.0);
  // Almost no mass near the mean: the hallmark of bimodality.
  int64_t near_mean = 0;
  for (const double v : data.values()) {
    if (v > 80.0 && v < 120.0) ++near_mean;
  }
  EXPECT_LT(near_mean, data.size() / 100);
}

TEST(SyntheticTest, MixtureWeightControlsComponents) {
  Rng rng(12);
  const Dataset data = MixtureData(50000, 0.9, 10.0, 1.0, 100.0, 1.0, rng);
  int64_t low = 0;
  for (const double v : data.values()) low += v < 50.0;
  EXPECT_NEAR(static_cast<double>(low) / static_cast<double>(data.size()),
              0.9, 0.02);
}

TEST(SyntheticTest, GeneratorsAreSeedDeterministic) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(NormalData(100, 10.0, 2.0, a).values(),
            NormalData(100, 10.0, 2.0, b).values());
}

TEST(SyntheticTest, ZeroSizeDatasets) {
  Rng rng(10);
  EXPECT_TRUE(NormalData(0, 1.0, 1.0, rng).empty());
  EXPECT_TRUE(ConstantData(0, 5.0).empty());
}

}  // namespace
}  // namespace bitpush
