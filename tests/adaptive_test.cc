#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/bit_probabilities.h"
#include "core/fixed_point.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

std::vector<uint64_t> EncodeAges(int64_t n, int bits, uint64_t seed) {
  Rng rng(seed);
  const Dataset ages = CensusAges(n, rng);
  return FixedPointCodec::Integer(bits).EncodeAll(ages.values());
}

double TrueMean(const std::vector<uint64_t>& codewords) {
  double sum = 0.0;
  for (const uint64_t c : codewords) sum += static_cast<double>(c);
  return sum / static_cast<double>(codewords.size());
}

TEST(AdaptiveTest, Round1UsesGeometricGammaProbe) {
  const std::vector<uint64_t> codewords = EncodeAges(1000, 7, 1);
  AdaptiveConfig config;
  config.bits = 7;
  config.gamma = 0.5;
  Rng rng(2);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  EXPECT_EQ(result.round1_probabilities, GeometricProbabilities(7, 0.5));
}

TEST(AdaptiveTest, SplitsPopulationByDelta) {
  const std::vector<uint64_t> codewords = EncodeAges(900, 7, 3);
  AdaptiveConfig config;
  config.bits = 7;
  config.delta = 1.0 / 3.0;
  Rng rng(4);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  EXPECT_EQ(result.round1.histogram.TotalReports(), 300);
  EXPECT_EQ(result.round2.histogram.TotalReports(), 600);
}

TEST(AdaptiveTest, EstimatorIsUnbiased) {
  const std::vector<uint64_t> codewords = EncodeAges(3000, 10, 5);
  const double truth = TrueMean(codewords);
  AdaptiveConfig config;
  config.bits = 10;
  const ErrorStats stats = RunRepetitions(400, 6, truth, [&](Rng& rng) {
    return RunAdaptiveBitPushing(codewords, config, rng).estimate_codeword;
  });
  const double stderr_mean =
      stats.rmse / std::sqrt(static_cast<double>(stats.repetitions));
  EXPECT_LT(std::abs(stats.bias), 4.0 * stderr_mean + 1e-9);
}

TEST(AdaptiveTest, VacuousHighBitsGetZeroRound2Probability) {
  // Ages fit 7 bits; at width 16, round 1 finds bits 7..15 to be all-zero
  // and round 2 must not sample them (beta_j = 0 -> p2_j = 0).
  const std::vector<uint64_t> codewords = EncodeAges(6000, 16, 7);
  AdaptiveConfig config;
  config.bits = 16;
  Rng rng(8);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  for (int j = 7; j < 16; ++j) {
    EXPECT_DOUBLE_EQ(result.round2_probabilities[static_cast<size_t>(j)],
                     0.0)
        << "bit " << j;
  }
  EXPECT_EQ(result.round2.histogram.total(15), 0);
}

TEST(AdaptiveTest, AdaptiveBeatsSingleRoundAtInflatedBitDepth) {
  // The headline Figure 1c/2c behaviour: with many vacuous high-order
  // bits, the adaptive approach discards them after round 1 while the
  // single-round allocation keeps wasting samples on them.
  const std::vector<uint64_t> codewords = EncodeAges(10000, 16, 9);
  const double truth = TrueMean(codewords);

  AdaptiveConfig adaptive_config;
  adaptive_config.bits = 16;
  const ErrorStats adaptive =
      RunRepetitions(60, 10, truth, [&](Rng& rng) {
        return RunAdaptiveBitPushing(codewords, adaptive_config, rng)
            .estimate_codeword;
      });

  BitPushingConfig single_config;
  single_config.probabilities = GeometricProbabilities(16, 1.0);
  const ErrorStats single = RunRepetitions(60, 10, truth, [&](Rng& rng) {
    return RunBasicBitPushing(codewords, single_config, rng)
        .estimate_codeword;
  });

  EXPECT_LT(adaptive.nrmse, 0.6 * single.nrmse);
}

TEST(AdaptiveTest, CachingImprovesOrMatchesNonCaching) {
  const std::vector<uint64_t> codewords = EncodeAges(4000, 7, 11);
  const double truth = TrueMean(codewords);
  auto nrmse_with_caching = [&](bool caching) {
    AdaptiveConfig config;
    config.bits = 7;
    config.caching = caching;
    return RunRepetitions(150, 12, truth, [&](Rng& rng) {
             return RunAdaptiveBitPushing(codewords, config, rng)
                 .estimate_codeword;
           })
        .nrmse;
  };
  // "The net effect will be to gain more reports for each bit index, which
  // should only improve the observed accuracy" — allow a small statistical
  // margin.
  EXPECT_LT(nrmse_with_caching(true), 1.15 * nrmse_with_caching(false));
}

TEST(AdaptiveTest, ConstantPopulationRecoveredExactly) {
  const std::vector<uint64_t> codewords(500, 37);
  AdaptiveConfig config;
  config.bits = 8;
  Rng rng(13);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  EXPECT_DOUBLE_EQ(result.estimate_codeword, 37.0);
}

TEST(AdaptiveTest, AllZeroPopulation) {
  // Every beta is zero after round 1: round 2 falls back to the geometric
  // allocation and the estimate is exactly 0.
  const std::vector<uint64_t> codewords(400, 0);
  AdaptiveConfig config;
  config.bits = 8;
  Rng rng(14);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  EXPECT_DOUBLE_EQ(result.estimate_codeword, 0.0);
  EXPECT_EQ(result.round2_probabilities, result.round1_probabilities);
}

TEST(AdaptiveTest, TinyPopulationStillRuns) {
  const std::vector<uint64_t> codewords = {5, 9};
  AdaptiveConfig config;
  config.bits = 4;
  Rng rng(15);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  EXPECT_EQ(result.round1.histogram.TotalReports(), 1);
  EXPECT_EQ(result.round2.histogram.TotalReports(), 1);
  EXPECT_GE(result.estimate_codeword, 0.0);
}

TEST(AdaptiveTest, SquashingDiscardsNoiseBitsUnderDp) {
  // Figure 4c: with DP noise and many vacuous bits, squashing recovers
  // accuracy by zeroing bits that carry only noise.
  Rng data_rng(16);
  const Dataset data = NormalData(20000, 500.0, 100.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(20);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  const double truth = TrueMean(codewords);

  auto nrmse_with_squash = [&](SquashPolicy policy) {
    AdaptiveConfig config;
    config.bits = 20;
    config.epsilon = 2.0;
    config.squash = policy;
    return RunRepetitions(40, 17, truth, [&](Rng& rng) {
             return RunAdaptiveBitPushing(codewords, config, rng)
                 .estimate_codeword;
           })
        .nrmse;
  };
  const double without = nrmse_with_squash(SquashPolicy::Off());
  const double with = nrmse_with_squash(SquashPolicy::Absolute(0.05));
  EXPECT_LT(with, 0.3 * without);
}

TEST(AdaptiveTest, SquashMaskExposedInResult) {
  const std::vector<uint64_t> codewords(3000, 6);  // bits 1 and 2 set
  AdaptiveConfig config;
  config.bits = 8;
  config.epsilon = 2.0;
  config.squash = SquashPolicy::Absolute(0.2);
  Rng rng(18);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);
  ASSERT_EQ(result.kept.size(), 8u);
  EXPECT_TRUE(result.kept[1]);
  EXPECT_TRUE(result.kept[2]);
  // High-order bits carry only DP noise around 0 and must be squashed.
  EXPECT_FALSE(result.kept[7]);
}

TEST(AdaptiveTest, VarianceBoundCoversEmpiricalVariance) {
  const std::vector<uint64_t> codewords = EncodeAges(5000, 7, 19);
  AdaptiveConfig config;
  config.bits = 7;
  Rng rng(20);
  const AdaptiveResult one = RunAdaptiveBitPushing(codewords, config, rng);
  EXPECT_GT(one.variance_bound, 0.0);
  const std::vector<double> estimates =
      CollectRepetitions(400, 21, [&](Rng& r) {
        return RunAdaptiveBitPushing(codewords, config, r)
            .estimate_codeword;
      });
  const double empirical = PopulationVariance(estimates);
  // The plug-in bound should be the right order of magnitude (within 3x).
  EXPECT_LT(empirical, 3.0 * one.variance_bound);
  EXPECT_GT(empirical, one.variance_bound / 3.0);
}

TEST(AdaptiveDeathTest, InvalidConfigAborts) {
  const std::vector<uint64_t> codewords(10, 1);
  Rng rng(1);
  AdaptiveConfig config;
  config.bits = 0;
  EXPECT_DEATH(RunAdaptiveBitPushing(codewords, config, rng),
               "BITPUSH_CHECK failed");
  config.bits = 4;
  config.delta = 0.0;
  EXPECT_DEATH(RunAdaptiveBitPushing(codewords, config, rng),
               "BITPUSH_CHECK failed");
  config.delta = 1.0;
  EXPECT_DEATH(RunAdaptiveBitPushing(codewords, config, rng),
               "BITPUSH_CHECK failed");
  config.delta = 0.5;
  EXPECT_DEATH(RunAdaptiveBitPushing({7}, config, rng),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
