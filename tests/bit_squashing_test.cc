#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_squashing.h"

namespace bitpush {
namespace {

TEST(SquashPolicyTest, Constructors) {
  EXPECT_FALSE(SquashPolicy::Off().enabled());
  const SquashPolicy absolute = SquashPolicy::Absolute(0.05);
  EXPECT_TRUE(absolute.enabled());
  EXPECT_EQ(absolute.mode, SquashPolicy::Mode::kAbsolute);
  EXPECT_DOUBLE_EQ(absolute.value, 0.05);
  const SquashPolicy multiple = SquashPolicy::NoiseMultiple(2.0);
  EXPECT_EQ(multiple.mode, SquashPolicy::Mode::kNoiseMultiple);
}

TEST(ComputeSquashMaskTest, OffKeepsEverythingIncludingUnobserved) {
  const std::vector<bool> keep = ComputeSquashMask(
      {0.0, -0.5, 2.0}, {0, 10, 10}, RandomizedResponse::Disabled(),
      SquashPolicy::Off());
  EXPECT_EQ(keep, (std::vector<bool>{true, true, true}));
}

TEST(ComputeSquashMaskTest, AbsoluteThreshold) {
  const std::vector<double> means = {0.5, 0.04, 0.06, -0.2};
  const std::vector<int64_t> counts = {10, 10, 10, 10};
  const std::vector<bool> keep =
      ComputeSquashMask(means, counts, RandomizedResponse::Disabled(),
                        SquashPolicy::Absolute(0.05));
  EXPECT_TRUE(keep[0]);
  EXPECT_FALSE(keep[1]);   // below threshold
  EXPECT_TRUE(keep[2]);    // above threshold
  EXPECT_FALSE(keep[3]);   // negative noisy mean squashed
}

TEST(ComputeSquashMaskTest, UnobservedBitsSquashedWhenEnabled) {
  const std::vector<bool> keep = ComputeSquashMask(
      {0.9}, {0}, RandomizedResponse::Disabled(),
      SquashPolicy::Absolute(0.01));
  EXPECT_FALSE(keep[0]);
}

TEST(ComputeSquashMaskTest, NoiseMultipleScalesWithCount) {
  // Same mean, very different report counts: the noise std of the mean is
  // sqrt(rr_var / count), so the low-count bit has a higher threshold and
  // gets squashed while the high-count bit survives.
  const RandomizedResponse rr(1.0);
  const double mean = 0.1;
  const std::vector<bool> keep = ComputeSquashMask(
      {mean, mean}, {25, 250000}, rr, SquashPolicy::NoiseMultiple(1.0));
  // rr variance at eps=1 is ~0.92; threshold at count 25 is ~0.19 > 0.1,
  // at count 250000 is ~0.0019 < 0.1.
  EXPECT_FALSE(keep[0]);
  EXPECT_TRUE(keep[1]);
}

TEST(ComputeSquashMaskTest, NoiseMultipleWithDisabledRrKeepsPositiveBits) {
  // No DP noise -> threshold 0 -> only strictly negative means squash.
  const std::vector<bool> keep = ComputeSquashMask(
      {0.001, 0.0, -0.001}, {10, 10, 10}, RandomizedResponse::Disabled(),
      SquashPolicy::NoiseMultiple(2.0));
  EXPECT_TRUE(keep[0]);
  EXPECT_TRUE(keep[1]);
  EXPECT_FALSE(keep[2]);
}

TEST(ComputeSquashMaskDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(ComputeSquashMask({0.5}, {1, 2},
                                 RandomizedResponse::Disabled(),
                                 SquashPolicy::Off()),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
