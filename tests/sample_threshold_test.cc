#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dp/sample_threshold.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(SampleThresholdForBudgetTest, ThresholdGrowsWithStricterDelta) {
  const auto loose = SampleThresholdForBudget(1.0, 1e-3, 0.5);
  const auto strict = SampleThresholdForBudget(1.0, 1e-9, 0.5);
  EXPECT_GT(strict.threshold, loose.threshold);
}

TEST(SampleThresholdForBudgetTest, ThresholdGrowsWithSmallerEpsilon) {
  const auto loose = SampleThresholdForBudget(2.0, 1e-6, 0.5);
  const auto strict = SampleThresholdForBudget(0.2, 1e-6, 0.5);
  EXPECT_GT(strict.threshold, loose.threshold);
}

TEST(SampleThresholdForBudgetTest, ReasonableMagnitude) {
  // eps=1, delta=1e-6, rate=0.5 should need a threshold of tens, not
  // thousands (Section 4.3: "a negligible amount of noise").
  const auto config = SampleThresholdForBudget(1.0, 1e-6, 0.5);
  EXPECT_GT(config.threshold, 5);
  EXPECT_LT(config.threshold, 100);
  EXPECT_DOUBLE_EQ(config.sampling_rate, 0.5);
}

TEST(SampleAndThresholdTest, FullRateNoThresholdIsLossless) {
  Rng rng(1);
  const std::vector<int64_t> counts = {100, 0, 7, 55};
  const SampleThresholdConfig config{1.0, 0};
  EXPECT_EQ(SampleAndThreshold(counts, config, rng), counts);
}

TEST(SampleAndThresholdTest, SamplingIsUnbiasedBeforeThreshold) {
  Rng rng(2);
  const std::vector<int64_t> counts = {10000};
  const SampleThresholdConfig config{0.3, 0};
  Welford acc;
  for (int rep = 0; rep < 300; ++rep) {
    acc.Add(UnbiasSampledCounts(SampleAndThreshold(counts, config, rng),
                                config.sampling_rate)[0]);
  }
  EXPECT_NEAR(acc.mean(), 10000.0, 30.0);
}

TEST(SampleAndThresholdTest, SmallCountsAreZeroed) {
  Rng rng(3);
  const SampleThresholdConfig config{1.0, 10};
  const std::vector<int64_t> out =
      SampleAndThreshold({5, 9, 10, 200}, config, rng);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 10);
  EXPECT_EQ(out[3], 200);
}

TEST(SampleAndThresholdTest, LargeCountsSurviveThresholding) {
  // The deployment claim: thresholding barely perturbs large bit counts.
  Rng rng(4);
  const auto config = SampleThresholdForBudget(1.0, 1e-6, 0.5);
  const std::vector<int64_t> counts = {50000, 30000};
  const std::vector<double> unbiased = UnbiasSampledCounts(
      SampleAndThreshold(counts, config, rng), config.sampling_rate);
  EXPECT_NEAR(unbiased[0], 50000.0, 1000.0);
  EXPECT_NEAR(unbiased[1], 30000.0, 1000.0);
}

TEST(SampleAndThresholdTest, ZeroCountStaysZero) {
  Rng rng(5);
  const SampleThresholdConfig config{0.5, 3};
  const std::vector<int64_t> out = SampleAndThreshold({0}, config, rng);
  EXPECT_EQ(out[0], 0);
}

TEST(UnbiasSampledCountsTest, DividesByRate) {
  const std::vector<double> out = UnbiasSampledCounts({10, 0, 5}, 0.25);
  EXPECT_DOUBLE_EQ(out[0], 40.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 20.0);
}

TEST(SampleThresholdDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(SampleThresholdForBudget(0.0, 1e-6, 0.5),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(SampleThresholdForBudget(1.0, 0.0, 0.5),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(SampleThresholdForBudget(1.0, 1e-6, 1.5),
               "BITPUSH_CHECK failed");
  Rng rng(1);
  EXPECT_DEATH(SampleAndThreshold({-1}, SampleThresholdConfig{0.5, 0}, rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(UnbiasSampledCounts({1}, 0.0), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
