#include <cmath>

#include <gtest/gtest.h>

#include "dp/privacy_params.h"

namespace bitpush {
namespace {

TEST(PrivacyBudgetTest, EnabledOnlyWithPositiveEpsilon) {
  EXPECT_FALSE(PrivacyBudget{}.enabled());
  EXPECT_FALSE((PrivacyBudget{0.0, 0.1}).enabled());
  EXPECT_TRUE((PrivacyBudget{0.5, 0.0}).enabled());
}

TEST(PrivacyBudgetTest, SequentialCompositionAdds) {
  const PrivacyBudget a{1.0, 1e-6};
  const PrivacyBudget b{0.5, 1e-7};
  const PrivacyBudget c = Compose(a, b);
  EXPECT_DOUBLE_EQ(c.epsilon, 1.5);
  EXPECT_DOUBLE_EQ(c.delta, 1.1e-6);
}

TEST(PrivacyBudgetTest, ComposeWithZeroIsIdentity) {
  const PrivacyBudget a{2.0, 1e-5};
  const PrivacyBudget c = Compose(a, PrivacyBudget{});
  EXPECT_DOUBLE_EQ(c.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(c.delta, 1e-5);
}

TEST(RandomizedResponseVarianceTest, MatchesClosedForm) {
  for (const double eps : {0.1, 1.0, 2.0, 5.0}) {
    const double e = std::exp(eps);
    EXPECT_NEAR(RandomizedResponseVariance(eps), e / ((e - 1) * (e - 1)),
                1e-12);
  }
}

TEST(RandomizedResponseVarianceTest, SmallEpsilonScalesAsInverseSquare) {
  // Section 3.3: for small eps the variance behaves like 1/eps^2.
  const double v1 = RandomizedResponseVariance(0.01);
  const double v2 = RandomizedResponseVariance(0.02);
  EXPECT_NEAR(v1 / v2, 4.0, 0.1);
}

TEST(RandomizedResponseVarianceTest, MonotoneDecreasingInEpsilon) {
  double previous = RandomizedResponseVariance(0.05);
  for (double eps = 0.1; eps <= 5.0; eps += 0.1) {
    const double current = RandomizedResponseVariance(eps);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST(RandomizedResponseVarianceDeathTest, RequiresPositiveEpsilon) {
  EXPECT_DEATH(RandomizedResponseVariance(0.0), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
