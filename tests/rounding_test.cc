#include <cmath>

#include <gtest/gtest.h>

#include "data/census.h"
#include "ldp/dithering.h"
#include "ldp/rounding.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

double ReportMean(const ScalarMechanism& mechanism, double x, int trials,
                  uint64_t seed) {
  Rng rng(seed);
  Welford acc;
  for (int i = 0; i < trials; ++i) acc.Add(mechanism.Privatize(x, rng));
  return acc.mean();
}

TEST(DeterministicRoundingTest, SnapsToEndpoints) {
  const DeterministicRounding mechanism(0.0, 0.0, 100.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(mechanism.Privatize(10.0, rng), 0.0);
  EXPECT_DOUBLE_EQ(mechanism.Privatize(90.0, rng), 100.0);
  EXPECT_DOUBLE_EQ(mechanism.Privatize(50.0, rng), 100.0);  // >= midpoint
}

TEST(DeterministicRoundingTest, IsBiasedForInteriorInputs) {
  // The defining weakness: E[report | x = 30] = 0, not 30.
  const DeterministicRounding mechanism(0.0, 0.0, 100.0);
  EXPECT_NEAR(ReportMean(mechanism, 30.0, 20000, 2), 0.0, 1.0);
  EXPECT_NEAR(ReportMean(mechanism, 70.0, 20000, 2), 100.0, 1.0);
}

TEST(DeterministicRoundingTest, RrLayerIsUnbiasedForTheBit) {
  // With RR the *bit* is unbiased, so the estimate converges to the
  // rounded endpoint, not to x.
  const DeterministicRounding mechanism(1.0, 0.0, 100.0);
  EXPECT_NEAR(ReportMean(mechanism, 70.0, 300000, 3), 100.0, 2.0);
}

TEST(NonSubtractiveDitheringTest, IsUnbiased) {
  const NonSubtractiveDithering mechanism(0.0, 0.0, 100.0);
  for (const double x : {0.0, 20.0, 50.0, 80.0, 100.0}) {
    EXPECT_NEAR(ReportMean(mechanism, x, 300000, 4), x, 0.5) << x;
  }
}

TEST(NonSubtractiveDitheringTest, HigherVarianceThanSubtractive) {
  // Per-report variance: nonsubtractive x(1-x) (scaled), subtractive 1/12.
  // At mid-range x = 0.5 the ratio is 3.
  Rng rng(5);
  const NonSubtractiveDithering nonsub(0.0, 0.0, 1.0);
  const SubtractiveDithering sub(0.0, 0.0, 1.0);
  Welford nonsub_acc;
  Welford sub_acc;
  for (int i = 0; i < 300000; ++i) {
    nonsub_acc.Add(nonsub.Privatize(0.5, rng));
    sub_acc.Add(sub.Privatize(0.5, rng));
  }
  EXPECT_NEAR(nonsub_acc.population_variance(), 0.25, 0.01);
  EXPECT_NEAR(sub_acc.population_variance(), 1.0 / 12.0, 0.005);
}

TEST(OneBitFamilyTest, SubtractiveDitheringIsTheFrontrunner) {
  // Footnote 3's evaluation: on census ages with a tight 7-bit bound,
  // subtractive dithering beats both rounding baselines on RMSE.
  Rng data_rng(6);
  const Dataset ages = CensusAges(20000, data_rng);
  auto rmse_of = [&](const ScalarMechanism& mechanism) {
    Welford acc;
    Rng rng(7);
    for (int rep = 0; rep < 25; ++rep) {
      const double estimate = mechanism.EstimateMean(ages.values(), rng);
      acc.Add((estimate - ages.truth().mean) *
              (estimate - ages.truth().mean));
    }
    return std::sqrt(acc.mean());
  };
  const double subtractive = rmse_of(SubtractiveDithering(0.0, 0.0, 127.0));
  const double nonsubtractive =
      rmse_of(NonSubtractiveDithering(0.0, 0.0, 127.0));
  const double deterministic =
      rmse_of(DeterministicRounding(0.0, 0.0, 127.0));
  EXPECT_LT(subtractive, nonsubtractive);
  EXPECT_LT(subtractive, deterministic);
  // Deterministic rounding's bias dominates everything.
  EXPECT_GT(deterministic, 5.0 * subtractive);
}

TEST(RoundingDeathTest, InvalidRangesAbort) {
  EXPECT_DEATH(DeterministicRounding(0.0, 1.0, 1.0),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(NonSubtractiveDithering(0.0, 2.0, 1.0),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
