#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "federated/client.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

const FixedPointCodec& Codec8() {
  static const FixedPointCodec& codec =
      *new FixedPointCodec(FixedPointCodec::Integer(8));
  return codec;
}

TEST(ClientTest, SingleValueSelection) {
  const Client client(1, {42.0}, ClientConfig{});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(client.SelectValue(rng), 42.0);
  }
}

TEST(ClientTest, SampleOnePolicyCoversAllValues) {
  ClientConfig config;
  config.value_policy = ValuePolicy::kSampleOne;
  const Client client(1, {1.0, 2.0, 3.0}, config);
  Rng rng(2);
  Welford acc;
  for (int i = 0; i < 30000; ++i) acc.Add(client.SelectValue(rng));
  EXPECT_NEAR(acc.mean(), 2.0, 0.05);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(ClientTest, LocalMeanPolicy) {
  ClientConfig config;
  config.value_policy = ValuePolicy::kLocalMean;
  const Client client(1, {1.0, 2.0, 6.0}, config);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(client.SelectValue(rng), 3.0);
}

TEST(ClientTest, FirstValuePolicy) {
  ClientConfig config;
  config.value_policy = ValuePolicy::kFirstValue;
  const Client client(1, {9.0, 1.0}, config);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(client.SelectValue(rng), 9.0);
}

TEST(ClientTest, HonestReportMatchesTrueBit) {
  const Client client(5, {42.0}, ClientConfig{});  // 42 = 0b101010
  Rng rng(5);
  for (int j = 0; j < 8; ++j) {
    const BitRequest request{1, 0, j, 0.0};
    const std::optional<BitReport> report = client.HandleRequest(
        request, Codec8(), /*local_randomness=*/false, nullptr, rng);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->client_id, 5);
    EXPECT_EQ(report->bit_index, j);
    EXPECT_EQ(report->bit, (42 >> j) & 1);
  }
}

TEST(ClientTest, DropoutRateIsRespected) {
  ClientConfig config;
  config.dropout_probability = 0.3;
  const Client client(1, {10.0}, config);
  Rng rng(6);
  int responded = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const BitRequest request{1, 0, 0, 0.0};
    if (client.HandleRequest(request, Codec8(), false, nullptr, rng)) {
      ++responded;
    }
  }
  EXPECT_NEAR(static_cast<double>(responded) / trials, 0.7, 0.02);
}

TEST(ClientTest, MeterDenialSuppressesReport) {
  PrivacyMeter meter{MeterPolicy{}};  // 1 bit per value
  const Client client(1, {10.0}, ClientConfig{});
  Rng rng(7);
  const BitRequest request{1, 77, 0, 0.0};
  EXPECT_TRUE(
      client.HandleRequest(request, Codec8(), false, &meter, rng));
  // Second request about the same value id is refused by the meter.
  EXPECT_FALSE(
      client.HandleRequest(request, Codec8(), false, &meter, rng));
  EXPECT_EQ(meter.total_bits(), 1);
  EXPECT_EQ(meter.denied_charges(), 1);
}

TEST(ClientTest, MeterChargesEpsilon) {
  MeterPolicy policy;
  policy.max_bits_per_value = 10;
  PrivacyMeter meter(policy);
  const Client client(3, {10.0}, ClientConfig{});
  Rng rng(8);
  const BitRequest request{1, 0, 0, 1.5};
  client.HandleRequest(request, Codec8(), false, &meter, rng);
  EXPECT_DOUBLE_EQ(meter.ClientEpsilon(3), 1.5);
}

TEST(ClientTest, RandomizedResponseIsAppliedAtRequestedEpsilon) {
  const Client client(1, {255.0}, ClientConfig{});  // all bits 1
  Rng rng(9);
  const double epsilon = 1.0;
  const RandomizedResponse rr(epsilon);
  int ones = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const BitRequest request{1, 0, 0, epsilon};
    const std::optional<BitReport> report =
        client.HandleRequest(request, Codec8(), false, nullptr, rng);
    ASSERT_TRUE(report.has_value());
    ones += report->bit;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, rr.truth_probability(),
              0.01);
}

TEST(ClientTest, AdversaryOverridesBit) {
  ClientConfig config;
  config.adversary = AdversaryMode::kFlipBit;
  const Client client(1, {0.0}, config);  // all bits 0
  Rng rng(10);
  const BitRequest request{1, 0, 3, 0.0};
  const std::optional<BitReport> report =
      client.HandleRequest(request, Codec8(), false, nullptr, rng);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->bit, 1);
}

TEST(ClientTest, TopBitAdversaryHijacksIndexOnlyUnderLocalRandomness) {
  ClientConfig config;
  config.adversary = AdversaryMode::kTopBitOne;
  const Client client(1, {0.0}, config);
  Rng rng(11);
  const BitRequest request{1, 0, 2, 0.0};
  const std::optional<BitReport> local = client.HandleRequest(
      request, Codec8(), /*local_randomness=*/true, nullptr, rng);
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->bit_index, 7);  // claims the top bit
  EXPECT_EQ(local->bit, 1);
  const std::optional<BitReport> central = client.HandleRequest(
      request, Codec8(), /*local_randomness=*/false, nullptr, rng);
  ASSERT_TRUE(central.has_value());
  EXPECT_EQ(central->bit_index, 2);  // cannot choose under central
}

TEST(ClientTest, MakePopulationBuildsSingleValueClients) {
  const std::vector<Client> clients =
      MakePopulation({5.0, 6.0, 7.0}, ClientConfig{});
  ASSERT_EQ(clients.size(), 3u);
  EXPECT_EQ(clients[1].id(), 1);
  EXPECT_EQ(clients[2].values(), (std::vector<double>{7.0}));
}

TEST(ClientDeathTest, InvalidConstructionAborts) {
  EXPECT_DEATH(Client(1, {}, ClientConfig{}), "BITPUSH_CHECK failed");
  ClientConfig config;
  config.dropout_probability = 1.5;
  EXPECT_DEATH(Client(1, {1.0}, config), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
