#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

TEST(BitHistogramTest, AddAndQuery) {
  BitHistogram histogram(3);
  histogram.Add(0, 1);
  histogram.Add(0, 0);
  histogram.Add(2, 1);
  EXPECT_EQ(histogram.bits(), 3);
  EXPECT_EQ(histogram.total(0), 2);
  EXPECT_EQ(histogram.ones(0), 1);
  EXPECT_EQ(histogram.total(1), 0);
  EXPECT_EQ(histogram.total(2), 1);
  EXPECT_EQ(histogram.ones(2), 1);
  EXPECT_EQ(histogram.TotalReports(), 3);
}

TEST(BitHistogramTest, MergePoolsCounts) {
  BitHistogram a(2);
  a.Add(0, 1);
  BitHistogram b(2);
  b.Add(0, 0);
  b.Add(1, 1);
  a.Merge(b);
  EXPECT_EQ(a.total(0), 2);
  EXPECT_EQ(a.ones(0), 1);
  EXPECT_EQ(a.total(1), 1);
}

TEST(BitHistogramTest, UnbiasedMeansWithoutNoise) {
  BitHistogram histogram(2);
  histogram.Add(0, 1);
  histogram.Add(0, 1);
  histogram.Add(0, 0);
  histogram.Add(0, 0);
  std::vector<bool> observed;
  const std::vector<double> means = histogram.UnbiasedMeans(
      RandomizedResponse::Disabled(), &observed);
  EXPECT_DOUBLE_EQ(means[0], 0.5);
  EXPECT_DOUBLE_EQ(means[1], 0.0);
  EXPECT_TRUE(observed[0]);
  EXPECT_FALSE(observed[1]);
}

TEST(BitHistogramTest, UnbiasedMeansInvertsRandomizedResponse) {
  // All raw reports 1 under RR with truth-prob p: the raw mean is 1 and the
  // unbiased mean is Unbias(1) > 1 — unclamped by design.
  const RandomizedResponse rr(1.0);
  BitHistogram histogram(1);
  for (int i = 0; i < 10; ++i) histogram.Add(0, 1);
  const std::vector<double> means = histogram.UnbiasedMeans(rr);
  EXPECT_GT(means[0], 1.0);
  EXPECT_NEAR(means[0], rr.Unbias(1.0), 1e-12);
}

TEST(BitHistogramDeathTest, InvalidUseAborts) {
  BitHistogram histogram(2);
  EXPECT_DEATH(histogram.Add(2, 0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(histogram.Add(0, 2), "BITPUSH_CHECK failed");
  BitHistogram other(3);
  EXPECT_DEATH(histogram.Merge(other), "BITPUSH_CHECK failed");
}

TEST(RecombineBitMeansTest, WeightsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(RecombineBitMeans({1.0, 1.0, 1.0}), 7.0);
  EXPECT_DOUBLE_EQ(RecombineBitMeans({0.5, 0.5}), 1.5);
  EXPECT_DOUBLE_EQ(RecombineBitMeans({0.0, 0.0, 0.25}), 1.0);
}

TEST(RecombineBitMeansTest, MaskDropsBits) {
  EXPECT_DOUBLE_EQ(RecombineBitMeans({1.0, 1.0, 1.0},
                                     {true, false, true}),
                   5.0);
}

TEST(MakeBitReportTest, ExtractsCorrectBitWithoutNoise) {
  Rng rng(1);
  const RandomizedResponse none = RandomizedResponse::Disabled();
  EXPECT_EQ(MakeBitReport(0b1010, 1, none, rng), 1);
  EXPECT_EQ(MakeBitReport(0b1010, 0, none, rng), 0);
  EXPECT_EQ(MakeBitReport(0b1010, 3, none, rng), 1);
}

// ---------------------------------------------------------------------------
// Protocol-level properties.

TEST(BasicBitPushingTest, ExactRecoveryWhenEveryBitFullySampled) {
  // One bit, all clients report it, no noise: the estimate is the exact
  // mean of the codewords.
  const std::vector<uint64_t> codewords = {0, 1, 1, 1};
  BitPushingConfig config;
  config.probabilities = {1.0};
  Rng rng(2);
  const BitPushingResult result =
      RunBasicBitPushing(codewords, config, rng);
  EXPECT_DOUBLE_EQ(result.estimate_codeword, 0.75);
  EXPECT_DOUBLE_EQ(result.bit_means[0], 0.75);
}

TEST(BasicBitPushingTest, ConstantPopulationIsRecoveredExactly) {
  // Every client holds 42; each bit mean is exactly 0 or 1 regardless of
  // which clients report it, so the estimate is exact with any allocation.
  const std::vector<uint64_t> codewords(1000, 42);
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 0.5);
  Rng rng(3);
  const BitPushingResult result =
      RunBasicBitPushing(codewords, config, rng);
  EXPECT_DOUBLE_EQ(result.estimate_codeword, 42.0);
  EXPECT_DOUBLE_EQ(result.variance_bound, 0.0);
}

struct UnbiasednessCase {
  const char* label;
  double gamma;
  double epsilon;
  bool central;
  int bits_per_client;
};

class BitPushingUnbiasednessTest
    : public ::testing::TestWithParam<UnbiasednessCase> {};

TEST_P(BitPushingUnbiasednessTest, EstimatorIsUnbiased) {
  // Lemma 3.1 / Equation (1): E[estimate] = true mean, for every sampling
  // allocation, randomness mode, DP setting, and b_send.
  const UnbiasednessCase& test_case = GetParam();
  Rng data_rng(4);
  const Dataset data = UniformData(4000, 0.0, 200.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  std::vector<double> decoded;
  for (const uint64_t c : codewords) {
    decoded.push_back(static_cast<double>(c));
  }
  const double truth = Mean(decoded);

  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, test_case.gamma);
  config.epsilon = test_case.epsilon;
  config.central_randomness = test_case.central;
  config.bits_per_client = test_case.bits_per_client;

  const ErrorStats stats =
      RunRepetitions(400, 5, truth, [&](Rng& rng) {
        return RunBasicBitPushing(codewords, config, rng).estimate_codeword;
      });
  // Bias must be statistically indistinguishable from 0: within 4 standard
  // errors of the mean estimate.
  const double stderr_mean =
      stats.rmse / std::sqrt(static_cast<double>(stats.repetitions));
  EXPECT_LT(std::abs(stats.bias), 4.0 * stderr_mean + 1e-9)
      << test_case.label;
}

INSTANTIATE_TEST_SUITE_P(
    Allocations, BitPushingUnbiasednessTest,
    ::testing::Values(
        UnbiasednessCase{"uniform_central", 0.0, 0.0, true, 1},
        UnbiasednessCase{"weighted_half", 0.5, 0.0, true, 1},
        UnbiasednessCase{"weighted_one", 1.0, 0.0, true, 1},
        UnbiasednessCase{"local_randomness", 0.5, 0.0, false, 1},
        UnbiasednessCase{"with_dp", 0.5, 1.0, true, 1},
        UnbiasednessCase{"bsend_4", 0.5, 0.0, true, 4}),
    [](const ::testing::TestParamInfo<UnbiasednessCase>& info) {
      return info.param.label;
    });

TEST(BasicBitPushingTest, EmpiricalVarianceMatchesLemma31) {
  // The empirical variance of the estimator across repetitions must match
  // the Lemma 3.1 expression evaluated at the true bit means.
  Rng data_rng(6);
  const Dataset data = UniformData(2000, 0.0, 255.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());

  // True bit means.
  std::vector<double> true_means(8, 0.0);
  for (const uint64_t c : codewords) {
    for (int j = 0; j < 8; ++j) {
      true_means[static_cast<size_t>(j)] += FixedPointCodec::Bit(c, j);
    }
  }
  for (double& m : true_means) m /= static_cast<double>(codewords.size());

  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 1.0);

  const std::vector<double> estimates =
      CollectRepetitions(3000, 7, [&](Rng& rng) {
        return RunBasicBitPushing(codewords, config, rng).estimate_codeword;
      });
  const double empirical_variance = PopulationVariance(estimates);
  const double n = static_cast<double>(codewords.size());
  const double predicted_bound =
      VarianceBound(true_means, config.probabilities, n);
  // Lemma 3.1 assumes each bit mean comes from independent draws; the QMC
  // assignment samples clients *without replacement*, so each bit's
  // variance carries a finite-population correction (N - n_j)/(N - 1) and
  // the realized variance sits strictly below the bound. Check the
  // fpc-adjusted prediction tightly and the bound as an upper envelope.
  double predicted_fpc = 0.0;
  for (size_t j = 0; j < true_means.size(); ++j) {
    const double n_j = n * config.probabilities[j];
    if (n_j <= 0.0) continue;
    const double fpc = (n - n_j) / (n - 1.0);
    predicted_fpc += std::exp2(2.0 * static_cast<double>(j)) *
                     true_means[j] * (1.0 - true_means[j]) / n_j * fpc;
  }
  EXPECT_NEAR(empirical_variance / predicted_fpc, 1.0, 0.2);
  EXPECT_LT(empirical_variance, 1.1 * predicted_bound);
}

TEST(BasicBitPushingTest, BsendReducesVariancePerCorollary32) {
  Rng data_rng(8);
  const Dataset data = UniformData(1000, 0.0, 255.0, data_rng);
  const std::vector<uint64_t> codewords =
      FixedPointCodec::Integer(8).EncodeAll(data.values());

  auto variance_with_bsend = [&](int b_send) {
    BitPushingConfig config;
    config.probabilities = GeometricProbabilities(8, 1.0);
    config.bits_per_client = b_send;
    const std::vector<double> estimates =
        CollectRepetitions(1500, 9, [&](Rng& rng) {
          return RunBasicBitPushing(codewords, config, rng)
              .estimate_codeword;
        });
    return PopulationVariance(estimates);
  };
  const double v1 = variance_with_bsend(1);
  const double v4 = variance_with_bsend(4);
  // Corollary 3.2: variance shrinks by ~b_send (allow slack: negative
  // covariance between bits can make it shrink faster).
  EXPECT_NEAR(v1 / v4, 4.0, 1.5);
}

TEST(BasicBitPushingTest, CentralRandomnessNoLessAccurateThanLocal) {
  Rng data_rng(10);
  const Dataset data = UniformData(2000, 0.0, 255.0, data_rng);
  const std::vector<uint64_t> codewords =
      FixedPointCodec::Integer(8).EncodeAll(data.values());
  auto variance_with_mode = [&](bool central) {
    BitPushingConfig config;
    config.probabilities = GeometricProbabilities(8, 1.0);
    config.central_randomness = central;
    const std::vector<double> estimates =
        CollectRepetitions(2000, 11, [&](Rng& rng) {
          return RunBasicBitPushing(codewords, config, rng)
              .estimate_codeword;
        });
    return PopulationVariance(estimates);
  };
  // QMC report counts remove one source of variance; central must not be
  // noticeably worse.
  EXPECT_LT(variance_with_mode(true), 1.1 * variance_with_mode(false));
}

TEST(BasicBitPushingTest, DpNoiseInflatesVariancePredictably) {
  const std::vector<uint64_t> codewords(2000, 100);
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(8, 1.0);
  config.epsilon = 1.0;
  Rng rng(12);
  const BitPushingResult result =
      RunBasicBitPushing(codewords, config, rng);
  // Constant data: without DP the bound is 0; with DP it is the pure RR
  // term of Section 3.3.
  EXPECT_GT(result.variance_bound, 0.0);
  const RandomizedResponse rr(1.0);
  double expected = 0.0;
  for (int j = 0; j < 8; ++j) {
    expected += std::exp2(2.0 * j) * rr.ReportVariance() /
                static_cast<double>(result.histogram.total(j));
  }
  EXPECT_NEAR(result.variance_bound / expected, 1.0, 0.25);
}

TEST(BasicBitPushingTest, UnsampledBitsAreReportedUnobserved) {
  const std::vector<uint64_t> codewords(100, 3);
  BitPushingConfig config;
  config.probabilities = {0.5, 0.5, 0.0};  // bit 2 never sampled
  Rng rng(13);
  const BitPushingResult result =
      RunBasicBitPushing(codewords, config, rng);
  EXPECT_FALSE(result.observed[2]);
  EXPECT_TRUE(result.observed[0]);
  EXPECT_EQ(result.histogram.total(2), 0);
}

TEST(BasicBitPushingTest, OneBitPerClientPerPass) {
  const std::vector<uint64_t> codewords(500, 7);
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(4, 0.5);
  Rng rng(14);
  const BitPushingResult result =
      RunBasicBitPushing(codewords, config, rng);
  // Exactly one report per client: the worst-case disclosure guarantee.
  EXPECT_EQ(result.histogram.TotalReports(), 500);
}

TEST(BasicBitPushingDeathTest, InvalidConfigAborts) {
  const std::vector<uint64_t> codewords(10, 1);
  Rng rng(1);
  BitPushingConfig config;  // empty probabilities
  EXPECT_DEATH(RunBasicBitPushing(codewords, config, rng),
               "BITPUSH_CHECK failed");
  config.probabilities = {1.0};
  config.bits_per_client = 0;
  EXPECT_DEATH(RunBasicBitPushing(codewords, config, rng),
               "BITPUSH_CHECK failed");
  config.bits_per_client = 1;
  EXPECT_DEATH(RunBasicBitPushing({}, config, rng), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
