#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/planner.h"
#include "data/census.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

TEST(UnitVarianceTest, WorstCaseMatchesHandComputation) {
  // Two bits, uniform allocation, worst-case means 1/2:
  // V1 = 4^0 * 0.25 / 0.5 + 4^1 * 0.25 / 0.5 = 0.5 + 2 = 2.5.
  EXPECT_NEAR(UnitVariance({0.5, 0.5}, {}, 0.0), 2.5, 1e-12);
}

TEST(UnitVarianceTest, KnownMeansReduceVariance) {
  const double worst = UnitVariance({0.5, 0.5}, {}, 0.0);
  const double informed = UnitVariance({0.5, 0.5}, {0.1, 0.9}, 0.0);
  EXPECT_LT(informed, worst);
}

TEST(UnitVarianceTest, DpAddsRandomizedResponseTerm) {
  const double clean = UnitVariance({0.5, 0.5}, {0.5, 0.5}, 0.0);
  const double noisy = UnitVariance({0.5, 0.5}, {0.5, 0.5}, 1.0);
  const double rr_var = std::exp(1.0) / ((std::exp(1.0) - 1.0) *
                                         (std::exp(1.0) - 1.0));
  // Extra contribution: sum_j 4^j rr_var / p_j = (1 + 4) * rr_var / 0.5.
  EXPECT_NEAR(noisy - clean, (1.0 + 4.0) * rr_var / 0.5, 1e-9);
}

TEST(UnitVarianceTest, DegenerateBitsNeedNoProbability) {
  // A bit with mean exactly 0 or 1 contributes nothing even at p = 0.
  EXPECT_NEAR(UnitVariance({1.0, 0.0}, {0.5, 1.0}, 0.0), 0.25, 1e-12);
}

TEST(UnitVarianceDeathTest, VariancefulBitWithZeroProbabilityAborts) {
  EXPECT_DEATH(UnitVariance({1.0, 0.0}, {0.5, 0.5}, 0.0),
               "zero sampling probability");
}

TEST(PlanForStdErrorTest, InvertsTheVarianceLaw) {
  const CohortPlan plan = PlanForStdError({0.5, 0.5}, {}, 0.0, 0.05);
  // n = V1 / target^2 = 2.5 / 0.0025 = 1000.
  EXPECT_EQ(plan.required_clients, 1000);
  EXPECT_NEAR(plan.predicted_stderr_codewords, 0.05, 1e-9);
}

TEST(PlanForStdErrorTest, TighterTargetNeedsQuadraticallyMoreClients) {
  const CohortPlan loose = PlanForStdError({0.5, 0.5}, {}, 0.0, 0.1);
  const CohortPlan tight = PlanForStdError({0.5, 0.5}, {}, 0.0, 0.01);
  EXPECT_NEAR(static_cast<double>(tight.required_clients) /
                  static_cast<double>(loose.required_clients),
              100.0, 1.0);
}

TEST(PlanForNrmseTest, PredictionMatchesSimulation) {
  // Plan a cohort for 2% NRMSE on census ages, then verify by simulation
  // that the achieved NRMSE is close to (and not far above) the target.
  Rng data_rng(1);
  const Dataset big = CensusAges(300000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<double> probabilities = GeometricProbabilities(7, 1.0);

  // Exact bit means of the population, as the planner's mean guess.
  std::vector<double> bit_means(7, 0.0);
  const std::vector<uint64_t> codewords = codec.EncodeAll(big.values());
  for (const uint64_t c : codewords) {
    for (int j = 0; j < 7; ++j) {
      bit_means[static_cast<size_t>(j)] += FixedPointCodec::Bit(c, j);
    }
  }
  for (double& m : bit_means) m /= static_cast<double>(codewords.size());

  const double target_nrmse = 0.02;
  const CohortPlan plan =
      PlanForNrmse(codec, probabilities, bit_means, 0.0, big.truth().mean,
                   target_nrmse);
  ASSERT_GT(plan.required_clients, 100);
  ASSERT_LT(plan.required_clients, 100000);

  const std::vector<uint64_t> cohort(
      codewords.begin(), codewords.begin() + plan.required_clients);
  BitPushingConfig config;
  config.probabilities = probabilities;
  const ErrorStats stats =
      RunRepetitions(150, 2, big.truth().mean, [&](Rng& rng) {
        return codec.Decode(
            RunBasicBitPushing(cohort, config, rng).estimate_codeword);
      });
  // The realized error must be within ~35% of the planned target (the
  // plan ignores the finite-population correction, so it overestimates).
  EXPECT_LT(stats.nrmse, 1.2 * target_nrmse);
  EXPECT_GT(stats.nrmse, 0.4 * target_nrmse);
}

TEST(PredictedStdErrorTest, ScalesAsInverseSqrtN) {
  const double at_100 = PredictedStdError({0.5, 0.5}, {}, 0.0, 100);
  const double at_10000 = PredictedStdError({0.5, 0.5}, {}, 0.0, 10000);
  EXPECT_NEAR(at_100 / at_10000, 10.0, 1e-9);
}

TEST(PlannerDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(PlanForStdError({0.5, 0.5}, {}, 0.0, 0.0),
               "BITPUSH_CHECK failed");
  const FixedPointCodec codec = FixedPointCodec::Integer(2);
  EXPECT_DEATH(PlanForNrmse(codec, {1.0}, {}, 0.0, 1.0, 0.1),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(PlanForNrmse(codec, {0.5, 0.5}, {}, 0.0, 0.0, 0.1),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(PredictedStdError({0.5, 0.5}, {}, 0.0, 0),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
