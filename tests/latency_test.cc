#include <gtest/gtest.h>

#include "federated/latency.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(LatencyTest, UnrestrictedQueryIsFast) {
  // Section 4.3: "the typical time to complete a round ... is a matter of
  // minutes". 10K devices at 5K check-ins/minute: ~2 minutes collection
  // plus the fixed overhead.
  LatencyModel model;
  model.checkins_per_minute = 5000.0;
  EXPECT_NEAR(ExpectedCollectionMinutes(model, 10000), 2.0, 1e-9);
  EXPECT_NEAR(ExpectedQueryMinutes(model, 10000, 2), 2.0 + 6.0, 1e-9);
}

TEST(LatencyTest, SelectiveQueriesWaitProportionallyLonger) {
  // "when applied to more selective queries ... it can take longer for a
  // sufficient number of eligible clients to make themselves available."
  LatencyModel broad;
  LatencyModel selective = broad;
  selective.eligibility_rate = 0.01;
  EXPECT_NEAR(ExpectedCollectionMinutes(selective, 10000) /
                  ExpectedCollectionMinutes(broad, 10000),
              100.0, 1e-9);
}

TEST(LatencyTest, TwoRoundsCostOneExtraFixedRound) {
  LatencyModel model;
  const double one_round = ExpectedQueryMinutes(model, 10000, 1);
  const double two_rounds = ExpectedQueryMinutes(model, 10000, 2);
  EXPECT_NEAR(two_rounds - one_round, model.fixed_round_minutes, 1e-9);
}

TEST(LatencyTest, SampledCollectionMatchesExpectation) {
  LatencyModel model;
  model.checkins_per_minute = 2000.0;
  model.eligibility_rate = 0.5;
  Rng rng(1);
  Welford acc;
  for (int trial = 0; trial < 300; ++trial) {
    acc.Add(SampleCollectionMinutes(model, 1000, rng));
  }
  EXPECT_NEAR(acc.mean(), ExpectedCollectionMinutes(model, 1000),
              0.05 * ExpectedCollectionMinutes(model, 1000));
}

TEST(LatencyTest, ZeroCohortIsInstant) {
  LatencyModel model;
  Rng rng(2);
  EXPECT_DOUBLE_EQ(ExpectedCollectionMinutes(model, 0), 0.0);
  EXPECT_DOUBLE_EQ(SampleCollectionMinutes(model, 0, rng), 0.0);
}

TEST(LatencyDeathTest, InvalidModelAborts) {
  LatencyModel bad_rate;
  bad_rate.checkins_per_minute = 0.0;
  EXPECT_DEATH(ExpectedCollectionMinutes(bad_rate, 10),
               "BITPUSH_CHECK failed");
  LatencyModel bad_eligibility;
  bad_eligibility.eligibility_rate = 0.0;
  EXPECT_DEATH(ExpectedCollectionMinutes(bad_eligibility, 10),
               "BITPUSH_CHECK failed");
  LatencyModel model;
  EXPECT_DEATH(ExpectedQueryMinutes(model, 10, 0), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
