#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "federated/dropout_secure_agg.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(DoubleMaskingTest, FullParticipationRecoversExactSum) {
  Rng rng(1);
  DoubleMaskingSession session(6, 3, rng);
  const std::vector<uint64_t> values = {10, 0, 7, 3, 1, 100};
  uint64_t expected = 0;
  for (int i = 0; i < 6; ++i) {
    session.Submit(i, values[static_cast<size_t>(i)]);
    expected += values[static_cast<size_t>(i)];
  }
  const std::optional<uint64_t> sum = session.RecoverSum();
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, expected);
}

TEST(DoubleMaskingTest, SurvivesDropouts) {
  Rng rng(2);
  DoubleMaskingSession session(8, 4, rng);
  uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    if (i == 2 || i == 5 || i == 7) {
      session.MarkDropped(i);
      continue;
    }
    const uint64_t value = static_cast<uint64_t>(10 * (i + 1));
    session.Submit(i, value);
    expected += value;
  }
  const std::optional<uint64_t> sum = session.RecoverSum();
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, expected);  // sum over SURVIVORS only
}

TEST(DoubleMaskingTest, UnmarkedNonSubmittersCountAsDropouts) {
  Rng rng(3);
  DoubleMaskingSession session(5, 3, rng);
  session.Submit(0, 1);
  session.Submit(1, 2);
  session.Submit(4, 4);
  // Clients 2 and 3 silently never submit.
  const std::optional<uint64_t> sum = session.RecoverSum();
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, 7u);
}

TEST(DoubleMaskingTest, TooFewSurvivorsIsUnrecoverableByDesign) {
  Rng rng(4);
  DoubleMaskingSession session(6, 4, rng);
  session.Submit(0, 5);
  session.Submit(1, 5);
  session.Submit(2, 5);  // only 3 survivors < threshold 4
  EXPECT_FALSE(session.RecoverSum().has_value());
}

TEST(DoubleMaskingTest, SubmissionsHideValues) {
  Rng rng(5);
  DoubleMaskingSession session(4, 2, rng);
  // All clients submit tiny values; the masked submissions must look
  // nothing like them and must all be distinct.
  std::set<uint64_t> masked;
  for (int i = 0; i < 4; ++i) {
    masked.insert(session.Submit(i, static_cast<uint64_t>(i % 2)));
  }
  EXPECT_EQ(masked.size(), 4u);
  for (const uint64_t m : masked) EXPECT_GT(m, 1000u);
}

TEST(DoubleMaskingTest, BitCountAggregationEndToEnd) {
  // The intended integration: per-bit one-counts aggregated without the
  // server seeing individual bits, tolerating dropouts.
  Rng rng(6);
  const int n = 20;
  DoubleMaskingSession session(n, 10, rng);
  uint64_t expected_ones = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      session.MarkDropped(i);
      continue;
    }
    const uint64_t bit = static_cast<uint64_t>((i * 13) % 2);
    session.Submit(i, bit);
    expected_ones += bit;
  }
  const std::optional<uint64_t> sum = session.RecoverSum();
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, expected_ones);
}

TEST(DoubleMaskingTest, WrapAroundSumsStayInField) {
  Rng rng(7);
  DoubleMaskingSession session(3, 2, rng);
  const uint64_t big = kShamirPrime - 5;
  session.Submit(0, big);
  session.Submit(1, 10);
  session.Submit(2, 0);
  const std::optional<uint64_t> sum = session.RecoverSum();
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(*sum, 5u);  // (p - 5 + 10) mod p
}

TEST(DoubleMaskingDeathTest, ProtocolMisuseAborts) {
  Rng rng(8);
  DoubleMaskingSession session(3, 2, rng);
  session.Submit(0, 1);
  EXPECT_DEATH(session.Submit(0, 1), "already submitted");
  EXPECT_DEATH(session.MarkDropped(0), "submitted client");
  session.MarkDropped(1);
  EXPECT_DEATH(session.Submit(1, 1), "dropped client");
  EXPECT_DEATH(session.Submit(2, kShamirPrime), "BITPUSH_CHECK failed");
  EXPECT_DEATH(DoubleMaskingSession(3, 1, rng), "BITPUSH_CHECK failed");
  EXPECT_DEATH(DoubleMaskingSession(3, 4, rng), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
