#include <cmath>

#include <gtest/gtest.h>

#include "core/fixed_point.h"
#include "data/census.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(CensusTest, WeightsCoverFullSupport) {
  const std::vector<double>& weights = CensusAgeWeights();
  ASSERT_EQ(weights.size(), static_cast<size_t>(kCensusMaxAge + 1));
  for (const double w : weights) EXPECT_GT(w, 0.0);
}

TEST(CensusTest, DistributionMeanMatchesPaperRegime) {
  // The census-age workload of Section 4 has mean in the low-to-mid 30s.
  const double mean = CensusDistributionMean();
  EXPECT_GT(mean, 30.0);
  EXPECT_LT(mean, 38.0);
}

TEST(CensusTest, DistributionVarianceIsAdultPopulationScale) {
  const double variance = CensusDistributionVariance();
  // Std dev of a full age pyramid is ~20-23 years.
  EXPECT_GT(std::sqrt(variance), 18.0);
  EXPECT_LT(std::sqrt(variance), 26.0);
}

TEST(CensusTest, AgesFitSevenBits) {
  // b_max = 7: ages up to 90 need exactly 7 bits, so the "vacuous high
  // bits" experiments (Figure 2c) know where the information stops.
  Rng rng(1);
  const Dataset data = CensusAges(10000, rng);
  EXPECT_LE(data.truth().max, 127.0);
  EXPECT_GE(data.truth().max, 64.0);  // some elderly present
  const uint64_t max_code =
      FixedPointCodec::Integer(7).Encode(data.truth().max);
  EXPECT_EQ(FixedPointCodec::HighestSetBit(max_code), 6);
}

TEST(CensusTest, SampleMomentsConvergeToDistribution) {
  Rng rng(2);
  const Dataset data = CensusAges(200000, rng);
  EXPECT_NEAR(data.truth().mean, CensusDistributionMean(), 0.2);
  EXPECT_NEAR(data.truth().variance, CensusDistributionVariance(), 10.0);
}

TEST(CensusTest, AgesAreIntegersInRange) {
  Rng rng(3);
  const Dataset data = CensusAges(5000, rng);
  for (const double age : data.values()) {
    EXPECT_GE(age, 0.0);
    EXPECT_LE(age, static_cast<double>(kCensusMaxAge));
    EXPECT_DOUBLE_EQ(age, std::floor(age));
  }
}

TEST(CensusTest, PyramidShapeChildrenOutnumberElderly) {
  const std::vector<double>& weights = CensusAgeWeights();
  double children = 0.0;   // 0-17
  double elderly = 0.0;    // 75+
  for (int age = 0; age <= 17; ++age) children += weights[age];
  for (int age = 75; age <= kCensusMaxAge; ++age) elderly += weights[age];
  EXPECT_GT(children, 2.0 * elderly);
}

TEST(CensusTest, DeterministicSampling) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(CensusAges(500, a).values(), CensusAges(500, b).values());
}

}  // namespace
}  // namespace bitpush
