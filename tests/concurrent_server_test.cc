#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "federated/concurrent_server.h"

namespace bitpush {
namespace {

TEST(ConcurrentAggregatorTest, SingleThreadMatchesPlainHistogram) {
  ConcurrentAggregator aggregator(4);
  BitHistogram expected(4);
  for (int i = 0; i < 100; ++i) {
    aggregator.Add(i % 4, i % 2);
    expected.Add(i % 4, i % 2);
  }
  const BitHistogram snapshot = aggregator.Snapshot();
  EXPECT_EQ(snapshot.totals(), expected.totals());
  EXPECT_EQ(snapshot.one_counts(), expected.one_counts());
}

TEST(ConcurrentAggregatorTest, ParallelAddsLoseNothing) {
  ConcurrentAggregator aggregator(8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&aggregator, t] {
      for (int i = 0; i < kPerThread; ++i) {
        aggregator.Add((t + i) % 8, (t ^ i) & 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(aggregator.TotalReports(), kThreads * kPerThread);
}

TEST(ConcurrentAggregatorTest, ParallelBatchMergesLoseNothing) {
  ConcurrentAggregator aggregator(4);
  constexpr int kThreads = 6;
  constexpr int kBatches = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&aggregator] {
      for (int batch = 0; batch < kBatches; ++batch) {
        BitHistogram local(4);
        for (int i = 0; i < 100; ++i) local.Add(i % 4, 1);
        aggregator.Merge(local);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(aggregator.TotalReports(), kThreads * kBatches * 100);
  const BitHistogram snapshot = aggregator.Snapshot();
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(snapshot.ones(j), snapshot.total(j));  // all ones
  }
}

TEST(ConcurrentAggregatorTest, SnapshotIsIndependentCopy) {
  ConcurrentAggregator aggregator(2);
  aggregator.Add(0, 1);
  BitHistogram snapshot = aggregator.Snapshot();
  aggregator.Add(1, 1);
  EXPECT_EQ(snapshot.TotalReports(), 1);
  EXPECT_EQ(aggregator.TotalReports(), 2);
}

TEST(ConcurrentAggregatorTest, ConcurrentSnapshotsDuringIngestion) {
  ConcurrentAggregator aggregator(4);
  std::thread writer([&aggregator] {
    for (int i = 0; i < 50000; ++i) aggregator.Add(i % 4, 1);
  });
  // Snapshots taken mid-ingestion must always be internally consistent:
  // ones == totals since every report is a 1.
  for (int probe = 0; probe < 50; ++probe) {
    const BitHistogram snapshot = aggregator.Snapshot();
    int64_t ones = 0;
    for (int j = 0; j < 4; ++j) ones += snapshot.ones(j);
    EXPECT_EQ(ones, snapshot.TotalReports());
  }
  writer.join();
  EXPECT_EQ(aggregator.TotalReports(), 50000);
}

}  // namespace
}  // namespace bitpush
