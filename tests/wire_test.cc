// bitpush-lint: allow(privacy-metering): codec round-trip tests build synthetic reports; no client value is behind them

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "federated/wire.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(WireTest, RequestRoundTrip) {
  const BitRequest request{42, 7, 13, 1.25};
  std::vector<uint8_t> buffer;
  EncodeBitRequest(request, &buffer);
  EXPECT_EQ(buffer.size(), kBitRequestWireSize);

  size_t offset = 0;
  BitRequest decoded;
  ASSERT_TRUE(DecodeBitRequest(buffer, &offset, &decoded));
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(decoded.round_id, 42);
  EXPECT_EQ(decoded.value_id, 7);
  EXPECT_EQ(decoded.bit_index, 13);
  EXPECT_DOUBLE_EQ(decoded.rr_epsilon, 1.25);
}

TEST(WireTest, ReportRoundTrip) {
  const BitReport report{987654321, 15, 1};
  std::vector<uint8_t> buffer;
  EncodeBitReport(report, &buffer);
  EXPECT_EQ(buffer.size(), kBitReportWireSize);

  size_t offset = 0;
  BitReport decoded;
  ASSERT_TRUE(DecodeBitReport(buffer, &offset, &decoded));
  EXPECT_EQ(decoded.client_id, 987654321);
  EXPECT_EQ(decoded.bit_index, 15);
  EXPECT_EQ(decoded.bit, 1);
}

TEST(WireTest, ConsecutiveMessagesShareABuffer) {
  std::vector<uint8_t> buffer;
  EncodeBitRequest(BitRequest{1, 2, 3, 0.5}, &buffer);
  EncodeBitRequest(BitRequest{4, 5, 6, 0.0}, &buffer);
  size_t offset = 0;
  BitRequest first;
  BitRequest second;
  ASSERT_TRUE(DecodeBitRequest(buffer, &offset, &first));
  ASSERT_TRUE(DecodeBitRequest(buffer, &offset, &second));
  EXPECT_EQ(first.round_id, 1);
  EXPECT_EQ(second.round_id, 4);
  EXPECT_EQ(offset, buffer.size());
}

TEST(WireTest, TruncatedInputRejectedWithoutSideEffects) {
  std::vector<uint8_t> buffer;
  EncodeBitReport(BitReport{1, 2, 0}, &buffer);
  buffer.pop_back();
  size_t offset = 0;
  BitReport out{99, 99, 0};
  EXPECT_FALSE(DecodeBitReport(buffer, &offset, &out));
  EXPECT_EQ(offset, 0u);
  EXPECT_EQ(out.client_id, 99);  // untouched
}

TEST(WireTest, MalformedBitValueRejected) {
  std::vector<uint8_t> buffer;
  EncodeBitReport(BitReport{1, 2, 1}, &buffer);
  buffer.back() = 2;  // corrupt the payload bit
  size_t offset = 0;
  BitReport out;
  EXPECT_FALSE(DecodeBitReport(buffer, &offset, &out));
}

TEST(WireTest, BatchRoundTrip) {
  std::vector<BitReport> reports;
  for (int i = 0; i < 100; ++i) {
    reports.push_back(BitReport{i, i % 16, i % 2});
  }
  std::vector<uint8_t> buffer;
  EncodeReportBatch(reports, &buffer);
  EXPECT_EQ(buffer.size(), 5 + 100 * kBitReportWireSize);
  EXPECT_EQ(buffer[0], kWireFormatVersion);

  std::vector<BitReport> decoded;
  ASSERT_TRUE(DecodeReportBatch(buffer, &decoded));
  ASSERT_EQ(decoded.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(decoded[static_cast<size_t>(i)].client_id, i);
    EXPECT_EQ(decoded[static_cast<size_t>(i)].bit, i % 2);
  }
}

TEST(WireTest, EmptyBatch) {
  std::vector<uint8_t> buffer;
  EncodeReportBatch({}, &buffer);
  std::vector<BitReport> decoded = {BitReport{}};
  ASSERT_TRUE(DecodeReportBatch(buffer, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(WireTest, BatchCountOverrunRejected) {
  std::vector<uint8_t> buffer;
  EncodeReportBatch({BitReport{1, 2, 1}}, &buffer);
  buffer[1] = 200;  // claim 200 reports, provide 1
  std::vector<BitReport> decoded;
  EXPECT_FALSE(DecodeReportBatch(buffer, &decoded));
}

TEST(WireTest, RequestBatchRoundTrip) {
  std::vector<BitRequest> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back(BitRequest{i, i * 2, i % 16, 0.25 * i});
  }
  std::vector<uint8_t> buffer;
  EncodeRequestBatch(requests, &buffer);
  EXPECT_EQ(buffer.size(), 5 + 40 * kBitRequestWireSize);
  EXPECT_EQ(buffer[0], kWireFormatVersion);
  std::vector<BitRequest> decoded;
  ASSERT_TRUE(DecodeRequestBatch(buffer, &decoded));
  ASSERT_EQ(decoded.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(decoded[static_cast<size_t>(i)].round_id, i);
    EXPECT_DOUBLE_EQ(decoded[static_cast<size_t>(i)].rr_epsilon, 0.25 * i);
  }
}

TEST(WireTest, RequestBatchCountOverrunRejected) {
  std::vector<uint8_t> buffer;
  EncodeRequestBatch({BitRequest{1, 1, 1, 0.5}}, &buffer);
  buffer[1] = 99;
  std::vector<BitRequest> decoded;
  EXPECT_FALSE(DecodeRequestBatch(buffer, &decoded));
}

TEST(WireTest, UnknownFormatVersionRejected) {
  std::vector<uint8_t> report_buffer;
  EncodeReportBatch({BitReport{1, 2, 1}}, &report_buffer);
  report_buffer[0] = kWireFormatVersion + 1;
  std::vector<BitReport> reports;
  EXPECT_FALSE(DecodeReportBatch(report_buffer, &reports));

  std::vector<uint8_t> request_buffer;
  EncodeRequestBatch({BitRequest{1, 1, 1, 0.5}}, &request_buffer);
  request_buffer[0] = 0;
  std::vector<BitRequest> requests;
  EXPECT_FALSE(DecodeRequestBatch(request_buffer, &requests));
}

TEST(WireTest, RandomBytesNeverCrashDecoder) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(64));
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    size_t offset = 0;
    BitRequest request;
    DecodeBitRequest(junk, &offset, &request);
    offset = 0;
    BitReport report;
    if (DecodeBitReport(junk, &offset, &report)) {
      EXPECT_TRUE(report.bit == 0 || report.bit == 1);
    }
    std::vector<BitReport> batch;
    DecodeReportBatch(junk, &batch);
  }
}

TEST(WireDeathTest, EncodingValidatesFields) {
  std::vector<uint8_t> buffer;
  EXPECT_DEATH(EncodeBitReport(BitReport{1, 2, 3}, &buffer),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EncodeBitReport(BitReport{1, -1, 1}, &buffer),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EncodeBitRequest(BitRequest{1, 1, 300, 0.0}, &buffer),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
