#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/distributions.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

constexpr int kSamples = 200000;

// Draws kSamples from `sample` and returns the accumulated moments.
template <typename F>
Welford Moments(F sample) {
  Rng rng(99);
  Welford acc;
  for (int i = 0; i < kSamples; ++i) acc.Add(sample(rng));
  return acc;
}

TEST(DistributionsTest, UniformMomentsAndSupport) {
  const Welford acc =
      Moments([](Rng& rng) { return SampleUniform(rng, 2.0, 6.0); });
  EXPECT_NEAR(acc.mean(), 4.0, 0.02);
  EXPECT_NEAR(acc.population_variance(), 16.0 / 12.0, 0.05);
  EXPECT_GE(acc.min(), 2.0);
  EXPECT_LT(acc.max(), 6.0);
}

TEST(DistributionsTest, NormalMoments) {
  const Welford acc =
      Moments([](Rng& rng) { return SampleNormal(rng, 10.0, 3.0); });
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.population_stddev(), 3.0, 0.05);
}

TEST(DistributionsTest, NormalZeroStddevIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(SampleNormal(rng, 5.0, 0.0), 5.0);
}

TEST(DistributionsTest, ExponentialMomentsAndPositivity) {
  const Welford acc =
      Moments([](Rng& rng) { return SampleExponential(rng, 4.0); });
  EXPECT_NEAR(acc.mean(), 4.0, 0.1);
  EXPECT_NEAR(acc.population_variance(), 16.0, 1.0);
  EXPECT_GE(acc.min(), 0.0);
}

TEST(DistributionsTest, LaplaceMoments) {
  const Welford acc =
      Moments([](Rng& rng) { return SampleLaplace(rng, 1.0, 2.0); });
  EXPECT_NEAR(acc.mean(), 1.0, 0.05);
  // Var = 2 * scale^2 = 8.
  EXPECT_NEAR(acc.population_variance(), 8.0, 0.5);
}

TEST(DistributionsTest, LaplaceIsSymmetric) {
  Rng rng(3);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleLaplace(rng, 0.0, 1.0) > 0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, 0.5, 0.01);
}

TEST(DistributionsTest, ParetoSupportAndMean) {
  // Shape 3 has finite mean scale * shape / (shape - 1) = 1.5.
  const Welford acc =
      Moments([](Rng& rng) { return SamplePareto(rng, 1.0, 3.0); });
  EXPECT_GE(acc.min(), 1.0);
  EXPECT_NEAR(acc.mean(), 1.5, 0.05);
}

TEST(DistributionsTest, ParetoHeavyTailProducesExtremes) {
  Rng rng(5);
  double max_seen = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    max_seen = std::max(max_seen, SamplePareto(rng, 1.0, 1.05));
  }
  // A shape-1.05 tail reliably produces values orders of magnitude above
  // the scale in 200k draws.
  EXPECT_GT(max_seen, 1000.0);
}

TEST(DistributionsTest, LognormalMedian) {
  Rng rng(7);
  int below = 0;
  const double median = std::exp(2.0);
  for (int i = 0; i < kSamples; ++i) {
    if (SampleLognormal(rng, 2.0, 0.5) < median) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kSamples, 0.5, 0.01);
}

TEST(DistributionsTest, DiscreteSamplerMatchesWeights) {
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  const DiscreteSampler sampler(weights);
  Rng rng(11);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kSamples), 0.6, 0.01);
}

TEST(DistributionsTest, DiscreteSamplerSingleBucket) {
  const DiscreteSampler sampler({5.0});
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(DistributionsDeathTest, DiscreteSamplerRejectsBadWeights) {
  Rng rng(1);
  EXPECT_DEATH(DiscreteSampler({0.0, 0.0}), "BITPUSH_CHECK failed");
  EXPECT_DEATH(DiscreteSampler({1.0, -1.0}), "BITPUSH_CHECK failed");
  EXPECT_DEATH(DiscreteSampler({}), "BITPUSH_CHECK failed");
}

TEST(DistributionsTest, SampleDiscreteFreeFunction) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleDiscrete(rng, {0.0, 1.0, 0.0}), 1u);
  }
}

TEST(DistributionsTest, BinomialEdgeCases) {
  Rng rng(19);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0);
  EXPECT_EQ(SampleBinomial(rng, 100, 0.0), 0);
  EXPECT_EQ(SampleBinomial(rng, 100, 1.0), 100);
}

TEST(DistributionsTest, BinomialSmallNMoments) {
  Rng rng(23);
  Welford acc;
  for (int i = 0; i < kSamples; ++i) {
    acc.Add(static_cast<double>(SampleBinomial(rng, 20, 0.25)));
  }
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
  EXPECT_NEAR(acc.population_variance(), 20 * 0.25 * 0.75, 0.1);
}

TEST(DistributionsTest, BinomialLargeNUsesBoundedApproximation) {
  Rng rng(29);
  Welford acc;
  const int64_t n = 100000;
  for (int i = 0; i < 2000; ++i) {
    const int64_t draw = SampleBinomial(rng, n, 0.5);
    EXPECT_GE(draw, 0);
    EXPECT_LE(draw, n);
    acc.Add(static_cast<double>(draw));
  }
  EXPECT_NEAR(acc.mean(), 50000.0, 50.0);
  EXPECT_NEAR(acc.population_stddev(), std::sqrt(25000.0), 25.0);
}

}  // namespace
}  // namespace bitpush
