#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/fixed_point.h"
#include "core/range_tree.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/quantiles.h"

namespace bitpush {
namespace {

RangeTreeConfig Config(int levels) {
  RangeTreeConfig config;
  config.levels = levels;
  return config;
}

// Exact fraction of codewords in [lo, hi].
double ExactFraction(const std::vector<uint64_t>& codewords, uint64_t lo,
                     uint64_t hi) {
  int64_t count = 0;
  for (const uint64_t c : codewords) {
    if (c >= lo && c <= hi) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(codewords.size());
}

std::vector<uint64_t> UniformCodewords(int64_t n, uint64_t domain,
                                       Rng& rng) {
  std::vector<uint64_t> codewords(static_cast<size_t>(n));
  for (uint64_t& c : codewords) c = rng.NextBelow(domain);
  return codewords;
}

TEST(RangeTreeTest, NodeFractionsMatchUniformData) {
  Rng rng(1);
  const std::vector<uint64_t> codewords =
      UniformCodewords(100000, 256, rng);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(8), rng);
  // Level 1: two halves, ~0.5 each; level 3: eighths ~0.125.
  EXPECT_NEAR(tree.NodeFraction(1, 0), 0.5, 0.02);
  EXPECT_NEAR(tree.NodeFraction(1, 1), 0.5, 0.02);
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_NEAR(tree.NodeFraction(3, v), 0.125, 0.02) << v;
  }
}

TEST(RangeTreeTest, RangeFractionMatchesExactOnAlignedRanges) {
  Rng rng(2);
  const std::vector<uint64_t> codewords =
      UniformCodewords(100000, 256, rng);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(8), rng);
  EXPECT_NEAR(tree.RangeFraction(0, 127),
              ExactFraction(codewords, 0, 127), 0.03);
  EXPECT_NEAR(tree.RangeFraction(64, 127),
              ExactFraction(codewords, 64, 127), 0.03);
  EXPECT_NEAR(tree.RangeFraction(0, 255), 1.0, 0.03);
}

TEST(RangeTreeTest, RangeFractionOnArbitraryRanges) {
  Rng data_rng(3);
  const Dataset ages = CensusAges(200000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());
  Rng rng(4);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(7), rng);
  // Working-age share [18, 64], an unaligned range needing a multi-node
  // cover.
  EXPECT_NEAR(tree.RangeFraction(18, 64),
              ExactFraction(codewords, 18, 64), 0.05);
  EXPECT_NEAR(tree.RangeFraction(65, 127),
              ExactFraction(codewords, 65, 127), 0.05);
}

TEST(RangeTreeTest, SingletonRangeUsesLeafLevel) {
  // All mass at codeword 5.
  const std::vector<uint64_t> codewords(5000, 5);
  Rng rng(5);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(4), rng);
  EXPECT_NEAR(tree.RangeFraction(5, 5), 1.0, 1e-9);
  EXPECT_NEAR(tree.RangeFraction(6, 6), 0.0, 1e-9);
  EXPECT_NEAR(tree.RangeFraction(0, 4), 0.0, 1e-9);
}

TEST(RangeTreeTest, QuantilesMatchExactOnCensus) {
  Rng data_rng(6);
  const Dataset ages = CensusAges(200000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());
  Rng rng(7);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(7), rng);
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(tree.Quantile(q), Quantile(ages.values(), q), 4.0)
        << "q=" << q;
  }
}

TEST(RangeTreeTest, QuantilesAreMonotone) {
  Rng rng(8);
  const std::vector<uint64_t> codewords =
      UniformCodewords(50000, 1024, rng);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(10), rng);
  double previous = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const double value = tree.Quantile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(RangeTreeTest, DpNoiseStillGivesUsableMedian) {
  Rng data_rng(9);
  const Dataset ages = CensusAges(300000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());
  RangeTreeConfig config = Config(7);
  config.epsilon = 1.0;
  Rng rng(10);
  const RangeTreeResult tree = EstimateRangeTree(codewords, config, rng);
  EXPECT_NEAR(tree.Quantile(0.5), Quantile(ages.values(), 0.5), 8.0);
}

TEST(RangeTreeTest, EveryClientReportsOnce) {
  Rng rng(11);
  const std::vector<uint64_t> codewords = UniformCodewords(9999, 16, rng);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(4), rng);
  int64_t total = 0;
  for (int level = 1; level <= 4; ++level) {
    for (uint64_t v = 0; v < (uint64_t{1} << level); ++v) {
      total += tree.NodeReports(level, v);
    }
  }
  EXPECT_EQ(total, 9999);
}

TEST(RangeTreeDeathTest, InvalidInputsAbort) {
  Rng rng(12);
  EXPECT_DEATH(EstimateRangeTree({}, Config(4), rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateRangeTree({16}, Config(4), rng),
               "codeword outside the tree domain");
  EXPECT_DEATH(EstimateRangeTree({0}, Config(0), rng),
               "BITPUSH_CHECK failed");
  const std::vector<uint64_t> codewords(100, 1);
  const RangeTreeResult tree =
      EstimateRangeTree(codewords, Config(4), rng);
  EXPECT_DEATH(tree.RangeFraction(3, 2), "BITPUSH_CHECK failed");
  EXPECT_DEATH(tree.RangeFraction(0, 16), "BITPUSH_CHECK failed");
  EXPECT_DEATH(tree.NodeFraction(0, 0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(tree.Quantile(1.5), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
