// Tests for the value-level baselines: Duchi randomized rounding, the
// piecewise mechanism, the Laplace mechanism, and subtractive dithering.
// The central property for all of them is unbiasedness of the per-client
// report, which makes the population average a consistent mean estimator.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ldp/ding.h"
#include "ldp/dithering.h"
#include "ldp/duchi.h"
#include "ldp/laplace.h"
#include "ldp/piecewise.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

// Mean of many privatized reports for a fixed input x.
double ReportMean(const ScalarMechanism& mechanism, double x, int n,
                  uint64_t seed) {
  Rng rng(seed);
  Welford acc;
  for (int i = 0; i < n; ++i) acc.Add(mechanism.Privatize(x, rng));
  return acc.mean();
}

struct UnbiasednessCase {
  const char* label;
  std::shared_ptr<ScalarMechanism> mechanism;
  double tolerance;
};

class MechanismUnbiasednessTest
    : public ::testing::TestWithParam<UnbiasednessCase> {};

TEST_P(MechanismUnbiasednessTest, ReportsAreUnbiased) {
  const UnbiasednessCase& test_case = GetParam();
  for (const double x : {0.0, 17.0, 100.0, 200.0, 255.0}) {
    EXPECT_NEAR(ReportMean(*test_case.mechanism, x, 300000, 42), x,
                test_case.tolerance)
        << test_case.label << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismUnbiasednessTest,
    ::testing::Values(
        UnbiasednessCase{"duchi_eps1",
                         std::make_shared<DuchiMechanism>(1.0, 0.0, 255.0),
                         3.0},
        UnbiasednessCase{"duchi_nodp",
                         std::make_shared<DuchiMechanism>(0.0, 0.0, 255.0),
                         1.5},
        UnbiasednessCase{"piecewise_eps1",
                         std::make_shared<PiecewiseMechanism>(1.0, 0.0,
                                                              255.0),
                         3.0},
        UnbiasednessCase{"laplace_eps1",
                         std::make_shared<LaplaceMechanism>(1.0, 0.0, 255.0),
                         3.0},
        UnbiasednessCase{"dithering_nodp",
                         std::make_shared<SubtractiveDithering>(0.0, 0.0,
                                                                255.0),
                         1.0},
        UnbiasednessCase{"dithering_eps1",
                         std::make_shared<SubtractiveDithering>(1.0, 0.0,
                                                                255.0),
                         3.0},
        UnbiasednessCase{"ding_eps1",
                         std::make_shared<DingMechanism>(1.0, 0.0, 255.0),
                         3.0}),
    [](const ::testing::TestParamInfo<UnbiasednessCase>& info) {
      return info.param.label;
    });

TEST(DuchiTest, NameReflectsPrivacy) {
  EXPECT_EQ(DuchiMechanism(1.0, 0.0, 1.0).name(), "duchi");
  EXPECT_EQ(DuchiMechanism(0.0, 0.0, 1.0).name(), "randomized_rounding");
}

TEST(DuchiTest, OutputsAreScaledBits) {
  // Without RR, a Duchi report is either low or high.
  const DuchiMechanism mechanism(0.0, 10.0, 20.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double r = mechanism.Privatize(14.0, rng);
    EXPECT_TRUE(r == 10.0 || r == 20.0) << r;
  }
}

TEST(DuchiTest, ClampsOutOfRangeInputs) {
  const DuchiMechanism mechanism(0.0, 0.0, 10.0);
  Rng rng(2);
  // x far above the range behaves like x = high.
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(mechanism.Privatize(1e9, rng), 10.0);
    EXPECT_DOUBLE_EQ(mechanism.Privatize(-1e9, rng), 0.0);
  }
}

TEST(PiecewiseTest, OutputBoundedByC) {
  const PiecewiseMechanism mechanism(1.0, 0.0, 1.0);
  const double c = mechanism.output_bound();
  EXPECT_GT(c, 1.0);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double scaled =
        2.0 * mechanism.Privatize(rng.NextDouble(), rng) - 1.0;
    EXPECT_GE(scaled, -c - 1e-9);
    EXPECT_LE(scaled, c + 1e-9);
  }
}

TEST(PiecewiseTest, ConcentratesAroundInputForLargeEpsilon) {
  const PiecewiseMechanism mechanism(6.0, 0.0, 1.0);
  Rng rng(4);
  Welford acc;
  for (int i = 0; i < 20000; ++i) {
    acc.Add(std::abs(mechanism.Privatize(0.5, rng) - 0.5));
  }
  // At eps=6 most mass is in the narrow central interval.
  EXPECT_LT(acc.mean(), 0.2);
}

TEST(PiecewiseTest, VarianceShrinksWithEpsilon) {
  Rng rng(5);
  auto variance_at = [&rng](double eps) {
    const PiecewiseMechanism mechanism(eps, 0.0, 1.0);
    Welford acc;
    for (int i = 0; i < 50000; ++i) acc.Add(mechanism.Privatize(0.5, rng));
    return acc.population_variance();
  };
  EXPECT_GT(variance_at(0.5), variance_at(2.0));
  EXPECT_GT(variance_at(2.0), variance_at(5.0));
}

TEST(LaplaceTest, ScaleMatchesSensitivityOverEpsilon) {
  const LaplaceMechanism mechanism(2.0, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(mechanism.scale(), 50.0);
}

TEST(LaplaceTest, EmpiricalVarianceIsTwoScaleSquared) {
  const LaplaceMechanism mechanism(1.0, 0.0, 10.0);
  Rng rng(6);
  Welford acc;
  for (int i = 0; i < 200000; ++i) acc.Add(mechanism.Privatize(5.0, rng));
  EXPECT_NEAR(acc.mean(), 5.0, 0.2);
  EXPECT_NEAR(acc.population_variance(), 2.0 * 10.0 * 10.0, 15.0);
}

TEST(DitheringTest, WithoutNoiseErrorBoundedByRange) {
  // |b + h - 0.5 - x| <= 0.5 in scaled space for subtractive dithering.
  const SubtractiveDithering mechanism(0.0, 0.0, 1.0);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_LE(std::abs(mechanism.Privatize(x, rng) - x), 0.5 + 1e-12);
  }
}

TEST(DitheringTest, PerfectForExtremeInputsWithoutNoise) {
  // x = 1 always yields b = 1 -> estimate = h + 0.5, mean 1; the error is
  // purely the dither, bounded by 0.5.
  const SubtractiveDithering mechanism(0.0, 0.0, 1.0);
  Rng rng(8);
  Welford acc;
  for (int i = 0; i < 100000; ++i) acc.Add(mechanism.Privatize(1.0, rng));
  EXPECT_NEAR(acc.mean(), 1.0, 0.005);
}

TEST(DitheringTest, EstimateMeanOnPopulation) {
  Rng rng(9);
  const Dataset data = UniformData(50000, 0.0, 200.0, rng);
  const SubtractiveDithering mechanism(0.0, 0.0, 255.0);
  const double estimate = mechanism.EstimateMean(data.values(), rng);
  EXPECT_NEAR(estimate, data.truth().mean, 1.5);
}

TEST(DingTest, ReportProbabilityIsEpsLdp) {
  // The likelihood ratio between any two inputs' report distributions is
  // bounded by e^eps, with equality at the endpoints.
  for (const double eps : {0.5, 1.0, 2.0}) {
    const DingMechanism mechanism(eps, 0.0, 1.0);
    const double p0 = mechanism.ReportProbability(0.0);
    const double p1 = mechanism.ReportProbability(1.0);
    EXPECT_NEAR(p1 / p0, std::exp(eps), 1e-9);
    EXPECT_NEAR((1.0 - p0) / (1.0 - p1), std::exp(eps), 1e-9);
  }
}

TEST(DingTest, ReportProbabilityLinearInInput) {
  const DingMechanism mechanism(1.0, 0.0, 100.0);
  const double p0 = mechanism.ReportProbability(0.0);
  const double p50 = mechanism.ReportProbability(50.0);
  const double p100 = mechanism.ReportProbability(100.0);
  EXPECT_NEAR(p50, (p0 + p100) / 2.0, 1e-12);
}

TEST(MechanismTest, LooseBoundsInflateBaselineError) {
  // The motivation for adaptive bit-pushing (Section 2): variance of
  // range-scaled methods grows with (H - L)^2. Same data, two bounds.
  Rng rng(10);
  const Dataset data = UniformData(20000, 0.0, 100.0, rng);
  auto rmse_with_bound = [&](double high) {
    const SubtractiveDithering mechanism(0.0, 0.0, high);
    Welford acc;
    Rng local(11);
    for (int rep = 0; rep < 30; ++rep) {
      const double est = mechanism.EstimateMean(data.values(), local);
      acc.Add((est - data.truth().mean) * (est - data.truth().mean));
    }
    return std::sqrt(acc.mean());
  };
  const double tight = rmse_with_bound(128.0);
  const double loose = rmse_with_bound(65536.0);
  EXPECT_GT(loose, 20.0 * tight);
}

TEST(MechanismDeathTest, InvalidRangesAbort) {
  EXPECT_DEATH(DuchiMechanism(1.0, 5.0, 5.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(PiecewiseMechanism(0.0, 0.0, 1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(LaplaceMechanism(-1.0, 0.0, 1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(SubtractiveDithering(1.0, 2.0, 1.0), "BITPUSH_CHECK failed");
}

TEST(MechanismDeathTest, EstimateMeanRequiresClients) {
  const DuchiMechanism mechanism(1.0, 0.0, 1.0);
  Rng rng(1);
  EXPECT_DEATH(mechanism.EstimateMean({}, rng), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
