// Write-ahead journal and snapshot format tests: frame round-trips, the
// torn-tail-vs-hard-corruption distinction, sequence discipline, stale
// pre-snapshot prefixes, and the atomic snapshot file cycle.

// bitpush-lint: allow(privacy-metering): format round-trip tests build synthetic reports; no client value is behind them

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/journal.h"
#include "persist/snapshot.h"

namespace bitpush {
namespace {

class JournalFileTest : public ::testing::Test {
 protected:
  JournalFileTest() {
    dir_ = ::testing::TempDir() + "/journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/journal.wal";
  }
  ~JournalFileTest() override { std::filesystem::remove_all(dir_); }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    std::FILE* file = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    if (!bytes.empty()) {
      // fwrite's first argument is declared nonnull; an empty vector's
      // data() may be null (truncation-to-zero cases hit this).
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file),
                bytes.size());
    }
    std::fclose(file);
  }

  std::vector<uint8_t> SampleJournal(uint64_t first_seq, int count) {
    std::vector<uint8_t> bytes;
    for (int i = 0; i < count; ++i) {
      std::vector<uint8_t> payload;
      EncodeQueryStartedRecord(QueryStartedRecord{i, i % 3, 100 + i},
                               &payload);
      AppendJournalFrame(JournalRecordType::kQueryStarted,
                         first_seq + static_cast<uint64_t>(i), payload,
                         &bytes);
    }
    return bytes;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(JournalFileTest, MissingFileIsAnEmptyJournal) {
  JournalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadJournal(path_, 0, &result, &error)) << error;
  EXPECT_TRUE(result.records.empty());
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.next_seq, 0u);
}

TEST_F(JournalFileTest, WriterRoundTripsThroughReader) {
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path_, 5, &error)) << error;
    writer.set_fsync(false);
    for (int i = 0; i < 4; ++i) {
      std::vector<uint8_t> payload;
      EncodeCampaignTickRecord(CampaignTickRecord{i}, &payload);
      ASSERT_TRUE(writer.Append(JournalRecordType::kCampaignTick, payload));
    }
    EXPECT_EQ(writer.next_seq(), 9u);
    EXPECT_EQ(writer.appended_records(), 4);
  }
  JournalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadJournal(path_, 5, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.next_seq, 9u);
  for (int i = 0; i < 4; ++i) {
    const JournalRecord& record = result.records[static_cast<size_t>(i)];
    EXPECT_EQ(record.seq, 5u + static_cast<uint64_t>(i));
    EXPECT_EQ(record.type, JournalRecordType::kCampaignTick);
    CampaignTickRecord tick;
    ASSERT_TRUE(DecodeCampaignTickRecord(record.payload, &tick));
    EXPECT_EQ(tick.tick, i);
  }
}

TEST_F(JournalFileTest, EveryTruncationIsATornTailOrAShorterCleanFile) {
  const std::vector<uint8_t> full = SampleJournal(0, 3);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteBytes(std::vector<uint8_t>(full.begin(),
                                    full.begin() + static_cast<ptrdiff_t>(cut)));
    JournalReadResult result;
    std::string error;
    ASSERT_TRUE(ReadJournal(path_, 0, &result, &error))
        << "cut at " << cut << ": " << error;
    // The clean prefix holds only whole frames; the rest is a torn tail.
    EXPECT_EQ(result.torn_tail, cut != result.clean_length) << cut;
    EXPECT_LE(result.clean_length, cut) << cut;
    EXPECT_EQ(result.next_seq, result.records.size()) << cut;
  }
}

TEST_F(JournalFileTest, BitFlipsNeverSurviveAsCleanRecords) {
  // A flipped bit either surfaces as a hard error (CRC, version, type,
  // sequence) or — when it inflates a length field past the end of the
  // file — as a torn tail that drops the damaged frame. It must never
  // produce a full-length journal of silently altered records.
  const std::vector<uint8_t> full = SampleJournal(0, 2);
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::vector<uint8_t> corrupt = full;
    corrupt[pos] ^= 0x01;
    WriteBytes(corrupt);
    JournalReadResult result;
    std::string error;
    if (ReadJournal(path_, 0, &result, &error)) {
      EXPECT_TRUE(result.torn_tail) << "flip at " << pos;
      EXPECT_LT(result.records.size(), 2u) << "flip at " << pos;
    } else {
      EXPECT_FALSE(error.empty()) << "flip at " << pos;
    }
  }
}

TEST_F(JournalFileTest, DuplicateAndGappedSequencesRejected) {
  std::vector<uint8_t> payload;
  EncodeCampaignTickRecord(CampaignTickRecord{0}, &payload);

  std::vector<uint8_t> duplicate;
  AppendJournalFrame(JournalRecordType::kCampaignTick, 0, payload, &duplicate);
  AppendJournalFrame(JournalRecordType::kCampaignTick, 0, payload, &duplicate);
  WriteBytes(duplicate);
  JournalReadResult result;
  std::string error;
  EXPECT_FALSE(ReadJournal(path_, 0, &result, &error));

  std::vector<uint8_t> gapped;
  AppendJournalFrame(JournalRecordType::kCampaignTick, 0, payload, &gapped);
  AppendJournalFrame(JournalRecordType::kCampaignTick, 2, payload, &gapped);
  WriteBytes(gapped);
  EXPECT_FALSE(ReadJournal(path_, 0, &result, &error));
}

TEST_F(JournalFileTest, StalePreSnapshotPrefixIsSkipped) {
  // A crash between the snapshot rename and the journal truncation leaves
  // records the snapshot already covers; they are dropped, and the journal
  // resumes at the snapshot's sequence.
  WriteBytes(SampleJournal(0, 6));
  JournalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadJournal(path_, 4, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].seq, 4u);
  EXPECT_EQ(result.next_seq, 6u);

  // A journal that starts *past* the snapshot sequence lost records: error.
  WriteBytes(SampleJournal(3, 2));
  EXPECT_FALSE(ReadJournal(path_, 1, &result, &error));
}

TEST(JournalPayloadTest, RecordCodecsRoundTrip) {
  {
    const QueryStartedRecord record{3, 1, 42};
    std::vector<uint8_t> payload;
    EncodeQueryStartedRecord(record, &payload);
    QueryStartedRecord decoded;
    ASSERT_TRUE(DecodeQueryStartedRecord(payload, &decoded));
    EXPECT_EQ(decoded, record);
    payload.push_back(0);  // trailing bytes must be rejected
    EXPECT_FALSE(DecodeQueryStartedRecord(payload, &decoded));
  }
  {
    const CohortAssignedRecord record{7, {2, 3, 5, 8, 13}};
    std::vector<uint8_t> payload;
    EncodeCohortAssignedRecord(record, &payload);
    CohortAssignedRecord decoded;
    ASSERT_TRUE(DecodeCohortAssignedRecord(payload, &decoded));
    EXPECT_EQ(decoded, record);
  }
  {
    const MeterChargeRecord record{11, 42, 0.75, true};
    std::vector<uint8_t> payload;
    EncodeMeterChargeRecord(record, &payload);
    MeterChargeRecord decoded;
    ASSERT_TRUE(DecodeMeterChargeRecord(payload, &decoded));
    EXPECT_EQ(decoded, record);
  }
  {
    ReportAcceptedRecord record;
    record.round_id = 9;
    record.report = BitReport{123, 4, 1};
    std::vector<uint8_t> payload;
    EncodeReportAcceptedRecord(record, &payload);
    ReportAcceptedRecord decoded;
    ASSERT_TRUE(DecodeReportAcceptedRecord(payload, &decoded));
    EXPECT_EQ(decoded, record);
  }
  {
    QueryFinishedRecord record;
    record.tick = 2;
    record.query_index = 0;
    record.result.tick = 2;
    record.result.query_name = "metric";
    record.result.status = CampaignTickResult::Status::kRan;
    record.result.estimate = 36.5;
    record.result.reports = 640;
    record.final_bit_means = {0.5, 0.25, 0.125};
    std::vector<uint8_t> payload;
    EncodeQueryFinishedRecord(record, &payload);
    QueryFinishedRecord decoded;
    ASSERT_TRUE(DecodeQueryFinishedRecord(payload, &decoded));
    EXPECT_EQ(decoded.result, record.result);
    EXPECT_EQ(decoded.final_bit_means, record.final_bit_means);
  }
}

TEST(JournalPayloadTest, MeterChargeEpsilonValidation) {
  // A denied charge keeps the invalid epsilon it was denied for — replay
  // verifies it bit-for-bit against the re-executed attempt. A granted
  // charge never carries one (the meter denies invalid epsilon before
  // journaling), so decoding must reject it as corruption.
  const MeterChargeRecord denied{
      1, 2, std::numeric_limits<double>::quiet_NaN(), false};
  std::vector<uint8_t> payload;
  EncodeMeterChargeRecord(denied, &payload);
  MeterChargeRecord decoded;
  ASSERT_TRUE(DecodeMeterChargeRecord(payload, &decoded));
  EXPECT_FALSE(decoded.granted);
  EXPECT_TRUE(std::isnan(decoded.epsilon));

  for (const double bad :
       {-0.5, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    const MeterChargeRecord granted{1, 2, bad, true};
    payload.clear();
    EncodeMeterChargeRecord(granted, &payload);
    EXPECT_FALSE(DecodeMeterChargeRecord(payload, &decoded));
  }
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  CoordinatorSnapshot snapshot;
  snapshot.base_seed = 0xDEADBEEF;
  snapshot.journal_next_seq = 17;
  snapshot.completed_ticks = 4;
  snapshot.meter_blob = {1, 2, 3, 4};
  FinishedQueryEntry entry;
  entry.tick = 3;
  entry.query_index = 0;
  entry.result.tick = 3;
  entry.result.query_name = "m";
  entry.result.estimate = 1.5;
  entry.result.reports = 10;
  entry.final_bit_means = {0.5};
  snapshot.finished.push_back(entry);
  snapshot.bit_means.push_back(BitMeansEntry{7, {0.25, 0.75}});
  snapshot.open_sessions.push_back({9, 9, 9});

  std::vector<uint8_t> encoded;
  EncodeCoordinatorSnapshot(snapshot, &encoded);
  CoordinatorSnapshot decoded;
  ASSERT_TRUE(DecodeCoordinatorSnapshot(encoded, &decoded));
  EXPECT_EQ(decoded.base_seed, snapshot.base_seed);
  EXPECT_EQ(decoded.journal_next_seq, snapshot.journal_next_seq);
  EXPECT_EQ(decoded.completed_ticks, snapshot.completed_ticks);
  EXPECT_EQ(decoded.meter_blob, snapshot.meter_blob);
  ASSERT_EQ(decoded.finished.size(), 1u);
  EXPECT_EQ(decoded.finished[0].result, entry.result);
  ASSERT_EQ(decoded.bit_means.size(), 1u);
  EXPECT_EQ(decoded.bit_means[0].means, snapshot.bit_means[0].means);
  EXPECT_EQ(decoded.open_sessions, snapshot.open_sessions);
}

TEST(SnapshotTest, AnySingleBitFlipIsRejected) {
  CoordinatorSnapshot snapshot;
  snapshot.base_seed = 1;
  snapshot.journal_next_seq = 2;
  snapshot.completed_ticks = 1;
  snapshot.meter_blob = {5, 6};
  std::vector<uint8_t> encoded;
  EncodeCoordinatorSnapshot(snapshot, &encoded);
  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = encoded;
      corrupt[pos] ^= static_cast<uint8_t>(1 << bit);
      CoordinatorSnapshot out;
      EXPECT_FALSE(DecodeCoordinatorSnapshot(corrupt, &out))
          << "flip at byte " << pos << " bit " << bit;
    }
  }
}

TEST(SnapshotTest, TruncationAndTrailingGarbageRejected) {
  CoordinatorSnapshot snapshot;
  snapshot.meter_blob = {1};
  std::vector<uint8_t> encoded;
  EncodeCoordinatorSnapshot(snapshot, &encoded);
  CoordinatorSnapshot out;
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::vector<uint8_t> truncated(
        encoded.begin(), encoded.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeCoordinatorSnapshot(truncated, &out)) << cut;
  }
  std::vector<uint8_t> extended = encoded;
  extended.push_back(0);
  EXPECT_FALSE(DecodeCoordinatorSnapshot(extended, &out));
}

TEST(SnapshotTest, FileCycleIsAtomicAndFailsClosedOnCorruption) {
  const std::string dir = ::testing::TempDir() + "/snapshot_cycle";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/snapshot.bin";

  CoordinatorSnapshot out;
  bool found = true;
  std::string error;
  ASSERT_TRUE(LoadSnapshotFile(path, &out, &found, &error)) << error;
  EXPECT_FALSE(found);  // missing file: fresh state, not an error

  CoordinatorSnapshot snapshot;
  snapshot.base_seed = 77;
  snapshot.completed_ticks = 2;
  ASSERT_TRUE(WriteSnapshotFile(path, snapshot, &error)) << error;
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ASSERT_TRUE(LoadSnapshotFile(path, &out, &found, &error)) << error;
  EXPECT_TRUE(found);
  EXPECT_EQ(out.base_seed, 77u);

  // Corrupt the file on disk: loading must fail closed, not start fresh.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 8, SEEK_SET);
  std::fputc(0xFF, file);
  std::fclose(file);
  EXPECT_FALSE(LoadSnapshotFile(path, &out, &found, &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bitpush
