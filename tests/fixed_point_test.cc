#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/fixed_point.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(FixedPointTest, IntegerCodecIsIdentityOnCodewords) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  EXPECT_EQ(codec.bits(), 8);
  EXPECT_EQ(codec.max_codeword(), 255u);
  EXPECT_DOUBLE_EQ(codec.resolution(), 1.0);
  for (const uint64_t v : {0u, 1u, 100u, 255u}) {
    EXPECT_EQ(codec.Encode(static_cast<double>(v)), v);
    EXPECT_DOUBLE_EQ(codec.Decode(static_cast<double>(v)),
                     static_cast<double>(v));
  }
}

TEST(FixedPointTest, ClipsAboveAndBelow) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  EXPECT_EQ(codec.Encode(1e12), 255u);   // "truncated to 2^b - 1"
  EXPECT_EQ(codec.Encode(-50.0), 0u);
}

TEST(FixedPointTest, RangeCodecRoundTripsWithinResolution) {
  const FixedPointCodec codec(10, -100.0, 100.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = -100.0 + 200.0 * rng.NextDouble();
    const double decoded =
        codec.Decode(static_cast<double>(codec.Encode(x)));
    EXPECT_NEAR(decoded, x, codec.resolution() / 2.0 + 1e-9);
  }
}

TEST(FixedPointTest, RangeCodecEndpoints) {
  const FixedPointCodec codec(4, 10.0, 26.0);
  EXPECT_EQ(codec.Encode(10.0), 0u);
  EXPECT_EQ(codec.Encode(26.0), 15u);
  EXPECT_DOUBLE_EQ(codec.Decode(0.0), 10.0);
  EXPECT_DOUBLE_EQ(codec.Decode(15.0), 26.0);
}

TEST(FixedPointTest, EncodeRoundsToNearest) {
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  EXPECT_EQ(codec.Encode(99.4), 99u);
  EXPECT_EQ(codec.Encode(99.6), 100u);
}

TEST(FixedPointTest, DecodeAcceptsFractionalCodewords) {
  // The recombined estimate sum_j 2^j m_j is fractional; Decode must be
  // linear on it.
  const FixedPointCodec codec(8, 0.0, 510.0);
  EXPECT_DOUBLE_EQ(codec.Decode(127.5), 255.0);
}

TEST(FixedPointTest, EncodeAllMatchesEncode) {
  const FixedPointCodec codec = FixedPointCodec::Integer(6);
  const std::vector<double> values = {0.0, 3.7, 63.0, 100.0};
  const std::vector<uint64_t> encoded = codec.EncodeAll(values);
  ASSERT_EQ(encoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(encoded[i], codec.Encode(values[i]));
  }
}

TEST(FixedPointTest, BitExtraction) {
  // 0b101101 = 45.
  EXPECT_EQ(FixedPointCodec::Bit(45, 0), 1);
  EXPECT_EQ(FixedPointCodec::Bit(45, 1), 0);
  EXPECT_EQ(FixedPointCodec::Bit(45, 2), 1);
  EXPECT_EQ(FixedPointCodec::Bit(45, 3), 1);
  EXPECT_EQ(FixedPointCodec::Bit(45, 4), 0);
  EXPECT_EQ(FixedPointCodec::Bit(45, 5), 1);
  EXPECT_EQ(FixedPointCodec::Bit(45, 6), 0);
}

TEST(FixedPointTest, BitsFormLinearDecomposition) {
  // Footnote 1's property: the codeword equals sum_j 2^j bit_j.
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t v = rng.NextBelow(uint64_t{1} << 20);
    uint64_t rebuilt = 0;
    for (int j = 0; j < 20; ++j) {
      rebuilt |= static_cast<uint64_t>(FixedPointCodec::Bit(v, j)) << j;
    }
    EXPECT_EQ(rebuilt, v);
  }
}

TEST(FixedPointTest, HighestSetBit) {
  EXPECT_EQ(FixedPointCodec::HighestSetBit(0), -1);
  EXPECT_EQ(FixedPointCodec::HighestSetBit(1), 0);
  EXPECT_EQ(FixedPointCodec::HighestSetBit(2), 1);
  EXPECT_EQ(FixedPointCodec::HighestSetBit(3), 1);
  EXPECT_EQ(FixedPointCodec::HighestSetBit(90), 6);
  EXPECT_EQ(FixedPointCodec::HighestSetBit(uint64_t{1} << 51), 51);
}

TEST(FixedPointTest, MaxWidthCodecRoundTripsExactly) {
  const FixedPointCodec codec = FixedPointCodec::Integer(kMaxBits);
  const uint64_t big = (uint64_t{1} << kMaxBits) - 1;
  EXPECT_EQ(codec.Encode(static_cast<double>(big)), big);
  EXPECT_DOUBLE_EQ(codec.Decode(static_cast<double>(big)),
                   static_cast<double>(big));
}

TEST(FixedPointDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(FixedPointCodec(0, 0.0, 1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(FixedPointCodec(60, 0.0, 1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(FixedPointCodec(8, 1.0, 1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(FixedPointCodec::Bit(1, -1), "BITPUSH_CHECK failed");
  EXPECT_DEATH(FixedPointCodec::Bit(1, 64), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
