#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/streaming.h"
#include "data/census.h"
#include "rng/qmc.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(StreamingTest, EstimateUsableFromFirstReport) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  StreamingMeanEstimator estimator(codec, UniformProbabilities(4), 0.0);
  EXPECT_EQ(estimator.reports(), 0);
  EXPECT_DOUBLE_EQ(estimator.Estimate(), 0.0);
  estimator.Observe(3, 1);
  EXPECT_EQ(estimator.reports(), 1);
  EXPECT_DOUBLE_EQ(estimator.Estimate(), 8.0);  // bit 3 mean 1
}

TEST(StreamingTest, StdErrorInfiniteUntilAllBitsObserved) {
  const FixedPointCodec codec = FixedPointCodec::Integer(3);
  StreamingMeanEstimator estimator(codec, UniformProbabilities(3), 0.0);
  estimator.Observe(0, 1);
  estimator.Observe(1, 0);
  EXPECT_TRUE(std::isinf(estimator.StdError()));
  EXPECT_FALSE(estimator.AllBitsObserved());
  estimator.Observe(2, 1);
  EXPECT_TRUE(estimator.AllBitsObserved());
  EXPECT_FALSE(std::isinf(estimator.StdError()));
}

TEST(StreamingTest, ZeroProbabilityBitsDoNotBlockObservation) {
  const FixedPointCodec codec = FixedPointCodec::Integer(3);
  StreamingMeanEstimator estimator(codec, {0.5, 0.5, 0.0}, 0.0);
  estimator.Observe(0, 1);
  estimator.Observe(1, 0);
  EXPECT_TRUE(estimator.AllBitsObserved());
}

TEST(StreamingTest, ConvergesToTruthAsReportsStreamIn) {
  Rng rng(1);
  const Dataset ages = CensusAges(50000, rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<double> probabilities = GeometricProbabilities(7, 0.5);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());
  const std::vector<int> assignment = AssignBitsCentral(
      static_cast<int64_t>(codewords.size()), probabilities, rng);

  StreamingMeanEstimator estimator(codec, probabilities, 0.0);
  double error_at_2k = 0.0;
  for (size_t i = 0; i < codewords.size(); ++i) {
    const int bit_index = assignment[i];
    estimator.Observe(bit_index,
                      FixedPointCodec::Bit(codewords[i], bit_index));
    if (i + 1 == 2000) {
      error_at_2k = std::abs(estimator.Estimate() - ages.truth().mean);
    }
  }
  const double final_error =
      std::abs(estimator.Estimate() - ages.truth().mean);
  EXPECT_LT(final_error, 1.0);
  EXPECT_LT(final_error, error_at_2k + 0.5);
}

TEST(StreamingTest, ConfidenceIntervalCoversTruth) {
  // Over many streaming runs, the 95% interval should cover the truth the
  // vast majority of the time.
  Rng data_rng(2);
  const Dataset ages = CensusAges(5000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const std::vector<double> probabilities = GeometricProbabilities(7, 0.5);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());

  int covered = 0;
  const int runs = 200;
  Rng rng(3);
  for (int run = 0; run < runs; ++run) {
    const std::vector<int> assignment = AssignBitsCentral(
        static_cast<int64_t>(codewords.size()), probabilities, rng);
    StreamingMeanEstimator estimator(codec, probabilities, 0.0);
    for (size_t i = 0; i < codewords.size(); ++i) {
      estimator.Observe(assignment[i],
                        FixedPointCodec::Bit(codewords[i], assignment[i]));
    }
    const StreamingMeanEstimator::Interval interval =
        estimator.ConfidenceInterval95();
    if (ages.truth().mean >= interval.low &&
        ages.truth().mean <= interval.high) {
      ++covered;
    }
  }
  // Plug-in intervals on without-replacement sampling are conservative;
  // expect at least nominal coverage.
  EXPECT_GE(covered, static_cast<int>(0.90 * runs));
}

TEST(StreamingTest, StdErrorShrinksWithReports) {
  const FixedPointCodec codec = FixedPointCodec::Integer(2);
  StreamingMeanEstimator estimator(codec, UniformProbabilities(2), 0.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    estimator.Observe(i % 2, rng.NextBit());
  }
  const double early = estimator.StdError();
  for (int i = 0; i < 1000; ++i) {
    estimator.Observe(i % 2, rng.NextBit());
  }
  EXPECT_LT(estimator.StdError(), early);
}

TEST(StreamingTest, DpReportsAreUnbiased) {
  // Stream RR-perturbed reports of a constant value; the estimate must
  // converge to the value, not to the raw (biased) bit means.
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  const double epsilon = 1.0;
  const RandomizedResponse rr(epsilon);
  const uint64_t codeword = 10;  // 0b1010
  StreamingMeanEstimator estimator(codec, UniformProbabilities(4), epsilon);
  Rng rng(5);
  for (int i = 0; i < 200000; ++i) {
    const int bit_index = static_cast<int>(rng.NextBelow(4));
    estimator.Observe(bit_index,
                      rr.Apply(FixedPointCodec::Bit(codeword, bit_index),
                               rng));
  }
  EXPECT_NEAR(estimator.Estimate(), 10.0, 0.2);
}

TEST(StreamingDeathTest, AllocationMustMatchCodec) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  EXPECT_DEATH(StreamingMeanEstimator(codec, UniformProbabilities(3), 0.0),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
