#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"

namespace bitpush {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  BITPUSH_CHECK(true);
  BITPUSH_CHECK_EQ(1, 1);
  BITPUSH_CHECK_NE(1, 2);
  BITPUSH_CHECK_LT(1, 2);
  BITPUSH_CHECK_LE(2, 2);
  BITPUSH_CHECK_GT(3, 2);
  BITPUSH_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH({ BITPUSH_CHECK(false) << "context"; }, "context");
}

TEST(CheckDeathTest, ComparisonFailureAborts) {
  const int x = 3;
  EXPECT_DEATH({ BITPUSH_CHECK_EQ(x, 4); }, "BITPUSH_CHECK failed");
}

TEST(FlagSetTest, ParsesEveryType) {
  FlagSet flags;
  int64_t n = 5;
  double eps = 1.0;
  bool verbose = false;
  std::string label = "none";
  flags.AddInt64("n", &n, "count");
  flags.AddDouble("eps", &eps, "epsilon");
  flags.AddBool("verbose", &verbose, "verbosity");
  flags.AddString("label", &label, "label");

  const char* argv[] = {"prog", "--n=42", "--eps=0.25", "--verbose=true",
                        "--label=census"};
  flags.Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(label, "census");
}

TEST(FlagSetTest, DefaultsSurviveWhenNotPassed) {
  FlagSet flags;
  int64_t n = 7;
  flags.AddInt64("n", &n, "count");
  const char* argv[] = {"prog"};
  flags.Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(n, 7);
}

TEST(FlagSetTest, BareBoolFlagMeansTrue) {
  FlagSet flags;
  bool on = false;
  flags.AddBool("on", &on, "switch");
  const char* argv[] = {"prog", "--on"};
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(on);
}

TEST(FlagSetTest, NegativeNumbersParse) {
  FlagSet flags;
  int64_t n = 0;
  double x = 0.0;
  flags.AddInt64("n", &n, "count");
  flags.AddDouble("x", &x, "value");
  const char* argv[] = {"prog", "--n=-3", "--x=-2.5e2"};
  flags.Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(n, -3);
  EXPECT_DOUBLE_EQ(x, -250.0);
}

TEST(FlagSetTest, UsageListsFlagsWithDefaults) {
  FlagSet flags;
  int64_t n = 9;
  flags.AddInt64("clients", &n, "number of clients");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--clients"), std::string::npos);
  EXPECT_NE(usage.find("9"), std::string::npos);
  EXPECT_NE(usage.find("number of clients"), std::string::npos);
}

TEST(FlagSetDeathTest, UnknownFlagExits) {
  FlagSet flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)),
              testing::ExitedWithCode(EXIT_FAILURE), "Unknown flag");
}

TEST(FlagSetDeathTest, MalformedValueExits) {
  FlagSet flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)),
              testing::ExitedWithCode(EXIT_FAILURE), "Bad value");
}

TEST(FlagSetDeathTest, DuplicateRegistrationAborts) {
  FlagSet flags;
  int64_t a = 0;
  int64_t b = 0;
  flags.AddInt64("n", &a, "first");
  EXPECT_DEATH(flags.AddInt64("n", &b, "second"), "duplicate flag");
}

TEST(TableTest, AlignsColumns) {
  Table table({"method", "nrmse"});
  table.NewRow().AddCell("adaptive").AddDouble(0.0123);
  table.NewRow().AddCell("dithering").AddDouble(0.5);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("adaptive"), std::string::npos);
  EXPECT_NE(out.find("0.0123"), std::string::npos);
  // Three lines: header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TableTest, IntAndPrecisionFormatting) {
  Table table({"n", "x"});
  table.NewRow().AddInt(10000).AddDouble(0.123456789, 3);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("10000"), std::string::npos);
  EXPECT_NE(out.find("0.123"), std::string::npos);
  EXPECT_EQ(out.find("0.1234"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"method", "nrmse"});
  table.NewRow().AddCell("adaptive").AddDouble(0.5);
  table.NewRow().AddCell("a,b \"q\"").AddInt(3);
  EXPECT_EQ(table.ToCsv(),
            "method,nrmse\nadaptive,0.5\n\"a,b \"\"q\"\"\",3\n");
}

TEST(TableTest, WriteCsvAppends) {
  const std::string path = testing::TempDir() + "/table.csv";
  std::remove(path.c_str());
  Table table({"x"});
  table.NewRow().AddInt(1);
  ASSERT_TRUE(table.WriteCsv(path));
  ASSERT_TRUE(table.WriteCsv(path));  // appends a second copy
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "x\n1\nx\n1\n");
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table table({"x"});
  table.NewRow().AddInt(1);
  EXPECT_FALSE(table.WriteCsv("/nonexistent_dir/out.csv"));
}

TEST(TableDeathTest, OverfilledRowAborts) {
  Table table({"only"});
  table.NewRow().AddCell("a");
  EXPECT_DEATH(table.AddCell("b"), "row overflow");
}

TEST(TableDeathTest, CellBeforeRowAborts) {
  Table table({"c"});
  EXPECT_DEATH(table.AddCell("a"), "NewRow");
}

}  // namespace
}  // namespace bitpush
