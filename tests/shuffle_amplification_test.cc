#include <cmath>

#include <gtest/gtest.h>

#include "dp/shuffle_amplification.h"

namespace bitpush {
namespace {

TEST(ShuffleAmplificationTest, AmplifiesAtScale) {
  const PrivacyBudget central =
      ShuffleAmplifiedBudget(1.0, 100000, 1e-6);
  EXPECT_LT(central.epsilon, 0.2);
  EXPECT_GT(central.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(central.delta, 1e-6);
}

TEST(ShuffleAmplificationTest, NeverWorseThanLocal) {
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    for (const int64_t n : {int64_t{1}, int64_t{10}, int64_t{1000},
                            int64_t{1000000}}) {
      EXPECT_LE(ShuffleAmplifiedBudget(eps, n, 1e-6).epsilon, eps + 1e-12);
    }
  }
}

TEST(ShuffleAmplificationTest, MonotoneInCohortSize) {
  double previous = ShuffleAmplifiedBudget(1.0, 1000, 1e-6).epsilon;
  for (const int64_t n : {int64_t{10000}, int64_t{100000},
                          int64_t{1000000}}) {
    const double current = ShuffleAmplifiedBudget(1.0, n, 1e-6).epsilon;
    EXPECT_LE(current, previous);
    previous = current;
  }
}

TEST(ShuffleAmplificationTest, ScalesAsInverseSqrtN) {
  // In the amplification regime eps_central ~ 1/sqrt(n).
  const double at_10k = ShuffleAmplifiedBudget(1.0, 10000, 1e-6).epsilon;
  const double at_1m = ShuffleAmplifiedBudget(1.0, 1000000, 1e-6).epsilon;
  EXPECT_NEAR(at_10k / at_1m, 10.0, 1.5);
}

TEST(ShuffleAmplificationTest, SmallCohortFallsBackToLocal) {
  const PrivacyBudget budget = ShuffleAmplifiedBudget(1.0, 3, 1e-6);
  EXPECT_DOUBLE_EQ(budget.epsilon, 1.0);
  EXPECT_DOUBLE_EQ(budget.delta, 0.0);  // the local guarantee is pure
}

TEST(RequiredCohortTest, InvertsTheBound) {
  const double target = 0.1;
  const int64_t n = RequiredCohortForCentralEpsilon(1.0, target, 1e-6);
  ASSERT_GT(n, 1);
  EXPECT_LE(ShuffleAmplifiedBudget(1.0, n, 1e-6).epsilon, target);
  EXPECT_GT(ShuffleAmplifiedBudget(1.0, n - 1, 1e-6).epsilon, target);
}

TEST(RequiredCohortTest, TrivialWhenTargetAboveLocal) {
  EXPECT_EQ(RequiredCohortForCentralEpsilon(1.0, 2.0, 1e-6), 1);
}

TEST(RequiredCohortTest, TighterTargetNeedsMoreClients) {
  const int64_t loose = RequiredCohortForCentralEpsilon(1.0, 0.2, 1e-6);
  const int64_t tight = RequiredCohortForCentralEpsilon(1.0, 0.05, 1e-6);
  EXPECT_GT(tight, loose);
}

TEST(ShuffleAmplificationDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(ShuffleAmplifiedBudget(0.0, 100, 1e-6),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(ShuffleAmplifiedBudget(1.0, 0, 1e-6),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(ShuffleAmplifiedBudget(1.0, 100, 0.0),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(RequiredCohortForCentralEpsilon(1.0, 0.0, 1e-6),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
