#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"

namespace bitpush {
namespace {

double Sum(const std::vector<double>& v) {
  double total = 0.0;
  for (const double x : v) total += x;
  return total;
}

TEST(NormalizeProbabilitiesTest, SumsToOne) {
  std::vector<double> p = {1.0, 2.0, 5.0};
  NormalizeProbabilities(p);
  EXPECT_NEAR(Sum(p), 1.0, 1e-12);
  EXPECT_NEAR(p[0], 0.125, 1e-12);
  EXPECT_NEAR(p[2], 0.625, 1e-12);
}

TEST(NormalizeProbabilitiesDeathTest, RejectsDegenerateInput) {
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_DEATH(NormalizeProbabilities(zero), "BITPUSH_CHECK failed");
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_DEATH(NormalizeProbabilities(negative), "BITPUSH_CHECK failed");
}

TEST(UniformProbabilitiesTest, AllEqual) {
  const std::vector<double> p = UniformProbabilities(8);
  ASSERT_EQ(p.size(), 8u);
  for (const double x : p) EXPECT_DOUBLE_EQ(x, 0.125);
}

TEST(GeometricProbabilitiesTest, GammaZeroIsUniform) {
  const std::vector<double> p = GeometricProbabilities(5, 0.0);
  for (const double x : p) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(GeometricProbabilitiesTest, GammaOneIsEquationSeven) {
  // p_j = 2^j / (2^b - 1).
  const int bits = 6;
  const std::vector<double> p = GeometricProbabilities(bits, 1.0);
  for (int j = 0; j < bits; ++j) {
    EXPECT_NEAR(p[static_cast<size_t>(j)],
                std::exp2(j) / (std::exp2(bits) - 1.0), 1e-12);
  }
}

TEST(GeometricProbabilitiesTest, RatioBetweenAdjacentBits) {
  const std::vector<double> p = GeometricProbabilities(10, 0.5);
  for (size_t j = 1; j < p.size(); ++j) {
    EXPECT_NEAR(p[j] / p[j - 1], std::sqrt(2.0), 1e-9);
  }
}

TEST(GeometricProbabilitiesTest, StableForWideCodewords) {
  // gamma=1 at 52 bits must not overflow/underflow to garbage.
  const std::vector<double> p = GeometricProbabilities(52, 1.0);
  EXPECT_NEAR(Sum(p), 1.0, 1e-9);
  EXPECT_GT(p.back(), 0.49);
}

TEST(BetaCoefficientsTest, Formula) {
  // beta_j = 4^j m_j (1 - m_j).
  const std::vector<double> beta = BetaCoefficients({0.5, 0.5, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(beta[0], 0.25);
  EXPECT_DOUBLE_EQ(beta[1], 1.0);
  EXPECT_DOUBLE_EQ(beta[2], 0.0);
  EXPECT_DOUBLE_EQ(beta[3], 0.0);
}

TEST(BetaCoefficientsTest, ClampsNoisyMeans) {
  // DP-unbiased means can fall outside [0, 1]; beta must stay finite and
  // non-negative.
  const std::vector<double> beta = BetaCoefficients({-0.3, 1.7});
  EXPECT_DOUBLE_EQ(beta[0], 0.0);
  EXPECT_DOUBLE_EQ(beta[1], 0.0);
}

TEST(OptimalProbabilitiesTest, ProportionalToSqrtBeta) {
  // Lemma 3.3: p_j = sqrt(beta_j) / sum sqrt(beta_k).
  const std::vector<double> means = {0.5, 0.25, 0.5};
  const std::vector<double> beta = BetaCoefficients(means);
  const std::vector<double> p = OptimalProbabilities(means);
  double norm = 0.0;
  for (const double b : beta) norm += std::sqrt(b);
  for (size_t j = 0; j < p.size(); ++j) {
    EXPECT_NEAR(p[j], std::sqrt(beta[j]) / norm, 1e-9);
  }
}

TEST(OptimalProbabilitiesTest, DegenerateBitsGetZero) {
  const std::vector<double> p = OptimalProbabilities({0.5, 0.0, 1.0});
  EXPECT_GT(p[0], 0.99);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(OptimalProbabilitiesTest, AllDegenerateFallsBackToGeometric) {
  const std::vector<double> p = OptimalProbabilities({0.0, 1.0, 0.0});
  EXPECT_EQ(p, GeometricProbabilities(3, 1.0));
}

TEST(OptimalProbabilitiesTest, MinimizesVarianceOverAlternatives) {
  // The Lemma 3.3 allocation must beat uniform and geometric on the
  // Lemma 3.1 variance expression for a non-trivial mean profile.
  const std::vector<double> means = {0.5, 0.3, 0.1, 0.45, 0.02};
  const double n = 1000.0;
  const double optimal = VarianceBound(means, OptimalProbabilities(means), n);
  EXPECT_LT(optimal, VarianceBound(means, UniformProbabilities(5), n));
  EXPECT_LT(optimal,
            VarianceBound(means, GeometricProbabilities(5, 1.0), n));
  EXPECT_LT(optimal,
            VarianceBound(means, GeometricProbabilities(5, 0.5), n));
}

TEST(OptimalProbabilitiesTest, FirstOrderOptimalityCondition) {
  // At the optimum, beta_j / p_j^2 is constant across bits with beta > 0
  // (Equation (5) of the paper).
  const std::vector<double> means = {0.4, 0.2, 0.35, 0.05};
  const std::vector<double> beta = BetaCoefficients(means);
  const std::vector<double> p = OptimalProbabilities(means);
  const double reference = beta[0] / (p[0] * p[0]);
  for (size_t j = 1; j < p.size(); ++j) {
    if (beta[j] == 0.0) continue;
    EXPECT_NEAR(beta[j] / (p[j] * p[j]) / reference, 1.0, 1e-6);
  }
}

TEST(AdaptiveProbabilitiesTest, AlphaHalfMatchesOptimal) {
  const std::vector<double> means = {0.5, 0.25, 0.1};
  EXPECT_EQ(AdaptiveProbabilities(means, 0.5), OptimalProbabilities(means));
}

TEST(AdaptiveProbabilitiesTest, AlphaOneWeightsByBeta) {
  const std::vector<double> means = {0.5, 0.5};
  const std::vector<double> p = AdaptiveProbabilities(means, 1.0);
  // beta = {0.25, 1.0} -> p = {0.2, 0.8}.
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.8, 1e-12);
}

TEST(AdaptiveProbabilitiesMaskedTest, MaskZeroesBits) {
  const std::vector<double> means = {0.5, 0.5, 0.5};
  const std::vector<double> fallback = UniformProbabilities(3);
  const std::vector<double> p = AdaptiveProbabilitiesMasked(
      means, {true, false, true}, 0.5, fallback);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_NEAR(Sum(p), 1.0, 1e-12);
}

TEST(AdaptiveProbabilitiesMaskedTest, AllMaskedUsesFallback) {
  const std::vector<double> means = {0.5, 0.5};
  const std::vector<double> fallback = {0.9, 0.1};
  EXPECT_EQ(AdaptiveProbabilitiesMasked(means, {false, false}, 0.5,
                                        fallback),
            fallback);
}

TEST(VarianceBoundTest, MatchesHandComputation) {
  // bits: m = {0.5, 0.5}, p = {0.5, 0.5}, n = 100.
  // V = (1/100) * [4^0*0.25/0.5 + 4^1*0.25/0.5] = (0.5 + 2)/100.
  EXPECT_NEAR(VarianceBound({0.5, 0.5}, {0.5, 0.5}, 100.0), 0.025, 1e-12);
}

TEST(VarianceBoundTest, ZeroBetaWithZeroProbabilityIsFine) {
  EXPECT_DOUBLE_EQ(VarianceBound({0.5, 0.0}, {1.0, 0.0}, 10.0), 0.025);
}

TEST(VarianceBoundTest, PositiveBetaWithZeroProbabilityIsInfinite) {
  EXPECT_TRUE(std::isinf(VarianceBound({0.5, 0.5}, {1.0, 0.0}, 10.0)));
}

TEST(VarianceBoundTest, ScalesInverselyWithN) {
  const std::vector<double> means = {0.3, 0.6};
  const std::vector<double> p = {0.5, 0.5};
  EXPECT_NEAR(VarianceBound(means, p, 100.0),
              10.0 * VarianceBound(means, p, 1000.0), 1e-12);
}

}  // namespace
}  // namespace bitpush
