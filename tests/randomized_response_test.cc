#include <cmath>

#include <gtest/gtest.h>

#include "ldp/randomized_response.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(RandomizedResponseTest, TruthProbabilityFormula) {
  const RandomizedResponse rr(1.0);
  EXPECT_NEAR(rr.truth_probability(), std::exp(1.0) / (1.0 + std::exp(1.0)),
              1e-12);
  EXPECT_TRUE(rr.enabled());
  EXPECT_DOUBLE_EQ(rr.epsilon(), 1.0);
}

TEST(RandomizedResponseTest, HighEpsilonRarelyFlips) {
  const RandomizedResponse rr(10.0);
  Rng rng(1);
  int flips = 0;
  for (int i = 0; i < 10000; ++i) flips += rr.Apply(1, rng) == 0;
  EXPECT_LT(flips, 10);  // flip probability ~4.5e-5
}

TEST(RandomizedResponseTest, DisabledIsIdentity) {
  const RandomizedResponse rr = RandomizedResponse::Disabled();
  Rng rng(2);
  EXPECT_FALSE(rr.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rr.Apply(0, rng), 0);
    EXPECT_EQ(rr.Apply(1, rng), 1);
  }
  EXPECT_DOUBLE_EQ(rr.Unbias(0.37), 0.37);
  EXPECT_DOUBLE_EQ(rr.ReportVariance(), 0.0);
}

TEST(RandomizedResponseTest, FromEpsilonConvention) {
  EXPECT_FALSE(RandomizedResponse::FromEpsilon(0.0).enabled());
  EXPECT_FALSE(RandomizedResponse::FromEpsilon(-1.0).enabled());
  EXPECT_TRUE(RandomizedResponse::FromEpsilon(0.5).enabled());
}

TEST(RandomizedResponseTest, FlipFrequencyMatchesP) {
  const RandomizedResponse rr(1.0);
  Rng rng(3);
  const int n = 200000;
  int kept = 0;
  for (int i = 0; i < n; ++i) kept += rr.Apply(1, rng);
  EXPECT_NEAR(static_cast<double>(kept) / n, rr.truth_probability(), 0.005);
}

TEST(RandomizedResponseTest, UnbiasedOverManyReports) {
  // The unbiased mean of perturbed reports converges to the true bit mean.
  const RandomizedResponse rr(0.5);
  Rng rng(4);
  const double true_mean = 0.3;
  const int n = 400000;
  Welford acc;
  for (int i = 0; i < n; ++i) {
    const int bit = rng.NextBernoulli(true_mean) ? 1 : 0;
    acc.Add(static_cast<double>(rr.Apply(bit, rng)));
  }
  EXPECT_NEAR(rr.Unbias(acc.mean()), true_mean, 0.01);
}

TEST(RandomizedResponseTest, UnbiasIdentityOnFixedPoints) {
  // E[report | bit=1] = p, and Unbias(p) must be exactly 1; likewise 0.
  for (const double eps : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const RandomizedResponse rr(eps);
    const double p = rr.truth_probability();
    EXPECT_NEAR(rr.Unbias(p), 1.0, 1e-12);
    EXPECT_NEAR(rr.Unbias(1.0 - p), 0.0, 1e-12);
  }
}

TEST(RandomizedResponseTest, ReportVarianceFormula) {
  // Section 3.3: the variance of the unbiased estimator is
  // exp(eps) / (exp(eps) - 1)^2.
  for (const double eps : {0.25, 1.0, 2.0, 3.0}) {
    const RandomizedResponse rr(eps);
    const double expected =
        std::exp(eps) / ((std::exp(eps) - 1.0) * (std::exp(eps) - 1.0));
    EXPECT_NEAR(rr.ReportVariance(), expected, 1e-12) << "eps=" << eps;
  }
}

TEST(RandomizedResponseTest, EmpiricalVarianceMatchesFormula) {
  const double eps = 1.0;
  const RandomizedResponse rr(eps);
  Rng rng(5);
  Welford acc;
  const int true_bit = 1;
  for (int i = 0; i < 400000; ++i) {
    acc.Add(rr.Unbias(static_cast<double>(rr.Apply(true_bit, rng))));
  }
  EXPECT_NEAR(acc.mean(), 1.0, 0.01);
  EXPECT_NEAR(acc.population_variance(), rr.ReportVariance(),
              rr.ReportVariance() * 0.05);
}

TEST(RandomizedResponseTest, LdpLikelihoodRatioBounded) {
  // The defining LDP property: P[output=o | bit] / P[output=o | 1-bit]
  // equals exp(eps) exactly for binary randomized response.
  for (const double eps : {0.5, 1.0, 2.0}) {
    const RandomizedResponse rr(eps);
    const double p = rr.truth_probability();
    EXPECT_NEAR(p / (1.0 - p), std::exp(eps), 1e-9);
  }
}

TEST(RandomizedResponseDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(RandomizedResponse(0.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(RandomizedResponse(-1.0), "BITPUSH_CHECK failed");
  const RandomizedResponse rr(1.0);
  Rng rng(1);
  EXPECT_DEATH(rr.Apply(2, rng), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
