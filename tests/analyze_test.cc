// Tests for tools/bitpush_analyze (the cross-TU dataflow analyzer) against
// the fixture trees under tests/golden/analyze/ and against the real source
// tree, which must stay free of unwaived findings.
//
//   bad/    every planted violation is found, with exact counts per check
//           and the cross-TU provenance chain printed in the message.
//   good/   contractual code is clean; one deliberate, reasoned waiver
//           lands in the budget instead of the findings.
//   waived/ the three violation shapes, each fully waived.

#include "bitpush_analyze/analyze.h"

#include <string>

#include <gtest/gtest.h>

namespace {

using bitpush::analyze::Check;
using bitpush::analyze::Finding;
using bitpush::analyze::Options;
using bitpush::analyze::Result;
using bitpush::analyze::RunAnalyze;

std::string FixturePath(const std::string& tree) {
  return std::string(BITPUSH_ANALYZE_FIXTURE_DIR) + "/" + tree;
}

int CountCheck(const Result& result, Check check) {
  int count = 0;
  for (const Finding& finding : result.findings) {
    if (finding.check == check) ++count;
  }
  return count;
}

std::string Pretty(const Result& result) {
  return bitpush::analyze::FormatReport(result);
}

TEST(AnalyzeTest, BadTreeFindsAllPlantedViolations) {
  const Result result = RunAnalyze(FixturePath("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_EQ(result.files_scanned, 9);
  EXPECT_EQ(result.findings.size(), 8u) << Pretty(result);
  EXPECT_EQ(CountCheck(result, Check::kPrivacyTaint), 3) << Pretty(result);
  EXPECT_EQ(CountCheck(result, Check::kDeterminismFlow), 3)
      << Pretty(result);
  EXPECT_EQ(CountCheck(result, Check::kWaiverSyntax), 2) << Pretty(result);
  EXPECT_TRUE(result.waivers.empty());
}

TEST(AnalyzeTest, BadTreePrintsCrossTuProvenanceChain) {
  const Result result = RunAnalyze(FixturePath("bad"), Options{});
  ASSERT_FALSE(result.io_error);
  // The sink.cc finding's taint originates two files away, in
  // producer.cc; the message must carry the whole chain.
  bool found = false;
  for (const Finding& finding : result.findings) {
    if (finding.path != "src/federated/sink.cc") continue;
    found = true;
    EXPECT_EQ(finding.check, Check::kPrivacyTaint);
    EXPECT_NE(finding.message.find("call to BuildRaw"), std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("src/federated/producer.cc"),
              std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("FixedPointCodec::Bit"),
              std::string::npos)
        << finding.message;
  }
  EXPECT_TRUE(found) << Pretty(result);
}

TEST(AnalyzeTest, BadTreeFlagsChargeAfterDisclosure) {
  const Result result = RunAnalyze(FixturePath("bad"), Options{});
  ASSERT_FALSE(result.io_error);
  bool found = false;
  for (const Finding& finding : result.findings) {
    if (finding.path != "src/federated/charge_order.cc") continue;
    found = true;
    EXPECT_EQ(finding.check, Check::kPrivacyTaint);
    EXPECT_NE(finding.message.find("before the privacy-meter charge"),
              std::string::npos)
        << finding.message;
  }
  EXPECT_TRUE(found) << Pretty(result);
}

TEST(AnalyzeTest, ChecksFilterRestrictsFindings) {
  Options options;
  options.checks.push_back(Check::kDeterminismFlow);
  const Result result = RunAnalyze(FixturePath("bad"), options);
  ASSERT_FALSE(result.io_error);
  // waiver-syntax stays on regardless of the filter.
  EXPECT_EQ(result.findings.size(), 5u) << Pretty(result);
  EXPECT_EQ(CountCheck(result, Check::kPrivacyTaint), 0) << Pretty(result);
  EXPECT_EQ(CountCheck(result, Check::kDeterminismFlow), 3)
      << Pretty(result);
  EXPECT_EQ(CountCheck(result, Check::kWaiverSyntax), 2) << Pretty(result);
}

TEST(AnalyzeTest, GoodTreeIsCleanWithOneBudgetedWaiver) {
  const Result result = RunAnalyze(FixturePath("good"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_TRUE(result.findings.empty()) << Pretty(result);
  ASSERT_EQ(result.waivers.size(), 1u);
  EXPECT_EQ(result.waivers[0].check, Check::kDeterminismFlow);
  EXPECT_EQ(result.files_scanned, 2);
}

TEST(AnalyzeTest, WaivedTreeSuppressesAllThreeShapes) {
  const Result result = RunAnalyze(FixturePath("waived"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_TRUE(result.findings.empty()) << Pretty(result);
  EXPECT_EQ(result.waivers.size(), 3u);
  const std::string report = bitpush::analyze::FormatWaiverReport(result);
  EXPECT_NE(report.find("3 waiver(s) in budget"), std::string::npos)
      << report;
}

TEST(AnalyzeTest, ReportIsByteIdenticalAcrossRuns) {
  const Result first = RunAnalyze(FixturePath("bad"), Options{});
  const Result second = RunAnalyze(FixturePath("bad"), Options{});
  EXPECT_EQ(bitpush::analyze::FormatReport(first),
            bitpush::analyze::FormatReport(second));
  EXPECT_EQ(bitpush::analyze::FormatWaiverReport(first),
            bitpush::analyze::FormatWaiverReport(second));
}

TEST(AnalyzeTest, MissingRootIsAnIoError) {
  const Result result =
      RunAnalyze(FixturePath("does-not-exist"), Options{});
  EXPECT_TRUE(result.io_error);
  EXPECT_FALSE(result.io_error_message.empty());
}

// The real tree must analyze clean: every genuine finding is either fixed
// or carries a reasoned waiver that this run counts in the budget.
TEST(AnalyzeTest, RealTreeHasNoUnwaivedFindings) {
  const Result result = RunAnalyze(BITPUSH_ANALYZE_SOURCE_ROOT, Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_GT(result.files_scanned, 100);
  EXPECT_GT(result.functions_indexed, 500);
  EXPECT_TRUE(result.findings.empty()) << Pretty(result);
}

}  // namespace
