#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "data/census.h"
#include "federated/server.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

std::vector<int64_t> AllOf(const std::vector<Client>& clients) {
  std::vector<int64_t> cohort(clients.size());
  std::iota(cohort.begin(), cohort.end(), int64_t{0});
  return cohort;
}

RoundConfig BasicConfig(int bits) {
  RoundConfig config;
  config.probabilities = GeometricProbabilities(bits, 0.5);
  return config;
}

TEST(ServerTest, RoundCollectsOneReportPerClient) {
  const std::vector<Client> clients =
      MakePopulation({1.0, 2.0, 3.0, 4.0}, ClientConfig{});
  const AggregationServer server(FixedPointCodec::Integer(4));
  Rng rng(1);
  const RoundOutcome outcome = server.RunRound(
      clients, AllOf(clients), BasicConfig(4), nullptr, rng);
  EXPECT_EQ(outcome.contacted, 4);
  EXPECT_EQ(outcome.responded, 4);
  EXPECT_EQ(outcome.histogram.TotalReports(), 4);
  EXPECT_DOUBLE_EQ(outcome.dropout_rate, 0.0);
  EXPECT_EQ(outcome.comm.requests_sent, 4);
  EXPECT_EQ(outcome.comm.private_bits, 4);
}

TEST(ServerTest, IntendedCountsMatchQmcAllocation) {
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(1000, 5.0), ClientConfig{});
  const AggregationServer server(FixedPointCodec::Integer(4));
  RoundConfig config;
  config.probabilities = {0.5, 0.25, 0.125, 0.125};
  Rng rng(2);
  const RoundOutcome outcome =
      server.RunRound(clients, AllOf(clients), config, nullptr, rng);
  EXPECT_EQ(outcome.intended_counts,
            (std::vector<int64_t>{500, 250, 125, 125}));
  EXPECT_EQ(outcome.histogram.totals(), outcome.intended_counts);
}

TEST(ServerTest, EstimateMeanRecoversPopulationMean) {
  Rng data_rng(3);
  const Dataset ages = CensusAges(20000, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const AggregationServer server(FixedPointCodec::Integer(7));
  Rng rng(4);
  const RoundOutcome outcome = server.RunRound(
      clients, AllOf(clients), BasicConfig(7), nullptr, rng);
  const double estimate = server.EstimateMean(outcome.histogram, 0.0);
  EXPECT_NEAR(estimate, ages.truth().mean, 0.1 * ages.truth().mean);
}

TEST(ServerTest, EstimateMeanUnbiasesDp) {
  Rng data_rng(5);
  const Dataset ages = CensusAges(40000, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const AggregationServer server(FixedPointCodec::Integer(7));
  RoundConfig config = BasicConfig(7);
  config.epsilon = 2.0;
  Rng rng(6);
  const RoundOutcome outcome =
      server.RunRound(clients, AllOf(clients), config, nullptr, rng);
  const double estimate =
      server.EstimateMean(outcome.histogram, config.epsilon);
  EXPECT_NEAR(estimate, ages.truth().mean, 0.25 * ages.truth().mean);
}

TEST(ServerTest, DropoutReducesResponses) {
  ClientConfig client_config;
  client_config.dropout_probability = 0.4;
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(5000, 10.0), client_config);
  const AggregationServer server(FixedPointCodec::Integer(4));
  Rng rng(7);
  const RoundOutcome outcome = server.RunRound(
      clients, AllOf(clients), BasicConfig(4), nullptr, rng);
  EXPECT_NEAR(outcome.dropout_rate, 0.4, 0.03);
  EXPECT_LT(outcome.responded, outcome.contacted);
  // Estimates still work off the responders.
  EXPECT_NEAR(server.EstimateMean(outcome.histogram, 0.0), 10.0, 0.5);
}

TEST(ServerTest, SecureAggregationPreservesTallies) {
  Rng data_rng(8);
  const Dataset ages = CensusAges(5000, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const AggregationServer server(FixedPointCodec::Integer(7));

  RoundConfig plain = BasicConfig(7);
  RoundConfig secure = BasicConfig(7);
  secure.use_secure_aggregation = true;

  Rng rng_plain(9);
  Rng rng_secure(9);
  const RoundOutcome plain_outcome =
      server.RunRound(clients, AllOf(clients), plain, nullptr, rng_plain);
  const RoundOutcome secure_outcome = server.RunRound(
      clients, AllOf(clients), secure, nullptr, rng_secure);
  // Same seed, same assignment, no dropout: identical histograms even
  // though the secure path only ever sees masked sums.
  EXPECT_EQ(plain_outcome.histogram.totals(),
            secure_outcome.histogram.totals());
  EXPECT_EQ(plain_outcome.histogram.one_counts(),
            secure_outcome.histogram.one_counts());
}

TEST(ServerTest, CentralModeIgnoresClaimedIndex) {
  // A top-bit adversary under central randomness is tallied under its
  // assigned bit, so the top bit's mean is untouched when the adversary
  // was assigned elsewhere.
  ClientConfig adversarial;
  adversarial.adversary = AdversaryMode::kTopBitOne;
  std::vector<Client> clients =
      MakePopulation(std::vector<double>(1000, 0.0), ClientConfig{});
  // Make 10% adversarial.
  for (size_t i = 0; i < 100; ++i) {
    clients[i] = Client(static_cast<int64_t>(i), {0.0}, adversarial);
  }
  const AggregationServer server(FixedPointCodec::Integer(8));
  RoundConfig config;
  // Never assign the top bit.
  config.probabilities = std::vector<double>(8, 0.0);
  config.probabilities[0] = 1.0;
  config.central_randomness = true;
  Rng rng(10);
  const RoundOutcome outcome =
      server.RunRound(clients, AllOf(clients), config, nullptr, rng);
  EXPECT_EQ(outcome.histogram.total(7), 0);   // defense holds
  EXPECT_EQ(outcome.histogram.ones(0), 100);  // adversaries flipped bit 0
}

TEST(ServerTest, LocalModeIsVulnerableToIndexHijack) {
  ClientConfig adversarial;
  adversarial.adversary = AdversaryMode::kTopBitOne;
  std::vector<Client> clients =
      MakePopulation(std::vector<double>(1000, 0.0), ClientConfig{});
  for (size_t i = 0; i < 100; ++i) {
    clients[i] = Client(static_cast<int64_t>(i), {0.0}, adversarial);
  }
  const AggregationServer server(FixedPointCodec::Integer(8));
  RoundConfig config;
  config.probabilities = std::vector<double>(8, 0.0);
  config.probabilities[0] = 1.0;
  config.central_randomness = false;
  Rng rng(11);
  const RoundOutcome outcome =
      server.RunRound(clients, AllOf(clients), config, nullptr, rng);
  // Adversaries claimed the top bit and the server believed them.
  EXPECT_EQ(outcome.histogram.total(7), 100);
  EXPECT_EQ(outcome.histogram.ones(7), 100);
}

TEST(ServerTest, MalformedIndicesRejectedUnderLocalRandomness) {
  ClientConfig garbage;
  garbage.adversary = AdversaryMode::kGarbageIndex;
  std::vector<Client> clients =
      MakePopulation(std::vector<double>(100, 3.0), ClientConfig{});
  for (size_t i = 0; i < 20; ++i) {
    clients[i] = Client(static_cast<int64_t>(i), {3.0}, garbage);
  }
  const AggregationServer server(FixedPointCodec::Integer(4));
  RoundConfig config = BasicConfig(4);
  config.central_randomness = false;
  Rng rng(20);
  const RoundOutcome outcome =
      server.RunRound(clients, AllOf(clients), config, nullptr, rng);
  EXPECT_EQ(outcome.malformed_reports, 20);
  EXPECT_EQ(outcome.responded, 80);
  EXPECT_EQ(outcome.histogram.TotalReports(), 80);
}

TEST(ServerTest, GarbageIndexHarmlessUnderCentralRandomness) {
  ClientConfig garbage;
  garbage.adversary = AdversaryMode::kGarbageIndex;
  std::vector<Client> clients =
      MakePopulation(std::vector<double>(100, 3.0), ClientConfig{});
  for (size_t i = 0; i < 20; ++i) {
    clients[i] = Client(static_cast<int64_t>(i), {3.0}, garbage);
  }
  const AggregationServer server(FixedPointCodec::Integer(4));
  Rng rng(21);
  const RoundOutcome outcome = server.RunRound(
      clients, AllOf(clients), BasicConfig(4), nullptr, rng);
  // Central randomness re-pins the index; the report degrades to a bit
  // flip rather than a malformed message.
  EXPECT_EQ(outcome.malformed_reports, 0);
  EXPECT_EQ(outcome.histogram.TotalReports(), 100);
}

TEST(ServerTest, MeterDenialsShowUpAsNonResponse) {
  PrivacyMeter meter{MeterPolicy{}};
  const std::vector<Client> clients =
      MakePopulation({1.0, 2.0}, ClientConfig{});
  const AggregationServer server(FixedPointCodec::Integer(4));
  Rng rng(12);
  // First round consumes each client's single allowed bit for value 0.
  server.RunRound(clients, AllOf(clients), BasicConfig(4), &meter, rng);
  const RoundOutcome second = server.RunRound(
      clients, AllOf(clients), BasicConfig(4), &meter, rng);
  EXPECT_EQ(second.responded, 0);
  EXPECT_EQ(meter.denied_charges(), 2);
}

TEST(AdjustProbabilitiesTest, BoostsUnderReportedBits) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<int64_t> intended = {100, 100};
  const std::vector<int64_t> realized = {100, 50};
  const std::vector<double> adjusted =
      AdjustProbabilitiesForDropout(p, intended, realized);
  EXPECT_GT(adjusted[1], adjusted[0]);
  EXPECT_NEAR(adjusted[0] + adjusted[1], 1.0, 1e-12);
  // Ratio 2 -> weights 0.5 vs 1.0 -> normalized {1/3, 2/3}.
  EXPECT_NEAR(adjusted[1], 2.0 / 3.0, 1e-12);
}

TEST(AdjustProbabilitiesTest, ClampsExtremeRatios) {
  const std::vector<double> adjusted = AdjustProbabilitiesForDropout(
      {0.5, 0.5}, {1000, 1000}, {1000, 1});
  // Ratio clamped to 2 -> {1/3, 2/3}, not {~0, ~1}.
  EXPECT_NEAR(adjusted[1], 2.0 / 3.0, 1e-12);
}

TEST(AdjustProbabilitiesTest, NoDropoutIsIdentity) {
  const std::vector<double> p = {0.25, 0.75};
  EXPECT_EQ(AdjustProbabilitiesForDropout(p, {25, 75}, {25, 75}), p);
}

TEST(AdjustProbabilitiesTest, UnsampledBitsKeepProbability) {
  const std::vector<double> p = {0.0, 1.0};
  const std::vector<double> adjusted =
      AdjustProbabilitiesForDropout(p, {0, 100}, {0, 80});
  EXPECT_DOUBLE_EQ(adjusted[0], 0.0);
  EXPECT_DOUBLE_EQ(adjusted[1], 1.0);
}

}  // namespace
}  // namespace bitpush
