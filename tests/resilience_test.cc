// Chaos suite for the resilient collection layer (federated/resilience.h).
//
// Three layers of coverage: unit contracts (backoff schedule, deadline
// budgets, wire codecs, the circuit-breaker state machine), end-to-end
// recovery semantics over the fault-injection layer (retransmissions never
// double-charge the privacy meter, hedges are free when cancelled, a fault
// plan that used to force the round-1 static-policy fallback completes the
// adaptive round 2 once retries are on), and the crash matrix: a resilient
// durable campaign killed at every journal-record boundary recovers to a
// byte-identical journal, ledger, and history — retry schedule, hedges, and
// breaker transitions included.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/privacy_meter.h"
#include "data/census.h"
#include "federated/campaign.h"
#include "federated/faults.h"
#include "federated/latency.h"
#include "federated/persist_hooks.h"
#include "federated/resilience.h"
#include "federated/round.h"
#include "federated/server.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

RetryPolicy EnabledRetryPolicy(int64_t per_client = 3) {
  RetryPolicy policy;
  policy.max_retries_per_client = per_client;
  return policy;
}

// ---------------------------------------------------------------------------
// RetrySchedule: the deterministic backoff schedule.

TEST(RetrySchedule, BackoffIsDeterministicAndSeedSensitive) {
  const RetryPolicy policy = EnabledRetryPolicy(5);
  const RetrySchedule a(11, policy);
  const RetrySchedule b(11, policy);
  const RetrySchedule c(12, policy);
  int differs = 0;
  for (int64_t round = 1; round <= 2; ++round) {
    for (int64_t client = 0; client < 200; ++client) {
      for (int64_t attempt = 1; attempt <= 5; ++attempt) {
        const double backoff = a.BackoffMinutes(round, client, attempt);
        EXPECT_EQ(backoff, b.BackoffMinutes(round, client, attempt));
        differs +=
            backoff != c.BackoffMinutes(round, client, attempt) ? 1 : 0;
      }
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(RetrySchedule, BackoffStaysWithinBaseAndCap) {
  RetryPolicy policy = EnabledRetryPolicy(6);
  policy.base_backoff_minutes = 0.5;
  policy.cap_backoff_minutes = 8.0;
  const RetrySchedule schedule(99, policy);
  bool saw_above_base = false;
  for (int64_t client = 0; client < 500; ++client) {
    for (int64_t attempt = 1; attempt <= 6; ++attempt) {
      const double backoff = schedule.BackoffMinutes(1, client, attempt);
      ASSERT_GE(backoff, policy.base_backoff_minutes);
      ASSERT_LE(backoff, policy.cap_backoff_minutes);
      saw_above_base = saw_above_base || backoff > policy.base_backoff_minutes;
    }
  }
  // Decorrelated jitter actually jitters: not every draw collapses to base.
  EXPECT_TRUE(saw_above_base);
}

// ---------------------------------------------------------------------------
// DeadlineBudget: propagation arithmetic.

TEST(DeadlineBudget, DefaultIsInfiniteAndInert) {
  const DeadlineBudget budget;
  EXPECT_FALSE(budget.finite());
  EXPECT_FALSE(budget.Fraction(0.25).finite());
  EXPECT_FALSE(budget.Split(4).finite());
  EXPECT_EQ(budget.ClampDeadline(30.0), 30.0);
  EXPECT_EQ(budget.ClampDeadline(kInf), kInf);
}

TEST(DeadlineBudget, FiniteBudgetFractionsSplitsAndClamps) {
  const DeadlineBudget budget{120.0};
  EXPECT_TRUE(budget.finite());
  EXPECT_DOUBLE_EQ(budget.Fraction(0.25).minutes, 30.0);
  EXPECT_DOUBLE_EQ(budget.Split(4).minutes, 30.0);
  // The budget is the binding deadline when it is tighter than the flat
  // per-round deadline, and vice versa.
  EXPECT_DOUBLE_EQ(DeadlineBudget{40.0}.ClampDeadline(30.0), 30.0);
  EXPECT_DOUBLE_EQ(DeadlineBudget{40.0}.ClampDeadline(100.0), 40.0);
  EXPECT_DOUBLE_EQ(DeadlineBudget{40.0}.ClampDeadline(kInf), 40.0);
}

// ---------------------------------------------------------------------------
// RetryStats: merge arithmetic and wire frames.

RetryStats DistinctStats() {
  RetryStats stats;
  stats.retries_scheduled = 1;
  stats.retransmits_requested = 2;
  stats.retry_reports_recovered = 3;
  stats.retries_exhausted = 4;
  stats.retry_budget_denied = 5;
  stats.deadline_denied = 6;
  stats.hedges_issued = 7;
  stats.hedges_cancelled = 8;
  stats.hedge_reports = 9;
  stats.hedge_failures = 10;
  stats.hedge_dedup_drops = 11;
  stats.breaker_skips = 12;
  stats.breaker_probes = 13;
  stats.breaker_opens = 14;
  stats.breaker_closes = 15;
  stats.backoff_minutes = 16.5;
  stats.elapsed_minutes = 17.25;
  return stats;
}

TEST(RetryStats, RecoveredTotalAndMergeCoverEveryField) {
  const RetryStats stats = DistinctStats();
  EXPECT_EQ(stats.RecoveredTotal(),
            stats.retry_reports_recovered + stats.hedge_reports);
  RetryStats merged = DistinctStats();
  merged.MergeFrom(stats);
  // Doubling every field proves MergeFrom touches all of them.
  std::vector<uint8_t> one;
  std::vector<uint8_t> two;
  EncodeRetryStats(stats, &one);
  EncodeRetryStats(merged, &two);
  RetryStats decoded;
  size_t offset = 0;
  ASSERT_TRUE(DecodeRetryStats(two, &offset, &decoded));
  EXPECT_EQ(decoded.retries_scheduled, 2 * stats.retries_scheduled);
  EXPECT_EQ(decoded.breaker_closes, 2 * stats.breaker_closes);
  EXPECT_DOUBLE_EQ(decoded.elapsed_minutes, 2 * stats.elapsed_minutes);
}

TEST(RetryStats, FrameRoundTrips) {
  const RetryStats stats = DistinctStats();
  std::vector<uint8_t> frame;
  EncodeRetryStatsFrame(stats, &frame);
  RetryStats decoded;
  ASSERT_TRUE(DecodeRetryStatsFrame(frame, &decoded));
  EXPECT_EQ(decoded, stats);
}

TEST(RetryStats, FrameFailsClosed) {
  std::vector<uint8_t> frame;
  EncodeRetryStatsFrame(DistinctStats(), &frame);
  RetryStats decoded;
  // Every truncation, including the empty buffer.
  for (size_t length = 0; length < frame.size(); ++length) {
    const std::vector<uint8_t> cut(frame.begin(),
                                   frame.begin() + static_cast<ptrdiff_t>(length));
    EXPECT_FALSE(DecodeRetryStatsFrame(cut, &decoded)) << length;
  }
  // Trailing garbage.
  std::vector<uint8_t> padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(DecodeRetryStatsFrame(padded, &decoded));
  // Unknown version byte.
  std::vector<uint8_t> wrong_version = frame;
  wrong_version[0] ^= 0xff;
  EXPECT_FALSE(DecodeRetryStatsFrame(wrong_version, &decoded));
}

TEST(ResilienceConfigFrame, RoundTripsNonDefaultConfig) {
  ResilienceConfig config;
  config.seed = 77;
  config.retry = EnabledRetryPolicy(4);
  config.retry.max_retries_per_round = 100;
  config.hedge.enabled = true;
  config.hedge.trigger_budget_fraction = 0.6;
  config.hedge.max_hedges_per_round = 25;
  config.breaker.consecutive_failures_to_open = 3;
  config.breaker.failure_rate_to_open = 0.5;
  config.breaker.min_samples_for_rate = 10;
  config.breaker.cooldown_rounds = 2;
  config.budget.minutes = 240.0;
  config.latency.checkins_per_minute = 500.0;
  std::vector<uint8_t> frame;
  EncodeResilienceConfigFrame(config, &frame);
  ResilienceConfig decoded;
  ASSERT_TRUE(DecodeResilienceConfigFrame(frame, &decoded));
  EXPECT_EQ(decoded, config);
  // An infinite budget survives the wire: infinity is in-domain for budgets.
  config.budget.minutes = kInf;
  frame.clear();
  EncodeResilienceConfigFrame(config, &frame);
  ASSERT_TRUE(DecodeResilienceConfigFrame(frame, &decoded));
  EXPECT_EQ(decoded, config);
}

TEST(ResilienceConfigFrame, FailsClosed) {
  ResilienceConfig config;
  config.retry = EnabledRetryPolicy(2);
  config.hedge.enabled = true;
  std::vector<uint8_t> frame;
  EncodeResilienceConfigFrame(config, &frame);
  ResilienceConfig decoded;
  for (size_t length = 0; length < frame.size(); ++length) {
    const std::vector<uint8_t> cut(frame.begin(),
                                   frame.begin() + static_cast<ptrdiff_t>(length));
    EXPECT_FALSE(DecodeResilienceConfigFrame(cut, &decoded)) << length;
  }
  std::vector<uint8_t> padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(DecodeResilienceConfigFrame(padded, &decoded));
  std::vector<uint8_t> wrong_version = frame;
  wrong_version[0] ^= 0xff;
  EXPECT_FALSE(DecodeResilienceConfigFrame(wrong_version, &decoded));

  // Out-of-domain hedge flag: locate the hedge byte by diffing the frame
  // against the same config with hedging off, then push it past 1.
  ResilienceConfig hedge_off = config;
  hedge_off.hedge.enabled = false;
  std::vector<uint8_t> off_frame;
  EncodeResilienceConfigFrame(hedge_off, &off_frame);
  ASSERT_EQ(frame.size(), off_frame.size());
  size_t hedge_byte = frame.size();
  for (size_t i = 0; i < frame.size(); ++i) {
    if (frame[i] != off_frame[i]) {
      hedge_byte = i;
      break;
    }
  }
  ASSERT_LT(hedge_byte, frame.size());
  std::vector<uint8_t> bad_flag = frame;
  bad_flag[hedge_byte] = 2;
  EXPECT_FALSE(DecodeResilienceConfigFrame(bad_flag, &decoded));

  // NaN budget minutes.
  ResilienceConfig nan_budget = config;
  nan_budget.budget.minutes = std::nan("");
  std::vector<uint8_t> nan_frame;
  EncodeResilienceConfigFrame(nan_budget, &nan_frame);
  EXPECT_FALSE(DecodeResilienceConfigFrame(nan_frame, &decoded));
}

TEST(ResilienceEventCodec, RoundTripsEveryTypeAndRejectsBadTypes) {
  for (uint8_t type = 1; type <= 11; ++type) {
    ResilienceEvent event;
    event.type = static_cast<ResilienceEventType>(type);
    event.round_id = 2;
    event.client_id = 41;
    event.attempt = type == 1 ? 3 : 0;
    event.minutes = type == 1 ? 1.75 : 0.0;
    std::vector<uint8_t> buffer;
    EncodeResilienceEvent(event, &buffer);
    ResilienceEvent decoded;
    size_t offset = 0;
    ASSERT_TRUE(DecodeResilienceEvent(buffer, &offset, &decoded));
    EXPECT_EQ(offset, buffer.size());
    EXPECT_EQ(decoded, event);
    // The type tag is the leading byte; 0 and 12 are out of domain.
    for (const uint8_t bad : {uint8_t{0}, uint8_t{12}}) {
      std::vector<uint8_t> mutated = buffer;
      mutated[0] = bad;
      offset = 0;
      EXPECT_FALSE(DecodeResilienceEvent(mutated, &offset, &decoded));
    }
  }
}

// ---------------------------------------------------------------------------
// HealthTracker: the per-client circuit-breaker state machine.

TEST(HealthTracker, DisabledPolicyAlwaysAssigns) {
  HealthTracker tracker;
  EXPECT_FALSE(tracker.policy().enabled());
  tracker.ObserveRound(1, {}, {5, 5, 5, 5}, nullptr);
  EXPECT_EQ(tracker.Decision(5), AssignmentDecision::kAssign);
  EXPECT_EQ(tracker.opens(), 0);
  EXPECT_EQ(tracker.quarantined_clients(), 0);
}

TEST(HealthTracker, ConsecutiveFailuresOpenAndSuccessfulProbeCloses) {
  BreakerPolicy policy;
  policy.consecutive_failures_to_open = 2;
  policy.cooldown_rounds = 1;
  HealthTracker tracker(policy);

  tracker.BeginRound();
  tracker.ObserveRound(1, {}, {5}, nullptr);
  EXPECT_EQ(tracker.state(5), BreakerState::kClosed);
  EXPECT_EQ(tracker.Decision(5), AssignmentDecision::kAssign);

  tracker.BeginRound();
  tracker.ObserveRound(2, {}, {5}, nullptr);
  EXPECT_EQ(tracker.state(5), BreakerState::kOpen);
  EXPECT_EQ(tracker.Decision(5), AssignmentDecision::kSkip);
  EXPECT_EQ(tracker.opens(), 1);
  EXPECT_EQ(tracker.quarantined_clients(), 1);

  // Cooldown elapses at the next round boundary: one probe is allowed.
  tracker.BeginRound();
  EXPECT_EQ(tracker.state(5), BreakerState::kHalfOpen);
  EXPECT_EQ(tracker.Decision(5), AssignmentDecision::kProbe);
  EXPECT_EQ(tracker.quarantined_clients(), 1);

  // The probe came back: breaker closes and the history resets, so the
  // next single failure does not immediately re-open.
  tracker.ObserveRound(3, {5}, {}, nullptr);
  EXPECT_EQ(tracker.state(5), BreakerState::kClosed);
  EXPECT_EQ(tracker.Decision(5), AssignmentDecision::kAssign);
  EXPECT_EQ(tracker.closes(), 1);
  EXPECT_EQ(tracker.quarantined_clients(), 0);
  tracker.BeginRound();
  tracker.ObserveRound(4, {}, {5}, nullptr);
  EXPECT_EQ(tracker.state(5), BreakerState::kClosed);
}

TEST(HealthTracker, FailedProbeReopensImmediately) {
  BreakerPolicy policy;
  policy.consecutive_failures_to_open = 2;
  policy.cooldown_rounds = 1;
  HealthTracker tracker(policy);
  tracker.ObserveRound(1, {}, {7}, nullptr);
  tracker.ObserveRound(2, {}, {7}, nullptr);
  ASSERT_EQ(tracker.state(7), BreakerState::kOpen);
  tracker.BeginRound();
  ASSERT_EQ(tracker.state(7), BreakerState::kHalfOpen);
  tracker.ObserveRound(3, {}, {7}, nullptr);
  EXPECT_EQ(tracker.state(7), BreakerState::kOpen);
  EXPECT_EQ(tracker.opens(), 2);
  EXPECT_EQ(tracker.closes(), 0);
}

TEST(HealthTracker, FailureRateTriggerNeedsMinimumSamples) {
  BreakerPolicy policy;
  policy.failure_rate_to_open = 0.5;
  policy.min_samples_for_rate = 4;
  HealthTracker tracker(policy);
  // success, fail, success, fail: the rate hits 0.5 at the 2nd sample, but
  // the trigger must wait for 4.
  tracker.ObserveRound(1, {9}, {}, nullptr);
  tracker.ObserveRound(2, {}, {9}, nullptr);
  EXPECT_EQ(tracker.state(9), BreakerState::kClosed);
  tracker.ObserveRound(3, {9}, {}, nullptr);
  tracker.ObserveRound(4, {}, {9}, nullptr);
  EXPECT_EQ(tracker.state(9), BreakerState::kOpen);
  EXPECT_EQ(tracker.opens(), 1);
}

TEST(HealthTracker, StateSurvivesEncodeDecodeAndPolicyMismatchFailsClosed) {
  BreakerPolicy policy;
  policy.consecutive_failures_to_open = 2;
  policy.cooldown_rounds = 3;
  HealthTracker tracker(policy);
  tracker.ObserveRound(1, {1, 2}, {3, 4}, nullptr);
  tracker.ObserveRound(2, {1}, {3, 4, 2}, nullptr);
  ASSERT_EQ(tracker.state(3), BreakerState::kOpen);
  ASSERT_EQ(tracker.state(4), BreakerState::kOpen);

  std::vector<uint8_t> blob;
  tracker.EncodeTo(&blob);
  HealthTracker restored(policy);
  size_t offset = 0;
  ASSERT_TRUE(HealthTracker::DecodeFrom(blob, &offset, &restored));
  EXPECT_EQ(offset, blob.size());
  std::vector<uint8_t> round_trip;
  restored.EncodeTo(&round_trip);
  EXPECT_EQ(round_trip, blob);
  EXPECT_EQ(restored.state(3), BreakerState::kOpen);
  EXPECT_EQ(restored.opens(), tracker.opens());
  EXPECT_EQ(restored.quarantined_clients(), tracker.quarantined_clients());
  // The restored tracker continues the cooldown exactly where it stopped.
  restored.BeginRound();
  tracker.BeginRound();
  EXPECT_EQ(restored.state(3), tracker.state(3));

  BreakerPolicy other = policy;
  other.cooldown_rounds = 1;
  HealthTracker mismatched(other);
  offset = 0;
  EXPECT_FALSE(HealthTracker::DecodeFrom(blob, &offset, &mismatched));
}

TEST(RetryStatsSummaryTest, MentionsTheHeadlineCounters) {
  const std::string summary = RetryStatsSummary(DistinctStats());
  EXPECT_NE(summary.find("recovered=12"), std::string::npos);
  EXPECT_NE(summary.find("hedges=7"), std::string::npos);
  EXPECT_NE(summary.find("breaker[skips=12"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: the resilience layer over the fault-injection layer.

class ResilienceQueryTest : public ::testing::Test {
 protected:
  ResilienceQueryTest() {
    Rng data_rng(100);
    ages_ = CensusAges(6000, data_rng);
    clients_ = MakePopulation(ages_.values(), ClientConfig{});
    codec_ = FixedPointCodec::Integer(7);
  }

  FederatedQueryConfig BaseConfig() const {
    FederatedQueryConfig config;
    config.adaptive.bits = 7;
    config.cohort.max_cohort_size = 4000;
    return config;
  }

  FederatedQueryResult Run(const FederatedQueryConfig& config, uint64_t seed,
                           PrivacyMeter* meter = nullptr) const {
    Rng rng(seed);
    return RunFederatedMeanQuery(clients_, codec_, config, meter, rng);
  }

  Dataset ages_;
  std::vector<Client> clients_;
  FixedPointCodec codec_ = FixedPointCodec::Integer(7);
};

TEST_F(ResilienceQueryTest, DisabledResilienceIsByteIdenticalToBaseline) {
  FaultRates rates;
  rates.mid_round_dropout = 0.2;
  rates.corrupt_message = 0.1;
  const FaultPlan plan(31, rates);
  FederatedQueryConfig config = BaseConfig();
  config.fault_plan = &plan;
  const FederatedQueryResult baseline = Run(config, 501);
  // A default-constructed ResilienceConfig is the explicit "off" switch.
  config.resilience = ResilienceConfig{};
  ASSERT_FALSE(config.resilience.Enabled());
  const FederatedQueryResult again = Run(config, 501);
  EXPECT_EQ(again.estimate, baseline.estimate);
  EXPECT_EQ(again.faults, baseline.faults);
  EXPECT_EQ(again.retry, baseline.retry);
  EXPECT_EQ(again.retry, RetryStats{});
}

TEST_F(ResilienceQueryTest, RetransmissionsRecoverWireLossWithoutExtraCharges) {
  // Corrupt-only plan: every contacted client computes (and is metered for)
  // its report exactly once; only the wire leg is lossy. Retransmissions
  // must recover reports without a single additional meter charge.
  FaultRates rates;
  rates.corrupt_message = 0.2;
  rates.truncate_message = 0.1;
  const FaultPlan plan(83, rates);

  MeterPolicy generous;
  generous.max_bits_per_value = 2;
  generous.max_bits_per_client = 4;

  FederatedQueryConfig config = BaseConfig();
  config.fault_plan = &plan;
  PrivacyMeter baseline_meter(generous);
  const FederatedQueryResult baseline = Run(config, 613, &baseline_meter);

  config.resilience.retry = EnabledRetryPolicy(3);
  PrivacyMeter resilient_meter(generous);
  const FederatedQueryResult resilient = Run(config, 613, &resilient_meter);

  // Wire-leg faults are recovered by retransmission, never by re-request.
  EXPECT_GT(resilient.retry.retransmits_requested, 0);
  EXPECT_GT(resilient.retry.retry_reports_recovered, 0);
  EXPECT_EQ(resilient.retry.retries_scheduled, 0);
  EXPECT_GT(resilient.retry.backoff_minutes, 0.0);
  EXPECT_GT(resilient.retry.elapsed_minutes, 0.0);

  // Round 1 runs the identical cohort in both runs (retries consume no RNG),
  // so recovery is directly visible in the response count.
  EXPECT_EQ(resilient.round1.contacted, baseline.round1.contacted);
  EXPECT_GT(resilient.round1.responded, baseline.round1.responded);

  // The privacy-meter contract: exactly one charge per contacted client,
  // retransmissions included. Nothing is denied under the generous policy.
  EXPECT_EQ(resilient_meter.denied_charges(), 0);
  EXPECT_EQ(resilient_meter.total_bits(),
            resilient.round1.contacted + resilient.round2.contacted);
  EXPECT_EQ(baseline_meter.total_bits(),
            baseline.round1.contacted + baseline.round2.contacted);
}

TEST_F(ResilienceQueryTest, RetriesFlipStaticFallbackBackToAdaptiveRound2) {
  // The acceptance scenario: a fault plan heavy enough that the passive
  // policies lose round 1 past max_round1_loss and degrade to the static
  // allocation — until retries recover the probe and round 2 goes adaptive.
  FaultRates rates;
  rates.mid_round_dropout = 0.35;
  rates.corrupt_message = 0.1;
  rates.truncate_message = 0.1;
  const FaultPlan plan(271, rates);

  FederatedQueryConfig config = BaseConfig();
  config.fault_plan = &plan;
  config.fault_policy.max_round1_loss = 0.4;

  const FederatedQueryResult without = Run(config, 907);
  ASSERT_TRUE(without.used_static_fallback);
  ASSERT_EQ(without.faults.static_policy_fallbacks, 1);

  MeterPolicy generous;
  generous.max_bits_per_value = 2;
  generous.max_bits_per_client = 4;
  PrivacyMeter meter(generous);
  config.resilience.retry = EnabledRetryPolicy(3);
  const FederatedQueryResult with = Run(config, 907, &meter);

  EXPECT_FALSE(with.used_static_fallback);
  EXPECT_EQ(with.faults.static_policy_fallbacks, 0);
  // Both recovery modes fired: dropouts re-requested, wire loss re-sent.
  EXPECT_GT(with.retry.retries_scheduled, 0);
  EXPECT_GT(with.retry.retransmits_requested, 0);
  EXPECT_GT(with.retry.retry_reports_recovered, 0);
  // A dropped first attempt never disclosed anything, so charges stay
  // bracketed by accepted reports below and contacts above.
  EXPECT_EQ(meter.denied_charges(), 0);
  EXPECT_GE(meter.total_bits(), with.round1.responded + with.round2.responded);
  EXPECT_LE(meter.total_bits(), with.round1.contacted + with.round2.contacted);
}

TEST_F(ResilienceQueryTest, ReactiveHedgesCoverPredictedLateReports) {
  // Stragglers against a finite deadline are predicted late the moment
  // their delay is known; with hedging on, a duplicate assignment goes to a
  // fresh pool client, and dedup keeps exactly one report per work item.
  FaultRates rates;
  rates.straggler = 0.3;
  const FaultPlan plan(47, rates);

  FederatedQueryConfig config = BaseConfig();
  config.fault_plan = &plan;
  config.fault_policy.report_deadline_minutes = 30.0;
  config.resilience.hedge.enabled = true;

  MeterPolicy generous;
  generous.max_bits_per_value = 1;
  generous.max_bits_per_client = 4;
  PrivacyMeter meter(generous);
  const FederatedQueryResult result = Run(config, 321, &meter);

  ASSERT_GT(result.faults.late_reports_rejected, 0);
  EXPECT_GT(result.retry.hedges_issued, 0);
  EXPECT_GT(result.retry.hedge_reports, 0);
  // Conservation: every issued hedge either reported, failed, or was
  // cancelled.
  EXPECT_EQ(result.retry.hedges_issued,
            result.retry.hedge_reports + result.retry.hedge_failures +
                result.retry.hedges_cancelled);
  // With an infinite budget every hedge is reactive (straggler-triggered),
  // so every winning hedge displaced exactly one late original.
  EXPECT_EQ(result.retry.hedges_cancelled, 0);
  EXPECT_EQ(result.retry.hedge_dedup_drops, result.retry.hedge_reports);
  EXPECT_EQ(result.retry.RecoveredTotal(), result.retry.hedge_reports);
  // Each contact — primary or hedge — is metered exactly once.
  EXPECT_EQ(meter.denied_charges(), 0);
  EXPECT_EQ(meter.total_bits(),
            result.round1.contacted + result.round2.contacted);
}

TEST(ResilienceRoundTest, CancelledHedgesAreNeverContactedOrMetered) {
  // Pre-emptive hedging under budget pressure, fault-free: every primary
  // arrives, so every planned hedge is cancelled before the duplicate
  // client computes — no contact, no report, no meter charge.
  Rng data_rng(100);
  const Dataset ages = CensusAges(60, data_rng);
  const std::vector<Client> clients =
      MakePopulation(ages.values(), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);

  std::vector<int64_t> cohort;
  std::vector<int64_t> pool;
  for (int64_t i = 0; i < 40; ++i) cohort.push_back(i);
  for (int64_t i = 40; i < 60; ++i) pool.push_back(i);

  RoundConfig config;
  config.probabilities = GeometricProbabilities(7, 0.5);
  config.epsilon = 4.0;
  config.round_id = 1;
  config.backfill_pool = pool;
  config.resilience.hedge.enabled = true;
  config.resilience.hedge.trigger_budget_fraction = 0.5;
  // One eligible check-in per simulated minute: each contact costs exactly
  // one minute of clock, so the trigger (10 of 20 minutes) crosses after
  // slot 10 and the remaining 30 slots are hedged pre-emptively.
  config.resilience.latency.checkins_per_minute = 1.0;
  config.resilience.budget.minutes = 20.0;

  MeterPolicy policy;
  policy.max_bits_per_value = 1;
  PrivacyMeter meter(policy);
  Rng rng(17);
  const AggregationServer server(codec);
  const RoundOutcome outcome =
      server.RunRound(clients, cohort, config, &meter, rng);

  EXPECT_EQ(outcome.retry.hedges_issued, 30);
  EXPECT_EQ(outcome.retry.hedges_issued, outcome.retry.hedges_cancelled);
  EXPECT_EQ(outcome.retry.hedge_reports, 0);
  EXPECT_EQ(outcome.retry.hedge_failures, 0);
  // The pool was never touched: contacts and charges both equal the cohort.
  EXPECT_EQ(outcome.contacted, 40);
  EXPECT_EQ(outcome.responded, 40);
  EXPECT_EQ(meter.total_bits(), 40);
  EXPECT_EQ(meter.denied_charges(), 0);
  EXPECT_GT(outcome.retry.elapsed_minutes, 0.0);
}

// ---------------------------------------------------------------------------
// Campaign integration: breaker quarantine spans rounds, queries, and ticks.

TEST(ResilienceCampaignTest, BreakerQuarantineSpansQueriesOfACampaign) {
  Rng data_rng(5);
  const Dataset ages = CensusAges(300, data_rng);
  const std::vector<Client> population =
      MakePopulation(ages.values(), ClientConfig{});
  const std::vector<FixedPointCodec> codecs = {FixedPointCodec::Integer(7)};
  const std::vector<const std::vector<Client>*> populations = {&population};

  // Deterministic repeat offenders: fault decisions are keyed on
  // (round, client), and every tick reuses round ids 1 and 2, so the same
  // clients fail tick after tick and their failure streaks accumulate.
  FaultRates rates;
  rates.mid_round_dropout = 0.4;
  const FaultPlan plan(149, rates);

  std::vector<CampaignQuery> queries;
  CampaignQuery query;
  query.name = "ages";
  query.value_id = 0;
  query.query.adaptive.bits = 7;
  query.query.fault_plan = &plan;
  queries.push_back(query);

  ResilienceConfig resilience;
  resilience.breaker.consecutive_failures_to_open = 2;
  resilience.breaker.cooldown_rounds = 4;
  MeasurementCampaign campaign(std::move(queries), nullptr, resilience);
  ASSERT_NE(campaign.health(), nullptr);

  Rng rng(2025);
  for (int64_t tick = 0; tick < 5; ++tick) {
    campaign.RunTick(tick, populations, codecs, rng);
  }

  const RetryStats& stats = campaign.retry_stats();
  EXPECT_GT(stats.breaker_opens, 0);
  // The quarantine bit: opened breakers withheld assignments in later
  // rounds, and cooldown expiry let probes through.
  EXPECT_GT(stats.breaker_skips, 0);
  EXPECT_GT(stats.breaker_probes, 0);
  EXPECT_GT(campaign.health()->tracked_clients(), 0);
  EXPECT_EQ(campaign.health()->opens(), stats.breaker_opens);
}

// ---------------------------------------------------------------------------
// Crash matrix: resilient campaign killed at every journal-record boundary.

class ResilienceRecoveryTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kSeed = 3033;
  static constexpr int64_t kTicks = 2;

  ResilienceRecoveryTest() {
    Rng data_rng(7);
    const Dataset ages = CensusAges(60, data_rng);
    population_ = MakePopulation(ages.values(), ClientConfig{});
    codecs_ = {FixedPointCodec::Integer(7), FixedPointCodec::Integer(7)};
    populations_ = {&population_, &population_};

    FaultRates rates;
    rates.mid_round_dropout = 0.1;
    rates.corrupt_message = 0.05;
    rates.truncate_message = 0.05;
    rates.straggler = 0.1;
    plan_.emplace(97, rates);

    policy_.max_bits_per_value = 1;
    policy_.max_bits_per_client = 2;
    policy_.max_epsilon_per_client = 100.0;

    // Every mechanism armed: retries, hedging under a finite per-tick
    // budget tight enough to cross the trigger, and the breaker.
    resilience_.seed = 41;
    resilience_.retry = EnabledRetryPolicy(2);
    resilience_.hedge.enabled = true;
    resilience_.breaker.consecutive_failures_to_open = 2;
    resilience_.breaker.cooldown_rounds = 2;
    resilience_.budget.minutes = 260.0;
  }

  ~ResilienceRecoveryTest() override {
    for (const std::string& dir : dirs_) std::filesystem::remove_all(dir);
  }

  std::vector<CampaignQuery> MakeQueries() const {
    std::vector<CampaignQuery> queries;
    for (int i = 0; i < 2; ++i) {
      CampaignQuery query;
      query.name = std::string(i == 0 ? "a" : "b");
      query.value_id = i;
      query.cadence_ticks = 1;
      query.query.adaptive.bits = 7;
      // Leave leftover clients so hedges and backfill have a pool to draw
      // replacement devices from.
      query.query.cohort.max_cohort_size = 40;
      query.query.fault_plan = &*plan_;
      query.query.fault_policy.report_deadline_minutes = 30.0;
      queries.push_back(query);
    }
    return queries;
  }

  std::string FreshDir(const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/resilience_" + tag;
    std::filesystem::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }

  DurableCampaignOptions Options(const std::string& dir) const {
    DurableCampaignOptions options;
    options.state_dir = dir;
    options.seed = kSeed;
    options.fsync = false;
    return options;
  }

  // The fingerprint every crash point must reproduce. Campaign-level
  // RetryStats only pool the queries a process ran *live* (restored queries
  // serve journaled summaries), so the retry schedule is compared where it
  // is durable: the journal itself, byte for byte.
  struct Fingerprint {
    std::vector<CampaignTickResult> history;
    std::vector<uint8_t> meter;
    std::map<int64_t, std::vector<double>> bit_means;
    std::vector<JournalRecord> journal;
  };

  Fingerprint RunToCompletion(DurableCampaignRunner* runner,
                              const std::string& dir) {
    for (int64_t tick = runner->next_tick(); tick < kTicks; ++tick) {
      runner->RunTick(tick, populations_, codecs_);
    }
    Fingerprint fingerprint;
    fingerprint.history = runner->campaign().history();
    runner->meter().EncodeTo(&fingerprint.meter);
    fingerprint.bit_means = runner->bit_means_cache();
    JournalReadResult journal;
    std::string error;
    EXPECT_TRUE(ReadJournal(dir + "/journal.wal", 0, &journal, &error))
        << error;
    EXPECT_FALSE(journal.torn_tail);
    fingerprint.journal = std::move(journal.records);
    return fingerprint;
  }

  static void ExpectSameJournal(const std::vector<JournalRecord>& actual,
                                const std::vector<JournalRecord>& expected,
                                size_t k) {
    ASSERT_EQ(actual.size(), expected.size()) << "k=" << k;
    for (size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(actual[i].type, expected[i].type) << "k=" << k << " i=" << i;
      ASSERT_EQ(actual[i].seq, expected[i].seq) << "k=" << k << " i=" << i;
      ASSERT_EQ(actual[i].payload, expected[i].payload)
          << "k=" << k << " i=" << i;
    }
  }

  std::vector<Client> population_;
  std::vector<const std::vector<Client>*> populations_;
  std::vector<FixedPointCodec> codecs_;
  std::optional<FaultPlan> plan_;
  MeterPolicy policy_;
  ResilienceConfig resilience_;
  std::vector<std::string> dirs_;
};

TEST_F(ResilienceRecoveryTest, ResilientDurableRunMatchesPlainCampaign) {
  const std::string dir = FreshDir("obs");
  DurableCampaignRunner runner(MakeQueries(), policy_, Options(dir),
                               resilience_);
  std::string error;
  ASSERT_TRUE(runner.Open(&error)) << error;
  const Fingerprint durable = RunToCompletion(&runner, dir);

  PrivacyMeter meter(policy_);
  MeasurementCampaign plain(MakeQueries(), &meter, resilience_);
  Rng rng(kSeed);
  for (int64_t tick = 0; tick < kTicks; ++tick) {
    plain.RunTick(tick, populations_, codecs_, rng);
  }
  EXPECT_EQ(durable.history, plain.history());
  std::vector<uint8_t> plain_meter;
  meter.EncodeTo(&plain_meter);
  EXPECT_EQ(durable.meter, plain_meter);
  // The journaling observer does not perturb the recovery schedule either.
  EXPECT_EQ(runner.campaign().retry_stats(), plain.retry_stats());
}

TEST_F(ResilienceRecoveryTest, KillAtEveryJournalRecordReplaysRetrySchedule) {
  const std::string base_dir = FreshDir("baseline");
  DurableCampaignRunner baseline(MakeQueries(), policy_, Options(base_dir),
                                 resilience_);
  std::string error;
  ASSERT_TRUE(baseline.Open(&error)) << error;
  const Fingerprint expected = RunToCompletion(&baseline, base_dir);

  // The run must actually exercise the resilience layer for the matrix to
  // mean anything: journaled retry/hedge decisions and live recoveries.
  int64_t resilience_records = 0;
  for (const JournalRecord& record : expected.journal) {
    if (record.type == JournalRecordType::kResilienceEvent) {
      ResilienceEventRecord event;
      ASSERT_TRUE(DecodeResilienceEventRecord(record.payload, &event));
      ++resilience_records;
    }
  }
  ASSERT_GT(resilience_records, 0);
  ASSERT_GT(baseline.campaign().retry_stats().RecoveredTotal(), 0);

  const size_t total = expected.journal.size();
  ASSERT_GT(total, 100u);
  for (size_t k = 0; k <= total; ++k) {
    const std::string dir = FreshDir("kill_" + std::to_string(k));
    std::filesystem::create_directories(dir);
    std::vector<uint8_t> prefix_bytes;
    for (size_t i = 0; i < k; ++i) {
      AppendJournalFrame(expected.journal[i].type, expected.journal[i].seq,
                         expected.journal[i].payload, &prefix_bytes);
    }
    std::FILE* file = std::fopen((dir + "/journal.wal").c_str(), "wb");
    ASSERT_NE(file, nullptr);
    if (!prefix_bytes.empty()) {
      // k == 0 writes an empty journal; empty data() may be null.
      ASSERT_EQ(std::fwrite(prefix_bytes.data(), 1, prefix_bytes.size(), file),
                prefix_bytes.size());
    }
    std::fclose(file);

    DurableCampaignRunner runner(MakeQueries(), policy_, Options(dir),
                                 resilience_);
    ASSERT_TRUE(runner.Open(&error)) << "k=" << k << ": " << error;
    EXPECT_EQ(runner.recovery_info().recovered, k > 0) << k;
    const Fingerprint actual = RunToCompletion(&runner, dir);
    ASSERT_EQ(actual.history, expected.history) << "diverged at k=" << k;
    ASSERT_EQ(actual.meter, expected.meter)
        << "meter ledger diverged at k=" << k;
    ASSERT_EQ(actual.bit_means, expected.bit_means) << k;
    // The recovered journal — retry schedule, hedges, breaker transitions,
    // charges — is byte-identical to the uninterrupted run's.
    ExpectSameJournal(actual.journal, expected.journal, k);
  }
}

}  // namespace
}  // namespace bitpush
