// bitpush-lint: allow(privacy-metering): rejection-path tests submit deliberately forged reports; no client value is behind them

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "data/census.h"
#include "federated/session.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

SessionConfig Config(int bits) {
  SessionConfig config;
  config.probabilities = GeometricProbabilities(bits, 0.5);
  return config;
}

TEST(SessionTest, AssignmentsFollowDeficitAllocation) {
  const FixedPointCodec codec = FixedPointCodec::Integer(3);
  SessionConfig config;
  config.probabilities = {0.5, 0.25, 0.25};
  CollectionSession session(codec, config);
  std::vector<int64_t> counts(3, 0);
  for (int64_t client = 0; client < 1000; ++client) {
    BitRequest request;
    ASSERT_TRUE(session.IssueAssignment(client, &request));
    ++counts[static_cast<size_t>(request.bit_index)];
  }
  // Streaming deficit allocation tracks n * p_j exactly at n = 1000.
  EXPECT_EQ(counts[0], 500);
  EXPECT_EQ(counts[1], 250);
  EXPECT_EQ(counts[2], 250);
  EXPECT_EQ(session.assignments_issued(), 1000);
}

TEST(SessionTest, ProportionsHoldAtEveryPrefix) {
  const FixedPointCodec codec = FixedPointCodec::Integer(2);
  SessionConfig config;
  config.probabilities = {0.75, 0.25};
  CollectionSession session(codec, config);
  int64_t count0 = 0;
  for (int64_t client = 1; client <= 200; ++client) {
    BitRequest request;
    session.IssueAssignment(client, &request);
    if (request.bit_index == 0) ++count0;
    // Realized share within one report of the target at every moment.
    EXPECT_NEAR(static_cast<double>(count0),
                0.75 * static_cast<double>(client), 1.0)
        << "after " << client;
  }
}

TEST(SessionTest, RepeatAssignmentIsStable) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  CollectionSession session(codec, Config(4));
  BitRequest first;
  BitRequest second;
  ASSERT_TRUE(session.IssueAssignment(7, &first));
  ASSERT_TRUE(session.IssueAssignment(7, &second));
  EXPECT_EQ(first.bit_index, second.bit_index);
  EXPECT_EQ(session.assignments_issued(), 1);
}

TEST(SessionTest, AcceptsExactlyOneReportPerClient) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  CollectionSession session(codec, Config(4));
  BitRequest request;
  session.IssueAssignment(1, &request);
  const BitReport report{1, request.bit_index, 1};
  EXPECT_EQ(session.SubmitReport(report), ReportRejection::kAccepted);
  EXPECT_EQ(session.SubmitReport(report), ReportRejection::kDuplicate);
  EXPECT_EQ(session.accepted_reports(), 1);
  EXPECT_EQ(session.rejected_reports(), 1);
}

TEST(SessionTest, RejectsUnknownWrongIndexAndMalformed) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  CollectionSession session(codec, Config(4));
  BitRequest request;
  session.IssueAssignment(1, &request);

  EXPECT_EQ(session.SubmitReport(BitReport{99, request.bit_index, 1}),
            ReportRejection::kUnknownClient);
  EXPECT_EQ(session.SubmitReport(
                BitReport{1, (request.bit_index + 1) % 4, 1}),
            ReportRejection::kWrongIndex);
  EXPECT_EQ(session.SubmitReport(BitReport{1, request.bit_index, 2}),
            ReportRejection::kMalformedBit);
  EXPECT_EQ(session.accepted_reports(), 0);
  EXPECT_EQ(session.rejected_reports(), 3);
}

TEST(SessionTest, AutoClosesAtTargetAndRejectsLateReports) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  SessionConfig config = Config(4);
  config.target_reports = 2;
  CollectionSession session(codec, config);
  BitRequest r1;
  BitRequest r2;
  BitRequest r3;
  session.IssueAssignment(1, &r1);
  session.IssueAssignment(2, &r2);
  session.IssueAssignment(3, &r3);
  EXPECT_EQ(session.SubmitReport(BitReport{1, r1.bit_index, 0}),
            ReportRejection::kAccepted);
  EXPECT_EQ(session.state(), SessionState::kCollecting);
  EXPECT_EQ(session.SubmitReport(BitReport{2, r2.bit_index, 1}),
            ReportRejection::kAccepted);
  EXPECT_EQ(session.state(), SessionState::kClosed);
  // Late report and late assignment both rejected.
  EXPECT_EQ(session.SubmitReport(BitReport{3, r3.bit_index, 1}),
            ReportRejection::kSessionClosed);
  BitRequest late;
  EXPECT_FALSE(session.IssueAssignment(4, &late));
}

TEST(SessionTest, DeadlineBoundaryIsInclusive) {
  // Pins the documented contract in SessionConfig: a report arriving
  // *exactly at* the deadline is accepted; only strictly later arrivals
  // are late. The same inclusive boundary applies when the deadline budget
  // is the binding cutoff.
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  SessionConfig config = Config(4);
  config.report_deadline = 30.0;
  ASSERT_EQ(config.effective_deadline(), 30.0);
  CollectionSession session(codec, config);
  BitRequest r1;
  BitRequest r2;
  session.IssueAssignment(1, &r1);
  session.IssueAssignment(2, &r2);
  EXPECT_EQ(session.SubmitReport(BitReport{1, r1.bit_index, 1}, 30.0),
            ReportRejection::kAccepted);
  EXPECT_EQ(session.SubmitReport(BitReport{2, r2.bit_index, 1},
                                 std::nextafter(30.0, 31.0)),
            ReportRejection::kLate);
  EXPECT_EQ(session.accepted_reports(), 1);
  EXPECT_EQ(session.late_reports(), 1);

  // A tighter deadline budget takes over as the effective cutoff, with the
  // same inclusive boundary.
  SessionConfig budgeted = Config(4);
  budgeted.report_deadline = 30.0;
  budgeted.deadline_budget_minutes = 20.0;
  ASSERT_EQ(budgeted.effective_deadline(), 20.0);
  CollectionSession clamped(codec, budgeted);
  BitRequest r3;
  BitRequest r4;
  clamped.IssueAssignment(3, &r3);
  clamped.IssueAssignment(4, &r4);
  EXPECT_EQ(clamped.SubmitReport(BitReport{3, r3.bit_index, 0}, 20.0),
            ReportRejection::kAccepted);
  EXPECT_EQ(clamped.SubmitReport(BitReport{4, r4.bit_index, 0},
                                 std::nextafter(20.0, 21.0)),
            ReportRejection::kLate);
  EXPECT_EQ(clamped.late_reports(), 1);
}

TEST(SessionTest, EndToEndEstimateMatchesTruth) {
  Rng rng(1);
  const Dataset ages = CensusAges(20000, rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  CollectionSession session(codec, Config(7));
  for (int64_t id = 0; id < ages.size(); ++id) {
    BitRequest request;
    ASSERT_TRUE(session.IssueAssignment(id, &request));
    const uint64_t codeword =
        codec.Encode(ages.values()[static_cast<size_t>(id)]);
    session.SubmitReport(BitReport{
        id, request.bit_index,
        FixedPointCodec::Bit(codeword, request.bit_index)});
  }
  session.Close();
  EXPECT_NEAR(session.Estimate(), ages.truth().mean,
              0.1 * ages.truth().mean);
}

TEST(SessionTest, RunningEstimateAvailableMidCollection) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  SessionConfig config;
  config.probabilities = UniformProbabilities(4);
  CollectionSession session(codec, config);
  for (int64_t id = 0; id < 400; ++id) {
    BitRequest request;
    session.IssueAssignment(id, &request);
    session.SubmitReport(BitReport{
        id, request.bit_index,
        FixedPointCodec::Bit(9, request.bit_index)});  // constant 9
  }
  EXPECT_NEAR(session.Estimate(), 9.0, 1e-9);
  EXPECT_EQ(session.state(), SessionState::kCollecting);
}

TEST(SessionTest, EncodeDecodeRoundTripsMidCollection) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  SessionConfig config;
  config.probabilities = UniformProbabilities(4);
  config.epsilon = 0.5;
  config.round_id = 11;
  config.value_id = 3;
  CollectionSession session(codec, config);
  for (int64_t id = 0; id < 50; ++id) {
    BitRequest request;
    session.IssueAssignment(id, &request);
    if (id % 3 != 0) {
      session.SubmitReport(BitReport{
          id, request.bit_index,
          FixedPointCodec::Bit(9, request.bit_index)});
    }
  }
  std::vector<uint8_t> encoded;
  session.EncodeTo(&encoded);
  size_t offset = 0;
  std::optional<CollectionSession> decoded;
  ASSERT_TRUE(CollectionSession::Decode(encoded, &offset, &decoded));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(offset, encoded.size());
  EXPECT_EQ(decoded->state(), SessionState::kCollecting);
  EXPECT_EQ(decoded->assignments_issued(), session.assignments_issued());
  EXPECT_EQ(decoded->accepted_reports(), session.accepted_reports());
  EXPECT_DOUBLE_EQ(decoded->Estimate(), session.Estimate());
  // Canonical: equal sessions encode to equal bytes.
  std::vector<uint8_t> reencoded;
  decoded->EncodeTo(&reencoded);
  EXPECT_EQ(encoded, reencoded);
  // Mutating a count must fail the internal-consistency validation rather
  // than restore a session whose tallies disagree with its assignments.
  for (size_t pos = 0; pos < encoded.size(); pos += 7) {
    std::vector<uint8_t> corrupt = encoded;
    corrupt[pos] ^= 0x10;
    offset = 0;
    std::optional<CollectionSession> out;
    CollectionSession::Decode(corrupt, &offset, &out);  // must not crash
  }
}

// The durability hook fires exactly once per state transition: fresh
// assignments only (repeat check-ins are cached), accepted reports only,
// and a single close even when Close() is called again.
TEST(SessionTest, JournalHookSeesEachTransitionOnce) {
  class CountingJournal : public CollectionSession::Journal {
   public:
    void OnAssignmentIssued(int64_t, const BitRequest&) override {
      ++assignments;
    }
    void OnReportAccepted(const BitReport&) override { ++reports; }
    void OnClosed() override { ++closes; }
    int assignments = 0;
    int reports = 0;
    int closes = 0;
  };
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  CollectionSession session(codec, Config(4));
  CountingJournal journal;
  session.set_journal(&journal);

  BitRequest request;
  ASSERT_TRUE(session.IssueAssignment(1, &request));
  ASSERT_TRUE(session.IssueAssignment(1, &request));  // cached, not re-journaled
  ASSERT_TRUE(session.IssueAssignment(2, &request));
  EXPECT_EQ(journal.assignments, 2);

  BitRequest first;
  session.IssueAssignment(1, &first);
  EXPECT_EQ(session.SubmitReport(BitReport{1, first.bit_index, 1}),
            ReportRejection::kAccepted);
  EXPECT_EQ(session.SubmitReport(BitReport{1, first.bit_index, 1}),
            ReportRejection::kDuplicate);  // rejected: not journaled
  EXPECT_EQ(journal.reports, 1);

  session.Close();
  session.Close();
  EXPECT_EQ(journal.closes, 1);
}

TEST(SessionDeathTest, InvalidConfigAborts) {
  const FixedPointCodec codec = FixedPointCodec::Integer(4);
  SessionConfig bad;
  bad.probabilities = {0.5, 0.6, 0.1, 0.1};
  EXPECT_DEATH(CollectionSession(codec, bad),
               "probabilities must sum to 1");
  SessionConfig mismatched = Config(5);
  EXPECT_DEATH(CollectionSession(codec, mismatched),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
