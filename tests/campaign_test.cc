#include <vector>

#include <gtest/gtest.h>

#include "data/census.h"
#include "federated/campaign.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

CampaignQuery MakeQuery(const std::string& name, int64_t value_id,
                        int64_t cadence, int64_t phase = 0) {
  CampaignQuery query;
  query.name = name;
  query.value_id = value_id;
  query.cadence_ticks = cadence;
  query.phase = phase;
  query.query.adaptive.bits = 7;
  return query;
}

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest() : rng_(1) {
    const Dataset ages = CensusAges(3000, rng_);
    population_ = MakePopulation(ages.values(), ClientConfig{});
    truth_ = ages.truth().mean;
    codec_.push_back(FixedPointCodec::Integer(7));
  }

  Rng rng_;
  std::vector<Client> population_;
  double truth_ = 0.0;
  std::vector<FixedPointCodec> codec_;
};

TEST_F(CampaignTest, RunsOnCadence) {
  MeasurementCampaign campaign(
      {MakeQuery("daily", 0, 1), MakeQuery("weekly", 1, 7)}, nullptr);
  const std::vector<const std::vector<Client>*> populations = {
      &population_, &population_};
  const std::vector<FixedPointCodec> codecs = {codec_[0], codec_[0]};

  int daily_runs = 0;
  int weekly_runs = 0;
  for (int64_t tick = 0; tick < 14; ++tick) {
    for (const CampaignTickResult& result :
         campaign.RunTick(tick, populations, codecs, rng_)) {
      if (result.query_name == "daily") ++daily_runs;
      if (result.query_name == "weekly") ++weekly_runs;
      EXPECT_EQ(result.status, CampaignTickResult::Status::kRan);
      EXPECT_NEAR(result.estimate, truth_, 0.2 * truth_);
    }
  }
  EXPECT_EQ(daily_runs, 14);
  EXPECT_EQ(weekly_runs, 2);  // ticks 0 and 7
  EXPECT_EQ(campaign.runs(), 16);
  EXPECT_EQ(campaign.skips(), 0);
}

TEST_F(CampaignTest, PhaseOffsetsTheSchedule) {
  MeasurementCampaign campaign({MakeQuery("offset", 0, 3, /*phase=*/2)},
                               nullptr);
  const std::vector<const std::vector<Client>*> populations = {
      &population_};
  std::vector<int64_t> ran_ticks;
  for (int64_t tick = 0; tick < 9; ++tick) {
    for (const CampaignTickResult& result :
         campaign.RunTick(tick, populations, codec_, rng_)) {
      ran_ticks.push_back(result.tick);
    }
  }
  EXPECT_EQ(ran_ticks, (std::vector<int64_t>{2, 5, 8}));
}

TEST_F(CampaignTest, SharedBudgetExhaustsPerValue) {
  // One bit per value per client: the second tick of the same metric
  // collects nothing and is reported as a budget skip.
  PrivacyMeter meter{MeterPolicy{}};
  MeasurementCampaign campaign({MakeQuery("metric", 0, 1)}, &meter);
  const std::vector<const std::vector<Client>*> populations = {
      &population_};

  const auto first = campaign.RunTick(0, populations, codec_, rng_);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].status, CampaignTickResult::Status::kRan);

  const auto second = campaign.RunTick(1, populations, codec_, rng_);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].status, CampaignTickResult::Status::kSkippedBudget);
  EXPECT_EQ(second[0].reports, 0);
  EXPECT_EQ(campaign.skips(), 1);
}

TEST_F(CampaignTest, DistinctValueIdsDrawSeparateBudgets) {
  MeterPolicy policy;
  policy.max_bits_per_client = 10;
  PrivacyMeter meter(policy);
  MeasurementCampaign campaign(
      {MakeQuery("a", 0, 1), MakeQuery("b", 1, 1)}, &meter);
  const std::vector<const std::vector<Client>*> populations = {
      &population_, &population_};
  const std::vector<FixedPointCodec> codecs = {codec_[0], codec_[0]};
  const auto results = campaign.RunTick(0, populations, codecs, rng_);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, CampaignTickResult::Status::kRan);
  EXPECT_EQ(results[1].status, CampaignTickResult::Status::kRan);
}

TEST_F(CampaignTest, CohortMinimumSkips) {
  CampaignQuery query = MakeQuery("selective", 0, 1);
  query.query.cohort.min_cohort_size = 100000;  // unreachable
  MeasurementCampaign campaign({query}, nullptr);
  const std::vector<const std::vector<Client>*> populations = {
      &population_};
  const auto results = campaign.RunTick(0, populations, codec_, rng_);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CampaignTickResult::Status::kSkippedCohort);
}

TEST_F(CampaignTest, HistoryAccumulates) {
  MeasurementCampaign campaign({MakeQuery("m", 0, 1)}, nullptr);
  const std::vector<const std::vector<Client>*> populations = {
      &population_};
  campaign.RunTick(0, populations, codec_, rng_);
  campaign.RunTick(1, populations, codec_, rng_);
  EXPECT_EQ(campaign.history().size(), 2u);
  EXPECT_EQ(campaign.history()[1].tick, 1);
}

TEST(CampaignDeathTest, InvalidConfigurationAborts) {
  EXPECT_DEATH(MeasurementCampaign({}, nullptr), "BITPUSH_CHECK failed");
  CampaignQuery a = MakeQuery("dup", 0, 1);
  CampaignQuery b = MakeQuery("dup", 1, 1);
  EXPECT_DEATH(MeasurementCampaign({a, b}, nullptr),
               "duplicate query name");
  CampaignQuery bad_cadence = MakeQuery("x", 0, 0);
  EXPECT_DEATH(MeasurementCampaign({bad_cadence}, nullptr),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
