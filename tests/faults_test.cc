// Fault-matrix suite for the fault-injection layer (federated/faults.h).
//
// Each single-fault scenario runs the full two-round query end to end and
// asserts two things: the exact count identities the deterministic FaultPlan
// guarantees (injections and reactions are counted, not sampled, so these
// are equalities), and that the estimate stays unbiased — sample mean over
// repetitions within four standard errors of the census truth. Seeds are
// fixed per docs/TESTING.md; tolerances come from the observed spread, not
// golden values.

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "data/census.h"
#include "federated/faults.h"
#include "federated/fleet.h"
#include "federated/round.h"
#include "federated/session.h"
#include "rng/rng.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

FaultRates SingleRate(FaultType type, double rate) {
  FaultRates rates;
  switch (type) {
    case FaultType::kMidRoundDropout:
      rates.mid_round_dropout = rate;
      break;
    case FaultType::kStraggler:
      rates.straggler = rate;
      break;
    case FaultType::kCorruptMessage:
      rates.corrupt_message = rate;
      break;
    case FaultType::kTruncateMessage:
      rates.truncate_message = rate;
      break;
    case FaultType::kRoundBoundaryCrash:
      rates.round_boundary_crash = rate;
      break;
    case FaultType::kNone:
      break;
  }
  return rates;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest() {
    Rng data_rng(100);
    ages_ = CensusAges(6000, data_rng);
    clients_ = MakePopulation(ages_.values(), ClientConfig{});
    codec_ = FixedPointCodec::Integer(7);
  }

  // bits = 7, cohort capped at 4000 so 2000 eligible clients remain as the
  // backfill pools.
  FederatedQueryConfig BaseConfig() const {
    FederatedQueryConfig config;
    config.adaptive.bits = 7;
    config.cohort.max_cohort_size = 4000;
    return config;
  }

  FederatedQueryResult RunWithPlan(const FaultPlan& plan,
                                   const FaultPolicy& policy,
                                   uint64_t seed,
                                   PrivacyMeter* meter = nullptr) const {
    FederatedQueryConfig config = BaseConfig();
    config.fault_plan = &plan;
    config.fault_policy = policy;
    Rng rng(seed);
    return RunFederatedMeanQuery(clients_, codec_, config, meter, rng);
  }

  Dataset ages_;
  std::vector<Client> clients_;
  FixedPointCodec codec_ = FixedPointCodec::Integer(7);
};

// ---------------------------------------------------------------------------
// FaultPlan: the deterministic schedule itself.

TEST(FaultPlanTest, DisabledPlanNeverInjects) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (int64_t client = 0; client < 1000; ++client) {
    EXPECT_EQ(plan.Decide(1, client), FaultType::kNone);
    EXPECT_EQ(plan.Decide(2, client), FaultType::kNone);
  }
}

TEST(FaultPlanTest, DecisionsAreDeterministicAndSeedSensitive) {
  FaultRates rates;
  rates.mid_round_dropout = 0.1;
  rates.straggler = 0.1;
  rates.corrupt_message = 0.1;
  const FaultPlan a(7, rates);
  const FaultPlan b(7, rates);
  const FaultPlan c(8, rates);
  int differs = 0;
  for (int64_t round = 1; round <= 2; ++round) {
    for (int64_t client = 0; client < 2000; ++client) {
      EXPECT_EQ(a.Decide(round, client), b.Decide(round, client));
      differs += a.Decide(round, client) != c.Decide(round, client) ? 1 : 0;
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultPlanTest, InjectionRateTracksConfiguredRate) {
  const FaultPlan plan(21, SingleRate(FaultType::kMidRoundDropout, 0.2));
  int64_t hits = 0;
  const int64_t n = 20000;
  for (int64_t client = 0; client < n; ++client) {
    hits += plan.Decide(1, client) == FaultType::kMidRoundDropout ? 1 : 0;
  }
  // Binomial(20000, 0.2): 4 standard deviations is ~226.
  EXPECT_NEAR(static_cast<double>(hits), 0.2 * static_cast<double>(n), 230.0);
}

TEST(FaultPlanTest, CrashOnlyStrikesRoundOne) {
  const FaultPlan plan(22, SingleRate(FaultType::kRoundBoundaryCrash, 0.3));
  int64_t round1_crashes = 0;
  for (int64_t client = 0; client < 5000; ++client) {
    round1_crashes +=
        plan.Decide(1, client) == FaultType::kRoundBoundaryCrash ? 1 : 0;
    // In any later round the crash band maps to kNone.
    EXPECT_EQ(plan.Decide(2, client), FaultType::kNone);
    EXPECT_EQ(plan.Decide(3, client), FaultType::kNone);
  }
  EXPECT_GT(round1_crashes, 0);
}

TEST(FaultPlanTest, StragglerDelayWithinWindow) {
  const FaultPlan plan(23, SingleRate(FaultType::kStraggler, 0.5));
  for (int64_t client = 0; client < 1000; ++client) {
    const double delay = plan.StragglerDelayMinutes(1, client);
    EXPECT_GE(delay, 1.0);
    EXPECT_LE(delay, 60.0);
  }
}

TEST(FaultPlanTest, CorruptBufferAlwaysChangesBytes) {
  const FaultPlan plan(24, SingleRate(FaultType::kCorruptMessage, 0.5));
  for (int64_t client = 0; client < 500; ++client) {
    std::vector<uint8_t> original(10, 0xAB);
    std::vector<uint8_t> corrupted = original;
    plan.CorruptBuffer(1, client, &corrupted);
    EXPECT_EQ(corrupted.size(), original.size());
    EXPECT_NE(corrupted, original);
    // Deterministic: the same (round, client) garbles identically.
    std::vector<uint8_t> again(10, 0xAB);
    plan.CorruptBuffer(1, client, &again);
    EXPECT_EQ(corrupted, again);
  }
}

TEST(FaultPlanTest, TruncatedSizeIsAlwaysShort) {
  const FaultPlan plan(25, SingleRate(FaultType::kTruncateMessage, 0.5));
  for (int64_t client = 0; client < 1000; ++client) {
    EXPECT_LT(plan.TruncatedSize(1, client, 10), 10u);
  }
}

TEST(FaultPlanDeathTest, RejectsInvalidRates) {
  FaultRates negative;
  negative.straggler = -0.1;
  EXPECT_DEATH(FaultPlan(1, negative), "BITPUSH_CHECK failed");
  FaultRates oversum;
  oversum.mid_round_dropout = 0.6;
  oversum.corrupt_message = 0.6;
  EXPECT_DEATH(FaultPlan(1, oversum), "BITPUSH_CHECK failed");
}

// ---------------------------------------------------------------------------
// The wire leg of a faulted report.

TEST(FaultDeliveryTest, TruncatedFramesAreAlwaysRejected) {
  const FaultPlan plan(31, SingleRate(FaultType::kTruncateMessage, 1.0));
  FaultStats stats;
  for (int64_t client = 0; client < 1000; ++client) {
    const BitReport report{client, 3, 1};
    EXPECT_FALSE(DeliverFaultedReport(plan, 1, client,
                                      FaultType::kTruncateMessage, report,
                                      &stats)
                     .has_value());
  }
  EXPECT_EQ(stats.injected_truncations, 1000);
  EXPECT_EQ(stats.truncated_reports_rejected, 1000);
  EXPECT_EQ(stats.corrupt_reports_rejected, 0);
}

TEST(FaultDeliveryTest, CorruptionSplitsIntoRejectedAndAccepted) {
  const FaultPlan plan(32, SingleRate(FaultType::kCorruptMessage, 1.0));
  FaultStats stats;
  for (int64_t client = 0; client < 2000; ++client) {
    const BitReport report{client, 3, 1};
    const std::optional<BitReport> delivered = DeliverFaultedReport(
        plan, 1, client, FaultType::kCorruptMessage, report, &stats);
    if (delivered.has_value()) {
      // Whatever decoded is still protocol-shaped.
      EXPECT_TRUE(delivered->bit == 0 || delivered->bit == 1);
    }
  }
  EXPECT_EQ(stats.injected_corruptions, 2000);
  EXPECT_EQ(stats.corrupt_reports_rejected + stats.corrupt_reports_accepted,
            2000);
  // Most flips land outside the bit byte, so most frames still decode.
  EXPECT_GT(stats.corrupt_reports_accepted, 0);
  EXPECT_GT(stats.corrupt_reports_rejected, 0);
}

// ---------------------------------------------------------------------------
// The fault matrix: each single-fault scenario end to end, exact counts.

TEST_F(FaultMatrixTest, MidRoundDropoutCountsExactly) {
  const FaultPlan plan(41, SingleRate(FaultType::kMidRoundDropout, 0.1));
  const FederatedQueryResult result = RunWithPlan(plan, FaultPolicy{}, 201);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.faults.injected_dropouts, 0);
  for (const RoundOutcome* round : {&result.round1, &result.round2}) {
    EXPECT_EQ(round->responded,
              round->contacted - round->faults.injected_dropouts);
  }
  EXPECT_EQ(result.faults.injected_dropouts,
            result.round1.faults.injected_dropouts +
                result.round2.faults.injected_dropouts);
  EXPECT_EQ(result.faults.InjectedTotal(), result.faults.injected_dropouts);
}

TEST_F(FaultMatrixTest, StragglersRejectedUnderFiniteDeadline) {
  const FaultPlan plan(42, SingleRate(FaultType::kStraggler, 0.1));
  FaultPolicy policy;
  policy.report_deadline_minutes = 30.0;
  const FederatedQueryResult result = RunWithPlan(plan, policy, 202);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.faults.injected_stragglers, 0);
  EXPECT_EQ(result.faults.late_reports_rejected,
            result.faults.injected_stragglers);
  EXPECT_EQ(result.faults.late_reports_accepted, 0);
  for (const RoundOutcome* round : {&result.round1, &result.round2}) {
    EXPECT_EQ(round->responded,
              round->contacted - round->faults.late_reports_rejected);
  }
}

TEST_F(FaultMatrixTest, StragglersAcceptedWithoutDeadline) {
  const FaultPlan plan(42, SingleRate(FaultType::kStraggler, 0.1));
  const FederatedQueryResult result = RunWithPlan(plan, FaultPolicy{}, 202);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.faults.injected_stragglers, 0);
  EXPECT_EQ(result.faults.late_reports_accepted,
            result.faults.injected_stragglers);
  EXPECT_EQ(result.faults.late_reports_rejected, 0);
  // No deadline means nothing is lost at all.
  EXPECT_EQ(result.round1.responded, result.round1.contacted);
  EXPECT_EQ(result.round2.responded, result.round2.contacted);
}

TEST_F(FaultMatrixTest, CorruptMessagesCountExactly) {
  const FaultPlan plan(43, SingleRate(FaultType::kCorruptMessage, 0.1));
  const FederatedQueryResult result = RunWithPlan(plan, FaultPolicy{}, 203);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.faults.injected_corruptions, 0);
  EXPECT_EQ(result.faults.corrupt_reports_rejected +
                result.faults.corrupt_reports_accepted,
            result.faults.injected_corruptions);
  for (const RoundOutcome* round : {&result.round1, &result.round2}) {
    EXPECT_EQ(round->responded,
              round->contacted - round->faults.corrupt_reports_rejected);
  }
}

TEST_F(FaultMatrixTest, TruncatedMessagesCountExactly) {
  const FaultPlan plan(44, SingleRate(FaultType::kTruncateMessage, 0.1));
  const FederatedQueryResult result = RunWithPlan(plan, FaultPolicy{}, 204);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.faults.injected_truncations, 0);
  // A truncated frame is shorter than the fixed wire size: always rejected.
  EXPECT_EQ(result.faults.truncated_reports_rejected,
            result.faults.injected_truncations);
  for (const RoundOutcome* round : {&result.round1, &result.round2}) {
    EXPECT_EQ(round->responded,
              round->contacted - round->faults.truncated_reports_rejected);
  }
}

TEST_F(FaultMatrixTest, CrashedClientsAreDeduplicatedOnRecheckin) {
  const FaultPlan plan(45, SingleRate(FaultType::kRoundBoundaryCrash, 0.1));
  PrivacyMeter meter{MeterPolicy{}};
  const FederatedQueryResult result =
      RunWithPlan(plan, FaultPolicy{}, 205, &meter);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.round1.faults.injected_crashes, 0);
  // Crashes only strike between rounds 1 and 2.
  EXPECT_EQ(result.round2.faults.injected_crashes, 0);
  EXPECT_EQ(result.round1.responded,
            result.round1.contacted - result.round1.faults.injected_crashes);
  // Every crashed client re-checks-in for round 2 and is turned away.
  EXPECT_EQ(result.round2.faults.recheckins_rejected,
            result.round1.faults.injected_crashes);
  // The dedup is what keeps the meter honest: one bit per client, and a
  // crashed client (which disclosed nothing) is never double-assigned.
  EXPECT_EQ(meter.total_bits(),
            result.round1.responded + result.round2.responded);
  EXPECT_EQ(meter.denied_charges(), 0);
  for (int64_t id = 0; id < static_cast<int64_t>(clients_.size()); ++id) {
    EXPECT_LE(meter.ClientBits(id), 1);
  }
}

TEST_F(FaultMatrixTest, EveryScenarioStaysUnbiased) {
  // For each fault type at 10%, the mean over repetitions (fresh fault-plan
  // seed each repetition) must sit within four standard errors of the
  // census truth: faults below the policy thresholds lose reports, never
  // bias what remains.
  const double truth = ages_.truth().mean;
  const FaultType scenarios[] = {
      FaultType::kMidRoundDropout, FaultType::kStraggler,
      FaultType::kCorruptMessage, FaultType::kTruncateMessage,
      FaultType::kRoundBoundaryCrash};
  uint64_t base_seed = 300;
  for (const FaultType type : scenarios) {
    const int64_t reps = 20;
    const std::vector<double> estimates = CollectRepetitions(
        reps, base_seed++, [&](Rng& rng) {
          const FaultPlan plan(rng.NextUint64(), SingleRate(type, 0.1));
          FederatedQueryConfig config = BaseConfig();
          config.fault_plan = &plan;
          config.fault_policy.report_deadline_minutes = 30.0;
          const FederatedQueryResult result =
              RunFederatedMeanQuery(clients_, codec_, config, nullptr, rng);
          EXPECT_FALSE(result.aborted);
          return result.estimate;
        });
    double mean = 0.0;
    for (const double e : estimates) mean += e;
    mean /= static_cast<double>(reps);
    double variance = 0.0;
    for (const double e : estimates) variance += (e - mean) * (e - mean);
    variance /= static_cast<double>(reps - 1);
    const double stderr_mean =
        std::sqrt(variance / static_cast<double>(reps));
    EXPECT_NEAR(mean, truth, 4.0 * stderr_mean + 0.05)
        << "fault type " << static_cast<int>(type)
        << " biased the estimate (se=" << stderr_mean << ")";
  }
}

// ---------------------------------------------------------------------------
// Backfill: bounded retry from the replacement pool, meter still honest.

TEST_F(FaultMatrixTest, BackfillRecoversLostReportsAndChargesMeterOnce) {
  const FaultPlan plan(51, SingleRate(FaultType::kMidRoundDropout, 0.25));
  const FederatedQueryResult without = RunWithPlan(plan, FaultPolicy{}, 206);
  FaultPolicy policy;
  policy.max_backfill_rounds = 3;
  PrivacyMeter meter{MeterPolicy{}};
  const FederatedQueryResult with = RunWithPlan(plan, policy, 206, &meter);
  ASSERT_FALSE(with.aborted);

  EXPECT_GT(with.faults.backfill_requests, 0);
  EXPECT_GT(with.faults.backfill_reports, 0);
  EXPECT_GE(with.faults.backfill_rounds_used, 1);
  EXPECT_LE(with.faults.backfill_rounds_used, 2 * 3);  // two rounds, 3 max
  // Replacements go through the same fault pipeline, so the loss identity
  // still holds with contacted now including the backfill draws.
  for (const RoundOutcome* round : {&with.round1, &with.round2}) {
    EXPECT_EQ(round->responded,
              round->contacted - round->faults.injected_dropouts);
    EXPECT_EQ(round->contacted, static_cast<int64_t>(
                                    round->assigned_clients.size()));
  }
  // Backfill strictly improves the response count over the same plan.
  EXPECT_GT(with.round1.responded + with.round2.responded,
            without.round1.responded + without.round2.responded);
  // Privacy: every responder (replacement or not) is charged exactly once.
  EXPECT_EQ(meter.total_bits(), with.round1.responded + with.round2.responded);
  EXPECT_EQ(meter.denied_charges(), 0);
  for (int64_t id = 0; id < static_cast<int64_t>(clients_.size()); ++id) {
    EXPECT_LE(meter.ClientBits(id), 1);
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation: heavy round-1 loss falls back to the static policy.

TEST_F(FaultMatrixTest, HeavyRound1LossFallsBackToStaticPolicy) {
  const FaultPlan plan(61, SingleRate(FaultType::kMidRoundDropout, 0.7));
  FaultPolicy policy;
  policy.max_round1_loss = 0.5;
  const FederatedQueryResult result = RunWithPlan(plan, policy, 207);
  ASSERT_FALSE(result.aborted);
  EXPECT_GT(result.round1.dropout_rate, 0.5);
  EXPECT_TRUE(result.used_static_fallback);
  EXPECT_EQ(result.faults.static_policy_fallbacks, 1);
  // The documented fallback is the pessimistic-optimal Eq. (7) allocation.
  EXPECT_EQ(result.round2_probabilities, GeometricProbabilities(7, 1.0));
  // Degraded, not broken: the static policy is still unbiased, so the
  // estimate survives (wider tolerance for the thinner cohort).
  EXPECT_NEAR(result.estimate, ages_.truth().mean,
              0.2 * ages_.truth().mean);
}

TEST_F(FaultMatrixTest, ModerateLossKeepsLearnedRebalance) {
  const FaultPlan plan(62, SingleRate(FaultType::kMidRoundDropout, 0.2));
  FaultPolicy policy;
  policy.max_round1_loss = 0.5;
  const FederatedQueryResult result = RunWithPlan(plan, policy, 208);
  ASSERT_FALSE(result.aborted);
  EXPECT_FALSE(result.used_static_fallback);
  EXPECT_EQ(result.faults.static_policy_fallbacks, 0);
}

// ---------------------------------------------------------------------------
// Session deadline: the asynchronous coordinator rejects stragglers too.

TEST(FaultSessionTest, LateReportRejectedThenResubmittedInTime) {
  SessionConfig config;
  config.probabilities = GeometricProbabilities(7, 1.0);
  config.report_deadline = 10.0;
  CollectionSession session(FixedPointCodec::Integer(7), config);
  BitRequest request;
  ASSERT_TRUE(session.IssueAssignment(1, &request));
  const BitReport report{1, request.bit_index, 1};
  EXPECT_EQ(session.SubmitReport(report, /*arrival_time=*/10.5),
            ReportRejection::kLate);
  EXPECT_EQ(session.late_reports(), 1);
  EXPECT_EQ(session.rejected_reports(), 1);
  // A late rejection does not burn the client's slot: a retransmission
  // inside the window is accepted.
  EXPECT_EQ(session.SubmitReport(report, /*arrival_time=*/5.0),
            ReportRejection::kAccepted);
  EXPECT_EQ(session.accepted_reports(), 1);
}

TEST(FaultSessionTest, NoDeadlineNeverRejectsLate) {
  SessionConfig config;
  config.probabilities = GeometricProbabilities(7, 1.0);
  CollectionSession session(FixedPointCodec::Integer(7), config);
  BitRequest request;
  ASSERT_TRUE(session.IssueAssignment(2, &request));
  const BitReport report{2, request.bit_index, 0};
  EXPECT_EQ(session.SubmitReport(report, /*arrival_time=*/1e12),
            ReportRejection::kAccepted);
  EXPECT_EQ(session.late_reports(), 0);
}

// ---------------------------------------------------------------------------
// Fleet: windowed collection loses readings through the same fault layer.

TEST(FaultFleetTest, WindowLossMatchesInjectedCounts) {
  FleetConfig config;
  config.devices = 3000;
  config.availability_base = 1.0;  // every device reachable: exact counts
  config.availability_amplitude = 0.0;
  config.report_faults.mid_round_dropout = 0.1;
  config.report_faults.straggler = 0.05;
  config.report_faults.corrupt_message = 0.05;
  config.report_faults.truncate_message = 0.05;
  config.model_latency = true;
  FleetSimulator fleet(config, 77);
  const std::vector<double> readings = fleet.CollectWindow(0);
  const FaultStats& stats = fleet.fault_stats();
  EXPECT_GT(stats.injected_dropouts, 0);
  EXPECT_GT(stats.injected_stragglers, 0);
  // Without a deadline stragglers are kept; dropouts and garbled frames
  // are lost.
  EXPECT_EQ(stats.late_reports_accepted, stats.injected_stragglers);
  EXPECT_EQ(stats.corrupt_reports_rejected, stats.injected_corruptions);
  EXPECT_EQ(stats.truncated_reports_rejected, stats.injected_truncations);
  EXPECT_EQ(static_cast<int64_t>(readings.size()),
            config.devices - stats.injected_dropouts -
                stats.injected_corruptions - stats.injected_truncations);
  EXPECT_EQ(fleet.windows_collected(), 1);
  EXPECT_GT(fleet.last_window_minutes(), 0.0);
}

TEST(FaultFleetTest, FiniteDeadlineDropsStragglers) {
  FleetConfig config;
  config.devices = 3000;
  config.availability_base = 1.0;
  config.availability_amplitude = 0.0;
  config.report_faults.straggler = 0.1;
  config.report_deadline_minutes = 15.0;
  FleetSimulator fleet(config, 78);
  const std::vector<double> readings = fleet.CollectWindow(0);
  const FaultStats& stats = fleet.fault_stats();
  EXPECT_GT(stats.injected_stragglers, 0);
  EXPECT_EQ(stats.late_reports_rejected, stats.injected_stragglers);
  EXPECT_EQ(stats.late_reports_accepted, 0);
  EXPECT_EQ(static_cast<int64_t>(readings.size()),
            config.devices - stats.late_reports_rejected);
}

TEST(FaultFleetTest, FaultedWindowsAreDeterministic) {
  FleetConfig config;
  config.devices = 1000;
  config.report_faults.mid_round_dropout = 0.15;
  config.report_faults.truncate_message = 0.05;
  config.model_latency = true;
  FleetSimulator a(config, 79);
  FleetSimulator b(config, 79);
  for (int window = 0; window < 3; ++window) {
    EXPECT_EQ(a.CollectWindow(0), b.CollectWindow(0));
  }
  EXPECT_EQ(a.fault_stats(), b.fault_stats());
  EXPECT_DOUBLE_EQ(a.last_window_minutes(), b.last_window_minutes());
}

}  // namespace
}  // namespace bitpush
