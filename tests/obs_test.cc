#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bitpush {
namespace {

// Every test flips the global switches; restore the library default
// (everything off) so unrelated suites in this binary see a cold registry.
class ObsTest : public ::testing::Test {
 protected:
  ObsTest() {
    obs::Registry::Default().Reset();
    obs::Tracer::Default().Reset();
    obs::SetEnabled(true);
  }
  ~ObsTest() override {
    obs::SetEnabled(false);
    obs::SetTracingEnabled(false);
  }
};

TEST_F(ObsTest, CounterIsMonotonic) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "test_counter_total", "help", obs::Determinism::kStable);
  counter->Increment();
  counter->Add(4);
  counter->Add(-10);  // ignored: counters never regress
  counter->Add(0);
  EXPECT_EQ(counter->value(), 5);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "test_gauge", "help", obs::Determinism::kStable);
  gauge->Set(2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
}

TEST_F(ObsTest, HistogramUsesLeBuckets) {
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "test_histogram", "help", {1.0, 2.0, 5.0}, obs::Determinism::kStable);
  histogram->Observe(0.5);   // le=1
  histogram->Observe(1.0);   // le=1 (less-or-equal)
  histogram->Observe(1.5);   // le=2
  histogram->Observe(100.0); // +Inf overflow
  EXPECT_EQ(histogram->bucket_value(0), 2);
  EXPECT_EQ(histogram->bucket_value(1), 1);
  EXPECT_EQ(histogram->bucket_value(2), 0);
  EXPECT_EQ(histogram->bucket_value(3), 1);
  EXPECT_EQ(histogram->count(), 4);
  EXPECT_DOUBLE_EQ(histogram->sum(), 103.0);
}

TEST_F(ObsTest, DisabledInstrumentsAreNoOps) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "test_disabled_total", "help", obs::Determinism::kStable);
  obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "test_disabled_gauge", "help", obs::Determinism::kStable);
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "test_disabled_histogram", "help", {1.0}, obs::Determinism::kStable);
  obs::SetEnabled(false);
  counter->Increment();
  gauge->Set(3.0);
  histogram->Observe(0.5);
  {
    const obs::ScopedTimer timer(histogram);
  }
  EXPECT_EQ(counter->value(), 0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0);
}

TEST_F(ObsTest, RegistryReturnsSameInstrumentAndSurvivesReset) {
  obs::Registry& registry = obs::Registry::Default();
  obs::Counter* first = registry.GetCounter("test_cached_total", "help",
                                            obs::Determinism::kStable);
  obs::Counter* second = registry.GetCounter("test_cached_total", "help",
                                             obs::Determinism::kStable);
  EXPECT_EQ(first, second);
  first->Add(7);
  registry.Reset();
  // Reset zeroes values but keeps the instrument: cached pointers stay
  // valid and usable.
  EXPECT_EQ(first->value(), 0);
  first->Increment();
  EXPECT_EQ(second->value(), 1);
}

TEST_F(ObsTest, ScopedTimerObservesSeconds) {
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "test_timer_seconds", "help", obs::LatencySecondsBounds(),
      obs::Determinism::kVolatile);
  {
    const obs::ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_GE(histogram->sum(), 0.0);
  EXPECT_LT(histogram->sum(), 10.0);
}

TEST_F(ObsTest, VisitIsNameOrdered) {
  obs::Registry registry;
  registry.GetCounter("b_total", "help", obs::Determinism::kStable);
  registry.GetGauge("a_gauge", "help", obs::Determinism::kVolatile);
  registry.GetHistogram("c_histogram", "help", {1.0},
                        obs::Determinism::kStable);
  std::vector<std::string> names;
  registry.Visit([&](const obs::InstrumentInfo& info, const obs::Counter*,
                     const obs::Gauge*, const obs::Histogram*) {
    names.push_back(info.name);
  });
  EXPECT_EQ(names,
            (std::vector<std::string>{"a_gauge", "b_total", "c_histogram"}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST_F(ObsTest, PrometheusTextFormat) {
  obs::Registry registry;
  registry.GetCounter("demo_total", "Demo counter.",
                      obs::Determinism::kStable)->Add(3);
  registry.GetGauge("demo_gauge", "Demo gauge.", obs::Determinism::kVolatile)
      ->Set(1.5);
  obs::Histogram* histogram = registry.GetHistogram(
      "demo_seconds", "Demo histogram.", {1.0, 2.0},
      obs::Determinism::kStable);
  histogram->Observe(0.5);
  histogram->Observe(9.0);
  const std::string text = obs::PrometheusText(registry);
  EXPECT_NE(text.find("# HELP demo_total Demo counter.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("demo_total{determinism=\"stable\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_gauge{determinism=\"volatile\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("demo_seconds_bucket{determinism=\"stable\",le=\"1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "demo_seconds_bucket{determinism=\"stable\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count{determinism=\"stable\"} 2\n"),
            std::string::npos);
}

TEST_F(ObsTest, MetricsJsonlIsWellFormedPerLine) {
  obs::Registry registry;
  registry.GetCounter("demo_total", "Demo \"quoted\" help.",
                      obs::Determinism::kStable)->Add(2);
  registry.GetHistogram("demo_seconds", "Demo histogram.", {1.0},
                        obs::Determinism::kVolatile)->Observe(0.5);
  const std::string jsonl = obs::MetricsJsonl(registry);
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    std::string error;
    EXPECT_TRUE(obs::JsonIsWellFormed(line, &error)) << line << ": "
                                                     << error;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"name\":\"demo_total\""), std::string::npos);
  EXPECT_NE(jsonl.find("Demo \\\"quoted\\\" help."), std::string::npos);
}

TEST_F(ObsTest, DeterministicSnapshotDropsVolatileInstruments) {
  obs::Registry registry;
  registry.GetCounter("stable_total", "help", obs::Determinism::kStable)
      ->Add(4);
  registry.GetCounter("volatile_total", "help", obs::Determinism::kVolatile)
      ->Add(9);
  const std::string snapshot = obs::DeterministicMetricsSnapshot(registry);
  EXPECT_NE(snapshot.find("# bitpush deterministic metrics snapshot v1"),
            std::string::npos);
  EXPECT_NE(snapshot.find("counter stable_total 4"), std::string::npos);
  EXPECT_EQ(snapshot.find("volatile_total"), std::string::npos);
}

TEST_F(ObsTest, JsonWellFormednessChecker) {
  std::string error;
  EXPECT_TRUE(obs::JsonIsWellFormed("{\"a\":[1,2.5,-3e2],\"b\":null}",
                                    &error));
  EXPECT_TRUE(obs::JsonIsWellFormed("\"esc \\\" \\u00e9\"", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("{\"a\":}", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("[1,2", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("{} trailing", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("", &error));
}

TEST_F(ObsTest, SpanRecordsIntoTracerAndExportsChromeJson) {
  obs::SetTracingEnabled(true);
  {
    obs::Span span("round", "federated");
    span.set_ids(3, 1, 2);
    span.set_sim_minutes(12.5);
    span.AddNumeric("responded", 40.0);
    span.AddString("source", "live");
  }
  EXPECT_EQ(obs::Tracer::Default().span_count(), 1);
  const std::vector<obs::SpanRecord> spans =
      obs::Tracer::Default().Snapshot();
  EXPECT_EQ(spans[0].name, "round");
  EXPECT_EQ(spans[0].tick, 3);
  EXPECT_EQ(spans[0].round_id, 2);
  EXPECT_TRUE(spans[0].has_sim_minutes);

  const std::string json = obs::ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(obs::JsonIsWellFormed(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_minutes\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"live\""), std::string::npos);
}

TEST_F(ObsTest, DisabledSpanIsInert) {
  {
    obs::Span span("round", "federated");
    EXPECT_FALSE(span.active());
    span.AddNumeric("ignored", 1.0);
  }
  EXPECT_EQ(obs::Tracer::Default().span_count(), 0);
  // An empty tracer still exports a valid (empty) trace document.
  std::string error;
  EXPECT_TRUE(obs::JsonIsWellFormed(obs::ChromeTraceJson(), &error))
      << error;
}

TEST_F(ObsTest, ConcurrentCountersDoNotDropIncrements) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "test_threads_total", "help", obs::Determinism::kStable);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kIncrements);
}

TEST_F(ObsTest, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/obs_write_test.txt";
  std::string error;
  ASSERT_TRUE(obs::WriteTextFile(path, "hello\n", &error)) << error;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[16] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer), file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, read), "hello\n");
  EXPECT_FALSE(
      obs::WriteTextFile("/nonexistent-dir/x.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace bitpush
