#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/alerts.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bitpush {
namespace {

// Every test flips the global switches; restore the library default
// (everything off) so unrelated suites in this binary see a cold registry.
class ObsTest : public ::testing::Test {
 protected:
  ObsTest() {
    obs::Registry::Default().Reset();
    obs::Tracer::Default().Reset();
    obs::SetEnabled(true);
  }
  ~ObsTest() override {
    obs::SetEnabled(false);
    obs::SetTracingEnabled(false);
  }
};

TEST_F(ObsTest, CounterIsMonotonic) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "test_counter_total", "help", obs::Determinism::kStable);
  counter->Increment();
  counter->Add(4);
  counter->Add(-10);  // ignored: counters never regress
  counter->Add(0);
  EXPECT_EQ(counter->value(), 5);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "test_gauge", "help", obs::Determinism::kStable);
  gauge->Set(2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
}

TEST_F(ObsTest, HistogramUsesLeBuckets) {
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "test_histogram", "help", {1.0, 2.0, 5.0}, obs::Determinism::kStable);
  histogram->Observe(0.5);   // le=1
  histogram->Observe(1.0);   // le=1 (less-or-equal)
  histogram->Observe(1.5);   // le=2
  histogram->Observe(100.0); // +Inf overflow
  EXPECT_EQ(histogram->bucket_value(0), 2);
  EXPECT_EQ(histogram->bucket_value(1), 1);
  EXPECT_EQ(histogram->bucket_value(2), 0);
  EXPECT_EQ(histogram->bucket_value(3), 1);
  EXPECT_EQ(histogram->count(), 4);
  EXPECT_DOUBLE_EQ(histogram->sum(), 103.0);
}

TEST_F(ObsTest, DisabledInstrumentsAreNoOps) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "test_disabled_total", "help", obs::Determinism::kStable);
  obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "test_disabled_gauge", "help", obs::Determinism::kStable);
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "test_disabled_histogram", "help", {1.0}, obs::Determinism::kStable);
  obs::SetEnabled(false);
  counter->Increment();
  gauge->Set(3.0);
  histogram->Observe(0.5);
  {
    const obs::ScopedTimer timer(histogram);
  }
  EXPECT_EQ(counter->value(), 0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0);
}

TEST_F(ObsTest, RegistryReturnsSameInstrumentAndSurvivesReset) {
  obs::Registry& registry = obs::Registry::Default();
  obs::Counter* first = registry.GetCounter("test_cached_total", "help",
                                            obs::Determinism::kStable);
  obs::Counter* second = registry.GetCounter("test_cached_total", "help",
                                             obs::Determinism::kStable);
  EXPECT_EQ(first, second);
  first->Add(7);
  registry.Reset();
  // Reset zeroes values but keeps the instrument: cached pointers stay
  // valid and usable.
  EXPECT_EQ(first->value(), 0);
  first->Increment();
  EXPECT_EQ(second->value(), 1);
}

TEST_F(ObsTest, ScopedTimerObservesSeconds) {
  obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "test_timer_seconds", "help", obs::LatencySecondsBounds(),
      obs::Determinism::kVolatile);
  {
    const obs::ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_GE(histogram->sum(), 0.0);
  EXPECT_LT(histogram->sum(), 10.0);
}

TEST_F(ObsTest, VisitIsNameOrdered) {
  obs::Registry registry;
  registry.GetCounter("b_total", "help", obs::Determinism::kStable);
  registry.GetGauge("a_gauge", "help", obs::Determinism::kVolatile);
  registry.GetHistogram("c_histogram", "help", {1.0},
                        obs::Determinism::kStable);
  std::vector<std::string> names;
  registry.Visit([&](const obs::InstrumentInfo& info, const obs::Counter*,
                     const obs::Gauge*, const obs::Histogram*) {
    names.push_back(info.name);
  });
  EXPECT_EQ(names,
            (std::vector<std::string>{"a_gauge", "b_total", "c_histogram"}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST_F(ObsTest, PrometheusTextFormat) {
  obs::Registry registry;
  registry.GetCounter("demo_total", "Demo counter.",
                      obs::Determinism::kStable)->Add(3);
  registry.GetGauge("demo_gauge", "Demo gauge.", obs::Determinism::kVolatile)
      ->Set(1.5);
  obs::Histogram* histogram = registry.GetHistogram(
      "demo_seconds", "Demo histogram.", {1.0, 2.0},
      obs::Determinism::kStable);
  histogram->Observe(0.5);
  histogram->Observe(9.0);
  const std::string text = obs::PrometheusText(registry);
  EXPECT_NE(text.find("# HELP demo_total Demo counter.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("demo_total{determinism=\"stable\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_gauge{determinism=\"volatile\"} 1.5\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("demo_seconds_bucket{determinism=\"stable\",le=\"1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "demo_seconds_bucket{determinism=\"stable\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count{determinism=\"stable\"} 2\n"),
            std::string::npos);
}

TEST_F(ObsTest, MetricsJsonlIsWellFormedPerLine) {
  obs::Registry registry;
  registry.GetCounter("demo_total", "Demo \"quoted\" help.",
                      obs::Determinism::kStable)->Add(2);
  registry.GetHistogram("demo_seconds", "Demo histogram.", {1.0},
                        obs::Determinism::kVolatile)->Observe(0.5);
  const std::string jsonl = obs::MetricsJsonl(registry);
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    std::string error;
    EXPECT_TRUE(obs::JsonIsWellFormed(line, &error)) << line << ": "
                                                     << error;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"name\":\"demo_total\""), std::string::npos);
  EXPECT_NE(jsonl.find("Demo \\\"quoted\\\" help."), std::string::npos);
}

TEST_F(ObsTest, DeterministicSnapshotDropsVolatileInstruments) {
  obs::Registry registry;
  registry.GetCounter("stable_total", "help", obs::Determinism::kStable)
      ->Add(4);
  registry.GetCounter("volatile_total", "help", obs::Determinism::kVolatile)
      ->Add(9);
  const std::string snapshot = obs::DeterministicMetricsSnapshot(registry);
  EXPECT_NE(snapshot.find("# bitpush deterministic metrics snapshot v1"),
            std::string::npos);
  EXPECT_NE(snapshot.find("counter stable_total 4"), std::string::npos);
  EXPECT_EQ(snapshot.find("volatile_total"), std::string::npos);
}

TEST_F(ObsTest, JsonWellFormednessChecker) {
  std::string error;
  EXPECT_TRUE(obs::JsonIsWellFormed("{\"a\":[1,2.5,-3e2],\"b\":null}",
                                    &error));
  EXPECT_TRUE(obs::JsonIsWellFormed("\"esc \\\" \\u00e9\"", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("{\"a\":}", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("[1,2", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("{} trailing", &error));
  EXPECT_FALSE(obs::JsonIsWellFormed("", &error));
}

TEST_F(ObsTest, SpanRecordsIntoTracerAndExportsChromeJson) {
  obs::SetTracingEnabled(true);
  {
    obs::Span span("round", "federated");
    span.set_ids(3, 1, 2);
    span.set_sim_minutes(12.5);
    span.AddNumeric("responded", 40.0);
    span.AddString("source", "live");
  }
  EXPECT_EQ(obs::Tracer::Default().span_count(), 1);
  const std::vector<obs::SpanRecord> spans =
      obs::Tracer::Default().Snapshot();
  EXPECT_EQ(spans[0].name, "round");
  EXPECT_EQ(spans[0].tick, 3);
  EXPECT_EQ(spans[0].round_id, 2);
  EXPECT_TRUE(spans[0].has_sim_minutes);

  const std::string json = obs::ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(obs::JsonIsWellFormed(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_minutes\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"live\""), std::string::npos);
}

TEST_F(ObsTest, DisabledSpanIsInert) {
  {
    obs::Span span("round", "federated");
    EXPECT_FALSE(span.active());
    span.AddNumeric("ignored", 1.0);
  }
  EXPECT_EQ(obs::Tracer::Default().span_count(), 0);
  // An empty tracer still exports a valid (empty) trace document.
  std::string error;
  EXPECT_TRUE(obs::JsonIsWellFormed(obs::ChromeTraceJson(), &error))
      << error;
}

TEST_F(ObsTest, ConcurrentCountersDoNotDropIncrements) {
  obs::Counter* counter = obs::Registry::Default().GetCounter(
      "test_threads_total", "help", obs::Determinism::kStable);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kIncrements);
}

TEST_F(ObsTest, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/obs_write_test.txt";
  std::string error;
  ASSERT_TRUE(obs::WriteTextFile(path, "hello\n", &error)) << error;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[16] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer), file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, read), "hello\n");
  EXPECT_FALSE(
      obs::WriteTextFile("/nonexistent-dir/x.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

// --------------------------------------------------------------------------
// Flight recorder (obs/events.h). Local EventRecorder instances keep these
// cases independent of the process-wide Default() ring.

TEST_F(ObsTest, EventRingEvictsOldestAndCountsDrops) {
  obs::EventRecorder recorder;
  recorder.SetCapacity(4);
  for (int i = 0; i < 6; ++i) {
    obs::EventArgs args;
    args.tick = i;
    recorder.Emit(obs::EventType::kRoundOutcome, obs::Determinism::kStable,
                  std::move(args));
  }
  const std::vector<obs::EventRecord> stable =
      recorder.Snapshot(obs::Determinism::kStable);
  ASSERT_EQ(stable.size(), 4u);
  EXPECT_EQ(stable.front().seq, 2);  // seqs 0 and 1 were evicted
  EXPECT_EQ(stable.back().seq, 5);
  EXPECT_EQ(recorder.dropped(obs::Determinism::kStable), 2);
  EXPECT_EQ(recorder.emitted(obs::Determinism::kStable), 6);
  EXPECT_EQ(recorder.dropped(obs::Determinism::kVolatile), 0);
  recorder.Reset();
  EXPECT_TRUE(recorder.Snapshot(obs::Determinism::kStable).empty());
  EXPECT_EQ(recorder.emitted(obs::Determinism::kStable), 0);
}

TEST_F(ObsTest, VolatileSpamCannotEvictStableEvents) {
  obs::EventRecorder recorder;
  recorder.SetCapacity(2);
  obs::EventArgs stable_args;
  stable_args.tick = 0;
  recorder.Emit(obs::EventType::kMeterCharge, obs::Determinism::kStable,
                std::move(stable_args));
  for (int i = 0; i < 10; ++i) {
    recorder.Emit(obs::EventType::kReplayMilestone,
                  obs::Determinism::kVolatile, obs::EventArgs{});
  }
  // The stable ring is untouched by the volatile flood: separate rings,
  // separate sequence counters, separate eviction accounting.
  const std::vector<obs::EventRecord> stable =
      recorder.Snapshot(obs::Determinism::kStable);
  ASSERT_EQ(stable.size(), 1u);
  EXPECT_EQ(stable[0].seq, 0);
  EXPECT_EQ(recorder.dropped(obs::Determinism::kStable), 0);
  EXPECT_EQ(recorder.dropped(obs::Determinism::kVolatile), 8);
  const std::vector<obs::EventRecord> all = recorder.SnapshotAll();
  ASSERT_EQ(all.size(), 3u);  // stable ring first
  EXPECT_EQ(all[0].determinism, obs::Determinism::kStable);
}

TEST_F(ObsTest, EventsJsonlIsWellFormedPerLine) {
  obs::EventRecorder recorder;
  obs::EventArgs args;
  args.tick = 3;
  args.shard = 1;
  args.detail = "quote \" backslash \\ newline \n done";
  recorder.Emit(obs::EventType::kShardLost, obs::Determinism::kVolatile,
                std::move(args));
  obs::EventArgs charge;
  charge.tick = 0;
  charge.has_sim_minutes = true;
  charge.sim_minutes = 2.5;
  recorder.Emit(obs::EventType::kMeterCharge, obs::Determinism::kStable,
                std::move(charge));
  const std::string jsonl = obs::EventsJsonl(recorder);
  size_t lines = 0;
  std::istringstream stream(jsonl);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    ++lines;
    std::string error;
    EXPECT_TRUE(obs::JsonIsWellFormed(line, &error)) << line << ": " << error;
  }
  EXPECT_EQ(lines, 2u);
  // Stable ring first, escapes intact, coordinates present.
  EXPECT_NE(jsonl.find("\"type\":\"meter_charge\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"determinism\":\"stable\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\\\""), std::string::npos);
  EXPECT_LT(jsonl.find("meter_charge"), jsonl.find("shard_lost"));
}

TEST_F(ObsTest, DeterministicEventsSnapshotDropsVolatileEvents) {
  obs::EventRecorder recorder;
  obs::EventArgs stable_args;
  stable_args.tick = 1;
  stable_args.detail = "value=0 first grant";
  recorder.Emit(obs::EventType::kMeterCharge, obs::Determinism::kStable,
                std::move(stable_args));
  obs::EventArgs volatile_args;
  volatile_args.detail = "replayed 120 records";
  recorder.Emit(obs::EventType::kReplayMilestone, obs::Determinism::kVolatile,
                std::move(volatile_args));
  const std::string snapshot = obs::DeterministicEventsSnapshot(recorder);
  EXPECT_EQ(snapshot.rfind("# bitpush deterministic events snapshot v1\n", 0),
            0u);
  EXPECT_NE(snapshot.find("meter_charge"), std::string::npos);
  EXPECT_EQ(snapshot.find("replay_milestone"), std::string::npos);
}

TEST_F(ObsTest, EmitEventIsANoOpWhenObsDisabled) {
  obs::EventRecorder::Default().Reset();
  obs::SetEnabled(false);
  obs::EmitEvent(obs::EventType::kRoundOutcome, obs::Determinism::kStable,
                 obs::EventArgs{});
  EXPECT_EQ(obs::EventRecorder::Default().emitted(obs::Determinism::kStable),
            0);
  obs::SetEnabled(true);
  obs::EmitEvent(obs::EventType::kRoundOutcome, obs::Determinism::kStable,
                 obs::EventArgs{});
  EXPECT_EQ(obs::EventRecorder::Default().emitted(obs::Determinism::kStable),
            1);
  obs::EventRecorder::Default().Reset();
}

// --------------------------------------------------------------------------
// Alert engine (obs/alerts.h). Inputs are cumulative; the engine differences
// them internally, so each case feeds a small cumulative trajectory.

TEST_F(ObsTest, BurnRateAlertFiresOnProjectionAndResolvesWhenIdle) {
  obs::AlertEngine engine;  // horizon: 2 ticks
  obs::CampaignAlertInputs inputs;
  inputs.bits_budget = 100;
  inputs.tick = 0;
  inputs.bits_spent = 50;  // 50/tick leaves tte = 1 tick <= horizon
  std::vector<obs::AlertTransition> transitions =
      engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].rule, obs::AlertRule::kPrivacyBurnRate);
  EXPECT_TRUE(transitions[0].fired);
  EXPECT_NE(transitions[0].detail.find("tte_ticks=1"), std::string::npos);
  EXPECT_TRUE(engine.firing(obs::AlertRule::kPrivacyBurnRate));

  inputs.tick = 1;  // no new spend, no denials: the burn stopped
  transitions = engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(transitions[0].fired);
  EXPECT_FALSE(engine.firing(obs::AlertRule::kPrivacyBurnRate));
  EXPECT_EQ(engine.fired_total(), 1);
  EXPECT_EQ(engine.resolved_total(), 1);
}

TEST_F(ObsTest, BurnRateAlertFiresImmediatelyOnDenial) {
  obs::AlertEngine engine;
  obs::CampaignAlertInputs inputs;
  inputs.bits_budget = 100;
  inputs.tick = 0;
  inputs.bits_spent = 10;  // tte = 9 ticks: comfortably outside the horizon
  EXPECT_TRUE(engine.EvaluateCampaignTick(inputs).empty());
  inputs.tick = 1;
  inputs.denied_charges = 1;  // the wall was hit regardless of projection
  const std::vector<obs::AlertTransition> transitions =
      engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_TRUE(transitions[0].fired);
  EXPECT_NE(transitions[0].detail.find("budget exhausted"),
            std::string::npos);
}

TEST_F(ObsTest, RetryStormAlertTracksPerTickDelta) {
  obs::AlertEngine engine;  // threshold: 8 per tick
  obs::CampaignAlertInputs inputs;
  inputs.tick = 0;
  inputs.retries_scheduled = 3;
  EXPECT_TRUE(engine.EvaluateCampaignTick(inputs).empty());
  inputs.tick = 1;
  inputs.retries_scheduled = 15;  // delta 12 >= 8
  std::vector<obs::AlertTransition> transitions =
      engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].rule, obs::AlertRule::kRetryStorm);
  EXPECT_TRUE(transitions[0].fired);
  inputs.tick = 2;  // cumulative count unchanged: the storm passed
  transitions = engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(transitions[0].fired);
}

TEST_F(ObsTest, QuorumAtRiskAlertFiresAtTheMargin) {
  obs::AlertEngine engine;  // margin: 0
  obs::CampaignAlertInputs inputs;
  inputs.tick = 0;
  inputs.shards_total = 4;
  inputs.quorum_min = 3;
  inputs.shards_delivered = 3;  // exactly at quorum: no headroom left
  std::vector<obs::AlertTransition> transitions =
      engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].rule, obs::AlertRule::kShardQuorumAtRisk);
  EXPECT_TRUE(transitions[0].fired);
  inputs.tick = 1;
  inputs.shards_delivered = 4;  // full delivery restores headroom
  transitions = engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(transitions[0].fired);
  // shards_delivered = -1 (unsharded run) keeps the rule gated off.
  obs::AlertEngine unsharded;
  obs::CampaignAlertInputs single;
  single.tick = 0;
  EXPECT_TRUE(unsharded.EvaluateCampaignTick(single).empty());
}

TEST_F(ObsTest, JournalGrowthAlertFiresAtThresholdAndResolvesAfterTruncate) {
  obs::AlertConfig config;
  config.journal_growth_threshold = 1000;
  obs::AlertEngine engine(config);
  obs::CampaignAlertInputs inputs;
  inputs.tick = 0;
  inputs.journal_records = 400;
  EXPECT_TRUE(engine.EvaluateCampaignTick(inputs).empty());
  inputs.tick = 1;
  inputs.journal_records = 1200;
  std::vector<obs::AlertTransition> transitions =
      engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].rule, obs::AlertRule::kJournalGrowth);
  EXPECT_TRUE(transitions[0].fired);
  inputs.tick = 2;
  inputs.journal_records = 50;  // snapshot + truncate happened
  transitions = engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_FALSE(transitions[0].fired);
}

TEST_F(ObsTest, RecoveryDivergenceAlertLatchesForTheCampaign) {
  obs::AlertEngine engine;
  obs::CampaignAlertInputs inputs;
  inputs.tick = 0;
  inputs.recovery_divergence = true;
  const std::vector<obs::AlertTransition> transitions =
      engine.EvaluateCampaignTick(inputs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].rule, obs::AlertRule::kRecoveryDivergence);
  EXPECT_TRUE(transitions[0].fired);
  inputs.tick = 1;
  inputs.recovery_divergence = false;  // latched: never resolves
  EXPECT_TRUE(engine.EvaluateCampaignTick(inputs).empty());
  EXPECT_TRUE(engine.firing(obs::AlertRule::kRecoveryDivergence));
  engine.Reset();
  EXPECT_FALSE(engine.firing(obs::AlertRule::kRecoveryDivergence));
  EXPECT_EQ(engine.fired_total(), 0);
}

TEST_F(ObsTest, AlertEngineRefreshesStateGaugesAndTimelineIsStableOnly) {
  obs::Registry::Default().Reset();
  obs::AlertEngine engine;
  obs::CampaignAlertInputs inputs;
  inputs.tick = 0;
  inputs.bits_budget = 100;
  inputs.bits_spent = 60;          // kStable rule fires
  inputs.recovery_divergence = true;  // kVolatile rule fires
  engine.EvaluateCampaignTick(inputs);
  const std::string prom = obs::PrometheusText();
  EXPECT_NE(prom.find("bitpush_alert_state_privacy_burn_rate"),
            std::string::npos);
  const std::string timeline = obs::AlertTimelineText(engine);
  EXPECT_EQ(timeline.rfind("# bitpush alert timeline v1\n", 0), 0u);
  EXPECT_NE(timeline.find("tick=0 fired privacy_burn_rate"),
            std::string::npos);
  // The volatile recovery_divergence transition stays out of the
  // deterministic timeline.
  EXPECT_EQ(timeline.find("recovery_divergence"), std::string::npos);
}

}  // namespace
}  // namespace bitpush
