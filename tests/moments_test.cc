#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/moments.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

MomentConfig DefaultConfig(int bits) {
  MomentConfig config;
  config.protocol.bits = bits;
  return config;
}

TEST(RawMomentTest, FirstMomentIsTheMean) {
  Rng data_rng(1);
  const Dataset ages = CensusAges(20000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const ErrorStats stats =
      RunRepetitions(40, 2, ages.truth().mean, [&](Rng& rng) {
        return EstimateRawMoment(ages.values(), codec, 1,
                                 DefaultConfig(7), rng);
      });
  EXPECT_LT(stats.nrmse, 0.05);
}

TEST(RawMomentTest, SecondMomentMatchesExact) {
  Rng data_rng(3);
  const Dataset ages = CensusAges(50000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  double exact = 0.0;
  for (const double x : ages.values()) exact += x * x;
  exact /= static_cast<double>(ages.size());
  const ErrorStats stats = RunRepetitions(30, 4, exact, [&](Rng& rng) {
    return EstimateRawMoment(ages.values(), codec, 2, DefaultConfig(7),
                             rng);
  });
  EXPECT_LT(stats.nrmse, 0.10);
}

TEST(RawMomentTest, ThirdMomentMatchesExact) {
  Rng data_rng(5);
  const Dataset data = UniformData(50000, 0.0, 100.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  double exact = 0.0;
  for (const double x : data.values()) exact += x * x * x;
  exact /= static_cast<double>(data.size());
  const ErrorStats stats = RunRepetitions(30, 6, exact, [&](Rng& rng) {
    return EstimateRawMoment(data.values(), codec, 3, DefaultConfig(7),
                             rng);
  });
  EXPECT_LT(stats.nrmse, 0.15);
}

TEST(CentralMomentTest, SecondCentralMomentIsVariance) {
  Rng data_rng(7);
  const Dataset ages = CensusAges(100000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  const ErrorStats stats =
      RunRepetitions(25, 8, ages.truth().variance, [&](Rng& rng) {
        return EstimateCentralMoment(ages.values(), codec, 2,
                                     DefaultConfig(7), rng);
      });
  EXPECT_LT(stats.nrmse, 0.08);
}

TEST(CentralMomentTest, ThirdCentralMomentCapturesSkewSign) {
  // Exponential data has strong positive skew; census ages are also
  // right-skewed. The estimated third central moment must be positive and
  // in the right ballpark.
  Rng data_rng(9);
  const Dataset data = ExponentialData(100000, 20.0, data_rng);
  const Dataset clipped = data.Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  double exact = 0.0;
  for (const double x : clipped.values()) {
    const double d = x - clipped.truth().mean;
    exact += d * d * d;
  }
  exact /= static_cast<double>(clipped.size());
  ASSERT_GT(exact, 0.0);
  const ErrorStats stats = RunRepetitions(30, 10, exact, [&](Rng& rng) {
    return EstimateCentralMoment(clipped.values(), codec, 3,
                                 DefaultConfig(8), rng);
  });
  EXPECT_GT(stats.mean_estimate, 0.0);
  EXPECT_LT(stats.nrmse, 0.5);
}

TEST(CentralMomentTest, SymmetricDataHasNearZeroThirdMoment) {
  Rng data_rng(11);
  const Dataset data = UniformData(100000, 0.0, 100.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(12);
  const double third = EstimateCentralMoment(data.values(), codec, 3,
                                             DefaultConfig(7), rng);
  // |E[(X-mu)^3]| of Uniform(0,100) is 0; estimate within a small
  // fraction of the scale 100^3.
  EXPECT_LT(std::abs(third), 0.02 * 1e6);
}

TEST(GeometricMeanTest, MatchesExactOnPositiveData) {
  Rng data_rng(13);
  const Dataset data = LognormalData(50000, 3.0, 0.5, data_rng);
  const Dataset clipped = data.Clipped(1.0, 1023.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  double exact_log = 0.0;
  for (const double x : clipped.values()) exact_log += std::log(x);
  const double exact =
      std::exp(exact_log / static_cast<double>(clipped.size()));
  const ErrorStats stats = RunRepetitions(30, 14, exact, [&](Rng& rng) {
    return EstimateGeometricMean(clipped.values(), codec, 1.0, 12,
                                 DefaultConfig(10), rng);
  });
  EXPECT_LT(stats.nrmse, 0.05);
}

TEST(GeometricMeanTest, GeometricBelowArithmeticForSkewedData) {
  Rng data_rng(15);
  const Dataset data = LognormalData(20000, 2.0, 1.0, data_rng);
  const Dataset clipped = data.Clipped(1.0, 4095.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(12);
  Rng rng(16);
  const double geometric = EstimateGeometricMean(
      clipped.values(), codec, 1.0, 12, DefaultConfig(12), rng);
  EXPECT_LT(geometric, clipped.truth().mean);
  EXPECT_GT(geometric, 0.0);
}

TEST(LogProductTest, MatchesSumOfLogs) {
  Rng data_rng(17);
  const Dataset data = UniformData(10000, 2.0, 100.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  double exact = 0.0;
  for (const double x : data.values()) exact += std::log(x);
  const ErrorStats stats = RunRepetitions(30, 18, exact, [&](Rng& rng) {
    return EstimateLogProduct(data.values(), codec, 1.0, 12,
                              DefaultConfig(7), rng);
  });
  EXPECT_LT(stats.nrmse, 0.05);
}

TEST(SkewnessTest, RightSkewedDataIsPositive) {
  Rng data_rng(19);
  const Dataset data = ExponentialData(150000, 25.0, data_rng);
  const Dataset clipped = data.Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  Rng rng(20);
  const double skew =
      EstimateSkewness(clipped.values(), codec, DefaultConfig(8), rng);
  // Exponential skewness is 2 (clipping trims it somewhat).
  EXPECT_GT(skew, 0.8);
  EXPECT_LT(skew, 3.5);
}

TEST(SkewnessTest, SymmetricDataIsNearZero) {
  Rng data_rng(21);
  const Dataset data = UniformData(150000, 0.0, 120.0, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(22);
  const double skew =
      EstimateSkewness(data.values(), codec, DefaultConfig(7), rng);
  EXPECT_LT(std::abs(skew), 0.5);
}

TEST(KurtosisTest, UniformBelowNormalAboveForHeavyTails) {
  // Uniform kurtosis = 1.8; a clipped lognormal is well above 3.
  Rng data_rng(23);
  const FixedPointCodec codec = FixedPointCodec::Integer(8);
  const Dataset uniform = UniformData(200000, 0.0, 255.0, data_rng);
  Rng rng(24);
  const double uniform_kurtosis =
      EstimateKurtosis(uniform.values(), codec, DefaultConfig(8), rng);
  EXPECT_GT(uniform_kurtosis, 1.0);
  EXPECT_LT(uniform_kurtosis, 2.6);

  const Dataset heavy =
      LognormalData(200000, 3.0, 0.8, data_rng).Clipped(0.0, 255.0);
  const double heavy_kurtosis =
      EstimateKurtosis(heavy.values(), codec, DefaultConfig(8), rng);
  EXPECT_GT(heavy_kurtosis, 3.0);
}

TEST(SkewnessTest, ConstantDataReturnsZero) {
  const std::vector<double> values(100, 50.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(25);
  EXPECT_DOUBLE_EQ(EstimateSkewness(values, codec, DefaultConfig(7), rng),
                   0.0);
  EXPECT_DOUBLE_EQ(EstimateKurtosis(values, codec, DefaultConfig(7), rng),
                   0.0);
}

TEST(MomentsDeathTest, InvalidInputsAbort) {
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(1);
  EXPECT_DEATH(EstimateRawMoment({1.0, 2.0}, codec, 0, DefaultConfig(7),
                                 rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateRawMoment({1.0}, codec, 1, DefaultConfig(7), rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateCentralMoment({1.0, 2.0, 3.0}, codec, 2,
                                     DefaultConfig(7), rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(EstimateLogProduct({1.0, 2.0}, codec, 0.0, 10,
                                  DefaultConfig(7), rng),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
