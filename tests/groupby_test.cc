#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "federated/groupby.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

// Clients in segment "low" hold values near 20, "high" near 80; a tiny
// segment "rare" must be suppressed.
std::vector<Client> SegmentedPopulation(int64_t per_segment) {
  std::vector<Client> clients;
  int64_t id = 0;
  for (int64_t i = 0; i < per_segment; ++i) {
    clients.emplace_back(id++, std::vector<double>{20.0 + (i % 5)},
                         ClientConfig{});
  }
  for (int64_t i = 0; i < per_segment; ++i) {
    clients.emplace_back(id++, std::vector<double>{80.0 + (i % 5)},
                         ClientConfig{});
  }
  for (int64_t i = 0; i < 10; ++i) {
    clients.emplace_back(id++, std::vector<double>{50.0}, ClientConfig{});
  }
  return clients;
}

std::string SegmentOf(const Client& client) {
  const double v = client.values().front();
  if (v < 40.0) return "low";
  if (v > 60.0) return "high";
  return "rare";
}

GroupByConfig TestConfig() {
  GroupByConfig config;
  config.query.adaptive.bits = 7;
  config.min_segment_size = 100;
  return config;
}

TEST(GroupByTest, EstimatesPerSegmentAndSuppressesSmallOnes) {
  const std::vector<Client> clients = SegmentedPopulation(2000);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(1);
  const std::vector<SegmentEstimate> results = RunGroupByMeanQuery(
      clients, SegmentOf, codec, TestConfig(), nullptr, rng);
  ASSERT_EQ(results.size(), 3u);
  // Ordered by name: high, low, rare.
  EXPECT_EQ(results[0].segment, "high");
  EXPECT_FALSE(results[0].suppressed);
  EXPECT_NEAR(results[0].estimate, 82.0, 4.0);
  EXPECT_EQ(results[0].clients, 2000);

  EXPECT_EQ(results[1].segment, "low");
  EXPECT_FALSE(results[1].suppressed);
  EXPECT_NEAR(results[1].estimate, 22.0, 4.0);

  EXPECT_EQ(results[2].segment, "rare");
  EXPECT_TRUE(results[2].suppressed);
  EXPECT_EQ(results[2].clients, 10);
}

TEST(GroupByTest, SuppressedSegmentsSendNoMessages) {
  const std::vector<Client> clients = SegmentedPopulation(50);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  PrivacyMeter meter{MeterPolicy{}};
  Rng rng(2);
  // min_segment_size 100 > 50: everything suppressed, no bits disclosed.
  const std::vector<SegmentEstimate> results = RunGroupByMeanQuery(
      clients, SegmentOf, codec, TestConfig(), &meter, rng);
  for (const SegmentEstimate& result : results) {
    EXPECT_TRUE(result.suppressed);
  }
  EXPECT_EQ(meter.total_bits(), 0);
}

TEST(GroupByTest, MeterSpansSegments) {
  const std::vector<Client> clients = SegmentedPopulation(500);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  PrivacyMeter meter{MeterPolicy{}};
  Rng rng(3);
  RunGroupByMeanQuery(clients, SegmentOf, codec, TestConfig(), &meter,
                      rng);
  // Two live segments x 500 clients, one bit each; "rare" suppressed.
  EXPECT_EQ(meter.total_bits(), 1000);
}

TEST(GroupByTest, SingleSegmentMatchesPlainQuery) {
  const std::vector<Client> clients =
      MakePopulation(std::vector<double>(3000, 42.0), ClientConfig{});
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(4);
  const std::vector<SegmentEstimate> results = RunGroupByMeanQuery(
      clients, [](const Client&) { return std::string("all"); }, codec,
      TestConfig(), nullptr, rng);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].suppressed);
  EXPECT_DOUBLE_EQ(results[0].estimate, 42.0);  // constant data is exact
}

TEST(GroupByDeathTest, InvalidConfigAborts) {
  const std::vector<Client> clients = SegmentedPopulation(10);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  Rng rng(5);
  GroupByConfig config = TestConfig();
  config.min_segment_size = 1;
  EXPECT_DEATH(RunGroupByMeanQuery(clients, SegmentOf, codec, config,
                                   nullptr, rng),
               "BITPUSH_CHECK failed");
  EXPECT_DEATH(RunGroupByMeanQuery(clients, nullptr, codec, TestConfig(),
                                   nullptr, rng),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
