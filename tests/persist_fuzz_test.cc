// Seeded fuzzing of the persistence decode paths, extending the
// wire_fuzz_test.cc pattern to journal files and snapshots. The contract
// under test is fail-closed recovery: for ANY mutated file the reader
// either returns a clean error, or returns records that are a bit-exact
// prefix of what was written (torn tail) — it never invents, alters, or
// silently drops a record in the middle, because a dropped record could be
// a privacy-meter charge.

// bitpush-lint: allow(privacy-metering): fuzz corpus builds synthetic reports; no client value is behind them

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/journal.h"
#include "persist/snapshot.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

// Builds a plausible journal exercising every JournalRecordType: a query
// bracketed by a cohort assignment, meter charges, accepted reports, a
// resilience decision, the closed round, the query result, and the
// campaign tick. The wire-exhaustiveness lint check requires each record
// type to pass through this fuzzer.
std::vector<JournalRecord> SampleRecords(Rng& rng) {
  std::vector<JournalRecord> records;
  uint64_t seq = 0;
  auto add = [&](JournalRecordType type, const std::vector<uint8_t>& payload) {
    JournalRecord record;
    record.seq = seq++;
    record.type = type;
    record.payload = payload;
    records.push_back(std::move(record));
  };
  std::vector<uint8_t> payload;
  EncodeQueryStartedRecord(QueryStartedRecord{0, 0, 7}, &payload);
  add(JournalRecordType::kQueryStarted, payload);

  payload.clear();
  CohortAssignedRecord cohort;
  cohort.round_id = 1;
  const size_t cohort_size = 1 + rng.NextBelow(5);
  for (size_t i = 0; i < cohort_size; ++i) {
    cohort.client_ids.push_back(static_cast<int64_t>(rng.NextBelow(1000)));
  }
  EncodeCohortAssignedRecord(cohort, &payload);
  add(JournalRecordType::kCohortAssigned, payload);

  const size_t charges = 1 + rng.NextBelow(6);
  for (size_t i = 0; i < charges; ++i) {
    payload.clear();
    MeterChargeRecord charge;
    charge.client_id = static_cast<int64_t>(rng.NextBelow(1000));
    charge.value_id = 7;
    charge.epsilon = rng.NextDouble();
    charge.granted = rng.NextBit() == 1;
    EncodeMeterChargeRecord(charge, &payload);
    add(JournalRecordType::kMeterCharge, payload);

    payload.clear();
    ReportAcceptedRecord accepted;
    accepted.round_id = 1;
    accepted.report = BitReport{charge.client_id,
                                static_cast<int>(rng.NextBelow(16)),
                                rng.NextBit()};
    EncodeReportAcceptedRecord(accepted, &payload);
    add(JournalRecordType::kReportAccepted, payload);
  }

  payload.clear();
  ResilienceEventRecord resilience;
  resilience.event.type = ResilienceEventType::kRetryScheduled;
  resilience.event.round_id = 1;
  resilience.event.client_id = static_cast<int64_t>(rng.NextBelow(1000));
  resilience.event.attempt = 1;
  resilience.event.minutes = rng.NextDouble();
  EncodeResilienceEventRecord(resilience, &payload);
  add(JournalRecordType::kResilienceEvent, payload);

  payload.clear();
  RoundClosedRecord closed;
  closed.round_id = 1;
  closed.outcome.contacted = static_cast<int64_t>(cohort_size);
  closed.outcome.responded = static_cast<int64_t>(charges);
  closed.outcome.dropout_rate = rng.NextDouble();
  EncodeRoundClosedRecord(closed, &payload);
  add(JournalRecordType::kRoundClosed, payload);

  payload.clear();
  QueryFinishedRecord finished;
  finished.tick = 0;
  finished.query_index = 0;
  finished.result.tick = 0;
  finished.result.query_name = "metric";
  finished.result.status = CampaignTickResult::Status::kRan;
  finished.result.estimate = rng.NextDouble();
  finished.result.reports = static_cast<int64_t>(charges);
  finished.final_bit_means = {rng.NextDouble(), rng.NextDouble()};
  EncodeQueryFinishedRecord(finished, &payload);
  add(JournalRecordType::kQueryFinished, payload);

  payload.clear();
  EncodeCampaignTickRecord(CampaignTickRecord{0}, &payload);
  add(JournalRecordType::kCampaignTick, payload);
  return records;
}

std::vector<uint8_t> EncodeAll(const std::vector<JournalRecord>& records) {
  std::vector<uint8_t> bytes;
  for (const JournalRecord& record : records) {
    AppendJournalFrame(record.type, record.seq, record.payload, &bytes);
  }
  return bytes;
}

// Same mutation repertoire as the wire fuzzer: bit flips, truncations,
// duplicated spans (a repeated record must be caught by the sequence
// check), and stacked combinations.
void Mutate(Rng& rng, std::vector<uint8_t>* buffer) {
  const uint64_t kind = rng.NextBelow(4);
  if (kind == 0 || kind == 3) {
    const uint64_t flips = 1 + rng.NextBelow(8);
    for (uint64_t k = 0; k < flips && !buffer->empty(); ++k) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(buffer->size()));
      (*buffer)[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
  }
  if (kind == 1 || kind == 3) {
    buffer->resize(static_cast<size_t>(rng.NextBelow(buffer->size() + 1)));
  }
  if (kind == 2 && !buffer->empty()) {  // duplicate a span in place
    const size_t from = static_cast<size_t>(rng.NextBelow(buffer->size()));
    const size_t length = static_cast<size_t>(
        1 + rng.NextBelow(buffer->size() - from));
    const std::vector<uint8_t> span(
        buffer->begin() + static_cast<ptrdiff_t>(from),
        buffer->begin() + static_cast<ptrdiff_t>(from + length));
    const size_t at = static_cast<size_t>(rng.NextBelow(buffer->size() + 1));
    buffer->insert(buffer->begin() + static_cast<ptrdiff_t>(at), span.begin(),
                   span.end());
  }
}

class PersistFuzzTest : public ::testing::Test {
 protected:
  PersistFuzzTest() {
    // Unique per test: ctest runs the cases of this fixture as concurrent
    // processes, which must not share a journal file.
    dir_ = ::testing::TempDir() + "/persist_fuzz_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/journal.wal";
  }
  ~PersistFuzzTest() override { std::filesystem::remove_all(dir_); }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    std::FILE* file = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    if (!bytes.empty()) {
      // fwrite's first argument is declared nonnull; an empty vector's
      // data() may be null.
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file),
                bytes.size());
    }
    std::fclose(file);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(PersistFuzzTest, JournalReaderFailsClosedOnEveryMutation) {
  for (uint64_t iteration = 0; iteration < 3000; ++iteration) {
    Rng rng(0xA11CE000 + iteration);
    const std::vector<JournalRecord> original = SampleRecords(rng);
    std::vector<uint8_t> bytes = EncodeAll(original);
    Mutate(rng, &bytes);
    WriteBytes(bytes);

    JournalReadResult result;
    std::string error;
    if (!ReadJournal(path_, 0, &result, &error)) {
      ASSERT_FALSE(error.empty()) << iteration;
      continue;
    }
    // Accepted: everything kept must be a bit-exact prefix of the original
    // stream. In particular no meter charge in the prefix was altered and
    // none before the accepted length was dropped.
    ASSERT_LE(result.records.size(), original.size()) << iteration;
    for (size_t i = 0; i < result.records.size(); ++i) {
      ASSERT_EQ(result.records[i].seq, original[i].seq) << iteration;
      ASSERT_EQ(result.records[i].type, original[i].type) << iteration;
      ASSERT_EQ(result.records[i].payload, original[i].payload) << iteration;
    }
    if (result.records.size() < original.size()) {
      // Shortened output must be flagged, never presented as a clean file.
      ASSERT_TRUE(result.torn_tail || bytes.size() < EncodeAll(original).size())
          << iteration;
    }
  }
}

TEST_F(PersistFuzzTest, JournalReaderSurvivesPureGarbage) {
  for (uint64_t iteration = 0; iteration < 2000; ++iteration) {
    Rng rng(0xBAD0000 + iteration);
    std::vector<uint8_t> bytes(rng.NextBelow(256));
    for (uint8_t& byte : bytes) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    WriteBytes(bytes);
    JournalReadResult result;
    std::string error;
    if (ReadJournal(path_, 0, &result, &error)) {
      // Garbage essentially never forms a valid CRC frame; if it does, the
      // records must still satisfy the framing invariants.
      for (const JournalRecord& record : result.records) {
        ASSERT_GE(static_cast<uint8_t>(record.type), 1u) << iteration;
        ASSERT_LE(static_cast<uint8_t>(record.type),
                  static_cast<uint8_t>(JournalRecordType::kResilienceEvent))
            << iteration;
      }
    }
  }
}

TEST(SnapshotFuzzTest, DecoderFailsClosedOnEveryMutation) {
  for (uint64_t iteration = 0; iteration < 3000; ++iteration) {
    Rng rng(0x5A45000 + iteration);
    CoordinatorSnapshot snapshot;
    snapshot.base_seed = rng.NextUint64();
    snapshot.journal_next_seq = rng.NextBelow(100);
    snapshot.completed_ticks = static_cast<int64_t>(rng.NextBelow(10));
    snapshot.meter_blob.resize(rng.NextBelow(32));
    for (uint8_t& byte : snapshot.meter_blob) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    snapshot.bit_means.push_back(
        BitMeansEntry{1, {rng.NextDouble(), rng.NextDouble()}});
    std::vector<uint8_t> bytes;
    EncodeCoordinatorSnapshot(snapshot, &bytes);
    const std::vector<uint8_t> pristine = bytes;
    Mutate(rng, &bytes);
    CoordinatorSnapshot out;
    if (DecodeCoordinatorSnapshot(bytes, &out)) {
      // The whole-file CRC means a successful decode implies the mutation
      // was an identity (or a vanishingly unlikely collision): the decoded
      // snapshot must equal the original field for field.
      ASSERT_EQ(bytes, pristine) << iteration;
      ASSERT_EQ(out.base_seed, snapshot.base_seed) << iteration;
      ASSERT_EQ(out.meter_blob, snapshot.meter_blob) << iteration;
    }
  }
}

}  // namespace
}  // namespace bitpush
