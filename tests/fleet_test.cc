#include <vector>

#include <gtest/gtest.h>

#include "federated/fleet.h"
#include "federated/monitor.h"

namespace bitpush {
namespace {

FleetConfig SmallFleet() {
  FleetConfig config;
  config.devices = 5000;
  config.metric = MetricFamily::kLatencyMs;
  return config;
}

TEST(FleetTest, AvailabilityFollowsDiurnalCycle) {
  FleetSimulator fleet(SmallFleet(), 1);
  // hour 6: sin(pi/2) = 1 -> peak; hour 18: sin(3pi/2) = -1 -> trough.
  fleet.AdvanceHours(6.0);
  const double peak = fleet.Availability();
  fleet.AdvanceHours(12.0);
  const double trough = fleet.Availability();
  EXPECT_NEAR(peak, 0.8, 1e-9);
  EXPECT_NEAR(trough, 0.2, 1e-9);
}

TEST(FleetTest, AvailabilityClampedToSane) {
  FleetConfig config = SmallFleet();
  config.availability_base = 0.1;
  config.availability_amplitude = 0.9;
  FleetSimulator fleet(config, 2);
  fleet.AdvanceHours(18.0);  // base - amplitude would be negative
  EXPECT_GE(fleet.Availability(), 0.05);
}

TEST(FleetTest, CohortSizeTracksAvailability) {
  FleetSimulator fleet(SmallFleet(), 3);
  fleet.AdvanceHours(6.0);  // peak (0.8)
  const size_t at_peak = fleet.CollectWindow(0).size();
  fleet.AdvanceHours(12.0);  // trough (0.2)
  const size_t at_trough = fleet.CollectWindow(0).size();
  EXPECT_NEAR(static_cast<double>(at_peak), 0.8 * 5000, 150);
  EXPECT_NEAR(static_cast<double>(at_trough), 0.2 * 5000, 150);
}

TEST(FleetTest, MaxCohortCapsTheWindow) {
  FleetSimulator fleet(SmallFleet(), 4);
  fleet.AdvanceHours(6.0);
  EXPECT_EQ(fleet.CollectWindow(100).size(), 100u);
}

TEST(FleetTest, MetricScaleCompounds) {
  FleetSimulator fleet(SmallFleet(), 5);
  fleet.ScaleMetric(2.0);
  fleet.ScaleMetric(10.0);
  EXPECT_DOUBLE_EQ(fleet.metric_scale(), 20.0);
}

TEST(FleetTest, RegressionShiftsCollectedReadings) {
  FleetSimulator fleet(SmallFleet(), 6);
  const std::vector<double> before = fleet.CollectWindow(2000);
  fleet.ScaleMetric(20.0);
  const std::vector<double> after = fleet.CollectWindow(2000);
  double mean_before = 0.0;
  for (const double v : before) mean_before += v;
  mean_before /= static_cast<double>(before.size());
  double mean_after = 0.0;
  for (const double v : after) mean_after += v;
  mean_after /= static_cast<double>(after.size());
  EXPECT_GT(mean_after, 10.0 * mean_before);
}

TEST(FleetTest, EndToEndMonitoringFlagsInjectedRegression) {
  // The integration the module exists for: windows every 4 hours through
  // the monitor; a 20x regression injected mid-run raises the upper-bound
  // flag on the next window.
  FleetSimulator fleet(SmallFleet(), 7);
  const FixedPointCodec codec = FixedPointCodec::Integer(18);
  MonitorConfig monitor_config;
  monitor_config.protocol.bits = 18;
  MetricMonitor monitor(codec, monitor_config);
  Rng rng(8);

  bool flagged_before_regression = false;
  for (int window = 0; window < 6; ++window) {
    const WindowSummary summary =
        monitor.IngestWindow(fleet.CollectWindow(0), rng);
    flagged_before_regression |= summary.bound_flagged;
    fleet.AdvanceHours(4.0);
  }
  EXPECT_FALSE(flagged_before_regression);

  fleet.ScaleMetric(20.0);
  const WindowSummary after =
      monitor.IngestWindow(fleet.CollectWindow(0), rng);
  EXPECT_TRUE(after.bound_flagged);
}

TEST(FleetDeathTest, InvalidConfigAborts) {
  FleetConfig bad = SmallFleet();
  bad.devices = 0;
  EXPECT_DEATH(FleetSimulator(bad, 1), "BITPUSH_CHECK failed");
  FleetSimulator fleet(SmallFleet(), 2);
  EXPECT_DEATH(fleet.AdvanceHours(-1.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(fleet.ScaleMetric(0.0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(fleet.CollectWindow(-1), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
