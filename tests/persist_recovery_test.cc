// Crash-recovery acceptance: a campaign killed at *every* journal-record
// boundary — and at arbitrary byte offsets inside the torn tail — recovers
// to byte-identical results, an identical privacy-meter ledger, and an
// identical bit-means cache, with every meter charge applied exactly once.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/privacy_meter.h"
#include "data/census.h"
#include "federated/faults.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

constexpr uint64_t kSeed = 2024;
constexpr int64_t kTicks = 2;

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    Rng data_rng(7);
    const Dataset ages = CensusAges(60, data_rng);
    population_ = MakePopulation(ages.values(), ClientConfig{});
    codecs_ = {FixedPointCodec::Integer(7), FixedPointCodec::Integer(7)};
    populations_ = {&population_, &population_};

    FaultRates rates;
    rates.mid_round_dropout = 0.1;
    rates.corrupt_message = 0.05;
    rates.truncate_message = 0.05;
    plan_.emplace(97, rates);

    // Tight caps so the run exercises both granted and denied charges:
    // metric "b" shares client budget with "a" and runs out mid-campaign.
    policy_.max_bits_per_value = 1;
    policy_.max_bits_per_client = 2;
    policy_.max_epsilon_per_client = 100.0;
  }

  ~RecoveryTest() override {
    for (const std::string& dir : dirs_) std::filesystem::remove_all(dir);
  }

  std::vector<CampaignQuery> MakeQueries() const {
    std::vector<CampaignQuery> queries;
    for (int i = 0; i < 2; ++i) {
      CampaignQuery query;
      query.name = i == 0 ? "a" : "b";
      query.value_id = i;
      query.cadence_ticks = 1;
      query.query.adaptive.bits = 7;
      query.query.fault_plan = &*plan_;
      query.query.fault_policy.report_deadline_minutes = 30.0;
      queries.push_back(query);
    }
    return queries;
  }

  std::string FreshDir(const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/recovery_" + tag;
    std::filesystem::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }

  DurableCampaignOptions Options(const std::string& dir) const {
    DurableCampaignOptions options;
    options.state_dir = dir;
    options.seed = kSeed;
    options.fsync = false;  // hundreds of journals in this suite
    return options;
  }

  // Runs ticks [next_tick, kTicks) to completion and returns the fingerprint
  // every crash point must reproduce: tick results, meter ledger bytes, and
  // the bit-means cache.
  struct Fingerprint {
    std::vector<CampaignTickResult> history;
    std::vector<uint8_t> meter;
    std::map<int64_t, std::vector<double>> bit_means;
  };
  Fingerprint RunToCompletion(DurableCampaignRunner* runner) {
    for (int64_t tick = runner->next_tick(); tick < kTicks; ++tick) {
      runner->RunTick(tick, populations_, codecs_);
    }
    Fingerprint fingerprint;
    fingerprint.history = runner->campaign().history();
    runner->meter().EncodeTo(&fingerprint.meter);
    fingerprint.bit_means = runner->bit_means_cache();
    return fingerprint;
  }

  std::vector<Client> population_;
  std::vector<const std::vector<Client>*> populations_;
  std::vector<FixedPointCodec> codecs_;
  std::optional<FaultPlan> plan_;
  MeterPolicy policy_;
  std::vector<std::string> dirs_;
};

TEST_F(RecoveryTest, FreshRunReportsNothingRecovered) {
  DurableCampaignRunner runner(MakeQueries(), policy_, Options(FreshDir("fresh")));
  std::string error;
  ASSERT_TRUE(runner.Open(&error)) << error;
  EXPECT_FALSE(runner.recovery_info().recovered);
  const Fingerprint fingerprint = RunToCompletion(&runner);
  ASSERT_EQ(fingerprint.history.size(), 2u * kTicks);
  // The tight budget makes metric "b" run at tick 0 and starve later.
  EXPECT_EQ(fingerprint.history[0].status, CampaignTickResult::Status::kRan);
  EXPECT_EQ(fingerprint.history[1].status, CampaignTickResult::Status::kRan);
  EXPECT_GT(runner.meter().denied_charges(), 0);
}

TEST_F(RecoveryTest, DurableRunMatchesPlainCampaign) {
  // Journaling must be an observer: the durable runner's results are
  // byte-identical to a bare MeasurementCampaign driven by the same seed.
  DurableCampaignRunner runner(MakeQueries(), policy_, Options(FreshDir("obs")));
  std::string error;
  ASSERT_TRUE(runner.Open(&error)) << error;
  const Fingerprint durable = RunToCompletion(&runner);

  PrivacyMeter meter(policy_);
  MeasurementCampaign plain(MakeQueries(), &meter);
  Rng rng(kSeed);
  for (int64_t tick = 0; tick < kTicks; ++tick) {
    plain.RunTick(tick, populations_, codecs_, rng);
  }
  EXPECT_EQ(durable.history, plain.history());
  std::vector<uint8_t> plain_meter;
  meter.EncodeTo(&plain_meter);
  EXPECT_EQ(durable.meter, plain_meter);
}

TEST_F(RecoveryTest, KillAtEveryJournalRecordRecoversIdentically) {
  // The uninterrupted run's journal is ground truth. For every prefix of k
  // records (k = 0 .. N) — the exact disk state a SIGKILL after the k-th
  // durable append leaves behind — recovery must converge on the same
  // fingerprint.
  const std::string base_dir = FreshDir("baseline");
  DurableCampaignRunner baseline(MakeQueries(), policy_, Options(base_dir));
  std::string error;
  ASSERT_TRUE(baseline.Open(&error)) << error;
  const Fingerprint expected = RunToCompletion(&baseline);

  JournalReadResult journal;
  ASSERT_TRUE(ReadJournal(base_dir + "/journal.wal", 0, &journal, &error))
      << error;
  ASSERT_FALSE(journal.torn_tail);
  const size_t total = journal.records.size();
  ASSERT_GT(total, 100u);  // both queries, both rounds, charges, reports

  int64_t denied_seen = 0;
  for (const JournalRecord& record : journal.records) {
    if (record.type != JournalRecordType::kMeterCharge) continue;
    MeterChargeRecord charge;
    ASSERT_TRUE(DecodeMeterChargeRecord(record.payload, &charge));
    if (!charge.granted) ++denied_seen;
  }
  ASSERT_GT(denied_seen, 0);  // the crash matrix covers denial records too

  for (size_t k = 0; k <= total; ++k) {
    const std::string dir = FreshDir("kill_" + std::to_string(k));
    std::filesystem::create_directories(dir);
    std::vector<uint8_t> prefix_bytes;
    for (size_t i = 0; i < k; ++i) {
      AppendJournalFrame(journal.records[i].type, journal.records[i].seq,
                         journal.records[i].payload, &prefix_bytes);
    }
    std::FILE* file = std::fopen((dir + "/journal.wal").c_str(), "wb");
    ASSERT_NE(file, nullptr);
    if (!prefix_bytes.empty()) {
      // k == 0 writes an empty journal, and an empty vector's data() may
      // be null, which fwrite declares nonnull.
      ASSERT_EQ(std::fwrite(prefix_bytes.data(), 1, prefix_bytes.size(), file),
                prefix_bytes.size());
    }
    std::fclose(file);

    DurableCampaignRunner runner(MakeQueries(), policy_, Options(dir));
    ASSERT_TRUE(runner.Open(&error)) << "k=" << k << ": " << error;
    EXPECT_EQ(runner.recovery_info().recovered, k > 0) << k;
    EXPECT_EQ(runner.recovery_info().replayed_records,
              static_cast<int64_t>(k))
        << k;
    const Fingerprint actual = RunToCompletion(&runner);
    ASSERT_EQ(actual.history, expected.history) << "diverged at k=" << k;
    ASSERT_EQ(actual.meter, expected.meter)
        << "meter ledger diverged at k=" << k
        << " (a charge was dropped or double-applied)";
    ASSERT_EQ(actual.bit_means, expected.bit_means) << k;
  }
}

TEST_F(RecoveryTest, KillAtEveryRecordRecoversWithPeriodicSnapshotsOn) {
  // Regression: with snapshot_every_ticks > 0, the automatic snapshot used
  // to abort a recovering coordinator — it fired at restored-tick
  // boundaries while the replay prefix was still pending, and even after
  // the prefix was fully consumed it was never discarded, so Snapshot()'s
  // empty-prefix CHECK failed. Every mid-query crash point must now
  // recover, defer the snapshot to the first live boundary, and converge
  // on the uninterrupted fingerprint.
  const std::string base_dir = FreshDir("snapkill_base");
  DurableCampaignRunner baseline(MakeQueries(), policy_, Options(base_dir));
  std::string error;
  ASSERT_TRUE(baseline.Open(&error)) << error;
  const Fingerprint expected = RunToCompletion(&baseline);

  JournalReadResult journal;
  ASSERT_TRUE(ReadJournal(base_dir + "/journal.wal", 0, &journal, &error))
      << error;
  const size_t total = journal.records.size();
  ASSERT_GT(total, 100u);

  for (size_t k = 0; k <= total; ++k) {
    const std::string dir = FreshDir("snapkill_" + std::to_string(k));
    std::filesystem::create_directories(dir);
    std::vector<uint8_t> prefix_bytes;
    for (size_t i = 0; i < k; ++i) {
      AppendJournalFrame(journal.records[i].type, journal.records[i].seq,
                         journal.records[i].payload, &prefix_bytes);
    }
    std::FILE* file = std::fopen((dir + "/journal.wal").c_str(), "wb");
    ASSERT_NE(file, nullptr);
    if (!prefix_bytes.empty()) {
      // k == 0 writes an empty journal; empty data() may be null.
      ASSERT_EQ(std::fwrite(prefix_bytes.data(), 1, prefix_bytes.size(), file),
                prefix_bytes.size());
    }
    std::fclose(file);

    DurableCampaignOptions options = Options(dir);
    options.snapshot_every_ticks = 1;
    DurableCampaignRunner runner(MakeQueries(), policy_, options);
    ASSERT_TRUE(runner.Open(&error)) << "k=" << k << ": " << error;
    const Fingerprint actual = RunToCompletion(&runner);
    ASSERT_EQ(actual.history, expected.history) << "diverged at k=" << k;
    ASSERT_EQ(actual.meter, expected.meter)
        << "meter ledger diverged at k=" << k;
    ASSERT_EQ(actual.bit_means, expected.bit_means) << k;

    // The (possibly deferred) snapshot landed once the run went live: a
    // second recovery starts from it with an empty journal tail.
    DurableCampaignRunner again(MakeQueries(), policy_, options);
    ASSERT_TRUE(again.Open(&error)) << "k=" << k << ": " << error;
    EXPECT_TRUE(again.recovery_info().had_snapshot) << k;
    EXPECT_EQ(again.recovery_info().completed_ticks, kTicks) << k;
    EXPECT_EQ(again.recovery_info().replayed_records, 0) << k;
  }
}

TEST_F(RecoveryTest, TornTailBytesAreDiscardedAndRecoveryProceeds) {
  const std::string base_dir = FreshDir("torn_base");
  DurableCampaignRunner baseline(MakeQueries(), policy_, Options(base_dir));
  std::string error;
  ASSERT_TRUE(baseline.Open(&error)) << error;
  const Fingerprint expected = RunToCompletion(&baseline);

  std::vector<uint8_t> full;
  {
    std::FILE* file = std::fopen((base_dir + "/journal.wal").c_str(), "rb");
    ASSERT_NE(file, nullptr);
    uint8_t chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
      full.insert(full.end(), chunk, chunk + n);
    }
    std::fclose(file);
  }
  // Mid-frame cuts: every 997th byte offset keeps the suite fast while
  // landing at unaligned positions across the whole file.
  for (size_t cut = 1; cut < full.size(); cut += 997) {
    const std::string dir = FreshDir("torn_" + std::to_string(cut));
    std::filesystem::create_directories(dir);
    std::FILE* file = std::fopen((dir + "/journal.wal").c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(full.data(), 1, cut, file), cut);
    std::fclose(file);

    DurableCampaignRunner runner(MakeQueries(), policy_, Options(dir));
    ASSERT_TRUE(runner.Open(&error)) << "cut=" << cut << ": " << error;
    const Fingerprint actual = RunToCompletion(&runner);
    ASSERT_EQ(actual.history, expected.history) << "cut=" << cut;
    ASSERT_EQ(actual.meter, expected.meter) << "cut=" << cut;
  }
}

TEST_F(RecoveryTest, SnapshotTruncatesJournalAndRecoveryUsesIt) {
  const std::string dir = FreshDir("snap");
  DurableCampaignOptions options = Options(dir);
  options.snapshot_every_ticks = 1;
  DurableCampaignRunner runner(MakeQueries(), policy_, options);
  std::string error;
  ASSERT_TRUE(runner.Open(&error)) << error;
  const Fingerprint expected = RunToCompletion(&runner);

  // Every tick snapshotted: the journal holds nothing past the last one.
  JournalReadResult journal;
  ASSERT_TRUE(ReadJournal(dir + "/journal.wal", 0, &journal, &error));
  EXPECT_TRUE(journal.records.empty());

  DurableCampaignRunner recovered(MakeQueries(), policy_, options);
  ASSERT_TRUE(recovered.Open(&error)) << error;
  EXPECT_TRUE(recovered.recovery_info().had_snapshot);
  EXPECT_EQ(recovered.recovery_info().completed_ticks, kTicks);
  EXPECT_EQ(recovered.next_tick(), 0);
  const Fingerprint actual = RunToCompletion(&recovered);
  EXPECT_EQ(actual.history, expected.history);
  EXPECT_EQ(actual.meter, expected.meter);
  EXPECT_EQ(actual.bit_means, expected.bit_means);
}

TEST_F(RecoveryTest, RecoveryRefusesAForeignSeed) {
  const std::string dir = FreshDir("seed");
  DurableCampaignOptions options = Options(dir);
  options.snapshot_every_ticks = 1;
  {
    DurableCampaignRunner runner(MakeQueries(), policy_, options);
    std::string error;
    ASSERT_TRUE(runner.Open(&error)) << error;
    RunToCompletion(&runner);
  }
  options.seed = kSeed + 1;
  DurableCampaignRunner imposter(MakeQueries(), policy_, options);
  std::string error;
  EXPECT_FALSE(imposter.Open(&error));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
}

TEST_F(RecoveryTest, RecoveryRefusesAForeignMeterPolicy) {
  const std::string dir = FreshDir("policy");
  DurableCampaignOptions options = Options(dir);
  options.snapshot_every_ticks = 1;
  {
    DurableCampaignRunner runner(MakeQueries(), policy_, options);
    std::string error;
    ASSERT_TRUE(runner.Open(&error)) << error;
    RunToCompletion(&runner);
  }
  MeterPolicy loosened = policy_;
  loosened.max_bits_per_client = 1000;
  DurableCampaignRunner imposter(MakeQueries(), loosened, options);
  std::string error;
  EXPECT_FALSE(imposter.Open(&error));
  EXPECT_NE(error.find("policy"), std::string::npos) << error;
}

TEST_F(RecoveryTest, OpenSessionsSurviveSnapshots) {
  const std::string dir = FreshDir("session");
  DurableCampaignRunner runner(MakeQueries(), policy_, Options(dir));
  std::string error;
  ASSERT_TRUE(runner.Open(&error)) << error;

  SessionConfig config;
  config.probabilities = {0.5, 0.25, 0.25};
  config.epsilon = 1.0;
  config.round_id = 3;
  config.value_id = 9;
  const int64_t index =
      runner.AddSession(FixedPointCodec::Integer(3), config);
  CollectionSession* session = runner.session(index);
  for (int64_t client = 1; client <= 20; ++client) {
    BitRequest request;
    ASSERT_TRUE(session->IssueAssignment(client, &request));
    if (client % 2 == 0) {
      BitReport report;
      report.client_id = client;
      report.bit_index = request.bit_index;
      report.bit = 1;
      ASSERT_EQ(session->SubmitReport(report), ReportRejection::kAccepted);
    }
  }
  ASSERT_TRUE(runner.Snapshot(&error)) << error;

  DurableCampaignRunner recovered(MakeQueries(), policy_, Options(dir));
  ASSERT_TRUE(recovered.Open(&error)) << error;
  ASSERT_EQ(recovered.session_count(), 1);
  CollectionSession* restored = recovered.session(0);
  EXPECT_EQ(restored->state(), SessionState::kCollecting);
  EXPECT_EQ(restored->assignments_issued(), 20);
  EXPECT_EQ(restored->accepted_reports(), 10);
  EXPECT_DOUBLE_EQ(restored->Estimate(), session->Estimate());
  // The restored session re-encodes to the exact bytes of the original.
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;
  session->EncodeTo(&before);
  restored->EncodeTo(&after);
  EXPECT_EQ(before, after);
  // And keeps collecting: the deficit allocation continues where it left
  // off, so the next assignments match on both objects.
  BitRequest a;
  BitRequest b;
  ASSERT_TRUE(session->IssueAssignment(999, &a));
  ASSERT_TRUE(restored->IssueAssignment(999, &b));
  EXPECT_EQ(a.bit_index, b.bit_index);
}

}  // namespace
}  // namespace bitpush
