// Property tests for the extension modules: derived aggregates, weighted
// means, Shamir sharing, the wire format, and memoization. Universal
// invariants (Shamir round-trips, wire round-trips) run on bitprop
// generators with shrinking; the statistical suites that need a fixed
// Monte-Carlo grid stay parameterized gtest.

// bitpush-lint: allow(privacy-metering): property sweeps build synthetic reports; no client value is behind them

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/histogram_estimation.h"
#include "core/moments.h"
#include "core/proportion.h"
#include "core/range_tree.h"
#include "core/weighted.h"
#include "data/synthetic.h"
#include "federated/shamir.h"
#include "federated/wire.h"
#include "ldp/memoization.h"
#include "prop/bitprop.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

using ::bitpush::prop::CheckProperty;
using ::bitpush::prop::Domain;

// ---------------------------------------------------------------------------
// Histogram / range-tree mass conservation across bucketings.

class HistogramBucketsTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramBucketsTest, MassSumsToOneForAnyBucketCount) {
  const int buckets = GetParam();
  Rng rng(100 + static_cast<uint64_t>(buckets));
  const Dataset data = UniformData(40000, 0.0, 100.0, rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 100.0, buckets);
  const HistogramResult result =
      EstimateHistogram(data.values(), config, rng);
  double total = 0.0;
  for (const double f : result.fractions) total += f;
  EXPECT_NEAR(total, 1.0, 0.06) << buckets << " buckets";
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, HistogramBucketsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

class RangeTreeLevelsTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeTreeLevelsTest, EveryLevelConservesTotalMass) {
  const int levels = GetParam();
  Rng rng(200 + static_cast<uint64_t>(levels));
  std::vector<uint64_t> codewords(60000);
  const uint64_t domain = uint64_t{1} << levels;
  for (uint64_t& c : codewords) c = rng.NextBelow(domain);
  const RangeTreeResult tree = EstimateRangeTree(
      codewords, RangeTreeConfig{levels, 0.0}, rng);
  for (int level = 1; level <= levels; ++level) {
    double total = 0.0;
    for (uint64_t v = 0; v < (uint64_t{1} << level); ++v) {
      total += tree.NodeFraction(level, v);
    }
    // The level's total is a sum of 2^L independent cell means, each from
    // ~n/(levels * 2^L) reports: stddev ~= sqrt(levels * 2^L / n). Allow
    // 4 sigma.
    const double sigma =
        std::sqrt(static_cast<double>(levels) *
                  std::exp2(level) / static_cast<double>(codewords.size()));
    EXPECT_NEAR(total, 1.0, 4.0 * sigma + 0.02) << "level " << level;
  }
}

TEST_P(RangeTreeLevelsTest, DisjointRangesAddUp) {
  const int levels = GetParam();
  Rng rng(300 + static_cast<uint64_t>(levels));
  const uint64_t domain = uint64_t{1} << levels;
  std::vector<uint64_t> codewords(60000);
  for (uint64_t& c : codewords) c = rng.NextBelow(domain);
  const RangeTreeResult tree = EstimateRangeTree(
      codewords, RangeTreeConfig{levels, 0.0}, rng);
  const uint64_t mid = domain / 2;
  const double left = tree.RangeFraction(0, mid - 1);
  const double right = tree.RangeFraction(mid, domain - 1);
  EXPECT_NEAR(left + right, 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Depths, RangeTreeLevelsTest,
                         ::testing::Values(2, 4, 6, 9));

// ---------------------------------------------------------------------------
// Moments: consistency between derived aggregates.

TEST(MomentConsistencyProperty, FirstMomentMatchesProportionWeighting) {
  // E[X], the weighted mean with unit weights, and the moment-1 estimator
  // must agree on the same data within noise.
  Rng rng(400);
  const Dataset data = UniformData(30000, 0.0, 120.0, rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(7);
  MomentConfig moment_config;
  moment_config.protocol.bits = 7;
  const double via_moment = EstimateRawMoment(data.values(), codec, 1,
                                              moment_config, rng);
  std::vector<WeightedValue> weighted;
  for (const double v : data.values()) {
    weighted.push_back(WeightedValue{v, 1.0});
  }
  WeightedMeanConfig weighted_config;
  weighted_config.probabilities = GeometricProbabilities(7, 0.5);
  const double via_weighted =
      EstimateWeightedMean(weighted, codec, weighted_config, rng).estimate;
  EXPECT_NEAR(via_moment, via_weighted, 0.1 * data.truth().mean);
}

TEST(MomentConsistencyProperty, JensenOrderingHolds) {
  // For positive data: geometric mean <= arithmetic mean, and
  // E[X^2] >= E[X]^2, across several workloads.
  Rng rng(500);
  for (int trial = 0; trial < 3; ++trial) {
    const Dataset data = LognormalData(30000, 2.5, 0.6, rng);
    const Dataset clipped = data.Clipped(1.0, 1023.0);
    const FixedPointCodec codec = FixedPointCodec::Integer(10);
    MomentConfig config;
    config.protocol.bits = 10;
    const double mean =
        EstimateRawMoment(clipped.values(), codec, 1, config, rng);
    const double second =
        EstimateRawMoment(clipped.values(), codec, 2, config, rng);
    const double geometric = EstimateGeometricMean(
        clipped.values(), codec, 1.0, 12, config, rng);
    EXPECT_LT(geometric, mean * 1.05);
    EXPECT_GT(second, mean * mean * 0.9);
  }
}

// ---------------------------------------------------------------------------
// Shamir: share/reconstruct round-trips across thresholds and secrets.

struct ShamirPropCase {
  uint64_t secret = 0;       // < kShamirPrime
  int threshold = 1;         // 1..13
  int extra_shares = 0;      // num_shares = threshold + extra
  uint64_t session_seed = 0; // drives sharing and subset selection
};

Domain<ShamirPropCase> ShamirDomain() {
  Domain<ShamirPropCase> domain;
  domain.generate = [](Rng& rng) {
    ShamirPropCase c;
    c.secret = rng.NextBelow(kShamirPrime);
    c.threshold = 1 + static_cast<int>(rng.NextBelow(13));
    c.extra_shares = static_cast<int>(rng.NextBelow(5));
    c.session_seed = rng.NextUint64();
    return c;
  };
  domain.shrink = [](const ShamirPropCase& c) {
    std::vector<ShamirPropCase> out;
    if (c.secret > 0) {
      ShamirPropCase smaller = c;
      smaller.secret /= 2;
      out.push_back(smaller);
    }
    if (c.threshold > 1) {
      ShamirPropCase smaller = c;
      smaller.threshold = 1;
      out.push_back(smaller);
    }
    if (c.extra_shares > 0) {
      ShamirPropCase smaller = c;
      smaller.extra_shares = 0;
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const ShamirPropCase& c) {
    std::ostringstream out;
    out << "{secret=" << c.secret << " threshold=" << c.threshold
        << " extra_shares=" << c.extra_shares << " session_seed=0x"
        << std::hex << c.session_seed << "}";
    return out.str();
  };
  return domain;
}

TEST(ShamirRoundTripProperty, AnyThresholdSubsetReconstructsTheSecret) {
  CheckProperty<ShamirPropCase>(
      "a random threshold-sized subset of shares reconstructs the secret",
      ShamirDomain(),
      [](const ShamirPropCase& c) -> std::optional<std::string> {
        Rng rng(c.session_seed);
        const int num_shares = c.threshold + c.extra_shares;
        const std::vector<ShamirShare> shares =
            ShamirShareSecret(c.secret, c.threshold, num_shares, rng);
        // Random subset of exactly `threshold` shares.
        std::vector<ShamirShare> subset = shares;
        for (size_t i = subset.size(); i > 1; --i) {
          std::swap(subset[i - 1], subset[rng.NextBelow(i)]);
        }
        subset.resize(static_cast<size_t>(c.threshold));
        const uint64_t reconstructed =
            ShamirReconstruct(subset, c.threshold);
        if (reconstructed != c.secret) {
          std::ostringstream out;
          out << "reconstructed " << reconstructed << " != secret "
              << c.secret;
          return out.str();
        }
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Wire format: encode/decode round-trips over random valid messages.

Domain<BitReport> BitReportDomain() {
  Domain<BitReport> domain;
  domain.generate = [](Rng& rng) {
    return BitReport{static_cast<int64_t>(rng.NextUint64() >> 1),
                     static_cast<int>(rng.NextBelow(256)),
                     static_cast<int>(rng.NextBelow(2))};
  };
  domain.shrink = [](const BitReport& r) {
    std::vector<BitReport> out;
    if (r.client_id > 0) out.push_back({r.client_id / 2, r.bit_index, r.bit});
    if (r.bit_index > 0) out.push_back({r.client_id, 0, r.bit});
    if (r.bit != 0) out.push_back({r.client_id, r.bit_index, 0});
    return out;
  };
  domain.describe = [](const BitReport& r) {
    std::ostringstream out;
    out << "{client_id=" << r.client_id << " bit_index=" << r.bit_index
        << " bit=" << r.bit << "}";
    return out.str();
  };
  return domain;
}

TEST(WireRoundTripProperty, RandomMessagesSurvive) {
  CheckProperty<BitReport>(
      "a single report survives encode/decode field-for-field",
      BitReportDomain(),
      [](const BitReport& report) -> std::optional<std::string> {
        std::vector<uint8_t> buffer;
        EncodeBitReport(report, &buffer);
        size_t offset = 0;
        BitReport decoded;
        if (!DecodeBitReport(buffer, &offset, &decoded)) {
          return std::string("decode failed on a freshly encoded report");
        }
        if (decoded.client_id != report.client_id ||
            decoded.bit_index != report.bit_index ||
            decoded.bit != report.bit) {
          return std::string("decoded fields differ from the original");
        }
        return std::nullopt;
      });
}

TEST(WireRoundTripProperty, RandomBatchesSurvive) {
  CheckProperty<std::vector<BitReport>>(
      "a report batch survives encode/decode element-for-element",
      prop::VectorOf(BitReportDomain(), 0, 64),
      [](const std::vector<BitReport>& reports)
          -> std::optional<std::string> {
        std::vector<uint8_t> buffer;
        EncodeReportBatch(reports, &buffer);
        std::vector<BitReport> decoded;
        if (!DecodeReportBatch(buffer, &decoded)) {
          return std::string("decode failed on a freshly encoded batch");
        }
        if (decoded.size() != reports.size()) {
          return std::string("decoded batch size differs");
        }
        for (size_t i = 0; i < reports.size(); ++i) {
          if (decoded[i].client_id != reports[i].client_id ||
              decoded[i].bit_index != reports[i].bit_index ||
              decoded[i].bit != reports[i].bit) {
            std::ostringstream out;
            out << "batch element " << i << " differs after round-trip";
            return out.str();
          }
        }
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Memoization: determinism and unbiasedness across epsilon grids.

class MemoizationGridTest : public ::testing::TestWithParam<double> {};

TEST_P(MemoizationGridTest, PermanentLayerDeterministicAndUnbiased) {
  const double epsilon = GetParam();
  // Determinism per client.
  const MemoizedResponder one(epsilon, 0.0, 42);
  EXPECT_EQ(one.PermanentBit(3, 2, 1), one.PermanentBit(3, 2, 1));
  // Across clients, the permanent bits of a fixed true bit average to the
  // RR expectation p (for true bit 1).
  const RandomizedResponse rr(epsilon);
  Welford acc;
  for (uint64_t secret = 0; secret < 20000; ++secret) {
    const MemoizedResponder responder(epsilon, 0.0, secret * 2654435761u);
    acc.Add(static_cast<double>(responder.PermanentBit(0, 0, 1)));
  }
  EXPECT_NEAR(acc.mean(), rr.truth_probability(), 0.02) << epsilon;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, MemoizationGridTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

// ---------------------------------------------------------------------------
// Proportion: agreement with the histogram on the same cut.

TEST(ProportionConsistencyProperty, MatchesHistogramMass) {
  Rng rng(900);
  const Dataset data = UniformData(50000, 0.0, 100.0, rng);
  const ProportionResult proportion =
      EstimateRangeProportion(data.values(), 0.0, 49.999, 0.0, rng);
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 100.0, 2);
  const HistogramResult histogram =
      EstimateHistogram(data.values(), config, rng);
  EXPECT_NEAR(proportion.fraction, histogram.fractions[0], 0.03);
}

}  // namespace
}  // namespace bitpush
