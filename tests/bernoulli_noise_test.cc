#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dp/bernoulli_noise.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(NoiseBitsForBudgetTest, ScalesInverselyWithEpsilonSquared) {
  const int64_t at_one = NoiseBitsForBudget(1.0, 1e-6);
  const int64_t at_half = NoiseBitsForBudget(0.5, 1e-6);
  EXPECT_NEAR(static_cast<double>(at_half) / static_cast<double>(at_one),
              4.0, 0.01);
}

TEST(NoiseBitsForBudgetTest, GrowsWithStricterDelta) {
  EXPECT_GT(NoiseBitsForBudget(1.0, 1e-12), NoiseBitsForBudget(1.0, 1e-3));
}

TEST(AddBinomialNoiseTest, ZeroNoiseBitsIsExact) {
  Rng rng(1);
  const std::vector<double> out = AddBinomialNoise({5, 100, 0}, 0, rng);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 100.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
}

TEST(AddBinomialNoiseTest, NoiseIsCenteredOnCounts) {
  Rng rng(2);
  const int64_t noise_bits = 1000;
  Welford acc;
  for (int rep = 0; rep < 2000; ++rep) {
    acc.Add(AddBinomialNoise({500}, noise_bits, rng)[0]);
  }
  EXPECT_NEAR(acc.mean(), 500.0, 2.0);
  // Noise variance = m/4.
  EXPECT_NEAR(acc.population_variance(),
              static_cast<double>(noise_bits) / 4.0, 25.0);
}

TEST(AddBinomialNoiseTest, NoisyCountsCanGoNegative) {
  // The debiased count of a zero bucket is negative half the time — the
  // effect that motivates bit squashing (Figure 4b shows estimates below 0).
  Rng rng(3);
  bool saw_negative = false;
  for (int rep = 0; rep < 200 && !saw_negative; ++rep) {
    saw_negative = AddBinomialNoise({0}, 100, rng)[0] < 0.0;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(BinomialNoiseStddevTest, SqrtLaw) {
  EXPECT_DOUBLE_EQ(BinomialNoiseStddev(0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialNoiseStddev(4), 1.0);
  EXPECT_DOUBLE_EQ(BinomialNoiseStddev(400), 10.0);
}

TEST(DistributedVsLocalNoiseTest, DistributedNoiseIsSmallerAtScale) {
  // Section 3.3's point: distributed noise for the whole aggregate is far
  // below the sum of per-client LDP noise. Compare the noise added to a
  // count over n = 10000 clients at eps = 1:
  const int64_t n = 10000;
  const double eps = 1.0;
  // LDP randomized response: per-report variance e/(e-1)^2, summed over n.
  const double ldp_variance =
      static_cast<double>(n) * std::exp(eps) /
      ((std::exp(eps) - 1.0) * (std::exp(eps) - 1.0));
  // Distributed binomial noise sized for the same (eps, 1e-6) budget.
  const double distributed_variance =
      static_cast<double>(NoiseBitsForBudget(eps, 1e-6)) / 4.0;
  EXPECT_LT(distributed_variance, ldp_variance / 10.0);
}

TEST(BernoulliNoiseDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(NoiseBitsForBudget(0.0, 1e-6), "BITPUSH_CHECK failed");
  EXPECT_DEATH(NoiseBitsForBudget(1.0, 1.5), "BITPUSH_CHECK failed");
  Rng rng(1);
  EXPECT_DEATH(AddBinomialNoise({1}, -1, rng), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
