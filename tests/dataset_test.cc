#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace bitpush {
namespace {

TEST(GroundTruthTest, ExactStatistics) {
  const GroundTruth truth = ComputeGroundTruth({2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                                7.0, 9.0});
  EXPECT_DOUBLE_EQ(truth.mean, 5.0);
  EXPECT_DOUBLE_EQ(truth.variance, 4.0);
  EXPECT_DOUBLE_EQ(truth.min, 2.0);
  EXPECT_DOUBLE_EQ(truth.max, 9.0);
  EXPECT_EQ(truth.count, 8);
}

TEST(GroundTruthTest, EmptyInput) {
  const GroundTruth truth = ComputeGroundTruth({});
  EXPECT_EQ(truth.count, 0);
  EXPECT_DOUBLE_EQ(truth.mean, 0.0);
  EXPECT_DOUBLE_EQ(truth.variance, 0.0);
}

TEST(DatasetTest, StoresNameAndValues) {
  const Dataset data("ages", {1.0, 2.0, 3.0});
  EXPECT_EQ(data.name(), "ages");
  EXPECT_EQ(data.size(), 3);
  EXPECT_FALSE(data.empty());
  EXPECT_EQ(data.values(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(data.truth().mean, 2.0);
}

TEST(DatasetTest, DefaultIsEmpty) {
  const Dataset data;
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.size(), 0);
}

TEST(DatasetTest, ClippedClampsAndRecomputesTruth) {
  const Dataset data("metric", {1.0, 5.0, 100.0, -3.0});
  const Dataset clipped = data.Clipped(0.0, 10.0);
  EXPECT_EQ(clipped.values(), (std::vector<double>{1.0, 5.0, 10.0, 0.0}));
  EXPECT_DOUBLE_EQ(clipped.truth().max, 10.0);
  EXPECT_DOUBLE_EQ(clipped.truth().min, 0.0);
  EXPECT_DOUBLE_EQ(clipped.truth().mean, 4.0);
  EXPECT_EQ(clipped.name(), "metric/clipped");
  // Original untouched.
  EXPECT_DOUBLE_EQ(data.truth().max, 100.0);
}

TEST(DatasetTest, ClippingReducesOutlierSensitivity) {
  // Section 4.3: clipping tames the mean of outlier-contaminated data.
  std::vector<double> values(999, 1.0);
  values.push_back(1e6);
  const Dataset raw("raw", std::move(values));
  const Dataset clipped = raw.Clipped(0.0, 255.0);
  EXPECT_GT(raw.truth().mean, 100.0);
  EXPECT_LT(clipped.truth().mean, 2.0);
}

}  // namespace
}  // namespace bitpush
