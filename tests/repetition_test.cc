#include <vector>

#include <gtest/gtest.h>

#include "rng/distributions.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

TEST(RepetitionTest, CollectsRequestedCount) {
  const std::vector<double> estimates =
      CollectRepetitions(25, 1, [](Rng& rng) { return rng.NextDouble(); });
  EXPECT_EQ(estimates.size(), 25u);
}

TEST(RepetitionTest, ReproducibleFromSeed) {
  const auto estimator = [](Rng& rng) { return SampleNormal(rng, 0, 1); };
  EXPECT_EQ(CollectRepetitions(10, 7, estimator),
            CollectRepetitions(10, 7, estimator));
}

TEST(RepetitionTest, RepetitionsAreIndependent) {
  const std::vector<double> estimates =
      CollectRepetitions(50, 3, [](Rng& rng) { return rng.NextDouble(); });
  // All draws distinct with overwhelming probability.
  for (size_t i = 1; i < estimates.size(); ++i) {
    EXPECT_NE(estimates[i], estimates[i - 1]);
  }
}

TEST(RepetitionTest, DifferentSeedsDiffer) {
  const auto estimator = [](Rng& rng) { return rng.NextDouble(); };
  EXPECT_NE(CollectRepetitions(5, 1, estimator),
            CollectRepetitions(5, 2, estimator));
}

TEST(RepetitionTest, RunRepetitionsSummarizes) {
  // Estimator returns truth + alternating unit error.
  int64_t call = 0;
  const ErrorStats stats = RunRepetitions(
      100, 11, 10.0, [&call](Rng&) { return 10.0 + (call++ % 2 ? 1 : -1); });
  EXPECT_EQ(stats.repetitions, 100);
  EXPECT_DOUBLE_EQ(stats.rmse, 1.0);
  EXPECT_DOUBLE_EQ(stats.nrmse, 0.1);
  EXPECT_DOUBLE_EQ(stats.bias, 0.0);
}

TEST(RepetitionDeathTest, ZeroRepetitionsAbort) {
  EXPECT_DEATH(CollectRepetitions(0, 1, [](Rng&) { return 0.0; }),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
