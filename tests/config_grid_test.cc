// A combinatorial sweep over protocol configuration dimensions — caching x
// b_send x DP x randomness mode x squashing — asserting the invariants
// that must hold in *every* cell: the protocol runs, the estimate is
// finite and (without DP) inside the codeword domain, the privacy
// discipline (reports == clients * b_send) holds, and the estimate lands
// within a generous band of the truth.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "data/census.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

struct GridCase {
  bool caching;
  int bits_per_client;
  double epsilon;
  bool central;
  bool squash;
};

std::string GridLabel(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  std::string label = c.caching ? "cache" : "nocache";
  label += "_bsend" + std::to_string(c.bits_per_client);
  label += c.epsilon > 0 ? "_dp" : "_nodp";
  label += c.central ? "_central" : "_local";
  label += c.squash ? "_squash" : "_nosquash";
  return label;
}

class ProtocolGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ProtocolGridTest, InvariantsHoldInEveryConfiguration) {
  const GridCase& grid = GetParam();
  Rng data_rng(1);
  const Dataset ages = CensusAges(6000, data_rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(10);
  const std::vector<uint64_t> codewords = codec.EncodeAll(ages.values());

  AdaptiveConfig config;
  config.bits = 10;
  config.caching = grid.caching;
  config.bits_per_client = grid.bits_per_client;
  config.epsilon = grid.epsilon;
  config.central_randomness = grid.central;
  if (grid.squash) config.squash = SquashPolicy::Absolute(0.05);

  Rng rng(2);
  const AdaptiveResult result =
      RunAdaptiveBitPushing(codewords, config, rng);

  // Disclosure discipline: exactly bits_per_client reports per client.
  EXPECT_EQ(result.round1.histogram.TotalReports() +
                result.round2.histogram.TotalReports(),
            static_cast<int64_t>(codewords.size()) *
                grid.bits_per_client);

  // The estimate is finite; without DP it stays in the codeword domain.
  EXPECT_TRUE(std::isfinite(result.estimate_codeword));
  if (grid.epsilon <= 0.0) {
    EXPECT_GE(result.estimate_codeword, 0.0);
    EXPECT_LE(result.estimate_codeword,
              static_cast<double>(codec.max_codeword()));
  }

  // Probabilities are proper distributions.
  double total = 0.0;
  for (const double p : result.round2_probabilities) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Accuracy sanity: within 50% of the truth in every cell (the tight
  // bounds are asserted per-configuration elsewhere).
  const double estimate = codec.Decode(result.estimate_codeword);
  EXPECT_NEAR(estimate, ages.truth().mean, 0.5 * ages.truth().mean)
      << GridLabel({GetParam(), 0});
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ProtocolGridTest,
    ::testing::Values(
        GridCase{true, 1, 0.0, true, false},
        GridCase{false, 1, 0.0, true, false},
        GridCase{true, 2, 0.0, true, false},
        GridCase{false, 4, 0.0, true, false},
        GridCase{true, 1, 0.0, false, false},
        GridCase{false, 1, 0.0, false, false},
        GridCase{true, 1, 2.0, true, false},
        GridCase{true, 1, 2.0, true, true},
        GridCase{false, 1, 2.0, true, true},
        GridCase{true, 2, 2.0, false, true},
        GridCase{true, 4, 1.0, true, true},
        GridCase{false, 2, 1.0, false, false}),
    GridLabel);

}  // namespace
}  // namespace bitpush
