// The SIMD kernel layer's determinism contract (src/kernels/,
// docs/KERNELS.md): every kernel computes the same function, encode
// reproduces FixedPointCodec::Encode bit for bit, and all randomness comes
// from shared scalar code — so forcing the scalar kernel must never change
// a single bit of any result. These tests pin each op against a direct
// reference implementation and against the scalar kernel, then check the
// batch pipeline (build -> perturb -> aggregate) against the per-report
// path it replaced.
//
// bitpush-lint: allow(privacy-metering): kernel-layer differential tests
// operate on synthetic codewords and reports; no real client value flows
// through an unmetered path

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "batch/batch.h"
#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "core/histogram_estimation.h"
#include "kernels/kernels.h"
#include "ldp/randomized_response.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

using ::bitpush::kernels::ActiveKernel;
using ::bitpush::kernels::EncodeParams;
using ::bitpush::kernels::FillBernoulliWords;
using ::bitpush::kernels::KernelOps;
using ::bitpush::kernels::ScalarKernel;
using ::bitpush::kernels::ScopedForceScalar;
using ::bitpush::kernels::SimdActive;
using ::bitpush::kernels::TailMask;
using ::bitpush::kernels::WordsForBits;

std::vector<uint64_t> RandomWords(int64_t n, Rng& rng) {
  std::vector<uint64_t> words(static_cast<size_t>(n));
  for (uint64_t& w : words) w = rng.NextUint64();
  return words;
}

// ---------------------------------------------------------------------------
// Word ops: scalar vs dispatched, against direct references.

TEST(KernelTest, WordOpsMatchScalarKernelAndReference) {
  Rng rng(101);
  const KernelOps& scalar = ScalarKernel();
  const KernelOps& active = ActiveKernel();
  // Sizes straddling every vector width and tail shape.
  for (const int64_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64,
                          65, 100, 256, 1000}) {
    const std::vector<uint64_t> a = RandomWords(n, rng);
    const std::vector<uint64_t> b = RandomWords(n, rng);
    const std::vector<uint64_t> gate = RandomWords(n, rng);

    // popcount / popcount_and / reduce_add against direct loops.
    int64_t want_pop = 0;
    int64_t want_pop_and = 0;
    uint64_t want_sum = 0;
    for (int64_t i = 0; i < n; ++i) {
      want_pop += std::popcount(a[static_cast<size_t>(i)]);
      want_pop_and += std::popcount(a[static_cast<size_t>(i)] &
                                    b[static_cast<size_t>(i)]);
      want_sum += a[static_cast<size_t>(i)];
    }
    for (const KernelOps* ops : {&scalar, &active}) {
      EXPECT_EQ(ops->popcount_words(a.data(), n), want_pop) << ops->name;
      EXPECT_EQ(ops->popcount_and_words(a.data(), b.data(), n), want_pop_and)
          << ops->name;
      EXPECT_EQ(ops->reduce_add_words(a.data(), n), want_sum) << ops->name;
    }

    // xor / xor_masked / add: apply with each kernel, expect equal vectors.
    std::vector<uint64_t> via_scalar = a;
    std::vector<uint64_t> via_active = a;
    scalar.xor_words(via_scalar.data(), b.data(), n);
    active.xor_words(via_active.data(), b.data(), n);
    EXPECT_EQ(via_scalar, via_active);

    via_scalar = a;
    via_active = a;
    scalar.xor_masked_words(via_scalar.data(), b.data(), gate.data(), n);
    active.xor_masked_words(via_active.data(), b.data(), gate.data(), n);
    EXPECT_EQ(via_scalar, via_active);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(via_scalar[static_cast<size_t>(i)],
                a[static_cast<size_t>(i)] ^
                    (b[static_cast<size_t>(i)] & gate[static_cast<size_t>(i)]));
    }

    via_scalar = a;
    via_active = a;
    scalar.add_words(via_scalar.data(), b.data(), n);
    active.add_words(via_active.data(), b.data(), n);
    EXPECT_EQ(via_scalar, via_active);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(via_scalar[static_cast<size_t>(i)],
                a[static_cast<size_t>(i)] + b[static_cast<size_t>(i)]);
    }
  }
}

// ---------------------------------------------------------------------------
// Encode: the hardest op to keep bit-identical (llround semantics).

TEST(KernelTest, EncodeMatchesCodecOnRandomAndBoundaryValues) {
  Rng rng(202);
  for (const int bits : {1, 4, 10, 16, 32, 52}) {
    const FixedPointCodec codec(bits, -3.25, 7.5);
    // Boundary and tie-prone values: the clamp edges, values outside the
    // domain, infinities, and points that land exactly on .5 codeword
    // boundaries (llround ties round away from zero — the case a naive
    // SIMD cvtpd path gets wrong).
    std::vector<double> values = {
        -3.25, 7.5, -100.0, 100.0, 0.0, -0.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::denorm_min()};
    const double step = codec.resolution();
    for (int k = 0; k < 64; ++k) {
      values.push_back(codec.low() + (static_cast<double>(k) + 0.5) * step);
      values.push_back(codec.low() + static_cast<double>(k) * step);
    }
    for (int i = 0; i < 4096; ++i) {
      values.push_back(codec.low() +
                       (codec.high() - codec.low() + 2.0) *
                           (rng.NextDouble() - 0.1));
    }

    // EncodeAll routes through the dispatched kernel; Encode is the scalar
    // reference. Compare both, and the forced-scalar EncodeAll too.
    const std::vector<uint64_t> dispatched = codec.EncodeAll(values);
    std::vector<uint64_t> forced;
    {
      ScopedForceScalar force_scalar;
      forced = codec.EncodeAll(values);
    }
    ASSERT_EQ(dispatched.size(), values.size());
    EXPECT_EQ(dispatched, forced) << "bits=" << bits;
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(dispatched[i], codec.Encode(values[i]))
          << "bits=" << bits << " value=" << values[i];
    }
  }
}

// ---------------------------------------------------------------------------
// build_planes: against the bit-at-a-time specification.

TEST(KernelTest, BuildPlanesMatchesSpecification) {
  Rng rng(303);
  for (const int64_t n : {1, 63, 64, 65, 200, 517}) {
    const int bits = 9;
    const int64_t stride = WordsForBits(n);
    std::vector<uint64_t> codewords(static_cast<size_t>(n));
    std::vector<int> assignment(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      codewords[static_cast<size_t>(i)] = rng.NextBelow(uint64_t{1} << bits);
      assignment[static_cast<size_t>(i)] =
          static_cast<int>(rng.NextBelow(static_cast<uint64_t>(bits)));
    }
    for (const KernelOps* ops : {&ScalarKernel(), &ActiveKernel()}) {
      std::vector<uint64_t> planes(static_cast<size_t>(bits * stride), 0);
      std::vector<uint64_t> selection(static_cast<size_t>(bits * stride), 0);
      ops->build_planes(codewords.data(), assignment.data(), n, bits, stride,
                        planes.data(), selection.data());
      for (int64_t i = 0; i < n; ++i) {
        const size_t word = static_cast<size_t>(i / 64);
        const uint64_t mask = uint64_t{1} << (i % 64);
        for (int j = 0; j < bits; ++j) {
          const uint64_t plane_bit =
              planes[static_cast<size_t>(j) * stride + word] & mask;
          const uint64_t sel_bit =
              selection[static_cast<size_t>(j) * stride + word] & mask;
          const bool assigned = assignment[static_cast<size_t>(i)] == j;
          EXPECT_EQ(sel_bit != 0, assigned)
              << ops->name << " client " << i << " plane " << j;
          // Planes carry the full bit-slice; consumers gate by selection.
          const bool want_bit =
              FixedPointCodec::Bit(codewords[static_cast<size_t>(i)], j) == 1;
          EXPECT_EQ(plane_bit != 0, want_bit)
              << ops->name << " client " << i << " plane " << j;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FillBernoulliWords: determinism, edge probabilities, tails, statistics.

TEST(KernelTest, FillBernoulliWordsIsDeterministicAndKernelIndependent) {
  const int64_t n_bits = 1000;
  const int64_t words = WordsForBits(n_bits);
  std::vector<uint64_t> a(static_cast<size_t>(words));
  std::vector<uint64_t> b(static_cast<size_t>(words));
  Rng rng_a(7);
  FillBernoulliWords(0.3, n_bits, rng_a, a.data());
  {
    // The mask is shared scalar code: forcing the scalar kernel must not
    // change a single drawn bit.
    ScopedForceScalar force_scalar;
    Rng rng_b(7);
    FillBernoulliWords(0.3, n_bits, rng_b, b.data());
  }
  EXPECT_EQ(a, b);
}

TEST(KernelTest, FillBernoulliWordsHandlesEdgeProbabilitiesAndTail) {
  for (const int64_t n_bits : {1, 63, 64, 65, 128, 1000}) {
    const int64_t words = WordsForBits(n_bits);
    std::vector<uint64_t> out(static_cast<size_t>(words), 0xDEADBEEF);
    Rng rng(1);
    const uint64_t before = Rng(1).NextUint64();
    FillBernoulliWords(0.0, n_bits, rng, out.data());
    for (const uint64_t w : out) EXPECT_EQ(w, 0u);
    // p = 0 draws nothing: the stream is untouched.
    EXPECT_EQ(rng.NextUint64(), before);

    FillBernoulliWords(1.0, n_bits, rng, out.data());
    for (int64_t i = 0; i + 1 < words; ++i) {
      EXPECT_EQ(out[static_cast<size_t>(i)], ~uint64_t{0});
    }
    // Bits past n_bits stay zero so popcount tallies cannot overcount.
    EXPECT_EQ(out[static_cast<size_t>(words - 1)], TailMask(n_bits));
  }
}

TEST(KernelTest, FillBernoulliWordsMatchesItsProbability) {
  const int64_t n_bits = 1 << 18;
  const std::vector<double> probabilities = {0.5, 0.25, 0.2689414213699951,
                                             0.9, 1.0 / 3.0};
  for (const double p : probabilities) {
    std::vector<uint64_t> out(static_cast<size_t>(WordsForBits(n_bits)));
    Rng rng(42);
    FillBernoulliWords(p, n_bits, rng, out.data());
    const int64_t ones =
        ActiveKernel().popcount_words(out.data(), WordsForBits(n_bits));
    const double observed =
        static_cast<double>(ones) / static_cast<double>(n_bits);
    // 6 sigma for a Binomial(2^18, p) fraction.
    const double sigma = std::sqrt(p * (1.0 - p) /
                                   static_cast<double>(n_bits));
    EXPECT_NEAR(observed, p, 6.0 * sigma + 1e-9) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Dispatch controls.

TEST(KernelTest, ScopedForceScalarForcesTheScalarKernel) {
  {
    ScopedForceScalar outer;
    EXPECT_STREQ(ActiveKernel().name, "scalar");
    EXPECT_FALSE(SimdActive());
    {
      ScopedForceScalar inner;  // nesting is counted, not flag-toggled
      EXPECT_STREQ(ActiveKernel().name, "scalar");
    }
    EXPECT_STREQ(ActiveKernel().name, "scalar");
  }
  // Outside the scopes the dispatched kernel (whatever it is) is back.
  EXPECT_EQ(SimdActive(), &ActiveKernel() != &ScalarKernel());
}

// ---------------------------------------------------------------------------
// Batch pipeline vs the per-report path.

TEST(KernelBatchTest, ConvertersRoundTripAndKeepPlanesGated) {
  Rng rng(404);
  const int bits = 6;
  std::vector<BitReport> reports(350);
  for (size_t i = 0; i < reports.size(); ++i) {
    reports[i].client_id = static_cast<int64_t>(rng.NextBelow(1000000));
    reports[i].bit_index = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(bits)));
    reports[i].bit = rng.NextBit();
  }
  const ReportBatch batch = ReportBatchFromBitReports(reports, bits);
  // Plane bits may only appear where the selection gate is set.
  for (int j = 0; j < bits; ++j) {
    for (int64_t w = 0; w < batch.stride; ++w) {
      EXPECT_EQ(batch.plane(j)[w] & ~batch.selection_plane(j)[w], 0u);
    }
  }
  const std::vector<BitReport> round_trip = ToBitReports(batch);
  ASSERT_EQ(round_trip.size(), reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(round_trip[i].bit_index, reports[i].bit_index) << i;
    EXPECT_EQ(round_trip[i].bit, reports[i].bit) << i;
  }
}

TEST(KernelBatchTest, AggregateBatchMatchesPerReportHistogram) {
  Rng rng(505);
  const int bits = 7;
  for (const int64_t n : {1, 64, 65, 500}) {
    std::vector<BitReport> reports(static_cast<size_t>(n));
    BitHistogram want(bits);
    for (BitReport& report : reports) {
      report.client_id = 0;
      report.bit_index =
          static_cast<int>(rng.NextBelow(static_cast<uint64_t>(bits)));
      report.bit = rng.NextBit();
      want.Add(report.bit_index, report.bit);
    }
    const TallyBatch tally =
        AggregateBatch(ReportBatchFromBitReports(reports, bits));
    for (int j = 0; j < bits; ++j) {
      EXPECT_EQ(tally.totals[static_cast<size_t>(j)], want.total(j)) << j;
      EXPECT_EQ(tally.ones[static_cast<size_t>(j)], want.ones(j)) << j;
    }
  }
}

TEST(KernelBatchTest, PerturbBatchReproducesThePerReportStream) {
  // The stream-compatibility contract (src/batch/batch.h): PerturbBatch
  // consumes exactly the draws rr.Apply consumed, in slot order, so a
  // fixed seed yields the same perturbed reports through either path.
  Rng data_rng(606);
  const int bits = 8;
  const int64_t n = 333;
  std::vector<uint64_t> codewords(static_cast<size_t>(n));
  std::vector<int> assignment(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    codewords[static_cast<size_t>(i)] =
        data_rng.NextBelow(uint64_t{1} << bits);
    assignment[static_cast<size_t>(i)] =
        static_cast<int>(data_rng.NextBelow(static_cast<uint64_t>(bits)));
  }
  const RandomizedResponse rr = RandomizedResponse::FromEpsilon(0.8);

  ReportBatch batch = BuildReportBatch(codewords, assignment, bits);
  Rng batch_rng(77);
  PerturbBatch(&batch, rr, batch_rng);

  Rng report_rng(77);
  const std::vector<BitReport> perturbed = ToBitReports(batch);
  ASSERT_EQ(perturbed.size(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int want = rr.Apply(
        FixedPointCodec::Bit(codewords[static_cast<size_t>(i)],
                             assignment[static_cast<size_t>(i)]),
        report_rng);
    EXPECT_EQ(perturbed[static_cast<size_t>(i)].bit, want) << "slot " << i;
  }
  // Both paths left their streams at the same point.
  EXPECT_EQ(batch_rng.NextUint64(), report_rng.NextUint64());
}

TEST(KernelBatchTest, DisabledPerturbationIsANoOpAndConsumesNothing) {
  std::vector<uint64_t> codewords = {3, 1, 2, 3, 0, 1};
  std::vector<int> assignment = {0, 1, 0, 1, 0, 1};
  ReportBatch batch = BuildReportBatch(codewords, assignment, 2);
  const std::vector<uint64_t> planes_before = batch.planes;
  Rng rng(9);
  PerturbBatch(&batch, RandomizedResponse::Disabled(), rng);
  EXPECT_EQ(batch.planes, planes_before);
  EXPECT_EQ(rng.NextUint64(), Rng(9).NextUint64());
}

// ---------------------------------------------------------------------------
// End-to-end: whole protocols, forced scalar vs dispatched.

TEST(KernelBatchTest, BasicBitPushingIsKernelIndependent) {
  Rng data_rng(707);
  std::vector<uint64_t> codewords(2000);
  for (uint64_t& cw : codewords) cw = data_rng.NextBelow(1u << 10);
  BitPushingConfig config;
  config.probabilities.assign(10, 0.1);
  config.epsilon = 1.0;  // exercise the perturbation masks too
  config.bits_per_client = 2;

  Rng dispatched_rng(11);
  const BitPushingResult dispatched =
      RunBasicBitPushing(codewords, config, dispatched_rng);
  ScopedForceScalar force_scalar;
  Rng scalar_rng(11);
  const BitPushingResult scalar =
      RunBasicBitPushing(codewords, config, scalar_rng);

  EXPECT_EQ(dispatched.histogram.totals(), scalar.histogram.totals());
  EXPECT_EQ(dispatched.histogram.one_counts(), scalar.histogram.one_counts());
  EXPECT_EQ(dispatched.estimate_codeword, scalar.estimate_codeword);
  EXPECT_EQ(dispatched.bit_means, scalar.bit_means);
}

TEST(KernelBatchTest, HistogramEstimationIsKernelIndependent) {
  Rng data_rng(808);
  std::vector<double> values(3000);
  for (double& v : values) v = 100.0 * data_rng.NextDouble();
  HistogramConfig config;
  config.edges = UniformEdges(0.0, 100.0, 8);
  config.epsilon = 1.2;

  Rng dispatched_rng(13);
  const HistogramResult dispatched =
      EstimateHistogram(values, config, dispatched_rng);
  ScopedForceScalar force_scalar;
  Rng scalar_rng(13);
  const HistogramResult scalar = EstimateHistogram(values, config, scalar_rng);

  EXPECT_EQ(dispatched.fractions, scalar.fractions);
  EXPECT_EQ(dispatched.counts, scalar.counts);
}

}  // namespace
}  // namespace bitpush
