#include <vector>

#include <gtest/gtest.h>

#include "core/bit_probabilities.h"
#include "core/fixed_point.h"
#include "data/synthetic.h"
#include "federated/debugging.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

// Runs a plain collection round over the values and returns the histogram.
BitHistogram CollectHistogram(const std::vector<double>& values, int bits,
                              double epsilon, uint64_t seed) {
  const FixedPointCodec codec = FixedPointCodec::Integer(bits);
  BitPushingConfig config;
  config.probabilities = UniformProbabilities(bits);
  config.epsilon = epsilon;
  Rng rng(seed);
  return RunBasicBitPushing(codec.EncodeAll(values), config, rng).histogram;
}

TEST(DebuggingTest, HealthyMetricHasNoFindings) {
  Rng rng(1);
  const Dataset data = UniformData(20000, 0.0, 200.0, rng);
  const BitHistogram histogram =
      CollectHistogram(data.values(), 8, 0.0, 2);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 0.0, DebuggingConfig{});
  EXPECT_TRUE(diagnostics.findings.empty());
  EXPECT_EQ(diagnostics.highest_used_bit, 7);
  EXPECT_FALSE(diagnostics.constant_metric);
  EXPECT_FALSE(diagnostics.saturated);
}

TEST(DebuggingTest, DetectsConstantMetric) {
  const std::vector<double> values(5000, 42.0);
  const BitHistogram histogram = CollectHistogram(values, 8, 0.0, 3);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 0.0, DebuggingConfig{});
  EXPECT_TRUE(diagnostics.constant_metric);
  EXPECT_FALSE(diagnostics.all_zero);
  ASSERT_FALSE(diagnostics.findings.empty());
  EXPECT_NE(diagnostics.findings.front().find("constant"),
            std::string::npos);
}

TEST(DebuggingTest, DetectsDeadCounter) {
  const std::vector<double> values(5000, 0.0);
  const BitHistogram histogram = CollectHistogram(values, 8, 0.0, 4);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 0.0, DebuggingConfig{});
  EXPECT_TRUE(diagnostics.all_zero);
  EXPECT_EQ(diagnostics.highest_used_bit, -1);
  ASSERT_FALSE(diagnostics.findings.empty());
  EXPECT_NE(diagnostics.findings.front().find("zero"), std::string::npos);
}

TEST(DebuggingTest, DetectsSaturationFromUndersizedWidth) {
  // Heavy-tailed data clipped to 6 bits: most values hit the ceiling 63.
  Rng rng(5);
  const Dataset data = ParetoData(20000, 100.0, 1.2, rng);
  const BitHistogram histogram =
      CollectHistogram(data.Clipped(0.0, 63.0).values(), 6, 0.0, 6);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 0.0, DebuggingConfig{});
  EXPECT_TRUE(diagnostics.saturated);
  // Saturation blocks any "shrink the width" advice.
  EXPECT_EQ(RecommendBitWidth(diagnostics, 6), 6);
}

TEST(DebuggingTest, DetectsOversizedWidth) {
  // Ages (7 bits of signal) collected at 20 bits.
  Rng rng(7);
  const Dataset data = UniformData(20000, 0.0, 100.0, rng);
  const BitHistogram histogram =
      CollectHistogram(data.values(), 20, 0.0, 8);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 0.0, DebuggingConfig{});
  EXPECT_GT(diagnostics.vacuous_bit_fraction, 0.5);
  EXPECT_EQ(diagnostics.highest_used_bit, 6);
  EXPECT_FALSE(diagnostics.saturated);
  // Recommendation: 7 bits of signal + 1 of headroom.
  EXPECT_EQ(RecommendBitWidth(diagnostics, 20), 8);
  ASSERT_FALSE(diagnostics.findings.empty());
  EXPECT_NE(diagnostics.findings.front().find("reduce"),
            std::string::npos);
}

TEST(DebuggingTest, DetectsNoiseDominationUnderDp) {
  // Tiny cohort + strict epsilon: nothing clears the noise floor.
  const std::vector<double> values(200, 3.0);
  const BitHistogram histogram = CollectHistogram(values, 16, 0.2, 9);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 0.2, DebuggingConfig{});
  EXPECT_TRUE(diagnostics.noise_dominated);
}

TEST(DebuggingTest, LargeDpCohortIsNotNoiseDominated) {
  Rng rng(10);
  const Dataset data = UniformData(100000, 0.0, 200.0, rng);
  const BitHistogram histogram =
      CollectHistogram(data.values(), 8, 1.0, 11);
  const DistributionDiagnostics diagnostics =
      DiagnoseDistribution(histogram, 1.0, DebuggingConfig{});
  EXPECT_FALSE(diagnostics.noise_dominated);
  EXPECT_GE(diagnostics.highest_used_bit, 6);
}

TEST(RecommendBitWidthTest, EdgeCases) {
  DistributionDiagnostics nothing;
  nothing.highest_used_bit = -1;
  EXPECT_EQ(RecommendBitWidth(nothing, 16), 1);

  DistributionDiagnostics top_heavy;
  top_heavy.highest_used_bit = 15;
  EXPECT_EQ(RecommendBitWidth(top_heavy, 16), 16);  // clamped to pilot
}

TEST(RecommendBitWidthDeathTest, InvalidInputsAbort) {
  DistributionDiagnostics diagnostics;
  EXPECT_DEATH(RecommendBitWidth(diagnostics, 0), "BITPUSH_CHECK failed");
  EXPECT_DEATH(RecommendBitWidth(diagnostics, 8, -1),
               "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
