#include <cmath>

#include <gtest/gtest.h>

#include "ldp/memoization.h"
#include "rng/rng.h"
#include "stats/welford.h"

namespace bitpush {
namespace {

TEST(MemoizationTest, PermanentBitIsStableAcrossRounds) {
  const MemoizedResponder responder(1.0, 0.5, /*client_secret=*/12345);
  const int first = responder.PermanentBit(7, 3, 1);
  for (int round = 0; round < 100; ++round) {
    EXPECT_EQ(responder.PermanentBit(7, 3, 1), first);
  }
}

TEST(MemoizationTest, PermanentBitsDifferAcrossValuesBitsAndClients) {
  // Distinct tuples must draw independent permanent noise: with 200 tuples
  // at eps=1 (flip prob ~0.27), some permanent bits disagree with truth
  // and with each other.
  const MemoizedResponder responder(1.0, 0.5, 99);
  int flipped = 0;
  for (int64_t value_id = 0; value_id < 100; ++value_id) {
    flipped += responder.PermanentBit(value_id, 0, 1) == 0;
    flipped += responder.PermanentBit(value_id, 1, 1) == 0;
  }
  EXPECT_GT(flipped, 20);
  EXPECT_LT(flipped, 90);
  // A different client secret gives a different permanent pattern.
  const MemoizedResponder other(1.0, 0.5, 100);
  int disagreements = 0;
  for (int64_t value_id = 0; value_id < 100; ++value_id) {
    if (responder.PermanentBit(value_id, 0, 1) !=
        other.PermanentBit(value_id, 0, 1)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 5);
}

TEST(MemoizationTest, RepeatedQueriesConvergeToPermanentBitNotTruth) {
  // The longitudinal privacy property: averaging one client's reports over
  // many rounds reveals the *permanent* bit, never more about the truth.
  const MemoizedResponder responder(1.0, 1.0, 7);
  const int permanent = responder.PermanentBit(1, 0, /*true_bit=*/1);
  Rng rng(1);
  Welford acc;
  for (int round = 0; round < 200000; ++round) {
    acc.Add(static_cast<double>(responder.Report(1, 0, 1, rng)));
  }
  const RandomizedResponse instantaneous(1.0);
  const double expected =
      permanent == 1 ? instantaneous.truth_probability()
                     : 1.0 - instantaneous.truth_probability();
  EXPECT_NEAR(acc.mean(), expected, 0.01);
}

TEST(MemoizationTest, PopulationEstimateIsUnbiased) {
  // Across many clients the permanent noise averages out and the composed
  // unbiasing recovers the true bit mean.
  const double true_mean = 0.3;
  Rng rng(2);
  Welford acc;
  for (int client = 0; client < 200000; ++client) {
    const MemoizedResponder responder(1.0, 1.0,
                                      static_cast<uint64_t>(client));
    const int true_bit = rng.NextBernoulli(true_mean) ? 1 : 0;
    acc.Add(static_cast<double>(responder.Report(0, 0, true_bit, rng)));
  }
  const MemoizedResponder reference(1.0, 1.0, 0);
  EXPECT_NEAR(reference.Unbias(acc.mean()), true_mean, 0.02);
}

TEST(MemoizationTest, EffectiveTruthProbabilityComposes) {
  const MemoizedResponder responder(1.0, 2.0, 3);
  const RandomizedResponse p1(1.0);
  const RandomizedResponse p2(2.0);
  const double expected =
      p1.truth_probability() * p2.truth_probability() +
      (1.0 - p1.truth_probability()) * (1.0 - p2.truth_probability());
  EXPECT_NEAR(responder.EffectiveTruthProbability(), expected, 1e-12);
  // Composition is strictly noisier than either layer alone.
  EXPECT_LT(responder.EffectiveTruthProbability(),
            p1.truth_probability());
  EXPECT_LT(responder.EffectiveTruthProbability(),
            p2.truth_probability());
}

TEST(MemoizationTest, NoInstantaneousLayerMeansIdenticalReports) {
  const MemoizedResponder responder(1.0, 0.0, 5);
  Rng rng(3);
  const int first = responder.Report(2, 4, 1, rng);
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(responder.Report(2, 4, 1, rng), first);
  }
}

TEST(MemoizationTest, LongitudinalBoundIsThePermanentEpsilon) {
  const MemoizedResponder responder(0.7, 3.0, 5);
  EXPECT_DOUBLE_EQ(responder.LongitudinalEpsilonBound(), 0.7);
}

TEST(MemoizationDeathTest, PermanentLayerRequired) {
  EXPECT_DEATH(MemoizedResponder(0.0, 1.0, 1),
               "memoization without a permanent layer");
}

}  // namespace
}  // namespace bitpush
