// The shard-out acceptance suite (docs/SHARDING.md): sharded-vs-single
// determinism on fixed campaigns, the shard chaos matrix (crash at every
// journal record, torn tails, stale snapshots, stalls), degraded-merge
// loss accounting, and fail-closed behavior below quorum and on corrupt
// frames.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fixed_point.h"
#include "core/privacy_meter.h"
#include "federated/client.h"
#include "federated/shard/merge.h"
#include "federated/shard/runner.h"
#include "federated/shard/shard.h"
#include "federated/shard/shard_faults.h"
#include "persist/journal.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

constexpr uint64_t kSeed = 4242;

struct ShardFixture {
  std::vector<Client> population;
  std::vector<CampaignQuery> queries;
  std::vector<FixedPointCodec> codecs;
  std::vector<const std::vector<Client>*> populations;
  MeterPolicy policy;
};

ShardFixture MakeFixture(int64_t clients, int bits, double epsilon,
                         int64_t ticks) {
  ShardFixture fixture;
  Rng rng(11);
  const double top = std::exp2(static_cast<double>(bits)) - 1.0;
  std::vector<double> values(static_cast<size_t>(clients));
  for (double& v : values) v = top * rng.NextDouble();
  fixture.population = MakePopulation(values, ClientConfig{});

  CampaignQuery query;
  query.name = "metric";
  query.value_id = 1;
  query.cadence_ticks = 1;
  query.query.adaptive.bits = bits;
  query.query.adaptive.epsilon = epsilon;
  fixture.queries.push_back(query);
  fixture.codecs = {FixedPointCodec::Integer(bits)};
  fixture.populations = {&fixture.population};

  // Generous caps: every tick can charge every client once.
  fixture.policy.max_bits_per_value = ticks + 1;
  fixture.policy.max_bits_per_client = 4 * (ticks + 1);
  fixture.policy.max_epsilon_per_client = 1e6;
  return fixture;
}

std::string FreshStateRoot(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "/shard_" + tag;
  std::filesystem::remove_all(root);
  return root;
}

ShardedCampaignOptions BaseOptions(int64_t shards) {
  ShardedCampaignOptions options;
  options.shards = shards;
  options.seed = kSeed;
  options.fsync = false;
  return options;
}

// Runs the sharded campaign and requires every tick to close cleanly.
std::vector<MergedTickResult> RunSharded(const ShardFixture& fixture,
                                         ShardedCampaignRunner* runner,
                                         int64_t ticks) {
  runner->Open(fixture.populations, fixture.codecs);
  std::vector<MergedTickResult> history;
  for (int64_t t = 0; t < ticks; ++t) {
    MergedTickResult result;
    std::string error;
    EXPECT_TRUE(runner->RunTick(t, &result, &error)) << error;
    history.push_back(std::move(result));
  }
  return history;
}

void ExpectTicksEqual(const std::vector<MergedTickResult>& sharded,
                      const std::vector<MergedTickResult>& reference) {
  ASSERT_EQ(sharded.size(), reference.size());
  for (size_t t = 0; t < sharded.size(); ++t) {
    EXPECT_EQ(sharded[t], reference[t]) << "tick " << t << " diverged";
  }
}

TEST(ShardPartitionTest, RoundRobinCoversEveryClientOnce) {
  const ShardFixture fixture = MakeFixture(53, 5, 0.0, 1);
  const auto partitions = PartitionClients(fixture.population, 4);
  ASSERT_EQ(partitions.size(), 4u);
  size_t total = 0;
  std::vector<int64_t> seen;
  for (const auto& partition : partitions) {
    total += partition.size();
    for (const Client& client : partition) seen.push_back(client.id());
  }
  EXPECT_EQ(total, fixture.population.size());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "a client landed in two shards";
  // Round-robin: client i sits at position i/4 of shard i%4.
  EXPECT_EQ(partitions[1][0].id(), fixture.population[1].id());
  EXPECT_EQ(partitions[0][1].id(), fixture.population[4].id());
}

TEST(ShardSeedTest, DerivedSeedsAreStableAndDistinct) {
  EXPECT_EQ(ShardSeed(kSeed, 3), ShardSeed(kSeed, 3));
  EXPECT_NE(ShardSeed(kSeed, 0), ShardSeed(kSeed, 1));
  EXPECT_NE(ShardSeed(kSeed, 0), ShardSeed(kSeed + 1, 0));
}

TEST(ShardFaultPlanTest, DecisionsArePureHashes) {
  ShardFaultRates rates;
  rates.crash_at_record = 0.3;
  rates.stall = 0.2;
  const ShardFaultPlan plan(7, rates);
  int faults = 0;
  for (int64_t tick = 0; tick < 50; ++tick) {
    const ShardFaultType first = plan.Decide(1, tick, 0);
    EXPECT_EQ(first, plan.Decide(1, tick, 0)) << "decision not pure";
    if (first != ShardFaultType::kNone) ++faults;
  }
  EXPECT_GT(faults, 5);
  EXPECT_LT(faults, 45);
  EXPECT_FALSE(ShardFaultPlan().enabled());
  EXPECT_LE(plan.CrashRecordIndex(0, 0, 0, 10), 10);
  const size_t torn = plan.TornTailBytes(0, 0, 0);
  EXPECT_GE(torn, 1u);
  EXPECT_LE(torn, 3u);
}

TEST(ShardFrameCodecTest, RoundTripsAndFailsClosed) {
  ShardTickFrame frame;
  frame.shard = 2;
  frame.tick = 5;
  ShardQueryFrame query;
  query.query_index = 0;
  query.partition_clients = 17;
  query.result.tick = 5;
  query.result.query_name = "metric";
  query.result.estimate = 3.25;
  query.result.reports = 12;
  query.tallies.totals = {6, 4, 2};
  query.tallies.ones = {3, 0, 2};
  frame.queries.push_back(query);
  frame.retry.retries_scheduled = 3;
  frame.metrics.ticks_completed = 6;

  std::vector<uint8_t> wire;
  EncodeShardTickFrame(frame, &wire);
  ShardTickFrame decoded;
  ASSERT_TRUE(DecodeShardTickFrame(wire, &decoded));
  EXPECT_EQ(decoded, frame);

  // Every strict prefix must be rejected, as must trailing garbage and a
  // wrong version byte.
  for (size_t len = 0; len < wire.size(); ++len) {
    const std::vector<uint8_t> prefix(wire.begin(),
                                      wire.begin() + static_cast<long>(len));
    ShardTickFrame out;
    EXPECT_FALSE(DecodeShardTickFrame(prefix, &out))
        << "prefix of " << len << " bytes decoded";
  }
  std::vector<uint8_t> padded = wire;
  padded.push_back(0);
  ShardTickFrame out;
  EXPECT_FALSE(DecodeShardTickFrame(padded, &out));
  std::vector<uint8_t> wrong_version = wire;
  wrong_version[0] ^= 0xFF;
  EXPECT_FALSE(DecodeShardTickFrame(wrong_version, &out));

  // Inconsistent tallies (ones > totals) must be rejected.
  ShardTickFrame bad = frame;
  bad.queries[0].tallies.ones[0] = bad.queries[0].tallies.totals[0] + 1;
  std::vector<uint8_t> bad_wire;
  EncodeShardTickFrame(bad, &bad_wire);
  EXPECT_FALSE(DecodeShardTickFrame(bad_wire, &out));
}

TEST(ShardFrameCodecTest, TraceContextSectionFailsClosed) {
  ShardTickFrame frame;
  frame.shard = 1;
  frame.tick = 0;
  frame.trace_id = 7001;
  frame.span_id = 7002;
  frame.parent_span_id = 7000;
  std::vector<uint8_t> wire;
  EncodeShardTickFrame(frame, &wire);
  ShardTickFrame decoded;
  ASSERT_TRUE(DecodeShardTickFrame(wire, &decoded));
  EXPECT_EQ(decoded.trace_id, 7001);
  EXPECT_EQ(decoded.span_id, 7002);
  EXPECT_EQ(decoded.parent_span_id, 7000);

  // The trace section is the trailing sub-version byte plus three int64
  // ids. An unknown sub-version must be rejected even though the outer
  // frame version matched.
  std::vector<uint8_t> bad_subversion = wire;
  bad_subversion[wire.size() - 25] ^= 0xFF;
  ShardTickFrame out;
  EXPECT_FALSE(DecodeShardTickFrame(bad_subversion, &out));

  // A frame cut off mid-trace-section must be rejected, not defaulted.
  std::vector<uint8_t> truncated = wire;
  truncated.resize(wire.size() - 8);
  EXPECT_FALSE(DecodeShardTickFrame(truncated, &out));

  // Negative ids never appear on a healthy wire (zero means "tracing
  // disabled"); each one fails closed.
  for (int field = 0; field < 3; ++field) {
    ShardTickFrame negative = frame;
    if (field == 0) negative.trace_id = -1;
    if (field == 1) negative.span_id = -1;
    if (field == 2) negative.parent_span_id = -1;
    std::vector<uint8_t> negative_wire;
    EncodeShardTickFrame(negative, &negative_wire);
    EXPECT_FALSE(DecodeShardTickFrame(negative_wire, &out))
        << "negative id field " << field << " decoded";
  }

  // All-zero context (tracing disabled) stays valid.
  ShardTickFrame disabled;
  disabled.shard = 0;
  disabled.tick = 0;
  std::vector<uint8_t> disabled_wire;
  EncodeShardTickFrame(disabled, &disabled_wire);
  EXPECT_TRUE(DecodeShardTickFrame(disabled_wire, &out));
  EXPECT_EQ(out.trace_id, 0);
}

// --------------------------------------------------------------------------
// Sharded == single-coordinator reference, in-memory and durable.

TEST(ShardDeterminismTest, InMemoryShardsMatchReference) {
  constexpr int64_t kTicks = 3;
  const ShardFixture fixture = MakeFixture(120, 6, 1.0, kTicks);
  for (const int64_t shards : {1, 2, 4, 8}) {
    ShardedCampaignRunner runner(fixture.queries, fixture.policy,
                                 BaseOptions(shards));
    const auto sharded = RunSharded(fixture, &runner, kTicks);
    const ReferenceCampaignResult reference = RunSingleCoordinatorReference(
        fixture.queries, fixture.policy, shards, kSeed, fixture.populations,
        fixture.codecs, kTicks);
    ExpectTicksEqual(sharded, reference.ticks);
    for (int64_t s = 0; s < shards; ++s) {
      EXPECT_EQ(runner.shard_meter_bytes(s),
                reference.shard_meter_bytes[static_cast<size_t>(s)])
          << "meter ledger of shard " << s << " diverged";
    }
    EXPECT_EQ(runner.merge().merged_metrics().ToSnapshot(),
              reference.metrics.ToSnapshot());
    EXPECT_EQ(runner.merge().merged_retry_stats(), reference.retry_stats);
  }
}

TEST(ShardDeterminismTest, DurableShardsMatchReferenceAndInMemory) {
  constexpr int64_t kTicks = 3;
  const ShardFixture fixture = MakeFixture(90, 5, 0.8, kTicks);
  const std::string root = FreshStateRoot("durable_ref");

  ShardedCampaignOptions durable_options = BaseOptions(2);
  durable_options.state_root = root;
  durable_options.snapshot_every_ticks = 2;
  ShardedCampaignRunner durable(fixture.queries, fixture.policy,
                                durable_options);
  const auto sharded = RunSharded(fixture, &durable, kTicks);

  ShardedCampaignRunner in_memory(fixture.queries, fixture.policy,
                                  BaseOptions(2));
  const auto memory_history = RunSharded(fixture, &in_memory, kTicks);

  const ReferenceCampaignResult reference = RunSingleCoordinatorReference(
      fixture.queries, fixture.policy, 2, kSeed, fixture.populations,
      fixture.codecs, kTicks);

  ExpectTicksEqual(sharded, reference.ticks);
  ExpectTicksEqual(memory_history, reference.ticks);
  for (int64_t s = 0; s < 2; ++s) {
    EXPECT_EQ(durable.shard_meter_bytes(s),
              reference.shard_meter_bytes[static_cast<size_t>(s)]);
  }
  std::filesystem::remove_all(root);
}

TEST(ShardDeterminismTest, RepeatedShardedRunsAreBitIdentical) {
  constexpr int64_t kTicks = 2;
  const ShardFixture fixture = MakeFixture(80, 5, 1.5, kTicks);
  ShardedCampaignRunner first(fixture.queries, fixture.policy,
                              BaseOptions(4));
  ShardedCampaignRunner second(fixture.queries, fixture.policy,
                               BaseOptions(4));
  ExpectTicksEqual(RunSharded(fixture, &first, kTicks),
                   RunSharded(fixture, &second, kTicks));
}

// --------------------------------------------------------------------------
// Satellite: kill any one shard at every journal record; the re-run merged
// history must match the clean run bit for bit.

TEST(ShardKillMatrixTest, KillAnyShardAtEveryRecordRecoversCleanMerge) {
  constexpr int64_t kTicks = 2;
  constexpr int64_t kShards = 2;
  const ShardFixture fixture = MakeFixture(40, 4, 1.0, kTicks);

  const std::string clean_root = FreshStateRoot("kill_clean");
  ShardedCampaignOptions options = BaseOptions(kShards);
  options.state_root = clean_root;
  ShardedCampaignRunner clean(fixture.queries, fixture.policy, options);
  const auto clean_history = RunSharded(fixture, &clean, kTicks);

  int64_t cuts = 0;
  for (int64_t victim = 0; victim < kShards; ++victim) {
    const std::string journal =
        clean_root + "/shard" + std::to_string(victim) + "/journal.wal";
    JournalReadResult contents;
    std::string error;
    ASSERT_TRUE(ReadShardJournal(journal, &contents, &error)) << error;
    const int64_t records = static_cast<int64_t>(contents.records.size());
    ASSERT_GT(records, 0);

    for (int64_t keep = 0; keep <= records; ++keep) {
      // Clone the clean state, cut the victim's journal after `keep`
      // records (the crash point), and re-run the whole campaign against
      // the surviving state.
      const std::string root = FreshStateRoot("kill_case");
      std::filesystem::copy(clean_root, root,
                            std::filesystem::copy_options::recursive);
      const std::string cut_journal =
          root + "/shard" + std::to_string(victim) + "/journal.wal";
      ASSERT_TRUE(TruncateShardJournalToRecords(
          cut_journal, static_cast<size_t>(keep), &error))
          << error;

      ShardedCampaignOptions recovered_options = BaseOptions(kShards);
      recovered_options.state_root = root;
      ShardedCampaignRunner recovered(fixture.queries, fixture.policy,
                                      recovered_options);
      const auto history = RunSharded(fixture, &recovered, kTicks);
      ExpectTicksEqual(history, clean_history);
      ++cuts;
      std::filesystem::remove_all(root);
      if (::testing::Test::HasFailure()) {
        ADD_FAILURE() << "first divergence at shard " << victim
                      << ", record cut " << keep;
        std::filesystem::remove_all(clean_root);
        return;
      }
    }
  }
  EXPECT_GT(cuts, 2 * kShards) << "matrix was vacuous";
  std::filesystem::remove_all(clean_root);
}

// --------------------------------------------------------------------------
// Chaos: every injectable shard fault, with retries, completes the
// campaign; fault-free ticks merge bit-identically to the reference.

void RunChaosCase(ShardFaultRates rates, const std::string& tag,
                  int64_t snapshot_every) {
  constexpr int64_t kTicks = 4;
  constexpr int64_t kShards = 2;
  const ShardFixture fixture = MakeFixture(60, 5, 1.0, kTicks);
  const ReferenceCampaignResult reference = RunSingleCoordinatorReference(
      fixture.queries, fixture.policy, kShards, kSeed, fixture.populations,
      fixture.codecs, kTicks);

  const std::string root = FreshStateRoot("chaos_" + tag);
  const ShardFaultPlan plan(913, rates);
  ShardedCampaignOptions options = BaseOptions(kShards);
  options.state_root = root;
  options.snapshot_every_ticks = snapshot_every;
  options.max_attempts_per_tick = 6;
  options.fault_plan = &plan;
  ShardedCampaignRunner runner(fixture.queries, fixture.policy, options);
  const auto history = RunSharded(fixture, &runner, kTicks);

  int64_t attempts = 0;
  for (int64_t s = 0; s < kShards; ++s) {
    attempts += runner.shard(s)->metrics().shard_attempts;
  }
  EXPECT_GT(attempts, kTicks * kShards) << "no fault ever fired: " << tag;

  for (int64_t t = 0; t < kTicks; ++t) {
    if (history[static_cast<size_t>(t)].shards_lost == 0) {
      EXPECT_EQ(history[static_cast<size_t>(t)],
                reference.ticks[static_cast<size_t>(t)])
          << tag << ": fault-free tick " << t
          << " diverged from the reference";
    } else {
      EXPECT_FALSE(history[static_cast<size_t>(t)].quorum_failed);
    }
  }
  std::filesystem::remove_all(root);
}

TEST(ShardChaosTest, CrashAtRecordRecoversAndMergesClean) {
  ShardFaultRates rates;
  rates.crash_at_record = 0.5;
  RunChaosCase(rates, "crash", /*snapshot_every=*/0);
}

TEST(ShardChaosTest, TornJournalTailRecoversAndMergesClean) {
  ShardFaultRates rates;
  rates.torn_journal = 0.5;
  RunChaosCase(rates, "torn", /*snapshot_every=*/0);
}

TEST(ShardChaosTest, StaleSnapshotRecoversAndMergesClean) {
  ShardFaultRates rates;
  rates.stale_snapshot = 0.5;
  RunChaosCase(rates, "stale", /*snapshot_every=*/1);
}

TEST(ShardChaosTest, StalledShardRetriesWithinBudget) {
  ShardFaultRates rates;
  rates.stall = 0.4;
  RunChaosCase(rates, "stall", /*snapshot_every=*/0);
}

TEST(ShardChaosTest, MixedFaultsInMemoryShardsConverge) {
  constexpr int64_t kTicks = 4;
  const ShardFixture fixture = MakeFixture(60, 5, 1.0, kTicks);
  const ReferenceCampaignResult reference = RunSingleCoordinatorReference(
      fixture.queries, fixture.policy, 3, kSeed, fixture.populations,
      fixture.codecs, kTicks);
  ShardFaultRates rates;
  rates.crash_at_record = 0.25;
  rates.stall = 0.25;
  const ShardFaultPlan plan(77, rates);
  ShardedCampaignOptions options = BaseOptions(3);
  options.max_attempts_per_tick = 6;
  options.fault_plan = &plan;
  ShardedCampaignRunner runner(fixture.queries, fixture.policy, options);
  const auto history = RunSharded(fixture, &runner, kTicks);
  for (int64_t t = 0; t < kTicks; ++t) {
    if (history[static_cast<size_t>(t)].shards_lost == 0) {
      EXPECT_EQ(history[static_cast<size_t>(t)],
                reference.ticks[static_cast<size_t>(t)]);
    }
  }
}

// --------------------------------------------------------------------------
// Degraded merge and quorum.

TEST(ShardDegradedMergeTest, LostShardIsExcludedWithExactAccounting) {
  constexpr int64_t kTicks = 3;
  constexpr int64_t kShards = 4;
  const ShardFixture fixture = MakeFixture(120, 6, 1.0, kTicks);
  const ReferenceCampaignResult reference = RunSingleCoordinatorReference(
      fixture.queries, fixture.policy, kShards, kSeed, fixture.populations,
      fixture.codecs, kTicks);

  ShardFaultPlan plan(0, ShardFaultRates{});
  plan.SetPermanentLoss(/*shard=*/2, /*from_tick=*/1);
  ShardedCampaignOptions options = BaseOptions(kShards);
  options.fault_plan = &plan;
  ShardedCampaignRunner runner(fixture.queries, fixture.policy, options);
  const auto history = RunSharded(fixture, &runner, kTicks);

  // Tick 0 is fault-free and exact.
  EXPECT_EQ(history[0], reference.ticks[0]);

  const int64_t lost_clients = 120 / kShards;
  for (int64_t t = 1; t < kTicks; ++t) {
    const MergedTickResult& tick = history[static_cast<size_t>(t)];
    const MergedTickResult& clean = reference.ticks[static_cast<size_t>(t)];
    EXPECT_FALSE(tick.quorum_failed);
    EXPECT_EQ(tick.shards_lost, 1);
    EXPECT_EQ(tick.shards_delivered, kShards - 1);
    ASSERT_EQ(tick.queries.size(), 1u);
    const MergedQueryResult& merged = tick.queries[0];
    const MergedQueryResult& clean_merged = clean.queries[0];
    EXPECT_EQ(merged.status, MergedQueryResult::Status::kRan);
    EXPECT_TRUE(merged.degraded);
    EXPECT_EQ(merged.shards_lost, 1);
    EXPECT_EQ(merged.clients_lost, lost_clients);
    EXPECT_EQ(merged.effective_clients, 120 - lost_clients);
    EXPECT_LT(merged.reports, clean_merged.reports);
    // Fewer reports -> a strictly wider variance bound.
    EXPECT_GT(merged.variance_bound, clean_merged.variance_bound);
    EXPECT_GT(merged.variance_bound, 0.0);
  }
}

TEST(ShardQuorumTest, BelowQuorumFailsClosed) {
  constexpr int64_t kTicks = 2;
  const ShardFixture fixture = MakeFixture(60, 5, 1.0, kTicks);
  ShardFaultPlan plan(0, ShardFaultRates{});
  plan.SetPermanentLoss(/*shard=*/1, /*from_tick=*/1);
  ShardedCampaignOptions options = BaseOptions(2);
  options.quorum_fraction = 1.0;  // both shards required
  options.fault_plan = &plan;
  ShardedCampaignRunner runner(fixture.queries, fixture.policy, options);
  const auto history = RunSharded(fixture, &runner, kTicks);

  EXPECT_FALSE(history[0].quorum_failed);
  const MergedTickResult& failed = history[1];
  EXPECT_TRUE(failed.quorum_failed);
  ASSERT_EQ(failed.queries.size(), 1u);
  EXPECT_EQ(failed.queries[0].status, MergedQueryResult::Status::kFailedQuorum);
  EXPECT_EQ(failed.queries[0].estimate, 0.0);
  EXPECT_EQ(failed.queries[0].tallies.bits(), 0);
  EXPECT_EQ(failed.queries[0].clients_lost, 30);
}

TEST(ShardMetricsTest, SnapshotIsCanonicalAndCodecRoundTrips) {
  ShardMetrics metrics;
  metrics.ticks_completed = 3;
  metrics.recoveries = 1;
  metrics.torn_tails = 2;
  const std::string snapshot = metrics.ToSnapshot();
  EXPECT_NE(snapshot.find("shard_ticks_completed 3\n"), std::string::npos);
  EXPECT_NE(snapshot.find("shard_torn_tails 2\n"), std::string::npos);

  std::vector<uint8_t> wire;
  EncodeShardMetrics(metrics, &wire);
  ShardMetrics decoded;
  size_t offset = 0;
  ASSERT_TRUE(DecodeShardMetrics(wire, &offset, &decoded));
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(decoded, metrics);
}

}  // namespace
}  // namespace bitpush
