// Cross-module property tests. Universal invariants run on bitprop
// generators (tests/prop/bitprop.h) — seeded domains, shrinking, and
// BITPROP_SEED reproduction — while exact-value identities and statistical
// suites that need a Monte-Carlo grid stay as plain/parameterized gtest.
// The fixed-point codec sweeps that used to live here moved to
// tests/prop/prop_invariants_test.cc, which states them over random widths
// and ranges.

#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/bit_squashing.h"
#include "core/fixed_point.h"
#include "core/planner.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "ldp/randomized_response.h"
#include "prop/bitprop.h"
#include "rng/qmc.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

using ::bitpush::prop::CheckProperty;
using ::bitpush::prop::Domain;

// ---------------------------------------------------------------------------
// Randomized response identities across the epsilon range.

class RrEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(RrEpsilonTest, UnbiasingIdentityHoldsEmpirically) {
  const double epsilon = GetParam();
  const RandomizedResponse rr(epsilon);
  Rng rng(7);
  for (const int bit : {0, 1}) {
    double sum = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i) {
      sum += rr.Unbias(static_cast<double>(rr.Apply(bit, rng)));
    }
    // Standard error of the unbiased mean.
    const double se = std::sqrt(rr.ReportVariance() / trials);
    EXPECT_NEAR(sum / trials, static_cast<double>(bit), 5.0 * se + 1e-9)
        << "eps=" << epsilon << " bit=" << bit;
  }
}

TEST_P(RrEpsilonTest, LikelihoodRatioIsExactlyExpEpsilon) {
  const double epsilon = GetParam();
  const RandomizedResponse rr(epsilon);
  const double p = rr.truth_probability();
  EXPECT_NEAR(std::log(p / (1.0 - p)), epsilon, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, RrEpsilonTest,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 2.0, 4.0,
                                           8.0));

// ---------------------------------------------------------------------------
// QMC allocation invariants under random allocations.

struct AllocationCase {
  std::vector<double> weights;  // positive; normalized by the property
  int64_t n = 1;
};

Domain<AllocationCase> AllocationDomain() {
  Domain<AllocationCase> domain;
  domain.generate = [](Rng& rng) {
    AllocationCase c;
    c.weights.resize(1 + rng.NextBelow(20));
    for (double& x : c.weights) x = rng.NextDouble() + 1e-3;
    c.n = 1 + static_cast<int64_t>(rng.NextBelow(50000));
    return c;
  };
  domain.shrink = [](const AllocationCase& c) {
    std::vector<AllocationCase> out;
    if (c.weights.size() > 1) {
      AllocationCase smaller = c;
      smaller.weights.resize(c.weights.size() / 2);
      out.push_back(smaller);
    }
    if (c.n > 1) {
      AllocationCase smaller = c;
      smaller.n = c.n / 2;
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const AllocationCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{n=" << c.n << " weights=[";
    for (size_t i = 0; i < c.weights.size(); ++i) {
      if (i > 0) out << ", ";
      out << c.weights[i];
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

TEST(QmcAllocationProperty, GroupSizesExactAndWithinOneOfProportional) {
  CheckProperty<AllocationCase>(
      "proportional group sizes stay within one of n * p_j and sum to n",
      AllocationDomain(),
      [](const AllocationCase& c) -> std::optional<std::string> {
        std::vector<double> p = c.weights;
        NormalizeProbabilities(p);
        const std::vector<int64_t> sizes = ProportionalGroupSizes(c.n, p);
        int64_t total = 0;
        for (size_t j = 0; j < p.size(); ++j) {
          const double exact = static_cast<double>(c.n) * p[j];
          if (static_cast<double>(sizes[j]) < std::floor(exact) - 1e-9 ||
              static_cast<double>(sizes[j]) > std::ceil(exact) + 1e-9) {
            std::ostringstream out;
            out << "group " << j << " size " << sizes[j]
                << " outside [floor, ceil] of " << exact;
            return out.str();
          }
          total += sizes[j];
        }
        if (total != c.n) return std::string("group sizes do not sum to n");
        return std::nullopt;
      });
}

// ---------------------------------------------------------------------------
// Protocol invariants across workloads.

struct WorkloadCase {
  const char* label;
  // Builds a dataset of the given size.
  Dataset (*make)(int64_t n, Rng& rng);
};

Dataset MakeUniformWorkload(int64_t n, Rng& rng) {
  return UniformData(n, 0.0, 250.0, rng);
}
Dataset MakeNormalWorkload(int64_t n, Rng& rng) {
  return NormalData(n, 120.0, 40.0, rng);
}
Dataset MakeExponentialWorkload(int64_t n, Rng& rng) {
  return ExponentialData(n, 60.0, rng);
}
Dataset MakeCensusWorkload(int64_t n, Rng& rng) {
  return CensusAges(n, rng);
}
Dataset MakeConstantWorkload(int64_t n, Rng& rng) {
  (void)rng;
  return ConstantData(n, 97.0);
}
Dataset MakeBimodalWorkload(int64_t n, Rng& rng) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(rng.NextBernoulli(0.5) ? 10.0 : 200.0);
  }
  return Dataset("bimodal", std::move(values));
}

class WorkloadPropertyTest : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  static constexpr int kBits = 8;
  static constexpr int64_t kClients = 4000;
};

TEST_P(WorkloadPropertyTest, EstimateStaysInCodewordDomainWithoutDp) {
  // Without DP noise, every bit mean is in [0, 1], so the recombined
  // estimate must lie in [0, 2^b - 1] regardless of workload/allocation.
  Rng rng(11);
  const Dataset data = GetParam().make(kClients, rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(data.Clipped(0.0, 255.0).values());
  for (const double gamma : {0.0, 0.5, 1.0}) {
    BitPushingConfig config;
    config.probabilities = GeometricProbabilities(kBits, gamma);
    const BitPushingResult result =
        RunBasicBitPushing(codewords, config, rng);
    EXPECT_GE(result.estimate_codeword, 0.0);
    EXPECT_LE(result.estimate_codeword,
              static_cast<double>(codec.max_codeword()));
  }
}

TEST_P(WorkloadPropertyTest, BasicAndAdaptiveAgreeWithTruth) {
  Rng rng(13);
  const Dataset raw = GetParam().make(kClients, rng);
  const Dataset data = raw.Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  const double truth = data.truth().mean;

  AdaptiveConfig adaptive;
  adaptive.bits = kBits;
  const ErrorStats stats = RunRepetitions(50, 17, truth, [&](Rng& run) {
    return codec.Decode(
        RunAdaptiveBitPushing(codewords, adaptive, run).estimate_codeword);
  });
  // 4000 clients on an 8-bit domain: comfortably within 10% of truth
  // (constant data is exact; scale by truth or resolution).
  const double slack = std::max(0.1 * std::abs(truth), 2.0);
  EXPECT_LT(std::abs(stats.bias) + stats.rmse, slack + 1e-9)
      << GetParam().label;
}

TEST_P(WorkloadPropertyTest, VarianceBoundIsAnUpperEnvelope) {
  Rng rng(19);
  const Dataset data = GetParam().make(kClients, rng).Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(kBits, 1.0);

  Rng probe(23);
  const double bound =
      RunBasicBitPushing(codewords, config, probe).variance_bound;
  const std::vector<double> estimates =
      CollectRepetitions(300, 29, [&](Rng& run) {
        return RunBasicBitPushing(codewords, config, run)
            .estimate_codeword;
      });
  // Without-replacement sampling only shrinks variance, so the plug-in
  // bound (evaluated at estimated means) must cover the empirical value
  // up to estimation noise.
  EXPECT_LT(PopulationVariance(estimates), 1.5 * bound + 1e-9)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadPropertyTest,
    ::testing::Values(WorkloadCase{"uniform", MakeUniformWorkload},
                      WorkloadCase{"normal", MakeNormalWorkload},
                      WorkloadCase{"exponential", MakeExponentialWorkload},
                      WorkloadCase{"census", MakeCensusWorkload},
                      WorkloadCase{"constant", MakeConstantWorkload},
                      WorkloadCase{"bimodal", MakeBimodalWorkload}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// Structural invariants.

struct MergeOp {
  int bit_index = 0;
  int bit = 0;
  bool to_left = false;
};

struct HistogramMergeCase {
  int bits = 1;
  std::vector<MergeOp> ops;
};

Domain<HistogramMergeCase> HistogramMergeDomain() {
  Domain<HistogramMergeCase> domain;
  domain.generate = [](Rng& rng) {
    HistogramMergeCase c;
    c.bits = 1 + static_cast<int>(rng.NextBelow(16));
    c.ops.resize(1 + rng.NextBelow(500));
    for (MergeOp& op : c.ops) {
      op.bit_index =
          static_cast<int>(rng.NextBelow(static_cast<uint64_t>(c.bits)));
      op.bit = rng.NextBit();
      op.to_left = rng.NextBernoulli(0.5);
    }
    return c;
  };
  domain.shrink = [](const HistogramMergeCase& c) {
    std::vector<HistogramMergeCase> out;
    if (c.ops.size() > 1) {
      HistogramMergeCase smaller = c;
      smaller.ops.resize(c.ops.size() / 2);
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const HistogramMergeCase& c) {
    std::ostringstream out;
    out << "{bits=" << c.bits << " ops=[";
    for (size_t i = 0; i < c.ops.size(); ++i) {
      if (i > 0) out << " ";
      out << c.ops[i].bit_index << ":" << c.ops[i].bit
          << (c.ops[i].to_left ? "L" : "R");
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

TEST(HistogramMergeProperty, MergeEqualsConcatenatedAdds) {
  CheckProperty<HistogramMergeCase>(
      "merging split halves reproduces the concatenated histogram",
      HistogramMergeDomain(),
      [](const HistogramMergeCase& c) -> std::optional<std::string> {
        BitHistogram merged(c.bits);
        BitHistogram left(c.bits);
        BitHistogram right(c.bits);
        BitHistogram all(c.bits);
        for (const MergeOp& op : c.ops) {
          all.Add(op.bit_index, op.bit);
          (op.to_left ? left : right).Add(op.bit_index, op.bit);
        }
        merged.Merge(left);
        merged.Merge(right);
        if (merged.totals() != all.totals()) {
          return std::string("merged totals differ from concatenated adds");
        }
        if (merged.one_counts() != all.one_counts()) {
          return std::string(
              "merged one-counts differ from concatenated adds");
        }
        return std::nullopt;
      });
}

struct RecombineCase {
  std::vector<double> a;
  std::vector<double> b;  // same length as a
};

Domain<RecombineCase> RecombineDomain() {
  Domain<RecombineCase> domain;
  domain.generate = [](Rng& rng) {
    RecombineCase c;
    const size_t bits = 1 + rng.NextBelow(20);
    c.a.resize(bits);
    c.b.resize(bits);
    for (size_t j = 0; j < bits; ++j) {
      c.a[j] = rng.NextDouble();
      c.b[j] = rng.NextDouble();
    }
    return c;
  };
  domain.shrink = [](const RecombineCase& c) {
    std::vector<RecombineCase> out;
    if (c.a.size() > 1) {
      RecombineCase smaller = c;
      smaller.a.resize(c.a.size() / 2);
      smaller.b.resize(c.a.size() / 2);
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const RecombineCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{a=[";
    for (size_t j = 0; j < c.a.size(); ++j) {
      if (j > 0) out << ", ";
      out << c.a[j];
    }
    out << "] b=[";
    for (size_t j = 0; j < c.b.size(); ++j) {
      if (j > 0) out << ", ";
      out << c.b[j];
    }
    out << "]}";
    return out.str();
  };
  return domain;
}

TEST(RecombineProperty, LinearInBitMeans) {
  CheckProperty<RecombineCase>(
      "recombination is linear in the bit means", RecombineDomain(),
      [](const RecombineCase& c) -> std::optional<std::string> {
        std::vector<double> sum(c.a.size());
        for (size_t j = 0; j < c.a.size(); ++j) sum[j] = c.a[j] + c.b[j];
        const double joint = RecombineBitMeans(sum);
        const double split = RecombineBitMeans(c.a) + RecombineBitMeans(c.b);
        if (std::abs(joint - split) > 1e-6) {
          std::ostringstream out;
          out.precision(17);
          out << "recombine(a + b) = " << joint
              << " but recombine(a) + recombine(b) = " << split;
          return out.str();
        }
        return std::nullopt;
      });
}

struct SquashCase {
  std::vector<double> means;    // includes noisy values outside [0, 1]
  std::vector<int64_t> counts;  // same length as means
};

Domain<SquashCase> SquashDomain() {
  Domain<SquashCase> domain;
  domain.generate = [](Rng& rng) {
    SquashCase c;
    const size_t bits = 1 + rng.NextBelow(16);
    c.means.resize(bits);
    c.counts.resize(bits);
    for (size_t j = 0; j < bits; ++j) {
      c.means[j] = 2.0 * rng.NextDouble() - 0.5;
      c.counts[j] = static_cast<int64_t>(rng.NextBelow(100));
    }
    return c;
  };
  domain.shrink = [](const SquashCase& c) {
    std::vector<SquashCase> out;
    if (c.means.size() > 1) {
      SquashCase smaller = c;
      smaller.means.resize(c.means.size() / 2);
      smaller.counts.resize(c.means.size() / 2);
      out.push_back(smaller);
    }
    return out;
  };
  domain.describe = [](const SquashCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{";
    for (size_t j = 0; j < c.means.size(); ++j) {
      if (j > 0) out << " ";
      out << c.means[j] << "/" << c.counts[j];
    }
    out << "}";
    return out.str();
  };
  return domain;
}

TEST(SquashMonotoneProperty, HigherThresholdSquashesSuperset) {
  CheckProperty<SquashCase>(
      "anything squashed at a low threshold stays squashed at a higher one",
      SquashDomain(), [](const SquashCase& c) -> std::optional<std::string> {
        const RandomizedResponse rr(1.0);
        const std::vector<bool> low = ComputeSquashMask(
            c.means, c.counts, rr, SquashPolicy::Absolute(0.05));
        const std::vector<bool> high = ComputeSquashMask(
            c.means, c.counts, rr, SquashPolicy::Absolute(0.2));
        for (size_t j = 0; j < c.means.size(); ++j) {
          if (!low[j] && high[j]) {
            std::ostringstream out;
            out << "bit " << j
                << " kept at threshold 0.05 but squashed at 0.2";
            return out.str();
          }
        }
        return std::nullopt;
      });
}

TEST(PlannerMonotoneProperty, StricterSettingsNeedMoreClients) {
  const std::vector<double> p = GeometricProbabilities(8, 1.0);
  int64_t previous = 0;
  // Monotone in the accuracy target.
  for (const double target : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
    const int64_t required =
        PlanForStdError(p, {}, 0.0, target).required_clients;
    EXPECT_GE(required, previous);
    previous = required;
  }
  // Monotone in epsilon (smaller epsilon -> more noise -> more clients).
  previous = 0;
  for (const double epsilon : {4.0, 2.0, 1.0, 0.5, 0.25}) {
    const int64_t required =
        PlanForStdError(p, {}, epsilon, 1.0).required_clients;
    EXPECT_GE(required, previous);
    previous = required;
  }
}

struct GeometricCase {
  int bits = 2;
  double gamma = 0.0;
};

Domain<GeometricCase> GeometricDomain() {
  Domain<GeometricCase> domain;
  domain.generate = [](Rng& rng) {
    GeometricCase c;
    c.bits = 2 + static_cast<int>(rng.NextBelow(30));
    c.gamma = rng.NextDouble() * 2.0;
    return c;
  };
  domain.shrink = [](const GeometricCase& c) {
    std::vector<GeometricCase> out;
    if (c.bits > 2) out.push_back({2, c.gamma});
    if (c.gamma != 0.0) out.push_back({c.bits, 0.0});
    return out;
  };
  domain.describe = [](const GeometricCase& c) {
    std::ostringstream out;
    out.precision(17);
    out << "{bits=" << c.bits << " gamma=" << c.gamma << "}";
    return out.str();
  };
  return domain;
}

TEST(GeometricAllocationProperty, MassOrderedByBitSignificance) {
  CheckProperty<GeometricCase>(
      "geometric allocation puts non-decreasing mass on higher bits",
      GeometricDomain(),
      [](const GeometricCase& c) -> std::optional<std::string> {
        const std::vector<double> p =
            GeometricProbabilities(c.bits, c.gamma);
        for (size_t j = 1; j < p.size(); ++j) {
          if (p[j] < p[j - 1] - 1e-15) {
            std::ostringstream out;
            out.precision(17);
            out << "p[" << j << "]=" << p[j] << " < p[" << j - 1
                << "]=" << p[j - 1];
            return out.str();
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace bitpush
