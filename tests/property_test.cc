// Cross-module property tests: invariants that must hold across wide
// parameter sweeps, exercised with parameterized gtest suites.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "core/bit_squashing.h"
#include "core/fixed_point.h"
#include "core/planner.h"
#include "data/census.h"
#include "data/synthetic.h"
#include "ldp/randomized_response.h"
#include "rng/distributions.h"
#include "rng/qmc.h"
#include "rng/rng.h"
#include "stats/metrics.h"
#include "stats/repetition.h"

namespace bitpush {
namespace {

// ---------------------------------------------------------------------------
// Codec round-trip across every supported bit width.

class CodecWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecWidthTest, IntegerRoundTripIsExact) {
  const int bits = GetParam();
  const FixedPointCodec codec = FixedPointCodec::Integer(bits);
  Rng rng(static_cast<uint64_t>(bits));
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t v = rng.NextBelow(codec.max_codeword() + 1);
    EXPECT_EQ(codec.Encode(static_cast<double>(v)), v);
    EXPECT_DOUBLE_EQ(codec.Decode(static_cast<double>(v)),
                     static_cast<double>(v));
  }
}

TEST_P(CodecWidthTest, RangeRoundTripWithinHalfResolution) {
  const int bits = GetParam();
  const FixedPointCodec codec(bits, -3.5, 17.25);
  Rng rng(static_cast<uint64_t>(bits) + 100);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = SampleUniform(rng, -3.5, 17.25);
    const double decoded =
        codec.Decode(static_cast<double>(codec.Encode(x)));
    EXPECT_NEAR(decoded, x, codec.resolution() / 2.0 + 1e-9);
  }
}

TEST_P(CodecWidthTest, BitDecompositionIsLinear) {
  const int bits = GetParam();
  const FixedPointCodec codec = FixedPointCodec::Integer(bits);
  Rng rng(static_cast<uint64_t>(bits) + 200);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t v = rng.NextBelow(codec.max_codeword() + 1);
    double recombined = 0.0;
    for (int j = 0; j < bits; ++j) {
      recombined += std::exp2(j) * FixedPointCodec::Bit(v, j);
    }
    EXPECT_DOUBLE_EQ(recombined, static_cast<double>(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CodecWidthTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 52));

// ---------------------------------------------------------------------------
// Randomized response identities across the epsilon range.

class RrEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(RrEpsilonTest, UnbiasingIdentityHoldsEmpirically) {
  const double epsilon = GetParam();
  const RandomizedResponse rr(epsilon);
  Rng rng(7);
  for (const int bit : {0, 1}) {
    double sum = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i) {
      sum += rr.Unbias(static_cast<double>(rr.Apply(bit, rng)));
    }
    // Standard error of the unbiased mean.
    const double se = std::sqrt(rr.ReportVariance() / trials);
    EXPECT_NEAR(sum / trials, static_cast<double>(bit), 5.0 * se + 1e-9)
        << "eps=" << epsilon << " bit=" << bit;
  }
}

TEST_P(RrEpsilonTest, LikelihoodRatioIsExactlyExpEpsilon) {
  const double epsilon = GetParam();
  const RandomizedResponse rr(epsilon);
  const double p = rr.truth_probability();
  EXPECT_NEAR(std::log(p / (1.0 - p)), epsilon, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, RrEpsilonTest,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 2.0, 4.0,
                                           8.0));

// ---------------------------------------------------------------------------
// QMC allocation invariants under random allocations.

class QmcSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(QmcSeedTest, GroupSizesExactAndWithinOneOfProportional) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> p(1 + rng.NextBelow(20));
  for (double& x : p) x = rng.NextDouble() + 1e-3;
  NormalizeProbabilities(p);
  const int64_t n = 1 + static_cast<int64_t>(rng.NextBelow(50000));
  const std::vector<int64_t> sizes = ProportionalGroupSizes(n, p);
  int64_t total = 0;
  for (size_t j = 0; j < p.size(); ++j) {
    const double exact = static_cast<double>(n) * p[j];
    EXPECT_GE(static_cast<double>(sizes[j]), std::floor(exact) - 1e-9);
    EXPECT_LE(static_cast<double>(sizes[j]), std::ceil(exact) + 1e-9);
    total += sizes[j];
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmcSeedTest, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Protocol invariants across workloads.

struct WorkloadCase {
  const char* label;
  // Builds a dataset of the given size.
  Dataset (*make)(int64_t n, Rng& rng);
};

Dataset MakeUniformWorkload(int64_t n, Rng& rng) {
  return UniformData(n, 0.0, 250.0, rng);
}
Dataset MakeNormalWorkload(int64_t n, Rng& rng) {
  return NormalData(n, 120.0, 40.0, rng);
}
Dataset MakeExponentialWorkload(int64_t n, Rng& rng) {
  return ExponentialData(n, 60.0, rng);
}
Dataset MakeCensusWorkload(int64_t n, Rng& rng) {
  return CensusAges(n, rng);
}
Dataset MakeConstantWorkload(int64_t n, Rng& rng) {
  (void)rng;
  return ConstantData(n, 97.0);
}
Dataset MakeBimodalWorkload(int64_t n, Rng& rng) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    values.push_back(rng.NextBernoulli(0.5) ? 10.0 : 200.0);
  }
  return Dataset("bimodal", std::move(values));
}

class WorkloadPropertyTest : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  static constexpr int kBits = 8;
  static constexpr int64_t kClients = 4000;
};

TEST_P(WorkloadPropertyTest, EstimateStaysInCodewordDomainWithoutDp) {
  // Without DP noise, every bit mean is in [0, 1], so the recombined
  // estimate must lie in [0, 2^b - 1] regardless of workload/allocation.
  Rng rng(11);
  const Dataset data = GetParam().make(kClients, rng);
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<uint64_t> codewords =
      codec.EncodeAll(data.Clipped(0.0, 255.0).values());
  for (const double gamma : {0.0, 0.5, 1.0}) {
    BitPushingConfig config;
    config.probabilities = GeometricProbabilities(kBits, gamma);
    const BitPushingResult result =
        RunBasicBitPushing(codewords, config, rng);
    EXPECT_GE(result.estimate_codeword, 0.0);
    EXPECT_LE(result.estimate_codeword,
              static_cast<double>(codec.max_codeword()));
  }
}

TEST_P(WorkloadPropertyTest, BasicAndAdaptiveAgreeWithTruth) {
  Rng rng(13);
  const Dataset raw = GetParam().make(kClients, rng);
  const Dataset data = raw.Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  const double truth = data.truth().mean;

  AdaptiveConfig adaptive;
  adaptive.bits = kBits;
  const ErrorStats stats = RunRepetitions(50, 17, truth, [&](Rng& run) {
    return codec.Decode(
        RunAdaptiveBitPushing(codewords, adaptive, run).estimate_codeword);
  });
  // 4000 clients on an 8-bit domain: comfortably within 10% of truth
  // (constant data is exact; scale by truth or resolution).
  const double slack = std::max(0.1 * std::abs(truth), 2.0);
  EXPECT_LT(std::abs(stats.bias) + stats.rmse, slack + 1e-9)
      << GetParam().label;
}

TEST_P(WorkloadPropertyTest, VarianceBoundIsAnUpperEnvelope) {
  Rng rng(19);
  const Dataset data = GetParam().make(kClients, rng).Clipped(0.0, 255.0);
  const FixedPointCodec codec = FixedPointCodec::Integer(kBits);
  const std::vector<uint64_t> codewords = codec.EncodeAll(data.values());
  BitPushingConfig config;
  config.probabilities = GeometricProbabilities(kBits, 1.0);

  Rng probe(23);
  const double bound =
      RunBasicBitPushing(codewords, config, probe).variance_bound;
  const std::vector<double> estimates =
      CollectRepetitions(300, 29, [&](Rng& run) {
        return RunBasicBitPushing(codewords, config, run)
            .estimate_codeword;
      });
  // Without-replacement sampling only shrinks variance, so the plug-in
  // bound (evaluated at estimated means) must cover the empirical value
  // up to estimation noise.
  EXPECT_LT(PopulationVariance(estimates), 1.5 * bound + 1e-9)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadPropertyTest,
    ::testing::Values(WorkloadCase{"uniform", MakeUniformWorkload},
                      WorkloadCase{"normal", MakeNormalWorkload},
                      WorkloadCase{"exponential", MakeExponentialWorkload},
                      WorkloadCase{"census", MakeCensusWorkload},
                      WorkloadCase{"constant", MakeConstantWorkload},
                      WorkloadCase{"bimodal", MakeBimodalWorkload}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// Structural invariants.

TEST(HistogramMergeProperty, MergeEqualsConcatenatedAdds) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const int bits = 1 + static_cast<int>(rng.NextBelow(16));
    BitHistogram merged(bits);
    BitHistogram left(bits);
    BitHistogram right(bits);
    BitHistogram all(bits);
    const int64_t reports = 1 + static_cast<int64_t>(rng.NextBelow(500));
    for (int64_t i = 0; i < reports; ++i) {
      const int bit_index = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(bits)));
      const int bit = rng.NextBit();
      all.Add(bit_index, bit);
      (rng.NextBernoulli(0.5) ? left : right).Add(bit_index, bit);
    }
    merged.Merge(left);
    merged.Merge(right);
    EXPECT_EQ(merged.totals(), all.totals());
    EXPECT_EQ(merged.one_counts(), all.one_counts());
  }
}

TEST(RecombineProperty, LinearInBitMeans) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t bits = 1 + rng.NextBelow(20);
    std::vector<double> a(bits);
    std::vector<double> b(bits);
    std::vector<double> sum(bits);
    for (size_t j = 0; j < bits; ++j) {
      a[j] = rng.NextDouble();
      b[j] = rng.NextDouble();
      sum[j] = a[j] + b[j];
    }
    EXPECT_NEAR(RecombineBitMeans(sum),
                RecombineBitMeans(a) + RecombineBitMeans(b), 1e-6);
  }
}

TEST(SquashMonotoneProperty, HigherThresholdSquashesSuperset) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t bits = 1 + rng.NextBelow(16);
    std::vector<double> means(bits);
    std::vector<int64_t> counts(bits);
    for (size_t j = 0; j < bits; ++j) {
      means[j] = 2.0 * rng.NextDouble() - 0.5;  // includes noisy <0, >1
      counts[j] = static_cast<int64_t>(rng.NextBelow(100));
    }
    const RandomizedResponse rr(1.0);
    const std::vector<bool> low = ComputeSquashMask(
        means, counts, rr, SquashPolicy::Absolute(0.05));
    const std::vector<bool> high = ComputeSquashMask(
        means, counts, rr, SquashPolicy::Absolute(0.2));
    for (size_t j = 0; j < bits; ++j) {
      // Anything squashed at the low threshold stays squashed at the high
      // one.
      if (!low[j]) {
        EXPECT_FALSE(high[j]);
      }
    }
  }
}

TEST(PlannerMonotoneProperty, StricterSettingsNeedMoreClients) {
  const std::vector<double> p = GeometricProbabilities(8, 1.0);
  int64_t previous = 0;
  // Monotone in the accuracy target.
  for (const double target : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
    const int64_t required =
        PlanForStdError(p, {}, 0.0, target).required_clients;
    EXPECT_GE(required, previous);
    previous = required;
  }
  // Monotone in epsilon (smaller epsilon -> more noise -> more clients).
  previous = 0;
  for (const double epsilon : {4.0, 2.0, 1.0, 0.5, 0.25}) {
    const int64_t required =
        PlanForStdError(p, {}, epsilon, 1.0).required_clients;
    EXPECT_GE(required, previous);
    previous = required;
  }
}

TEST(GeometricAllocationProperty, MassOrderedByBitSignificance) {
  Rng rng(43);
  for (int trial = 0; trial < 30; ++trial) {
    const int bits = 2 + static_cast<int>(rng.NextBelow(30));
    const double gamma = rng.NextDouble() * 2.0;
    const std::vector<double> p = GeometricProbabilities(bits, gamma);
    for (size_t j = 1; j < p.size(); ++j) {
      EXPECT_GE(p[j], p[j - 1] - 1e-15);
    }
  }
}

}  // namespace
}  // namespace bitpush
