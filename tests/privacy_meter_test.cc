#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/privacy_meter.h"

namespace bitpush {
namespace {

// Captures every journal callback; `replay` scripts OnChargeAttempt.
class RecordingJournal : public PrivacyMeter::Journal {
 public:
  struct Charge {
    int64_t client_id = 0;
    int64_t value_id = 0;
    double epsilon = 0.0;
    bool granted = false;
  };

  std::optional<bool> OnChargeAttempt(int64_t, int64_t, double) override {
    ++attempts;
    return replay;
  }
  void OnCharge(int64_t client_id, int64_t value_id, double epsilon,
                bool granted) override {
    charges.push_back(Charge{client_id, value_id, epsilon, granted});
  }

  int attempts = 0;
  std::optional<bool> replay;
  std::vector<Charge> charges;
};

TEST(PrivacyMeterTest, DefaultPolicyAllowsOneBitPerValue) {
  PrivacyMeter meter{MeterPolicy{}};
  EXPECT_TRUE(meter.TryChargeBit(1, 100, 0.0));
  // Second bit about the same value: denied (the paper's worst-case
  // guarantee).
  EXPECT_FALSE(meter.TryChargeBit(1, 100, 0.0));
  // A different value of the same client is fine.
  EXPECT_TRUE(meter.TryChargeBit(1, 101, 0.0));
  // Another client's same value id is independent.
  EXPECT_TRUE(meter.TryChargeBit(2, 100, 0.0));
  EXPECT_EQ(meter.total_bits(), 3);
  EXPECT_EQ(meter.denied_charges(), 1);
}

TEST(PrivacyMeterTest, PerValueCapAboveOne) {
  MeterPolicy policy;
  policy.max_bits_per_value = 3;
  PrivacyMeter meter(policy);
  EXPECT_TRUE(meter.TryChargeBit(1, 5, 0.0));
  EXPECT_TRUE(meter.TryChargeBit(1, 5, 0.0));
  EXPECT_TRUE(meter.TryChargeBit(1, 5, 0.0));
  EXPECT_FALSE(meter.TryChargeBit(1, 5, 0.0));
  EXPECT_EQ(meter.ValueBits(1, 5), 3);
}

TEST(PrivacyMeterTest, PerClientBitCap) {
  MeterPolicy policy;
  policy.max_bits_per_value = 10;
  policy.max_bits_per_client = 2;
  PrivacyMeter meter(policy);
  EXPECT_TRUE(meter.TryChargeBit(7, 1, 0.0));
  EXPECT_TRUE(meter.TryChargeBit(7, 2, 0.0));
  EXPECT_FALSE(meter.TryChargeBit(7, 3, 0.0));
  EXPECT_EQ(meter.ClientBits(7), 2);
  // Other clients unaffected.
  EXPECT_TRUE(meter.TryChargeBit(8, 1, 0.0));
}

TEST(PrivacyMeterTest, EpsilonBudgetComposesAcrossCharges) {
  MeterPolicy policy;
  policy.max_bits_per_value = 10;
  policy.max_bits_per_client = 10;
  policy.max_epsilon_per_client = 2.5;
  PrivacyMeter meter(policy);
  EXPECT_TRUE(meter.TryChargeBit(1, 1, 1.0));
  EXPECT_TRUE(meter.TryChargeBit(1, 2, 1.0));
  // Third unit charge would push to 3.0 > 2.5.
  EXPECT_FALSE(meter.TryChargeBit(1, 3, 1.0));
  // A smaller charge still fits.
  EXPECT_TRUE(meter.TryChargeBit(1, 3, 0.5));
  EXPECT_DOUBLE_EQ(meter.ClientEpsilon(1), 2.5);
}

TEST(PrivacyMeterTest, DeniedChargeLeavesStateUntouched) {
  PrivacyMeter meter{MeterPolicy{}};
  EXPECT_TRUE(meter.TryChargeBit(1, 1, 0.3));
  const int64_t bits_before = meter.total_bits();
  const double eps_before = meter.ClientEpsilon(1);
  EXPECT_FALSE(meter.TryChargeBit(1, 1, 0.3));
  EXPECT_EQ(meter.total_bits(), bits_before);
  EXPECT_DOUBLE_EQ(meter.ClientEpsilon(1), eps_before);
}

TEST(PrivacyMeterTest, UnknownClientsReadAsZero) {
  const PrivacyMeter meter{MeterPolicy{}};
  EXPECT_EQ(meter.ClientBits(99), 0);
  EXPECT_DOUBLE_EQ(meter.ClientEpsilon(99), 0.0);
  EXPECT_EQ(meter.ValueBits(99, 1), 0);
}

TEST(PrivacyMeterDeathTest, InvalidPolicyAborts) {
  MeterPolicy bad;
  bad.max_bits_per_value = 0;
  EXPECT_DEATH(PrivacyMeter{bad}, "BITPUSH_CHECK failed");
}

// Regression: an invalid epsilon used to slip past the non-negativity check
// when it was +infinity (corrupting the composed budget forever) and abort
// the coordinator when it was negative. Both are now denied like any other
// over-budget charge, leaving the ledger untouched.
TEST(PrivacyMeterTest, InvalidEpsilonDeniedWithoutSideEffects) {
  MeterPolicy policy;
  policy.max_bits_per_value = 10;
  policy.max_bits_per_client = 10;
  policy.max_epsilon_per_client = 2.5;
  PrivacyMeter meter(policy);
  EXPECT_TRUE(meter.TryChargeBit(1, 1, 1.0));

  EXPECT_FALSE(meter.TryChargeBit(1, 2, -0.1));
  EXPECT_FALSE(meter.TryChargeBit(1, 2, std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(meter.TryChargeBit(1, 2, std::numeric_limits<double>::quiet_NaN()));

  EXPECT_EQ(meter.total_bits(), 1);
  EXPECT_EQ(meter.denied_charges(), 3);
  EXPECT_DOUBLE_EQ(meter.ClientEpsilon(1), 1.0);
  // The budget still composes normally afterwards.
  EXPECT_TRUE(meter.TryChargeBit(1, 2, 1.5));
  EXPECT_FALSE(meter.TryChargeBit(1, 3, 0.5));
}

// Regression: invalid-epsilon denials used to return before the journal
// hooks, so they were never journaled nor replayed — a restored ledger's
// denied-charge count diverged from an uninterrupted run.
TEST(PrivacyMeterTest, InvalidEpsilonDenialsFlowThroughTheJournal) {
  PrivacyMeter meter{MeterPolicy{}};
  RecordingJournal journal;
  meter.set_journal(&journal);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(meter.TryChargeBit(1, 2, nan));
  EXPECT_EQ(journal.attempts, 1);
  ASSERT_EQ(journal.charges.size(), 1u);
  EXPECT_EQ(journal.charges[0].client_id, 1);
  EXPECT_EQ(journal.charges[0].value_id, 2);
  EXPECT_TRUE(std::isnan(journal.charges[0].epsilon));
  EXPECT_FALSE(journal.charges[0].granted);
  EXPECT_EQ(meter.denied_charges(), 1);

  // During replay the journaled outcome is served back without touching the
  // ledger or re-journaling (the restored state already reflects it).
  journal.replay = false;
  EXPECT_FALSE(meter.TryChargeBit(1, 2, -1.0));
  EXPECT_EQ(journal.attempts, 2);
  EXPECT_EQ(journal.charges.size(), 1u);
  EXPECT_EQ(meter.denied_charges(), 1);
}

TEST(PrivacyMeterTest, EncodeDecodeRoundTripsLedger) {
  MeterPolicy policy;
  policy.max_bits_per_value = 4;
  policy.max_bits_per_client = 6;
  policy.max_epsilon_per_client = 10.0;
  PrivacyMeter meter(policy);
  EXPECT_TRUE(meter.TryChargeBit(3, 7, 0.5));
  EXPECT_TRUE(meter.TryChargeBit(3, 8, 0.25));
  EXPECT_TRUE(meter.TryChargeBit(9, 7, 1.0));
  EXPECT_FALSE(meter.TryChargeBit(9, 7, 100.0));  // denied, ledger untouched

  std::vector<uint8_t> blob;
  meter.EncodeTo(&blob);
  PrivacyMeter decoded{MeterPolicy{}};
  size_t offset = 0;
  ASSERT_TRUE(PrivacyMeter::DecodeFrom(blob, &offset, &decoded));
  EXPECT_EQ(offset, blob.size());
  EXPECT_TRUE(decoded.policy() == policy);
  EXPECT_EQ(decoded.total_bits(), 3);
  EXPECT_EQ(decoded.denied_charges(), 1);
  EXPECT_EQ(decoded.ClientBits(3), 2);
  EXPECT_EQ(decoded.ValueBits(9, 7), 1);
  EXPECT_DOUBLE_EQ(decoded.ClientEpsilon(9), 1.0);

  // Canonical form: the restored meter re-encodes to identical bytes.
  std::vector<uint8_t> blob2;
  decoded.EncodeTo(&blob2);
  EXPECT_EQ(blob, blob2);

  // Corruption is rejected: ledger bit sums must reconcile with totals.
  std::vector<uint8_t> corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x40;
  PrivacyMeter sink{MeterPolicy{}};
  offset = 0;
  PrivacyMeter::DecodeFrom(corrupt, &offset, &sink);  // must not crash
}

}  // namespace
}  // namespace bitpush
