// Validates bitpush_lint against the fixture trees under
// tests/golden/lint/. Each tree is a miniature lint root:
//
//   bad/      every check family fires a known number of times, and the
//             waivers present suppress exactly what they claim to.
//   good/     a fully compliant tree (including one budgeted waiver)
//             produces zero findings.
//   fixmode/  mechanically repairable problems; copied to a temp dir and
//             run through --fix, which must leave the copy clean.
//
// A final case lints the real repository tree, so `ctest` itself fails if
// an invariant violation lands without a waiver.

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bitpush_lint/lint.h"

namespace bitpush::lint {
namespace {

namespace fs = std::filesystem;

std::string FixtureRoot(const std::string& tree) {
  return std::string(BITPUSH_LINT_FIXTURE_DIR) + "/" + tree;
}

std::map<Check, int> CountByCheck(const Result& result) {
  std::map<Check, int> counts;
  for (const Finding& finding : result.findings) ++counts[finding.check];
  return counts;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(LintTest, BadTreeFiresEveryCheckFamily) {
  const Result result = RunLint(FixtureRoot("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_EQ(result.files_scanned, 18);

  const std::map<Check, int> counts = CountByCheck(result);
  EXPECT_EQ(counts.at(Check::kDeterminism), 5)
      << FormatReport(result);  // one per banned construct line
  EXPECT_EQ(counts.at(Check::kPrivacyMetering), 3) << FormatReport(result);
  EXPECT_EQ(counts.at(Check::kObsStability), 3) << FormatReport(result);
  EXPECT_EQ(counts.at(Check::kHeaderHygiene), 4) << FormatReport(result);
  // 5 from journal.h's kGhost, 6 from the shard merge.h fixture (encoder
  // without decoder, uncovered message, unreferenced + uncovered kTick,
  // version constant unreferenced + uncovered).
  EXPECT_EQ(counts.at(Check::kWireExhaustiveness), 11)
      << FormatReport(result);
  EXPECT_EQ(counts.at(Check::kWaiverSyntax), 3) << FormatReport(result);
  EXPECT_EQ(result.findings.size(), 29u) << FormatReport(result);
}

TEST(LintTest, ShardLayerMeteringRulesFireAndComply) {
  const Result result = RunLint(FixtureRoot("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;

  // A shard TU that discloses bits without touching the shard-local meter,
  // and a merge-tier TU that charges a meter (cross-shard double
  // metering), each fire exactly once.
  int unmetered_shard = 0;
  int merge_charges = 0;
  for (const Finding& finding : result.findings) {
    if (finding.check != Check::kPrivacyMetering) continue;
    if (finding.path == "src/federated/shard/unmetered_shard.cc") {
      ++unmetered_shard;
      EXPECT_NE(finding.message.find("local_meter"), std::string::npos);
    }
    if (finding.path == "src/federated/shard/merge_meter.cc") {
      ++merge_charges;
      EXPECT_NE(finding.message.find("double-meters"), std::string::npos);
    }
  }
  EXPECT_EQ(unmetered_shard, 1) << FormatReport(result);
  EXPECT_EQ(merge_charges, 1) << FormatReport(result);
  // The good tree's metered_shard.cc (disclosure charged through
  // local_meter) stays silent; GoodTreeIsClean covers it.
}

TEST(LintTest, BadTreeConfinesIntrinsicsHeadersToKernels) {
  const Result result = RunLint(FixtureRoot("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  int intrinsics_findings = 0;
  for (const Finding& finding : result.findings) {
    if (finding.message.find("immintrin.h") == std::string::npos) continue;
    ++intrinsics_findings;
    EXPECT_EQ(finding.path, "src/core/intrinsics_bad.cc");
    EXPECT_EQ(finding.check, Check::kHeaderHygiene);
  }
  // One finding on the stray include; the good tree's src/kernels/lanes.cc
  // shows the sanctioned placement staying silent.
  EXPECT_EQ(intrinsics_findings, 1) << FormatReport(result);
}

TEST(LintTest, BadTreeWaiversSuppressAndEnterTheBudget) {
  const Result result = RunLint(FixtureRoot("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;

  // The two well-formed waivers (file-scoped privacy-metering, line-scoped
  // determinism) are budgeted; the three malformed ones are not.
  ASSERT_EQ(result.waivers.size(), 2u) << FormatWaiverReport(result);
  for (const Finding& finding : result.findings) {
    // privacy_waived.cc is fully covered by its file-scoped waiver, and
    // timer_waived.cc's wall-clock read is covered by its line waiver (its
    // kStable registration is not, but that is an obs-stability finding).
    if (finding.path == "src/core/privacy_waived.cc") {
      FAIL() << "waived file still reported: " << FormatReport(result);
    }
    if (finding.path == "src/core/timer_waived.cc") {
      EXPECT_EQ(finding.check, Check::kObsStability) << FormatReport(result);
    }
  }
  const std::string waiver_report = FormatWaiverReport(result);
  EXPECT_NE(waiver_report.find("allow(privacy-metering)"), std::string::npos);
  EXPECT_NE(waiver_report.find("allow(determinism)"), std::string::npos);
}

TEST(LintTest, BadTreeWireFindingsNameTheGhostRecord) {
  const Result result = RunLint(FixtureRoot("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  int ghost_findings = 0;
  for (const Finding& finding : result.findings) {
    if (finding.check != Check::kWireExhaustiveness) continue;
    if (finding.path != "src/persist/journal.h") continue;
    if (finding.message.find("Ghost") != std::string::npos) ++ghost_findings;
  }
  // kGhost breaks all five wire rules between the enumerator and the
  // orphaned EncodeGhostRecord declaration; kCovered breaks none.
  EXPECT_EQ(ghost_findings, 5) << FormatReport(result);
}

TEST(LintTest, BadTreeShardWireHeaderFiresAllSixNewRules) {
  const Result result = RunLint(FixtureRoot("bad"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  int merge_findings = 0;
  for (const Finding& finding : result.findings) {
    if (finding.path != "src/federated/shard/merge.h") continue;
    EXPECT_EQ(finding.check, Check::kWireExhaustiveness);
    ++merge_findings;
    // The nested Mini::Inner enum is a negative control: harvesting it
    // would be a depth-tracking regression.
    EXPECT_EQ(finding.message.find("kNope"), std::string::npos)
        << finding.message;
    EXPECT_EQ(finding.message.find("Inner"), std::string::npos)
        << finding.message;
  }
  EXPECT_EQ(merge_findings, 6) << FormatReport(result);

  const std::string report = FormatReport(result);
  EXPECT_NE(report.find("EncodeMiniFrame has no matching DecodeMiniFrame"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("wire-section version constant kMiniSectionVersion "
                        "is never referenced"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("wire-section version constant kMiniSectionVersion "
                        "is never exercised"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("enumerator MiniKind::kTick is never referenced"),
            std::string::npos)
      << report;
}

TEST(LintTest, ChecksFilterRestrictsFamiliesButNotWaiverSyntax) {
  Options options;
  options.checks = {Check::kDeterminism};
  const Result result = RunLint(FixtureRoot("bad"), options);
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  const std::map<Check, int> counts = CountByCheck(result);
  EXPECT_EQ(counts.at(Check::kDeterminism), 5);
  EXPECT_EQ(counts.at(Check::kWaiverSyntax), 3);  // always enabled
  EXPECT_EQ(result.findings.size(), 8u) << FormatReport(result);
}

TEST(LintTest, GoodTreeIsCleanWithOneBudgetedWaiver) {
  const Result result = RunLint(FixtureRoot("good"), Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_TRUE(result.findings.empty()) << FormatReport(result);
  EXPECT_EQ(result.waivers.size(), 1u) << FormatWaiverReport(result);
  EXPECT_EQ(result.files_scanned, 9);
}

TEST(LintTest, FixModeRepairsGuardsAndNormalizesWaivers) {
  const fs::path temp =
      fs::path(::testing::TempDir()) / "bitpush_lint_fixmode";
  fs::remove_all(temp);
  fs::copy(FixtureRoot("fixmode"), temp, fs::copy_options::recursive);

  // Pre-fix: a wrong guard, a malformed waiver, and the wall-clock read
  // the waiver fails to suppress.
  const Result before = RunLint(temp.string(), Options{});
  ASSERT_FALSE(before.io_error) << before.io_error_message;
  const std::map<Check, int> counts = CountByCheck(before);
  EXPECT_EQ(counts.at(Check::kHeaderHygiene), 1) << FormatReport(before);
  EXPECT_EQ(counts.at(Check::kWaiverSyntax), 1) << FormatReport(before);
  EXPECT_EQ(counts.at(Check::kDeterminism), 1) << FormatReport(before);

  Options fix_options;
  fix_options.fix = true;
  const Result fixed = RunLint(temp.string(), fix_options);
  ASSERT_FALSE(fixed.io_error) << fixed.io_error_message;
  EXPECT_EQ(fixed.fixed_paths.size(), 2u) << FormatReport(fixed);
  EXPECT_TRUE(fixed.findings.empty()) << FormatReport(fixed);
  EXPECT_EQ(fixed.waivers.size(), 1u) << FormatWaiverReport(fixed);

  const std::string header = ReadFile(temp / "src/core/fix_guard.h");
  EXPECT_NE(header.find("#ifndef BITPUSH_CORE_FIX_GUARD_H_"),
            std::string::npos)
      << header;
  EXPECT_NE(header.find("#endif  // BITPUSH_CORE_FIX_GUARD_H_"),
            std::string::npos)
      << header;
  const std::string waived = ReadFile(temp / "src/core/sloppy_waiver.cc");
  EXPECT_NE(
      waived.find(
          "// bitpush-lint: allow(determinism): fixture exercises waiver "
          "normalization"),
      std::string::npos)
      << waived;

  // Idempotence: a second fix pass changes nothing.
  const Result again = RunLint(temp.string(), fix_options);
  ASSERT_FALSE(again.io_error) << again.io_error_message;
  EXPECT_TRUE(again.fixed_paths.empty()) << FormatReport(again);
  fs::remove_all(temp);
}

TEST(LintTest, MissingRootIsAnIoErrorNotACrash) {
  const Result result = RunLint(FixtureRoot("does_not_exist"), Options{});
  EXPECT_TRUE(result.io_error);
  EXPECT_FALSE(result.io_error_message.empty());
}

// The real tree must stay lint-clean: this is the same gate as the lint
// stage of scripts/check.sh, enforced here so a plain `ctest` run catches
// an unwaived invariant violation too.
TEST(LintTest, RealTreeHasNoUnwaivedViolations) {
  const Result result = RunLint(BITPUSH_LINT_SOURCE_ROOT, Options{});
  ASSERT_FALSE(result.io_error) << result.io_error_message;
  EXPECT_TRUE(result.findings.empty()) << FormatReport(result);
  EXPECT_GT(result.files_scanned, 100) << "lint walked a truncated tree";
}

}  // namespace
}  // namespace bitpush::lint
