#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "federated/secure_agg.h"
#include "rng/rng.h"

namespace bitpush {
namespace {

TEST(SecureAggregatorTest, SumEqualsTrueSum) {
  Rng rng(1);
  const std::vector<uint64_t> values = {3, 0, 1, 1, 0, 7};
  SecureAggregator aggregator(static_cast<int64_t>(values.size()), rng);
  uint64_t expected = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    expected += values[i];
    aggregator.Submit(aggregator.Mask(static_cast<int64_t>(i), values[i]));
  }
  ASSERT_TRUE(aggregator.complete());
  EXPECT_EQ(aggregator.Sum(), expected);
}

TEST(SecureAggregatorTest, MaskedValuesHideIndividualBits) {
  // The server's view of a 0-bit and a 1-bit must be indistinguishable in
  // practice: masked values are full-range, not 0/1.
  Rng rng(2);
  SecureAggregator aggregator(100, rng);
  std::set<uint64_t> seen;
  int tiny = 0;
  for (int64_t i = 0; i < 100; ++i) {
    const uint64_t masked = aggregator.Mask(i, static_cast<uint64_t>(i % 2));
    aggregator.Submit(masked);
    seen.insert(masked);
    if (masked <= 1) ++tiny;
  }
  EXPECT_EQ(seen.size(), 100u);  // all distinct
  EXPECT_LE(tiny, 1);            // masked values are not raw bits
  EXPECT_EQ(aggregator.Sum(), 50u);
}

TEST(SecureAggregatorTest, SingleContributor) {
  // With one contributor the mask must be zero (sum of masks is zero), so
  // the sum is exact.
  Rng rng(3);
  SecureAggregator aggregator(1, rng);
  aggregator.Submit(aggregator.Mask(0, 42));
  EXPECT_EQ(aggregator.Sum(), 42u);
}

TEST(SecureAggregatorTest, DropoutPreventsRecovery) {
  Rng rng(4);
  SecureAggregator aggregator(3, rng);
  aggregator.Submit(aggregator.Mask(0, 1));
  aggregator.Submit(aggregator.Mask(1, 1));
  // Third client drops out.
  EXPECT_FALSE(aggregator.complete());
  EXPECT_DEATH(aggregator.Sum(), "dropouts prevent mask cancellation");
}

TEST(SecureAggregatorTest, PartialSumIsGarbageNotPlaintext) {
  // Even the running sum of a strict subset stays masked: it should not
  // equal the plaintext partial sum (overwhelmingly unlikely).
  Rng rng(5);
  SecureAggregator aggregator(4, rng);
  uint64_t masked_partial = 0;
  masked_partial += aggregator.Mask(0, 2);
  masked_partial += aggregator.Mask(1, 2);
  EXPECT_NE(masked_partial, 4u);
}

TEST(SecureAggregatorTest, LargeCohortSumModulo) {
  Rng rng(6);
  const int64_t n = 5000;
  SecureAggregator aggregator(n, rng);
  for (int64_t i = 0; i < n; ++i) {
    aggregator.Submit(aggregator.Mask(i, 1));
  }
  EXPECT_EQ(aggregator.Sum(), static_cast<uint64_t>(n));
}

TEST(SecureAggregatorDeathTest, MaskSlotReuseAborts) {
  Rng rng(7);
  SecureAggregator aggregator(2, rng);
  aggregator.Mask(0, 1);
  EXPECT_DEATH(aggregator.Mask(0, 1), "mask slot reused");
}

TEST(SecureAggregatorDeathTest, TooManySubmissionsAbort) {
  Rng rng(8);
  SecureAggregator aggregator(1, rng);
  aggregator.Submit(aggregator.Mask(0, 1));
  EXPECT_DEATH(aggregator.Submit(0), "too many submissions");
}

TEST(SecureAggregatorDeathTest, OutOfRangeSlotAborts) {
  Rng rng(9);
  SecureAggregator aggregator(2, rng);
  EXPECT_DEATH(aggregator.Mask(2, 1), "BITPUSH_CHECK failed");
  EXPECT_DEATH(aggregator.Mask(-1, 1), "BITPUSH_CHECK failed");
}

}  // namespace
}  // namespace bitpush
