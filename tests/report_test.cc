#include <gtest/gtest.h>

#include "federated/report.h"

namespace bitpush {
namespace {

TEST(CommunicationStatsTest, DefaultsToZero) {
  const CommunicationStats stats;
  EXPECT_EQ(stats.requests_sent, 0);
  EXPECT_EQ(stats.reports_received, 0);
  EXPECT_EQ(stats.private_bits, 0);
  EXPECT_EQ(stats.payload_bytes, 0);
}

TEST(CommunicationStatsTest, MergeAccumulates) {
  CommunicationStats a;
  a.requests_sent = 10;
  a.reports_received = 8;
  a.private_bits = 8;
  a.payload_bytes = 330;
  CommunicationStats b;
  b.requests_sent = 5;
  b.reports_received = 5;
  b.private_bits = 5;
  b.payload_bytes = 175;
  a.MergeFrom(b);
  EXPECT_EQ(a.requests_sent, 15);
  EXPECT_EQ(a.reports_received, 13);
  EXPECT_EQ(a.private_bits, 13);
  EXPECT_EQ(a.payload_bytes, 505);
}

TEST(PayloadModelTest, OneBitRidesInASmallPacket) {
  // Section 5: "the distinction between sending a single bit versus a few
  // numeric values is not so meaningful: both can be easily communicated
  // within a single (encrypted) network packet". The report payload is
  // dominated by header overhead, not the private bit.
  EXPECT_GT(RequestPayloadBytes(), 8);
  EXPECT_LT(RequestPayloadBytes(), 64);
  EXPECT_GT(ReportPayloadBytes(), 1);
  EXPECT_LT(ReportPayloadBytes(), 64);
}

}  // namespace
}  // namespace bitpush
