#include "obs/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace bitpush::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  BITPUSH_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be sorted ascending";
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  // First bound >= value is the "le" bucket; past-the-end is overflow.
  const size_t index = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (std::atomic<int64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Entry* Registry::FindOrNull(std::string_view name) {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              Determinism determinism) {
  const util::MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name)) {
    BITPUSH_CHECK(entry->info.kind == InstrumentKind::kCounter)
        << "instrument " << std::string(name) << " re-registered as counter";
    BITPUSH_CHECK(entry->info.determinism == determinism)
        << "instrument " << std::string(name)
        << " re-registered with a different determinism tag";
    return entry->counter.get();
  }
  Entry& entry = entries_[std::string(name)];
  entry.info = {std::string(name), std::string(help),
                InstrumentKind::kCounter, determinism};
  entry.counter.reset(new Counter());
  return entry.counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          Determinism determinism) {
  const util::MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name)) {
    BITPUSH_CHECK(entry->info.kind == InstrumentKind::kGauge)
        << "instrument " << std::string(name) << " re-registered as gauge";
    BITPUSH_CHECK(entry->info.determinism == determinism)
        << "instrument " << std::string(name)
        << " re-registered with a different determinism tag";
    return entry->gauge.get();
  }
  Entry& entry = entries_[std::string(name)];
  entry.info = {std::string(name), std::string(help), InstrumentKind::kGauge,
                determinism};
  entry.gauge.reset(new Gauge());
  return entry.gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view help,
                                  std::vector<double> bounds,
                                  Determinism determinism) {
  const util::MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name)) {
    BITPUSH_CHECK(entry->info.kind == InstrumentKind::kHistogram)
        << "instrument " << std::string(name) << " re-registered as histogram";
    BITPUSH_CHECK(entry->info.determinism == determinism)
        << "instrument " << std::string(name)
        << " re-registered with a different determinism tag";
    BITPUSH_CHECK(entry->histogram->bounds() == bounds)
        << "instrument " << std::string(name)
        << " re-registered with different bounds";
    return entry->histogram.get();
  }
  Entry& entry = entries_[std::string(name)];
  entry.info = {std::string(name), std::string(help),
                InstrumentKind::kHistogram, determinism};
  entry.histogram.reset(new Histogram(std::move(bounds)));
  return entry.histogram.get();
}

void Registry::Reset() {
  const util::MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

void Registry::Visit(
    const std::function<void(const InstrumentInfo&, const Counter*,
                             const Gauge*, const Histogram*)>& visitor) const {
  const util::MutexLock lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    visitor(entry.info, entry.counter.get(), entry.gauge.get(),
            entry.histogram.get());
  }
}

size_t Registry::size() const {
  const util::MutexLock lock(mutex_);
  return entries_.size();
}

std::vector<double> LatencySecondsBounds() {
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3,
          2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,
          5.0,  10.0};
}

std::vector<double> SimMinutesBounds() {
  return {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0, 120.0, 240.0, 480.0};
}

std::vector<double> BytesBounds() {
  return {64.0,    256.0,    1024.0,    4096.0,    16384.0,
          65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0};
}

}  // namespace bitpush::obs
