#include "obs/trace.h"

#include <functional>
#include <thread>

namespace bitpush::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(SpanRecord record) {
  const util::MutexLock lock(mutex_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  const util::MutexLock lock(mutex_);
  return spans_;
}

int64_t Tracer::span_count() const {
  const util::MutexLock lock(mutex_);
  return static_cast<int64_t>(spans_.size());
}

void Tracer::Reset() {
  const util::MutexLock lock(mutex_);
  spans_.clear();
}

int64_t Tracer::NowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

int64_t Tracer::NextSpanId() {
  static std::atomic<int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Span::Span(std::string_view name, std::string_view category) {
  if (!TracingEnabled()) return;
  active_ = true;
  record_.name = std::string(name);
  record_.category = std::string(category);
  record_.span_id = Tracer::NextSpanId();
  record_.trace_id = record_.span_id;  // a root starts its own trace
  record_.thread_id = static_cast<uint64_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  record_.wall_start_us = Tracer::NowMicros();
}

Span::~Span() { End(); }

void Span::set_ids(int64_t tick, int64_t query_index, int64_t round_id) {
  if (!active_) return;
  record_.tick = tick;
  record_.query_index = query_index;
  record_.round_id = round_id;
}

void Span::set_sim_minutes(double minutes) {
  if (!active_) return;
  record_.sim_minutes = minutes;
  record_.has_sim_minutes = true;
}

void Span::set_parent(const TraceContext& parent) {
  if (!active_ || !parent.valid()) return;
  record_.trace_id = parent.trace_id;
  record_.parent_span_id = parent.span_id;
}

TraceContext Span::context() const {
  if (!active_) return TraceContext{};
  return TraceContext{record_.trace_id, record_.span_id};
}

void Span::AddNumeric(std::string_view key, double value) {
  if (!active_) return;
  record_.numeric_args.emplace_back(std::string(key), value);
}

void Span::AddString(std::string_view key, std::string_view value) {
  if (!active_) return;
  record_.string_args.emplace_back(std::string(key), std::string(value));
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  record_.wall_duration_us = Tracer::NowMicros() - record_.wall_start_us;
  Tracer::Default().Record(std::move(record_));
}

}  // namespace bitpush::obs
