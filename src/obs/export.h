// Exporters for the obs registry and tracer.
//
//  - PrometheusText: the Prometheus text exposition format (# HELP/# TYPE
//    plus one line per sample; histograms expand to _bucket{le=...}/_sum/
//    _count). Every metric carries a determinism="stable|volatile" label.
//  - MetricsJsonl: one JSON object per line per instrument — the
//    machine-readable dump for the BENCH_*/metrics trajectory.
//  - DeterministicMetricsSnapshot: kStable instruments only, canonical
//    formatting (%.17g doubles, name order). Two runs of the same seeded
//    campaign — including a crash-recovered rerun — must produce
//    byte-identical snapshots; tests/determinism_test.cc enforces this.
//  - ChromeTraceJson: the tracer's spans as Chrome trace-event JSON
//    ("X" complete events), loadable in Perfetto / chrome://tracing. Wall
//    clock drives ts/dur; the simulated clock and hierarchy ids ride in
//    each event's args.

#ifndef BITPUSH_OBS_EXPORT_H_
#define BITPUSH_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bitpush::obs {

std::string PrometheusText(const Registry& registry = Registry::Default());

std::string MetricsJsonl(const Registry& registry = Registry::Default());

std::string DeterministicMetricsSnapshot(
    const Registry& registry = Registry::Default());

std::string ChromeTraceJson(const Tracer& tracer = Tracer::Default());

// Writes `content` to `path` ("-" means stdout). Returns false and fills
// `*error` (if non-null) on failure.
bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error);

// JSON string escaping for the exporters (quotes not included).
std::string JsonEscape(std::string_view text);

// Minimal JSON well-formedness check (syntax only: values, objects,
// arrays, strings with escapes, numbers). Used by the exporter self-tests
// and scripts/check.sh to validate trace output without an external
// parser. Fills `*error` (if non-null) with a position-stamped message.
bool JsonIsWellFormed(std::string_view text, std::string* error);

}  // namespace bitpush::obs

#endif  // BITPUSH_OBS_EXPORT_H_
