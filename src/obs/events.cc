#include "obs/events.h"

#include <cstdio>
#include <utility>

#include "obs/export.h"
#include "util/check.h"

namespace bitpush::obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRoundOutcome:
      return "round_outcome";
    case EventType::kShardLost:
      return "shard_lost";
    case EventType::kShardRecovered:
      return "shard_recovered";
    case EventType::kQuorumDegraded:
      return "quorum_degraded";
    case EventType::kMeterCharge:
      return "meter_charge";
    case EventType::kMeterDenial:
      return "meter_denial";
    case EventType::kRetryStorm:
      return "retry_storm";
    case EventType::kBreakerTransition:
      return "breaker_transition";
    case EventType::kReplayMilestone:
      return "replay_milestone";
    case EventType::kAlertFired:
      return "alert_fired";
    case EventType::kAlertResolved:
      return "alert_resolved";
  }
  return "unknown";
}

EventRecorder& EventRecorder::Default() {
  static EventRecorder* recorder = new EventRecorder();  // leaked singleton
  return *recorder;
}

void EventRecorder::Emit(EventType type, Determinism determinism,
                         EventArgs args) {
  const util::MutexLock lock(mutex_);
  Ring& r = ring(determinism);
  EventRecord record;
  record.seq = r.next_seq++;
  record.type = type;
  record.determinism = determinism;
  record.args = std::move(args);
  if (r.entries.size() >= capacity_) {
    r.entries.erase(r.entries.begin());
    ++r.dropped;
  }
  r.entries.push_back(std::move(record));
}

std::vector<EventRecord> EventRecorder::Snapshot(
    Determinism determinism) const {
  const util::MutexLock lock(mutex_);
  return ring(determinism).entries;
}

std::vector<EventRecord> EventRecorder::SnapshotAll() const {
  const util::MutexLock lock(mutex_);
  std::vector<EventRecord> out = stable_.entries;
  out.insert(out.end(), volatile_.entries.begin(), volatile_.entries.end());
  return out;
}

int64_t EventRecorder::dropped(Determinism determinism) const {
  const util::MutexLock lock(mutex_);
  return ring(determinism).dropped;
}

int64_t EventRecorder::emitted(Determinism determinism) const {
  const util::MutexLock lock(mutex_);
  return ring(determinism).next_seq;
}

void EventRecorder::SetCapacity(size_t capacity) {
  BITPUSH_CHECK_GE(capacity, 1u);
  const util::MutexLock lock(mutex_);
  capacity_ = capacity;
  for (Ring* r : {&stable_, &volatile_}) {
    while (r->entries.size() > capacity_) {
      r->entries.erase(r->entries.begin());
      ++r->dropped;
    }
  }
}

size_t EventRecorder::capacity() const {
  const util::MutexLock lock(mutex_);
  return capacity_;
}

void EventRecorder::Reset() {
  const util::MutexLock lock(mutex_);
  stable_ = Ring{};
  volatile_ = Ring{};
}

void EmitEvent(EventType type, Determinism determinism, EventArgs args) {
  if (!Enabled()) return;
  EventRecorder::Default().Emit(type, determinism, std::move(args));
}

std::string FormatStableDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

namespace {

void AppendEventJson(const EventRecord& record, std::string* out) {
  *out += "{\"seq\":" + std::to_string(record.seq) + ",\"type\":\"";
  *out += EventTypeName(record.type);
  *out += "\",\"determinism\":\"";
  *out += record.determinism == Determinism::kStable ? "stable" : "volatile";
  *out += "\"";
  const EventArgs& args = record.args;
  if (args.tick >= 0) *out += ",\"tick\":" + std::to_string(args.tick);
  if (args.query_index >= 0) {
    *out += ",\"query\":" + std::to_string(args.query_index);
  }
  if (args.round_id >= 0) {
    *out += ",\"round\":" + std::to_string(args.round_id);
  }
  if (args.shard >= 0) *out += ",\"shard\":" + std::to_string(args.shard);
  if (args.has_sim_minutes) {
    *out += ",\"sim_minutes\":" + FormatStableDouble(args.sim_minutes);
  }
  if (!args.detail.empty()) {
    *out += ",\"detail\":\"" + JsonEscape(args.detail) + "\"";
  }
  *out += "}\n";
}

}  // namespace

std::string EventsJsonl(const EventRecorder& recorder) {
  std::string out;
  for (const Determinism d :
       {Determinism::kStable, Determinism::kVolatile}) {
    for (const EventRecord& record : recorder.Snapshot(d)) {
      AppendEventJson(record, &out);
    }
  }
  return out;
}

std::string DeterministicEventsSnapshot(const EventRecorder& recorder) {
  std::string out = "# bitpush deterministic events snapshot v1\n";
  const int64_t dropped = recorder.dropped(Determinism::kStable);
  if (dropped > 0) {
    // A truncated stable stream can no longer be compared byte-for-byte
    // from seq 0; say so in the snapshot instead of silently starting in
    // the middle.
    out += "# dropped " + std::to_string(dropped) + " oldest stable events\n";
  }
  for (const EventRecord& record :
       recorder.Snapshot(Determinism::kStable)) {
    out += "event " + std::to_string(record.seq) + " ";
    out += EventTypeName(record.type);
    const EventArgs& args = record.args;
    if (args.tick >= 0) out += " tick=" + std::to_string(args.tick);
    if (args.query_index >= 0) {
      out += " query=" + std::to_string(args.query_index);
    }
    if (args.round_id >= 0) {
      out += " round=" + std::to_string(args.round_id);
    }
    if (args.shard >= 0) out += " shard=" + std::to_string(args.shard);
    if (args.has_sim_minutes) {
      out += " minutes=" + FormatStableDouble(args.sim_minutes);
    }
    if (!args.detail.empty()) out += " " + args.detail;
    out += "\n";
  }
  return out;
}

}  // namespace bitpush::obs
