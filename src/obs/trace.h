// Structured span tracing over the coordinator's execution hierarchy:
//
//   campaign tick
//     └── query (one scheduled CampaignQuery)
//           └── round (1 = probe, 2 = adaptive)
//                 ├── assign/collect (per-round transport phases)
//                 └── aggregate
//   journal / snapshot / recovery (persist-layer spans, outside the
//   campaign hierarchy)
//
// Every span carries dual clocks. The wall clock (steady_clock
// microseconds since the tracer epoch) orders spans for humans and for the
// Chrome trace-event export; it is kVolatile — excluded from determinism
// comparisons. The simulated LatencyModel clock (minutes, attached via
// set_sim_minutes) is deterministic and seed-replay-invariant; it rides in
// the span's args.
//
// Tracing has its own enable switch, separate from metrics: spans allocate
// strings and append to a shared buffer, so they are opt-in (--trace_out)
// while metrics can stay on. A disabled Span constructs inert: no clock
// read, no strings, no lock.

#ifndef BITPUSH_OBS_TRACE_H_
#define BITPUSH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace bitpush::obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}
void SetTracingEnabled(bool enabled);

// Propagatable trace context: the (trace, span) coordinates a parent span
// hands to work it fans out — across call stacks or across the shard wire
// (ShardTickFrame carries one so merge-tier spans parent per-shard spans;
// see federated/shard/merge.h). Ids are positive; zero means unset.
struct TraceContext {
  int64_t trace_id = 0;
  int64_t span_id = 0;
  bool valid() const { return trace_id > 0 && span_id > 0; }
};

// One completed span, ready for export.
struct SpanRecord {
  std::string name;
  std::string category;
  // Trace hierarchy: ids are process-unique positive integers allocated at
  // span start; parent_span_id = 0 marks a root span. A span with no
  // explicit parent starts its own trace (trace_id == span_id).
  int64_t trace_id = 0;
  int64_t span_id = 0;
  int64_t parent_span_id = 0;
  // Hierarchy coordinates; negative means unset. Exported as args.
  int64_t tick = -1;
  int64_t query_index = -1;
  int64_t round_id = -1;
  // Simulated-clock duration in LatencyModel minutes (deterministic).
  // Exported as an arg, never as the trace timestamp.
  double sim_minutes = 0.0;
  bool has_sim_minutes = false;
  // Wall clock, microseconds relative to the tracer epoch (kVolatile).
  int64_t wall_start_us = 0;
  int64_t wall_duration_us = 0;
  uint64_t thread_id = 0;
  // Extra args: numeric (exported as JSON numbers) and string.
  std::vector<std::pair<std::string, double>> numeric_args;
  std::vector<std::pair<std::string, std::string>> string_args;
};

// Collects completed spans. Thread-safe: concurrent_server workers may
// finish spans in parallel.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Default();

  void Record(SpanRecord record);
  std::vector<SpanRecord> Snapshot() const;
  int64_t span_count() const;
  void Reset();

  // Microseconds since the process-wide tracer epoch (first use).
  static int64_t NowMicros();

  // Next process-unique positive span id.
  static int64_t NextSpanId();

 private:
  mutable util::Mutex mutex_;
  std::vector<SpanRecord> spans_ BITPUSH_GUARDED_BY(mutex_);
};

// RAII span: starts timing at construction, records into the default
// tracer at End() (or destruction). Inert when tracing is disabled.
class Span {
 public:
  Span(std::string_view name, std::string_view category);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_ids(int64_t tick, int64_t query_index, int64_t round_id);
  void set_sim_minutes(double minutes);
  // Parents this span under `parent` (adopting its trace id). A no-op when
  // the span is inert or `parent` is invalid, so contexts decoded off the
  // wire can be passed through unconditionally.
  void set_parent(const TraceContext& parent);
  void AddNumeric(std::string_view key, double value);
  void AddString(std::string_view key, std::string_view value);
  void End();

  // This span's propagatable context ({0, 0} when tracing is disabled).
  TraceContext context() const;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  SpanRecord record_;
};

}  // namespace bitpush::obs

#endif  // BITPUSH_OBS_TRACE_H_
