// Coordinator observability: a process-wide metrics registry of monotonic
// counters, gauges, and fixed-bucket histograms. The paper's deployment
// section (4.3) notes that server-side counters are the only debuggable
// artifact of a private collection — raw reports cannot be inspected — so
// every layer of the coordinator publishes its execution trail here.
//
// Determinism contract: each instrument is tagged kStable or kVolatile.
// kStable instruments are derived purely from the seeded simulation
// (cohorts, rounds, reports, the simulated LatencyModel clock, meter
// charges) and must be byte-identical across (a) two runs of the same
// seeded campaign and (b) a crash-recovered rerun of that campaign.
// kVolatile instruments may depend on wall clock, thread schedule, or
// process-local I/O (journal bytes, replay progress, scoped-timer
// latencies) and are excluded from determinism comparisons — the
// DeterministicMetricsSnapshot exporter (obs/export.h) drops them.
//
// Cost model: all mutating calls check the global enabled flag (one
// relaxed atomic load) and return immediately when observability is off,
// so instrumented hot paths stay within the <2% overhead budget enforced
// by bench_micro_throughput. Instruments are plain atomics — safe for
// concurrent_server's worker threads.
//
// Lifetime: the registry owns every instrument forever. Call sites cache
// the returned pointer in a function-local static; Reset() zeroes values
// but never deletes instruments, so cached pointers stay valid across
// tests.

#ifndef BITPUSH_OBS_METRICS_H_
#define BITPUSH_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace bitpush::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Global enable switch. Off by default: an uninstrumented binary pays one
// relaxed load per call site and nothing else.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

enum class Determinism {
  // Seed-replay-invariant and recovery-exact: included in the
  // deterministic snapshot.
  kStable,
  // Wall clock / thread schedule / process-local I/O: exporters label it,
  // determinism comparisons drop it.
  kVolatile,
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

// Monotonic counter. Negative deltas are ignored (counters never regress).
class Counter {
 public:
  void Add(int64_t delta) {
    if (!Enabled() || delta <= 0) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

// Last-write-wins gauge (plus Add for up/down adjustments).
class Gauge {
 public:
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with Prometheus "le" (less-or-equal) semantics:
// bucket i counts observations <= bounds[i]; one extra overflow bucket
// (le = +Inf) catches the rest. Bounds are fixed at registration.
class Histogram {
 public:
  void Observe(double value);

  // bounds().size() + 1 buckets; the last is the +Inf overflow bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_value(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct InstrumentInfo {
  std::string name;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  Determinism determinism = Determinism::kStable;
};

// Thread-safe instrument registry. Get* registers on first use and returns
// the existing instrument afterwards (name, kind, determinism, and
// histogram bounds must match the first registration — a mismatch aborts,
// it is a programming error). Iteration is in name order so exports are
// canonical.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Default();

  Counter* GetCounter(std::string_view name, std::string_view help,
                      Determinism determinism);
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Determinism determinism);
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, Determinism determinism);

  // Zeroes every instrument's value. Instruments themselves are never
  // removed: call sites hold cached pointers into the registry.
  void Reset();

  // Visits instruments in name order. Exactly one of counter/gauge/
  // histogram is non-null per call, matching info.kind.
  void Visit(const std::function<void(const InstrumentInfo& info,
                                      const Counter* counter,
                                      const Gauge* gauge,
                                      const Histogram* histogram)>& visitor)
      const;

  size_t size() const;

 private:
  struct Entry {
    InstrumentInfo info;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(std::string_view name) BITPUSH_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_
      BITPUSH_GUARDED_BY(mutex_);
};

// Wall-clock scoped timer feeding a histogram in seconds. When
// observability is disabled the constructor skips the clock read entirely,
// so a disabled timer costs one relaxed load at construction and one at
// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) {
    if (histogram == nullptr || !Enabled()) return;
    histogram_ = histogram;
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr || !Enabled()) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    histogram_->Observe(elapsed.count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

// Default bucket bounds (seconds) for wall-clock latency histograms:
// 1us .. ~10s in powers of 10 with 1-2-5 steps.
std::vector<double> LatencySecondsBounds();

// Default bucket bounds for simulated-clock durations (minutes).
std::vector<double> SimMinutesBounds();

// Default bucket bounds for payload sizes (bytes).
std::vector<double> BytesBounds();

}  // namespace bitpush::obs

#endif  // BITPUSH_OBS_METRICS_H_
