// Flight recorder: a bounded ring of typed structured events — the
// coordinator's black box. Where the metrics registry (obs/metrics.h)
// answers "how many", the event ring answers "what happened, in order":
// round outcomes, shard losses and recoveries, quorum degradation, meter
// charges and denials, retry storms, breaker transitions, journal replay
// milestones, and alert transitions.
//
// Determinism contract: every event carries the same kStable/kVolatile
// tag as the metrics registry. kStable events are derived purely from the
// seeded simulation and are emitted at exactly-once points shared by the
// live, journal-restored, and recovery-replay paths — so a crash-recovered
// campaign reproduces the stable event stream byte-for-byte
// (DeterministicEventsSnapshot; pinned by tests/determinism_test.cc).
// kVolatile events (replay milestones, shard delivery, journal growth) may
// differ run to run and live in a separate ring so volatile spam can never
// evict or reorder a stable event.
//
// Cost model: EmitEvent checks obs::Enabled() (one relaxed atomic load)
// and returns immediately when observability is off; the enabled path is
// one mutex acquisition plus a ring-slot move. bench_micro_throughput's
// obs-overhead guard covers both paths.
//
// Lifetime: EventRecorder::Default() is a leaked process-wide singleton,
// mirroring Registry::Default(). Reset() clears the rings and counters but
// the recorder itself is never destroyed.

#ifndef BITPUSH_OBS_EVENTS_H_
#define BITPUSH_OBS_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace bitpush::obs {

enum class EventType {
  kRoundOutcome,
  kShardLost,
  kShardRecovered,
  kQuorumDegraded,
  kMeterCharge,
  kMeterDenial,
  kRetryStorm,
  kBreakerTransition,
  kReplayMilestone,
  kAlertFired,
  kAlertResolved,
};

const char* EventTypeName(EventType type);

// Structured payload of one event. Unset coordinate fields stay at their
// sentinel (-1) and are omitted by the exporters.
struct EventArgs {
  int64_t tick = -1;
  int64_t query_index = -1;
  int64_t round_id = -1;
  int64_t shard = -1;
  // Simulated-clock minutes; exported when `has_sim_minutes` is set.
  double sim_minutes = 0.0;
  bool has_sim_minutes = false;
  // Free-form detail, e.g. "granted bits=12" or an alert rule name. Must
  // itself be deterministic for kStable events (no pointers, no wall
  // clock, canonical %.17g for doubles — see FormatStableDouble).
  std::string detail;
};

struct EventRecord {
  // Per-determinism-class monotonic sequence number, assigned at emission.
  int64_t seq = 0;
  EventType type = EventType::kRoundOutcome;
  Determinism determinism = Determinism::kStable;
  EventArgs args;
};

// Bounded dual-ring event recorder. Stable and volatile events are kept in
// separate rings with separate sequence counters: the stable stream's
// byte-identical replay guarantee must hold no matter how much volatile
// traffic (replay milestones, per-tick shard events) a recovered run adds.
class EventRecorder {
 public:
  EventRecorder() = default;
  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;

  static EventRecorder& Default();

  void Emit(EventType type, Determinism determinism, EventArgs args);

  // Oldest-first copy of one ring.
  std::vector<EventRecord> Snapshot(Determinism determinism) const;
  // Oldest-first copy of both rings, stable ring first.
  std::vector<EventRecord> SnapshotAll() const;

  // Events emitted into a full ring evict the oldest entry; the eviction
  // count per ring is kept so exports can say "N older events dropped".
  int64_t dropped(Determinism determinism) const;
  // Total events ever emitted into a ring (== next seq).
  int64_t emitted(Determinism determinism) const;

  // Per-ring capacity. Shrinking drops the oldest entries (counted as
  // dropped). Capacity 0 is rejected.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  // Clears both rings and zeroes the sequence/dropped counters.
  void Reset();

 private:
  struct Ring {
    std::vector<EventRecord> entries;  // oldest-first
    int64_t next_seq = 0;
    int64_t dropped = 0;
  };

  Ring& ring(Determinism determinism) BITPUSH_REQUIRES(mutex_) {
    return determinism == Determinism::kStable ? stable_ : volatile_;
  }
  const Ring& ring(Determinism determinism) const BITPUSH_REQUIRES(mutex_) {
    return determinism == Determinism::kStable ? stable_ : volatile_;
  }

  mutable util::Mutex mutex_;
  size_t capacity_ BITPUSH_GUARDED_BY(mutex_) = 4096;
  Ring stable_ BITPUSH_GUARDED_BY(mutex_);
  Ring volatile_ BITPUSH_GUARDED_BY(mutex_);
};

// Emission entry point used by instrumented call sites. The determinism
// tag is spelled at the call site (never inside a helper) so
// bitpush_lint's obs-stability check can see it. No-op when obs is
// disabled.
void EmitEvent(EventType type, Determinism determinism, EventArgs args);

// Canonical %.17g formatting for doubles embedded in kStable event
// details — the same canonicalization DeterministicMetricsSnapshot uses.
std::string FormatStableDouble(double value);

// Exporters (declared here rather than obs/export.h so event consumers
// need only this header; implemented in events.cc).
//
// EventsJsonl: one JSON object per line per event, both rings, stable
// ring first. Machine-readable dump for --events_out and bitpush_doctor.
std::string EventsJsonl(const EventRecorder& recorder =
                            EventRecorder::Default());

// DeterministicEventsSnapshot: the stable ring only, canonical text form.
// Two runs of the same seeded campaign — including a crash-recovered
// rerun — must produce byte-identical snapshots.
std::string DeterministicEventsSnapshot(
    const EventRecorder& recorder = EventRecorder::Default());

}  // namespace bitpush::obs

#endif  // BITPUSH_OBS_EVENTS_H_
