#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace bitpush::obs {
namespace {

// Canonical double formatting for determinism-sensitive output: %.17g
// round-trips every finite double to the same bytes on every run.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Short form for histogram bucket bounds (they are registered constants,
// not computed values, so %g is stable).
std::string FormatBound(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

const char* KindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const char* DeterminismName(Determinism determinism) {
  return determinism == Determinism::kStable ? "stable" : "volatile";
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusText(const Registry& registry) {
  std::string out;
  registry.Visit([&](const InstrumentInfo& info, const Counter* counter,
                     const Gauge* gauge, const Histogram* histogram) {
    out += "# HELP " + info.name + " " + info.help + "\n";
    out += "# TYPE " + info.name + " ";
    out += KindName(info.kind);
    out += "\n";
    const std::string label =
        std::string("{determinism=\"") + DeterminismName(info.determinism) +
        "\"}";
    if (counter != nullptr) {
      out += info.name + label + " " + std::to_string(counter->value()) + "\n";
    } else if (gauge != nullptr) {
      out += info.name + label + " " + FormatDouble(gauge->value()) + "\n";
    } else if (histogram != nullptr) {
      const std::string prefix = std::string("{determinism=\"") +
                                 DeterminismName(info.determinism) +
                                 "\",le=\"";
      int64_t cumulative = 0;
      for (size_t i = 0; i < histogram->bounds().size(); ++i) {
        cumulative += histogram->bucket_value(i);
        out += info.name + "_bucket" + prefix +
               FormatBound(histogram->bounds()[i]) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += histogram->bucket_value(histogram->bounds().size());
      out += info.name + "_bucket" + prefix + "+Inf\"} " +
             std::to_string(cumulative) + "\n";
      out += info.name + "_sum" + label + " " +
             FormatDouble(histogram->sum()) + "\n";
      out += info.name + "_count" + label + " " +
             std::to_string(histogram->count()) + "\n";
    }
  });
  return out;
}

std::string MetricsJsonl(const Registry& registry) {
  std::string out;
  registry.Visit([&](const InstrumentInfo& info, const Counter* counter,
                     const Gauge* gauge, const Histogram* histogram) {
    std::string line = "{\"name\":\"" + JsonEscape(info.name) +
                       "\",\"kind\":\"" + KindName(info.kind) +
                       "\",\"determinism\":\"" +
                       DeterminismName(info.determinism) + "\",\"help\":\"" +
                       JsonEscape(info.help) + "\"";
    if (counter != nullptr) {
      line += ",\"value\":" + std::to_string(counter->value());
    } else if (gauge != nullptr) {
      line += ",\"value\":" + FormatDouble(gauge->value());
    } else if (histogram != nullptr) {
      line += ",\"count\":" + std::to_string(histogram->count());
      line += ",\"sum\":" + FormatDouble(histogram->sum());
      line += ",\"buckets\":[";
      for (size_t i = 0; i <= histogram->bounds().size(); ++i) {
        if (i > 0) line += ",";
        line += "{\"le\":";
        if (i < histogram->bounds().size()) {
          line += FormatBound(histogram->bounds()[i]);
        } else {
          line += "\"+Inf\"";
        }
        line += ",\"count\":" + std::to_string(histogram->bucket_value(i)) +
                "}";
      }
      line += "]";
    }
    line += "}\n";
    out += line;
  });
  return out;
}

std::string DeterministicMetricsSnapshot(const Registry& registry) {
  std::string out = "# bitpush deterministic metrics snapshot v1\n";
  registry.Visit([&](const InstrumentInfo& info, const Counter* counter,
                     const Gauge* gauge, const Histogram* histogram) {
    if (info.determinism != Determinism::kStable) return;
    if (counter != nullptr) {
      out += "counter " + info.name + " " + std::to_string(counter->value()) +
             "\n";
    } else if (gauge != nullptr) {
      out += "gauge " + info.name + " " + FormatDouble(gauge->value()) + "\n";
    } else if (histogram != nullptr) {
      out += "histogram " + info.name +
             " count=" + std::to_string(histogram->count()) +
             " sum=" + FormatDouble(histogram->sum()) + " buckets=";
      for (size_t i = 0; i <= histogram->bounds().size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(histogram->bucket_value(i));
      }
      out += "\n";
    }
  });
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"" +
           JsonEscape(span.category) + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(span.wall_start_us) +
           ",\"dur\":" + std::to_string(span.wall_duration_us) +
           ",\"pid\":1,\"tid\":" +
           std::to_string(span.thread_id % 1000000) + ",\"args\":{";
    bool first_arg = true;
    const auto add_arg = [&](const std::string& body) {
      if (!first_arg) out += ",";
      first_arg = false;
      out += body;
    };
    if (span.trace_id > 0) {
      add_arg("\"trace\":" + std::to_string(span.trace_id));
    }
    if (span.span_id > 0) add_arg("\"span\":" + std::to_string(span.span_id));
    if (span.parent_span_id > 0) {
      add_arg("\"parent\":" + std::to_string(span.parent_span_id));
    }
    if (span.tick >= 0) add_arg("\"tick\":" + std::to_string(span.tick));
    if (span.query_index >= 0) {
      add_arg("\"query\":" + std::to_string(span.query_index));
    }
    if (span.round_id >= 0) {
      add_arg("\"round\":" + std::to_string(span.round_id));
    }
    if (span.has_sim_minutes) {
      add_arg("\"sim_minutes\":" + FormatDouble(span.sim_minutes));
    }
    for (const auto& [key, value] : span.numeric_args) {
      std::string body = "\"";
      body += JsonEscape(key);
      body += "\":";
      body += FormatDouble(value);
      add_arg(body);
    }
    for (const auto& [key, value] : span.string_args) {
      std::string body = "\"";
      body += JsonEscape(key);
      body += "\":\"";
      body += JsonEscape(value);
      body += "\"";
      add_arg(body);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

namespace {

// Minimal recursive-descent JSON syntax checker.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Check(std::string* error) {
    SkipWhitespace();
    if (!Value(0)) {
      if (error != nullptr) {
        *error = "invalid JSON near offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing content at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Value(int depth) {
    if (depth > kMaxDepth) return false;
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!String()) return false;
      SkipWhitespace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWhitespace();
      if (!Value(depth + 1)) return false;
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!Value(depth + 1)) return false;
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !IsHex(text_[pos_])) return false;
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!IsDigit(Peek())) return false;
    while (IsDigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!IsDigit(Peek())) return false;
      while (IsDigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!IsDigit(Peek())) return false;
      while (IsDigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) return false;
    pos_ += len;
    return true;
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }
  static bool IsHex(char c) {
    return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonIsWellFormed(std::string_view text, std::string* error) {
  return JsonChecker(text).Check(error);
}

}  // namespace bitpush::obs
