// Declarative in-process alert engine, evaluated on the simulated clock.
// The paper's deployment framing (§4.3) makes server-side telemetry the
// only debuggable artifact of a private collection; the alert engine is
// the layer an operator would actually page on, evaluated per campaign
// tick (or per monitor window) with a firing/resolved lifecycle:
//
//   privacy_burn_rate    — budget burn with time-to-exhaustion projection
//   retry_storm          — retry-layer scheduling spike within one tick
//   shard_quorum_at_risk — delivered shards at or below the quorum margin
//   journal_growth       — write-ahead journal past its record threshold
//   recovery_divergence  — torn tail / replay anomaly observed (latched)
//
// Determinism contract: each rule carries the metrics registry's
// kStable/kVolatile tag (AlertRuleDeterminism). kStable rules consume only
// recovery-stable inputs (DurableCampaignRunner::meter_by_tick()), so
// their transition log — the fired-alert timeline — is byte-identical
// across a clean run, a rerun, and a crash-recovered rerun of the same
// seeded campaign (AlertTimelineText; pinned by tests/determinism_test.cc
// and a golden under tests/golden/). kVolatile rules may depend on
// process-local state (live retry counters, journal length, delivery
// schedules) and are excluded from the deterministic timeline.
//
// Every evaluation refreshes the Prometheus `bitpush_alert_state_<rule>`
// gauge family (1 = firing) and every transition emits a kAlertFired /
// kAlertResolved flight-recorder event (obs/events.h). The transition
// events are tagged kVolatile even for kStable rules: their position in
// the event stream relative to replayed round/meter events shifts under
// recovery, so the byte-stable timeline artifact is the engine's own log,
// not the ring.

#ifndef BITPUSH_OBS_ALERTS_H_
#define BITPUSH_OBS_ALERTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bitpush::obs {

enum class AlertRule {
  kPrivacyBurnRate,
  kRetryStorm,
  kShardQuorumAtRisk,
  kJournalGrowth,
  kRecoveryDivergence,
};

inline constexpr int kAlertRuleCount = 5;

const char* AlertRuleName(AlertRule rule);
Determinism AlertRuleDeterminism(AlertRule rule);

struct AlertConfig {
  // privacy_burn_rate fires when the projected ticks-to-exhaustion at the
  // current per-tick burn rate drops to this horizon (or any charge is
  // denied); it resolves on the first tick with no new spend and no new
  // denials.
  double burn_rate_horizon_ticks = 2.0;
  // retry_storm fires when one tick schedules at least this many retries.
  int64_t retry_storm_threshold = 8;
  // journal_growth fires when the journal reaches this many records.
  int64_t journal_growth_threshold = 100000;
  // shard_quorum_at_risk fires when delivered - quorum_min <= margin.
  int64_t quorum_margin = 0;
};

// One evaluation's inputs. Cumulative fields are totals through the end of
// the tick; the engine differences them against the previous evaluation.
// kStable rules must be fed recovery-stable values (for the meter, the
// per-tick trajectory DurableCampaignRunner::meter_by_tick() reconstructs
// through crashes); kVolatile rules may consume live process counters.
struct CampaignAlertInputs {
  int64_t tick = 0;
  // Privacy meter, cumulative. bits_budget <= 0 disables the burn-rate
  // rule (unmetered campaign).
  int64_t bits_spent = 0;
  int64_t denied_charges = 0;
  int64_t bits_budget = 0;
  // Retry layer, cumulative retries scheduled (live process counters).
  int64_t retries_scheduled = 0;
  // Write-ahead journal length in records; -1 = unknown / not durable.
  int64_t journal_records = -1;
  // Shard delivery for this tick; shards_delivered = -1 when unsharded.
  int64_t shards_delivered = -1;
  int64_t shards_total = 0;
  int64_t quorum_min = 0;
  // A recovery anomaly (torn journal tail, replay divergence) was
  // observed; latches the recovery_divergence rule for the campaign.
  bool recovery_divergence = false;
};

struct AlertTransition {
  AlertRule rule = AlertRule::kPrivacyBurnRate;
  bool fired = false;  // false = resolved
  int64_t tick = 0;
  std::string detail;
};

// Evaluates the rule set against per-tick inputs and tracks the
// firing/resolved lifecycle. Deterministic: no wall clock, no RNG — the
// transition log is a pure function of the input sequence.
class AlertEngine {
 public:
  explicit AlertEngine(AlertConfig config = AlertConfig());

  static AlertEngine& Default();

  // Evaluates every rule, returns the transitions this tick caused (empty
  // when no rule changed state), appends them to transitions(), refreshes
  // the bitpush_alert_state gauges, and emits flight-recorder events.
  std::vector<AlertTransition> EvaluateCampaignTick(
      const CampaignAlertInputs& inputs);

  bool firing(AlertRule rule) const;
  int64_t firing_count() const;
  int64_t fired_total() const { return fired_total_; }
  int64_t resolved_total() const { return resolved_total_; }
  const std::vector<AlertTransition>& transitions() const {
    return transitions_;
  }
  const AlertConfig& config() const { return config_; }

  // Clears all rule state and the transition log (config is kept).
  void Reset();

 private:
  void Transition(AlertRule rule, bool fire, int64_t tick,
                  std::string detail, std::vector<AlertTransition>* out);
  void RefreshGauges();

  AlertConfig config_;
  bool firing_[kAlertRuleCount] = {};
  bool evaluated_ = false;
  CampaignAlertInputs last_;
  int64_t fired_total_ = 0;
  int64_t resolved_total_ = 0;
  std::vector<AlertTransition> transitions_;
};

// The deterministic fired-alert timeline: one line per transition of a
// kStable rule, canonical formatting. Byte-identical across clean, rerun,
// and crash-recovered runs of the same seeded campaign.
std::string AlertTimelineText(const AlertEngine& engine =
                                  AlertEngine::Default());

}  // namespace bitpush::obs

#endif  // BITPUSH_OBS_ALERTS_H_
