#include "obs/alerts.h"

#include <string>
#include <utility>

#include "obs/events.h"
#include "util/check.h"

namespace bitpush::obs {

namespace {

size_t RuleIndex(AlertRule rule) {
  const size_t index = static_cast<size_t>(rule);
  BITPUSH_CHECK_LT(index, static_cast<size_t>(kAlertRuleCount));
  return index;
}

}  // namespace

const char* AlertRuleName(AlertRule rule) {
  switch (rule) {
    case AlertRule::kPrivacyBurnRate:
      return "privacy_burn_rate";
    case AlertRule::kRetryStorm:
      return "retry_storm";
    case AlertRule::kShardQuorumAtRisk:
      return "shard_quorum_at_risk";
    case AlertRule::kJournalGrowth:
      return "journal_growth";
    case AlertRule::kRecoveryDivergence:
      return "recovery_divergence";
  }
  return "unknown";
}

// Rule determinism classes. privacy_burn_rate is the one kStable rule: its
// inputs (the per-tick meter trajectory) are reconstructed exactly through
// crashes, so its timeline is part of the byte-identical replay contract.
// The rest consume process-local state — live retry counters, the journal
// file's length, this process's delivery schedule, recovery artifacts —
// which legitimately differs between a clean run and a recovered one.
Determinism AlertRuleDeterminism(AlertRule rule) {
  switch (rule) {
    case AlertRule::kPrivacyBurnRate:
      return Determinism::kStable;
    case AlertRule::kRetryStorm:
    case AlertRule::kShardQuorumAtRisk:
    case AlertRule::kJournalGrowth:
    case AlertRule::kRecoveryDivergence:
      return Determinism::kVolatile;
  }
  return Determinism::kVolatile;
}

AlertEngine::AlertEngine(AlertConfig config) : config_(config) {
  BITPUSH_CHECK(config_.burn_rate_horizon_ticks >= 0.0);
  BITPUSH_CHECK_GE(config_.retry_storm_threshold, 1);
  BITPUSH_CHECK_GE(config_.journal_growth_threshold, 1);
  BITPUSH_CHECK_GE(config_.quorum_margin, 0);
}

AlertEngine& AlertEngine::Default() {
  static AlertEngine* engine = new AlertEngine();  // leaked singleton
  return *engine;
}

bool AlertEngine::firing(AlertRule rule) const {
  return firing_[RuleIndex(rule)];
}

int64_t AlertEngine::firing_count() const {
  int64_t count = 0;
  for (int i = 0; i < kAlertRuleCount; ++i) {
    if (firing_[i]) ++count;
  }
  return count;
}

void AlertEngine::Reset() {
  for (int i = 0; i < kAlertRuleCount; ++i) firing_[i] = false;
  evaluated_ = false;
  last_ = CampaignAlertInputs{};
  fired_total_ = 0;
  resolved_total_ = 0;
  transitions_.clear();
}

void AlertEngine::Transition(AlertRule rule, bool fire, int64_t tick,
                             std::string detail,
                             std::vector<AlertTransition>* out) {
  firing_[RuleIndex(rule)] = fire;
  if (fire) {
    ++fired_total_;
  } else {
    ++resolved_total_;
  }
  AlertTransition transition;
  transition.rule = rule;
  transition.fired = fire;
  transition.tick = tick;
  transition.detail = std::move(detail);

  // The ring event is tagged kVolatile even for kStable rules: alert
  // evaluation happens per tick in the driver, after recovery has already
  // replayed earlier ticks' round/meter events, so its ring position is
  // not replay-stable. The byte-stable artifact is transitions() /
  // AlertTimelineText().
  EventArgs args;
  args.tick = tick;
  args.detail = std::string("rule=") + AlertRuleName(rule);
  if (!transition.detail.empty()) args.detail += " " + transition.detail;
  EmitEvent(fire ? EventType::kAlertFired : EventType::kAlertResolved,
            Determinism::kVolatile, std::move(args));

  transitions_.push_back(std::move(transition));
  if (out != nullptr) out->push_back(transitions_.back());
}

void AlertEngine::RefreshGauges() {
  if (!Enabled()) return;
  Registry& registry = Registry::Default();
  for (int i = 0; i < kAlertRuleCount; ++i) {
    const AlertRule rule = static_cast<AlertRule>(i);
    registry
        .GetGauge(std::string("bitpush_alert_state_") + AlertRuleName(rule),
                  "Alert rule state (1 = firing).",
                  AlertRuleDeterminism(rule))
        ->Set(firing_[i] ? 1.0 : 0.0);
  }
}

std::vector<AlertTransition> AlertEngine::EvaluateCampaignTick(
    const CampaignAlertInputs& inputs) {
  std::vector<AlertTransition> out;
  const int64_t bits_delta =
      evaluated_ ? inputs.bits_spent - last_.bits_spent : inputs.bits_spent;
  const int64_t denied_delta = evaluated_
                                   ? inputs.denied_charges -
                                         last_.denied_charges
                                   : inputs.denied_charges;
  const int64_t retries_delta =
      evaluated_ ? inputs.retries_scheduled - last_.retries_scheduled
                 : inputs.retries_scheduled;

  // privacy_burn_rate: project time-to-exhaustion at this tick's burn
  // rate; any denial means the budget wall was already hit.
  if (inputs.bits_budget > 0) {
    const bool burning = bits_delta > 0 || denied_delta > 0;
    bool at_risk = false;
    std::string detail;
    if (denied_delta > 0) {
      at_risk = true;
      detail = "budget exhausted: denied=" + std::to_string(denied_delta) +
               " spent=" + std::to_string(inputs.bits_spent) + "/" +
               std::to_string(inputs.bits_budget);
    } else if (bits_delta > 0) {
      const int64_t remaining = inputs.bits_budget - inputs.bits_spent;
      const double tte_ticks = static_cast<double>(remaining) /
                               static_cast<double>(bits_delta);
      if (tte_ticks <= config_.burn_rate_horizon_ticks) {
        at_risk = true;
        detail = "tte_ticks=" + FormatStableDouble(tte_ticks) +
                 " spent=" + std::to_string(inputs.bits_spent) + "/" +
                 std::to_string(inputs.bits_budget);
      }
    }
    const bool was = firing_[RuleIndex(AlertRule::kPrivacyBurnRate)];
    if (at_risk && !was) {
      Transition(AlertRule::kPrivacyBurnRate, true, inputs.tick,
                 std::move(detail), &out);
    } else if (!burning && was) {
      Transition(AlertRule::kPrivacyBurnRate, false, inputs.tick,
                 "burn stopped: spent=" + std::to_string(inputs.bits_spent) +
                     "/" + std::to_string(inputs.bits_budget),
                 &out);
    }
  }

  // retry_storm: scheduling spike within one tick.
  {
    const bool storm = retries_delta >= config_.retry_storm_threshold;
    const bool was = firing_[RuleIndex(AlertRule::kRetryStorm)];
    if (storm && !was) {
      Transition(AlertRule::kRetryStorm, true, inputs.tick,
                 "retries_scheduled=" + std::to_string(retries_delta) +
                     " this tick (threshold " +
                     std::to_string(config_.retry_storm_threshold) + ")",
                 &out);
    } else if (!storm && was) {
      Transition(AlertRule::kRetryStorm, false, inputs.tick,
                 "retries_scheduled=" + std::to_string(retries_delta) +
                     " this tick",
                 &out);
    }
  }

  // shard_quorum_at_risk: delivered shards at or below the quorum margin.
  if (inputs.shards_delivered >= 0) {
    const bool at_risk = inputs.shards_delivered - inputs.quorum_min <=
                         config_.quorum_margin;
    const bool was = firing_[RuleIndex(AlertRule::kShardQuorumAtRisk)];
    const std::string detail =
        "delivered=" + std::to_string(inputs.shards_delivered) + "/" +
        std::to_string(inputs.shards_total) +
        " quorum_min=" + std::to_string(inputs.quorum_min);
    if (at_risk && !was) {
      Transition(AlertRule::kShardQuorumAtRisk, true, inputs.tick, detail,
                 &out);
    } else if (!at_risk && was) {
      Transition(AlertRule::kShardQuorumAtRisk, false, inputs.tick, detail,
                 &out);
    }
  }

  // journal_growth: the write-ahead journal is due a snapshot+truncate.
  if (inputs.journal_records >= 0) {
    const bool grown =
        inputs.journal_records >= config_.journal_growth_threshold;
    const bool was = firing_[RuleIndex(AlertRule::kJournalGrowth)];
    if (grown && !was) {
      Transition(AlertRule::kJournalGrowth, true, inputs.tick,
                 "journal_records=" + std::to_string(inputs.journal_records) +
                     " (threshold " +
                     std::to_string(config_.journal_growth_threshold) + ")",
                 &out);
    } else if (!grown && was) {
      Transition(AlertRule::kJournalGrowth, false, inputs.tick,
                 "journal_records=" + std::to_string(inputs.journal_records),
                 &out);
    }
  }

  // recovery_divergence: latched for the campaign once observed.
  if (inputs.recovery_divergence &&
      !firing_[RuleIndex(AlertRule::kRecoveryDivergence)]) {
    Transition(AlertRule::kRecoveryDivergence, true, inputs.tick,
               "recovery anomaly observed (torn tail or replay divergence)",
               &out);
  }

  last_ = inputs;
  evaluated_ = true;
  RefreshGauges();
  return out;
}

std::string AlertTimelineText(const AlertEngine& engine) {
  std::string out = "# bitpush alert timeline v1\n";
  for (const AlertTransition& transition : engine.transitions()) {
    if (AlertRuleDeterminism(transition.rule) != Determinism::kStable) {
      continue;
    }
    out += "tick=" + std::to_string(transition.tick);
    out += transition.fired ? " fired " : " resolved ";
    out += AlertRuleName(transition.rule);
    if (!transition.detail.empty()) out += " " + transition.detail;
    out += "\n";
  }
  return out;
}

}  // namespace bitpush::obs
