#include "data/dataset.h"

#include <algorithm>

#include "stats/welford.h"

namespace bitpush {

GroundTruth ComputeGroundTruth(const std::vector<double>& values) {
  GroundTruth truth;
  Welford acc;
  for (const double v : values) acc.Add(v);
  truth.mean = acc.mean();
  truth.variance = acc.population_variance();
  truth.min = acc.min();
  truth.max = acc.max();
  truth.count = acc.count();
  return truth;
}

Dataset::Dataset(std::string name, std::vector<double> values)
    : name_(std::move(name)),
      values_(std::move(values)),
      truth_(ComputeGroundTruth(values_)) {}

Dataset Dataset::Clipped(double low, double high) const {
  std::vector<double> clipped = values_;
  for (double& v : clipped) v = std::clamp(v, low, high);
  return Dataset(name_ + "/clipped", std::move(clipped));
}

}  // namespace bitpush
