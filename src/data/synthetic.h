// Synthetic workload generators matching Section 4's setup ("we generated
// synthetic data by drawing values from Normal, uniform and exponential
// distributions with varying parameters") plus the heavy-tailed and
// degenerate families observed in deployment (Section 4.3).

#ifndef BITPUSH_DATA_SYNTHETIC_H_
#define BITPUSH_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"
#include "rng/rng.h"

namespace bitpush {

// Normal(mean, stddev); negative draws are clamped to 0 so values encode as
// non-negative fixed-point integers, as the paper's pipelines assume.
Dataset NormalData(int64_t n, double mean, double stddev, Rng& rng);

// Uniform on [low, high).
Dataset UniformData(int64_t n, double low, double high, Rng& rng);

// Exponential with the given mean.
Dataset ExponentialData(int64_t n, double mean, Rng& rng);

// Pareto(scale, shape): heavy-tailed; shape <= 2 has infinite variance.
Dataset ParetoData(int64_t n, double scale, double shape, Rng& rng);

// Lognormal with the given log-space parameters.
Dataset LognormalData(int64_t n, double log_mean, double log_stddev, Rng& rng);

// Every client holds the same value (the "constant metric" corner case of
// Section 4.3 that makes mean/variance estimation moot).
Dataset ConstantData(int64_t n, double value);

// A two-component Normal mixture: weight `w1` on Normal(mu1, sigma1), the
// rest on Normal(mu2, sigma2), clamped non-negative. Exercises bimodal
// distributions, where means mislead and medians/histograms shine.
Dataset MixtureData(int64_t n, double w1, double mu1, double sigma1,
                    double mu2, double sigma2, Rng& rng);

// The deployment pathology of Section 4.3: "features whose most typical
// values are 0 and 1, ... but some rare clients report values that are
// orders of magnitude higher". Mass (1 - outlier_fraction) is split evenly
// between 0 and 1; outliers are Pareto(outlier_scale, 1.1).
Dataset BinaryWithOutliersData(int64_t n, double outlier_fraction,
                               double outlier_scale, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_DATA_SYNTHETIC_H_
