// Census-age workload.
//
// The paper's human-generated data is "the distribution of people's ages
// from publicly-available US Census data" (the Census-Income KDD dataset).
// The raw dataset is not redistributable inside this repository, so we embed
// an age histogram with the same support (0..90, with 90 standing for 90+)
// and the same demographic shape (a 1990s-style population pyramid: heavy
// mass in childhood and working ages, a baby-boom bulge around 25-40, and a
// decaying old-age tail; mean ~= 34, b_max = 7 bits). Figures 2a-c and 3a-b
// depend only on those properties of the distribution. See DESIGN.md
// ("Substitutions").

#ifndef BITPUSH_DATA_CENSUS_H_
#define BITPUSH_DATA_CENSUS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "rng/rng.h"

namespace bitpush {

// Maximum age in the embedded histogram (ages are integers in [0, 90]).
inline constexpr int kCensusMaxAge = 90;

// Returns the embedded relative frequency of each age 0..kCensusMaxAge.
// The weights are positive and need not be normalized.
const std::vector<double>& CensusAgeWeights();

// Draws n ages i.i.d. from the embedded age histogram.
Dataset CensusAges(int64_t n, Rng& rng);

// Exact mean of the embedded age distribution (not of a finite sample).
double CensusDistributionMean();

// Exact variance of the embedded age distribution.
double CensusDistributionVariance();

}  // namespace bitpush

#endif  // BITPUSH_DATA_CENSUS_H_
