// Loading client values from plain text files (one value per line), so the
// CLI and examples can run on real data exports rather than only the
// built-in generators. Lines may be blank or start with '#' (skipped).

#ifndef BITPUSH_DATA_FILE_SOURCE_H_
#define BITPUSH_DATA_FILE_SOURCE_H_

#include <string>

#include "data/dataset.h"

namespace bitpush {

// Parses `path`. Returns false (leaving `*out` untouched) when the file
// cannot be opened or any non-comment line fails to parse as a double;
// `*error` (if non-null) receives a human-readable reason.
bool LoadDatasetFromFile(const std::string& path, Dataset* out,
                         std::string* error);

// Writes one value per line (round-trips with LoadDatasetFromFile).
bool SaveDatasetToFile(const Dataset& data, const std::string& path,
                       std::string* error);

}  // namespace bitpush

#endif  // BITPUSH_DATA_FILE_SOURCE_H_
