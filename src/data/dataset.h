// Dataset container with exact ground-truth statistics.
//
// Experiments compare protocol estimates against the *empirical* mean and
// variance of the concrete population sample (as the paper does), not
// against the parameters of the generating distribution.

#ifndef BITPUSH_DATA_DATASET_H_
#define BITPUSH_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bitpush {

// Ground-truth summary of a concrete population.
struct GroundTruth {
  double mean = 0.0;
  double variance = 0.0;  // population variance
  double min = 0.0;
  double max = 0.0;
  int64_t count = 0;
};

class Dataset {
 public:
  Dataset() = default;
  // Takes ownership of `values`. `name` labels experiment output.
  Dataset(std::string name, std::vector<double> values);

  const std::string& name() const { return name_; }
  const std::vector<double>& values() const { return values_; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  // Exact statistics of the stored values (computed once, cached).
  const GroundTruth& truth() const { return truth_; }

  // Returns a copy with every value clipped to [low, high] and the ground
  // truth recomputed — the winsorization-by-clipping of Section 4.3.
  Dataset Clipped(double low, double high) const;

 private:
  std::string name_;
  std::vector<double> values_;
  GroundTruth truth_;
};

// Computes the exact statistics of `values`.
GroundTruth ComputeGroundTruth(const std::vector<double>& values);

}  // namespace bitpush

#endif  // BITPUSH_DATA_DATASET_H_
