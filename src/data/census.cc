#include "data/census.h"

#include <cmath>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {
namespace {

// Builds the embedded age pyramid. Shape (relative population per year of
// age, 1990s US):
//   * ages 0-17: high and nearly flat (children),
//   * ages 18-24: slight dip (the post-boom "bust"),
//   * ages 25-44: the baby-boom bulge (the mode of the adult distribution),
//   * ages 45-64: steady decline,
//   * ages 65-90: exponential-style old-age decay, with age 90 absorbing
//     the 90+ remainder.
// The resulting distribution has mean ~= 34 and uses 7 bits (b_max = 7).
std::vector<double> BuildWeights() {
  std::vector<double> weights(kCensusMaxAge + 1);
  for (int age = 0; age <= kCensusMaxAge; ++age) {
    double w = 0.0;
    if (age <= 17) {
      w = 1.45;
    } else if (age <= 24) {
      w = 1.25;
    } else if (age <= 44) {
      // Bulge peaking near 32.
      const double d = (static_cast<double>(age) - 32.0) / 12.0;
      w = 1.65 - 0.25 * d * d;
    } else if (age <= 64) {
      w = 1.30 - 0.03 * static_cast<double>(age - 44);
    } else {
      w = 0.70 * std::exp(-0.075 * static_cast<double>(age - 64));
    }
    weights[static_cast<size_t>(age)] = w;
  }
  // 90+ bucket: the integrated tail beyond 90 at the same decay rate.
  weights[kCensusMaxAge] +=
      weights[kCensusMaxAge] * (std::exp(-0.075) / (1.0 - std::exp(-0.075)));
  return weights;
}

}  // namespace

const std::vector<double>& CensusAgeWeights() {
  static const std::vector<double>& weights = *new std::vector<double>(
      BuildWeights());
  return weights;
}

Dataset CensusAges(int64_t n, Rng& rng) {
  BITPUSH_CHECK_GE(n, 0);
  static const DiscreteSampler& sampler =
      *new DiscreteSampler(CensusAgeWeights());
  std::vector<double> ages;
  ages.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ages.push_back(static_cast<double>(sampler.Sample(rng)));
  }
  return Dataset("census_ages", std::move(ages));
}

double CensusDistributionMean() {
  const std::vector<double>& weights = CensusAgeWeights();
  double total = 0.0;
  double weighted = 0.0;
  for (size_t age = 0; age < weights.size(); ++age) {
    total += weights[age];
    weighted += static_cast<double>(age) * weights[age];
  }
  return weighted / total;
}

double CensusDistributionVariance() {
  const std::vector<double>& weights = CensusAgeWeights();
  const double mean = CensusDistributionMean();
  double total = 0.0;
  double weighted_sq = 0.0;
  for (size_t age = 0; age < weights.size(); ++age) {
    const double d = static_cast<double>(age) - mean;
    total += weights[age];
    weighted_sq += d * d * weights[age];
  }
  return weighted_sq / total;
}

}  // namespace bitpush
