#include "data/synthetic.h"

#include <algorithm>
#include <functional>
#include <string>

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {
namespace {

std::vector<double> Generate(int64_t n,
                             const std::function<double()>& sample) {
  BITPUSH_CHECK_GE(n, 0);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) values.push_back(sample());
  return values;
}

}  // namespace

Dataset NormalData(int64_t n, double mean, double stddev, Rng& rng) {
  return Dataset("normal(" + std::to_string(mean) + "," +
                     std::to_string(stddev) + ")",
                 Generate(n, [&] {
                   return std::max(0.0, SampleNormal(rng, mean, stddev));
                 }));
}

Dataset UniformData(int64_t n, double low, double high, Rng& rng) {
  return Dataset(
      "uniform(" + std::to_string(low) + "," + std::to_string(high) + ")",
      Generate(n, [&] { return SampleUniform(rng, low, high); }));
}

Dataset ExponentialData(int64_t n, double mean, Rng& rng) {
  return Dataset("exponential(" + std::to_string(mean) + ")",
                 Generate(n, [&] { return SampleExponential(rng, mean); }));
}

Dataset ParetoData(int64_t n, double scale, double shape, Rng& rng) {
  return Dataset(
      "pareto(" + std::to_string(scale) + "," + std::to_string(shape) + ")",
      Generate(n, [&] { return SamplePareto(rng, scale, shape); }));
}

Dataset LognormalData(int64_t n, double log_mean, double log_stddev,
                      Rng& rng) {
  return Dataset("lognormal(" + std::to_string(log_mean) + "," +
                     std::to_string(log_stddev) + ")",
                 Generate(n, [&] {
                   return SampleLognormal(rng, log_mean, log_stddev);
                 }));
}

Dataset ConstantData(int64_t n, double value) {
  return Dataset("constant(" + std::to_string(value) + ")",
                 std::vector<double>(static_cast<size_t>(n), value));
}

Dataset MixtureData(int64_t n, double w1, double mu1, double sigma1,
                    double mu2, double sigma2, Rng& rng) {
  BITPUSH_CHECK_GE(w1, 0.0);
  BITPUSH_CHECK_LE(w1, 1.0);
  return Dataset("mixture(" + std::to_string(w1) + ")",
                 Generate(n, [&] {
                   const bool first = rng.NextBernoulli(w1);
                   return std::max(0.0, first
                                            ? SampleNormal(rng, mu1, sigma1)
                                            : SampleNormal(rng, mu2,
                                                           sigma2));
                 }));
}

Dataset BinaryWithOutliersData(int64_t n, double outlier_fraction,
                               double outlier_scale, Rng& rng) {
  BITPUSH_CHECK_GE(outlier_fraction, 0.0);
  BITPUSH_CHECK_LE(outlier_fraction, 1.0);
  return Dataset("binary_with_outliers(" + std::to_string(outlier_fraction) +
                     ")",
                 Generate(n, [&] {
                   if (rng.NextBernoulli(outlier_fraction)) {
                     return SamplePareto(rng, outlier_scale, 1.1);
                   }
                   return static_cast<double>(rng.NextBit());
                 }));
}

}  // namespace bitpush
