#include "data/file_source.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace bitpush {
namespace {

bool IsBlankOrComment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool LoadDatasetFromFile(const std::string& path, Dataset* out,
                         std::string* error) {
  BITPUSH_CHECK(out != nullptr);
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  std::vector<double> values;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsBlankOrComment(line)) continue;
    char* end = nullptr;
    const double value = std::strtod(line.c_str(), &end);
    // Allow trailing whitespace only.
    while (end != nullptr && (*end == ' ' || *end == '\t' || *end == '\r')) {
      ++end;
    }
    if (end == line.c_str() || end == nullptr || *end != '\0') {
      std::ostringstream message;
      message << path << ":" << line_number << ": not a number: '" << line
              << "'";
      SetError(error, message.str());
      return false;
    }
    values.push_back(value);
  }
  *out = Dataset(path, std::move(values));
  return true;
}

bool SaveDatasetToFile(const Dataset& data, const std::string& path,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  for (const double value : data.values()) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g\n", value);
    out << buffer;
  }
  out.flush();
  if (!out) {
    SetError(error, "write to " + path + " failed");
    return false;
  }
  return true;
}

}  // namespace bitpush
