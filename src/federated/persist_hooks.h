// Hooks through which the durable-state layer (src/persist/) observes — and
// on recovery, short-circuits — query execution.
//
// The recovery model is deterministic re-execution: after a crash, the
// coordinator re-runs the interrupted query with the same forked RNG
// streams, and a recorder installed here serves back the journaled
// outcomes. A round whose kRoundClosed record survived is *restored*, never
// re-run — in particular a completed round-1 probe is never re-probed, so
// no client is ever asked for a second bit by a recovering server. The
// finer-grained emissions (cohort assignment, accepted reports) are
// journaled so the replay layer can verify that re-execution really is
// byte-for-byte deterministic and fail closed on divergence.

#ifndef BITPUSH_FEDERATED_PERSIST_HOOKS_H_
#define BITPUSH_FEDERATED_PERSIST_HOOKS_H_

#include <cstdint>
#include <vector>

#include "federated/report.h"
#include "federated/resilience.h"
#include "federated/server.h"

namespace bitpush {

class QueryRecorder {
 public:
  virtual ~QueryRecorder() = default;

  // Consulted before a round runs. Returning true means the round completed
  // (its kRoundClosed record was journaled) before the crash: `*out` is
  // filled with the recorded outcome and the round is skipped entirely.
  // Returning false lets the round execute normally.
  virtual bool RestoreRound(int64_t round_id, RoundOutcome* out) = 0;

  // A live round completed; called with its full outcome before the query
  // proceeds past the round boundary.
  virtual void OnRoundClosed(int64_t round_id, const RoundOutcome& outcome) = 0;

  // A collection pass issued assignments to these client ids (in request
  // order). Emitted per pass: once for the cohort, once per backfill draw.
  virtual void OnCohortAssigned(int64_t /*round_id*/,
                                const std::vector<int64_t>& /*client_ids*/) {}

  // The server accepted one report into the round's tally.
  virtual void OnReportAccepted(int64_t /*round_id*/,
                                const BitReport& /*report*/) {}

  // One resilience decision (retry scheduled, hedge issued or cancelled,
  // breaker transition; see federated/resilience.h). Emitted in execution
  // order so the replay layer can verify a recovered run reproduces the
  // exact recovery schedule of the original.
  virtual void OnResilienceEvent(const ResilienceEvent& /*event*/) {}
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_PERSIST_HOOKS_H_
