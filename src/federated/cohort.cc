#include "federated/cohort.h"

#include <algorithm>

#include "util/check.h"

namespace bitpush {

std::vector<int64_t> SelectCohort(
    const std::vector<Client>& clients,
    const std::function<bool(const Client&)>& eligible,
    const CohortPolicy& policy, Rng& rng, bool* below_minimum,
    std::vector<int64_t>* unselected) {
  BITPUSH_CHECK(below_minimum != nullptr);
  BITPUSH_CHECK_GE(policy.min_cohort_size, 1);

  if (unselected != nullptr) unselected->clear();
  std::vector<int64_t> cohort;
  for (size_t i = 0; i < clients.size(); ++i) {
    if (eligible == nullptr || eligible(clients[i])) {
      cohort.push_back(static_cast<int64_t>(i));
    }
  }
  if (static_cast<int64_t>(cohort.size()) < policy.min_cohort_size) {
    *below_minimum = true;
    return {};
  }
  *below_minimum = false;
  // Shuffle so truncation is an unbiased subsample.
  for (size_t i = cohort.size(); i > 1; --i) {
    std::swap(cohort[i - 1], cohort[rng.NextBelow(i)]);
  }
  if (policy.max_cohort_size > 0 &&
      static_cast<int64_t>(cohort.size()) > policy.max_cohort_size) {
    if (unselected != nullptr) {
      unselected->assign(
          cohort.begin() + static_cast<int64_t>(policy.max_cohort_size),
          cohort.end());
    }
    cohort.resize(static_cast<size_t>(policy.max_cohort_size));
  }
  return cohort;
}

}  // namespace bitpush
