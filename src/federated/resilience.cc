#include "federated/resilience.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "federated/persist_hooks.h"
#include "federated/wire.h"
#include "obs/events.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {
namespace {

// SplitMix64 finalizer, the same stateless mixer the fault plan uses: the
// backoff schedule must not consume the protocol RNG stream.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Domain-separation constant so backoff hashes can never collide with the
// fault plan's salts even under an identical seed ("RTRY").
constexpr uint64_t kBackoffDomain = 0x52545259ULL;

double HashUniform(uint64_t seed, int64_t round_id, int64_t client_id,
                   uint64_t salt) {
  uint64_t h = Mix(seed ^ Mix(static_cast<uint64_t>(round_id)));
  h = Mix(h ^ static_cast<uint64_t>(client_id));
  h = Mix(h ^ (kBackoffDomain + salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool ValidFraction(double value) {
  return std::isfinite(value) && value >= 0.0 && value <= 1.0;
}

// Non-negative with +infinity allowed (budgets), NaN and negatives
// rejected.
bool ValidBudgetMinutes(double value) {
  return value >= 0.0 && !std::isnan(value);
}

}  // namespace

bool DeadlineBudget::finite() const { return std::isfinite(minutes); }

DeadlineBudget DeadlineBudget::Fraction(double fraction) const {
  BITPUSH_CHECK_GE(fraction, 0.0);
  BITPUSH_CHECK_LE(fraction, 1.0);
  if (!finite()) return *this;
  return DeadlineBudget{minutes * fraction};
}

DeadlineBudget DeadlineBudget::Split(int64_t parts) const {
  BITPUSH_CHECK_GE(parts, 1);
  if (!finite()) return *this;
  return DeadlineBudget{minutes / static_cast<double>(parts)};
}

double DeadlineBudget::ClampDeadline(double deadline_minutes) const {
  return std::min(deadline_minutes, minutes);
}

bool ResilienceConfig::Enabled() const {
  return retry.enabled() || hedge.enabled || breaker.enabled() ||
         budget.finite();
}

int64_t RetryStats::RecoveredTotal() const {
  return retry_reports_recovered + hedge_reports;
}

namespace {

// Counter block in its fixed serialization order; Encode and Decode share
// the list so the order cannot drift (same idiom as kFaultStatsFields).
constexpr int64_t RetryStats::* kRetryStatsCounters[] = {
    &RetryStats::retries_scheduled,
    &RetryStats::retransmits_requested,
    &RetryStats::retry_reports_recovered,
    &RetryStats::retries_exhausted,
    &RetryStats::retry_budget_denied,
    &RetryStats::deadline_denied,
    &RetryStats::hedges_issued,
    &RetryStats::hedges_cancelled,
    &RetryStats::hedge_reports,
    &RetryStats::hedge_failures,
    &RetryStats::hedge_dedup_drops,
    &RetryStats::breaker_skips,
    &RetryStats::breaker_probes,
    &RetryStats::breaker_opens,
    &RetryStats::breaker_closes,
};

constexpr double RetryStats::* kRetryStatsMinutes[] = {
    &RetryStats::backoff_minutes,
    &RetryStats::elapsed_minutes,
};

}  // namespace

void RetryStats::MergeFrom(const RetryStats& other) {
  for (const auto field : kRetryStatsCounters) {
    this->*field += other.*field;
  }
  for (const auto field : kRetryStatsMinutes) {
    this->*field += other.*field;
  }
}

void EncodeRetryStats(const RetryStats& stats, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  for (const auto field : kRetryStatsCounters) {
    bytes::PutInt64(stats.*field, out);
  }
  for (const auto field : kRetryStatsMinutes) {
    bytes::PutDouble(stats.*field, out);
  }
}

bool DecodeRetryStats(const std::vector<uint8_t>& buffer, size_t* offset,
                      RetryStats* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  RetryStats stats;
  for (const auto field : kRetryStatsCounters) {
    if (!bytes::GetInt64(buffer, &cursor, &(stats.*field))) return false;
    if (stats.*field < 0) return false;
  }
  for (const auto field : kRetryStatsMinutes) {
    if (!bytes::GetDouble(buffer, &cursor, &(stats.*field))) return false;
    if (!std::isfinite(stats.*field) || stats.*field < 0.0) return false;
  }
  *out = stats;
  *offset = cursor;
  return true;
}

void EncodeRetryStatsFrame(const RetryStats& stats, std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutByte(kWireFormatVersion, out);
  EncodeRetryStats(stats, out);
}

bool DecodeRetryStatsFrame(const std::vector<uint8_t>& buffer,
                           RetryStats* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t offset = 0;
  uint8_t version = 0;
  if (!bytes::GetByte(buffer, &offset, &version)) return false;
  if (version != kWireFormatVersion) return false;
  RetryStats stats;
  if (!DecodeRetryStats(buffer, &offset, &stats)) return false;
  if (offset != buffer.size()) return false;
  *out = stats;
  return true;
}

void EncodeResilienceConfigFrame(const ResilienceConfig& config,
                                 std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutByte(kWireFormatVersion, out);
  bytes::PutUint64(config.seed, out);
  bytes::PutInt64(config.retry.max_retries_per_client, out);
  bytes::PutInt64(config.retry.max_retries_per_round, out);
  bytes::PutDouble(config.retry.base_backoff_minutes, out);
  bytes::PutDouble(config.retry.cap_backoff_minutes, out);
  bytes::PutByte(config.hedge.enabled ? 1 : 0, out);
  bytes::PutDouble(config.hedge.trigger_budget_fraction, out);
  bytes::PutInt64(config.hedge.max_hedges_per_round, out);
  bytes::PutInt64(config.breaker.consecutive_failures_to_open, out);
  bytes::PutDouble(config.breaker.failure_rate_to_open, out);
  bytes::PutInt64(config.breaker.min_samples_for_rate, out);
  bytes::PutInt64(config.breaker.cooldown_rounds, out);
  bytes::PutDouble(config.budget.minutes, out);
  bytes::PutDouble(config.latency.checkins_per_minute, out);
  bytes::PutDouble(config.latency.eligibility_rate, out);
  bytes::PutDouble(config.latency.fixed_round_minutes, out);
}

bool DecodeResilienceConfigFrame(const std::vector<uint8_t>& buffer,
                                 ResilienceConfig* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t offset = 0;
  uint8_t version = 0;
  if (!bytes::GetByte(buffer, &offset, &version)) return false;
  if (version != kWireFormatVersion) return false;
  ResilienceConfig config;
  uint8_t hedge_enabled = 0;
  if (!bytes::GetUint64(buffer, &offset, &config.seed) ||
      !bytes::GetInt64(buffer, &offset, &config.retry.max_retries_per_client) ||
      !bytes::GetInt64(buffer, &offset, &config.retry.max_retries_per_round) ||
      !bytes::GetDouble(buffer, &offset, &config.retry.base_backoff_minutes) ||
      !bytes::GetDouble(buffer, &offset, &config.retry.cap_backoff_minutes) ||
      !bytes::GetByte(buffer, &offset, &hedge_enabled) ||
      !bytes::GetDouble(buffer, &offset,
                        &config.hedge.trigger_budget_fraction) ||
      !bytes::GetInt64(buffer, &offset, &config.hedge.max_hedges_per_round) ||
      !bytes::GetInt64(buffer, &offset,
                       &config.breaker.consecutive_failures_to_open) ||
      !bytes::GetDouble(buffer, &offset,
                        &config.breaker.failure_rate_to_open) ||
      !bytes::GetInt64(buffer, &offset,
                       &config.breaker.min_samples_for_rate) ||
      !bytes::GetInt64(buffer, &offset, &config.breaker.cooldown_rounds) ||
      !bytes::GetDouble(buffer, &offset, &config.budget.minutes) ||
      !bytes::GetDouble(buffer, &offset,
                        &config.latency.checkins_per_minute) ||
      !bytes::GetDouble(buffer, &offset, &config.latency.eligibility_rate) ||
      !bytes::GetDouble(buffer, &offset,
                        &config.latency.fixed_round_minutes)) {
    return false;
  }
  if (offset != buffer.size()) return false;
  if (hedge_enabled > 1) return false;
  config.hedge.enabled = hedge_enabled == 1;
  if (config.retry.max_retries_per_client < 0) return false;
  if (config.retry.max_retries_per_round < 0) return false;
  if (!std::isfinite(config.retry.base_backoff_minutes) ||
      config.retry.base_backoff_minutes <= 0.0) {
    return false;
  }
  if (!std::isfinite(config.retry.cap_backoff_minutes) ||
      config.retry.cap_backoff_minutes < config.retry.base_backoff_minutes) {
    return false;
  }
  if (!ValidFraction(config.hedge.trigger_budget_fraction)) return false;
  if (config.hedge.max_hedges_per_round < 0) return false;
  if (config.breaker.consecutive_failures_to_open < 0) return false;
  if (!ValidFraction(config.breaker.failure_rate_to_open)) return false;
  if (config.breaker.min_samples_for_rate < 1) return false;
  if (config.breaker.cooldown_rounds < 1) return false;
  if (!ValidBudgetMinutes(config.budget.minutes)) return false;
  if (!std::isfinite(config.latency.checkins_per_minute) ||
      config.latency.checkins_per_minute <= 0.0) {
    return false;
  }
  if (!std::isfinite(config.latency.eligibility_rate) ||
      config.latency.eligibility_rate <= 0.0 ||
      config.latency.eligibility_rate > 1.0) {
    return false;
  }
  if (!std::isfinite(config.latency.fixed_round_minutes) ||
      config.latency.fixed_round_minutes < 0.0) {
    return false;
  }
  *out = config;
  return true;
}

void EncodeResilienceEvent(const ResilienceEvent& event,
                           std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutByte(static_cast<uint8_t>(event.type), out);
  bytes::PutInt64(event.round_id, out);
  bytes::PutInt64(event.client_id, out);
  bytes::PutInt64(event.attempt, out);
  bytes::PutDouble(event.minutes, out);
}

bool DecodeResilienceEvent(const std::vector<uint8_t>& buffer, size_t* offset,
                           ResilienceEvent* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  uint8_t type = 0;
  ResilienceEvent event;
  if (!bytes::GetByte(buffer, &cursor, &type) ||
      !bytes::GetInt64(buffer, &cursor, &event.round_id) ||
      !bytes::GetInt64(buffer, &cursor, &event.client_id) ||
      !bytes::GetInt64(buffer, &cursor, &event.attempt) ||
      !bytes::GetDouble(buffer, &cursor, &event.minutes)) {
    return false;
  }
  if (type < static_cast<uint8_t>(ResilienceEventType::kRetryScheduled) ||
      type > static_cast<uint8_t>(ResilienceEventType::kBreakerClosed)) {
    return false;
  }
  if (event.attempt < 0) return false;
  if (!std::isfinite(event.minutes) || event.minutes < 0.0) return false;
  event.type = static_cast<ResilienceEventType>(type);
  *out = event;
  *offset = cursor;
  return true;
}

RetrySchedule::RetrySchedule() = default;

RetrySchedule::RetrySchedule(uint64_t seed, const RetryPolicy& policy)
    : seed_(seed), policy_(policy) {
  if (policy_.enabled()) {
    BITPUSH_CHECK_GT(policy_.base_backoff_minutes, 0.0);
    BITPUSH_CHECK_GE(policy_.cap_backoff_minutes,
                     policy_.base_backoff_minutes);
  }
}

double RetrySchedule::BackoffMinutes(int64_t round_id, int64_t client_id,
                                     int64_t attempt) const {
  BITPUSH_CHECK(policy_.enabled());
  BITPUSH_CHECK_GE(attempt, 1);
  // Decorrelated jitter: b_k drawn from [base, 3 * b_{k-1}], capped. The
  // draw is a pure hash of (seed, round, client, k), so the schedule for
  // attempt k is fixed the moment the plan is configured.
  const double base = policy_.base_backoff_minutes;
  const double cap = policy_.cap_backoff_minutes;
  double backoff = base;
  for (int64_t k = 1; k <= attempt; ++k) {
    const double u =
        HashUniform(seed_, round_id, client_id, static_cast<uint64_t>(k));
    backoff = std::min(cap, base + u * (3.0 * backoff - base));
  }
  return backoff;
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

HealthTracker::HealthTracker() = default;

HealthTracker::HealthTracker(const BreakerPolicy& policy) : policy_(policy) {
  BITPUSH_CHECK_GE(policy_.consecutive_failures_to_open, 0);
  BITPUSH_CHECK_GE(policy_.failure_rate_to_open, 0.0);
  BITPUSH_CHECK_LE(policy_.failure_rate_to_open, 1.0);
  BITPUSH_CHECK_GE(policy_.min_samples_for_rate, 1);
  BITPUSH_CHECK_GE(policy_.cooldown_rounds, 1);
}

void HealthTracker::BeginRound() {
  if (!policy_.enabled()) return;
  for (auto& [id, health] : clients_) {
    if (health.state != BreakerState::kOpen) continue;
    if (--health.cooldown_remaining <= 0) {
      health.state = BreakerState::kHalfOpen;
      health.cooldown_remaining = 0;
    }
  }
}

AssignmentDecision HealthTracker::Decision(int64_t client_id) const {
  if (!policy_.enabled()) return AssignmentDecision::kAssign;
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return AssignmentDecision::kAssign;
  switch (it->second.state) {
    case BreakerState::kClosed:
      return AssignmentDecision::kAssign;
    case BreakerState::kOpen:
      return AssignmentDecision::kSkip;
    case BreakerState::kHalfOpen:
      return AssignmentDecision::kProbe;
  }
  return AssignmentDecision::kAssign;
}

BreakerState HealthTracker::state(int64_t client_id) const {
  const auto it = clients_.find(client_id);
  return it == clients_.end() ? BreakerState::kClosed : it->second.state;
}

bool HealthTracker::ShouldOpen(const ClientHealth& health) const {
  if (policy_.consecutive_failures_to_open > 0 &&
      health.consecutive_failures >= policy_.consecutive_failures_to_open) {
    return true;
  }
  if (policy_.failure_rate_to_open < 1.0) {
    const int64_t samples = health.failures + health.successes;
    if (samples >= policy_.min_samples_for_rate &&
        static_cast<double>(health.failures) >=
            policy_.failure_rate_to_open * static_cast<double>(samples)) {
      return true;
    }
  }
  return false;
}

void HealthTracker::ObserveRound(int64_t round_id,
                                 const std::vector<int64_t>& succeeded,
                                 const std::vector<int64_t>& failed,
                                 QueryRecorder* recorder) {
  if (!policy_.enabled()) return;
  const auto emit = [&](ResilienceEventType type, int64_t client_id) {
    if (recorder == nullptr) return;
    ResilienceEvent event;
    event.type = type;
    event.round_id = round_id;
    event.client_id = client_id;
    recorder->OnResilienceEvent(event);
  };
  // Flight-recorder breaker transitions. ObserveRound is the exactly-once
  // transition site on every execution path — live rounds, journal-restored
  // rounds, and recovery's replay of finished queries (which calls it with
  // recorder == nullptr) — and the transitions are pure functions of the
  // journaled success/failure lists, so the events are replay-stable even
  // though the `emit` lambda above is suppressed during replay.
  const auto announce = [&](int64_t client_id, const char* what) {
    obs::EventArgs args;
    args.round_id = round_id;
    args.detail = std::string(what) + " client=" + std::to_string(client_id);
    obs::EmitEvent(obs::EventType::kBreakerTransition,
                   obs::Determinism::kStable, std::move(args));
  };
  for (const int64_t id : succeeded) {
    ClientHealth& health = clients_[id];
    ++health.successes;
    health.consecutive_failures = 0;
    if (health.state == BreakerState::kHalfOpen) {
      // The probe assignment came back: close the breaker and give the
      // client a clean rate window so stale history cannot re-open it.
      health = ClientHealth{};
      ++closes_;
      emit(ResilienceEventType::kBreakerClosed, id);
      announce(id, "closed");
    }
  }
  for (const int64_t id : failed) {
    ClientHealth& health = clients_[id];
    ++health.failures;
    ++health.consecutive_failures;
    if (health.state == BreakerState::kHalfOpen) {
      // Failed probe: straight back to quarantine.
      health.state = BreakerState::kOpen;
      health.cooldown_remaining = policy_.cooldown_rounds;
      ++opens_;
      emit(ResilienceEventType::kBreakerOpened, id);
      announce(id, "opened (failed probe)");
    } else if (health.state == BreakerState::kClosed && ShouldOpen(health)) {
      health.state = BreakerState::kOpen;
      health.cooldown_remaining = policy_.cooldown_rounds;
      ++opens_;
      emit(ResilienceEventType::kBreakerOpened, id);
      announce(id, "opened");
    }
  }
}

int64_t HealthTracker::quarantined_clients() const {
  int64_t count = 0;
  for (const auto& [id, health] : clients_) {
    if (health.state != BreakerState::kClosed) ++count;
  }
  return count;
}

void HealthTracker::EncodeTo(std::vector<uint8_t>* out) const {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(policy_.consecutive_failures_to_open, out);
  bytes::PutDouble(policy_.failure_rate_to_open, out);
  bytes::PutInt64(policy_.min_samples_for_rate, out);
  bytes::PutInt64(policy_.cooldown_rounds, out);
  bytes::PutInt64(opens_, out);
  bytes::PutInt64(closes_, out);
  bytes::PutUint32(static_cast<uint32_t>(clients_.size()), out);
  for (const auto& [id, health] : clients_) {
    bytes::PutInt64(id, out);
    bytes::PutByte(static_cast<uint8_t>(health.state), out);
    bytes::PutInt64(health.consecutive_failures, out);
    bytes::PutInt64(health.failures, out);
    bytes::PutInt64(health.successes, out);
    bytes::PutInt64(health.cooldown_remaining, out);
  }
}

bool HealthTracker::DecodeFrom(const std::vector<uint8_t>& buffer,
                               size_t* offset, HealthTracker* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  BreakerPolicy policy;
  if (!bytes::GetInt64(buffer, &cursor,
                       &policy.consecutive_failures_to_open) ||
      !bytes::GetDouble(buffer, &cursor, &policy.failure_rate_to_open) ||
      !bytes::GetInt64(buffer, &cursor, &policy.min_samples_for_rate) ||
      !bytes::GetInt64(buffer, &cursor, &policy.cooldown_rounds)) {
    return false;
  }
  // The recorded state only means anything under the policy it was built
  // with: a recovering coordinator must be configured identically.
  if (!(policy == out->policy_)) return false;
  int64_t opens = 0;
  int64_t closes = 0;
  uint32_t count = 0;
  if (!bytes::GetInt64(buffer, &cursor, &opens) || opens < 0) return false;
  if (!bytes::GetInt64(buffer, &cursor, &closes) || closes < 0) return false;
  if (!bytes::GetUint32(buffer, &cursor, &count)) return false;
  std::map<int64_t, ClientHealth> clients;
  int64_t previous_id = 0;
  for (uint32_t i = 0; i < count; ++i) {
    int64_t id = 0;
    uint8_t state = 0;
    ClientHealth health;
    if (!bytes::GetInt64(buffer, &cursor, &id) ||
        !bytes::GetByte(buffer, &cursor, &state) ||
        !bytes::GetInt64(buffer, &cursor, &health.consecutive_failures) ||
        !bytes::GetInt64(buffer, &cursor, &health.failures) ||
        !bytes::GetInt64(buffer, &cursor, &health.successes) ||
        !bytes::GetInt64(buffer, &cursor, &health.cooldown_remaining)) {
      return false;
    }
    if (i > 0 && id <= previous_id) return false;  // canonical ascending order
    if (state > static_cast<uint8_t>(BreakerState::kHalfOpen)) return false;
    if (health.consecutive_failures < 0 || health.failures < 0 ||
        health.successes < 0 || health.cooldown_remaining < 0) {
      return false;
    }
    health.state = static_cast<BreakerState>(state);
    if (health.state != BreakerState::kOpen && health.cooldown_remaining != 0) {
      return false;
    }
    clients.emplace(id, health);
    previous_id = id;
  }
  out->clients_ = std::move(clients);
  out->opens_ = opens;
  out->closes_ = closes;
  *offset = cursor;
  return true;
}

std::string RetryStatsSummary(const RetryStats& stats) {
  std::ostringstream out;
  out << "recovered=" << stats.RecoveredTotal()
      << " (retry=" << stats.retry_reports_recovered
      << " hedge=" << stats.hedge_reports << ")"
      << " retries=" << stats.retries_scheduled
      << " retransmits=" << stats.retransmits_requested
      << " exhausted=" << stats.retries_exhausted
      << " denied=" << stats.retry_budget_denied + stats.deadline_denied
      << " hedges=" << stats.hedges_issued
      << " cancelled=" << stats.hedges_cancelled
      << " breaker[skips=" << stats.breaker_skips
      << " probes=" << stats.breaker_probes << " opens=" << stats.breaker_opens
      << " closes=" << stats.breaker_closes << "]"
      << " backoff_min=" << stats.backoff_minutes
      << " elapsed_min=" << stats.elapsed_minutes;
  return out.str();
}

}  // namespace bitpush
