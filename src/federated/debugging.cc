#include "federated/debugging.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bitpush {

DistributionDiagnostics DiagnoseDistribution(const BitHistogram& histogram,
                                             double epsilon,
                                             const DebuggingConfig& config) {
  BITPUSH_CHECK_GE(histogram.bits(), 1);
  const RandomizedResponse rr = RandomizedResponse::FromEpsilon(epsilon);
  std::vector<bool> observed;
  const std::vector<double> means = histogram.UnbiasedMeans(rr, &observed);

  DistributionDiagnostics diagnostics;
  bool all_constant = true;
  bool all_zero = true;
  bool any_informative = false;
  int observed_bits = 0;
  int vacuous = 0;
  for (int j = 0; j < histogram.bits(); ++j) {
    const size_t index = static_cast<size_t>(j);
    if (!observed[index]) {
      ++vacuous;  // never sampled: carries nothing this round
      continue;
    }
    ++observed_bits;
    const double m = means[index];
    // Per-bit noise floor: estimation noise plus DP noise on this bit's
    // mean estimate.
    const double noise_floor =
        config.noise_multiplier *
        std::sqrt((0.25 + rr.ReportVariance()) /
                  static_cast<double>(histogram.total(j)));
    const double floor = std::max(config.informative_threshold,
                                  rr.enabled() ? noise_floor : 0.0);
    const bool informative = m >= floor;
    if (informative) {
      any_informative = true;
      diagnostics.highest_used_bit = j;
    } else {
      ++vacuous;
    }
    if (std::abs(m) > config.constant_tolerance &&
        std::abs(m - 1.0) > config.constant_tolerance) {
      all_constant = false;
    }
    if (std::abs(m) > config.constant_tolerance) all_zero = false;
  }

  diagnostics.constant_metric = observed_bits > 0 && all_constant;
  diagnostics.all_zero = observed_bits > 0 && all_zero;
  diagnostics.noise_dominated =
      rr.enabled() && observed_bits > 0 && !any_informative;
  diagnostics.vacuous_bit_fraction =
      static_cast<double>(vacuous) / static_cast<double>(histogram.bits());

  const int top = histogram.bits() - 1;
  if (observed[static_cast<size_t>(top)] &&
      means[static_cast<size_t>(top)] >= config.saturation_threshold) {
    diagnostics.saturated = true;
  }

  if (diagnostics.all_zero) {
    diagnostics.findings.push_back(
        "metric is identically zero (dead counter?)");
  } else if (diagnostics.constant_metric) {
    diagnostics.findings.push_back(
        "metric is constant across the cohort; mean/variance estimation "
        "is moot");
  }
  if (diagnostics.saturated) {
    diagnostics.findings.push_back(
        "values pile up at the clipping ceiling; increase the bit width");
  }
  if (diagnostics.noise_dominated) {
    diagnostics.findings.push_back(
        "every bit mean is within the DP noise floor; increase cohort or "
        "epsilon");
  }
  if (!diagnostics.saturated && diagnostics.vacuous_bit_fraction > 0.5) {
    diagnostics.findings.push_back(
        "over half the configured bits carry no information; reduce the "
        "bit width");
  }
  return diagnostics;
}

int RecommendBitWidth(const DistributionDiagnostics& diagnostics,
                      int pilot_bits, int headroom_bits) {
  BITPUSH_CHECK_GE(pilot_bits, 1);
  BITPUSH_CHECK_GE(headroom_bits, 0);
  if (diagnostics.saturated) return pilot_bits;  // widen elsewhere, not here
  if (diagnostics.highest_used_bit < 0) return 1;
  return std::clamp(diagnostics.highest_used_bit + 1 + headroom_bits, 1,
                    pilot_bits);
}

}  // namespace bitpush
