// Shamir secret sharing over GF(2^61 - 1).
//
// Substrate for the dropout-tolerant secure aggregation of
// federated/dropout_secure_agg.h (the Bonawitz/Segal et al. construction
// cited in Section 3.3): mask seeds are t-of-n shared among the cohort so
// the server can unmask around dropped clients without any single party
// learning a seed.

#ifndef BITPUSH_FEDERATED_SHAMIR_H_
#define BITPUSH_FEDERATED_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace bitpush {

// The Mersenne prime 2^61 - 1; field elements are in [0, kShamirPrime).
inline constexpr uint64_t kShamirPrime = (uint64_t{1} << 61) - 1;

// Field arithmetic (exposed for tests).
uint64_t FieldAdd(uint64_t a, uint64_t b);
uint64_t FieldSub(uint64_t a, uint64_t b);
uint64_t FieldMul(uint64_t a, uint64_t b);
// Multiplicative inverse; `a` must be nonzero.
uint64_t FieldInverse(uint64_t a);

struct ShamirShare {
  uint64_t x = 0;  // evaluation point, nonzero
  uint64_t y = 0;  // polynomial value
};

// Splits `secret` (< kShamirPrime) into `num_shares` shares at evaluation
// points 1..num_shares such that any `threshold` of them reconstruct it
// and fewer reveal nothing. Requires 1 <= threshold <= num_shares.
std::vector<ShamirShare> ShamirShareSecret(uint64_t secret, int threshold,
                                           int num_shares, Rng& rng);

// Reconstructs the secret from exactly `threshold` (or more) shares with
// distinct evaluation points, via Lagrange interpolation at 0.
uint64_t ShamirReconstruct(const std::vector<ShamirShare>& shares,
                           int threshold);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SHAMIR_H_
