// Segmented (group-by) aggregation.
//
// Section 4.3 discusses selective queries — "restricting eligibility to
// clients in a particular geography" — which must both wait for enough
// eligible clients and "enforce a minimum cohort size for privacy". This
// module runs an independent federated mean query per segment and
// suppresses segments below the minimum, returning an explicit marker
// instead of a low-privacy estimate.

#ifndef BITPUSH_FEDERATED_GROUPBY_H_
#define BITPUSH_FEDERATED_GROUPBY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/privacy_meter.h"
#include "federated/round.h"
#include "rng/rng.h"

namespace bitpush {

struct GroupByConfig {
  // Protocol for each segment's query (bits must match the codec).
  FederatedQueryConfig query;
  // Segments with fewer clients than this are suppressed. This overrides
  // query.cohort.min_cohort_size per segment.
  int64_t min_segment_size = 100;
};

struct SegmentEstimate {
  std::string segment;
  int64_t clients = 0;
  // True when the segment was below the privacy minimum; `estimate` is
  // unset and no protocol messages were sent for it.
  bool suppressed = false;
  double estimate = 0.0;
};

// Partitions `clients` by `segment_of` and estimates each segment's mean.
// Results are ordered by segment name. `meter` may be null.
std::vector<SegmentEstimate> RunGroupByMeanQuery(
    const std::vector<Client>& clients,
    const std::function<std::string(const Client&)>& segment_of,
    const FixedPointCodec& codec, const GroupByConfig& config,
    PrivacyMeter* meter, Rng& rng);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_GROUPBY_H_
