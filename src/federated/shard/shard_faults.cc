#include "federated/shard/shard_faults.h"

#include <cstddef>
#include <cstdint>

#include "util/check.h"

namespace bitpush {
namespace {

// SplitMix64 finalizer — the same mixing idiom as federated/faults.cc, so
// shard fault decisions share the per-decision-pure-hash contract.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void CheckRate(double rate, const char* name) {
  BITPUSH_CHECK(rate >= 0.0 && rate <= 1.0)
      << "shard fault rate out of [0,1]: " << name << "=" << rate;
}

}  // namespace

const char* ShardFaultTypeName(ShardFaultType type) {
  switch (type) {
    case ShardFaultType::kNone:
      return "none";
    case ShardFaultType::kCrashAtRecord:
      return "crash_at_record";
    case ShardFaultType::kStall:
      return "stall";
    case ShardFaultType::kTornJournal:
      return "torn_journal";
    case ShardFaultType::kStaleSnapshot:
      return "stale_snapshot";
  }
  return "unknown";
}

ShardFaultPlan::ShardFaultPlan(uint64_t seed, const ShardFaultRates& rates)
    : seed_(seed), rates_(rates), enabled_(rates.Any()) {
  CheckRate(rates.crash_at_record, "crash_at_record");
  CheckRate(rates.stall, "stall");
  CheckRate(rates.torn_journal, "torn_journal");
  CheckRate(rates.stale_snapshot, "stale_snapshot");
  const double sum = rates.crash_at_record + rates.stall +
                     rates.torn_journal + rates.stale_snapshot;
  BITPUSH_CHECK(sum <= 1.0) << "shard fault rates sum to " << sum << " > 1";
}

void ShardFaultPlan::SetPermanentLoss(int64_t shard, int64_t from_tick) {
  BITPUSH_CHECK(shard >= -1);
  lost_shard_ = shard;
  lost_from_tick_ = from_tick;
}

uint64_t ShardFaultPlan::Hash(int64_t shard, int64_t tick, int64_t attempt,
                              uint64_t salt) const {
  uint64_t h = Mix(seed_ ^ Mix(static_cast<uint64_t>(tick)));
  h = Mix(h ^ static_cast<uint64_t>(shard));
  h = Mix(h ^ static_cast<uint64_t>(attempt) ^ salt);
  return h;
}

double ShardFaultPlan::HashUniform(int64_t shard, int64_t tick,
                                   int64_t attempt, uint64_t salt) const {
  return static_cast<double>(Hash(shard, tick, attempt, salt) >> 11) *
         0x1.0p-53;
}

ShardFaultType ShardFaultPlan::Decide(int64_t shard, int64_t tick,
                                      int64_t attempt) const {
  if (!enabled_) return ShardFaultType::kNone;
  const double u = HashUniform(shard, tick, attempt, /*salt=*/0x51);
  double edge = rates_.crash_at_record;
  if (u < edge) return ShardFaultType::kCrashAtRecord;
  edge += rates_.stall;
  if (u < edge) return ShardFaultType::kStall;
  edge += rates_.torn_journal;
  if (u < edge) return ShardFaultType::kTornJournal;
  edge += rates_.stale_snapshot;
  if (u < edge) return ShardFaultType::kStaleSnapshot;
  return ShardFaultType::kNone;
}

int64_t ShardFaultPlan::CrashRecordIndex(int64_t shard, int64_t tick,
                                         int64_t attempt,
                                         int64_t journal_records) const {
  BITPUSH_CHECK_GE(journal_records, 0);
  const uint64_t h = Hash(shard, tick, attempt, /*salt=*/0x52);
  return static_cast<int64_t>(h %
                              static_cast<uint64_t>(journal_records + 1));
}

size_t ShardFaultPlan::TornTailBytes(int64_t shard, int64_t tick,
                                     int64_t attempt) const {
  const uint64_t h = Hash(shard, tick, attempt, /*salt=*/0x53);
  return static_cast<size_t>(1 + h % 3);
}

}  // namespace bitpush
