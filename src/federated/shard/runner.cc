#include "federated/shard/runner.h"

// bitpush-lint: allow(privacy-metering): the runner orchestrates shards
// that each charge their own shard-local meter during collection; the
// delivery loop and the reference below move already-metered tallies.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "federated/server.h"
#include "obs/events.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "util/check.h"

namespace bitpush {
namespace {

bool ScheduledAt(const CampaignQuery& query, int64_t tick) {
  return tick >= query.phase &&
         (tick - query.phase) % query.cadence_ticks == 0;
}

// The crash sabotage applied after a faulted delivery attempt: the tick's
// work (or more) never became durable, and the process dies. In-memory
// shards have no durable suffix to lose — the restart alone wipes them
// back to tick 0.
bool ApplyShardSabotage(ShardCoordinator* coord, const ShardFaultPlan& plan,
                        ShardFaultType fault, int64_t tick, int64_t attempt,
                        std::string* error) {
  if (coord->durable()) {
    const std::string journal = coord->journal_path();
    switch (fault) {
      case ShardFaultType::kCrashAtRecord: {
        JournalReadResult contents;
        if (!ReadShardJournal(journal, &contents, error)) return false;
        const int64_t keep = plan.CrashRecordIndex(
            coord->shard_index(), tick, attempt,
            static_cast<int64_t>(contents.records.size()));
        if (!TruncateShardJournalToRecords(
                journal, static_cast<size_t>(keep), error)) {
          return false;
        }
        break;
      }
      case ShardFaultType::kTornJournal: {
        if (!TearShardJournalTail(
                journal,
                plan.TornTailBytes(coord->shard_index(), tick, attempt),
                error)) {
          return false;
        }
        break;
      }
      case ShardFaultType::kStaleSnapshot: {
        // Every record since the last snapshot is gone; recovery restarts
        // from the snapshot alone (or from scratch if none was taken).
        if (!TruncateShardJournalToRecords(journal, 0, error)) return false;
        break;
      }
      case ShardFaultType::kNone:
      case ShardFaultType::kStall:
        break;
    }
  }
  coord->Restart();
  return true;
}

// The in-memory outcome capture the reference shares with in-memory
// shards' semantics: nothing restored, full outcomes kept per query.
class CaptureRecorder : public CampaignRecorder {
 public:
  bool RestoreQueryResult(int64_t /*tick*/, size_t /*query_index*/,
                          CampaignTickResult* /*out*/) override {
    return false;
  }
  void OnQueryFinished(int64_t /*tick*/, size_t query_index,
                       const CampaignTickResult& /*result*/,
                       const FederatedQueryResult& outcome) override {
    outcomes[query_index] = outcome;
  }
  bool RestoreRound(int64_t /*round_id*/, RoundOutcome* /*out*/) override {
    return false;
  }
  void OnRoundClosed(int64_t /*round_id*/,
                     const RoundOutcome& /*outcome*/) override {}

  std::map<size_t, FederatedQueryResult> outcomes;
};

}  // namespace

namespace {

// The shard retry budget is max_attempts_per_tick, not RetryPolicy's
// per-client counters, so the jitter schedule must be usable even with the
// policy's default (retries disabled at the round layer).
RetryPolicy ShardBackoffPolicy(RetryPolicy policy,
                               int64_t max_attempts_per_tick) {
  if (!policy.enabled()) {
    policy.max_retries_per_client = max_attempts_per_tick;
  }
  return policy;
}

}  // namespace

ShardedCampaignRunner::ShardedCampaignRunner(
    std::vector<CampaignQuery> queries, MeterPolicy policy,
    ShardedCampaignOptions options)
    : queries_(std::move(queries)),
      policy_(policy),
      options_(std::move(options)),
      backoff_(options_.seed,
               ShardBackoffPolicy(options_.backoff,
                                  options_.max_attempts_per_tick)) {
  BITPUSH_CHECK_GE(options_.shards, 1);
  BITPUSH_CHECK_GE(options_.max_attempts_per_tick, 1);
  BITPUSH_CHECK(options_.attempt_cost_minutes >= 0.0);
  BITPUSH_CHECK(options_.stall_cost_minutes >= 0.0);
}

void ShardedCampaignRunner::Open(
    const std::vector<const std::vector<Client>*>& populations,
    const std::vector<FixedPointCodec>& codecs) {
  BITPUSH_CHECK(!open_) << "Open() called twice";
  BITPUSH_CHECK_EQ(populations.size(), queries_.size());
  BITPUSH_CHECK_EQ(codecs.size(), queries_.size());

  // Partition every query's population, then regroup per shard.
  std::vector<std::vector<std::vector<Client>>> per_query_partitions;
  per_query_partitions.reserve(queries_.size());
  for (const std::vector<Client>* population : populations) {
    BITPUSH_CHECK(population != nullptr);
    per_query_partitions.push_back(
        PartitionClients(*population, options_.shards));
  }

  coordinators_.reserve(static_cast<size_t>(options_.shards));
  for (int64_t s = 0; s < options_.shards; ++s) {
    ShardCoordinatorOptions shard_options;
    shard_options.shard_index = s;
    shard_options.seed = ShardSeed(options_.seed, s);
    if (!options_.state_root.empty()) {
      shard_options.state_dir =
          options_.state_root + "/shard" + std::to_string(s);
    }
    shard_options.fsync = options_.fsync;
    auto coordinator = std::make_unique<ShardCoordinator>(
        queries_, policy_, std::move(shard_options), options_.resilience);
    std::vector<std::vector<Client>> partitions;
    partitions.reserve(queries_.size());
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      partitions.push_back(
          std::move(per_query_partitions[qi][static_cast<size_t>(s)]));
    }
    coordinator->Bind(std::move(partitions), codecs);
    coordinators_.push_back(std::move(coordinator));
  }
  merge_ = std::make_unique<MergeTier>(queries_, options_.shards,
                                       options_.quorum_fraction);
  open_ = true;
}

ShardCoordinator* ShardedCampaignRunner::shard(int64_t s) {
  BITPUSH_CHECK(s >= 0 && s < options_.shards);
  return coordinators_[static_cast<size_t>(s)].get();
}

std::vector<uint8_t> ShardedCampaignRunner::shard_meter_bytes(
    int64_t s) const {
  BITPUSH_CHECK(s >= 0 && s < options_.shards);
  const PrivacyMeter* meter =
      coordinators_[static_cast<size_t>(s)]->local_meter();
  std::vector<uint8_t> bytes;
  if (meter != nullptr) meter->EncodeTo(&bytes);
  return bytes;
}

bool ShardedCampaignRunner::RunTick(int64_t tick, MergedTickResult* out,
                                    std::string* error) {
  BITPUSH_CHECK(open_) << "Open() before RunTick()";
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK(error != nullptr);
  BITPUSH_CHECK_EQ(tick, next_tick_) << "ticks must run in order";

  const ShardFaultPlan* plan = options_.fault_plan;
  std::vector<ShardLoss> losses;
  std::vector<int64_t> delivered_shards;
  double makespan = 0.0;

  // Merge-tier tick span: the root of this tick's cross-shard trace. Its
  // context rides into every CollectTick (and from there across the frame
  // codec), so each shard's collect/harvest/recover spans render as
  // children of this span in the Chrome trace export.
  obs::Span merge_span("merge.tick", "merge");
  merge_span.set_ids(tick, /*query_index=*/-1, /*round_id=*/-1);
  const obs::TraceContext merge_context = merge_span.context();

  for (int64_t s = 0; s < options_.shards; ++s) {
    ShardCoordinator* coordinator = coordinators_[static_cast<size_t>(s)].get();
    const auto lose_shard = [&] {
      ShardLoss loss;
      loss.shard = s;
      loss.clients_per_query.reserve(queries_.size());
      for (size_t qi = 0; qi < queries_.size(); ++qi) {
        loss.clients_per_query.push_back(coordinator->partition_clients(qi));
      }
      losses.push_back(std::move(loss));
      coordinator->NoteLostTick();
      // kVolatile: shard delivery is harness scheduling, invisible to the
      // single-coordinator reference the stable ring is compared against.
      obs::EventArgs args;
      args.tick = tick;
      args.shard = s;
      args.detail = "missed tick deadline";
      obs::EmitEvent(obs::EventType::kShardLost, obs::Determinism::kVolatile,
                     std::move(args));
    };

    if (plan != nullptr && plan->PermanentlyLost(s, tick)) {
      lose_shard();
      continue;
    }

    double clock = 0.0;
    bool delivered = false;
    const int64_t recoveries_before = coordinator->metrics().recoveries;
    for (int64_t attempt = 0; attempt < options_.max_attempts_per_tick;
         ++attempt) {
      if (attempt > 0) {
        // 1-based attempt index for the schedule's decorrelated jitter.
        const double wait = backoff_.BackoffMinutes(tick, s, attempt);
        if (clock + wait + options_.attempt_cost_minutes >
            options_.tick_budget_minutes) {
          break;  // the retry cannot finish inside the tick budget
        }
        clock += wait;
        coordinator->NoteRetry();
      } else if (options_.attempt_cost_minutes >
                 options_.tick_budget_minutes) {
        break;
      }
      clock += options_.attempt_cost_minutes;
      coordinator->NoteAttempt();

      const ShardFaultType fault =
          plan != nullptr ? plan->Decide(s, tick, attempt)
                          : ShardFaultType::kNone;
      if (fault == ShardFaultType::kStall) {
        coordinator->NoteStall();
        clock += options_.stall_cost_minutes;
        continue;
      }

      ShardTickFrame frame;
      if (!coordinator->CollectTick(tick, &frame, error, merge_context)) {
        return false;
      }
      if (fault == ShardFaultType::kNone) {
        // The frame crosses the wire codec even in-process: the merge
        // tier only ever consumes fail-closed-decoded bytes.
        std::vector<uint8_t> wire;
        EncodeShardTickFrame(frame, &wire);
        ShardTickFrame decoded;
        if (!DecodeShardTickFrame(wire, &decoded)) {
          *error = "shard tick frame rejected by the merge tier";
          return false;
        }
        merge_->AddFrame(decoded);
        delivered = true;
        break;
      }
      if (!ApplyShardSabotage(coordinator, *plan, fault, tick, attempt,
                              error)) {
        return false;
      }
    }

    if (delivered) {
      delivered_shards.push_back(s);
      makespan = std::max(makespan, clock);
      if (coordinator->metrics().recoveries > recoveries_before) {
        obs::EventArgs args;
        args.tick = tick;
        args.shard = s;
        args.detail = "delivered after crash recovery (replayed=" +
                      std::to_string(coordinator->metrics().replayed_records) +
                      ")";
        obs::EmitEvent(obs::EventType::kShardRecovered,
                       obs::Determinism::kVolatile, std::move(args));
      }
    } else {
      lose_shard();
    }
  }

  MergedTickResult result = merge_->CloseTick(tick, losses);

  // Snapshots only after the merge consumed the tick, and only on the
  // shards that delivered it — a lost shard's undelivered journal suffix
  // must survive for its catch-up recovery.
  if (options_.snapshot_every_ticks > 0 &&
      (tick + 1) % options_.snapshot_every_ticks == 0) {
    for (const int64_t s : delivered_shards) {
      if (!coordinators_[static_cast<size_t>(s)]->Snapshot(error)) {
        return false;
      }
    }
  }

  history_.push_back(result);
  makespan_minutes_.push_back(makespan);
  ++next_tick_;
  *out = std::move(result);
  return true;
}

ReferenceCampaignResult RunSingleCoordinatorReference(
    const std::vector<CampaignQuery>& queries, const MeterPolicy& policy,
    int64_t shards, uint64_t seed,
    const std::vector<const std::vector<Client>*>& populations,
    const std::vector<FixedPointCodec>& codecs, int64_t ticks,
    ResilienceConfig resilience) {
  BITPUSH_CHECK_GE(shards, 1);
  BITPUSH_CHECK_EQ(populations.size(), queries.size());
  BITPUSH_CHECK_EQ(codecs.size(), queries.size());

  // The same deterministic split and seeds the sharded runner uses —
  // executed inline with nothing but plain campaigns.
  struct ShardState {
    std::vector<std::vector<Client>> partitions;  // per query
    std::unique_ptr<PrivacyMeter> meter;
    std::unique_ptr<MeasurementCampaign> campaign;
    std::unique_ptr<CaptureRecorder> recorder;
    Rng rng{0};
  };
  std::vector<ShardState> states(static_cast<size_t>(shards));
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    BITPUSH_CHECK(populations[qi] != nullptr);
    std::vector<std::vector<Client>> partitions =
        PartitionClients(*populations[qi], shards);
    for (int64_t s = 0; s < shards; ++s) {
      states[static_cast<size_t>(s)].partitions.push_back(
          std::move(partitions[static_cast<size_t>(s)]));
    }
  }
  for (int64_t s = 0; s < shards; ++s) {
    ShardState& state = states[static_cast<size_t>(s)];
    state.meter = std::make_unique<PrivacyMeter>(policy);
    state.campaign = std::make_unique<MeasurementCampaign>(
        queries, state.meter.get(), resilience);
    state.recorder = std::make_unique<CaptureRecorder>();
    state.campaign->set_recorder(state.recorder.get());
    state.rng = Rng(ShardSeed(seed, s));
  }

  ReferenceCampaignResult reference;
  for (int64_t tick = 0; tick < ticks; ++tick) {
    // Per shard: run the tick and normalize its scheduled queries into
    // frame rows with the shared MakeShardQueryFrame.
    std::vector<std::vector<ShardQueryFrame>> rows(
        static_cast<size_t>(shards));
    for (int64_t s = 0; s < shards; ++s) {
      ShardState& state = states[static_cast<size_t>(s)];
      std::vector<const std::vector<Client>*> shard_populations;
      shard_populations.reserve(queries.size());
      for (const std::vector<Client>& partition : state.partitions) {
        shard_populations.push_back(&partition);
      }
      state.recorder->outcomes.clear();
      const std::vector<CampaignTickResult> results = state.campaign->RunTick(
          tick, shard_populations, codecs, state.rng);

      // Emulate the fault-free shard-layer counters: one clean delivery
      // attempt per shard per tick.
      ++reference.metrics.ticks_completed;
      ++reference.metrics.shard_attempts;

      size_t result_index = 0;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        if (!ScheduledAt(queries[qi], tick)) continue;
        BITPUSH_CHECK_LT(result_index, results.size());
        const CampaignTickResult& result = results[result_index++];
        const auto it = state.recorder->outcomes.find(qi);
        BITPUSH_CHECK(it != state.recorder->outcomes.end());
        ShardQueryFrame row = MakeShardQueryFrame(
            static_cast<int64_t>(qi),
            static_cast<int64_t>(state.partitions[qi].size()), result,
            it->second);
        if (row.result.status == CampaignTickResult::Status::kRan) {
          ++reference.metrics.queries_ran;
        } else {
          ++reference.metrics.queries_skipped;
        }
        reference.metrics.reports_total += row.result.reports;
        rows[static_cast<size_t>(s)].push_back(std::move(row));
      }
    }

    // Merge: plain scalar tally adds (never the kernels — that contrast
    // is the point of the oracle) + the shared finalize arithmetic.
    MergedTickResult merged_tick;
    merged_tick.tick = tick;
    merged_tick.shards_delivered = shards;
    size_t scheduled_index = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (!ScheduledAt(queries[qi], tick)) continue;
      std::vector<const ShardQueryFrame*> delivered;
      delivered.reserve(static_cast<size_t>(shards));
      TallyBatch merged;
      for (int64_t s = 0; s < shards; ++s) {
        const ShardQueryFrame& row =
            rows[static_cast<size_t>(s)][scheduled_index];
        delivered.push_back(&row);
        if (row.tallies.bits() == 0) continue;
        if (merged.bits() == 0) {
          merged.totals.assign(row.tallies.totals.size(), 0);
          merged.ones.assign(row.tallies.ones.size(), 0);
        }
        BITPUSH_CHECK_EQ(merged.bits(), row.tallies.bits());
        for (size_t j = 0; j < merged.totals.size(); ++j) {
          merged.totals[j] += row.tallies.totals[j];
          merged.ones[j] += row.tallies.ones[j];
        }
      }
      merged_tick.queries.push_back(FinalizeMergedQuery(
          queries[qi], tick, delivered, std::move(merged),
          /*clients_lost=*/0, /*shards_lost=*/0));
      ++scheduled_index;
    }
    reference.ticks.push_back(std::move(merged_tick));
  }

  reference.shard_meter_bytes.resize(static_cast<size_t>(shards));
  for (int64_t s = 0; s < shards; ++s) {
    states[static_cast<size_t>(s)].meter->EncodeTo(
        &reference.shard_meter_bytes[static_cast<size_t>(s)]);
    reference.retry_stats.MergeFrom(
        states[static_cast<size_t>(s)].campaign->retry_stats());
  }
  return reference;
}

}  // namespace bitpush
