// The merge tier of the multi-coordinator shard-out (docs/SHARDING.md).
//
// Bit tallies are exactly additive (the paper's one-bit sums compose
// across sub-populations), so the root of the two-tier topology never
// touches a report: each ShardCoordinator ships one ShardTickFrame — its
// per-query `TallyBatch` columns, summarized tick results, cumulative
// RetryStats, and shard-layer ShardMetrics — and the MergeTier adds the
// tally words with the dispatched `add_words` kernel, pools the bit means,
// and recomputes the variance bound at the merged n.
//
// Loss accounting is the point: when a shard misses its tick deadline the
// merge excludes it *exactly* — effective n shrinks by the shard's
// partition, `shards_lost`/`clients_lost` land on the result, and the
// variance bound is re-evaluated at the reduced n — instead of silently
// averaging a hole. Below quorum the tick fails closed: no estimate is
// published at all.
//
// Determinism contract: FinalizeMergedQuery is pure arithmetic shared by
// the sharded runner and the single-coordinator reference
// (shard/runner.h), so `sharded == reference` reduces to the shard
// machinery (partitioning, per-shard campaigns, journals, wire frames,
// kernel adds) producing the same inputs — which tests/prop/ asserts
// bit-for-bit.

#ifndef BITPUSH_FEDERATED_SHARD_MERGE_H_
#define BITPUSH_FEDERATED_SHARD_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "batch/batch.h"
#include "federated/campaign.h"
#include "federated/faults.h"
#include "federated/resilience.h"

namespace bitpush {

// Shard-layer operational counters, carried cumulatively in every frame
// and summed across shards at the root. These count coordinator-side
// events (attempts, recoveries, replays), not protocol outcomes — the
// protocol counters live in CampaignTickResult/RetryStats/FaultStats.
struct ShardMetrics {
  int64_t ticks_completed = 0;
  int64_t queries_ran = 0;
  int64_t queries_skipped = 0;
  int64_t reports_total = 0;
  int64_t shard_attempts = 0;
  int64_t shard_retries = 0;
  int64_t shard_stalls = 0;
  int64_t recoveries = 0;
  int64_t replayed_records = 0;
  int64_t torn_tails = 0;
  int64_t lost_ticks = 0;

  void MergeFrom(const ShardMetrics& other);
  // Canonical "name value\n" lines in fixed order — the shard twin of
  // obs::DeterministicMetricsSnapshot, compared byte-for-byte by the
  // sharded-vs-single oracle.
  std::string ToSnapshot() const;

  friend bool operator==(const ShardMetrics&, const ShardMetrics&) = default;
};

void EncodeShardMetrics(const ShardMetrics& metrics,
                        std::vector<uint8_t>* out);
bool DecodeShardMetrics(const std::vector<uint8_t>& buffer, size_t* offset,
                        ShardMetrics* out);

// One scheduled query's contribution from one shard.
struct ShardQueryFrame {
  int64_t query_index = 0;
  // Clients in this shard's partition for the query (the merge weight and
  // the exact per-query loss if this shard goes dark).
  int64_t partition_clients = 0;
  CampaignTickResult result;
  // Round-1 + round-2 tallies pooled, zero-width when the query skipped.
  TallyBatch tallies;
  // Round-level fault injections/reactions for this query this tick.
  FaultStats faults;

  friend bool operator==(const ShardQueryFrame&,
                         const ShardQueryFrame&) = default;
};

// Everything one shard ships to the merge tier for one tick.
struct ShardTickFrame {
  int64_t shard = 0;
  int64_t tick = 0;
  std::vector<ShardQueryFrame> queries;  // scheduled queries, in order
  RetryStats retry;                      // shard-cumulative
  ShardMetrics metrics;                  // shard-cumulative
  // Cross-shard trace context (obs/trace.h): the coordinates of the
  // shard's collect span for this tick — span_id under trace_id, parented
  // by the merge tier's tick span (parent_span_id) — so the root can
  // stitch per-shard work under its own span hierarchy in the Chrome
  // trace export. All zero when tracing is disabled; ids are never
  // negative.
  int64_t trace_id = 0;
  int64_t span_id = 0;
  int64_t parent_span_id = 0;

  friend bool operator==(const ShardTickFrame&,
                         const ShardTickFrame&) = default;
};

// Sub-version byte of the frame's trailing trace-context section. Bumped
// independently of kWireFormatVersion so the trace payload can evolve
// without invalidating the tally codec; decoders fail closed on any value
// they do not know.
inline constexpr uint8_t kTraceContextVersion = 1;

// Wire codec for the shard -> merge hop. Same contract as federated/wire:
// a leading format-version byte, fail-closed decoding (version, counts,
// tally consistency 0 <= ones <= totals, full-buffer consumption), and
// `*out` untouched on failure.
void EncodeShardTickFrame(const ShardTickFrame& frame,
                          std::vector<uint8_t>* out);
bool DecodeShardTickFrame(const std::vector<uint8_t>& buffer,
                          ShardTickFrame* out);

// One query's merged result at the root.
struct MergedQueryResult {
  // kRan: estimate valid. kSkipped: every delivered shard skipped (cohort
  // or budget). kFailedQuorum: too few shards delivered — fail closed, no
  // estimate.
  enum class Status : uint8_t { kRan, kSkipped, kFailedQuorum };

  int64_t tick = 0;
  std::string query_name;
  Status status = Status::kRan;
  // Partition-weighted mean of the delivered shard estimates.
  double estimate = 0.0;
  int64_t reports = 0;           // merged report count (the effective n)
  int64_t shards_merged = 0;     // frames that arrived
  int64_t shards_ran = 0;        // of those, shards whose query ran
  int64_t shards_lost = 0;
  int64_t effective_clients = 0;  // clients behind the delivered shards
  int64_t clients_lost = 0;       // clients behind the lost shards
  TallyBatch tallies;             // word-summed across delivered shards
  // Unbiased per-bit means from the merged tallies (clamped to [0,1]).
  std::vector<double> pooled_bit_means;
  // Plug-in variance bound at the merged n and realized allocation —
  // recomputed after loss, so a lost shard visibly widens it.
  double variance_bound = 0.0;
  bool degraded = false;  // at least one shard was lost this tick

  friend bool operator==(const MergedQueryResult&,
                         const MergedQueryResult&) = default;
};

struct MergedTickResult {
  int64_t tick = 0;
  bool quorum_failed = false;
  int64_t shards_delivered = 0;
  int64_t shards_lost = 0;
  std::vector<MergedQueryResult> queries;

  friend bool operator==(const MergedTickResult&,
                         const MergedTickResult&) = default;
};

// Loss accounting input for one lost shard: clients_per_query is indexed
// parallel to the campaign's full query list.
struct ShardLoss {
  int64_t shard = 0;
  std::vector<int64_t> clients_per_query;
};

// Pure merge arithmetic, shared by MergeTier and the single-coordinator
// reference so both compute bit-identical results. `delivered` holds the
// per-shard frames for this query in ascending shard order;
// `merged_tallies` is their tally sum (the caller chooses the adder — the
// kernel path or the scalar reference). epsilon is the query's
// randomized-response epsilon (<= 0 means disabled).
MergedQueryResult FinalizeMergedQuery(
    const CampaignQuery& query, int64_t tick,
    const std::vector<const ShardQueryFrame*>& delivered,
    TallyBatch merged_tallies, int64_t clients_lost, int64_t shards_lost);

// Accumulates delivered frames for one tick and closes it into a
// MergedTickResult. Tracks shard-cumulative RetryStats per source (the
// per-shard view MetricMonitor needs to survive counter resets), merged
// ShardMetrics, and summed FaultStats across ticks.
class MergeTier {
 public:
  // CHECK-fails unless 1 <= shards and 0 < quorum_fraction <= 1.
  MergeTier(std::vector<CampaignQuery> queries, int64_t shards,
            double quorum_fraction);

  // Minimum delivered shards for a tick to publish estimates.
  int64_t quorum_min() const { return quorum_min_; }

  // Ingests one decoded frame. CHECK-fails on a shard out of range, a
  // duplicate frame, or a frame for a different tick than the open one.
  void AddFrame(const ShardTickFrame& frame);

  // Closes `tick`: merges the pending frames (kernel word-adds), applies
  // the loss accounting, and resets for the next tick.
  MergedTickResult CloseTick(int64_t tick, const std::vector<ShardLoss>& lost);

  // Last-seen cumulative RetryStats per shard (index = shard). Shards that
  // never delivered hold default stats.
  const std::vector<RetryStats>& per_shard_retry_stats() const {
    return per_shard_retry_;
  }
  // Sum of the per-shard cumulative RetryStats.
  RetryStats merged_retry_stats() const;
  // Sum of the per-shard cumulative ShardMetrics.
  ShardMetrics merged_metrics() const;
  // Round-level fault counters summed over every merged frame.
  const FaultStats& fault_stats() const { return fault_stats_; }

 private:
  std::vector<CampaignQuery> queries_;
  int64_t shards_ = 1;
  int64_t quorum_min_ = 1;
  std::vector<ShardTickFrame> pending_;
  std::vector<bool> pending_present_;
  std::vector<RetryStats> per_shard_retry_;
  std::vector<ShardMetrics> per_shard_metrics_;
  FaultStats fault_stats_;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SHARD_MERGE_H_
