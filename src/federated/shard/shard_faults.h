// Shard-level fault injection: the chaos layer for the multi-coordinator
// shard-out (docs/SHARDING.md). Where federated/faults.h perturbs
// individual clients inside a round, ShardFaultPlan perturbs whole
// coordinator shards between the shard and the merge tier:
//
//   kCrashAtRecord  — the shard process dies after its tick ran but before
//                     the frame was delivered, with the journal cut at a
//                     deterministic record index (the kill-at-every-record
//                     model of persist/, lifted to shards).
//   kStall          — the shard is alive but late: the attempt burns
//                     simulated minutes and delivers nothing.
//   kTornJournal    — the crash tore the last journal frame mid-write
//                     (1-3 bytes missing); recovery must tolerate the torn
//                     tail and re-run the tick.
//   kStaleSnapshot  — every journal record after the last snapshot is
//                     lost; recovery restarts from the snapshot alone.
//
// Decisions are pure hashes of (seed, shard, tick, attempt) — the same
// SplitMix64 idiom as FaultPlan — so they consume no RNG stream, are
// order-independent, and replay identically during crash recovery.
// Permanent loss (the degraded-merge path) is injected explicitly rather
// than sampled: tests name the shard and the tick it disappears.

#ifndef BITPUSH_FEDERATED_SHARD_SHARD_FAULTS_H_
#define BITPUSH_FEDERATED_SHARD_SHARD_FAULTS_H_

#include <cstddef>
#include <cstdint>

namespace bitpush {

enum class ShardFaultType : uint8_t {
  kNone = 0,
  kCrashAtRecord = 1,
  kStall = 2,
  kTornJournal = 3,
  kStaleSnapshot = 4,
};

const char* ShardFaultTypeName(ShardFaultType type);

// Per-attempt probabilities; must each be in [0, 1] and sum to <= 1.
struct ShardFaultRates {
  double crash_at_record = 0.0;
  double stall = 0.0;
  double torn_journal = 0.0;
  double stale_snapshot = 0.0;

  bool Any() const {
    return crash_at_record > 0.0 || stall > 0.0 || torn_journal > 0.0 ||
           stale_snapshot > 0.0;
  }
};

class ShardFaultPlan {
 public:
  // A default plan injects nothing (enabled() is false).
  ShardFaultPlan() = default;
  // CHECK-fails on invalid rates.
  ShardFaultPlan(uint64_t seed, const ShardFaultRates& rates);

  bool enabled() const { return enabled_ || lost_shard_ >= 0; }
  const ShardFaultRates& rates() const { return rates_; }

  // Marks `shard` irrecoverably lost from `from_tick` on: it never answers
  // again and the merge tier must degrade around it. -1 disables.
  void SetPermanentLoss(int64_t shard, int64_t from_tick);
  bool PermanentlyLost(int64_t shard, int64_t tick) const {
    return lost_shard_ >= 0 && shard == lost_shard_ && tick >= lost_from_tick_;
  }

  // The fault injected into this (shard, tick, attempt) delivery attempt.
  ShardFaultType Decide(int64_t shard, int64_t tick, int64_t attempt) const;

  // For kCrashAtRecord: how many of the journal's records survive the
  // crash, in [0, journal_records]. Cutting short of the tick's own
  // records forces recovery to replay or re-run earlier work; keeping all
  // of them models a crash after the fsync but before frame delivery.
  int64_t CrashRecordIndex(int64_t shard, int64_t tick, int64_t attempt,
                           int64_t journal_records) const;

  // For kTornJournal: bytes torn off the journal tail (1-3; always lands
  // inside the final frame's CRC, which ReadJournal treats as torn).
  size_t TornTailBytes(int64_t shard, int64_t tick, int64_t attempt) const;

 private:
  uint64_t Hash(int64_t shard, int64_t tick, int64_t attempt,
                uint64_t salt) const;
  double HashUniform(int64_t shard, int64_t tick, int64_t attempt,
                     uint64_t salt) const;

  uint64_t seed_ = 0;
  ShardFaultRates rates_;
  bool enabled_ = false;
  int64_t lost_shard_ = -1;
  int64_t lost_from_tick_ = 0;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SHARD_SHARD_FAULTS_H_
