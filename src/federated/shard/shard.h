// One coordinator shard of the multi-coordinator shard-out
// (docs/SHARDING.md): a ShardCoordinator owns collection, resilience, and
// persistence for one deterministic partition of the client population —
// its own PrivacyMeter ledger, its own journal/snapshot under
// `state_dir`, and its own seeded RNG stream — and hands the merge tier
// one ShardTickFrame per tick.
//
// Failure domain: everything behind a ShardCoordinator can die and come
// back (Restart + crash recovery through DurableCampaignRunner) or not
// come back at all (the merge tier degrades around it); neither case can
// corrupt another shard, because shards share no state — client ids are
// globally unique, so even the per-client meter ledgers are disjoint.
//
// Determinism: shard s runs its campaign with Rng(ShardSeed(root, s))
// over PartitionClients' round-robin split. Both are pure functions of
// (root seed, shard count, population order), so an N-shard run is a
// deterministic program — and the single-coordinator reference
// (shard/runner.h) re-executes the identical per-shard streams inline,
// which is what makes `sharded == reference` testable bit-for-bit.

#ifndef BITPUSH_FEDERATED_SHARD_SHARD_H_
#define BITPUSH_FEDERATED_SHARD_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/privacy_meter.h"
#include "federated/campaign.h"
#include "federated/client.h"
#include "federated/resilience.h"
#include "federated/shard/merge.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "persist/recovery.h"
#include "rng/rng.h"

namespace bitpush {

// The seed of shard `shard_index`'s campaign RNG and resilience salt:
// a SplitMix64-style derivation so sibling shards get decorrelated
// streams from one root seed.
uint64_t ShardSeed(uint64_t root_seed, int64_t shard_index);

// Deterministic round-robin partition: client i of `population` goes to
// shard i % shards, relative order preserved. Every client appears in
// exactly one shard, so tallies merge losslessly and meter ledgers are
// disjoint.
std::vector<std::vector<Client>> PartitionClients(
    const std::vector<Client>& population, int64_t shards);

// Journal helpers that tolerate a first sequence number > 0 (the normal
// state of a journal that has been truncated by a snapshot; plain
// ReadJournal/TruncateJournalToRecords require the caller to know the
// snapshot's next_seq). Used by the shard fault harness and the
// kill-at-every-record matrix.
bool ReadShardJournal(const std::string& path, JournalReadResult* out,
                      std::string* error);
bool TruncateShardJournalToRecords(const std::string& path,
                                   size_t keep_records, std::string* error);
// Chops `bytes` off the end of the file — the torn-write crash artifact.
bool TearShardJournalTail(const std::string& path, size_t bytes,
                          std::string* error);

// Builds one query's frame row from a live outcome: tallies are the
// round-1 + round-2 histograms (zero-width when the query never ran a
// round) and faults are the round-level sums. Shared by the shard harvest
// and the single-coordinator reference so both normalize identically.
ShardQueryFrame MakeShardQueryFrame(int64_t query_index,
                                    int64_t partition_clients,
                                    const CampaignTickResult& result,
                                    const FederatedQueryResult& outcome);

struct ShardCoordinatorOptions {
  int64_t shard_index = 0;
  // This shard's own seed (already derived via ShardSeed).
  uint64_t seed = 0;
  // Directory for journal.wal/snapshot.bin; "" runs the shard in-memory
  // (no durability — Restart() then re-executes from tick 0, which is
  // deterministic and converges to the same frames).
  std::string state_dir;
  bool fsync = true;
};

// One shard: a campaign coordinator over a client partition with its own
// meter, journal, and RNG stream.
class ShardCoordinator : private CampaignRecorder {
 public:
  ShardCoordinator(std::vector<CampaignQuery> queries, MeterPolicy policy,
                   ShardCoordinatorOptions options,
                   ResilienceConfig resilience = {});
  ~ShardCoordinator() override;

  // Installs this shard's per-query client partitions (indexed parallel
  // to the query list) and codecs. Must be called once before the first
  // CollectTick.
  void Bind(std::vector<std::vector<Client>> partitions,
            std::vector<FixedPointCodec> codecs);

  // Runs (or recovers) every tick up to and including `tick`, in order,
  // and fills `*frame` with `tick`'s contribution. A shard that fell
  // behind (lost ticks, crash recovery) catches up here — earlier ticks
  // re-run deterministically but are not re-delivered. Fails closed
  // (false + *error) on any durability violation. `parent` is the merge
  // tier's tick-span context; when tracing is on, the shard's collect
  // span is parented under it and the frame carries the stitched
  // coordinates back across the wire.
  bool CollectTick(int64_t tick, ShardTickFrame* frame, std::string* error,
                   const obs::TraceContext& parent = obs::TraceContext{});

  // Takes a snapshot and truncates the journal. Only legal at a delivered
  // tick boundary (the sharded runner calls it after the merge publishes,
  // so an undelivered tick's records always survive in the journal).
  // No-op (true) for in-memory shards.
  bool Snapshot(std::string* error);

  // Simulates a shard process crash: all in-process state is dropped. A
  // durable shard recovers from its journal/snapshot on the next
  // CollectTick; an in-memory shard re-executes from tick 0.
  void Restart();

  bool durable() const { return !options_.state_dir.empty(); }
  std::string journal_path() const;
  int64_t shard_index() const { return options_.shard_index; }
  // Clients in this shard's partition for query `query_index`.
  int64_t partition_clients(size_t query_index) const;

  // The shard-local privacy ledger: every report this shard collects is
  // charged here and nowhere else (no cross-shard double metering).
  // Returns the live meter; null before the first CollectTick.
  const PrivacyMeter* local_meter() const;

  // Harness-side operational counters (attempts, recoveries, replays).
  // They survive simulated crashes — they model the merge tier's view of
  // the shard, not state inside the failure domain.
  const ShardMetrics& metrics() const { return metrics_; }
  void NoteAttempt() { ++metrics_.shard_attempts; }
  void NoteRetry() { ++metrics_.shard_retries; }
  void NoteStall() { ++metrics_.shard_stalls; }
  void NoteLostTick() { ++metrics_.lost_ticks; }

 private:
  struct MemoryState;

  // CampaignRecorder: the in-memory mode's outcome capture. Nothing is
  // ever restored (that is the durable runner's job); OnQueryFinished
  // keeps the current tick's full outcomes for harvest.
  bool RestoreQueryResult(int64_t tick, size_t query_index,
                          CampaignTickResult* out) override;
  void OnQueryFinished(int64_t tick, size_t query_index,
                       const CampaignTickResult& result,
                       const FederatedQueryResult& outcome) override;
  bool RestoreRound(int64_t round_id, RoundOutcome* out) override;
  void OnRoundClosed(int64_t round_id, const RoundOutcome& outcome) override;

  bool EnsureOpen(std::string* error,
                  const obs::TraceContext& parent = obs::TraceContext{});
  int64_t next_tick() const;
  std::vector<const std::vector<Client>*> PopulationPointers() const;
  // Recovers a fully-restored query's round outcomes from the shard's own
  // journal (full_results() only carries live-executed queries).
  bool HarvestFromJournal(int64_t tick, int64_t query_index,
                          std::vector<RoundOutcome>* rounds,
                          std::string* error) const;

  std::vector<CampaignQuery> queries_;
  MeterPolicy policy_;
  ShardCoordinatorOptions options_;
  ResilienceConfig resilience_;
  std::vector<std::vector<Client>> partitions_;
  std::vector<FixedPointCodec> codecs_;
  bool bound_ = false;

  std::unique_ptr<DurableCampaignRunner> runner_;  // durable mode
  std::unique_ptr<MemoryState> mem_;               // in-memory mode
  std::map<size_t, FederatedQueryResult> tick_outcomes_;

  ShardMetrics metrics_;
  int64_t last_harvested_tick_ = -1;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SHARD_SHARD_H_
