#include "federated/shard/shard.h"

// bitpush-lint: allow(privacy-metering): the coordinator shard never
// fabricates reports — collection inside MeasurementCampaign /
// DurableCampaignRunner charges every report to this shard's local_meter()
// ledger; the harvest below only repackages already-metered tallies.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "batch/batch.h"
#include "core/bit_pushing.h"
#include "federated/server.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {
namespace {

// SplitMix64 finalizer (the faults.cc idiom): shard seeds are pure hashes
// of the root seed, so adding a shard never perturbs a sibling's stream.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                   bool* missing) {
  *missing = false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    *missing = true;
    return false;
  }
  std::vector<uint8_t> data;
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.insert(data.end(), chunk, chunk + got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return false;
  *out = std::move(data);
  return true;
}

bool WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& data, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    *error = "cannot open for write: " + path;
    return false;
  }
  const bool wrote =
      data.empty() ||
      std::fwrite(data.data(), 1, data.size(), file) == data.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    *error = "short write: " + path;
    return false;
  }
  return true;
}

// Byte offset of the sequence number inside a journal frame header:
// [version:1][type:1][seq:8]...
constexpr size_t kSeqOffset = 2;

void AccumulateRoundTallies(const RoundOutcome& round,
                            ShardQueryFrame* frame) {
  frame->faults.MergeFrom(round.faults);
  if (round.histogram.totals().empty()) return;  // round never tallied
  const TallyBatch tallies = TallyBatchFromBitHistogram(round.histogram);
  if (frame->tallies.bits() == 0) {
    frame->tallies.totals.assign(tallies.totals.size(), 0);
    frame->tallies.ones.assign(tallies.ones.size(), 0);
  }
  AccumulateTallies(tallies, &frame->tallies);
}

}  // namespace

uint64_t ShardSeed(uint64_t root_seed, int64_t shard_index) {
  BITPUSH_CHECK_GE(shard_index, 0);
  return Mix(root_seed ^ Mix(static_cast<uint64_t>(shard_index) + 1));
}

std::vector<std::vector<Client>> PartitionClients(
    const std::vector<Client>& population, int64_t shards) {
  BITPUSH_CHECK_GE(shards, 1);
  std::vector<std::vector<Client>> partitions(static_cast<size_t>(shards));
  for (auto& partition : partitions) {
    partition.reserve(population.size() / static_cast<size_t>(shards) + 1);
  }
  for (size_t i = 0; i < population.size(); ++i) {
    partitions[i % static_cast<size_t>(shards)].push_back(population[i]);
  }
  return partitions;
}

bool ReadShardJournal(const std::string& path, JournalReadResult* out,
                      std::string* error) {
  BITPUSH_CHECK(out != nullptr);
  BITPUSH_CHECK(error != nullptr);
  std::vector<uint8_t> data;
  bool missing = false;
  if (!ReadFileBytes(path, &data, &missing)) {
    if (missing) {
      // Same contract as ReadJournal: a journal that never existed is an
      // empty journal.
      *out = JournalReadResult{};
      return true;
    }
    *error = "cannot read journal: " + path;
    return false;
  }
  uint64_t first_seq = 0;
  if (data.size() >= kSeqOffset + 8) {
    size_t cursor = kSeqOffset;
    BITPUSH_CHECK(bytes::GetUint64(data, &cursor, &first_seq));
  }
  return ReadJournal(path, first_seq, out, error);
}

bool TruncateShardJournalToRecords(const std::string& path,
                                   size_t keep_records, std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  JournalReadResult journal;
  if (!ReadShardJournal(path, &journal, error)) return false;
  std::vector<uint8_t> prefix;
  const size_t keep = std::min(keep_records, journal.records.size());
  for (size_t i = 0; i < keep; ++i) {
    AppendJournalFrame(journal.records[i].type, journal.records[i].seq,
                       journal.records[i].payload, &prefix);
  }
  return WriteFileBytes(path, prefix, error);
}

bool TearShardJournalTail(const std::string& path, size_t bytes,
                          std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  std::vector<uint8_t> data;
  bool missing = false;
  if (!ReadFileBytes(path, &data, &missing)) {
    *error = "cannot read journal: " + path;
    return false;
  }
  const size_t keep = data.size() > bytes ? data.size() - bytes : 0;
  data.resize(keep);
  return WriteFileBytes(path, data, error);
}

ShardQueryFrame MakeShardQueryFrame(int64_t query_index,
                                    int64_t partition_clients,
                                    const CampaignTickResult& result,
                                    const FederatedQueryResult& outcome) {
  ShardQueryFrame frame;
  frame.query_index = query_index;
  frame.partition_clients = partition_clients;
  frame.result = result;
  // Round-level sums only (not outcome.faults, which folds in the
  // query-level fallback counter) — the journal-scan path below can only
  // see rounds, and both paths must normalize identically.
  AccumulateRoundTallies(outcome.round1, &frame);
  AccumulateRoundTallies(outcome.round2, &frame);
  return frame;
}

struct ShardCoordinator::MemoryState {
  PrivacyMeter meter;
  MeasurementCampaign campaign;
  Rng rng;
  int64_t next_tick = 0;

  MemoryState(const std::vector<CampaignQuery>& queries,
              const MeterPolicy& policy, uint64_t seed,
              const ResilienceConfig& resilience)
      : meter(policy), campaign(queries, &meter, resilience), rng(seed) {}
};

ShardCoordinator::~ShardCoordinator() = default;

ShardCoordinator::ShardCoordinator(std::vector<CampaignQuery> queries,
                                   MeterPolicy policy,
                                   ShardCoordinatorOptions options,
                                   ResilienceConfig resilience)
    : queries_(std::move(queries)),
      policy_(policy),
      options_(std::move(options)),
      resilience_(std::move(resilience)) {
  BITPUSH_CHECK_GE(options_.shard_index, 0);
}

void ShardCoordinator::Bind(std::vector<std::vector<Client>> partitions,
                            std::vector<FixedPointCodec> codecs) {
  BITPUSH_CHECK(!bound_) << "Bind() called twice";
  BITPUSH_CHECK_EQ(partitions.size(), queries_.size());
  BITPUSH_CHECK_EQ(codecs.size(), queries_.size());
  partitions_ = std::move(partitions);
  codecs_ = std::move(codecs);
  bound_ = true;
}

std::string ShardCoordinator::journal_path() const {
  BITPUSH_CHECK(durable());
  return options_.state_dir + "/journal.wal";
}

int64_t ShardCoordinator::partition_clients(size_t query_index) const {
  BITPUSH_CHECK(bound_);
  BITPUSH_CHECK_LT(query_index, partitions_.size());
  return static_cast<int64_t>(partitions_[query_index].size());
}

const PrivacyMeter* ShardCoordinator::local_meter() const {
  if (durable()) return runner_ != nullptr ? &runner_->meter() : nullptr;
  return mem_ != nullptr ? &mem_->meter : nullptr;
}

bool ShardCoordinator::RestoreQueryResult(int64_t /*tick*/,
                                          size_t /*query_index*/,
                                          CampaignTickResult* /*out*/) {
  return false;  // in-memory shards never restore
}

void ShardCoordinator::OnQueryFinished(int64_t /*tick*/, size_t query_index,
                                       const CampaignTickResult& /*result*/,
                                       const FederatedQueryResult& outcome) {
  tick_outcomes_[query_index] = outcome;
}

bool ShardCoordinator::RestoreRound(int64_t /*round_id*/,
                                    RoundOutcome* /*out*/) {
  return false;
}

void ShardCoordinator::OnRoundClosed(int64_t /*round_id*/,
                                     const RoundOutcome& /*outcome*/) {}

bool ShardCoordinator::EnsureOpen(std::string* error,
                                  const obs::TraceContext& parent) {
  BITPUSH_CHECK(bound_) << "Bind() before CollectTick()";
  if (!durable()) {
    if (mem_ == nullptr) {
      mem_ = std::make_unique<MemoryState>(queries_, policy_, options_.seed,
                                           resilience_);
      mem_->campaign.set_recorder(this);
    }
    return true;
  }
  if (runner_ != nullptr) return true;
  // Stitched under the merge-tick span that triggered the (re)open, so a
  // crash-recovery replay shows up as a child of the tick that paid for it.
  obs::Span span("shard.recover", "shard");
  span.set_parent(parent);
  span.AddNumeric("shard", static_cast<double>(options_.shard_index));
  DurableCampaignOptions durable_options;
  durable_options.state_dir = options_.state_dir;
  durable_options.seed = options_.seed;
  // The sharded runner snapshots manually, only after the merge tier has
  // consumed a tick — an automatic snapshot could swallow an undelivered
  // tick's journal records and leave nothing to harvest after a crash.
  durable_options.snapshot_every_ticks = 0;
  durable_options.fsync = options_.fsync;
  auto runner = std::make_unique<DurableCampaignRunner>(
      queries_, policy_, std::move(durable_options), resilience_);
  if (!runner->Open(error)) return false;
  const RecoveryInfo& info = runner->recovery_info();
  if (info.recovered) {
    ++metrics_.recoveries;
    metrics_.replayed_records += info.replayed_records;
    if (info.torn_tail) ++metrics_.torn_tails;
  }
  span.AddNumeric("replayed_records",
                  static_cast<double>(info.replayed_records));
  runner_ = std::move(runner);
  return true;
}

int64_t ShardCoordinator::next_tick() const {
  if (durable()) return runner_ != nullptr ? runner_->next_tick() : 0;
  return mem_ != nullptr ? mem_->next_tick : 0;
}

std::vector<const std::vector<Client>*> ShardCoordinator::PopulationPointers()
    const {
  std::vector<const std::vector<Client>*> populations;
  populations.reserve(partitions_.size());
  for (const std::vector<Client>& partition : partitions_) {
    populations.push_back(&partition);
  }
  return populations;
}

bool ShardCoordinator::HarvestFromJournal(int64_t tick, int64_t query_index,
                                          std::vector<RoundOutcome>* rounds,
                                          std::string* error) const {
  JournalReadResult journal;
  if (!ReadShardJournal(journal_path(), &journal, error)) return false;
  int64_t current_tick = -1;
  int64_t current_query = -1;
  for (const JournalRecord& record : journal.records) {
    switch (record.type) {
      case JournalRecordType::kQueryStarted: {
        QueryStartedRecord started;
        if (!DecodeQueryStartedRecord(record.payload, &started)) {
          *error = "corrupt kQueryStarted record in shard journal";
          return false;
        }
        current_tick = started.tick;
        current_query = started.query_index;
        break;
      }
      case JournalRecordType::kRoundClosed: {
        if (current_tick != tick || current_query != query_index) break;
        RoundClosedRecord closed;
        if (!DecodeRoundClosedRecord(record.payload, &closed)) {
          *error = "corrupt kRoundClosed record in shard journal";
          return false;
        }
        rounds->push_back(std::move(closed.outcome));
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool ShardCoordinator::CollectTick(int64_t tick, ShardTickFrame* frame,
                                   std::string* error,
                                   const obs::TraceContext& parent) {
  BITPUSH_CHECK(frame != nullptr);
  BITPUSH_CHECK(error != nullptr);
  BITPUSH_CHECK_GE(tick, 0);
  obs::Span span("shard.collect", "shard");
  span.set_parent(parent);
  span.set_ids(tick, /*query_index=*/-1, /*round_id=*/-1);
  span.AddNumeric("shard", static_cast<double>(options_.shard_index));
  if (!EnsureOpen(error, span.context())) return false;

  // Catch up: a shard that crashed or lost ticks re-runs (or restores)
  // every tick from its durable position through `tick`, in order — both
  // the campaign's per-tick RNG forks and the durable runner require the
  // full sequence. Only `tick` itself is harvested.
  const std::vector<const std::vector<Client>*> populations =
      PopulationPointers();
  for (int64_t t = next_tick(); t <= tick; ++t) {
    if (durable()) {
      runner_->RunTick(t, populations, codecs_);
    } else {
      tick_outcomes_.clear();
      mem_->campaign.RunTick(t, populations, codecs_, mem_->rng);
      mem_->next_tick = t + 1;
    }
  }
  BITPUSH_CHECK_EQ(next_tick(), tick + 1)
      << "shard asked for an already-delivered tick";

  const MeasurementCampaign& campaign =
      durable() ? runner_->campaign() : mem_->campaign;

  // The harvest (per-query tally aggregation into the frame) is the
  // shard-side aggregate phase — its own child span under the collect.
  obs::Span harvest_span("shard.harvest", "shard");
  harvest_span.set_parent(span.context());
  harvest_span.set_ids(tick, /*query_index=*/-1, /*round_id=*/-1);
  harvest_span.AddNumeric("shard", static_cast<double>(options_.shard_index));

  ShardTickFrame out;
  out.shard = options_.shard_index;
  out.tick = tick;
  const obs::TraceContext context = span.context();
  out.trace_id = context.trace_id;
  out.span_id = context.span_id;
  out.parent_span_id = parent.valid() ? parent.span_id : 0;

  size_t history_cursor = 0;
  // Count a tick's metrics once: a re-delivery attempt after a stall
  // harvests the same tick again without re-counting it.
  const bool counted = last_harvested_tick_ < tick;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const CampaignQuery& query = queries_[qi];
    if (tick < query.phase ||
        (tick - query.phase) % query.cadence_ticks != 0) {
      continue;
    }
    // The campaign appends one history row per scheduled query per tick.
    const CampaignTickResult* result = nullptr;
    for (; history_cursor < campaign.history().size(); ++history_cursor) {
      const CampaignTickResult& row = campaign.history()[history_cursor];
      if (row.tick == tick && row.query_name == query.name) {
        result = &row;
        ++history_cursor;
        break;
      }
    }
    BITPUSH_CHECK(result != nullptr)
        << "no history row for scheduled query " << query.name << " at tick "
        << tick;

    ShardQueryFrame row;
    if (durable()) {
      const auto& full = runner_->full_results();
      const auto it = full.find({tick, static_cast<int64_t>(qi)});
      if (it != full.end()) {
        row = MakeShardQueryFrame(static_cast<int64_t>(qi),
                                  partition_clients(qi), *result, it->second);
      } else {
        // The tick was fully restored from the journal: its rounds (with
        // histograms, faults, retry) are still on disk, because snapshots
        // only happen after delivery.
        std::vector<RoundOutcome> rounds;
        if (!HarvestFromJournal(tick, static_cast<int64_t>(qi), &rounds,
                                error)) {
          return false;
        }
        row.query_index = static_cast<int64_t>(qi);
        row.partition_clients = partition_clients(qi);
        row.result = *result;
        for (const RoundOutcome& round : rounds) {
          AccumulateRoundTallies(round, &row);
        }
      }
    } else {
      const auto it = tick_outcomes_.find(qi);
      BITPUSH_CHECK(it != tick_outcomes_.end())
          << "in-memory shard missing outcome for query " << query.name;
      row = MakeShardQueryFrame(static_cast<int64_t>(qi),
                                partition_clients(qi), *result, it->second);
    }

    if (counted) {
      if (row.result.status == CampaignTickResult::Status::kRan) {
        ++metrics_.queries_ran;
      } else {
        ++metrics_.queries_skipped;
      }
      metrics_.reports_total += row.result.reports;
    }
    out.queries.push_back(std::move(row));
  }

  if (counted) {
    ++metrics_.ticks_completed;
    last_harvested_tick_ = tick;
  }
  out.retry = campaign.retry_stats();
  out.metrics = metrics_;
  *frame = std::move(out);
  return true;
}

bool ShardCoordinator::Snapshot(std::string* error) {
  BITPUSH_CHECK(error != nullptr);
  if (!durable()) return true;
  if (!EnsureOpen(error)) return false;
  return runner_->Snapshot(error);
}

void ShardCoordinator::Restart() {
  if (durable()) {
    runner_.reset();
  } else {
    mem_.reset();
    ++metrics_.recoveries;  // the durable path counts these at Open()
  }
  tick_outcomes_.clear();
}

}  // namespace bitpush
