// The driver of the two-tier topology: N ShardCoordinators under one
// MergeTier, with the robustness loop in between (docs/SHARDING.md).
//
// Per tick, per shard: delivery attempts with capped backoff on the
// simulated clock (RetrySchedule's hash-based jitter keyed by
// (tick, shard, attempt) — no RNG stream consumed), shard faults injected
// by the ShardFaultPlan between the shard and the frame hop, crash
// recovery through the shard's own journal, and — when the attempts or
// the tick budget run out — exact exclusion: the tick merges without the
// shard (degraded), or fails closed below quorum. A transiently lost
// shard catches up on the next tick; a permanently lost one is excluded
// from every later tick with its clients accounted.
//
// Every delivered frame crosses the wire codec (encode + fail-closed
// decode) even in-process, so the shard -> merge hop is exercised on the
// hot path, not just in tests.
//
// RunSingleCoordinatorReference is the oracle: the same deterministic
// partition executed inline with plain campaigns and scalar tally adds.
// A fault-free sharded run must match it bit for bit — estimates, merged
// results, per-shard meter ledgers, metrics.

#ifndef BITPUSH_FEDERATED_SHARD_RUNNER_H_
#define BITPUSH_FEDERATED_SHARD_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/privacy_meter.h"
#include "federated/campaign.h"
#include "federated/client.h"
#include "federated/resilience.h"
#include "federated/shard/merge.h"
#include "federated/shard/shard.h"
#include "federated/shard/shard_faults.h"

namespace bitpush {

struct ShardedCampaignOptions {
  int64_t shards = 1;
  // Root seed; shard s runs on ShardSeed(seed, s).
  uint64_t seed = 0;
  // Per-shard state lives in <state_root>/shard<N>; "" runs every shard
  // in-memory (no durability).
  std::string state_root;
  bool fsync = true;
  // Snapshot every delivered shard after this many closed ticks
  // (0 disables). Snapshots happen only after the merge consumed the
  // tick, so an undelivered tick's journal records always survive.
  int64_t snapshot_every_ticks = 0;
  // A tick publishes estimates only when at least
  // ceil(quorum_fraction * shards) shards delivered; below that it fails
  // closed (kFailedQuorum, no estimate).
  double quorum_fraction = 0.5;
  // Delivery attempts per shard per tick, with capped backoff between
  // attempts on the simulated clock.
  int64_t max_attempts_per_tick = 4;
  double attempt_cost_minutes = 1.0;
  double stall_cost_minutes = 8.0;
  // Simulated-minutes deadline for one shard's tick; an attempt that
  // cannot finish inside it is not started. Infinite by default.
  double tick_budget_minutes = std::numeric_limits<double>::infinity();
  // base/cap of the inter-attempt backoff (RetryPolicy's
  // base_backoff_minutes / cap_backoff_minutes).
  RetryPolicy backoff;
  // Shard-level chaos; nullptr runs clean. Not owned.
  const ShardFaultPlan* fault_plan = nullptr;
  // Forwarded to every shard's campaign (federated/resilience.h).
  ResilienceConfig resilience;
};

class ShardedCampaignRunner {
 public:
  ShardedCampaignRunner(std::vector<CampaignQuery> queries,
                        MeterPolicy policy, ShardedCampaignOptions options);

  // Partitions every query's population across the shards and binds the
  // coordinators. `populations` is indexed parallel to the query list.
  // Must be called once, before the first RunTick.
  void Open(const std::vector<const std::vector<Client>*>& populations,
            const std::vector<FixedPointCodec>& codecs);

  // Runs one merged tick. Returns false (with *error) only on a
  // durability violation that must fail closed — injected shard faults
  // and lost shards are handled, not errors.
  bool RunTick(int64_t tick, MergedTickResult* out, std::string* error);

  int64_t shards() const { return options_.shards; }
  ShardCoordinator* shard(int64_t s);
  const MergeTier& merge() const { return *merge_; }
  const std::vector<MergedTickResult>& history() const { return history_; }
  // Simulated minutes of the slowest shard for each closed tick (the
  // campaign makespan under perfect shard parallelism).
  const std::vector<double>& tick_makespan_minutes() const {
    return makespan_minutes_;
  }
  // Canonical bytes of shard s's local privacy ledger.
  std::vector<uint8_t> shard_meter_bytes(int64_t s) const;

 private:
  std::vector<CampaignQuery> queries_;
  MeterPolicy policy_;
  ShardedCampaignOptions options_;
  RetrySchedule backoff_;
  std::vector<std::unique_ptr<ShardCoordinator>> coordinators_;
  std::unique_ptr<MergeTier> merge_;
  std::vector<MergedTickResult> history_;
  std::vector<double> makespan_minutes_;
  bool open_ = false;
  int64_t next_tick_ = 0;
};

// The single-coordinator inline execution of the same sharded campaign:
// identical partitions and per-shard seeds, plain MeasurementCampaigns,
// plain scalar tally accumulation (no journals, frames, or kernels), and
// the shared FinalizeMergedQuery arithmetic.
struct ReferenceCampaignResult {
  std::vector<MergedTickResult> ticks;
  // Canonical meter bytes per shard-local ledger.
  std::vector<std::vector<uint8_t>> shard_meter_bytes;
  // What a fault-free sharded run's merged metrics must equal: one clean
  // delivery attempt per shard per tick, no recoveries or losses.
  ShardMetrics metrics;
  RetryStats retry_stats;
};

ReferenceCampaignResult RunSingleCoordinatorReference(
    const std::vector<CampaignQuery>& queries, const MeterPolicy& policy,
    int64_t shards, uint64_t seed,
    const std::vector<const std::vector<Client>*>& populations,
    const std::vector<FixedPointCodec>& codecs, int64_t ticks,
    ResilienceConfig resilience = {});

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SHARD_RUNNER_H_
