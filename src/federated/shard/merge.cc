#include "federated/shard/merge.h"

// bitpush-lint: allow(privacy-metering): the merge tier combines tallies
// that each shard already metered against its own shard-local meter when
// the reports were collected; merging words discloses nothing new and
// must never charge a meter (double metering).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/bit_probabilities.h"
#include "core/bit_pushing.h"
#include "federated/obs_hooks.h"
#include "federated/wire.h"
#include "ldp/randomized_response.h"
#include "obs/events.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {
namespace {

bool ScheduledAt(const CampaignQuery& query, int64_t tick) {
  return tick >= query.phase &&
         (tick - query.phase) % query.cadence_ticks == 0;
}

void AppendMetricLine(const char* name, int64_t value, std::string* out) {
  out->append(name);
  out->push_back(' ');
  out->append(std::to_string(value));
  out->push_back('\n');
}

bool DecodeTallyBatch(const std::vector<uint8_t>& buffer, size_t* offset,
                      TallyBatch* out) {
  TallyBatch tallies;
  if (!bytes::GetInt64Vector(buffer, offset, &tallies.totals)) return false;
  if (!bytes::GetInt64Vector(buffer, offset, &tallies.ones)) return false;
  if (tallies.totals.size() != tallies.ones.size()) return false;
  for (size_t j = 0; j < tallies.totals.size(); ++j) {
    if (tallies.ones[j] < 0 || tallies.ones[j] > tallies.totals[j]) {
      return false;
    }
  }
  *out = std::move(tallies);
  return true;
}

}  // namespace

void ShardMetrics::MergeFrom(const ShardMetrics& other) {
  ticks_completed += other.ticks_completed;
  queries_ran += other.queries_ran;
  queries_skipped += other.queries_skipped;
  reports_total += other.reports_total;
  shard_attempts += other.shard_attempts;
  shard_retries += other.shard_retries;
  shard_stalls += other.shard_stalls;
  recoveries += other.recoveries;
  replayed_records += other.replayed_records;
  torn_tails += other.torn_tails;
  lost_ticks += other.lost_ticks;
}

std::string ShardMetrics::ToSnapshot() const {
  std::string out;
  AppendMetricLine("shard_ticks_completed", ticks_completed, &out);
  AppendMetricLine("shard_queries_ran", queries_ran, &out);
  AppendMetricLine("shard_queries_skipped", queries_skipped, &out);
  AppendMetricLine("shard_reports_total", reports_total, &out);
  AppendMetricLine("shard_attempts", shard_attempts, &out);
  AppendMetricLine("shard_retries", shard_retries, &out);
  AppendMetricLine("shard_stalls", shard_stalls, &out);
  AppendMetricLine("shard_recoveries", recoveries, &out);
  AppendMetricLine("shard_replayed_records", replayed_records, &out);
  AppendMetricLine("shard_torn_tails", torn_tails, &out);
  AppendMetricLine("shard_lost_ticks", lost_ticks, &out);
  return out;
}

void EncodeShardMetrics(const ShardMetrics& metrics,
                        std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(metrics.ticks_completed, out);
  bytes::PutInt64(metrics.queries_ran, out);
  bytes::PutInt64(metrics.queries_skipped, out);
  bytes::PutInt64(metrics.reports_total, out);
  bytes::PutInt64(metrics.shard_attempts, out);
  bytes::PutInt64(metrics.shard_retries, out);
  bytes::PutInt64(metrics.shard_stalls, out);
  bytes::PutInt64(metrics.recoveries, out);
  bytes::PutInt64(metrics.replayed_records, out);
  bytes::PutInt64(metrics.torn_tails, out);
  bytes::PutInt64(metrics.lost_ticks, out);
}

bool DecodeShardMetrics(const std::vector<uint8_t>& buffer, size_t* offset,
                        ShardMetrics* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  ShardMetrics metrics;
  int64_t* const fields[] = {
      &metrics.ticks_completed, &metrics.queries_ran,
      &metrics.queries_skipped, &metrics.reports_total,
      &metrics.shard_attempts,  &metrics.shard_retries,
      &metrics.shard_stalls,    &metrics.recoveries,
      &metrics.replayed_records, &metrics.torn_tails,
      &metrics.lost_ticks};
  for (int64_t* field : fields) {
    if (!bytes::GetInt64(buffer, &cursor, field)) return false;
    if (*field < 0) return false;
  }
  *offset = cursor;
  *out = metrics;
  return true;
}

void EncodeShardTickFrame(const ShardTickFrame& frame,
                          std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutByte(kWireFormatVersion, out);
  bytes::PutInt64(frame.shard, out);
  bytes::PutInt64(frame.tick, out);
  bytes::PutUint32(static_cast<uint32_t>(frame.queries.size()), out);
  for (const ShardQueryFrame& query : frame.queries) {
    bytes::PutInt64(query.query_index, out);
    bytes::PutInt64(query.partition_clients, out);
    EncodeCampaignTickResult(query.result, out);
    bytes::PutInt64Vector(query.tallies.totals, out);
    bytes::PutInt64Vector(query.tallies.ones, out);
    EncodeFaultStats(query.faults, out);
  }
  EncodeRetryStats(frame.retry, out);
  EncodeShardMetrics(frame.metrics, out);
  bytes::PutByte(kTraceContextVersion, out);
  bytes::PutInt64(frame.trace_id, out);
  bytes::PutInt64(frame.span_id, out);
  bytes::PutInt64(frame.parent_span_id, out);
}

bool DecodeShardTickFrame(const std::vector<uint8_t>& buffer,
                          ShardTickFrame* out) {
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = 0;
  uint8_t version = 0;
  if (!bytes::GetByte(buffer, &cursor, &version)) return false;
  if (version != kWireFormatVersion) return false;
  ShardTickFrame frame;
  if (!bytes::GetInt64(buffer, &cursor, &frame.shard)) return false;
  if (!bytes::GetInt64(buffer, &cursor, &frame.tick)) return false;
  if (frame.shard < 0 || frame.tick < 0) return false;
  uint32_t count = 0;
  if (!bytes::GetUint32(buffer, &cursor, &count)) return false;
  // A lied count must not drive the reserve below: every query frame
  // consumes many bytes, so the remaining buffer length is a safe bound.
  if (static_cast<size_t>(count) > buffer.size() - cursor) return false;
  frame.queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardQueryFrame query;
    if (!bytes::GetInt64(buffer, &cursor, &query.query_index)) return false;
    if (!bytes::GetInt64(buffer, &cursor, &query.partition_clients)) {
      return false;
    }
    if (query.query_index < 0 || query.partition_clients < 0) return false;
    if (!DecodeCampaignTickResult(buffer, &cursor, &query.result)) {
      return false;
    }
    if (!DecodeTallyBatch(buffer, &cursor, &query.tallies)) return false;
    if (!DecodeFaultStats(buffer, &cursor, &query.faults)) return false;
    frame.queries.push_back(std::move(query));
  }
  if (!DecodeRetryStats(buffer, &cursor, &frame.retry)) return false;
  if (!DecodeShardMetrics(buffer, &cursor, &frame.metrics)) return false;
  // Trace-context section: fail closed on a sub-version this decoder does
  // not know and on negative ids (zero means "tracing disabled").
  uint8_t trace_version = 0;
  if (!bytes::GetByte(buffer, &cursor, &trace_version)) return false;
  if (trace_version != kTraceContextVersion) return false;
  if (!bytes::GetInt64(buffer, &cursor, &frame.trace_id) ||
      !bytes::GetInt64(buffer, &cursor, &frame.span_id) ||
      !bytes::GetInt64(buffer, &cursor, &frame.parent_span_id)) {
    return false;
  }
  if (frame.trace_id < 0 || frame.span_id < 0 || frame.parent_span_id < 0) {
    return false;
  }
  if (cursor != buffer.size()) return false;  // trailing garbage
  *out = std::move(frame);
  return true;
}

MergedQueryResult FinalizeMergedQuery(
    const CampaignQuery& query, int64_t tick,
    const std::vector<const ShardQueryFrame*>& delivered,
    TallyBatch merged_tallies, int64_t clients_lost, int64_t shards_lost) {
  MergedQueryResult merged;
  merged.tick = tick;
  merged.query_name = query.name;
  merged.shards_merged = static_cast<int64_t>(delivered.size());
  merged.shards_lost = shards_lost;
  merged.clients_lost = clients_lost;
  merged.degraded = shards_lost > 0;
  merged.tallies = std::move(merged_tallies);

  // Partition-weighted estimate over the shards whose query ran, summed
  // in ascending shard order (the reference iterates identically).
  double weighted_sum = 0.0;
  double weight = 0.0;
  for (const ShardQueryFrame* frame : delivered) {
    merged.effective_clients += frame->partition_clients;
    merged.reports += frame->result.reports;
    if (frame->result.status == CampaignTickResult::Status::kRan) {
      ++merged.shards_ran;
      weighted_sum += static_cast<double>(frame->partition_clients) *
                      frame->result.estimate;
      weight += static_cast<double>(frame->partition_clients);
    }
  }
  merged.status = merged.shards_ran > 0 ? MergedQueryResult::Status::kRan
                                        : MergedQueryResult::Status::kSkipped;
  if (weight > 0.0) merged.estimate = weighted_sum / weight;

  // Pooled means and the variance bound at the merged (post-loss) n.
  int64_t n = 0;
  for (const int64_t total : merged.tallies.totals) n += total;
  if (merged.tallies.bits() > 0 && n > 0) {
    const RandomizedResponse rr =
        RandomizedResponse::FromEpsilon(query.query.adaptive.epsilon);
    merged.pooled_bit_means = merged.tallies.ToBitHistogram().UnbiasedMeans(rr);
    for (double& mean : merged.pooled_bit_means) {
      mean = std::clamp(mean, 0.0, 1.0);
    }
    std::vector<double> realized(merged.tallies.totals.size());
    for (size_t j = 0; j < realized.size(); ++j) {
      realized[j] = static_cast<double>(merged.tallies.totals[j]) /
                    static_cast<double>(n);
    }
    merged.variance_bound = VarianceBound(merged.pooled_bit_means, realized,
                                          static_cast<double>(n));
  }
  return merged;
}

MergeTier::MergeTier(std::vector<CampaignQuery> queries, int64_t shards,
                     double quorum_fraction)
    : queries_(std::move(queries)), shards_(shards) {
  BITPUSH_CHECK_GE(shards_, 1);
  BITPUSH_CHECK(quorum_fraction > 0.0 && quorum_fraction <= 1.0)
      << "quorum fraction out of (0,1]: " << quorum_fraction;
  const double min = quorum_fraction * static_cast<double>(shards_);
  quorum_min_ = static_cast<int64_t>(min);
  if (static_cast<double>(quorum_min_) < min) ++quorum_min_;  // ceil
  quorum_min_ = std::max<int64_t>(quorum_min_, 1);
  pending_.resize(static_cast<size_t>(shards_));
  pending_present_.assign(static_cast<size_t>(shards_), false);
  per_shard_retry_.resize(static_cast<size_t>(shards_));
  per_shard_metrics_.resize(static_cast<size_t>(shards_));
}

void MergeTier::AddFrame(const ShardTickFrame& frame) {
  BITPUSH_CHECK(frame.shard >= 0 && frame.shard < shards_)
      << "shard out of range: " << frame.shard;
  const size_t s = static_cast<size_t>(frame.shard);
  BITPUSH_CHECK(!pending_present_[s])
      << "duplicate frame for shard " << frame.shard;
  for (const ShardQueryFrame& query : frame.queries) {
    fault_stats_.MergeFrom(query.faults);
  }
  per_shard_retry_[s] = frame.retry;
  per_shard_metrics_[s] = frame.metrics;
  pending_[s] = frame;
  pending_present_[s] = true;
}

MergedTickResult MergeTier::CloseTick(int64_t tick,
                                      const std::vector<ShardLoss>& lost) {
  MergedTickResult result;
  result.tick = tick;
  result.shards_lost = static_cast<int64_t>(lost.size());

  std::vector<const ShardTickFrame*> delivered;
  for (int64_t s = 0; s < shards_; ++s) {
    if (!pending_present_[static_cast<size_t>(s)]) continue;
    const ShardTickFrame& frame = pending_[static_cast<size_t>(s)];
    BITPUSH_CHECK_EQ(frame.tick, tick) << "frame for a different tick";
    delivered.push_back(&frame);
  }
  result.shards_delivered = static_cast<int64_t>(delivered.size());
  result.quorum_failed = result.shards_delivered < quorum_min_;

  // The scheduled set is derived from the query list, not the frames, so
  // a tick with zero delivered shards still reports every scheduled query.
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const CampaignQuery& query = queries_[qi];
    if (!ScheduledAt(query, tick)) continue;

    int64_t clients_lost = 0;
    for (const ShardLoss& loss : lost) {
      BITPUSH_CHECK_EQ(loss.clients_per_query.size(), queries_.size());
      clients_lost += loss.clients_per_query[qi];
    }

    std::vector<const ShardQueryFrame*> rows;
    for (const ShardTickFrame* frame : delivered) {
      const ShardQueryFrame* row = nullptr;
      for (const ShardQueryFrame& candidate : frame->queries) {
        if (candidate.query_index == static_cast<int64_t>(qi)) {
          row = &candidate;
          break;
        }
      }
      BITPUSH_CHECK(row != nullptr)
          << "shard " << frame->shard << " frame missing scheduled query "
          << qi;
      rows.push_back(row);
    }

    if (result.quorum_failed) {
      // Fail closed: below quorum nothing is published for the tick —
      // no estimate, no tallies — only the loss accounting.
      MergedQueryResult failed;
      failed.tick = tick;
      failed.query_name = query.name;
      failed.status = MergedQueryResult::Status::kFailedQuorum;
      failed.shards_merged = static_cast<int64_t>(rows.size());
      failed.shards_lost = result.shards_lost;
      failed.clients_lost = clients_lost;
      failed.degraded = true;
      result.queries.push_back(std::move(failed));
      continue;
    }

    // Word-level tally merge: skipped shards ship zero-width tallies and
    // contribute nothing; ran shards must agree on the width.
    TallyBatch merged;
    for (const ShardQueryFrame* row : rows) {
      if (row->tallies.bits() == 0) continue;
      if (merged.bits() == 0) {
        merged.totals.assign(row->tallies.totals.size(), 0);
        merged.ones.assign(row->tallies.ones.size(), 0);
      }
      AccumulateTallies(row->tallies, &merged);
    }
    result.queries.push_back(FinalizeMergedQuery(
        query, tick, rows, std::move(merged), clients_lost,
        result.shards_lost));
  }

  // Flight-recorder quorum event, kVolatile like every shard-layer signal:
  // the single-coordinator reference never exercises the merge tier, so
  // shard traffic must stay out of the stable ring the sharded-vs-single
  // oracle compares.
  if (result.quorum_failed || result.shards_lost > 0) {
    obs::EventArgs args;
    args.tick = tick;
    args.detail =
        std::string(result.quorum_failed ? "failed closed" : "degraded") +
        ": delivered=" + std::to_string(result.shards_delivered) + "/" +
        std::to_string(shards_) +
        " lost=" + std::to_string(result.shards_lost) +
        " quorum_min=" + std::to_string(quorum_min_);
    obs::EmitEvent(obs::EventType::kQuorumDegraded,
                   obs::Determinism::kVolatile, std::move(args));
  }
  ObserveShardTickMerged(result.shards_delivered, result.shards_lost,
                         result.quorum_failed);
  pending_present_.assign(static_cast<size_t>(shards_), false);
  return result;
}

RetryStats MergeTier::merged_retry_stats() const {
  RetryStats merged;
  for (const RetryStats& stats : per_shard_retry_) merged.MergeFrom(stats);
  return merged;
}

ShardMetrics MergeTier::merged_metrics() const {
  ShardMetrics merged;
  for (const ShardMetrics& metrics : per_shard_metrics_) {
    merged.MergeFrom(metrics);
  }
  return merged;
}

}  // namespace bitpush
