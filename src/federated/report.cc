#include "federated/report.h"

#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

void CommunicationStats::MergeFrom(const CommunicationStats& other) {
  requests_sent += other.requests_sent;
  reports_received += other.reports_received;
  private_bits += other.private_bits;
  payload_bytes += other.payload_bytes;
}

void EncodeCommunicationStats(const CommunicationStats& stats,
                              std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(stats.requests_sent, out);
  bytes::PutInt64(stats.reports_received, out);
  bytes::PutInt64(stats.private_bits, out);
  bytes::PutInt64(stats.payload_bytes, out);
}

bool DecodeCommunicationStats(const std::vector<uint8_t>& buffer,
                              size_t* offset, CommunicationStats* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  CommunicationStats stats;
  if (!bytes::GetInt64(buffer, &cursor, &stats.requests_sent) ||
      !bytes::GetInt64(buffer, &cursor, &stats.reports_received) ||
      !bytes::GetInt64(buffer, &cursor, &stats.private_bits) ||
      !bytes::GetInt64(buffer, &cursor, &stats.payload_bytes)) {
    return false;
  }
  if (stats.requests_sent < 0 || stats.reports_received < 0 ||
      stats.private_bits < 0 || stats.payload_bytes < 0) {
    return false;
  }
  *out = stats;
  *offset = cursor;
  return true;
}

int64_t RequestPayloadBytes() {
  // 8B round id + 8B value id + 1B bit index + 8B epsilon.
  return 25;
}

int64_t ReportPayloadBytes() {
  // 8B client id + 1B bit index + 1B bit (the single private bit rides in
  // the low bit; the rest is protocol overhead).
  return 10;
}

}  // namespace bitpush
