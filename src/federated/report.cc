#include "federated/report.h"

namespace bitpush {

void CommunicationStats::MergeFrom(const CommunicationStats& other) {
  requests_sent += other.requests_sent;
  reports_received += other.reports_received;
  private_bits += other.private_bits;
  payload_bytes += other.payload_bytes;
}

int64_t RequestPayloadBytes() {
  // 8B round id + 8B value id + 1B bit index + 8B epsilon.
  return 25;
}

int64_t ReportPayloadBytes() {
  // 8B client id + 1B bit index + 1B bit (the single private bit rides in
  // the low bit; the rest is protocol overhead).
  return 10;
}

}  // namespace bitpush
