// Continuous metric monitoring across collection windows — the online use
// of bit-pushing described in Sections 1.1 and 4.3: estimate the mean each
// window, track the data's upper bound (b_max) and flag significant
// changes, and skip windows whose cohort is below the privacy minimum.

#ifndef BITPUSH_FEDERATED_MONITOR_H_
#define BITPUSH_FEDERATED_MONITOR_H_

#include <cstdint>
#include <vector>

#include "core/adaptive.h"
#include "core/fixed_point.h"
#include "federated/resilience.h"
#include "federated/telemetry.h"
#include "obs/alerts.h"
#include "rng/rng.h"

namespace bitpush {

struct MonitorConfig {
  // Per-window protocol parameters (bits must match the codec).
  AdaptiveConfig protocol;
  // A bit counts toward b_max when its estimated mean reaches this value.
  double bmax_mean_threshold = 0.02;
  // Shift in b_max (bits) that raises the upper-bound flag.
  int flag_shift_bits = 2;
  // Windows with fewer clients than this are skipped for privacy.
  int64_t min_window_size = 2;
  // Relative change of the estimate vs the trailing average that raises
  // the drift flag (0 disables).
  double drift_threshold = 0.0;
  // Thresholds for the monitor's in-process alert engine (obs/alerts.h).
  // Each window is one evaluation tick; rules without inputs at this layer
  // (privacy budget, shard quorum, journal growth) stay gated off.
  obs::AlertConfig alerts;
};

struct WindowSummary {
  int64_t window_index = 0;
  int64_t clients = 0;
  // True when the window was skipped (below min_window_size); no protocol
  // messages were exchanged and the remaining fields are unset.
  bool skipped = false;
  double estimate = 0.0;
  int b_max = -1;
  bool bound_flagged = false;
  bool drift_flagged = false;
  // Reports the collection transport recovered through retries or hedges
  // this window (0 unless the caller ingests its RetryStats; see
  // federated/resilience.h).
  int64_t recovered_reports = 0;
  // True when the ingested RetryStats went backwards relative to the
  // previous window (the caller handed the monitor non-cumulative or reset
  // counters). The recovered-report delta is clamped to 0 for the window
  // instead of aborting the coordinator.
  bool retry_stats_regressed = false;
  // Alert-engine activity for this window, evaluated after the retry
  // attribution above: transitions this window and rules still firing at
  // its close (also published as the bitpush_alert_state gauge family).
  int64_t alerts_fired = 0;
  int64_t alerts_resolved = 0;
  int64_t alerts_firing = 0;
};

class MetricMonitor {
 public:
  MetricMonitor(const FixedPointCodec& codec, const MonitorConfig& config);

  // Runs one collection window over `values` (one entry per reporting
  // client) and appends the summary to history().
  WindowSummary IngestWindow(const std::vector<double>& values, Rng& rng);

  // Same, but also attributes the window's recovery-layer counters: the
  // summary carries the window's recovered-report count (the delta of
  // RetryStats::RecoveredTotal() against the previous call), and the
  // cumulative stats are available from retry_stats(). Pass the collecting
  // simulator's running totals (e.g. FleetSimulator::retry_stats()).
  WindowSummary IngestWindow(const std::vector<double>& values,
                             const RetryStats& cumulative_retry_stats,
                             Rng& rng);

  // Sharded collection (federated/shard/): one cumulative RetryStats per
  // coordinator shard, attributed shard by shard. A shard that recovered
  // from a snapshot legitimately resets its cumulative counters, so the
  // *merged* sum can go backwards while every shard is healthy; comparing
  // per shard keeps that from tripping retry_stats_regressed. A shard
  // whose counters went backwards is treated as reset (its full current
  // value is this window's delta — the Prometheus counter-reset rule),
  // not as a regression. The shard count must stay constant across calls.
  WindowSummary IngestWindow(const std::vector<double>& values,
                             const std::vector<RetryStats>& per_shard_stats,
                             Rng& rng);

  const std::vector<WindowSummary>& history() const { return history_; }
  int64_t windows_flagged() const { return windows_flagged_; }
  // Latest cumulative recovery-layer counters seen by IngestWindow.
  const RetryStats& retry_stats() const { return retry_stats_; }
  // The monitor's alert engine (retry_storm is the rule with live inputs
  // at this layer); transitions() carries the fired/resolved log.
  const obs::AlertEngine& alerts() const { return alerts_; }

 private:
  // The window protocol run shared by all IngestWindow overloads. Appends
  // to history_ but does NOT evaluate alerts — FinalizeWindow runs once
  // per window, after any retry attribution, so alert inputs see the
  // window's final recovered/retry counters.
  WindowSummary IngestWindowCore(const std::vector<double>& values, Rng& rng);
  // Evaluates the alert engine for the finished window and patches the
  // alert fields onto `*summary` and history_.back().
  void FinalizeWindow(WindowSummary* summary);

  FixedPointCodec codec_;
  MonitorConfig config_;
  UpperBoundMonitor bound_monitor_;
  std::vector<WindowSummary> history_;
  RetryStats retry_stats_;
  // Last-seen cumulative stats per shard (sharded overload only).
  std::vector<RetryStats> per_shard_retry_stats_;
  double trailing_estimate_sum_ = 0.0;
  int64_t trailing_estimate_count_ = 0;
  int64_t windows_flagged_ = 0;
  obs::AlertEngine alerts_;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_MONITOR_H_
