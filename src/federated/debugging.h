// Federated debugging (Section 4.3): "diagnosis of problematic issues is
// complicated by the inability to read distributed private data." The only
// artifact the server holds is the per-bit histogram — and it turns out to
// carry rich diagnostics. This module inspects pooled bit means and flags
// the pathologies the paper reports from deployment:
//
//   * constant metrics ("some metrics/features gathered turn out to be
//     constant, making mean and variance estimation moot"),
//   * saturation — mass piled at the clipping ceiling 2^b - 1, the
//     signature of an under-sized bit width for a heavy-tailed metric,
//   * all-zero metrics (dead counters / broken instrumentation),
//   * vacuous high-order bits (b chosen too large; wasted samples),
//   * noise domination under DP (every bit mean within the noise floor).
//
// It also recommends a bit width from a pilot round, the "deciding the
// number of bits" step of Section 4.3.

#ifndef BITPUSH_FEDERATED_DEBUGGING_H_
#define BITPUSH_FEDERATED_DEBUGGING_H_

#include <string>
#include <vector>

#include "core/bit_pushing.h"
#include "ldp/randomized_response.h"

namespace bitpush {

struct DistributionDiagnostics {
  // Index of the highest informative bit (mean above the noise floor);
  // -1 when nothing is informative.
  int highest_used_bit = -1;
  // Every observed bit mean is (within tolerance) 0 or 1: the metric is a
  // single constant across the cohort.
  bool constant_metric = false;
  // All observed bit means ~0: the metric is identically zero.
  bool all_zero = false;
  // The top bits are mostly 1: values are piling up at the clipping
  // ceiling; the configured bit width truncates real signal.
  bool saturated = false;
  // Fraction of configured bits that carry no information — high values
  // mean the width is oversized and samples are being wasted.
  double vacuous_bit_fraction = 0.0;
  // Under DP: no bit rises above the per-bit noise floor; estimates from
  // this round are meaningless.
  bool noise_dominated = false;
  // Human-readable one-line summaries of everything flagged.
  std::vector<std::string> findings;
};

struct DebuggingConfig {
  // Tolerance for calling a bit mean 0 or 1.
  double constant_tolerance = 0.005;
  // A bit is "informative" when its mean clears this floor (and, under DP,
  // the per-bit noise floor).
  double informative_threshold = 0.02;
  // Multiplier on the per-bit DP noise stddev for the noise floor.
  double noise_multiplier = 3.0;
  // Top-bit mean above this flags saturation.
  double saturation_threshold = 0.9;
};

// Inspects a pooled histogram. `epsilon` must match what the reports were
// perturbed with (<= 0 for none).
DistributionDiagnostics DiagnoseDistribution(const BitHistogram& histogram,
                                             double epsilon,
                                             const DebuggingConfig& config);

// Recommends a bit width from pilot-round diagnostics: the highest used
// bit plus `headroom_bits` of margin, clamped to [1, pilot width]. Returns
// the pilot width unchanged when the pilot saturated (the true magnitude
// is unknown — widen, don't shrink).
int RecommendBitWidth(const DistributionDiagnostics& diagnostics,
                      int pilot_bits, int headroom_bits = 1);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_DEBUGGING_H_
