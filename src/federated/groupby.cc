#include "federated/groupby.h"

#include <map>

#include "util/check.h"

namespace bitpush {

std::vector<SegmentEstimate> RunGroupByMeanQuery(
    const std::vector<Client>& clients,
    const std::function<std::string(const Client&)>& segment_of,
    const FixedPointCodec& codec, const GroupByConfig& config,
    PrivacyMeter* meter, Rng& rng) {
  BITPUSH_CHECK(segment_of != nullptr);
  BITPUSH_CHECK_GE(config.min_segment_size, 2);

  // std::map keeps the output ordered by segment name.
  std::map<std::string, std::vector<Client>> segments;
  for (const Client& client : clients) {
    segments[segment_of(client)].push_back(client);
  }

  std::vector<SegmentEstimate> results;
  results.reserve(segments.size());
  for (const auto& [name, members] : segments) {
    SegmentEstimate result;
    result.segment = name;
    result.clients = static_cast<int64_t>(members.size());
    if (result.clients < config.min_segment_size) {
      result.suppressed = true;
      results.push_back(result);
      continue;
    }
    FederatedQueryConfig query = config.query;
    query.cohort.min_cohort_size = config.min_segment_size;
    const FederatedQueryResult outcome =
        RunFederatedMeanQuery(members, codec, query, meter, rng);
    result.suppressed = outcome.aborted;
    result.estimate = outcome.estimate;
    results.push_back(result);
  }
  return results;
}

}  // namespace bitpush
