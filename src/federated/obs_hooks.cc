#include "federated/obs_hooks.h"

#include "federated/campaign.h"
#include "federated/resilience.h"
#include "federated/server.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace bitpush {
namespace {

using obs::Counter;
using obs::Determinism;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;

struct RoundInstruments {
  Counter* rounds;
  Counter* contacted;
  Counter* responded;
  Counter* malformed;
  Counter* wire_requests;
  Counter* wire_reports;
  Counter* wire_private_bits;
  Counter* wire_payload_bytes;
  Counter* faults_injected;
  Counter* late_rejected;
  Counter* corrupt_rejected;
  Counter* truncated_rejected;
  Counter* recheckins_rejected;
  Counter* backfill_requests;
  Counter* backfill_reports;
  Counter* static_fallbacks;
  Counter* retries_scheduled;
  Counter* retransmits;
  Counter* retry_recovered;
  Counter* retries_exhausted;
  Counter* retry_budget_denied;
  Counter* deadline_denied;
  Counter* hedges_issued;
  Counter* hedges_cancelled;
  Counter* hedge_reports;
  Counter* hedge_dedup_drops;
  Counter* breaker_skips;
  Counter* breaker_probes;
  Gauge* backoff_minutes;
  Histogram* round_minutes;
};

const RoundInstruments& GetRoundInstruments() {
  static const RoundInstruments instruments = [] {
    Registry& r = Registry::Default();
    const Determinism s = Determinism::kStable;
    RoundInstruments i;
    i.rounds = r.GetCounter("bitpush_rounds_total", "Rounds closed.", s);
    i.contacted = r.GetCounter("bitpush_round_contacted_total",
                               "Clients contacted across rounds.", s);
    i.responded = r.GetCounter("bitpush_round_responded_total",
                               "Accepted reports across rounds.", s);
    i.malformed = r.GetCounter("bitpush_round_malformed_reports_total",
                               "Reports rejected for an invalid bit index.",
                               s);
    i.wire_requests = r.GetCounter("bitpush_wire_requests_total",
                                   "Bit requests sent to clients.", s);
    i.wire_reports = r.GetCounter("bitpush_wire_reports_total",
                                  "Bit reports received from clients.", s);
    i.wire_private_bits =
        r.GetCounter("bitpush_wire_private_bits_total",
                     "Private bits disclosed on the wire.", s);
    i.wire_payload_bytes =
        r.GetCounter("bitpush_wire_payload_bytes_total",
                     "Estimated payload bytes in both directions.", s);
    i.faults_injected = r.GetCounter("bitpush_faults_injected_total",
                                     "Faults injected by the fault plan.", s);
    i.late_rejected = r.GetCounter("bitpush_faults_late_rejected_total",
                                   "Straggler reports past the deadline.", s);
    i.corrupt_rejected =
        r.GetCounter("bitpush_faults_corrupt_rejected_total",
                     "Corrupt reports rejected by validation.", s);
    i.truncated_rejected =
        r.GetCounter("bitpush_faults_truncated_rejected_total",
                     "Truncated reports rejected by the decoder.", s);
    i.recheckins_rejected =
        r.GetCounter("bitpush_faults_recheckins_rejected_total",
                     "Crash re-check-ins rejected by the dedup.", s);
    i.backfill_requests =
        r.GetCounter("bitpush_faults_backfill_requests_total",
                     "Replacement clients contacted by backfill.", s);
    i.backfill_reports =
        r.GetCounter("bitpush_faults_backfill_reports_total",
                     "Replacement reports accepted by backfill.", s);
    i.static_fallbacks =
        r.GetCounter("bitpush_faults_static_fallbacks_total",
                     "Round-2 allocations degraded to the static policy.", s);
    i.retries_scheduled = r.GetCounter("bitpush_retries_scheduled_total",
                                       "Full re-requests scheduled.", s);
    i.retransmits = r.GetCounter("bitpush_retransmits_requested_total",
                                 "Wire-leg retransmissions requested.", s);
    i.retry_recovered =
        r.GetCounter("bitpush_retry_reports_recovered_total",
                     "Reports recovered through retries.", s);
    i.retries_exhausted = r.GetCounter("bitpush_retries_exhausted_total",
                                       "Per-client attempt caps hit.", s);
    i.retry_budget_denied =
        r.GetCounter("bitpush_retry_budget_denied_total",
                     "Retries denied by the per-round cap.", s);
    i.deadline_denied =
        r.GetCounter("bitpush_retry_deadline_denied_total",
                     "Retries denied by the deadline budget.", s);
    i.hedges_issued =
        r.GetCounter("bitpush_hedges_issued_total", "Hedges issued.", s);
    i.hedges_cancelled = r.GetCounter("bitpush_hedges_cancelled_total",
                                      "Hedges cancelled by the original.", s);
    i.hedge_reports = r.GetCounter("bitpush_hedge_reports_total",
                                   "Reports recovered through hedges.", s);
    i.hedge_dedup_drops =
        r.GetCounter("bitpush_hedge_dedup_drops_total",
                     "Late originals dropped after a hedge won.", s);
    i.breaker_skips =
        r.GetCounter("bitpush_breaker_skips_total",
                     "Assignments withheld from quarantined clients.", s);
    i.breaker_probes = r.GetCounter("bitpush_breaker_probes_total",
                                    "Half-open probe assignments.", s);
    i.backoff_minutes =
        r.GetGauge("bitpush_retry_backoff_minutes",
                   "Cumulative simulated backoff minutes charged.", s);
    i.round_minutes = r.GetHistogram(
        "bitpush_round_sim_minutes",
        "Simulated round duration on the LatencyModel clock (minutes).",
        obs::SimMinutesBounds(), s);
    return i;
  }();
  return instruments;
}

}  // namespace

void ObserveRoundOutcome(const RoundOutcome& outcome) {
  if (!obs::Enabled()) return;
  const RoundInstruments& i = GetRoundInstruments();
  i.rounds->Increment();
  i.contacted->Add(outcome.contacted);
  i.responded->Add(outcome.responded);
  i.malformed->Add(outcome.malformed_reports);
  i.wire_requests->Add(outcome.comm.requests_sent);
  i.wire_reports->Add(outcome.comm.reports_received);
  i.wire_private_bits->Add(outcome.comm.private_bits);
  i.wire_payload_bytes->Add(outcome.comm.payload_bytes);
  i.faults_injected->Add(outcome.faults.InjectedTotal());
  i.late_rejected->Add(outcome.faults.late_reports_rejected);
  i.corrupt_rejected->Add(outcome.faults.corrupt_reports_rejected);
  i.truncated_rejected->Add(outcome.faults.truncated_reports_rejected);
  i.recheckins_rejected->Add(outcome.faults.recheckins_rejected);
  i.backfill_requests->Add(outcome.faults.backfill_requests);
  i.backfill_reports->Add(outcome.faults.backfill_reports);
  i.static_fallbacks->Add(outcome.faults.static_policy_fallbacks);
  i.retries_scheduled->Add(outcome.retry.retries_scheduled);
  i.retransmits->Add(outcome.retry.retransmits_requested);
  i.retry_recovered->Add(outcome.retry.retry_reports_recovered);
  i.retries_exhausted->Add(outcome.retry.retries_exhausted);
  i.retry_budget_denied->Add(outcome.retry.retry_budget_denied);
  i.deadline_denied->Add(outcome.retry.deadline_denied);
  i.hedges_issued->Add(outcome.retry.hedges_issued);
  i.hedges_cancelled->Add(outcome.retry.hedges_cancelled);
  i.hedge_reports->Add(outcome.retry.hedge_reports);
  i.hedge_dedup_drops->Add(outcome.retry.hedge_dedup_drops);
  i.breaker_skips->Add(outcome.retry.breaker_skips);
  i.breaker_probes->Add(outcome.retry.breaker_probes);
  i.backoff_minutes->Add(outcome.retry.backoff_minutes);
  i.round_minutes->Observe(outcome.retry.elapsed_minutes);

  // Flight-recorder events. This function is the exactly-once round
  // boundary shared by the live, journal-restored, and recovery-replay
  // paths, so events emitted here are replay-stable: every field below is
  // derived from the journaled outcome.
  {
    obs::EventArgs args;
    args.sim_minutes = outcome.retry.elapsed_minutes;
    args.has_sim_minutes = true;
    args.detail = "contacted=" + std::to_string(outcome.contacted) +
                  " responded=" + std::to_string(outcome.responded);
    obs::EmitEvent(obs::EventType::kRoundOutcome, obs::Determinism::kStable,
                   std::move(args));
  }
  // A round that scheduled a burst of full re-requests is a retry storm —
  // the fixed threshold matches AlertConfig::retry_storm_threshold's
  // default so the flight recorder and the alert engine agree on what
  // counts as one.
  constexpr int64_t kRetryStormEventThreshold = 8;
  if (outcome.retry.retries_scheduled >= kRetryStormEventThreshold) {
    obs::EventArgs args;
    args.detail =
        "retries_scheduled=" + std::to_string(outcome.retry.retries_scheduled) +
        " retransmits=" + std::to_string(outcome.retry.retransmits_requested);
    obs::EmitEvent(obs::EventType::kRetryStorm, obs::Determinism::kStable,
                   std::move(args));
  }
}

void ObserveBreakerState(const HealthTracker& health) {
  if (!obs::Enabled()) return;
  Registry& r = Registry::Default();
  const Determinism s = Determinism::kStable;
  static Gauge* opens = r.GetGauge("bitpush_breaker_opens",
                                   "Breaker open transitions so far.", s);
  static Gauge* closes = r.GetGauge("bitpush_breaker_closes",
                                    "Breaker close transitions so far.", s);
  static Gauge* quarantined =
      r.GetGauge("bitpush_breaker_quarantined_clients",
                 "Clients currently quarantined (open or half-open).", s);
  static Gauge* tracked = r.GetGauge("bitpush_breaker_tracked_clients",
                                     "Clients with breaker history.", s);
  opens->Set(static_cast<double>(health.opens()));
  closes->Set(static_cast<double>(health.closes()));
  quarantined->Set(static_cast<double>(health.quarantined_clients()));
  tracked->Set(static_cast<double>(health.tracked_clients()));
}

void ObserveQueryResult(const CampaignTickResult& result) {
  if (!obs::Enabled()) return;
  Registry& r = Registry::Default();
  const Determinism s = Determinism::kStable;
  static Counter* ran = r.GetCounter("bitpush_queries_ran_total",
                                     "Scheduled queries that produced an "
                                     "estimate.",
                                     s);
  static Counter* skipped_cohort =
      r.GetCounter("bitpush_queries_skipped_cohort_total",
                   "Queries skipped below the privacy minimum.", s);
  static Counter* skipped_budget =
      r.GetCounter("bitpush_queries_skipped_budget_total",
                   "Queries skipped with the budget exhausted.", s);
  static Counter* reports = r.GetCounter(
      "bitpush_query_reports_total", "Accepted reports across queries.", s);
  switch (result.status) {
    case CampaignTickResult::Status::kRan:
      ran->Increment();
      break;
    case CampaignTickResult::Status::kSkippedCohort:
      skipped_cohort->Increment();
      break;
    case CampaignTickResult::Status::kSkippedBudget:
      skipped_budget->Increment();
      break;
  }
  reports->Add(result.reports);
}

void ObserveCampaignTick() {
  if (!obs::Enabled()) return;
  static Counter* ticks = Registry::Default().GetCounter(
      "bitpush_campaign_ticks_total", "Campaign ticks executed.",
      Determinism::kStable);
  ticks->Increment();
}

void ObserveShardTickMerged(int64_t shards_delivered, int64_t shards_lost,
                            bool quorum_failed) {
  if (!obs::Enabled()) return;
  struct ShardInstruments {
    Counter* merged_ticks;
    Counter* frames;
    Counter* lost;
    Counter* quorum_failures;
    Counter* degraded_ticks;
  };
  static const ShardInstruments instruments = [] {
    Registry& r = Registry::Default();
    const Determinism v = Determinism::kVolatile;
    ShardInstruments i;
    i.merged_ticks = r.GetCounter("bitpush_shard_merged_ticks_total",
                                  "Ticks closed by the merge tier.", v);
    i.frames = r.GetCounter("bitpush_shard_frames_merged_total",
                            "Shard tick frames merged.", v);
    i.lost = r.GetCounter("bitpush_shard_ticks_lost_total",
                          "Shard-ticks lost past their deadline.", v);
    i.quorum_failures =
        r.GetCounter("bitpush_shard_quorum_failures_total",
                     "Merge ticks failed closed below quorum.", v);
    i.degraded_ticks =
        r.GetCounter("bitpush_shard_degraded_ticks_total",
                     "Merge ticks published with at least one shard lost.",
                     v);
    return i;
  }();
  instruments.merged_ticks->Increment();
  instruments.frames->Add(shards_delivered);
  instruments.lost->Add(shards_lost);
  if (quorum_failed) instruments.quorum_failures->Increment();
  if (!quorum_failed && shards_lost > 0) {
    instruments.degraded_ticks->Increment();
  }
}

}  // namespace bitpush
