#include "federated/dropout_secure_agg.h"

#include <algorithm>

#include "util/check.h"

namespace bitpush {
namespace {

// Expands a seed into a field-sized mask. A seeded PRNG stands in for the
// PRG of the real protocol.
uint64_t Prg(uint64_t seed) {
  Rng rng(seed);
  return rng.NextBelow(kShamirPrime);
}

// Reconstructs a secret from the shares held by surviving clients.
uint64_t ReconstructFromSurvivors(const std::vector<ShamirShare>& shares,
                                  const std::vector<bool>& survived,
                                  int threshold) {
  std::vector<ShamirShare> available;
  for (size_t holder = 0; holder < shares.size(); ++holder) {
    if (survived[holder]) available.push_back(shares[holder]);
  }
  return ShamirReconstruct(available, threshold);
}

}  // namespace

DoubleMaskingSession::DoubleMaskingSession(int num_clients, int threshold,
                                           Rng& rng)
    : num_clients_(num_clients), threshold_(threshold) {
  BITPUSH_CHECK_GE(threshold, 2);
  BITPUSH_CHECK_LE(threshold, num_clients);

  self_seeds_.resize(static_cast<size_t>(num_clients));
  shares_of_self_.resize(static_cast<size_t>(num_clients));
  pairwise_seeds_.resize(static_cast<size_t>(num_clients));
  shares_of_pairwise_.resize(static_cast<size_t>(num_clients));
  submissions_.assign(static_cast<size_t>(num_clients), std::nullopt);
  dropped_.assign(static_cast<size_t>(num_clients), false);

  for (int i = 0; i < num_clients; ++i) {
    self_seeds_[static_cast<size_t>(i)] = rng.NextBelow(kShamirPrime);
    shares_of_self_[static_cast<size_t>(i)] = ShamirShareSecret(
        self_seeds_[static_cast<size_t>(i)], threshold, num_clients, rng);
    pairwise_seeds_[static_cast<size_t>(i)].resize(
        static_cast<size_t>(num_clients - i - 1));
    shares_of_pairwise_[static_cast<size_t>(i)].resize(
        static_cast<size_t>(num_clients - i - 1));
    for (int j = i + 1; j < num_clients; ++j) {
      const uint64_t seed = rng.NextBelow(kShamirPrime);
      pairwise_seeds_[static_cast<size_t>(i)][static_cast<size_t>(
          j - i - 1)] = seed;
      shares_of_pairwise_[static_cast<size_t>(i)][static_cast<size_t>(
          j - i - 1)] = ShamirShareSecret(seed, threshold, num_clients,
                                          rng);
    }
  }
}

uint64_t DoubleMaskingSession::PairwiseSeed(int i, int j) const {
  BITPUSH_CHECK_LT(i, j);
  return pairwise_seeds_[static_cast<size_t>(i)]
                        [static_cast<size_t>(j - i - 1)];
}

uint64_t DoubleMaskingSession::Submit(int client, uint64_t value) {
  BITPUSH_CHECK_GE(client, 0);
  BITPUSH_CHECK_LT(client, num_clients_);
  BITPUSH_CHECK_LT(value, kShamirPrime);
  BITPUSH_CHECK(!dropped_[static_cast<size_t>(client)])
      << "dropped client cannot submit";
  BITPUSH_CHECK(!submissions_[static_cast<size_t>(client)].has_value())
      << "client already submitted";

  uint64_t masked = FieldAdd(
      value, Prg(self_seeds_[static_cast<size_t>(client)]));
  for (int j = client + 1; j < num_clients_; ++j) {
    masked = FieldAdd(masked, Prg(PairwiseSeed(client, j)));
  }
  for (int j = 0; j < client; ++j) {
    masked = FieldSub(masked, Prg(PairwiseSeed(j, client)));
  }
  submissions_[static_cast<size_t>(client)] = masked;
  return masked;
}

void DoubleMaskingSession::MarkDropped(int client) {
  BITPUSH_CHECK_GE(client, 0);
  BITPUSH_CHECK_LT(client, num_clients_);
  BITPUSH_CHECK(!submissions_[static_cast<size_t>(client)].has_value())
      << "submitted client cannot be marked dropped";
  dropped_[static_cast<size_t>(client)] = true;
}

std::optional<uint64_t> DoubleMaskingSession::RecoverSum() {
  // Anyone who never submitted is a dropout.
  std::vector<bool> survived(static_cast<size_t>(num_clients_), false);
  int survivors = 0;
  for (int i = 0; i < num_clients_; ++i) {
    if (submissions_[static_cast<size_t>(i)].has_value()) {
      survived[static_cast<size_t>(i)] = true;
      ++survivors;
    }
  }
  if (survivors < threshold_) return std::nullopt;

  uint64_t sum = 0;
  for (int i = 0; i < num_clients_; ++i) {
    if (survived[static_cast<size_t>(i)]) {
      sum = FieldAdd(sum, *submissions_[static_cast<size_t>(i)]);
    }
  }
  // Strip survivors' self masks (reconstructed from survivor-held shares).
  for (int i = 0; i < num_clients_; ++i) {
    if (!survived[static_cast<size_t>(i)]) continue;
    const uint64_t self_seed = ReconstructFromSurvivors(
        shares_of_self_[static_cast<size_t>(i)], survived, threshold_);
    sum = FieldSub(sum, Prg(self_seed));
  }
  // Strip the unmatched pairwise masks left by each dropped client.
  for (int dropped = 0; dropped < num_clients_; ++dropped) {
    if (survived[static_cast<size_t>(dropped)]) continue;
    for (int other = 0; other < num_clients_; ++other) {
      if (!survived[static_cast<size_t>(other)]) continue;
      const int low = std::min(dropped, other);
      const int high = std::max(dropped, other);
      const uint64_t seed = ReconstructFromSurvivors(
          shares_of_pairwise_[static_cast<size_t>(low)]
                             [static_cast<size_t>(high - low - 1)],
          survived, threshold_);
      if (dropped < other) {
        // The survivor contributed -PRG(seed); add it back.
        sum = FieldAdd(sum, Prg(seed));
      } else {
        // The survivor contributed +PRG(seed); remove it.
        sum = FieldSub(sum, Prg(seed));
      }
    }
  }
  return sum;
}

}  // namespace bitpush
