// Deterministic fault injection for the federated substrate.
//
// Section 4.3's deployment reality — devices drop out mid-round, reports
// straggle past the collection window, radios corrupt or truncate frames,
// and devices crash between the two rounds of the adaptive protocol — is
// modelled here as a seeded FaultPlan. Every decision is a pure hash of
// (seed, round, client), so injections are independent of iteration order
// and a plan reproduces byte-identically: the fault-matrix tests in
// tests/faults_test.cc pin exactly how the server degrades under each
// scenario.
//
// The server's reactions are policy, not accident (FaultPolicy): stragglers
// past the report deadline are rejected, lost reports are backfilled from
// replacement clients for a bounded number of passes, crashed clients that
// re-check-in are deduplicated (at most one assignment per client per
// query), and a round-1 loss above threshold degrades the round-2 rebalance
// to the static weighted policy. Every injection and every reaction is
// counted in FaultStats, surfaced through RoundOutcome and
// FederatedQueryResult for benches and the monitor pipeline.

#ifndef BITPUSH_FEDERATED_FAULTS_H_
#define BITPUSH_FEDERATED_FAULTS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "federated/report.h"

namespace bitpush {

enum class FaultType {
  kNone,
  kMidRoundDropout,     // assigned, vanishes before computing its report
  kStraggler,           // reports, but past the round's deadline
  kCorruptMessage,      // wire bytes of the report are flipped in flight
  kTruncateMessage,     // wire frame arrives short
  kRoundBoundaryCrash,  // crashes after a round-1 assignment, then
                        // re-checks-in for round 2
};

// Per-(round, client) fault probabilities. Each rate is in [0, 1] and the
// sum must not exceed 1; at most one fault strikes a given (round, client).
struct FaultRates {
  double mid_round_dropout = 0.0;
  double straggler = 0.0;
  double corrupt_message = 0.0;
  double truncate_message = 0.0;
  double round_boundary_crash = 0.0;

  // True when any rate is positive.
  bool Any() const;
};

// A seeded, deterministic fault schedule. Decisions are pure functions of
// (seed, round, client): two runs with the same plan inject exactly the
// same faults regardless of the order clients are processed in, which is
// what makes FaultStats a testable contract rather than a noisy sample.
class FaultPlan {
 public:
  // A disabled plan (never injects).
  FaultPlan();
  FaultPlan(uint64_t seed, const FaultRates& rates);

  bool enabled() const { return enabled_; }
  const FaultRates& rates() const { return rates_; }

  // The fault striking (round_id, client_id), or kNone.
  // kRoundBoundaryCrash is only ever returned for round_id == 1 (it is the
  // crash *between* rounds 1 and 2); in other rounds its probability band
  // maps to kNone so the remaining rates are unaffected.
  FaultType Decide(int64_t round_id, int64_t client_id) const;

  // The fault striking retry attempt `attempt` (0-based) of
  // (round_id, client_id). Attempt 0 is byte-identical to Decide — the
  // resilience layer (federated/resilience.h) re-rolls the fault spectrum
  // on every retry by folding the attempt number into the hash salts, so
  // enabling retries never perturbs what attempt 0 injects.
  FaultType DecideAttempt(int64_t round_id, int64_t client_id,
                          int64_t attempt) const;

  // Deterministic lateness of a straggler's report, in (0, 60] minutes past
  // the deadline.
  double StragglerDelayMinutes(int64_t round_id, int64_t client_id) const;

  // Flips 1-3 bytes of `buffer` (each XORed with a non-zero mask), at
  // positions derived from (seed, round, client). At least one byte is
  // guaranteed to change on a non-empty buffer. The attempt-aware overload
  // corrupts retransmissions independently; attempt 0 matches the two-arg
  // form.
  void CorruptBuffer(int64_t round_id, int64_t client_id,
                     std::vector<uint8_t>* buffer) const;
  void CorruptBuffer(int64_t round_id, int64_t client_id, int64_t attempt,
                     std::vector<uint8_t>* buffer) const;

  // The length a truncated frame arrives with: a deterministic value in
  // [0, full_size - 1]. `full_size` must be >= 1. Attempt 0 matches the
  // two-arg form.
  size_t TruncatedSize(int64_t round_id, int64_t client_id,
                       size_t full_size) const;
  size_t TruncatedSize(int64_t round_id, int64_t client_id, int64_t attempt,
                       size_t full_size) const;

 private:
  uint64_t Hash(int64_t round_id, int64_t client_id, uint64_t salt) const;
  double HashUniform(int64_t round_id, int64_t client_id,
                     uint64_t salt) const;

  uint64_t seed_ = 0;
  FaultRates rates_;
  bool enabled_ = false;
};

// How the server reacts to faults. The defaults reproduce the pre-fault
// behavior exactly: no deadline, no backfill, never fall back.
struct FaultPolicy {
  // Reports arriving after this many minutes are rejected as late.
  // Infinity disables the cutoff (stragglers are accepted and counted).
  double report_deadline_minutes = std::numeric_limits<double>::infinity();
  // After the cohort pass, up to this many backfill passes re-draw
  // replacement clients (from RoundConfig::backfill_pool, in order) to
  // cover reports that were lost. Replacements go through the normal
  // request path, so the privacy meter charges them like any reporter.
  int64_t max_backfill_rounds = 0;
  // When round 1 loses more than this fraction of its contacted clients,
  // the round-2 rebalance is not trusted: the query falls back to the
  // static weighted policy (GeometricProbabilities gamma = 1, Eq. (7)).
  // The default 1.0 never triggers (loss can reach but not exceed 1).
  double max_round1_loss = 1.0;
};

// Counters for every injected fault and every server reaction. All counts
// are exact (no sampling), so tests assert equality, not tolerance.
struct FaultStats {
  // Injections, counted where the fault actually bites (a straggler that
  // organically dropped out never produced a report, so nothing straggled).
  int64_t injected_dropouts = 0;
  int64_t injected_stragglers = 0;
  int64_t injected_corruptions = 0;
  int64_t injected_truncations = 0;
  int64_t injected_crashes = 0;
  // Server reactions.
  int64_t late_reports_rejected = 0;   // straggler past a finite deadline
  int64_t late_reports_accepted = 0;   // straggler, no deadline configured
  int64_t corrupt_reports_rejected = 0;   // decode failed / invalid fields
  int64_t corrupt_reports_accepted = 0;   // decoded clean (possibly altered)
  int64_t truncated_reports_rejected = 0;
  int64_t recheckins_rejected = 0;     // crash-recheckin dedup
  int64_t backfill_requests = 0;       // replacement clients contacted
  int64_t backfill_reports = 0;        // replacement reports accepted
  int64_t backfill_rounds_used = 0;
  int64_t static_policy_fallbacks = 0;

  int64_t InjectedTotal() const;
  void MergeFrom(const FaultStats& other);

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

// Serialization of the full counter block, in declaration order, for the
// durable-state layer (src/persist/). Decoding rejects negative counters
// and returns false without touching `*out`.
void EncodeFaultStats(const FaultStats& stats, std::vector<uint8_t>* out);
bool DecodeFaultStats(const std::vector<uint8_t>& buffer, size_t* offset,
                      FaultStats* out);

// Simulates the wire leg for a faulted report: encodes it, applies the
// corruption or truncation the plan dictates, and runs the server's
// bounds-checked decode. Returns the report the decoder accepted (possibly
// altered by the corruption) or nullopt when the frame was rejected,
// updating the injection and reaction counters in `stats`. `fault` must be
// kCorruptMessage or kTruncateMessage.
std::optional<BitReport> DeliverFaultedReport(const FaultPlan& plan,
                                              int64_t round_id,
                                              int64_t client_id,
                                              FaultType fault,
                                              const BitReport& report,
                                              FaultStats* stats);

// Attempt-aware overload for the resilience layer's retransmissions:
// attempt 0 is byte-identical to the form above.
std::optional<BitReport> DeliverFaultedReport(const FaultPlan& plan,
                                              int64_t round_id,
                                              int64_t client_id,
                                              int64_t attempt, FaultType fault,
                                              const BitReport& report,
                                              FaultStats* stats);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_FAULTS_H_
