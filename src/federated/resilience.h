// Resilient collection: deterministic retries, hedged assignments,
// per-client circuit breaking, and deadline budgets.
//
// The fault layer (federated/faults.h) models Section 4.3's failure
// reality; this module is the server's *active* response to it. Where the
// passive policies of FaultPolicy only reject and backfill, the resilience
// layer recovers: lost reports are retried with capped exponential backoff
// and decorrelated jitter, reports predicted to miss the deadline are
// hedged onto fresh clients, persistently failing clients are quarantined
// behind a circuit breaker, and the time all of this may consume is bounded
// by deadline budgets that propagate campaign -> query -> round -> session.
//
// Everything here is seeded and deterministic. Backoff jitter and retry
// fault decisions are pure hashes (no RNG stream is consumed), the virtual
// round clock advances by expected minutes from the LatencyModel, and the
// circuit breaker mutates only at round boundaries from the round's
// recorded success/failure lists — so a clean run, a re-run, and a
// crash-recovery replay (src/persist/) all produce byte-identical
// RetryStats, schedules, and estimates. docs/RESILIENCE.md documents the
// determinism contract and the privacy-meter interaction in full.

#ifndef BITPUSH_FEDERATED_RESILIENCE_H_
#define BITPUSH_FEDERATED_RESILIENCE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "federated/latency.h"

namespace bitpush {

class QueryRecorder;  // federated/persist_hooks.h

// A time allowance in simulated LatencyModel minutes. Budgets flow down
// the scheduling hierarchy: a campaign grants each tick a budget, the tick
// splits it across its scheduled queries, a query splits its share across
// rounds proportional to cohort size, and a round clamps its straggler
// deadline (and any session it opens) to what remains. The default
// (infinite) disables every deadline it touches.
struct DeadlineBudget {
  double minutes = std::numeric_limits<double>::infinity();

  bool finite() const;
  // The proportional share `fraction` (in [0, 1]) of this budget.
  // An infinite budget stays infinite.
  DeadlineBudget Fraction(double fraction) const;
  // An even split across `parts` sequential consumers (parts >= 1).
  DeadlineBudget Split(int64_t parts) const;
  // min(deadline_minutes, minutes): the effective deadline a flat
  // per-round/per-session deadline collapses to under this budget.
  double ClampDeadline(double deadline_minutes) const;

  friend bool operator==(const DeadlineBudget&,
                         const DeadlineBudget&) = default;
};

// Capped exponential backoff with decorrelated jitter, plus the retry
// budgets. max_retries_per_client == 0 disables retries entirely (the
// default reproduces pre-resilience behavior exactly).
struct RetryPolicy {
  // Retry attempts per client per round beyond the first attempt.
  int64_t max_retries_per_client = 0;
  // Total retries across all clients of one round.
  int64_t max_retries_per_round = std::numeric_limits<int64_t>::max();
  // Decorrelated-jitter parameters: the k-th backoff is drawn (by hash,
  // not by RNG stream) from [base, 3 * previous], capped.
  double base_backoff_minutes = 0.5;
  double cap_backoff_minutes = 8.0;

  bool enabled() const { return max_retries_per_client > 0; }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

// Hedged (duplicated) assignments. When the round's deadline budget is
// nearly spent — the virtual clock has passed trigger_budget_fraction of
// the budget — or a report is predicted late (a straggler whose arrival
// falls past the effective deadline), a duplicate assignment goes to a
// fresh eligible client. First complete wins: if the original arrives in
// time the hedge is cancelled *before the duplicate client computes its
// report*, so the duplicate never discloses a bit and is never metered.
struct HedgePolicy {
  bool enabled = false;
  // Fraction of the round budget after which every at-risk assignment is
  // hedged pre-emptively (requires a finite budget).
  double trigger_budget_fraction = 0.75;
  int64_t max_hedges_per_round = std::numeric_limits<int64_t>::max();

  friend bool operator==(const HedgePolicy&, const HedgePolicy&) = default;
};

// Per-client circuit breaker thresholds. The breaker opens on either
// trigger; failure_rate_to_open == 1.0 disables the rate trigger and
// consecutive_failures_to_open == 0 disables the streak trigger (both
// disabled means no breaker).
struct BreakerPolicy {
  int64_t consecutive_failures_to_open = 0;
  double failure_rate_to_open = 1.0;
  // The rate trigger needs at least this many observations to fire.
  int64_t min_samples_for_rate = 8;
  // Rounds a newly opened breaker stays quarantined before one half-open
  // probe assignment is allowed through.
  int64_t cooldown_rounds = 1;

  bool enabled() const {
    return consecutive_failures_to_open > 0 || failure_rate_to_open < 1.0;
  }

  friend bool operator==(const BreakerPolicy&, const BreakerPolicy&) = default;
};

// The full recovery configuration threaded through campaign -> query ->
// round. The defaults disable every mechanism, reproducing pre-resilience
// behavior byte for byte.
struct ResilienceConfig {
  // Seeds the backoff jitter hashes (independent of the protocol RNG).
  uint64_t seed = 0;
  RetryPolicy retry;
  HedgePolicy hedge;
  BreakerPolicy breaker;
  // The budget at the level this config is handed to (per tick for a
  // campaign, per query / per round below it).
  DeadlineBudget budget;
  // Drives the virtual clock: each contact costs the expected per-device
  // collection minutes, so retries and hedges spend realistic time.
  LatencyModel latency;

  bool Enabled() const;

  friend bool operator==(const ResilienceConfig&,
                         const ResilienceConfig&) = default;
};

// Counters for every recovery decision, exact contracts like FaultStats.
struct RetryStats {
  int64_t retries_scheduled = 0;      // full re-requests (nothing disclosed)
  int64_t retransmits_requested = 0;  // wire-leg re-sends of a metered report
  int64_t retry_reports_recovered = 0;
  int64_t retries_exhausted = 0;      // per-client attempt cap hit
  int64_t retry_budget_denied = 0;    // per-round retry cap hit
  int64_t deadline_denied = 0;        // backoff would overrun the budget
  int64_t hedges_issued = 0;
  int64_t hedges_cancelled = 0;       // original won; duplicate never computed
  int64_t hedge_reports = 0;          // hedge won and was tallied
  int64_t hedge_failures = 0;
  int64_t hedge_dedup_drops = 0;      // late original discarded after its
                                      // hedge already won
  int64_t breaker_skips = 0;          // assignments withheld from quarantine
  int64_t breaker_probes = 0;         // half-open probe assignments
  int64_t breaker_opens = 0;
  int64_t breaker_closes = 0;
  // Total backoff minutes spent waiting on retries.
  double backoff_minutes = 0.0;
  // Virtual-clock minutes the collection consumed end to end.
  double elapsed_minutes = 0.0;

  // Reports that only exist because the resilience layer recovered them.
  int64_t RecoveredTotal() const;
  void MergeFrom(const RetryStats& other);

  friend bool operator==(const RetryStats&, const RetryStats&) = default;
};

// Serialization of the counter block, in declaration order, for the
// durable-state layer. Decoding rejects negative counters and non-finite
// or negative minutes, and returns false without touching `*out`.
void EncodeRetryStats(const RetryStats& stats, std::vector<uint8_t>* out);
bool DecodeRetryStats(const std::vector<uint8_t>& buffer, size_t* offset,
                      RetryStats* out);

// Versioned wire frames (kWireFormatVersion header byte, same contract as
// federated/wire.h batch frames) so coordinators can ship resilience
// policies and stats between processes. Decoding is fail-closed: unknown
// version, truncation, trailing bytes, or any out-of-domain field rejects
// the whole frame without touching `*out`.
void EncodeRetryStatsFrame(const RetryStats& stats, std::vector<uint8_t>* out);
bool DecodeRetryStatsFrame(const std::vector<uint8_t>& buffer,
                           RetryStats* out);
void EncodeResilienceConfigFrame(const ResilienceConfig& config,
                                 std::vector<uint8_t>* out);
bool DecodeResilienceConfigFrame(const std::vector<uint8_t>& buffer,
                                 ResilienceConfig* out);

// One recovery decision, journaled through QueryRecorder::OnResilienceEvent
// so crash recovery can verify the re-executed schedule record by record.
enum class ResilienceEventType : uint8_t {
  kRetryScheduled = 1,
  kRetransmitScheduled = 2,
  kRetryRecovered = 3,
  kHedgeIssued = 4,
  kHedgeCancelled = 5,
  kHedgeWon = 6,
  kHedgeFailed = 7,
  kBreakerSkip = 8,
  kBreakerProbe = 9,
  kBreakerOpened = 10,
  kBreakerClosed = 11,
};

struct ResilienceEvent {
  ResilienceEventType type = ResilienceEventType::kRetryScheduled;
  int64_t round_id = 0;
  int64_t client_id = 0;
  // Retry attempt the event concerns (0 for non-retry events).
  int64_t attempt = 0;
  // Backoff minutes for retry events, 0 otherwise.
  double minutes = 0.0;

  friend bool operator==(const ResilienceEvent&,
                         const ResilienceEvent&) = default;
};

void EncodeResilienceEvent(const ResilienceEvent& event,
                           std::vector<uint8_t>* out);
bool DecodeResilienceEvent(const std::vector<uint8_t>& buffer, size_t* offset,
                           ResilienceEvent* out);

// Deterministic backoff schedule: the wait before retry `attempt`
// (1-based) of (round, client) under decorrelated jitter, derived entirely
// from hashes of (seed, round, client, attempt) — no RNG stream, so the
// schedule is independent of processing order and byte-stable across
// replays.
class RetrySchedule {
 public:
  RetrySchedule();  // disabled policy; BackoffMinutes must not be called
  RetrySchedule(uint64_t seed, const RetryPolicy& policy);

  double BackoffMinutes(int64_t round_id, int64_t client_id,
                        int64_t attempt) const;

 private:
  uint64_t seed_ = 0;
  RetryPolicy policy_;
};

enum class BreakerState : uint8_t {
  kClosed = 0,    // healthy: assignments flow
  kOpen = 1,      // quarantined: excluded from cohort, backfill, and hedges
  kHalfOpen = 2,  // cooldown elapsed: one probe assignment allowed
};

const char* BreakerStateName(BreakerState state);

// What the breaker says about assigning to a client right now.
enum class AssignmentDecision {
  kAssign,  // closed (or unknown) client: assign normally
  kProbe,   // half-open: assign as the probe that may close the breaker
  kSkip,    // open: withhold the assignment
};

// Per-client circuit breaker shared across the rounds and queries of a
// campaign. Reads (Decision) happen during assignment; writes happen only
// at round boundaries (BeginRound advances cooldowns, ObserveRound applies
// the round's recorded success/failure lists in order). Confining
// mutations to the round boundary is what makes recovery exact: a restored
// round re-applies its journaled outcome lists and the tracker lands in
// the same state as the live run, byte for byte.
class HealthTracker {
 public:
  HealthTracker();  // disabled policy: Decision always returns kAssign
  explicit HealthTracker(const BreakerPolicy& policy);

  const BreakerPolicy& policy() const { return policy_; }

  // Called once per collection round before any assignment: open breakers
  // count down their cooldown and move to half-open when it elapses.
  void BeginRound();

  AssignmentDecision Decision(int64_t client_id) const;
  BreakerState state(int64_t client_id) const;

  // Applies one round's outcome: successes first, then failures, each in
  // list order. Emits kBreakerOpened/kBreakerClosed events through
  // `recorder` (may be null) as transitions happen.
  void ObserveRound(int64_t round_id, const std::vector<int64_t>& succeeded,
                    const std::vector<int64_t>& failed,
                    QueryRecorder* recorder);

  int64_t opens() const { return opens_; }
  int64_t closes() const { return closes_; }
  // Clients currently quarantined (open or half-open).
  int64_t quarantined_clients() const;
  int64_t tracked_clients() const {
    return static_cast<int64_t>(clients_.size());
  }

  // Canonical serialization (clients in ascending id order) for coordinator
  // snapshots. DecodeFrom requires `out` to be constructed with the same
  // policy the state was recorded under and fails closed on mismatch or on
  // any out-of-domain field.
  void EncodeTo(std::vector<uint8_t>* out) const;
  static bool DecodeFrom(const std::vector<uint8_t>& buffer, size_t* offset,
                         HealthTracker* out);

 private:
  struct ClientHealth {
    BreakerState state = BreakerState::kClosed;
    int64_t consecutive_failures = 0;
    int64_t failures = 0;
    int64_t successes = 0;
    int64_t cooldown_remaining = 0;
  };

  bool ShouldOpen(const ClientHealth& health) const;

  BreakerPolicy policy_;
  // Ordered map: BeginRound and EncodeTo iterate deterministically.
  std::map<int64_t, ClientHealth> clients_;
  int64_t opens_ = 0;
  int64_t closes_ = 0;
};

// One-line human-readable summary for ops output (benches, monitors).
std::string RetryStatsSummary(const RetryStats& stats);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_RESILIENCE_H_
