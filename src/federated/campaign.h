// Measurement campaigns: several metrics collected on independent cadences
// from one fleet, under one shared privacy-meter budget.
//
// This is the coordinator logic around everything else: each scheduled
// query runs a federated mean query for its metric, the shared
// PrivacyMeter enforces the per-client disclosure caps across *all*
// metrics (Section 1.1's platform-level metering), and queries are skipped
// — not silently degraded — when the budget or the cohort minimum cannot
// be met.

#ifndef BITPUSH_FEDERATED_CAMPAIGN_H_
#define BITPUSH_FEDERATED_CAMPAIGN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/privacy_meter.h"
#include "federated/persist_hooks.h"
#include "federated/resilience.h"
#include "federated/round.h"
#include "rng/rng.h"

namespace bitpush {

struct CampaignQuery {
  std::string name;
  // The meter's value id for this metric (distinct per metric).
  int64_t value_id = 0;
  // Run every `cadence_ticks` ticks (>= 1), starting at tick `phase`.
  int64_t cadence_ticks = 1;
  int64_t phase = 0;
  // Protocol parameters; adaptive.bits must match the codec width used by
  // the metric's population.
  FederatedQueryConfig query;
};

struct CampaignTickResult {
  int64_t tick = 0;
  std::string query_name;
  // kRan: estimate valid. kSkippedCohort: below privacy minimum.
  // kSkippedBudget: the meter refused every report (budget exhausted).
  enum class Status { kRan, kSkippedCohort, kSkippedBudget } status =
      Status::kRan;
  double estimate = 0.0;
  int64_t reports = 0;

  friend bool operator==(const CampaignTickResult&,
                         const CampaignTickResult&) = default;
};

// Serialization for the journal's query-finished records (src/persist/).
// Decoding validates the status byte and counters and returns false
// without touching `*out` on any violation.
void EncodeCampaignTickResult(const CampaignTickResult& result,
                              std::vector<uint8_t>* out);
bool DecodeCampaignTickResult(const std::vector<uint8_t>& buffer,
                              size_t* offset, CampaignTickResult* out);

// Campaign-level durability hook: extends the per-round QueryRecorder with
// the query-scheduling granularity the coordinator journals at. A restored
// query (its kQueryFinished record survived the crash) is served straight
// from the journal — its protocol rounds never re-run, no client is
// re-contacted, and the meter is never re-charged.
class CampaignRecorder : public QueryRecorder {
 public:
  // Consulted before a scheduled query executes. Returning true fills
  // `*out` with the journaled tick result and skips execution entirely.
  virtual bool RestoreQueryResult(int64_t tick, size_t query_index,
                                  CampaignTickResult* out) = 0;

  // A query is about to execute live (it was not restored).
  virtual void OnQueryStarted(int64_t /*tick*/, size_t /*query_index*/,
                              int64_t /*value_id*/) {}

  // A live query finished; `outcome` carries the full protocol-level result
  // behind the summarized tick result.
  virtual void OnQueryFinished(int64_t /*tick*/, size_t /*query_index*/,
                               const CampaignTickResult& /*result*/,
                               const FederatedQueryResult& /*outcome*/) {}
};

class MeasurementCampaign {
 public:
  // `meter` may be null (no caps). Queries must have distinct names.
  //
  // `resilience` is the campaign-level recovery configuration
  // (federated/resilience.h): its `budget` is the deadline budget of one
  // *tick*, split evenly across the queries scheduled in that tick and
  // propagated query -> round -> session from there. When the breaker
  // policy is enabled the campaign owns the HealthTracker, so a client
  // quarantined by one query's failures is excluded from every later
  // query's cohort, backfill, and hedges until its cooldown-and-probe
  // cycle closes the breaker. When `resilience` is enabled it overrides
  // any per-query resilience config; the default leaves the queries'
  // own settings untouched.
  MeasurementCampaign(std::vector<CampaignQuery> queries, PrivacyMeter* meter,
                      ResilienceConfig resilience = {});

  // Installs (or clears) the durability hook. Must be set before the tick
  // it should observe; the pointer is not owned.
  void set_recorder(CampaignRecorder* recorder) { recorder_ = recorder; }

  const std::vector<CampaignQuery>& queries() const { return queries_; }

  // Runs every query scheduled for `tick` against its client population
  // (`populations` is indexed parallel to the query list). Appends to and
  // returns the per-query results for this tick.
  std::vector<CampaignTickResult> RunTick(
      int64_t tick,
      const std::vector<const std::vector<Client>*>& populations,
      const std::vector<FixedPointCodec>& codecs, Rng& rng);

  const std::vector<CampaignTickResult>& history() const {
    return history_;
  }
  int64_t runs() const { return runs_; }
  int64_t skips() const { return skips_; }

  const ResilienceConfig& resilience() const { return resilience_; }
  // The campaign-owned circuit breaker (nullptr when the breaker policy is
  // disabled). Mutable access exists for the recovery layer, which restores
  // snapshot state and replays finished rounds into it.
  const HealthTracker* health() const {
    return health_.has_value() ? &*health_ : nullptr;
  }
  HealthTracker* mutable_health() {
    return health_.has_value() ? &*health_ : nullptr;
  }
  // Recovery-layer counters pooled over the queries this process ran live.
  const RetryStats& retry_stats() const { return retry_stats_; }

 private:
  std::vector<CampaignQuery> queries_;
  PrivacyMeter* meter_;
  ResilienceConfig resilience_;
  std::optional<HealthTracker> health_;
  RetryStats retry_stats_;
  CampaignRecorder* recorder_ = nullptr;
  std::vector<CampaignTickResult> history_;
  int64_t runs_ = 0;
  int64_t skips_ = 0;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_CAMPAIGN_H_
