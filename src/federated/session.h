// Collection-session state machine.
//
// A production coordinator does not gather a round synchronously: it opens
// a session, hands out assignments as devices check in, accepts reports
// until a deadline or a target count, and then finalizes. This module
// provides that session object with explicit states and rejection rules
// (late, duplicate, or malformed reports), bridging the simulator's
// synchronous rounds and the asynchronous reality of Section 4.3.

#ifndef BITPUSH_FEDERATED_SESSION_H_
#define BITPUSH_FEDERATED_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/bit_pushing.h"
#include "core/fixed_point.h"
#include "federated/report.h"
#include "ldp/randomized_response.h"

namespace bitpush {

enum class SessionState {
  kCollecting,  // accepting assignments and reports
  kClosed,      // finalized; histogram available, reports rejected
};

// Why a report was rejected (for ops counters).
enum class ReportRejection {
  kAccepted,
  kSessionClosed,
  kUnknownClient,    // no assignment was issued to this client id
  kDuplicate,        // client already reported this session
  kWrongIndex,       // report names a different bit than assigned
  kMalformedBit,     // bit outside {0, 1}
  kLate,             // arrived after the session's report deadline
};

struct SessionConfig {
  // Per-bit sampling probabilities (length = codec bits).
  std::vector<double> probabilities;
  double epsilon = 0.0;
  // Finalize automatically once this many reports are accepted (0 = no
  // target; close manually).
  int64_t target_reports = 0;
  int64_t round_id = 0;
  int64_t value_id = 0;
  // Straggler cutoff: reports whose arrival time exceeds this are rejected
  // as kLate (same clock as the arrival_time passed to SubmitReport;
  // infinity disables the deadline). The boundary is *inclusive*: a report
  // with arrival_time == report_deadline is accepted — only strictly later
  // arrivals are rejected. Pinned by SessionTest.DeadlineBoundaryIsInclusive.
  double report_deadline = std::numeric_limits<double>::infinity();
  // Deadline budget propagated from the scheduling hierarchy above the
  // session (campaign -> query -> round -> session; see
  // federated/resilience.h). The effective cutoff is
  // min(report_deadline, deadline_budget_minutes), with the same inclusive
  // boundary; infinity (the default) leaves report_deadline in charge.
  double deadline_budget_minutes = std::numeric_limits<double>::infinity();

  // The cutoff SubmitReport actually enforces.
  double effective_deadline() const {
    return report_deadline < deadline_budget_minutes ? report_deadline
                                                     : deadline_budget_minutes;
  }
};

class CollectionSession {
 public:
  // Durability hook: a durable coordinator installs one so every state
  // transition (assignment issued, report accepted, session closed) is
  // journaled as it happens; EncodeTo/Decode below serialize the full
  // session for snapshots.
  class Journal {
   public:
    virtual ~Journal() = default;
    // A *new* assignment was issued (repeat check-ins that return the
    // cached assignment are not re-journaled).
    virtual void OnAssignmentIssued(int64_t client_id,
                                    const BitRequest& request) = 0;
    virtual void OnReportAccepted(const BitReport& report) = 0;
    virtual void OnClosed() = 0;
  };

  CollectionSession(const FixedPointCodec& codec,
                    const SessionConfig& config);

  // Installs (or clears, with nullptr) the durability hook.
  void set_journal(Journal* journal) { journal_ = journal; }

  SessionState state() const { return state_; }

  // Issues an assignment for a checking-in client. Bits are handed out by
  // streaming largest-deficit allocation, so realized per-bit counts track
  // n * p_j within one report at every moment — the online analogue of the
  // QMC partition. Each client id gets one assignment per session; repeat
  // calls return the same request. Fails (returns false) once the session
  // is closed.
  bool IssueAssignment(int64_t client_id, BitRequest* request);

  // Ingests a report. Returns the acceptance/rejection verdict and updates
  // the tallies on acceptance. Auto-finalizes when target_reports is
  // reached. The no-argument overload submits at arrival time 0 (never
  // late).
  ReportRejection SubmitReport(const BitReport& report);
  ReportRejection SubmitReport(const BitReport& report, double arrival_time);

  // Closes the session; idempotent.
  void Close();

  int64_t accepted_reports() const { return accepted_; }
  int64_t rejected_reports() const { return rejected_; }
  // Reports rejected specifically for arriving past the deadline.
  int64_t late_reports() const { return late_; }
  int64_t assignments_issued() const {
    return static_cast<int64_t>(assigned_bits_.size());
  }

  // The pooled tallies; valid at any time (running estimate) and final
  // after Close().
  const BitHistogram& histogram() const { return histogram_; }
  // Current mean estimate in the value domain.
  double Estimate() const;

  // Canonical serialization of the full session (codec, config, state,
  // assignments and tallies, with ids in sorted order so equal sessions
  // encode to equal bytes), for the snapshot layer (src/persist/). Decode
  // validates everything a construction CHECK would reject — plus internal
  // consistency (counts vs maps) — and returns false without touching
  // `*out`; the journal hook is not persisted and must be re-installed.
  void EncodeTo(std::vector<uint8_t>* out) const;
  static bool Decode(const std::vector<uint8_t>& buffer, size_t* offset,
                     std::optional<CollectionSession>* out);

 private:
  FixedPointCodec codec_;
  SessionConfig config_;
  RandomizedResponse rr_;
  SessionState state_ = SessionState::kCollecting;
  // client id -> assigned bit index.
  std::unordered_map<int64_t, int> assigned_bits_;
  std::unordered_set<int64_t> reported_;
  // Per-bit counts of issued assignments, for the deficit allocation.
  std::vector<int64_t> issued_;
  BitHistogram histogram_;
  int64_t accepted_ = 0;
  int64_t rejected_ = 0;
  int64_t late_ = 0;
  Journal* journal_ = nullptr;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_SESSION_H_
