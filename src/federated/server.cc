#include "federated/server.h"

#include <algorithm>

#include "federated/secure_agg.h"
#include "rng/qmc.h"
#include "util/check.h"

namespace bitpush {

AggregationServer::AggregationServer(const FixedPointCodec& codec)
    : codec_(codec) {}

RoundOutcome AggregationServer::RunRound(const std::vector<Client>& clients,
                                         const std::vector<int64_t>& cohort,
                                         const RoundConfig& config,
                                         PrivacyMeter* meter,
                                         Rng& rng) const {
  const int bits = codec_.bits();
  BITPUSH_CHECK_EQ(static_cast<int>(config.probabilities.size()), bits);
  BITPUSH_CHECK(!cohort.empty());
  const int64_t n = static_cast<int64_t>(cohort.size());

  RoundOutcome outcome;
  outcome.histogram = BitHistogram(bits);
  outcome.contacted = n;

  const std::vector<int> assignment =
      config.central_randomness
          ? AssignBitsCentral(n, config.probabilities, rng)
          : AssignBitsLocal(n, config.probabilities, rng);
  if (config.central_randomness) {
    outcome.intended_counts.assign(static_cast<size_t>(bits), 0);
    for (const int bit : assignment) {
      ++outcome.intended_counts[static_cast<size_t>(bit)];
    }
  }

  // Collect reports (bit index under which a report is tallied depends on
  // the randomness mode; see RoundConfig).
  std::vector<BitReport> reports;
  reports.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const Client& client = clients[static_cast<size_t>(cohort[i])];
    const BitRequest request{config.round_id, config.value_id,
                             assignment[static_cast<size_t>(i)],
                             config.epsilon};
    ++outcome.comm.requests_sent;
    outcome.comm.payload_bytes += RequestPayloadBytes();
    std::optional<BitReport> report = client.HandleRequest(
        request, codec_, !config.central_randomness, meter, rng);
    if (!report.has_value()) continue;
    if (config.central_randomness) {
      // Defense: tally under the server's assignment, not the claim.
      report->bit_index = request.bit_index;
    } else if (report->bit_index < 0 || report->bit_index >= bits ||
               (report->bit != 0 && report->bit != 1)) {
      // Under local randomness the index (and bit) are client-supplied;
      // reject anything outside the protocol's domain.
      ++outcome.malformed_reports;
      continue;
    }
    ++outcome.comm.reports_received;
    ++outcome.comm.private_bits;
    outcome.comm.payload_bytes += ReportPayloadBytes();
    reports.push_back(*report);
  }
  outcome.responded = static_cast<int64_t>(reports.size());
  outcome.dropout_rate =
      1.0 - static_cast<double>(outcome.responded) / static_cast<double>(n);

  if (!config.use_secure_aggregation) {
    for (const BitReport& report : reports) {
      outcome.histogram.Add(report.bit_index, report.bit);
    }
    return outcome;
  }

  // Secure aggregation: one session per bit group over the clients that
  // actually responded for that bit; the server learns only (sum, count).
  std::vector<std::vector<int>> group_bits(static_cast<size_t>(bits));
  for (const BitReport& report : reports) {
    group_bits[static_cast<size_t>(report.bit_index)].push_back(report.bit);
  }
  for (int j = 0; j < bits; ++j) {
    const std::vector<int>& group = group_bits[static_cast<size_t>(j)];
    if (group.empty()) continue;
    SecureAggregator aggregator(static_cast<int64_t>(group.size()), rng);
    for (size_t i = 0; i < group.size(); ++i) {
      aggregator.Submit(aggregator.Mask(static_cast<int64_t>(i),
                                        static_cast<uint64_t>(group[i])));
    }
    BITPUSH_CHECK(aggregator.complete());
    const uint64_t ones = aggregator.Sum();
    // Reconstruct the histogram from (sum, count) alone.
    for (uint64_t k = 0; k < static_cast<uint64_t>(group.size()); ++k) {
      outcome.histogram.Add(j, k < ones ? 1 : 0);
    }
  }
  return outcome;
}

double AggregationServer::EstimateMean(const BitHistogram& histogram,
                                       double epsilon) const {
  const RandomizedResponse rr = RandomizedResponse::FromEpsilon(epsilon);
  const std::vector<double> means = histogram.UnbiasedMeans(rr);
  return codec_.Decode(RecombineBitMeans(means));
}

std::vector<double> AdjustProbabilitiesForDropout(
    const std::vector<double>& probabilities,
    const std::vector<int64_t>& intended_counts,
    const std::vector<int64_t>& realized_counts) {
  BITPUSH_CHECK_EQ(probabilities.size(), intended_counts.size());
  BITPUSH_CHECK_EQ(probabilities.size(), realized_counts.size());
  std::vector<double> adjusted(probabilities.size());
  double total = 0.0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    double ratio = 1.0;
    if (intended_counts[j] > 0) {
      ratio = static_cast<double>(intended_counts[j]) /
              std::max<double>(1.0, static_cast<double>(realized_counts[j]));
      ratio = std::clamp(ratio, 0.5, 2.0);
    }
    adjusted[j] = probabilities[j] * ratio;
    total += adjusted[j];
  }
  BITPUSH_CHECK_GT(total, 0.0);
  for (double& p : adjusted) p /= total;
  return adjusted;
}

}  // namespace bitpush
