#include "federated/server.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "batch/batch.h"
#include "federated/latency.h"
#include "federated/persist_hooks.h"
#include "federated/secure_agg.h"
#include "rng/qmc.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

AggregationServer::AggregationServer(const FixedPointCodec& codec)
    : codec_(codec) {}

RoundOutcome AggregationServer::RunRound(const std::vector<Client>& clients,
                                         const std::vector<int64_t>& cohort,
                                         const RoundConfig& config,
                                         PrivacyMeter* meter,
                                         Rng& rng) const {
  const int bits = codec_.bits();
  BITPUSH_CHECK_EQ(static_cast<int>(config.probabilities.size()), bits);
  BITPUSH_CHECK(!cohort.empty());

  RoundOutcome outcome;
  outcome.histogram = BitHistogram(bits);
  if (config.central_randomness) {
    outcome.intended_counts.assign(static_cast<size_t>(bits), 0);
  }

  // Resilience setup. With the default (disabled) config every knob below
  // is inert — zero service minutes, infinite budget, no retries, no
  // hedging, no breaker — and the round reproduces pre-resilience behavior
  // byte for byte, RNG stream included.
  const ResilienceConfig& res = config.resilience;
  const bool resilience_on = res.Enabled();
  const bool breaker_on =
      config.health != nullptr && config.health->policy().enabled();
  const RetrySchedule schedule = res.retry.enabled()
                                     ? RetrySchedule(res.seed, res.retry)
                                     : RetrySchedule();
  // Virtual round clock, in simulated minutes: each contact costs the
  // expected per-device collection time, retries add their backoff on top,
  // and the whole round is bounded by the deadline budget.
  const double service_minutes =
      resilience_on ? ExpectedCollectionMinutes(res.latency, 1) : 0.0;
  const double budget_minutes = res.budget.minutes;
  // The budget clamps the flat straggler deadline: whichever is tighter
  // decides what "late" means this round.
  const double effective_deadline =
      res.budget.ClampDeadline(config.fault_policy.report_deadline_minutes);
  double clock = 0.0;
  int64_t round_retries = 0;

  const auto emit = [&](ResilienceEventType type, int64_t client_id,
                        int64_t attempt, double minutes) {
    if (config.recorder == nullptr) return;
    ResilienceEvent event;
    event.type = type;
    event.round_id = config.round_id;
    event.client_id = client_id;
    event.attempt = attempt;
    event.minutes = minutes;
    config.recorder->OnResilienceEvent(event);
  };

  // Check-in: clients already assigned in an earlier round of this query
  // (crash-then-recheckin) are rejected before any assignment is issued.
  std::vector<int64_t> active;
  active.reserve(cohort.size());
  for (const int64_t idx : cohort) {
    if (config.already_assigned != nullptr &&
        config.already_assigned->contains(
            clients[static_cast<size_t>(idx)].id())) {
      ++outcome.faults.recheckins_rejected;
      continue;
    }
    active.push_back(idx);
  }

  std::vector<BitReport> reports;
  reports.reserve(active.size());

  enum class SlotResult {
    kAccepted,
    kFailed,
    // The report exists but its predicted arrival misses the effective
    // deadline — the hedge-eligible failure mode.
    kStraggledLate,
  };

  // The full request pipeline for one assignment slot: contact, client-side
  // loss (with retries — a fresh fault roll per attempt), the wire leg
  // (with retransmissions of the already-computed report), the deadline
  // cutoff, and the server's protocol validation. Privacy-meter contract:
  // HandleRequest runs at most once per slot — a retry after dropout
  // re-requests the *undisclosed* bit, a retransmission re-sends the
  // already-metered report — so no slot is ever charged twice.
  const auto run_slot = [&](int64_t idx, const BitRequest& request,
                            bool allow_retries, bool is_hedge,
                            bool backfill) -> SlotResult {
    const Client& client = clients[static_cast<size_t>(idx)];
    outcome.assigned_clients.push_back(idx);
    ++outcome.contacted;
    ++outcome.comm.requests_sent;
    outcome.comm.payload_bytes += RequestPayloadBytes();
    if (backfill) ++outcome.faults.backfill_requests;

    std::optional<BitReport> report;
    int64_t attempt = 0;
    // Gatekeeper for another attempt: per-client cap, per-round cap, then
    // the deadline budget (the backoff plus one more service interval must
    // still fit). Charges the backoff to the clock on success.
    const auto try_schedule_retry = [&](bool retransmit) -> bool {
      if (!allow_retries || !res.retry.enabled()) return false;
      const int64_t next = attempt + 1;
      if (next > res.retry.max_retries_per_client) {
        ++outcome.retry.retries_exhausted;
        return false;
      }
      if (round_retries >= res.retry.max_retries_per_round) {
        ++outcome.retry.retry_budget_denied;
        return false;
      }
      const double backoff =
          schedule.BackoffMinutes(config.round_id, client.id(), next);
      if (clock + backoff + service_minutes > budget_minutes) {
        ++outcome.retry.deadline_denied;
        return false;
      }
      clock += backoff;
      outcome.retry.backoff_minutes += backoff;
      ++round_retries;
      if (retransmit) {
        ++outcome.retry.retransmits_requested;
        emit(ResilienceEventType::kRetransmitScheduled, client.id(), next,
             backoff);
      } else {
        ++outcome.retry.retries_scheduled;
        emit(ResilienceEventType::kRetryScheduled, client.id(), next, backoff);
      }
      attempt = next;
      return true;
    };

    while (true) {
      clock += service_minutes;
      const FaultType fault =
          config.fault_plan != nullptr
              ? config.fault_plan->DecideAttempt(config.round_id, client.id(),
                                                 attempt)
              : FaultType::kNone;
      if (fault == FaultType::kRoundBoundaryCrash) {
        // Fatal for the slot whether it struck the first attempt or a
        // retransmission: the device is gone until it re-checks-in.
        ++outcome.faults.injected_crashes;
        outcome.crashed_clients.push_back(idx);
        return SlotResult::kFailed;
      }
      if (fault == FaultType::kMidRoundDropout) {
        // The device vanished before this leg completed. On attempt 0
        // nothing was disclosed and the meter was never charged; on a
        // retransmission only the wire leg was lost.
        ++outcome.faults.injected_dropouts;
        if (try_schedule_retry(/*retransmit=*/report.has_value())) continue;
        return SlotResult::kFailed;
      }
      if (!report.has_value()) {
        report = client.HandleRequest(request, codec_,
                                      !config.central_randomness, meter, rng);
        // Organic loss (client-side dropout or meter denial) is not an
        // injected fault and is not retried: the device made its decision.
        if (!report.has_value()) return SlotResult::kFailed;
      }
      std::optional<BitReport> delivered = report;
      if (fault == FaultType::kCorruptMessage ||
          fault == FaultType::kTruncateMessage) {
        // The report was sent (and metered); the wire leg garbles it. A
        // rejected frame is recovered by *retransmission* — the client
        // re-sends the same report, so the meter is not consulted again.
        delivered = DeliverFaultedReport(*config.fault_plan, config.round_id,
                                         client.id(), attempt, fault, *report,
                                         &outcome.faults);
        if (!delivered.has_value()) {
          if (try_schedule_retry(/*retransmit=*/true)) continue;
          return SlotResult::kFailed;
        }
      }
      if (fault == FaultType::kStraggler) {
        ++outcome.faults.injected_stragglers;
        if (std::isfinite(effective_deadline)) {
          ++outcome.faults.late_reports_rejected;
          return SlotResult::kStraggledLate;
        }
        ++outcome.faults.late_reports_accepted;
      }
      BitReport accepted = *delivered;
      if (config.central_randomness) {
        // Defense: tally under the server's assignment, not the claim.
        accepted.bit_index = request.bit_index;
      } else if (accepted.bit_index < 0 || accepted.bit_index >= bits ||
                 (accepted.bit != 0 && accepted.bit != 1)) {
        // Under local randomness the index (and bit) are client-supplied;
        // reject anything outside the protocol's domain.
        ++outcome.malformed_reports;
        return SlotResult::kFailed;
      }
      ++outcome.comm.reports_received;
      ++outcome.comm.private_bits;
      outcome.comm.payload_bytes += ReportPayloadBytes();
      if (backfill) ++outcome.faults.backfill_reports;
      if (is_hedge) {
        ++outcome.retry.hedge_reports;
        emit(ResilienceEventType::kHedgeWon, client.id(), 0, 0.0);
      } else if (attempt > 0) {
        ++outcome.retry.retry_reports_recovered;
        emit(ResilienceEventType::kRetryRecovered, client.id(), attempt, 0.0);
      }
      if (config.recorder != nullptr) {
        config.recorder->OnReportAccepted(config.round_id, accepted);
      }
      reports.push_back(accepted);
      return SlotResult::kAccepted;
    }
  };

  // Fresh-client source for hedges, shared with the backfill passes so no
  // client is drawn twice. Quarantined clients are skipped here like
  // everywhere else.
  size_t pool_pos = 0;
  const auto next_pool_client = [&]() -> std::optional<int64_t> {
    while (pool_pos < config.backfill_pool.size()) {
      const int64_t idx = config.backfill_pool[pool_pos++];
      if (breaker_on) {
        const int64_t id = clients[static_cast<size_t>(idx)].id();
        const AssignmentDecision decision = config.health->Decision(id);
        if (decision == AssignmentDecision::kSkip) {
          ++outcome.retry.breaker_skips;
          emit(ResilienceEventType::kBreakerSkip, id, 0, 0.0);
          continue;
        }
        if (decision == AssignmentDecision::kProbe) {
          ++outcome.retry.breaker_probes;
          emit(ResilienceEventType::kBreakerProbe, id, 0, 0.0);
        }
      }
      return idx;
    }
    return std::nullopt;
  };

  // One collection pass: filter the batch through the circuit breaker,
  // assign bits (QMC partition per pass), then drive every slot through the
  // pipeline — hedging slots that fail or straggle when the policy allows.
  const auto collect = [&](const std::vector<int64_t>& batch, bool backfill) {
    std::vector<int64_t> eligible;
    eligible.reserve(batch.size());
    for (const int64_t idx : batch) {
      if (breaker_on) {
        const int64_t id = clients[static_cast<size_t>(idx)].id();
        const AssignmentDecision decision = config.health->Decision(id);
        if (decision == AssignmentDecision::kSkip) {
          ++outcome.retry.breaker_skips;
          emit(ResilienceEventType::kBreakerSkip, id, 0, 0.0);
          continue;
        }
        if (decision == AssignmentDecision::kProbe) {
          ++outcome.retry.breaker_probes;
          emit(ResilienceEventType::kBreakerProbe, id, 0, 0.0);
        }
      }
      eligible.push_back(idx);
    }
    const int64_t k = static_cast<int64_t>(eligible.size());
    if (k == 0) return;
    const std::vector<int> assignment =
        config.central_randomness
            ? AssignBitsCentral(k, config.probabilities, rng)
            : AssignBitsLocal(k, config.probabilities, rng);
    if (config.central_randomness) {
      for (const int bit : assignment) {
        ++outcome.intended_counts[static_cast<size_t>(bit)];
      }
    }
    if (config.recorder != nullptr) {
      std::vector<int64_t> assigned_ids;
      assigned_ids.reserve(eligible.size());
      for (const int64_t idx : eligible) {
        assigned_ids.push_back(clients[static_cast<size_t>(idx)].id());
      }
      config.recorder->OnCohortAssigned(config.round_id, assigned_ids);
    }
    for (int64_t i = 0; i < k; ++i) {
      const int64_t idx = eligible[static_cast<size_t>(i)];
      const int64_t client_id = clients[static_cast<size_t>(idx)].id();
      const BitRequest request{config.round_id, config.value_id,
                               assignment[static_cast<size_t>(i)],
                               config.epsilon};
      // Pre-emptive hedging: once the budget is nearly spent, every slot
      // gets a duplicate assignment reserved up front. Decided *before* the
      // slot runs so the hedge models a duplicate issued alongside the
      // original, not hindsight.
      const bool hedge_planned =
          res.hedge.enabled && res.budget.finite() &&
          clock >= res.hedge.trigger_budget_fraction * budget_minutes &&
          outcome.retry.hedges_issued < res.hedge.max_hedges_per_round;
      const SlotResult primary = run_slot(idx, request, /*allow_retries=*/true,
                                          /*is_hedge=*/false, backfill);
      if (primary == SlotResult::kAccepted) {
        outcome.succeeded_client_ids.push_back(client_id);
        if (hedge_planned) {
          // First complete wins: the original arrived, so the duplicate is
          // cancelled before the hedge client computes anything — it never
          // discloses a bit, is never metered, and stays in the pool.
          ++outcome.retry.hedges_issued;
          ++outcome.retry.hedges_cancelled;
          emit(ResilienceEventType::kHedgeIssued, client_id, 0, 0.0);
          emit(ResilienceEventType::kHedgeCancelled, client_id, 0, 0.0);
        }
        continue;
      }
      outcome.failed_client_ids.push_back(client_id);
      // Reactive hedging: a straggler's report is *predicted late* the
      // moment its delay is known, so the duplicate goes out even before
      // the budget-pressure trigger fires.
      const bool hedge_wanted =
          res.hedge.enabled &&
          (hedge_planned || primary == SlotResult::kStraggledLate) &&
          outcome.retry.hedges_issued < res.hedge.max_hedges_per_round;
      if (!hedge_wanted) continue;
      const std::optional<int64_t> hedge_idx = next_pool_client();
      if (!hedge_idx.has_value()) continue;
      const int64_t hedge_id =
          clients[static_cast<size_t>(*hedge_idx)].id();
      ++outcome.retry.hedges_issued;
      emit(ResilienceEventType::kHedgeIssued, client_id, 0, 0.0);
      const SlotResult hedged =
          run_slot(*hedge_idx, request, /*allow_retries=*/false,
                   /*is_hedge=*/true, /*backfill=*/false);
      if (hedged == SlotResult::kAccepted) {
        outcome.succeeded_client_ids.push_back(hedge_id);
        if (primary == SlotResult::kStraggledLate) {
          // The original's late duplicate is discarded by dedup: exactly
          // one report per work item enters the tally.
          ++outcome.retry.hedge_dedup_drops;
        }
      } else {
        ++outcome.retry.hedge_failures;
        emit(ResilienceEventType::kHedgeFailed, hedge_id, 0, 0.0);
        outcome.failed_client_ids.push_back(hedge_id);
      }
    }
  };

  collect(active, /*backfill=*/false);

  // Bounded backfill: re-draw replacement clients from the pool until the
  // accepted-report count reaches the cohort target or the passes/pool run
  // out. Replacements run the same pipeline (faults included) and are
  // metered on response like any reporter.
  const int64_t target = static_cast<int64_t>(active.size());
  for (int64_t pass = 0; pass < config.fault_policy.max_backfill_rounds &&
                         static_cast<int64_t>(reports.size()) < target &&
                         pool_pos < config.backfill_pool.size();
       ++pass) {
    const int64_t need = target - static_cast<int64_t>(reports.size());
    std::vector<int64_t> draw;
    draw.reserve(static_cast<size_t>(need));
    while (static_cast<int64_t>(draw.size()) < need &&
           pool_pos < config.backfill_pool.size()) {
      draw.push_back(config.backfill_pool[pool_pos++]);
    }
    ++outcome.faults.backfill_rounds_used;
    collect(draw, /*backfill=*/true);
  }

  outcome.responded = static_cast<int64_t>(reports.size());
  if (resilience_on) outcome.retry.elapsed_minutes = clock;
  outcome.dropout_rate =
      outcome.contacted > 0
          ? 1.0 - static_cast<double>(outcome.responded) /
                      static_cast<double>(outcome.contacted)
          : 0.0;

  if (!config.use_secure_aggregation) {
    // Columnar tally (src/batch/): identical counts to the old per-report
    // Add loop — ones[j]/totals[j] are order-free sums — so the golden
    // campaign snapshots are unaffected, but the counting is a popcount
    // over packed words instead of a 16-byte-per-report scan.
    if (!reports.empty()) {
      AggregateBatch(ReportBatchFromBitReports(reports, bits))
          .AccumulateInto(&outcome.histogram);
    }
    return outcome;
  }

  // Secure aggregation: one session per bit group over the clients that
  // actually responded for that bit; the server learns only (sum, count).
  std::vector<std::vector<uint64_t>> group_bits(static_cast<size_t>(bits));
  for (const BitReport& report : reports) {
    group_bits[static_cast<size_t>(report.bit_index)].push_back(
        static_cast<uint64_t>(report.bit));
  }
  for (int j = 0; j < bits; ++j) {
    const std::vector<uint64_t>& group =
        group_bits[static_cast<size_t>(j)];
    if (group.empty()) continue;
    const int64_t count = static_cast<int64_t>(group.size());
    // The aggregator constructor consumes the same rng draws as before;
    // masking/summing runs through the kernel word-add (exact mod-2^64
    // arithmetic either way).
    SecureAggregator aggregator(count, rng);
    std::vector<uint64_t> masked(group.size());
    aggregator.MaskBatch(group.data(), count, /*first_slot=*/0,
                         masked.data());
    aggregator.SubmitBatch(masked.data(), count);
    BITPUSH_CHECK(aggregator.complete());
    const uint64_t ones = aggregator.Sum();
    // Reconstruct the histogram from (sum, count) alone.
    outcome.histogram.Accumulate(j, count,
                                 static_cast<int64_t>(ones));
  }
  return outcome;
}

void EncodeRoundOutcome(const RoundOutcome& outcome,
                        std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  EncodeBitHistogram(outcome.histogram, out);
  bytes::PutInt64(outcome.contacted, out);
  bytes::PutInt64(outcome.responded, out);
  bytes::PutInt64(outcome.malformed_reports, out);
  bytes::PutDouble(outcome.dropout_rate, out);
  EncodeCommunicationStats(outcome.comm, out);
  bytes::PutInt64Vector(outcome.intended_counts, out);
  EncodeFaultStats(outcome.faults, out);
  bytes::PutInt64Vector(outcome.assigned_clients, out);
  bytes::PutInt64Vector(outcome.crashed_clients, out);
  EncodeRetryStats(outcome.retry, out);
  bytes::PutInt64Vector(outcome.succeeded_client_ids, out);
  bytes::PutInt64Vector(outcome.failed_client_ids, out);
}

bool DecodeRoundOutcome(const std::vector<uint8_t>& buffer, size_t* offset,
                        RoundOutcome* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  RoundOutcome outcome;
  if (!DecodeBitHistogram(buffer, &cursor, &outcome.histogram) ||
      !bytes::GetInt64(buffer, &cursor, &outcome.contacted) ||
      !bytes::GetInt64(buffer, &cursor, &outcome.responded) ||
      !bytes::GetInt64(buffer, &cursor, &outcome.malformed_reports) ||
      !bytes::GetDouble(buffer, &cursor, &outcome.dropout_rate) ||
      !DecodeCommunicationStats(buffer, &cursor, &outcome.comm) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.intended_counts) ||
      !DecodeFaultStats(buffer, &cursor, &outcome.faults) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.assigned_clients) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.crashed_clients) ||
      !DecodeRetryStats(buffer, &cursor, &outcome.retry) ||
      !bytes::GetInt64Vector(buffer, &cursor,
                             &outcome.succeeded_client_ids) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.failed_client_ids)) {
    return false;
  }
  if (outcome.contacted < 0 || outcome.responded < 0 ||
      outcome.malformed_reports < 0 || !std::isfinite(outcome.dropout_rate) ||
      outcome.dropout_rate < 0.0 || outcome.dropout_rate > 1.0) {
    return false;
  }
  for (const int64_t count : outcome.intended_counts) {
    if (count < 0) return false;
  }
  *out = std::move(outcome);
  *offset = cursor;
  return true;
}

double AggregationServer::EstimateMean(const BitHistogram& histogram,
                                       double epsilon) const {
  const RandomizedResponse rr = RandomizedResponse::FromEpsilon(epsilon);
  const std::vector<double> means = histogram.UnbiasedMeans(rr);
  return codec_.Decode(RecombineBitMeans(means));
}

std::vector<double> AdjustProbabilitiesForDropout(
    const std::vector<double>& probabilities,
    const std::vector<int64_t>& intended_counts,
    const std::vector<int64_t>& realized_counts) {
  BITPUSH_CHECK_EQ(probabilities.size(), intended_counts.size());
  BITPUSH_CHECK_EQ(probabilities.size(), realized_counts.size());
  std::vector<double> adjusted(probabilities.size());
  double total = 0.0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    double ratio = 1.0;
    if (intended_counts[j] > 0) {
      ratio = static_cast<double>(intended_counts[j]) /
              std::max<double>(1.0, static_cast<double>(realized_counts[j]));
      ratio = std::clamp(ratio, 0.5, 2.0);
    }
    adjusted[j] = probabilities[j] * ratio;
    total += adjusted[j];
  }
  BITPUSH_CHECK_GT(total, 0.0);
  for (double& p : adjusted) p /= total;
  return adjusted;
}

}  // namespace bitpush
