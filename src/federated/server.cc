#include "federated/server.h"

#include <algorithm>
#include <cmath>

#include "federated/persist_hooks.h"
#include "federated/secure_agg.h"
#include "rng/qmc.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

AggregationServer::AggregationServer(const FixedPointCodec& codec)
    : codec_(codec) {}

RoundOutcome AggregationServer::RunRound(const std::vector<Client>& clients,
                                         const std::vector<int64_t>& cohort,
                                         const RoundConfig& config,
                                         PrivacyMeter* meter,
                                         Rng& rng) const {
  const int bits = codec_.bits();
  BITPUSH_CHECK_EQ(static_cast<int>(config.probabilities.size()), bits);
  BITPUSH_CHECK(!cohort.empty());

  RoundOutcome outcome;
  outcome.histogram = BitHistogram(bits);
  if (config.central_randomness) {
    outcome.intended_counts.assign(static_cast<size_t>(bits), 0);
  }

  // Check-in: clients already assigned in an earlier round of this query
  // (crash-then-recheckin) are rejected before any assignment is issued.
  std::vector<int64_t> active;
  active.reserve(cohort.size());
  for (const int64_t idx : cohort) {
    if (config.already_assigned != nullptr &&
        config.already_assigned->contains(
            clients[static_cast<size_t>(idx)].id())) {
      ++outcome.faults.recheckins_rejected;
      continue;
    }
    active.push_back(idx);
  }

  std::vector<BitReport> reports;
  reports.reserve(active.size());

  // One collection pass: assign bits to `batch` (QMC partition per pass),
  // send requests, and run each report through the fault pipeline —
  // client-side loss, then the wire leg, then the deadline cutoff, then the
  // server's protocol validation.
  const auto collect = [&](const std::vector<int64_t>& batch,
                           bool backfill) {
    const int64_t k = static_cast<int64_t>(batch.size());
    if (k == 0) return;
    const std::vector<int> assignment =
        config.central_randomness
            ? AssignBitsCentral(k, config.probabilities, rng)
            : AssignBitsLocal(k, config.probabilities, rng);
    if (config.central_randomness) {
      for (const int bit : assignment) {
        ++outcome.intended_counts[static_cast<size_t>(bit)];
      }
    }
    if (config.recorder != nullptr) {
      std::vector<int64_t> assigned_ids;
      assigned_ids.reserve(batch.size());
      for (const int64_t idx : batch) {
        assigned_ids.push_back(clients[static_cast<size_t>(idx)].id());
      }
      config.recorder->OnCohortAssigned(config.round_id, assigned_ids);
    }
    for (int64_t i = 0; i < k; ++i) {
      const Client& client = clients[static_cast<size_t>(batch[i])];
      outcome.assigned_clients.push_back(batch[i]);
      const BitRequest request{config.round_id, config.value_id,
                               assignment[static_cast<size_t>(i)],
                               config.epsilon};
      ++outcome.comm.requests_sent;
      outcome.comm.payload_bytes += RequestPayloadBytes();
      const FaultType fault =
          config.fault_plan != nullptr
              ? config.fault_plan->Decide(config.round_id, client.id())
              : FaultType::kNone;
      if (fault == FaultType::kMidRoundDropout) {
        // The device vanished before computing its report: no private bit
        // was disclosed, so the meter is never charged.
        ++outcome.faults.injected_dropouts;
        continue;
      }
      if (fault == FaultType::kRoundBoundaryCrash) {
        ++outcome.faults.injected_crashes;
        outcome.crashed_clients.push_back(batch[i]);
        continue;
      }
      std::optional<BitReport> report = client.HandleRequest(
          request, codec_, !config.central_randomness, meter, rng);
      if (!report.has_value()) continue;
      if (fault == FaultType::kCorruptMessage ||
          fault == FaultType::kTruncateMessage) {
        // The report was sent (and metered); the wire leg garbles it.
        report = DeliverFaultedReport(*config.fault_plan, config.round_id,
                                      client.id(), fault, *report,
                                      &outcome.faults);
        if (!report.has_value()) continue;
      }
      if (fault == FaultType::kStraggler) {
        ++outcome.faults.injected_stragglers;
        if (std::isfinite(config.fault_policy.report_deadline_minutes)) {
          ++outcome.faults.late_reports_rejected;
          continue;
        }
        ++outcome.faults.late_reports_accepted;
      }
      if (config.central_randomness) {
        // Defense: tally under the server's assignment, not the claim.
        report->bit_index = request.bit_index;
      } else if (report->bit_index < 0 || report->bit_index >= bits ||
                 (report->bit != 0 && report->bit != 1)) {
        // Under local randomness the index (and bit) are client-supplied;
        // reject anything outside the protocol's domain.
        ++outcome.malformed_reports;
        continue;
      }
      ++outcome.comm.reports_received;
      ++outcome.comm.private_bits;
      outcome.comm.payload_bytes += ReportPayloadBytes();
      if (backfill) ++outcome.faults.backfill_reports;
      if (config.recorder != nullptr) {
        config.recorder->OnReportAccepted(config.round_id, *report);
      }
      reports.push_back(*report);
    }
  };

  collect(active, /*backfill=*/false);

  // Bounded backfill: re-draw replacement clients from the pool until the
  // accepted-report count reaches the cohort target or the passes/pool run
  // out. Replacements run the same pipeline (faults included) and are
  // metered on response like any reporter.
  const int64_t target = static_cast<int64_t>(active.size());
  size_t pool_pos = 0;
  for (int64_t pass = 0; pass < config.fault_policy.max_backfill_rounds &&
                         static_cast<int64_t>(reports.size()) < target &&
                         pool_pos < config.backfill_pool.size();
       ++pass) {
    const int64_t need = target - static_cast<int64_t>(reports.size());
    std::vector<int64_t> draw;
    draw.reserve(static_cast<size_t>(need));
    while (static_cast<int64_t>(draw.size()) < need &&
           pool_pos < config.backfill_pool.size()) {
      draw.push_back(config.backfill_pool[pool_pos++]);
    }
    ++outcome.faults.backfill_rounds_used;
    outcome.faults.backfill_requests += static_cast<int64_t>(draw.size());
    collect(draw, /*backfill=*/true);
  }

  outcome.contacted = target + outcome.faults.backfill_requests;
  outcome.responded = static_cast<int64_t>(reports.size());
  outcome.dropout_rate =
      outcome.contacted > 0
          ? 1.0 - static_cast<double>(outcome.responded) /
                      static_cast<double>(outcome.contacted)
          : 0.0;

  if (!config.use_secure_aggregation) {
    for (const BitReport& report : reports) {
      outcome.histogram.Add(report.bit_index, report.bit);
    }
    return outcome;
  }

  // Secure aggregation: one session per bit group over the clients that
  // actually responded for that bit; the server learns only (sum, count).
  std::vector<std::vector<int>> group_bits(static_cast<size_t>(bits));
  for (const BitReport& report : reports) {
    group_bits[static_cast<size_t>(report.bit_index)].push_back(report.bit);
  }
  for (int j = 0; j < bits; ++j) {
    const std::vector<int>& group = group_bits[static_cast<size_t>(j)];
    if (group.empty()) continue;
    SecureAggregator aggregator(static_cast<int64_t>(group.size()), rng);
    for (size_t i = 0; i < group.size(); ++i) {
      aggregator.Submit(aggregator.Mask(static_cast<int64_t>(i),
                                        static_cast<uint64_t>(group[i])));
    }
    BITPUSH_CHECK(aggregator.complete());
    const uint64_t ones = aggregator.Sum();
    // Reconstruct the histogram from (sum, count) alone.
    for (uint64_t k = 0; k < static_cast<uint64_t>(group.size()); ++k) {
      outcome.histogram.Add(j, k < ones ? 1 : 0);
    }
  }
  return outcome;
}

void EncodeRoundOutcome(const RoundOutcome& outcome,
                        std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  EncodeBitHistogram(outcome.histogram, out);
  bytes::PutInt64(outcome.contacted, out);
  bytes::PutInt64(outcome.responded, out);
  bytes::PutInt64(outcome.malformed_reports, out);
  bytes::PutDouble(outcome.dropout_rate, out);
  EncodeCommunicationStats(outcome.comm, out);
  bytes::PutInt64Vector(outcome.intended_counts, out);
  EncodeFaultStats(outcome.faults, out);
  bytes::PutInt64Vector(outcome.assigned_clients, out);
  bytes::PutInt64Vector(outcome.crashed_clients, out);
}

bool DecodeRoundOutcome(const std::vector<uint8_t>& buffer, size_t* offset,
                        RoundOutcome* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  RoundOutcome outcome;
  if (!DecodeBitHistogram(buffer, &cursor, &outcome.histogram) ||
      !bytes::GetInt64(buffer, &cursor, &outcome.contacted) ||
      !bytes::GetInt64(buffer, &cursor, &outcome.responded) ||
      !bytes::GetInt64(buffer, &cursor, &outcome.malformed_reports) ||
      !bytes::GetDouble(buffer, &cursor, &outcome.dropout_rate) ||
      !DecodeCommunicationStats(buffer, &cursor, &outcome.comm) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.intended_counts) ||
      !DecodeFaultStats(buffer, &cursor, &outcome.faults) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.assigned_clients) ||
      !bytes::GetInt64Vector(buffer, &cursor, &outcome.crashed_clients)) {
    return false;
  }
  if (outcome.contacted < 0 || outcome.responded < 0 ||
      outcome.malformed_reports < 0 || !std::isfinite(outcome.dropout_rate) ||
      outcome.dropout_rate < 0.0 || outcome.dropout_rate > 1.0) {
    return false;
  }
  for (const int64_t count : outcome.intended_counts) {
    if (count < 0) return false;
  }
  *out = std::move(outcome);
  *offset = cursor;
  return true;
}

double AggregationServer::EstimateMean(const BitHistogram& histogram,
                                       double epsilon) const {
  const RandomizedResponse rr = RandomizedResponse::FromEpsilon(epsilon);
  const std::vector<double> means = histogram.UnbiasedMeans(rr);
  return codec_.Decode(RecombineBitMeans(means));
}

std::vector<double> AdjustProbabilitiesForDropout(
    const std::vector<double>& probabilities,
    const std::vector<int64_t>& intended_counts,
    const std::vector<int64_t>& realized_counts) {
  BITPUSH_CHECK_EQ(probabilities.size(), intended_counts.size());
  BITPUSH_CHECK_EQ(probabilities.size(), realized_counts.size());
  std::vector<double> adjusted(probabilities.size());
  double total = 0.0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    double ratio = 1.0;
    if (intended_counts[j] > 0) {
      ratio = static_cast<double>(intended_counts[j]) /
              std::max<double>(1.0, static_cast<double>(realized_counts[j]));
      ratio = std::clamp(ratio, 0.5, 2.0);
    }
    adjusted[j] = probabilities[j] * ratio;
    total += adjusted[j];
  }
  BITPUSH_CHECK_GT(total, 0.0);
  for (double& p : adjusted) p /= total;
  return adjusted;
}

}  // namespace bitpush
