#include "federated/fleet.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace bitpush {

FleetSimulator::FleetSimulator(const FleetConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  BITPUSH_CHECK_GE(config_.devices, 1);
  BITPUSH_CHECK_GE(config_.availability_base, 0.0);
  BITPUSH_CHECK_GE(config_.availability_amplitude, 0.0);
}

void FleetSimulator::AdvanceHours(double hours) {
  BITPUSH_CHECK_GE(hours, 0.0);
  hour_ += hours;
}

double FleetSimulator::Availability() const {
  const double cycle = std::sin(2.0 * std::numbers::pi * hour_ / 24.0);
  return std::clamp(
      config_.availability_base + config_.availability_amplitude * cycle,
      0.05, 1.0);
}

void FleetSimulator::ScaleMetric(double factor) {
  BITPUSH_CHECK_GT(factor, 0.0);
  metric_scale_ *= factor;
}

std::vector<double> FleetSimulator::CollectWindow(int64_t max_cohort) {
  BITPUSH_CHECK_GE(max_cohort, 0);
  const double availability = Availability();
  std::vector<double> readings;
  for (int64_t device = 0; device < config_.devices; ++device) {
    if (max_cohort > 0 &&
        static_cast<int64_t>(readings.size()) >= max_cohort) {
      break;
    }
    if (!rng_.NextBernoulli(availability)) continue;
    readings.push_back(metric_scale_ *
                       GenerateMetric(config_.metric, 1, rng_).front());
  }
  return readings;
}

}  // namespace bitpush
