#include "federated/fleet.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace bitpush {

FleetSimulator::FleetSimulator(const FleetConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      seed_(seed),
      fault_plan_(seed, config.report_faults) {
  BITPUSH_CHECK_GE(config_.devices, 1);
  BITPUSH_CHECK_GE(config_.availability_base, 0.0);
  BITPUSH_CHECK_GE(config_.availability_amplitude, 0.0);
  BITPUSH_CHECK(!(config_.report_deadline_minutes < 0.0))
      << "report_deadline_minutes must be non-negative";
}

void FleetSimulator::AdvanceHours(double hours) {
  BITPUSH_CHECK_GE(hours, 0.0);
  hour_ += hours;
}

double FleetSimulator::Availability() const {
  const double cycle = std::sin(2.0 * std::numbers::pi * hour_ / 24.0);
  return std::clamp(
      config_.availability_base + config_.availability_amplitude * cycle,
      0.05, 1.0);
}

void FleetSimulator::ScaleMetric(double factor) {
  BITPUSH_CHECK_GT(factor, 0.0);
  metric_scale_ *= factor;
}

std::vector<double> FleetSimulator::CollectWindow(int64_t max_cohort) {
  BITPUSH_CHECK_GE(max_cohort, 0);
  const double availability = Availability();
  const int64_t window = ++window_index_;
  std::vector<double> readings;
  for (int64_t device = 0; device < config_.devices; ++device) {
    if (max_cohort > 0 &&
        static_cast<int64_t>(readings.size()) >= max_cohort) {
      break;
    }
    if (!rng_.NextBernoulli(availability)) continue;
    // Generate the reading before deciding its fate so the main RNG stream
    // is identical with and without fault injection (the device did the
    // work either way; the fault strikes the report in flight).
    const double reading =
        metric_scale_ * GenerateMetric(config_.metric, 1, rng_).front();
    bool lost = false;
    switch (fault_plan_.Decide(window, device)) {
      case FaultType::kNone:
        break;
      case FaultType::kMidRoundDropout:
        ++fault_stats_.injected_dropouts;
        lost = true;
        break;
      case FaultType::kStraggler:
        ++fault_stats_.injected_stragglers;
        if (std::isfinite(config_.report_deadline_minutes)) {
          ++fault_stats_.late_reports_rejected;
          lost = true;
        } else {
          ++fault_stats_.late_reports_accepted;
        }
        break;
      case FaultType::kCorruptMessage:
        // The monitoring transport integrity-checks frames and drops any
        // that fail, so a corrupted reading never reaches the monitor.
        ++fault_stats_.injected_corruptions;
        ++fault_stats_.corrupt_reports_rejected;
        lost = true;
        break;
      case FaultType::kTruncateMessage:
        ++fault_stats_.injected_truncations;
        ++fault_stats_.truncated_reports_rejected;
        lost = true;
        break;
      case FaultType::kRoundBoundaryCrash:
        ++fault_stats_.injected_crashes;
        lost = true;
        break;
    }
    if (lost) continue;
    readings.push_back(reading);
  }
  if (config_.model_latency) {
    // A fresh per-window generator (never the main stream) keeps clean-run
    // determinism: enabling latency modelling does not shift readings.
    Rng latency_rng(seed_ ^
                    (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(window)));
    last_window_minutes_ = SampleCollectionMinutes(
        config_.latency, static_cast<int64_t>(readings.size()), latency_rng);
  }
  return readings;
}

}  // namespace bitpush
