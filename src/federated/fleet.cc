#include "federated/fleet.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace bitpush {

namespace {

// Fleet-window metrics are kStable: the fleet simulation is fully seeded
// and its clock is the simulated LatencyModel clock.
struct FleetInstruments {
  obs::Counter* windows;
  obs::Counter* readings;
  obs::Histogram* window_minutes;
};

const FleetInstruments& GetFleetInstruments() {
  static const FleetInstruments instruments = [] {
    obs::Registry& r = obs::Registry::Default();
    const obs::Determinism s = obs::Determinism::kStable;
    FleetInstruments i;
    i.windows = r.GetCounter("bitpush_fleet_windows_total",
                             "Fleet collection windows executed.", s);
    i.readings = r.GetCounter("bitpush_fleet_readings_total",
                              "Device readings collected across windows.", s);
    i.window_minutes = r.GetHistogram(
        "bitpush_fleet_window_sim_minutes",
        "Simulated window duration on the LatencyModel clock (minutes).",
        obs::SimMinutesBounds(), s);
    return i;
  }();
  return instruments;
}

}  // namespace

FleetSimulator::FleetSimulator(const FleetConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      seed_(seed),
      fault_plan_(seed, config.report_faults) {
  BITPUSH_CHECK_GE(config_.devices, 1);
  BITPUSH_CHECK_GE(config_.availability_base, 0.0);
  BITPUSH_CHECK_GE(config_.availability_amplitude, 0.0);
  BITPUSH_CHECK(!(config_.report_deadline_minutes < 0.0))
      << "report_deadline_minutes must be non-negative";
  if (config_.resilience.retry.enabled()) {
    retry_schedule_.emplace(config_.resilience.seed, config_.resilience.retry);
  }
  if (config_.resilience.breaker.enabled()) {
    health_.emplace(config_.resilience.breaker);
  }
}

void FleetSimulator::AdvanceHours(double hours) {
  BITPUSH_CHECK_GE(hours, 0.0);
  hour_ += hours;
}

double FleetSimulator::Availability() const {
  const double cycle = std::sin(2.0 * std::numbers::pi * hour_ / 24.0);
  return std::clamp(
      config_.availability_base + config_.availability_amplitude * cycle,
      0.05, 1.0);
}

void FleetSimulator::ScaleMetric(double factor) {
  BITPUSH_CHECK_GT(factor, 0.0);
  metric_scale_ *= factor;
}

std::vector<double> FleetSimulator::CollectWindow(int64_t max_cohort) {
  BITPUSH_CHECK_GE(max_cohort, 0);
  const double availability = Availability();
  const int64_t window = ++window_index_;
  obs::Span span("collect_window", "fleet");
  span.AddNumeric("window", static_cast<double>(window));
  const bool retries_on = retry_schedule_.has_value();
  // Serial virtual clock for the window, in LatencyModel minutes: each
  // transport attempt costs one expected single-report collection, each
  // scheduled retry adds its backoff. The deadline budget bounds the clock.
  const double service_minutes =
      retries_on ? ExpectedCollectionMinutes(config_.resilience.latency, 1)
                 : 0.0;
  const double budget_minutes = config_.resilience.budget.minutes;
  double clock = 0.0;
  double backoff_spent = 0.0;
  int64_t window_retries = 0;
  if (health_.has_value()) health_->BeginRound();
  std::vector<int64_t> succeeded_devices;
  std::vector<int64_t> failed_devices;
  std::vector<double> readings;
  for (int64_t device = 0; device < config_.devices; ++device) {
    if (max_cohort > 0 &&
        static_cast<int64_t>(readings.size()) >= max_cohort) {
      break;
    }
    if (health_.has_value()) {
      // Quarantined devices are skipped before the availability draw: the
      // coordinator never contacts them, so they consume neither transport
      // attempts nor window budget.
      const AssignmentDecision decision = health_->Decision(device);
      if (decision == AssignmentDecision::kSkip) {
        ++retry_stats_.breaker_skips;
        continue;
      }
      if (decision == AssignmentDecision::kProbe) ++retry_stats_.breaker_probes;
    }
    if (!rng_.NextBernoulli(availability)) continue;
    // Generate the reading before deciding its fate so the main RNG stream
    // is identical with and without fault injection or resilience (the
    // device did the work either way; the fault strikes the report in
    // flight, and a retry retransmits the same reading).
    const double reading =
        metric_scale_ * GenerateMetric(config_.metric, 1, rng_).front();
    // Retransmits the reading on the deterministic backoff schedule until
    // it lands, a terminal fault kills it, or a retry cap / the window's
    // deadline budget denies the next attempt. Returns true when the next
    // attempt was scheduled.
    const auto try_schedule_retry = [&](int64_t attempt) {
      if (!retries_on) return false;
      const int64_t next = attempt + 1;
      if (next > config_.resilience.retry.max_retries_per_client) {
        ++retry_stats_.retries_exhausted;
        return false;
      }
      if (window_retries >= config_.resilience.retry.max_retries_per_round) {
        ++retry_stats_.retry_budget_denied;
        return false;
      }
      const double backoff =
          retry_schedule_->BackoffMinutes(window, device, next);
      if (clock + backoff + service_minutes > budget_minutes) {
        ++retry_stats_.deadline_denied;
        return false;
      }
      clock += backoff;
      backoff_spent += backoff;
      retry_stats_.backoff_minutes += backoff;
      ++retry_stats_.retransmits_requested;
      ++window_retries;
      return true;
    };
    bool lost = false;
    bool terminal = false;
    int64_t attempt = 0;
    while (true) {
      clock += service_minutes;
      bool retryable_loss = false;
      switch (fault_plan_.DecideAttempt(window, device, attempt)) {
        case FaultType::kNone:
          break;
        case FaultType::kMidRoundDropout:
          ++fault_stats_.injected_dropouts;
          retryable_loss = true;
          break;
        case FaultType::kStraggler:
          ++fault_stats_.injected_stragglers;
          if (std::isfinite(config_.report_deadline_minutes)) {
            ++fault_stats_.late_reports_rejected;
            lost = true;
            terminal = true;  // a late report is final; nothing to resend
          } else {
            ++fault_stats_.late_reports_accepted;
          }
          break;
        case FaultType::kCorruptMessage:
          // The monitoring transport integrity-checks frames and drops any
          // that fail, so a corrupted reading never reaches the monitor.
          ++fault_stats_.injected_corruptions;
          ++fault_stats_.corrupt_reports_rejected;
          retryable_loss = true;
          break;
        case FaultType::kTruncateMessage:
          ++fault_stats_.injected_truncations;
          ++fault_stats_.truncated_reports_rejected;
          retryable_loss = true;
          break;
        case FaultType::kRoundBoundaryCrash:
          ++fault_stats_.injected_crashes;
          lost = true;
          terminal = true;  // the device is gone for this window
          break;
      }
      if (terminal) break;
      if (!retryable_loss) {
        if (attempt > 0) ++retry_stats_.retry_reports_recovered;
        break;
      }
      lost = true;
      if (!try_schedule_retry(attempt)) break;
      lost = false;
      ++attempt;
    }
    if (health_.has_value()) {
      (lost ? failed_devices : succeeded_devices).push_back(device);
    }
    if (lost) continue;
    readings.push_back(reading);
  }
  if (health_.has_value()) {
    const int64_t opens_before = health_->opens();
    const int64_t closes_before = health_->closes();
    health_->ObserveRound(window, succeeded_devices, failed_devices,
                          /*recorder=*/nullptr);
    retry_stats_.breaker_opens += health_->opens() - opens_before;
    retry_stats_.breaker_closes += health_->closes() - closes_before;
  }
  retry_stats_.elapsed_minutes += clock;
  const FleetInstruments& obs = GetFleetInstruments();
  obs.windows->Increment();
  obs.readings->Add(static_cast<int64_t>(readings.size()));
  obs.window_minutes->Observe(clock);
  span.set_sim_minutes(clock);
  span.AddNumeric("readings", static_cast<double>(readings.size()));
  if (config_.model_latency) {
    // A fresh per-window generator (never the main stream) keeps clean-run
    // determinism: enabling latency modelling does not shift readings.
    Rng latency_rng(seed_ ^
                    (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(window)));
    last_window_minutes_ =
        SampleCollectionMinutes(config_.latency,
                                static_cast<int64_t>(readings.size()),
                                latency_rng) +
        backoff_spent;
  }
  return readings;
}

}  // namespace bitpush
