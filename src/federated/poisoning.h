// Adversarial client behaviours (Section 5, "Robustness to poisoning
// attacks"): a malicious client cannot bias the mean much by flipping its
// one assigned bit, but under *local* randomness it can elect to always
// report the most significant bit as 1, deterministically pushing the
// estimate upward. Central randomness removes the bit-choice lever.

#ifndef BITPUSH_FEDERATED_POISONING_H_
#define BITPUSH_FEDERATED_POISONING_H_

#include <cstdint>

namespace bitpush {

enum class AdversaryMode {
  kHonest,
  // Reports 1 regardless of the assigned bit's true value (works under
  // both randomness modes, but is weighted by the assigned bit).
  kAlwaysOne,
  // Under local randomness: pretends it sampled the top bit and reports 1
  // there. Under central randomness the client cannot choose the index, so
  // this degrades to kAlwaysOne on the assigned bit.
  kTopBitOne,
  // Reports the complement of the true bit.
  kFlipBit,
  // Claims an out-of-protocol bit index (only expressible under local
  // randomness); the server must reject such reports as malformed.
  kGarbageIndex,
};

// Applies the adversary's policy. `assigned_bit_index` is the server's
// choice; `true_bit` the honest value of that bit. Returns the bit value the
// adversary reports and sets `*reported_index` to the index it claims
// (differs from the assignment only for kTopBitOne under local randomness).
int PoisonedBit(AdversaryMode mode, bool local_randomness, int top_bit_index,
                int assigned_bit_index, int true_bit, int* reported_index);

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_POISONING_H_
