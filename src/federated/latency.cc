#include "federated/latency.h"

#include "rng/distributions.h"
#include "util/check.h"

namespace bitpush {
namespace {

void ValidateModel(const LatencyModel& model) {
  BITPUSH_CHECK_GT(model.checkins_per_minute, 0.0);
  BITPUSH_CHECK_GT(model.eligibility_rate, 0.0);
  BITPUSH_CHECK_LE(model.eligibility_rate, 1.0);
  BITPUSH_CHECK_GE(model.fixed_round_minutes, 0.0);
}

}  // namespace

double ExpectedCollectionMinutes(const LatencyModel& model,
                                 int64_t cohort_size) {
  ValidateModel(model);
  BITPUSH_CHECK_GE(cohort_size, 0);
  // Eligible check-ins form a thinned Poisson process with rate
  // checkins_per_minute * eligibility_rate.
  return static_cast<double>(cohort_size) /
         (model.checkins_per_minute * model.eligibility_rate);
}

double ExpectedQueryMinutes(const LatencyModel& model, int64_t cohort_size,
                            int rounds) {
  ValidateModel(model);
  BITPUSH_CHECK_GE(rounds, 1);
  return ExpectedCollectionMinutes(model, cohort_size) +
         static_cast<double>(rounds) * model.fixed_round_minutes;
}

double SampleCollectionMinutes(const LatencyModel& model,
                               int64_t cohort_size, Rng& rng) {
  ValidateModel(model);
  BITPUSH_CHECK_GE(cohort_size, 0);
  const double rate = model.checkins_per_minute * model.eligibility_rate;
  double minutes = 0.0;
  for (int64_t i = 0; i < cohort_size; ++i) {
    minutes += SampleExponential(rng, 1.0 / rate);
  }
  return minutes;
}

}  // namespace bitpush
