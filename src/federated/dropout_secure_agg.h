// Dropout-tolerant secure aggregation (simplified Bonawitz/Segal et al.
// double masking, the construction Section 3.3 cites for "the server knows
// the sum of the input values, without revealing anything further").
//
// Each client i masks its value over GF(2^61 - 1) with
//   masked_i = value_i + PRG(b_i) + sum_{j>i} PRG(s_ij) - sum_{j<i} PRG(s_ji)
// where b_i is a per-client self seed and s_ij = s_ji pairwise seeds. When
// everyone survives, the pairwise terms cancel in the sum and the server
// only needs the self masks removed. Both kinds of seeds are Shamir-shared
// among the cohort with threshold t, so after dropouts the surviving
// clients' shares let the server reconstruct
//   * b_i for every survivor (to strip self masks), and
//   * s_ij for every dropped i (to strip its unmatched pairwise terms)
// — but never both kinds for the same client, which is what keeps any
// individual value hidden. This simulation holds all key material in one
// object and exposes the recovery flow and its failure mode (fewer than t
// survivors => the sum is unrecoverable).

#ifndef BITPUSH_FEDERATED_DROPOUT_SECURE_AGG_H_
#define BITPUSH_FEDERATED_DROPOUT_SECURE_AGG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "federated/shamir.h"
#include "rng/rng.h"

namespace bitpush {

class DoubleMaskingSession {
 public:
  // Sets up seeds and their Shamir shares for `num_clients` clients with
  // recovery threshold `threshold` (2 <= threshold <= num_clients).
  DoubleMaskingSession(int num_clients, int threshold, Rng& rng);

  int num_clients() const { return num_clients_; }
  int threshold() const { return threshold_; }

  // Client-side: the masked submission for client `i` holding `value`
  // (< kShamirPrime). Each client submits at most once.
  uint64_t Submit(int client, uint64_t value);

  // Marks a client as dropped (it will never submit). Submitting and
  // dropping the same client is an error.
  void MarkDropped(int client);

  // Server-side recovery: reconstructs and strips masks using the shares
  // held by surviving clients, returning the sum (mod kShamirPrime) of the
  // survivors' values — or nullopt when fewer than `threshold` clients
  // survive and the masks are unrecoverable by design.
  std::optional<uint64_t> RecoverSum();

  // The server's raw view before recovery (for tests: individually
  // uniform-looking).
  const std::vector<std::optional<uint64_t>>& submissions() const {
    return submissions_;
  }

 private:
  uint64_t PairwiseSeed(int i, int j) const;

  int num_clients_;
  int threshold_;
  std::vector<uint64_t> self_seeds_;
  // Upper-triangular pairwise seeds: pairwise_seeds_[i][j-i-1] for j > i.
  std::vector<std::vector<uint64_t>> pairwise_seeds_;
  // Shamir shares of every seed, indexed by the share-holder client.
  // shares_of_self_[i] = shares of b_i; shares_of_pairwise_[i][*] likewise.
  std::vector<std::vector<ShamirShare>> shares_of_self_;
  std::vector<std::vector<std::vector<ShamirShare>>> shares_of_pairwise_;
  std::vector<std::optional<uint64_t>> submissions_;
  std::vector<bool> dropped_;
};

}  // namespace bitpush

#endif  // BITPUSH_FEDERATED_DROPOUT_SECURE_AGG_H_
