#include "federated/campaign.h"

#include <cmath>
#include <set>

#include "federated/obs_hooks.h"
#include "obs/trace.h"
#include "util/bytes.h"
#include "util/check.h"

namespace bitpush {

void EncodeCampaignTickResult(const CampaignTickResult& result,
                              std::vector<uint8_t>* out) {
  BITPUSH_CHECK(out != nullptr);
  bytes::PutInt64(result.tick, out);
  bytes::PutString(result.query_name, out);
  bytes::PutByte(static_cast<uint8_t>(result.status), out);
  bytes::PutDouble(result.estimate, out);
  bytes::PutInt64(result.reports, out);
}

bool DecodeCampaignTickResult(const std::vector<uint8_t>& buffer,
                              size_t* offset, CampaignTickResult* out) {
  BITPUSH_CHECK(offset != nullptr);
  BITPUSH_CHECK(out != nullptr);
  size_t cursor = *offset;
  CampaignTickResult result;
  uint8_t status = 0;
  if (!bytes::GetInt64(buffer, &cursor, &result.tick) ||
      !bytes::GetString(buffer, &cursor, &result.query_name) ||
      !bytes::GetByte(buffer, &cursor, &status) ||
      !bytes::GetDouble(buffer, &cursor, &result.estimate) ||
      !bytes::GetInt64(buffer, &cursor, &result.reports)) {
    return false;
  }
  if (result.tick < 0 || result.reports < 0 ||
      status > static_cast<uint8_t>(
                   CampaignTickResult::Status::kSkippedBudget) ||
      std::isnan(result.estimate)) {
    return false;
  }
  result.status = static_cast<CampaignTickResult::Status>(status);
  *out = std::move(result);
  *offset = cursor;
  return true;
}

MeasurementCampaign::MeasurementCampaign(std::vector<CampaignQuery> queries,
                                         PrivacyMeter* meter,
                                         ResilienceConfig resilience)
    : queries_(std::move(queries)),
      meter_(meter),
      resilience_(resilience) {
  BITPUSH_CHECK(!queries_.empty());
  std::set<std::string> names;
  for (const CampaignQuery& query : queries_) {
    BITPUSH_CHECK_GE(query.cadence_ticks, 1);
    BITPUSH_CHECK_GE(query.phase, 0);
    BITPUSH_CHECK(names.insert(query.name).second)
        << "duplicate query name " << query.name;
  }
  if (resilience_.breaker.enabled()) {
    health_.emplace(resilience_.breaker);
  }
}

std::vector<CampaignTickResult> MeasurementCampaign::RunTick(
    int64_t tick,
    const std::vector<const std::vector<Client>*>& populations,
    const std::vector<FixedPointCodec>& codecs, Rng& rng) {
  BITPUSH_CHECK_EQ(populations.size(), queries_.size());
  BITPUSH_CHECK_EQ(codecs.size(), queries_.size());
  BITPUSH_CHECK_GE(tick, 0);

  // The tick's deadline budget is split evenly across the queries this
  // tick actually schedules. Counted up front so the split does not depend
  // on execution order.
  int64_t scheduled_count = 0;
  for (const CampaignQuery& query : queries_) {
    if (tick >= query.phase && (tick - query.phase) % query.cadence_ticks == 0) {
      ++scheduled_count;
    }
  }
  const DeadlineBudget query_budget =
      scheduled_count > 0 ? resilience_.budget.Split(scheduled_count)
                          : resilience_.budget;

  obs::Span tick_span("tick", "campaign");
  tick_span.set_ids(tick, -1, -1);
  tick_span.AddNumeric("scheduled", static_cast<double>(scheduled_count));
  ObserveCampaignTick();

  std::vector<CampaignTickResult> results;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const CampaignQuery& scheduled = queries_[q];
    if (tick < scheduled.phase ||
        (tick - scheduled.phase) % scheduled.cadence_ticks != 0) {
      continue;
    }
    BITPUSH_CHECK(populations[q] != nullptr);

    // Every scheduled query gets its own forked stream, drawn whether the
    // query runs live or is restored from the journal — so after a
    // crash-recovery skip, the queries that follow still see the streams
    // an uninterrupted run would have given them.
    Rng query_rng = rng.Fork();

    CampaignTickResult result;
    result.tick = tick;
    result.query_name = scheduled.name;

    obs::Span query_span("query", "campaign");
    query_span.set_ids(tick, static_cast<int64_t>(q), -1);
    query_span.AddString("query_name", scheduled.name);

    if (recorder_ == nullptr ||
        !recorder_->RestoreQueryResult(tick, q, &result)) {
      if (recorder_ != nullptr) {
        recorder_->OnQueryStarted(tick, q, scheduled.value_id);
      }
      FederatedQueryConfig config = scheduled.query;
      config.value_id = scheduled.value_id;
      config.recorder = recorder_;
      if (resilience_.Enabled()) {
        config.resilience = resilience_;
        config.resilience.budget = query_budget;
      }
      if (health_.has_value()) config.health = &*health_;
      const FederatedQueryResult outcome = RunFederatedMeanQuery(
          *populations[q], codecs[q], config, meter_, query_rng);
      retry_stats_.MergeFrom(outcome.retry);
      result.reports = outcome.round1.responded + outcome.round2.responded;
      if (outcome.aborted) {
        result.status = CampaignTickResult::Status::kSkippedCohort;
      } else if (result.reports == 0) {
        // Every client declined: the shared budget is spent for this value.
        result.status = CampaignTickResult::Status::kSkippedBudget;
      } else {
        result.status = CampaignTickResult::Status::kRan;
        result.estimate = outcome.estimate;
      }
      if (recorder_ != nullptr) {
        recorder_->OnQueryFinished(tick, q, result, outcome);
      }
    }
    // Query-boundary metrics live on this common tail so a query restored
    // from the journal counts exactly like one that ran live.
    ObserveQueryResult(result);
    query_span.AddString(
        "status",
        result.status == CampaignTickResult::Status::kRan
            ? "ran"
            : (result.status == CampaignTickResult::Status::kSkippedCohort
                   ? "skipped_cohort"
                   : "skipped_budget"));
    query_span.End();
    if (result.status == CampaignTickResult::Status::kRan) {
      ++runs_;
    } else {
      ++skips_;
    }
    history_.push_back(result);
    results.push_back(result);
  }
  return results;
}

}  // namespace bitpush
