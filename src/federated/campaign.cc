#include "federated/campaign.h"

#include <set>

#include "util/check.h"

namespace bitpush {

MeasurementCampaign::MeasurementCampaign(std::vector<CampaignQuery> queries,
                                         PrivacyMeter* meter)
    : queries_(std::move(queries)), meter_(meter) {
  BITPUSH_CHECK(!queries_.empty());
  std::set<std::string> names;
  for (const CampaignQuery& query : queries_) {
    BITPUSH_CHECK_GE(query.cadence_ticks, 1);
    BITPUSH_CHECK_GE(query.phase, 0);
    BITPUSH_CHECK(names.insert(query.name).second)
        << "duplicate query name " << query.name;
  }
}

std::vector<CampaignTickResult> MeasurementCampaign::RunTick(
    int64_t tick,
    const std::vector<const std::vector<Client>*>& populations,
    const std::vector<FixedPointCodec>& codecs, Rng& rng) {
  BITPUSH_CHECK_EQ(populations.size(), queries_.size());
  BITPUSH_CHECK_EQ(codecs.size(), queries_.size());
  BITPUSH_CHECK_GE(tick, 0);

  std::vector<CampaignTickResult> results;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const CampaignQuery& scheduled = queries_[q];
    if (tick < scheduled.phase ||
        (tick - scheduled.phase) % scheduled.cadence_ticks != 0) {
      continue;
    }
    BITPUSH_CHECK(populations[q] != nullptr);

    CampaignTickResult result;
    result.tick = tick;
    result.query_name = scheduled.name;

    FederatedQueryConfig config = scheduled.query;
    config.value_id = scheduled.value_id;
    const FederatedQueryResult outcome = RunFederatedMeanQuery(
        *populations[q], codecs[q], config, meter_, rng);
    result.reports = outcome.round1.responded + outcome.round2.responded;
    if (outcome.aborted) {
      result.status = CampaignTickResult::Status::kSkippedCohort;
      ++skips_;
    } else if (result.reports == 0) {
      // Every client declined: the shared budget is spent for this value.
      result.status = CampaignTickResult::Status::kSkippedBudget;
      ++skips_;
    } else {
      result.status = CampaignTickResult::Status::kRan;
      result.estimate = outcome.estimate;
      ++runs_;
    }
    history_.push_back(result);
    results.push_back(result);
  }
  return results;
}

}  // namespace bitpush
